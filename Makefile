GO       ?= go
FUZZTIME ?= 30s

.PHONY: all build test race vet lint bench-alloc bench-swarm fuzz-smoke bench-json trace-smoke fault-smoke burst-smoke adversary-smoke metrics-smoke

all: build vet lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# splicelint: the repo's own static-analysis suite (internal/analysis),
# with the full analyzer set, dead-suppression reporting, and a JSON
# findings artifact for CI. Exits non-zero on any unsuppressed finding.
lint:
	$(GO) run ./cmd/splicelint -deadignores -json ./... > splicelint.json || \
		{ cat splicelint.json; exit 1; }
	$(GO) run ./cmd/splicelint -deadignores ./...

# bench-alloc: run the //lint:hotpath benchmarks with -benchmem and fail
# on any nonzero allocs/op — the runtime half of the allocfree analyzer's
# static contract. Not run under -race (instrumentation allocates).
bench-alloc:
	$(GO) test -run='^$$' -bench='^BenchmarkHotpath' -benchmem \
		./internal/wire ./internal/trace ./internal/sim ./internal/netem > bench-alloc.txt || \
		{ cat bench-alloc.txt; exit 1; }
	@cat bench-alloc.txt
	@awk '/^BenchmarkHotpath/ { seen++; if ($$(NF-1) != 0) { print "bench-alloc: " $$1 " allocates " $$(NF-1) " allocs/op, want 0"; bad = 1 } } \
		END { if (!seen) { print "bench-alloc: no hotpath benchmarks ran"; exit 1 }; if (bad) exit 1; print "bench-alloc: " seen " hotpath benchmarks at 0 allocs/op" }' bench-alloc.txt

# bench-swarm: regenerate the swarm-scale emulation perf artifact —
# 10k-peer incremental run vs the forced-full recompute baseline on the
# identical (digest-checked) workload. One benchmark pass first as a
# smoke check that the measured configuration still runs.
bench-swarm:
	$(GO) test -run='^$$' -bench='^BenchmarkSwarmEmulation10k$$' -benchtime=1x .
	$(GO) run ./cmd/benchswarm -out BENCH_8.json

# bench-json: quick-scale figure regeneration as a machine-readable
# artifact (the bench trajectory's stable format), plus one pass of the
# quick figure benches as a smoke check.
bench-json:
	$(GO) run ./cmd/experiment -quick -json > experiment-quick.json
	$(GO) test -run='^$$' -bench='^BenchmarkFig' -benchtime=1x .

# trace-smoke: regenerate Figure 2 at quick scale with per-cell trace
# artifacts (JSONL + Chrome trace + stall timeline) into trace-quick/,
# then prove the splicetrace analyzer over them: 100% stall attribution
# and a byte-identical report across repeated runs. report.json is the
# aggregate cmd/experiment wrote; splicetrace must reproduce it exactly.
# Figure values are bit-identical with tracing on or off (DESIGN.md §8).
trace-smoke:
	$(GO) run ./cmd/experiment -quick -figure 2 -trace trace-quick > /dev/null
	@ls trace-quick | head -6
	@echo "trace-smoke: $$(ls trace-quick | wc -l) artifacts in trace-quick/"
	$(GO) run ./cmd/splicetrace report trace-quick -require-attributed > trace-report.txt
	$(GO) run ./cmd/splicetrace report trace-quick -json -o trace-report-a.json
	$(GO) run ./cmd/splicetrace report trace-quick -json -o trace-report-b.json
	cmp trace-report-a.json trace-report-b.json
	cmp trace-report-a.json trace-quick/report.json
	@echo "trace-smoke: splicetrace report fully attributed and byte-stable"

# metrics-smoke: launch the quickstart real-TCP swarm with -debug-addr,
# wait for /healthz, and validate the /metrics Prometheus exposition
# (parses + key QoE/transport series present) via `splicetrace scrape`.
metrics-smoke:
	GO="$(GO)" sh scripts/metrics-smoke.sh

# fault-smoke: the churn figure (seeded fault injection) must be
# bit-reproducible. Run the quick-scale sweep twice at workers=1 and
# byte-compare the JSON; then once at workers=4 and compare again with
# the legitimately varying fields (elapsed_ms, workers) stripped.
fault-smoke:
	$(GO) run ./cmd/experiment -quick -figure churn -json -workers 1 > fault-smoke-a.json
	$(GO) run ./cmd/experiment -quick -figure churn -json -workers 1 > fault-smoke-b.json
	grep -v '"elapsed_ms"' fault-smoke-a.json > fault-smoke-a.stripped
	grep -v '"elapsed_ms"' fault-smoke-b.json > fault-smoke-b.stripped
	cmp fault-smoke-a.stripped fault-smoke-b.stripped
	$(GO) run ./cmd/experiment -quick -figure churn -json -workers 4 > fault-smoke-c.json
	grep -v '"elapsed_ms"\|"workers"' fault-smoke-a.json > fault-smoke-aw.stripped
	grep -v '"elapsed_ms"\|"workers"' fault-smoke-c.json > fault-smoke-cw.stripped
	cmp fault-smoke-aw.stripped fault-smoke-cw.stripped
	@echo "fault-smoke: churn figure bit-identical across runs and workers"

# burst-smoke: the correlated-impairment figure (Gilbert–Elliott burst
# loss + segment corruption) must be bit-reproducible — the GE chains
# draw sojourns from each run's own engine RNG and the corruption draws
# are pure hashes, so nothing may vary across runs or worker counts.
# Then regenerate it with per-cell traces and require 100% stall
# attribution: every stall under the impairment plans carries a cause.
burst-smoke:
	$(GO) run ./cmd/experiment -quick -figure burst -json -workers 1 > burst-smoke-a.json
	$(GO) run ./cmd/experiment -quick -figure burst -json -workers 1 > burst-smoke-b.json
	grep -v '"elapsed_ms"' burst-smoke-a.json > burst-smoke-a.stripped
	grep -v '"elapsed_ms"' burst-smoke-b.json > burst-smoke-b.stripped
	cmp burst-smoke-a.stripped burst-smoke-b.stripped
	$(GO) run ./cmd/experiment -quick -figure burst -json -workers 4 > burst-smoke-c.json
	grep -v '"elapsed_ms"\|"workers"' burst-smoke-a.json > burst-smoke-aw.stripped
	grep -v '"elapsed_ms"\|"workers"' burst-smoke-c.json > burst-smoke-cw.stripped
	cmp burst-smoke-aw.stripped burst-smoke-cw.stripped
	$(GO) run ./cmd/experiment -quick -figure burst -trace burst-trace-quick > /dev/null
	$(GO) run ./cmd/splicetrace report burst-trace-quick -require-attributed > burst-trace-report.txt
	@echo "burst-smoke: burst figure bit-identical across runs and workers, stalls fully attributed"

# adversary-smoke: the adversarial-peer figure (polluter fractions ×
# reputation on/off) must be bit-reproducible — pollution decisions are
# pure hashes of each cell's seed and the reputation tables are
# per-swarm state, so nothing may vary across runs or worker counts.
# Then regenerate it with per-cell traces and require 100% stall
# attribution: every stall under pollution and quarantine carries a
# cause (peer_quarantined included).
adversary-smoke:
	$(GO) run ./cmd/experiment -quick -figure adversary -json -workers 1 > adversary-smoke-a.json
	$(GO) run ./cmd/experiment -quick -figure adversary -json -workers 1 > adversary-smoke-b.json
	grep -v '"elapsed_ms"' adversary-smoke-a.json > adversary-smoke-a.stripped
	grep -v '"elapsed_ms"' adversary-smoke-b.json > adversary-smoke-b.stripped
	cmp adversary-smoke-a.stripped adversary-smoke-b.stripped
	$(GO) run ./cmd/experiment -quick -figure adversary -json -workers 4 > adversary-smoke-c.json
	grep -v '"elapsed_ms"\|"workers"' adversary-smoke-a.json > adversary-smoke-aw.stripped
	grep -v '"elapsed_ms"\|"workers"' adversary-smoke-c.json > adversary-smoke-cw.stripped
	cmp adversary-smoke-aw.stripped adversary-smoke-cw.stripped
	$(GO) run ./cmd/experiment -quick -figure adversary -trace adversary-trace-quick > /dev/null
	$(GO) run ./cmd/splicetrace report adversary-trace-quick -require-attributed > adversary-trace-report.txt
	@grep -q "penalized peer" adversary-trace-report.txt || \
		{ echo "adversary-smoke: report missing the reputation rollup"; exit 1; }
	@echo "adversary-smoke: adversary figure bit-identical across runs and workers, stalls fully attributed"

# Short fuzz pass over every fuzz target; go's fuzzer accepts one -fuzz
# pattern per package invocation, so targets run sequentially.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzRead$$' -fuzztime=$(FUZZTIME) ./internal/wire
	$(GO) test -run='^$$' -fuzz='^FuzzReadHandshake$$' -fuzztime=$(FUZZTIME) ./internal/wire
	$(GO) test -run='^$$' -fuzz='^FuzzDecode$$' -fuzztime=$(FUZZTIME) ./internal/container
	$(GO) test -run='^$$' -fuzz='^FuzzReadManifest$$' -fuzztime=$(FUZZTIME) ./internal/container
	$(GO) test -run='^$$' -fuzz='^FuzzReadJSON$$' -fuzztime=$(FUZZTIME) ./internal/topology
	$(GO) test -run='^$$' -fuzz='^FuzzReallocate$$' -fuzztime=$(FUZZTIME) ./internal/netem
