GO       ?= go
FUZZTIME ?= 30s
# Every generated smoke/bench byproduct lands under $(ARTIFACTS) (ignored
# by git) instead of littering the repo root. Committed perf artifacts
# (BENCH_*.json) are the exception: they are the deliverable, not litter.
ARTIFACTS ?= artifacts

.PHONY: all build test race vet lint bench-alloc bench-swarm fuzz-smoke bench-json trace-smoke fault-smoke burst-smoke adversary-smoke metrics-smoke timeseries-smoke

all: build vet lint test

$(ARTIFACTS):
	@mkdir -p $(ARTIFACTS)

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# splicelint: the repo's own static-analysis suite (internal/analysis),
# with the full analyzer set, dead-suppression reporting, and a JSON
# findings artifact for CI. Exits non-zero on any unsuppressed finding.
lint: | $(ARTIFACTS)
	$(GO) run ./cmd/splicelint -deadignores -json ./... > $(ARTIFACTS)/splicelint.json || \
		{ cat $(ARTIFACTS)/splicelint.json; exit 1; }
	$(GO) run ./cmd/splicelint -deadignores ./...

# bench-alloc: run the //lint:hotpath benchmarks with -benchmem and fail
# on any nonzero allocs/op — the runtime half of the allocfree analyzer's
# static contract. Not run under -race (instrumentation allocates).
bench-alloc: | $(ARTIFACTS)
	$(GO) test -run='^$$' -bench='^BenchmarkHotpath' -benchmem \
		./internal/wire ./internal/trace ./internal/sim ./internal/netem > $(ARTIFACTS)/bench-alloc.txt || \
		{ cat $(ARTIFACTS)/bench-alloc.txt; exit 1; }
	@cat $(ARTIFACTS)/bench-alloc.txt
	@awk '/^BenchmarkHotpath/ { seen++; if ($$(NF-1) != 0) { print "bench-alloc: " $$1 " allocates " $$(NF-1) " allocs/op, want 0"; bad = 1 } } \
		END { if (!seen) { print "bench-alloc: no hotpath benchmarks ran"; exit 1 }; if (bad) exit 1; print "bench-alloc: " seen " hotpath benchmarks at 0 allocs/op" }' $(ARTIFACTS)/bench-alloc.txt

# bench-swarm: regenerate the swarm-scale emulation perf artifact —
# 10k-peer incremental run vs the forced-full recompute baseline on the
# identical (digest-checked) workload, plus the harness's
# self-observation section (traced overhead gate, CPU profile top
# functions). One benchmark pass first as a smoke check that the
# measured configuration still runs.
bench-swarm:
	$(GO) test -run='^$$' -bench='^BenchmarkSwarmEmulation10k$$' -benchtime=1x .
	$(GO) run ./cmd/benchswarm -out BENCH_10.json

# bench-json: quick-scale figure regeneration as a machine-readable
# artifact (the bench trajectory's stable format), plus one pass of the
# quick figure benches as a smoke check.
bench-json: | $(ARTIFACTS)
	$(GO) run ./cmd/experiment -quick -json > $(ARTIFACTS)/experiment-quick.json
	$(GO) test -run='^$$' -bench='^BenchmarkFig' -benchtime=1x .

# trace-smoke: regenerate Figure 2 at quick scale with per-cell trace
# artifacts (JSONL + Chrome trace + stall timeline) into the artifacts
# dir, then prove the splicetrace analyzer over them: 100% stall
# attribution and a byte-identical report across repeated runs.
# report.json is the aggregate cmd/experiment wrote; splicetrace must
# reproduce it exactly. Figure values are bit-identical with tracing on
# or off (DESIGN.md §8).
trace-smoke: | $(ARTIFACTS)
	$(GO) run ./cmd/experiment -quick -figure 2 -trace $(ARTIFACTS)/trace-quick > /dev/null
	@ls $(ARTIFACTS)/trace-quick | head -6
	@echo "trace-smoke: $$(ls $(ARTIFACTS)/trace-quick | wc -l) artifacts in $(ARTIFACTS)/trace-quick/"
	$(GO) run ./cmd/splicetrace report $(ARTIFACTS)/trace-quick -require-attributed > $(ARTIFACTS)/trace-report.txt
	$(GO) run ./cmd/splicetrace report $(ARTIFACTS)/trace-quick -json -o $(ARTIFACTS)/trace-report-a.json
	$(GO) run ./cmd/splicetrace report $(ARTIFACTS)/trace-quick -json -o $(ARTIFACTS)/trace-report-b.json
	cmp $(ARTIFACTS)/trace-report-a.json $(ARTIFACTS)/trace-report-b.json
	cmp $(ARTIFACTS)/trace-report-a.json $(ARTIFACTS)/trace-quick/report.json
	@echo "trace-smoke: splicetrace report fully attributed and byte-stable"

# timeseries-smoke: the windowed virtual-time telemetry end to end.
# Regenerates quick Figure 2 traces at two worker counts, rebuilds the
# time-series CSV from each, and requires byte-identity — the windowing
# is commutative integer aggregation, so neither reruns nor parallelism
# may move a single byte. Stall attribution must stay total on the same
# traces. Then the swarm-scale self-observation gate: a 10k-peer
# benchswarm run with telemetry + sampled tracing attached must keep
# the untraced digest and stay within the 5% overhead budget (gated
# inside cmd/benchswarm).
timeseries-smoke: | $(ARTIFACTS)
	$(GO) run ./cmd/experiment -quick -figure 2 -trace $(ARTIFACTS)/ts-trace-w1 -workers 1 > /dev/null
	$(GO) run ./cmd/experiment -quick -figure 2 -trace $(ARTIFACTS)/ts-trace-w4 -workers 4 > /dev/null
	$(GO) run ./cmd/splicetrace report $(ARTIFACTS)/ts-trace-w1 -require-attributed > /dev/null
	$(GO) run ./cmd/splicetrace timeseries $(ARTIFACTS)/ts-trace-w1 -csv -o $(ARTIFACTS)/timeseries-a.csv
	$(GO) run ./cmd/splicetrace timeseries $(ARTIFACTS)/ts-trace-w1 -csv -o $(ARTIFACTS)/timeseries-b.csv
	$(GO) run ./cmd/splicetrace timeseries $(ARTIFACTS)/ts-trace-w4 -csv -o $(ARTIFACTS)/timeseries-w4.csv
	cmp $(ARTIFACTS)/timeseries-a.csv $(ARTIFACTS)/timeseries-b.csv
	cmp $(ARTIFACTS)/timeseries-a.csv $(ARTIFACTS)/timeseries-w4.csv
	$(GO) run ./cmd/splicetrace timeseries $(ARTIFACTS)/ts-trace-w1 -o $(ARTIFACTS)/timeseries-report.txt
	$(GO) run ./cmd/benchswarm -baseline-events 20000 -out $(ARTIFACTS)/bench-swarm-observed.json
	@echo "timeseries-smoke: CSV byte-identical across runs and workers, overhead within budget"

# metrics-smoke: launch the quickstart real-TCP swarm with -debug-addr,
# wait for /healthz, and validate the /metrics Prometheus exposition
# (parses + key QoE/transport series present) via `splicetrace scrape`.
metrics-smoke:
	GO="$(GO)" sh scripts/metrics-smoke.sh

# fault-smoke: the churn figure (seeded fault injection) must be
# bit-reproducible. Run the quick-scale sweep twice at workers=1 and
# byte-compare the JSON; then once at workers=4 and compare again with
# the legitimately varying fields (elapsed_ms, workers) stripped.
fault-smoke: | $(ARTIFACTS)
	$(GO) run ./cmd/experiment -quick -figure churn -json -workers 1 > $(ARTIFACTS)/fault-smoke-a.json
	$(GO) run ./cmd/experiment -quick -figure churn -json -workers 1 > $(ARTIFACTS)/fault-smoke-b.json
	grep -v '"elapsed_ms"' $(ARTIFACTS)/fault-smoke-a.json > $(ARTIFACTS)/fault-smoke-a.stripped
	grep -v '"elapsed_ms"' $(ARTIFACTS)/fault-smoke-b.json > $(ARTIFACTS)/fault-smoke-b.stripped
	cmp $(ARTIFACTS)/fault-smoke-a.stripped $(ARTIFACTS)/fault-smoke-b.stripped
	$(GO) run ./cmd/experiment -quick -figure churn -json -workers 4 > $(ARTIFACTS)/fault-smoke-c.json
	grep -v '"elapsed_ms"\|"workers"' $(ARTIFACTS)/fault-smoke-a.json > $(ARTIFACTS)/fault-smoke-aw.stripped
	grep -v '"elapsed_ms"\|"workers"' $(ARTIFACTS)/fault-smoke-c.json > $(ARTIFACTS)/fault-smoke-cw.stripped
	cmp $(ARTIFACTS)/fault-smoke-aw.stripped $(ARTIFACTS)/fault-smoke-cw.stripped
	@echo "fault-smoke: churn figure bit-identical across runs and workers"

# burst-smoke: the correlated-impairment figure (Gilbert–Elliott burst
# loss + segment corruption) must be bit-reproducible — the GE chains
# draw sojourns from each run's own engine RNG and the corruption draws
# are pure hashes, so nothing may vary across runs or worker counts.
# Then regenerate it with per-cell traces and require 100% stall
# attribution: every stall under the impairment plans carries a cause.
burst-smoke: | $(ARTIFACTS)
	$(GO) run ./cmd/experiment -quick -figure burst -json -workers 1 > $(ARTIFACTS)/burst-smoke-a.json
	$(GO) run ./cmd/experiment -quick -figure burst -json -workers 1 > $(ARTIFACTS)/burst-smoke-b.json
	grep -v '"elapsed_ms"' $(ARTIFACTS)/burst-smoke-a.json > $(ARTIFACTS)/burst-smoke-a.stripped
	grep -v '"elapsed_ms"' $(ARTIFACTS)/burst-smoke-b.json > $(ARTIFACTS)/burst-smoke-b.stripped
	cmp $(ARTIFACTS)/burst-smoke-a.stripped $(ARTIFACTS)/burst-smoke-b.stripped
	$(GO) run ./cmd/experiment -quick -figure burst -json -workers 4 > $(ARTIFACTS)/burst-smoke-c.json
	grep -v '"elapsed_ms"\|"workers"' $(ARTIFACTS)/burst-smoke-a.json > $(ARTIFACTS)/burst-smoke-aw.stripped
	grep -v '"elapsed_ms"\|"workers"' $(ARTIFACTS)/burst-smoke-c.json > $(ARTIFACTS)/burst-smoke-cw.stripped
	cmp $(ARTIFACTS)/burst-smoke-aw.stripped $(ARTIFACTS)/burst-smoke-cw.stripped
	$(GO) run ./cmd/experiment -quick -figure burst -trace $(ARTIFACTS)/burst-trace-quick > /dev/null
	$(GO) run ./cmd/splicetrace report $(ARTIFACTS)/burst-trace-quick -require-attributed > $(ARTIFACTS)/burst-trace-report.txt
	@echo "burst-smoke: burst figure bit-identical across runs and workers, stalls fully attributed"

# adversary-smoke: the adversarial-peer figure (polluter fractions ×
# reputation on/off) must be bit-reproducible — pollution decisions are
# pure hashes of each cell's seed and the reputation tables are
# per-swarm state, so nothing may vary across runs or worker counts.
# Then regenerate it with per-cell traces and require 100% stall
# attribution: every stall under pollution and quarantine carries a
# cause (peer_quarantined included).
adversary-smoke: | $(ARTIFACTS)
	$(GO) run ./cmd/experiment -quick -figure adversary -json -workers 1 > $(ARTIFACTS)/adversary-smoke-a.json
	$(GO) run ./cmd/experiment -quick -figure adversary -json -workers 1 > $(ARTIFACTS)/adversary-smoke-b.json
	grep -v '"elapsed_ms"' $(ARTIFACTS)/adversary-smoke-a.json > $(ARTIFACTS)/adversary-smoke-a.stripped
	grep -v '"elapsed_ms"' $(ARTIFACTS)/adversary-smoke-b.json > $(ARTIFACTS)/adversary-smoke-b.stripped
	cmp $(ARTIFACTS)/adversary-smoke-a.stripped $(ARTIFACTS)/adversary-smoke-b.stripped
	$(GO) run ./cmd/experiment -quick -figure adversary -json -workers 4 > $(ARTIFACTS)/adversary-smoke-c.json
	grep -v '"elapsed_ms"\|"workers"' $(ARTIFACTS)/adversary-smoke-a.json > $(ARTIFACTS)/adversary-smoke-aw.stripped
	grep -v '"elapsed_ms"\|"workers"' $(ARTIFACTS)/adversary-smoke-c.json > $(ARTIFACTS)/adversary-smoke-cw.stripped
	cmp $(ARTIFACTS)/adversary-smoke-aw.stripped $(ARTIFACTS)/adversary-smoke-cw.stripped
	$(GO) run ./cmd/experiment -quick -figure adversary -trace $(ARTIFACTS)/adversary-trace-quick > /dev/null
	$(GO) run ./cmd/splicetrace report $(ARTIFACTS)/adversary-trace-quick -require-attributed > $(ARTIFACTS)/adversary-trace-report.txt
	@grep -q "penalized peer" $(ARTIFACTS)/adversary-trace-report.txt || \
		{ echo "adversary-smoke: report missing the reputation rollup"; exit 1; }
	@echo "adversary-smoke: adversary figure bit-identical across runs and workers, stalls fully attributed"

# Short fuzz pass over every fuzz target; go's fuzzer accepts one -fuzz
# pattern per package invocation, so targets run sequentially.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzRead$$' -fuzztime=$(FUZZTIME) ./internal/wire
	$(GO) test -run='^$$' -fuzz='^FuzzReadHandshake$$' -fuzztime=$(FUZZTIME) ./internal/wire
	$(GO) test -run='^$$' -fuzz='^FuzzDecode$$' -fuzztime=$(FUZZTIME) ./internal/container
	$(GO) test -run='^$$' -fuzz='^FuzzReadManifest$$' -fuzztime=$(FUZZTIME) ./internal/container
	$(GO) test -run='^$$' -fuzz='^FuzzReadJSON$$' -fuzztime=$(FUZZTIME) ./internal/topology
	$(GO) test -run='^$$' -fuzz='^FuzzReallocate$$' -fuzztime=$(FUZZTIME) ./internal/netem
	$(GO) test -run='^$$' -fuzz='^FuzzPromRoundTrip$$' -fuzztime=$(FUZZTIME) ./internal/trace
