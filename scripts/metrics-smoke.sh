#!/bin/sh
# metrics-smoke: prove the live telemetry path end to end. Launches the
# quickstart real-TCP swarm with -debug-addr, waits for /healthz, then
# uses `splicetrace scrape` to validate the Prometheus exposition and
# require the key QoE/transport series the paper's figures summarize.
set -eu

ADDR="${METRICS_SMOKE_ADDR:-127.0.0.1:16060}"
GO="${GO:-go}"

"$GO" build -o /tmp/metrics-smoke-quickstart ./examples/quickstart
"$GO" build -o /tmp/metrics-smoke-splicetrace ./cmd/splicetrace

/tmp/metrics-smoke-quickstart -debug-addr "$ADDR" -linger 60s &
QS_PID=$!
trap 'kill "$QS_PID" 2>/dev/null || true' EXIT INT TERM

# Wait for the debug endpoint (the swarm itself streams in ~2s).
i=0
until /tmp/metrics-smoke-splicetrace scrape "http://$ADDR" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 60 ]; then
        echo "metrics-smoke: debug endpoint never came up on $ADDR" >&2
        exit 1
    fi
    sleep 1
done

# Give the stream a moment to complete so the QoE histograms are filled.
sleep 5

/tmp/metrics-smoke-splicetrace scrape "http://$ADDR" \
    -series p2p_startup_seconds_count \
    -series 'p2p_segment_download_seconds_count{scheme="2s"}' \
    -series 'p2p_segment_bytes_count{scheme="2s"}' \
    -series p2p_pool_size_k_count \
    -series p2p_announce_rtt_seconds_count \
    -series tracker_announces_total \
    -series tracker_swarms \
    -series segments_done

echo "metrics-smoke: exposition valid, all required series present"
