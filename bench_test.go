package p2psplice

// Benchmark harness: one benchmark per paper figure (the code that
// regenerates each table/series), ablation benches for the design choices
// DESIGN.md calls out, and micro-benchmarks for the hot paths.
//
// The figure benches run the sweeps at a reduced scale per iteration and
// report the headline quantity via b.ReportMetric so `go test -bench .`
// doubles as a smoke reproduction. Full-scale numbers live in
// EXPERIMENTS.md and come from `go run ./cmd/experiment`.

import (
	"bytes"
	"testing"
	"time"

	"p2psplice/internal/container"
	"p2psplice/internal/core"
	"p2psplice/internal/experiment"
	"p2psplice/internal/media"
	"p2psplice/internal/netem"
	"p2psplice/internal/simpeer"
	"p2psplice/internal/splicer"
	"p2psplice/internal/swarmbench"
	"p2psplice/internal/wire"
)

// benchParams is the per-iteration experiment scale.
func benchParams() experiment.Params {
	p := experiment.QuickParams()
	p.ClipDuration = 40 * time.Second
	p.Leechers = 6
	return p
}

// --- Figure benches -------------------------------------------------------

// BenchmarkFig2StallsBySplicing regenerates Figure 2 (total stalls per
// splicing technique across the bandwidth sweep).
func BenchmarkFig2StallsBySplicing(b *testing.B) {
	p := benchParams()
	var last *experiment.FigureResult
	for i := 0; i < b.N; i++ {
		res, err := p.Fig2Stalls([]int64{128, 512})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Series("2s")[0], "stalls@128kBps(2s)")
	b.ReportMetric(last.Series("4s")[0], "stalls@128kBps(4s)")
}

// BenchmarkFig3StallDuration regenerates Figure 3 (total stall duration).
func BenchmarkFig3StallDuration(b *testing.B) {
	p := benchParams()
	var last *experiment.FigureResult
	for i := 0; i < b.N; i++ {
		res, err := p.Fig3StallDuration([]int64{128, 512})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Series("gop")[0], "stallSec@128kBps(gop)")
}

// BenchmarkFig4StartupTime regenerates Figure 4 (startup time by segment
// duration and bandwidth).
func BenchmarkFig4StartupTime(b *testing.B) {
	p := benchParams()
	var last *experiment.FigureResult
	for i := 0; i < b.N; i++ {
		res, err := p.Fig4Startup([]int64{128, 1024})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Series("2s")[0], "startupSec@128kBps(2s)")
	b.ReportMetric(last.Series("8s")[0], "startupSec@128kBps(8s)")
}

// BenchmarkFig5DownloadPolicies regenerates Figure 5 (adaptive pooling vs
// fixed pools).
func BenchmarkFig5DownloadPolicies(b *testing.B) {
	p := benchParams()
	var last *experiment.FigureResult
	for i := 0; i < b.N; i++ {
		res, err := p.Fig5Pooling([]int64{128, 512})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Series("adaptive")[0], "stalls@128kBps(adaptive)")
	b.ReportMetric(last.Series("pool-8")[0], "stalls@128kBps(pool-8)")
}

// BenchmarkFig2StallsSerial is BenchmarkFig2StallsBySplicing pinned to the
// Workers=1 serial path; the pair measures the worker pool's speedup on
// multi-core hardware (results are bit-identical either way — see the
// equivalence tests in internal/experiment).
func BenchmarkFig2StallsSerial(b *testing.B) {
	p := benchParams()
	p.Workers = 1
	var last *experiment.FigureResult
	for i := 0; i < b.N; i++ {
		res, err := p.Fig2Stalls([]int64{128, 512})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Series("2s")[0], "stalls@128kBps(2s)")
}

// BenchmarkSegmentsCached measures the memoized Segments path: after the
// first iteration every call is a cache hit plus one defensive copy.
func BenchmarkSegmentsCached(b *testing.B) {
	p := benchParams()
	sp := splicer.DurationSplicer{Target: 4 * time.Second}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Segments(sp); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches ------------------------------------------------------

// ablationRun executes one emulated run with a config modifier and reports
// mean stalls and startup.
func ablationRun(b *testing.B, mod func(*simpeer.SwarmConfig)) {
	b.Helper()
	p := benchParams()
	segs, err := p.Segments(splicer.DurationSplicer{Target: 4 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	var stalls, startup float64
	for i := 0; i < b.N; i++ {
		cfg := simpeer.SwarmConfig{
			Seed:                 1000 + int64(i),
			Leechers:             p.Leechers,
			BandwidthBytesPerSec: 256 * 1024,
			PeerAccessDelay:      25 * time.Millisecond,
			SeederAccessDelay:    25 * time.Millisecond,
			LossRate:             0.05,
			Policy:               core.AdaptivePool{},
			OracleBandwidth:      true,
			JoinSpread:           p.JoinSpread,
			ResumeBuffer:         p.ResumeBuffer,
		}
		if mod != nil {
			mod(&cfg)
		}
		res, err := simpeer.RunSwarm(cfg, segs)
		if err != nil {
			b.Fatal(err)
		}
		s := res.Summary()
		stalls = s.MeanStalls
		startup = s.MeanStartupSeconds
	}
	b.ReportMetric(stalls, "stalls")
	b.ReportMetric(startup, "startupSec")
}

// BenchmarkAblationBaseline is the reference configuration.
func BenchmarkAblationBaseline(b *testing.B) { ablationRun(b, nil) }

// BenchmarkAblationChurn exercises peer departures (the paper's motivation
// for prefetching: "peers can leave the swarm anytime").
func BenchmarkAblationChurn(b *testing.B) {
	ablationRun(b, func(c *simpeer.SwarmConfig) {
		c.Churn = simpeer.ChurnModel{MeanOnline: 30 * time.Second, MinRemaining: 2}
	})
}

// BenchmarkAblationEWMAEstimator replaces the bandwidth oracle with the
// EWMA estimator (real deployments cannot know B).
func BenchmarkAblationEWMAEstimator(b *testing.B) {
	ablationRun(b, func(c *simpeer.SwarmConfig) { c.OracleBandwidth = false })
}

// BenchmarkAblationStoreAndForward disables piece-level relaying: peers
// serve only complete segments, collapsing the swarm to seeder fan-out.
func BenchmarkAblationStoreAndForward(b *testing.B) {
	ablationRun(b, func(c *simpeer.SwarmConfig) { c.DisableRelay = true })
}

// BenchmarkAblationRarestFirst swaps sequential selection for BitTorrent's
// rarest-first (availability over playback order).
func BenchmarkAblationRarestFirst(b *testing.B) {
	ablationRun(b, func(c *simpeer.SwarmConfig) { c.Selection = simpeer.SelectRarestFirst })
}

// BenchmarkAblationCrossTraffic adds competing flows (the paper's future
// work: "competing flows and high congestion environment").
func BenchmarkAblationCrossTraffic(b *testing.B) {
	ablationRun(b, func(c *simpeer.SwarmConfig) { c.CrossTraffic = 4 })
}

// BenchmarkAblationVariableBandwidth varies link rates mid-stream (the
// paper's future work: "available bandwidth changes over time").
func BenchmarkAblationVariableBandwidth(b *testing.B) {
	ablationRun(b, func(c *simpeer.SwarmConfig) {
		c.BandwidthSchedule = []netem.BandwidthStep{
			{At: 15 * time.Second, BytesPerSec: 128 * 1024},
			{At: 30 * time.Second, BytesPerSec: 256 * 1024},
		}
	})
}

// --- Micro-benchmarks ------------------------------------------------------

func benchVideo(b *testing.B) *media.Video {
	b.Helper()
	v, err := media.Synthesize(media.DefaultEncoderConfig(), 2*time.Minute, 42)
	if err != nil {
		b.Fatal(err)
	}
	return v
}

func BenchmarkSynthesize2MinClip(b *testing.B) {
	cfg := media.DefaultEncoderConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := media.Synthesize(cfg, 2*time.Minute, 42); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpliceGOP(b *testing.B) {
	v := benchVideo(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (splicer.GOPSplicer{}).Splice(v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpliceDuration4s(b *testing.B) {
	v := benchVideo(b)
	sp := splicer.DurationSplicer{Target: 4 * time.Second}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp.Splice(v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContainerEncodeDecode(b *testing.B) {
	v := benchVideo(b)
	segs, err := splicer.DurationSplicer{Target: 4 * time.Second}.Splice(v)
	if err != nil {
		b.Fatal(err)
	}
	cs, err := container.Build(segs[0], v.Seed)
	if err != nil {
		b.Fatal(err)
	}
	blob, err := container.EncodeBytes(cs)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := container.EncodeBytes(cs)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := container.DecodeBytes(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkManifestBuild(b *testing.B) {
	v := benchVideo(b)
	segs, err := splicer.DurationSplicer{Target: 4 * time.Second}.Splice(v)
	if err != nil {
		b.Fatal(err)
	}
	info := container.ClipInfo{Duration: v.Duration(), BytesPerSecond: v.Config.BytesPerSecond, Seed: v.Seed}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := container.BuildManifest(info, "4s", segs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWirePieceRoundTrip(b *testing.B) {
	data := bytes.Repeat([]byte{0xAB}, wire.DefaultBlockLen)
	msg := &wire.Message{Type: wire.MsgPiece, Index: 1, Offset: 0, Data: data}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := wire.Write(&buf, msg); err != nil {
			b.Fatal(err)
		}
		if _, err := wire.Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEquation1PoolSize(b *testing.B) {
	p := core.AdaptivePool{}
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += p.PoolSize(512*1024, 4*time.Second, 512*1024)
	}
	if sink == 0 {
		b.Fatal("unreachable")
	}
}

// BenchmarkSwarmEmulationPaperScale runs one full-scale emulated run
// (19 leechers, 2-minute clip) per iteration — the unit of work behind
// every figure data point.
func BenchmarkSwarmEmulationPaperScale(b *testing.B) {
	p := experiment.DefaultParams()
	segs, err := p.Segments(splicer.DurationSplicer{Target: 4 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		cfg := simpeer.SwarmConfig{
			Seed:                 int64(i + 1),
			Leechers:             19,
			BandwidthBytesPerSec: 256 * 1024,
			PeerAccessDelay:      25 * time.Millisecond,
			SeederAccessDelay:    25 * time.Millisecond,
			LossRate:             0.05,
			Policy:               core.AdaptivePool{},
			OracleBandwidth:      true,
			JoinSpread:           5 * time.Second,
			ResumeBuffer:         6 * time.Second,
		}
		if _, err := simpeer.RunSwarm(cfg, segs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSwarmEmulation10k runs one 10k-peer locality-clustered swarm
// per iteration on the incremental reallocator — the swarm-scale
// configuration behind the BENCH_7.json artifact (`make bench-swarm`
// re-measures it against the forced-full baseline). Reported metrics are
// per-iteration throughput, so they are comparable to the artifact's.
func BenchmarkSwarmEmulation10k(b *testing.B) {
	var events, reallocs uint64
	for i := 0; i < b.N; i++ {
		res, err := swarmbench.Run(swarmbench.Config{Peers: 10_000, Shards: 1, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if res.Truncated {
			b.Fatal("10k swarm truncated without an event budget")
		}
		events += res.Events
		reallocs += res.Stats.Reallocs
	}
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(float64(b.N)*10_000/secs, "peers/sec")
		b.ReportMetric(float64(events)/secs, "events/sec")
		b.ReportMetric(float64(reallocs)/secs, "reallocs/sec")
	}
}

// BenchmarkFig6AdaptiveSplicing regenerates the extension figure: the
// OptimalDuration algorithm against fixed splicing durations.
func BenchmarkFig6AdaptiveSplicing(b *testing.B) {
	p := benchParams()
	var last *experiment.FigureResult
	for i := 0; i < b.N; i++ {
		res, err := p.Fig6AdaptiveSplicing([]int64{128, 512})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Series("adaptive")[1], "waitSec@512kBps(adaptive)")
}

// BenchmarkAblationCDNAssist adds the Section IV hybrid CDN to the swarm.
func BenchmarkAblationCDNAssist(b *testing.B) {
	ablationRun(b, func(c *simpeer.SwarmConfig) {
		c.CDN = &simpeer.CDNAssist{BandwidthBytesPerSec: 1024 * 1024}
	})
}
