package p2psplice

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

func TestFacadeEndToEndEmulated(t *testing.T) {
	v, err := Synthesize(DefaultEncoderConfig(), 20*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := SpliceByDuration(v, 4*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	st := ComputeSpliceStats(segs)
	if st.Count == 0 || st.OverheadBytes <= 0 {
		t.Errorf("splice stats: %+v", st)
	}
	res, err := RunSwarm(SwarmConfig{
		Seed:                 1,
		Leechers:             3,
		BandwidthBytesPerSec: 512 * 1024,
		PeerAccessDelay:      25 * time.Millisecond,
		SeederAccessDelay:    25 * time.Millisecond,
		LossRate:             0.05,
		Policy:               AdaptivePool{},
		OracleBandwidth:      true,
		JoinSpread:           2 * time.Second,
	}, SegmentsForSwarm(segs))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Samples {
		if !s.Finished {
			t.Errorf("peer %d unfinished", s.Peer)
		}
	}
}

func TestFacadeEndToEndRealTCP(t *testing.T) {
	cfg := DefaultEncoderConfig()
	cfg.BytesPerSecond = 32 * 1024
	_, m, blobs, err := BuildSwarmData(cfg, 4*time.Second, 2, DurationSplicer{Target: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewTracker().Handler())
	defer srv.Close()
	trk := NewTrackerClient(srv.URL, srv.Client())

	seeder, err := Seed(trk, m, blobs, NodeConfig{AnnounceInterval: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer seeder.Close()

	leecher, err := Join(trk, seeder.InfoHash(), NodeConfig{AnnounceInterval: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer leecher.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := leecher.WaitComplete(ctx); err != nil {
		t.Fatal(err)
	}
	if leecher.Playback().StartupTime <= 0 {
		t.Error("no startup time recorded")
	}
}

func TestFacadeGOPAndAdaptiveSplicers(t *testing.T) {
	v, err := Synthesize(DefaultEncoderConfig(), 20*time.Second, 5)
	if err != nil {
		t.Fatal(err)
	}
	gop, err := SpliceByGOP(v)
	if err != nil {
		t.Fatal(err)
	}
	if ComputeSpliceStats(gop).OverheadBytes != 0 {
		t.Error("GOP splicing should have zero overhead")
	}
	adaptive := AdaptiveSplicer{Bandwidth: 256 * 1024, BufferDepth: 4 * time.Second}
	segs, err := adaptive.Splice(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Error("adaptive splicer produced nothing")
	}
}

func TestFacadeFormulas(t *testing.T) {
	if got := (AdaptivePool{}).PoolSize(512*1024, 4*time.Second, 512*1024); got != 4 {
		t.Errorf("Equation 1 = %d, want 4", got)
	}
	if got := MaxSegmentBytes(128*1024, 4*time.Second); got != 512*1024 {
		t.Errorf("Section IV bound = %d, want %d", got, 512*1024)
	}
	est, err := NewBandwidthEstimator(0.3)
	if err != nil {
		t.Fatal(err)
	}
	est.Observe(1024, time.Second)
	if est.Estimate() != 1024 {
		t.Error("estimator wrong")
	}
}

func TestFacadeCDNAssistType(t *testing.T) {
	cfg := SwarmConfig{CDN: &CDNAssist{BandwidthBytesPerSec: 1024}}
	if cfg.CDN.BandwidthBytesPerSec != 1024 {
		t.Error("CDNAssist alias broken")
	}
}

func TestFacadeTopologyAndParams(t *testing.T) {
	spec := StarTopology("paper", 19, 128, 475*time.Millisecond, 5)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	p := PaperParams()
	if p.Leechers != 19 || p.ClipDuration != 2*time.Minute {
		t.Errorf("PaperParams = %+v", p)
	}
	q := QuickParams()
	if q.Leechers >= p.Leechers {
		t.Error("QuickParams should be smaller than PaperParams")
	}
}

func TestFacadeRealStackRun(t *testing.T) {
	samples, err := RealStackRun(RealStackConfig{
		Clip:    2 * time.Second,
		Rate:    16 * 1024,
		Seed:    9,
		Viewers: 1,
		Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 || !samples[0].Finished {
		t.Errorf("samples = %+v", samples)
	}
}
