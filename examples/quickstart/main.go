// Quickstart: spin up a complete real-TCP swarm in one process — tracker,
// seeder, and two viewing peers — stream a short synthetic clip, and print
// the playback metrics the paper measures.
//
// With -debug-addr the process also serves /metrics, /healthz, and
// /debug/pprof for the whole swarm (all nodes and the tracker share one
// registry); -linger keeps it alive after the stream completes so a
// scraper (or `make metrics-smoke`) can read the final state.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"p2psplice"
)

func main() {
	var (
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (empty = off)")
		linger    = flag.Duration("linger", 0, "keep the swarm alive this long after completion (lets a scraper catch the final state)")
	)
	flag.Parse()

	// One registry for the whole in-process swarm: both viewers, the
	// seeder, and the tracker record into it, so /metrics shows the
	// swarm's aggregate QoE and transport distributions.
	var reg *p2psplice.MetricsRegistry
	if *debugAddr != "" {
		reg = p2psplice.NewMetricsRegistry()
		dbg, err := p2psplice.StartDebug(p2psplice.DebugConfig{Addr: *debugAddr, Registry: reg})
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		fmt.Println("debug endpoint on http://" + dbg.Addr())
	}

	// 1. Synthesize a 10-second clip at a modest rate and splice it into
	//    2-second segments.
	enc := p2psplice.DefaultEncoderConfig()
	enc.BytesPerSecond = 64 * 1024
	_, manifest, blobs, err := p2psplice.BuildSwarmData(
		enc, 10*time.Second, 42, p2psplice.DurationSplicer{Target: 2 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clip packaged: %d segments, %d bytes total\n",
		len(manifest.Segments), manifest.TotalBytes())

	// 2. Run a tracker on a loopback port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	trkSrv := p2psplice.NewTracker()
	if reg != nil {
		trkSrv = p2psplice.NewTrackerWithMetrics(reg)
	}
	srv := &http.Server{Handler: trkSrv.Handler()}
	var srvWG sync.WaitGroup
	srvWG.Add(1)
	go func() {
		defer srvWG.Done()
		_ = srv.Serve(ln) // returns http.ErrServerClosed after Close
	}()
	defer func() {
		_ = srv.Close()
		srvWG.Wait()
	}()
	trk := p2psplice.NewTrackerClient("http://"+ln.Addr().String(), nil)
	fmt.Println("tracker on", ln.Addr())

	// 3. Seed the clip.
	seeder, err := p2psplice.Seed(trk, manifest, blobs, p2psplice.NodeConfig{
		AnnounceInterval: 200 * time.Millisecond,
		Metrics:          reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer seeder.Close()
	fmt.Println("seeder on", seeder.Addr(), "info hash", seeder.InfoHash())

	// 4. Two viewers join and stream with the paper's adaptive pooling.
	var viewers []*p2psplice.Node
	for i := 0; i < 2; i++ {
		v, err := p2psplice.Join(trk, seeder.InfoHash(), p2psplice.NodeConfig{
			Policy:           p2psplice.AdaptivePool{},
			AnnounceInterval: 200 * time.Millisecond,
			Metrics:          reg,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer v.Close()
		viewers = append(viewers, v)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for i, v := range viewers {
		if err := v.WaitComplete(ctx); err != nil {
			log.Fatalf("viewer %d: %v", i, err)
		}
		pm := v.Playback()
		st := v.Stats()
		fmt.Printf("viewer %d: startup=%v stalls=%d downloaded=%d bytes\n",
			i+1, pm.StartupTime.Round(time.Millisecond), pm.Stalls, st.DownloadedBytes)
	}
	fmt.Printf("seeder uploaded %d bytes; peers exchanged %d bytes peer-to-peer\n",
		seeder.Stats().UploadedBytes,
		viewers[0].Stats().UploadedBytes+viewers[1].Stats().UploadedBytes)

	if *linger > 0 {
		fmt.Printf("lingering %v for scrapers\n", *linger)
		time.Sleep(*linger)
	}
}
