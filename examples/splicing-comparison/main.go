// Splicing comparison: the paper's core experiment (Figures 2 and 3) at a
// reduced scale — GOP-based versus 2/4/8-second duration-based splicing on
// the emulated 20-node star, plus the Section II byte-overhead table.
package main

import (
	"fmt"
	"log"
	"time"

	"p2psplice"
)

func main() {
	params := p2psplice.QuickParams()
	params.ClipDuration = time.Minute
	params.Leechers = 8

	table, err := params.SpliceOverheadTable()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table.Figure.Render())

	fig2, err := params.Fig2Stalls([]int64{128, 256, 512, 1024})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig2.Figure.Render())

	fig3, err := params.Fig3StallDuration([]int64{128, 256, 512, 1024})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig3.Figure.Render())

	fmt.Println("Reading the tables:")
	fmt.Println(" - GOP splicing transfers the fewest bytes (no inserted I frames) but its")
	fmt.Println("   segment sizes are heavy-tailed: one stationary scene can produce a")
	fmt.Println("   multi-megabyte segment that the viewer must wait through.")
	fmt.Println(" - 2s splicing pays the most byte overhead (an extra I frame every 2s),")
	fmt.Println("   which hurts exactly when bandwidth is scarce.")
	fmt.Println(" - 4s is the paper's sweet spot; 8s trades startup time for stability.")
}
