// Adaptive pooling: the paper's Figure 5 experiment at a reduced scale —
// Equation 1 (k = max(floor(B*T/W), 1)) against fixed download pools — plus
// a direct demonstration of the formula's behaviour.
package main

import (
	"fmt"
	"log"
	"time"

	"p2psplice"
)

func main() {
	// The formula itself: how many segments should a peer fetch at once?
	fmt.Println("Equation 1: k = max(floor(B*T/W), 1)  (W = 512 kB segment)")
	fmt.Println("  T ->      0s   2s   4s   8s  16s")
	for _, bwKB := range []int64{128, 256, 512, 1024} {
		fmt.Printf("  B=%4d kB/s", bwKB)
		for _, t := range []time.Duration{0, 2 * time.Second, 4 * time.Second, 8 * time.Second, 16 * time.Second} {
			k := p2psplice.AdaptivePool{}.PoolSize(bwKB*1024, t, 512*1024)
			fmt.Printf(" %4d", k)
		}
		fmt.Println()
	}
	fmt.Println()

	// The swarm experiment: adaptive pooling vs fixed pools.
	params := p2psplice.QuickParams()
	params.ClipDuration = time.Minute
	params.Leechers = 8
	fig5, err := params.Fig5Pooling([]int64{128, 256, 512})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig5.Figure.Render())

	fmt.Println("The cost of over-pooling shows up most clearly in startup time: a fixed")
	fmt.Println("pool of 8 splits the first download eight ways while the viewer stares at")
	fmt.Println("a spinner; Equation 1 downloads exactly one segment when T = 0.")
}
