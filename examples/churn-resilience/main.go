// Churn resilience: the paper's motivation for prefetching — "peers can
// leave the swarm anytime" — exercised directly. The emulated swarm runs
// with and without churn; the seeder never departs, so survivors always
// finish, but departures cost stalls because in-flight downloads abort and
// distribution chains re-form.
package main

import (
	"fmt"
	"log"
	"time"

	"p2psplice"
)

func main() {
	video, err := p2psplice.Synthesize(p2psplice.DefaultEncoderConfig(), time.Minute, 23)
	if err != nil {
		log.Fatal(err)
	}
	segs, err := p2psplice.SpliceByDuration(video, 4*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	meta := p2psplice.SegmentsForSwarm(segs)

	run := func(churn p2psplice.ChurnModel) {
		var stalls, startup float64
		departed := 0
		const runs = 3
		for seed := int64(100); seed < 100+runs; seed++ {
			res, err := p2psplice.RunSwarm(p2psplice.SwarmConfig{
				Seed:                 seed,
				Leechers:             10,
				BandwidthBytesPerSec: 256 * 1024,
				PeerAccessDelay:      25 * time.Millisecond,
				SeederAccessDelay:    25 * time.Millisecond,
				LossRate:             0.05,
				Policy:               p2psplice.AdaptivePool{},
				OracleBandwidth:      true,
				JoinSpread:           5 * time.Second,
				ResumeBuffer:         6 * time.Second,
				Churn:                churn,
			}, meta)
			if err != nil {
				log.Fatal(err)
			}
			sum := res.Summary()
			stalls += sum.MeanStalls / runs
			startup += sum.MeanStartupSeconds / runs
			departed += res.Departed
			for _, s := range res.Samples {
				if !s.Finished {
					log.Fatalf("seed %d: surviving peer %d stranded", seed, s.Peer)
				}
			}
		}
		label := "no churn"
		if churn.MeanOnline > 0 {
			label = fmt.Sprintf("mean online %v", churn.MeanOnline)
		}
		fmt.Printf("%-22s: %.1f stalls, %.1fs startup, %d departures over %d runs (all survivors finished)\n",
			label, stalls, startup, departed, runs)
	}

	fmt.Println("10 viewers at 256 kB/s, 1-minute clip, adaptive pooling:")
	run(p2psplice.ChurnModel{})
	run(p2psplice.ChurnModel{MeanOnline: 40 * time.Second, MinRemaining: 3})
	run(p2psplice.ChurnModel{MeanOnline: 20 * time.Second, MinRemaining: 3})
	fmt.Println()
	fmt.Println("Departures abort in-flight uploads and downloads; survivors re-request from")
	fmt.Println("other holders, and the seeder guarantees availability — the paper's argument")
	fmt.Println("for prefetching ahead of the playhead.")
}
