// Hybrid CDN: the paper's Section IV — when a CDN serves segments one at a
// time, the safe segment size is W <= B*T. The origin hosts a *duration
// ladder* (2s/4s/8s splicings of the same clip) and the client switches
// variants at aligned boundaries, climbing to longer segments as its buffer
// grows. This is the "adaptive splicing" the paper leaves as future work:
// duration adapts, quality never degrades.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"p2psplice"
)

func main() {
	// Build three splicings of the same 16-second clip.
	enc := p2psplice.DefaultEncoderConfig()
	enc.BytesPerSecond = 48 * 1024
	video, err := p2psplice.Synthesize(enc, 16*time.Second, 11)
	if err != nil {
		log.Fatal(err)
	}
	origin := p2psplice.NewCDNOrigin()
	for _, target := range []time.Duration{2 * time.Second, 4 * time.Second, 8 * time.Second} {
		sp := p2psplice.DurationSplicer{Target: target}
		segs, err := sp.Splice(video)
		if err != nil {
			log.Fatal(err)
		}
		m, blobs, err := p2psplice.BuildManifest(video, sp.Name(), segs)
		if err != nil {
			log.Fatal(err)
		}
		if err := origin.AddVariant(sp.Name(), m, blobs); err != nil {
			log.Fatal(err)
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: origin.Handler()}
	var srvWG sync.WaitGroup
	srvWG.Add(1)
	go func() {
		defer srvWG.Done()
		_ = srv.Serve(ln) // returns http.ErrServerClosed after Close
	}()
	defer func() {
		_ = srv.Close()
		srvWG.Wait()
	}()
	fmt.Println("CDN origin on", ln.Addr(), "with variants", origin.VariantNames())

	client, err := p2psplice.NewCDNClient("http://"+ln.Addr().String(), nil)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := client.Load(ctx); err != nil {
		log.Fatal(err)
	}

	fmt.Println("streaming with duration-adaptive fetching (W <= B*T)...")
	res, err := client.Stream(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("downloaded %d bytes in %d fetches:\n", res.Bytes, len(res.Choices))
	for i, c := range res.Choices {
		fmt.Printf("  fetch %2d: variant=%-3s segment=%d (%d bytes) at clip time %v\n",
			i+1, c.Variant, c.Index, c.Bytes, c.Start.Round(time.Millisecond))
	}
	fmt.Printf("playback: startup=%v stalls=%d totalStall=%v state=%v\n",
		res.Metrics.StartupTime.Round(time.Millisecond), res.Metrics.Stalls,
		res.Metrics.TotalStall.Round(time.Millisecond), res.Metrics.State)
	fmt.Println("note the first fetch uses the smallest segment (T=0 at startup) and later")
	fmt.Println("fetches climb the duration ladder as the buffer deepens.")
}
