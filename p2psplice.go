// Package p2psplice is a library for studying and deploying video splicing
// techniques in peer-to-peer video streaming. It reproduces the system from
// "Video Splicing Techniques for P2P Video Streaming" (Islam & Khan,
// ICDCS 2015): GOP-based and duration-based splicers, the adaptive
// download-pooling formula k = max(floor(B*T/W), 1), a BitTorrent-like
// swarm over real TCP, a deterministic testbed emulation for experiments,
// and a hybrid CDN mode with W <= B*T segment sizing.
//
// The package re-exports the library's building blocks so downstream users
// need only this import:
//
//	video, _  := p2psplice.Synthesize(p2psplice.DefaultEncoderConfig(), 2*time.Minute, 42)
//	segments, _ := p2psplice.SpliceByDuration(video, 4*time.Second)
//	manifest, blobs, _ := p2psplice.BuildManifest(video, "4s", segments)
//
// Real swarms run over TCP (Tracker/Seed/Join); experiments run on the
// deterministic emulator (RunSwarm, Experiments).
package p2psplice

import (
	"fmt"
	"net/http"
	"time"

	"p2psplice/internal/cdn"
	"p2psplice/internal/container"
	"p2psplice/internal/core"
	"p2psplice/internal/debughttp"
	"p2psplice/internal/experiment"
	"p2psplice/internal/media"
	"p2psplice/internal/metrics"
	"p2psplice/internal/peer"
	"p2psplice/internal/player"
	"p2psplice/internal/shaper"
	"p2psplice/internal/simpeer"
	"p2psplice/internal/splicer"
	"p2psplice/internal/topology"
	"p2psplice/internal/trace"
	"p2psplice/internal/tracker"
	"p2psplice/internal/wire"
)

// Synthetic video (internal/media).
type (
	// EncoderConfig configures the synthetic MPEG-4-like encoder.
	EncoderConfig = media.EncoderConfig
	// SceneModel drives the GOP-duration distribution.
	SceneModel = media.SceneModel
	// Video is a synthesized clip.
	Video = media.Video
	// Frame is one coded picture.
	Frame = media.Frame
	// GOP is a closed group of pictures.
	GOP = media.GOP
)

// DefaultEncoderConfig returns the paper's 1 Mbps clip configuration.
func DefaultEncoderConfig() EncoderConfig { return media.DefaultEncoderConfig() }

// Synthesize encodes a deterministic synthetic clip.
func Synthesize(cfg EncoderConfig, duration time.Duration, seed int64) (*Video, error) {
	return media.Synthesize(cfg, duration, seed)
}

// Splicing (internal/splicer).
type (
	// Splicer cuts a clip into segments.
	Splicer = splicer.Splicer
	// Segment is one spliced piece.
	Segment = splicer.Segment
	// SpliceStats summarizes a splicing's overhead and size spread.
	SpliceStats = splicer.Stats
	// GOPSplicer emits one segment per closed GOP.
	GOPSplicer = splicer.GOPSplicer
	// DurationSplicer cuts fixed-duration, frame-accurate segments.
	DurationSplicer = splicer.DurationSplicer
	// AdaptiveSplicer derives the duration target from W <= B*T.
	AdaptiveSplicer = splicer.AdaptiveSplicer
)

// SpliceByGOP cuts v at closed-GOP boundaries (zero byte overhead).
func SpliceByGOP(v *Video) ([]Segment, error) {
	return splicer.GOPSplicer{}.Splice(v)
}

// SpliceByDuration cuts v into fixed-duration segments, re-encoding the
// first frame of each mid-GOP cut as an I frame.
func SpliceByDuration(v *Video, target time.Duration) ([]Segment, error) {
	return splicer.DurationSplicer{Target: target}.Splice(v)
}

// ComputeSpliceStats summarizes segments.
func ComputeSpliceStats(segs []Segment) SpliceStats { return splicer.ComputeStats(segs) }

// Container & manifest (internal/container).
type (
	// Manifest is the published playlist with per-segment checksums.
	Manifest = container.Manifest
	// ClipInfo is the manifest's clip metadata.
	ClipInfo = container.ClipInfo
	// SegmentInfo is one manifest entry.
	SegmentInfo = container.SegmentInfo
)

// BuildManifest materializes segments into wire containers and a manifest.
func BuildManifest(v *Video, splicing string, segs []Segment) (*Manifest, [][]byte, error) {
	info := container.ClipInfo{
		Duration:       v.Duration(),
		BytesPerSecond: v.Config.BytesPerSecond,
		Seed:           v.Seed,
	}
	return container.BuildManifest(info, splicing, segs)
}

// Download policies (internal/core) — the paper's contribution.
type (
	// Policy decides how many segments to download simultaneously.
	Policy = core.Policy
	// AdaptivePool is Equation 1: k = max(floor(B*T/W), 1).
	AdaptivePool = core.AdaptivePool
	// FixedPool always keeps K downloads in flight.
	FixedPool = core.FixedPool
	// BandwidthEstimator is an EWMA over completed transfers.
	BandwidthEstimator = core.BandwidthEstimator
)

// MaxSegmentBytes is the paper's Section IV rule for hybrid CDN systems:
// the largest stall-free segment is W = B*T.
func MaxSegmentBytes(bandwidth int64, buffered time.Duration) int64 {
	return core.MaxSegmentBytes(bandwidth, buffered)
}

// NewBandwidthEstimator returns an EWMA estimator with smoothing alpha.
func NewBandwidthEstimator(alpha float64) (*BandwidthEstimator, error) {
	return core.NewBandwidthEstimator(alpha)
}

// Playback (internal/player).
type (
	// PlayerMetrics is a snapshot of startup/stall measures.
	PlayerMetrics = player.Metrics
	// PlayerState is the playback state.
	PlayerState = player.State
)

// Emulated experiments (internal/simpeer, internal/experiment).
type (
	// SwarmConfig configures one deterministic emulated run.
	SwarmConfig = simpeer.SwarmConfig
	// SwarmResult is the outcome of an emulated run.
	SwarmResult = simpeer.Result
	// SegmentMeta is the emulation's view of one segment.
	SegmentMeta = simpeer.SegmentMeta
	// ChurnModel makes emulated leechers depart mid-swarm.
	ChurnModel = simpeer.ChurnModel
	// CDNAssist adds the Section IV hybrid CDN to an emulated swarm.
	CDNAssist = simpeer.CDNAssist
	// ExperimentParams parameterizes the paper's figure sweeps.
	ExperimentParams = experiment.Params
	// FigureResult is a rendered figure plus raw series.
	FigureResult = experiment.FigureResult
	// TopologySpec is the declarative star-topology description.
	TopologySpec = topology.Spec
)

// RunSwarm executes one deterministic emulated swarm.
func RunSwarm(cfg SwarmConfig, segs []SegmentMeta) (*SwarmResult, error) {
	return simpeer.RunSwarm(cfg, segs)
}

// SegmentsForSwarm converts spliced segments into emulation metadata,
// accounting for container framing on the wire.
func SegmentsForSwarm(segs []Segment) []SegmentMeta {
	out := make([]SegmentMeta, len(segs))
	for i, s := range segs {
		out[i] = SegmentMeta{
			Bytes:    container.WireSize(len(s.Frames), s.Bytes()),
			Duration: s.Duration(),
		}
	}
	return out
}

// PaperParams returns the paper's Section V experiment setup.
func PaperParams() ExperimentParams { return experiment.DefaultParams() }

// QuickParams returns a scaled-down experiment setup for smoke runs.
func QuickParams() ExperimentParams { return experiment.QuickParams() }

// Real TCP swarm (internal/tracker, internal/peer).
type (
	// Tracker is the rendezvous service.
	Tracker = tracker.Server
	// TrackerClient talks to a tracker.
	TrackerClient = tracker.Client
	// Node is a real swarm member.
	Node = peer.Node
	// NodeConfig configures a node.
	NodeConfig = peer.Config
	// InfoHash identifies a swarm.
	InfoHash = wire.InfoHash
	// LinkShape shapes a node's connections (bandwidth/latency).
	LinkShape = shaper.Config
)

// NewTracker returns a tracker; mount its Handler on an http.Server.
func NewTracker() *Tracker { return tracker.NewServer() }

// Telemetry (internal/trace, internal/debughttp).
type (
	// MetricsRegistry accumulates counters, gauges, and histograms.
	// Assign one to NodeConfig.Metrics to instrument a node; render it
	// with WriteText (human) or WriteProm (Prometheus exposition).
	MetricsRegistry = trace.Registry
	// DebugConfig configures StartDebug.
	DebugConfig = debughttp.Config
	// DebugServer serves /metrics, /healthz, and /debug/pprof.
	DebugServer = debughttp.Server
)

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return trace.NewRegistry() }

// NewTrackerWithMetrics returns a tracker whose request counters and
// swarm gauge record into reg.
func NewTrackerWithMetrics(reg *MetricsRegistry) *Tracker {
	return tracker.NewServer(tracker.WithMetrics(reg))
}

// StartDebug serves the operational debug endpoint until Close.
func StartDebug(cfg DebugConfig) (*DebugServer, error) { return debughttp.Start(cfg) }

// NewTrackerClient returns a client for the tracker at base URL.
func NewTrackerClient(base string, httpClient *http.Client) *TrackerClient {
	return tracker.NewClient(base, httpClient)
}

// Seed publishes a manifest and serves its segments.
func Seed(trk *TrackerClient, m *Manifest, blobs [][]byte, cfg NodeConfig) (*Node, error) {
	return peer.Seed(trk, m, blobs, cfg)
}

// Join downloads and plays the identified clip.
func Join(trk *TrackerClient, infoHash InfoHash, cfg NodeConfig) (*Node, error) {
	return peer.Join(trk, infoHash, cfg)
}

// Hybrid CDN (internal/cdn).
type (
	// CDNOrigin serves spliced segments over HTTP.
	CDNOrigin = cdn.Origin
	// CDNClient streams with duration-adaptive fetching (W <= B*T).
	CDNClient = cdn.Client
	// CDNChoice is one variant-selection decision.
	CDNChoice = cdn.Choice
)

// NewCDNOrigin returns an empty origin; add splicing variants and mount its
// Handler.
func NewCDNOrigin() *CDNOrigin { return cdn.NewOrigin() }

// NewCDNClient returns a duration-adaptive streaming client.
func NewCDNClient(base string, httpClient *http.Client) (*CDNClient, error) {
	return cdn.NewClient(base, httpClient)
}

// StarTopology returns the paper's 20-node star as a declarative spec.
func StarTopology(name string, leechers int, bandwidthKBps int64, seederDelay time.Duration, lossPct float64) TopologySpec {
	return topology.Star(name, leechers, bandwidthKBps, seederDelay, lossPct)
}

// Version is the library version.
const Version = "1.0.0"

// BuildSwarmData is a convenience that synthesizes, splices, and packages a
// clip in one call, returning everything a Seed needs.
func BuildSwarmData(cfg EncoderConfig, clip time.Duration, seed int64, sp Splicer) (*Video, *Manifest, [][]byte, error) {
	v, err := media.Synthesize(cfg, clip, seed)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("p2psplice: synthesize: %w", err)
	}
	segs, err := sp.Splice(v)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("p2psplice: splice: %w", err)
	}
	m, blobs, err := BuildManifest(v, sp.Name(), segs)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("p2psplice: package: %w", err)
	}
	return v, m, blobs, nil
}

// OptimalSegmentDuration picks, for a clip and an expected bandwidth, the
// segment duration that minimizes viewer-visible waiting: the smallest
// duration whose overhead-inflated demand fits within safety*bandwidth (see
// EXPERIMENTS.md Figure 6). This is the algorithm the paper leaves as
// future work.
func OptimalSegmentDuration(v *Video, bandwidth int64, requestLag time.Duration, safety float64) (time.Duration, error) {
	return splicer.OptimalDuration(v, bandwidth, requestLag, safety)
}

// RealStackConfig configures a real-TCP cross-validation run.
type RealStackConfig = experiment.RealStackConfig

// RealStackRun streams a clip over real loopback TCP (in-process tracker,
// seeder, and viewers, optionally shaped) and returns per-viewer playback
// samples — the cross-validation counterpart of RunSwarm.
func RealStackRun(cfg RealStackConfig) ([]PlaybackSample, error) {
	return experiment.RealStackRun(cfg)
}

// PlaybackSample is one viewer's playback outcome.
type PlaybackSample = metrics.PlaybackSample
