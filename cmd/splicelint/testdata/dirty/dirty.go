// Driver-test fixture: one unsuppressed golifecycle finding.
package dirty

func spawn(work func()) {
	go work()
}
