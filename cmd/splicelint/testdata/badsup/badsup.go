// Driver-test fixture: a //lint:ignore comment with no reason neither
// silences the finding nor passes itself.
package badsup

func spawn(work func()) {
	//lint:ignore golifecycle
	go work()
}
