// Driver-test fixture: the same finding, silenced with a justified
// //lint:ignore comment, so splicelint exits 0.
package suppressed

func spawn(work func()) {
	//lint:ignore golifecycle driver-test fixture exercising suppression
	go work()
}
