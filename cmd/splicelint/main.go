// Command splicelint runs the repository's static-analysis suite: the
// determinism, detercall, mutexguard, golifecycle, wireerr, floatcmp,
// allocfree, and atomicguard analyzers from internal/analysis, built
// entirely on the stdlib go/* packages.
//
// Usage:
//
//	splicelint [-json] [-enable a,b] [-disable a,b] [-deadignores] [-list] [patterns...]
//
// Patterns default to ./... relative to the module root; they are
// always expanded to their module-internal dependency closure so the
// cross-package facts engine (detercall, allocfree, atomicguard) sees
// every helper package the named packages reach. Exit status is 0 when
// clean, 1 when findings were reported, 2 on usage or load errors.
// Findings can be silenced in source with
//
//	//lint:ignore analyzer reason
//
// on, or directly above, the offending line; a suppression without a
// reason is itself reported. With -deadignores, well-formed
// //lint:ignore comments that silenced nothing are reported too (only
// meaningful with the full analyzer set: a disabled analyzer makes its
// suppressions look dead).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"p2psplice/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("splicelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	deadIgnores := fs.Bool("deadignores", false, "also report //lint:ignore comments that suppress nothing")
	list := fs.Bool("list", false, "list analyzers and exit")
	modRoot := fs.String("mod", "", "module root (default: walk up from cwd to go.mod)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: splicelint [flags] [package patterns]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(stderr, "splicelint:", err)
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root := *modRoot
	if root == "" {
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(stderr, "splicelint:", err)
			return 2
		}
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "splicelint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "splicelint:", err)
		return 2
	}
	pkgs = loader.Closure(pkgs)

	res, err := analysis.RunResult(analyzers, pkgs)
	if err != nil {
		fmt.Fprintln(stderr, "splicelint:", err)
		return 2
	}
	findings := res.Findings
	findings = append(findings, analysis.BadSuppressions(pkgs)...)
	if *deadIgnores {
		findings = append(findings, res.DeadIgnores...)
	}
	for i := range findings {
		findings[i].File = relPath(findings[i].File)
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].File != findings[j].File {
			return findings[i].File < findings[j].File
		}
		return findings[i].Line < findings[j].Line
	})

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "splicelint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(stdout, "splicelint: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers applies -enable / -disable to the registry.
func selectAnalyzers(enable, disable string) ([]*analysis.Analyzer, error) {
	set := func(csv string) (map[string]bool, error) {
		if csv == "" {
			return nil, nil
		}
		m := map[string]bool{}
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			if analysis.ByName(name) == nil {
				return nil, fmt.Errorf("unknown analyzer %q", name)
			}
			m[name] = true
		}
		return m, nil
	}
	en, err := set(enable)
	if err != nil {
		return nil, err
	}
	dis, err := set(disable)
	if err != nil {
		return nil, err
	}
	var out []*analysis.Analyzer
	for _, a := range analysis.All() {
		if en != nil && !en[a.Name] {
			continue
		}
		if dis[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}

// findModuleRoot walks up from the working directory to go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// relPath shortens absolute finding paths relative to the cwd.
func relPath(p string) string {
	cwd, err := os.Getwd()
	if err != nil {
		return p
	}
	if rel, err := filepath.Rel(cwd, p); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return p
}
