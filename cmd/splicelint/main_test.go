package main

import (
	"encoding/json"
	"strings"
	"testing"

	"p2psplice/internal/analysis"
)

// runLint invokes the driver's run function against a fixture package
// and returns (exit code, stdout, stderr).
func runLint(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(append([]string{"-mod", "../.."}, args...), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestDirtyPackageNonZeroExit(t *testing.T) {
	code, out, errOut := runLint(t, "testdata/dirty")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout=%q stderr=%q", code, out, errOut)
	}
	if !strings.Contains(out, "[golifecycle]") || !strings.Contains(out, "dirty.go") {
		t.Errorf("human output missing finding: %q", out)
	}
	if !strings.Contains(out, "1 finding(s)") {
		t.Errorf("human output missing summary: %q", out)
	}
}

func TestJSONOutput(t *testing.T) {
	code, out, _ := runLint(t, "-json", "testdata/dirty")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var findings []analysis.Finding
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %+v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "golifecycle" || f.Line == 0 || !strings.HasSuffix(f.File, "dirty.go") {
		t.Errorf("unexpected finding: %+v", f)
	}
}

func TestJSONOutputCleanIsEmptyArray(t *testing.T) {
	code, out, _ := runLint(t, "-json", "testdata/suppressed")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; out=%q", code, out)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("clean JSON output = %q, want []", out)
	}
}

func TestSuppressionComment(t *testing.T) {
	code, out, _ := runLint(t, "testdata/suppressed")
	if code != 0 {
		t.Fatalf("justified //lint:ignore should silence the finding; exit=%d out=%q", code, out)
	}
}

func TestSuppressionWithoutReason(t *testing.T) {
	code, out, _ := runLint(t, "testdata/badsup")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; out=%q", code, out)
	}
	if !strings.Contains(out, "[golifecycle]") {
		t.Errorf("reason-less suppression must not silence the finding: %q", out)
	}
	if !strings.Contains(out, "[suppression]") {
		t.Errorf("reason-less suppression should itself be reported: %q", out)
	}
}

func TestDisableAnalyzer(t *testing.T) {
	code, out, _ := runLint(t, "-disable", "golifecycle", "testdata/dirty")
	if code != 0 {
		t.Fatalf("with golifecycle disabled the fixture is clean; exit=%d out=%q", code, out)
	}
}

func TestEnableSubset(t *testing.T) {
	code, _, _ := runLint(t, "-enable", "wireerr,floatcmp", "testdata/dirty")
	if code != 0 {
		t.Fatalf("enabling only unrelated analyzers should pass; exit=%d", code)
	}
	code, out, _ := runLint(t, "-enable", "golifecycle", "testdata/dirty")
	if code != 1 || !strings.Contains(out, "[golifecycle]") {
		t.Fatalf("enabling golifecycle should reproduce the finding; exit=%d out=%q", code, out)
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	code, _, errOut := runLint(t, "-enable", "nosuch", "testdata/dirty")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown analyzer") {
		t.Errorf("stderr = %q, want unknown-analyzer error", errOut)
	}
}

func TestListAnalyzers(t *testing.T) {
	code, out, _ := runLint(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, a := range analysis.All() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output missing %q: %q", a.Name, out)
		}
	}
}
