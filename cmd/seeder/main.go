// Command seeder synthesizes a clip, splices it, publishes the manifest to a
// tracker, and serves the segments to the swarm until interrupted.
//
// Usage:
//
//	seeder -tracker http://127.0.0.1:7070 [-listen 127.0.0.1:0] [-clip 2m]
//	       [-seed 42] [-splicing 4s] [-rate 125000]
//	       [-shape-kbps 128] [-shape-latency 25ms]
//	       [-debug-addr 127.0.0.1:6060] [-metrics-log 30s]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"p2psplice/internal/container"
	"p2psplice/internal/debughttp"
	"p2psplice/internal/media"
	"p2psplice/internal/peer"
	"p2psplice/internal/shaper"
	"p2psplice/internal/splicer"
	"p2psplice/internal/trace"
	"p2psplice/internal/tracker"
)

func main() {
	var (
		trackerURL = flag.String("tracker", "http://127.0.0.1:7070", "tracker base URL")
		listen     = flag.String("listen", "127.0.0.1:0", "peer listen address")
		clip       = flag.Duration("clip", 2*time.Minute, "clip duration")
		seed       = flag.Int64("seed", 42, "synthesis seed")
		splicing   = flag.String("splicing", "4s", "technique: gop or a duration like 4s")
		rate       = flag.Int64("rate", 0, "override clip rate in bytes/second")
		shapeKBps  = flag.Int64("shape-kbps", 0, "shape the access link to this many kB/s (0 = unshaped)")
		shapeLat   = flag.Duration("shape-latency", 0, "access-link setup latency")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (empty = off)")
		metricsLog = flag.Duration("metrics-log", 0, "log a registry snapshot to stderr at this period (0 = off)")
	)
	flag.Parse()
	if err := run(*trackerURL, *listen, *clip, *seed, *splicing, *rate, *shapeKBps, *shapeLat, *debugAddr, *metricsLog); err != nil {
		fmt.Fprintln(os.Stderr, "seeder:", err)
		os.Exit(1)
	}
}

func run(trackerURL, listen string, clip time.Duration, seed int64, splicing string,
	rate, shapeKBps int64, shapeLat time.Duration, debugAddr string, metricsLog time.Duration) error {
	cfg := media.DefaultEncoderConfig()
	if rate > 0 {
		cfg.BytesPerSecond = rate
	}
	var sp splicer.Splicer
	if splicing == "gop" {
		sp = splicer.GOPSplicer{}
	} else {
		d, err := time.ParseDuration(splicing)
		if err != nil || d <= 0 {
			return fmt.Errorf("bad splicing %q", splicing)
		}
		sp = splicer.DurationSplicer{Target: d}
	}

	v, err := media.Synthesize(cfg, clip, seed)
	if err != nil {
		return err
	}
	segs, err := sp.Splice(v)
	if err != nil {
		return err
	}
	m, blobs, err := container.BuildManifest(container.ClipInfo{
		Duration: v.Duration(), BytesPerSecond: cfg.BytesPerSecond, Seed: seed,
	}, sp.Name(), segs)
	if err != nil {
		return err
	}

	nodeCfg := peer.Config{ListenAddr: listen}
	if shapeKBps > 0 || shapeLat > 0 {
		nodeCfg.Shape = &shaper.Config{RateBytesPerSec: shapeKBps * 1024, Latency: shapeLat}
	}
	var reg *trace.Registry
	if debugAddr != "" || metricsLog > 0 {
		reg = trace.NewRegistry()
		nodeCfg.Metrics = reg
	}
	if debugAddr != "" {
		dbg, err := debughttp.Start(debughttp.Config{
			Addr:          debugAddr,
			Registry:      reg,
			SnapshotEvery: metricsLog,
		})
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Println("debug endpoint on http://" + dbg.Addr())
	} else if metricsLog > 0 {
		sl := debughttp.StartSnapshotLogger(reg, metricsLog, func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		})
		defer sl.Stop()
	}
	trk := tracker.NewClient(trackerURL, nil)
	node, err := peer.Seed(trk, m, blobs, nodeCfg)
	if err != nil {
		return err
	}
	defer node.Close()

	fmt.Printf("seeding %d segments (%s splicing, %d bytes) on %s\n",
		len(m.Segments), sp.Name(), m.TotalBytes(), node.Addr())
	fmt.Printf("info hash: %s\n", node.InfoHash())
	fmt.Println("join with: peer -tracker", trackerURL, "-info-hash", node.InfoHash())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(10 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			fmt.Println("\nshutting down")
			return nil
		case <-tick.C:
			st := node.Stats()
			fmt.Printf("uploaded %d bytes over %d connections\n", st.UploadedBytes, st.Connections)
		}
	}
}
