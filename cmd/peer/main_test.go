package main

import (
	"testing"

	"p2psplice/internal/core"
)

func TestParsePolicy(t *testing.T) {
	p, err := parsePolicy("adaptive")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(core.AdaptivePool); !ok {
		t.Errorf("adaptive parsed as %T", p)
	}
	p, err = parsePolicy("pool-4")
	if err != nil {
		t.Fatal(err)
	}
	if fp, ok := p.(core.FixedPool); !ok || fp.K != 4 {
		t.Errorf("pool-4 parsed as %#v", p)
	}
	for _, bad := range []string{"", "pool-", "pool-0", "pool-x", "magic"} {
		if _, err := parsePolicy(bad); err == nil {
			t.Errorf("parsePolicy(%q): want error", bad)
		}
	}
}
