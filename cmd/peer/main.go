// Command peer joins a swarm as a viewer: it downloads the clip with the
// chosen pooling policy, "plays" it, and reports startup time and stalls —
// the measurements in the paper's Figures 2-5, on a real network.
//
// Usage:
//
//	peer -tracker http://127.0.0.1:7070 -info-hash HEX
//	     [-policy adaptive|pool-2|pool-4|pool-8] [-listen 127.0.0.1:0]
//	     [-shape-kbps 128] [-shape-latency 25ms] [-progress] [-trace FILE]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"p2psplice/internal/core"
	"p2psplice/internal/peer"
	"p2psplice/internal/player"
	"p2psplice/internal/shaper"
	"p2psplice/internal/trace"
	"p2psplice/internal/tracker"
	"p2psplice/internal/wire"
)

func main() {
	var (
		trackerURL = flag.String("tracker", "http://127.0.0.1:7070", "tracker base URL")
		infoHash   = flag.String("info-hash", "", "swarm info hash (hex)")
		policyName = flag.String("policy", "adaptive", "download policy: adaptive or pool-N")
		listen     = flag.String("listen", "127.0.0.1:0", "peer listen address")
		shapeKBps  = flag.Int64("shape-kbps", 0, "shape the access link to this many kB/s (0 = unshaped)")
		shapeLat   = flag.Duration("shape-latency", 0, "access-link setup latency")
		progress   = flag.Bool("progress", false, "print download progress")
		timeout    = flag.Duration("timeout", 30*time.Minute, "abort if not complete after this long")
		tracePath  = flag.String("trace", "", "stream trace events to this file as JSONL and print the counter registry on exit")
	)
	flag.Parse()
	if err := run(*trackerURL, *infoHash, *policyName, *listen, *shapeKBps, *shapeLat, *progress, *timeout, *tracePath); err != nil {
		fmt.Fprintln(os.Stderr, "peer:", err)
		os.Exit(1)
	}
}

func parsePolicy(name string) (core.Policy, error) {
	if name == "adaptive" {
		return core.AdaptivePool{}, nil
	}
	if k, ok := strings.CutPrefix(name, "pool-"); ok {
		n, err := strconv.Atoi(k)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad pool size in %q", name)
		}
		return core.FixedPool{K: n}, nil
	}
	return nil, fmt.Errorf("unknown policy %q (want adaptive or pool-N)", name)
}

func run(trackerURL, infoHash, policyName, listen string, shapeKBps int64,
	shapeLat time.Duration, progress bool, timeout time.Duration, tracePath string) error {
	ih, err := wire.ParseInfoHash(infoHash)
	if err != nil {
		return err
	}
	policy, err := parsePolicy(policyName)
	if err != nil {
		return err
	}
	cfg := peer.Config{ListenAddr: listen, Policy: policy, AnnounceInterval: 5 * time.Second}
	if shapeKBps > 0 || shapeLat > 0 {
		cfg.Shape = &shaper.Config{RateBytesPerSec: shapeKBps * 1024, Latency: shapeLat}
	}

	var reg *trace.Registry
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		jw := trace.NewJSONLWriter(f)
		cfg.Trace = trace.New(jw)
		reg = trace.NewRegistry()
		cfg.Metrics = reg
		defer func() {
			if err := jw.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "peer: trace:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "peer: trace:", err)
			}
			fmt.Println("-- metrics --")
			if err := reg.WriteText(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "peer: metrics:", err)
			}
		}()
	}

	trk := tracker.NewClient(trackerURL, nil)
	node, err := peer.Join(trk, ih, cfg)
	if err != nil {
		return err
	}
	defer node.Close()

	m := node.Manifest()
	fmt.Printf("joined swarm %s: %d segments, %v clip, policy %s\n",
		ih, len(m.Segments), m.Video.Duration.Round(time.Millisecond), policy.Name())

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	if progress {
		tick := time.NewTicker(2 * time.Second)
		defer tick.Stop()
		go func() {
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					st := node.Stats()
					pm := node.Playback()
					fmt.Printf("  %3d/%3d segments, %8d bytes, state=%s pos=%v\n",
						st.SegmentsHeld, len(m.Segments), st.DownloadedBytes, pm.State, pm.Position.Round(time.Second))
				}
			}
		}()
	}

	if err := node.WaitComplete(ctx); err != nil {
		return fmt.Errorf("download incomplete: %w", err)
	}
	pm := node.Playback()
	fmt.Printf("download complete: startup=%v stalls=%d totalStall=%v\n",
		pm.StartupTime.Round(time.Millisecond), pm.Stalls, pm.TotalStall.Round(time.Millisecond))

	// Keep seeding until playback would have finished, then report.
	if pm.State != player.StateFinished {
		remaining := m.Video.Duration - pm.Position
		fmt.Printf("seeding while playback drains (%v remaining)\n", remaining.Round(time.Second))
		select {
		case <-time.After(remaining + time.Second):
		case <-ctx.Done():
		}
		pm = node.Playback()
	}
	fmt.Printf("final: state=%s startup=%v stalls=%d totalStall=%v\n",
		pm.State, pm.StartupTime.Round(time.Millisecond), pm.Stalls, pm.TotalStall.Round(time.Millisecond))
	return nil
}
