// Command peer joins a swarm as a viewer: it downloads the clip with the
// chosen pooling policy, "plays" it, and reports startup time and stalls —
// the measurements in the paper's Figures 2-5, on a real network.
//
// Usage:
//
//	peer -tracker http://127.0.0.1:7070 -info-hash HEX
//	     [-policy adaptive|pool-2|pool-4|pool-8] [-listen 127.0.0.1:0]
//	     [-shape-kbps 128] [-shape-latency 25ms] [-progress] [-trace FILE]
//	     [-debug-addr 127.0.0.1:6060] [-metrics-log 30s]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"p2psplice/internal/core"
	"p2psplice/internal/debughttp"
	"p2psplice/internal/peer"
	"p2psplice/internal/player"
	"p2psplice/internal/shaper"
	"p2psplice/internal/trace"
	"p2psplice/internal/tracker"
	"p2psplice/internal/wire"
)

// options collects the command-line configuration for run.
type options struct {
	trackerURL string
	infoHash   string
	policyName string
	listen     string
	shapeKBps  int64
	shapeLat   time.Duration
	progress   bool
	timeout    time.Duration
	tracePath  string
	debugAddr  string
	metricsLog time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.trackerURL, "tracker", "http://127.0.0.1:7070", "tracker base URL")
	flag.StringVar(&o.infoHash, "info-hash", "", "swarm info hash (hex)")
	flag.StringVar(&o.policyName, "policy", "adaptive", "download policy: adaptive or pool-N")
	flag.StringVar(&o.listen, "listen", "127.0.0.1:0", "peer listen address")
	flag.Int64Var(&o.shapeKBps, "shape-kbps", 0, "shape the access link to this many kB/s (0 = unshaped)")
	flag.DurationVar(&o.shapeLat, "shape-latency", 0, "access-link setup latency")
	flag.BoolVar(&o.progress, "progress", false, "print download progress")
	flag.DurationVar(&o.timeout, "timeout", 30*time.Minute, "abort if not complete after this long")
	flag.StringVar(&o.tracePath, "trace", "", "stream trace events to this file as JSONL and print the counter registry on exit")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "serve /metrics, /healthz, /readyz and /debug/pprof on this address (empty = off)")
	flag.DurationVar(&o.metricsLog, "metrics-log", 0, "log a registry snapshot to stderr at this period (0 = off)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "peer:", err)
		os.Exit(1)
	}
}

func parsePolicy(name string) (core.Policy, error) {
	if name == "adaptive" {
		return core.AdaptivePool{}, nil
	}
	if k, ok := strings.CutPrefix(name, "pool-"); ok {
		n, err := strconv.Atoi(k)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad pool size in %q", name)
		}
		return core.FixedPool{K: n}, nil
	}
	return nil, fmt.Errorf("unknown policy %q (want adaptive or pool-N)", name)
}

func run(o options) error {
	ih, err := wire.ParseInfoHash(o.infoHash)
	if err != nil {
		return err
	}
	policy, err := parsePolicy(o.policyName)
	if err != nil {
		return err
	}
	cfg := peer.Config{ListenAddr: o.listen, Policy: policy, AnnounceInterval: 5 * time.Second}
	if o.shapeKBps > 0 || o.shapeLat > 0 {
		cfg.Shape = &shaper.Config{RateBytesPerSec: o.shapeKBps * 1024, Latency: o.shapeLat}
	}

	// One registry backs every output: the -trace exit dump, the
	// /metrics scrape, and the periodic snapshot log all render the same
	// trace.Registry through Registry.Snap, so they cannot disagree.
	var reg *trace.Registry
	if o.tracePath != "" || o.debugAddr != "" || o.metricsLog > 0 {
		reg = trace.NewRegistry()
		cfg.Metrics = reg
	}
	if o.tracePath != "" {
		f, err := os.Create(o.tracePath)
		if err != nil {
			return err
		}
		jw := trace.NewJSONLWriter(f)
		cfg.Trace = trace.New(jw)
		defer func() {
			if err := jw.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "peer: trace:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "peer: trace:", err)
			}
			fmt.Println("-- metrics --")
			if err := reg.WriteText(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "peer: metrics:", err)
			}
		}()
	}
	// The debug endpoint starts before Join so /healthz and /metrics are
	// scrapeable during startup; /readyz stays 503 until the node has
	// joined and holds at least one live connection.
	var joined atomic.Pointer[peer.Node]
	if o.debugAddr != "" {
		dbg, err := debughttp.Start(debughttp.Config{
			Addr:          o.debugAddr,
			Registry:      reg,
			SnapshotEvery: o.metricsLog,
			Ready: func() error {
				n := joined.Load()
				if n == nil {
					return errors.New("still joining the swarm")
				}
				return n.Ready()
			},
		})
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Println("debug endpoint on http://" + dbg.Addr())
	} else if o.metricsLog > 0 {
		sl := debughttp.StartSnapshotLogger(reg, o.metricsLog, func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		})
		defer sl.Stop()
	}

	trk := tracker.NewClient(o.trackerURL, nil)
	node, err := peer.Join(trk, ih, cfg)
	if err != nil {
		return err
	}
	defer node.Close()
	joined.Store(node)

	m := node.Manifest()
	fmt.Printf("joined swarm %s: %d segments, %v clip, policy %s\n",
		ih, len(m.Segments), m.Video.Duration.Round(time.Millisecond), policy.Name())

	ctx, cancel := context.WithTimeout(context.Background(), o.timeout)
	defer cancel()

	if o.progress {
		tick := time.NewTicker(2 * time.Second)
		defer tick.Stop()
		go func() {
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					st := node.Stats()
					pm := node.Playback()
					fmt.Printf("  %3d/%3d segments, %8d bytes, state=%s pos=%v\n",
						st.SegmentsHeld, len(m.Segments), st.DownloadedBytes, pm.State, pm.Position.Round(time.Second))
				}
			}
		}()
	}

	if err := node.WaitComplete(ctx); err != nil {
		return fmt.Errorf("download incomplete: %w", err)
	}
	pm := node.Playback()
	fmt.Printf("download complete: startup=%v stalls=%d totalStall=%v\n",
		pm.StartupTime.Round(time.Millisecond), pm.Stalls, pm.TotalStall.Round(time.Millisecond))

	// Keep seeding until playback would have finished, then report.
	if pm.State != player.StateFinished {
		remaining := m.Video.Duration - pm.Position
		fmt.Printf("seeding while playback drains (%v remaining)\n", remaining.Round(time.Second))
		select {
		case <-time.After(remaining + time.Second):
		case <-ctx.Done():
		}
		pm = node.Playback()
	}
	fmt.Printf("final: state=%s startup=%v stalls=%d totalStall=%v\n",
		pm.State, pm.StartupTime.Round(time.Millisecond), pm.Stalls, pm.TotalStall.Round(time.Millisecond))
	return nil
}
