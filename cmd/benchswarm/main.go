// Command benchswarm produces the swarm-scale emulation perf artifact
// (BENCH_8.json): it times a 10k-peer locality-clustered swarm on the
// incremental reallocator, times the forced-full recompute baseline on
// the identical workload (event-budget truncated, since a full 10k-peer
// drain under per-event full recomputes is precisely the cost the
// incremental path removes), and reports throughput plus the
// full-vs-incremental ratio. The JSON schema is documented in DESIGN.md
// §12.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"p2psplice/internal/swarmbench"
)

// benchReport is the BENCH_*.json schema (p2psplice/bench-swarm/v1).
type benchReport struct {
	Schema string      `json:"schema"`
	Bench  string      `json:"bench"`
	Config benchConfig `json:"config"`
	Env    benchEnv    `json:"environment"`

	Incremental  benchRun `json:"incremental"`
	FullBaseline benchRun `json:"full_baseline"`

	// EventsPerSecRatio is incremental events/sec over full-baseline
	// events/sec on the same truncated workload prefix.
	EventsPerSecRatio float64 `json:"events_per_sec_ratio"`
	// BaselineDigestMatches confirms the truncated full run and a
	// truncated incremental run walked the identical trajectory, which is
	// what makes the ratio apples-to-apples.
	BaselineDigestMatches bool `json:"baseline_digest_matches"`
}

type benchConfig struct {
	Peers           int    `json:"peers"`
	Shards          int    `json:"shards"`
	ClusterSize     int    `json:"cluster_size"`
	SegmentsPerPeer int    `json:"segments_per_peer"`
	SegmentBytes    int64  `json:"segment_bytes"`
	PoolSize        int    `json:"pool_size"`
	Seed            int64  `json:"seed"`
	BaselineEvents  int    `json:"baseline_max_events"`
	Reps            int    `json:"reps"`
	Digest          string `json:"digest"`
}

type benchEnv struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// benchRun is one timed configuration; best-of-reps wall time.
type benchRun struct {
	WallSeconds    float64 `json:"wall_seconds"`
	Events         uint64  `json:"events"`
	Completed      uint64  `json:"completed_transfers"`
	Reallocs       uint64  `json:"reallocs"`
	FlowsFilled    uint64  `json:"flows_filled"`
	Components     uint64  `json:"components"`
	VirtualSeconds float64 `json:"virtual_seconds"`
	Truncated      bool    `json:"truncated"`
	PeersPerSec    float64 `json:"peers_per_sec"`
	EventsPerSec   float64 `json:"events_per_sec"`
	ReallocsPerSec float64 `json:"reallocs_per_sec"`
}

// timeBest runs cfg reps times and returns the fastest run's report plus
// its digest, checking every rep reproduces the same digest.
func timeBest(cfg swarmbench.Config, reps int) (benchRun, uint64, error) {
	var best benchRun
	var digest uint64
	for i := 0; i < reps; i++ {
		start := time.Now()
		res, err := swarmbench.Run(cfg)
		wall := time.Since(start).Seconds()
		if err != nil {
			return benchRun{}, 0, err
		}
		if i == 0 {
			digest = res.Digest
		} else if res.Digest != digest {
			return benchRun{}, 0, fmt.Errorf("nondeterministic run: digest %x then %x", digest, res.Digest)
		}
		if i == 0 || wall < best.WallSeconds {
			best = benchRun{
				WallSeconds:    wall,
				Events:         res.Events,
				Completed:      res.Completed,
				Reallocs:       res.Stats.Reallocs,
				FlowsFilled:    res.Stats.FlowsFilled,
				Components:     res.Stats.Components,
				VirtualSeconds: res.VirtualTime.Seconds(),
				Truncated:      res.Truncated,
				PeersPerSec:    float64(res.Peers) / wall,
				EventsPerSec:   float64(res.Events) / wall,
				ReallocsPerSec: float64(res.Stats.Reallocs) / wall,
			}
		}
	}
	return best, digest, nil
}

func run() error {
	peers := flag.Int("peers", 10_000, "swarm size")
	seed := flag.Int64("seed", 7, "workload seed")
	reps := flag.Int("reps", 3, "timed repetitions (best wall time wins)")
	baselineEvents := flag.Int("baseline-events", 50_000, "event budget for the full-recompute baseline")
	out := flag.String("out", "BENCH_8.json", "output artifact path")
	flag.Parse()

	// Shards=1: one swarm-wide network, so the full baseline pays the
	// whole star on every event — the configuration the ratio is defined
	// on. Worker count is irrelevant with a single shard.
	cfg := swarmbench.Config{Peers: *peers, Shards: 1, Seed: *seed}

	inc, digest, err := timeBest(cfg, *reps)
	if err != nil {
		return fmt.Errorf("incremental run: %w", err)
	}

	fullCfg := cfg
	fullCfg.FullRealloc = true
	fullCfg.MaxEvents = *baselineEvents
	full, fullDigest, err := timeBest(fullCfg, 1)
	if err != nil {
		return fmt.Errorf("full-baseline run: %w", err)
	}

	// Validity check: the truncated incremental run must retrace the
	// truncated full run event for event.
	truncCfg := cfg
	truncCfg.MaxEvents = *baselineEvents
	truncRes, err := swarmbench.Run(truncCfg)
	if err != nil {
		return fmt.Errorf("truncated incremental run: %w", err)
	}

	rep := benchReport{
		Schema: "p2psplice/bench-swarm/v1",
		Bench:  strings.TrimSuffix(filepath.Base(*out), ".json"),
		Config: benchConfig{
			Peers: *peers, Shards: 1, ClusterSize: 40, SegmentsPerPeer: 4,
			SegmentBytes: 256 << 10, PoolSize: 8, Seed: *seed,
			BaselineEvents: *baselineEvents, Reps: *reps,
			Digest: fmt.Sprintf("%016x", digest),
		},
		Env: benchEnv{
			GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
			NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Incremental:           inc,
		FullBaseline:          full,
		EventsPerSecRatio:     inc.EventsPerSec / full.EventsPerSec,
		BaselineDigestMatches: truncRes.Digest == fullDigest,
	}
	if !rep.BaselineDigestMatches {
		return fmt.Errorf("baseline digest %x does not match truncated incremental digest %x: ratio would compare different workloads",
			fullDigest, truncRes.Digest)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchswarm: %d peers, incremental %.0f events/sec (%.2fs), full baseline %.0f events/sec, ratio %.1fx -> %s\n",
		*peers, inc.EventsPerSec, inc.WallSeconds, full.EventsPerSec, rep.EventsPerSecRatio, *out)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchswarm:", err)
		os.Exit(1)
	}
}
