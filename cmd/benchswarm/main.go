// Command benchswarm produces the swarm-scale emulation perf artifact
// (BENCH_10.json): it times a 10k-peer locality-clustered swarm on the
// incremental reallocator, times the forced-full recompute baseline on
// the identical workload (event-budget truncated, since a full 10k-peer
// drain under per-event full recomputes is precisely the cost the
// incremental path removes), and reports throughput plus the
// full-vs-incremental ratio.
//
// The harness also observes itself: the incremental workload is re-run
// with the windowed time-series recorder and the bounded sampled trace
// ring attached, the traced digest is asserted identical to the
// untraced one, and the measured overhead is gated against
// -max-overhead-pct. A dedicated (untimed) traced run is captured under
// the CPU profiler and the top functions are embedded in the artifact,
// so the JSON answers both "how fast" and "where did the time go". The
// schema is documented in DESIGN.md §12 and §15.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"p2psplice/internal/pprofile"
	"p2psplice/internal/swarmbench"
	"p2psplice/internal/trace"
)

// benchReport is the BENCH_*.json schema (p2psplice/bench-swarm/v2).
type benchReport struct {
	Schema string      `json:"schema"`
	Bench  string      `json:"bench"`
	Config benchConfig `json:"config"`
	Env    benchEnv    `json:"environment"`

	Incremental  benchRun `json:"incremental"`
	FullBaseline benchRun `json:"full_baseline"`

	// EventsPerSecRatio is incremental events/sec over full-baseline
	// events/sec on the same truncated workload prefix.
	EventsPerSecRatio float64 `json:"events_per_sec_ratio"`
	// BaselineDigestMatches confirms the truncated full run and a
	// truncated incremental run walked the identical trajectory, which is
	// what makes the ratio apples-to-apples.
	BaselineDigestMatches bool `json:"baseline_digest_matches"`

	// Observability reports the harness observing itself: the traced
	// re-run of the incremental workload, its measured overhead, and
	// the CPU profile of the traced configuration.
	Observability benchObservability `json:"observability"`
}

type benchConfig struct {
	Peers           int    `json:"peers"`
	Shards          int    `json:"shards"`
	ClusterSize     int    `json:"cluster_size"`
	SegmentsPerPeer int    `json:"segments_per_peer"`
	SegmentBytes    int64  `json:"segment_bytes"`
	PoolSize        int    `json:"pool_size"`
	Seed            int64  `json:"seed"`
	BaselineEvents  int    `json:"baseline_max_events"`
	Reps            int    `json:"reps"`
	Digest          string `json:"digest"`
}

type benchEnv struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// benchRun is one timed configuration; best-of-reps wall time.
type benchRun struct {
	WallSeconds    float64 `json:"wall_seconds"`
	Events         uint64  `json:"events"`
	Completed      uint64  `json:"completed_transfers"`
	Reallocs       uint64  `json:"reallocs"`
	FlowsFilled    uint64  `json:"flows_filled"`
	Components     uint64  `json:"components"`
	VirtualSeconds float64 `json:"virtual_seconds"`
	Truncated      bool    `json:"truncated"`
	PeersPerSec    float64 `json:"peers_per_sec"`
	EventsPerSec   float64 `json:"events_per_sec"`
	ReallocsPerSec float64 `json:"reallocs_per_sec"`
}

// benchObservability is the self-observation section.
type benchObservability struct {
	WindowSeconds float64 `json:"window_seconds"`
	RingCapacity  int     `json:"ring_capacity"`
	SampleRate    float64 `json:"sample_rate"`

	Traced benchRun `json:"traced"`
	// OverheadPct is (traced - untraced) / untraced wall time, best of
	// reps each, in percent. Negative values are timer noise.
	OverheadPct    float64 `json:"overhead_pct"`
	MaxOverheadPct float64 `json:"max_overhead_pct"`
	// DigestMatches confirms the traced run walked the identical
	// trajectory — telemetry proven inert on the measured workload.
	DigestMatches bool `json:"digest_matches"`

	Ring          trace.RingCounts `json:"ring"`
	RingRetained  int              `json:"ring_retained"`
	Series        []benchSeries    `json:"series"`
	Profile       benchProfile     `json:"profile"`
}

// benchSeries summarizes one telemetry series of the traced run.
type benchSeries struct {
	Name         string `json:"name"`
	Kind         string `json:"kind"`
	Windows      int    `json:"windows"`
	Observations int64  `json:"observations"`
}

// benchProfile is the parsed CPU profile of a traced run.
type benchProfile struct {
	SampleType string          `json:"sample_type"`
	SampleUnit string          `json:"sample_unit"`
	Samples    int64           `json:"samples"`
	Total      int64           `json:"total"`
	Top        []benchProfFunc `json:"top_functions"`
}

type benchProfFunc struct {
	Function string  `json:"function"`
	Flat     int64   `json:"flat"`
	FlatPct  float64 `json:"flat_pct"`
	Cum      int64   `json:"cum"`
}

// timeBest runs cfg reps times and returns the fastest run's report,
// its digest, and the last rep's full result (telemetry is identical
// across reps), checking every rep reproduces the same digest.
func timeBest(cfg swarmbench.Config, reps int) (benchRun, uint64, swarmbench.Result, error) {
	var best benchRun
	var digest uint64
	var last swarmbench.Result
	for i := 0; i < reps; i++ {
		start := time.Now()
		res, err := swarmbench.Run(cfg)
		wall := time.Since(start).Seconds()
		if err != nil {
			return benchRun{}, 0, swarmbench.Result{}, err
		}
		if i == 0 {
			digest = res.Digest
		} else if res.Digest != digest {
			return benchRun{}, 0, swarmbench.Result{}, fmt.Errorf("nondeterministic run: digest %x then %x", digest, res.Digest)
		}
		if i == 0 || wall < best.WallSeconds {
			best = benchRun{
				WallSeconds:    wall,
				Events:         res.Events,
				Completed:      res.Completed,
				Reallocs:       res.Stats.Reallocs,
				FlowsFilled:    res.Stats.FlowsFilled,
				Components:     res.Stats.Components,
				VirtualSeconds: res.VirtualTime.Seconds(),
				Truncated:      res.Truncated,
				PeersPerSec:    float64(res.Peers) / wall,
				EventsPerSec:   float64(res.Events) / wall,
				ReallocsPerSec: float64(res.Stats.Reallocs) / wall,
			}
		}
		last = res
	}
	return best, digest, last, nil
}

// profileRun executes one traced run under the CPU profiler and parses
// the capture. The run is untimed — profiling overhead must not touch
// the overhead measurement.
func profileRun(cfg swarmbench.Config, topN int, rawOut string) (benchProfile, error) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		return benchProfile{}, err
	}
	_, runErr := swarmbench.Run(cfg)
	pprof.StopCPUProfile()
	if runErr != nil {
		return benchProfile{}, runErr
	}
	if rawOut != "" {
		if err := os.WriteFile(rawOut, buf.Bytes(), 0o644); err != nil {
			return benchProfile{}, err
		}
	}
	p, err := pprofile.Parse(buf.Bytes())
	if err != nil {
		return benchProfile{}, err
	}
	bp := benchProfile{
		SampleType: p.SampleType,
		SampleUnit: p.SampleUnit,
		Samples:    p.Samples,
		Total:      p.Total,
	}
	for _, f := range p.Top(topN) {
		bp.Top = append(bp.Top, benchProfFunc{
			Function: f.Name,
			Flat:     f.Flat,
			FlatPct:  f.FlatPercent(p.Total),
			Cum:      f.Cum,
		})
	}
	return bp, nil
}

func run() error {
	peers := flag.Int("peers", 10_000, "swarm size")
	seed := flag.Int64("seed", 7, "workload seed")
	reps := flag.Int("reps", 3, "timed repetitions (best wall time wins)")
	baselineEvents := flag.Int("baseline-events", 50_000, "event budget for the full-recompute baseline")
	window := flag.Duration("window", time.Second, "telemetry window (virtual time) for the traced run")
	ringCap := flag.Int("ring-capacity", 65_536, "bounded trace ring capacity for the traced run")
	sampleRate := flag.Float64("sample-rate", 0.25, "trace sampler keep probability for the traced run")
	maxOverhead := flag.Float64("max-overhead-pct", 5, "fail if traced overhead exceeds this percentage (negative disables the gate)")
	topN := flag.Int("profile-top", 10, "functions to embed from the CPU profile")
	cpuOut := flag.String("cpuprofile", "", "also write the raw CPU profile to this path")
	out := flag.String("out", "BENCH_10.json", "output artifact path")
	flag.Parse()

	// Shards=1: one swarm-wide network, so the full baseline pays the
	// whole star on every event — the configuration the ratio is defined
	// on. Worker count is irrelevant with a single shard.
	cfg := swarmbench.Config{Peers: *peers, Shards: 1, Seed: *seed}

	inc, digest, _, err := timeBest(cfg, *reps)
	if err != nil {
		return fmt.Errorf("incremental run: %w", err)
	}

	// Traced re-run of the identical workload: telemetry + sampled ring
	// attached, digest asserted unchanged, overhead measured.
	tracedCfg := cfg
	tracedCfg.TimeSeriesWindow = *window
	tracedCfg.TraceCapacity = *ringCap
	tracedCfg.TraceSampleRate = *sampleRate
	traced, tracedDigest, tracedRes, err := timeBest(tracedCfg, *reps)
	if err != nil {
		return fmt.Errorf("traced run: %w", err)
	}
	if tracedDigest != digest {
		return fmt.Errorf("traced digest %x != untraced digest %x: telemetry is not inert", tracedDigest, digest)
	}
	overheadPct := 100 * (traced.WallSeconds - inc.WallSeconds) / inc.WallSeconds
	if *maxOverhead >= 0 && overheadPct > *maxOverhead {
		return fmt.Errorf("telemetry overhead %.2f%% exceeds budget %.2f%% (untraced %.3fs, traced %.3fs)",
			overheadPct, *maxOverhead, inc.WallSeconds, traced.WallSeconds)
	}

	obs := benchObservability{
		WindowSeconds:  window.Seconds(),
		RingCapacity:   *ringCap,
		SampleRate:     *sampleRate,
		Traced:         traced,
		OverheadPct:    overheadPct,
		MaxOverheadPct: *maxOverhead,
		DigestMatches:  true,
		Ring:           tracedRes.Trace,
		RingRetained:   tracedRes.TraceRetained,
	}
	if tracedRes.Series != nil {
		for _, s := range tracedRes.Series.Series {
			obs.Series = append(obs.Series, benchSeries{
				Name: s.Name, Kind: s.Kind, Windows: len(s.Windows), Observations: s.Total(),
			})
		}
	}
	obs.Profile, err = profileRun(tracedCfg, *topN, *cpuOut)
	if err != nil {
		return fmt.Errorf("profile run: %w", err)
	}

	fullCfg := cfg
	fullCfg.FullRealloc = true
	fullCfg.MaxEvents = *baselineEvents
	full, fullDigest, _, err := timeBest(fullCfg, 1)
	if err != nil {
		return fmt.Errorf("full-baseline run: %w", err)
	}

	// Validity check: the truncated incremental run must retrace the
	// truncated full run event for event.
	truncCfg := cfg
	truncCfg.MaxEvents = *baselineEvents
	truncRes, err := swarmbench.Run(truncCfg)
	if err != nil {
		return fmt.Errorf("truncated incremental run: %w", err)
	}

	rep := benchReport{
		Schema: "p2psplice/bench-swarm/v2",
		Bench:  strings.TrimSuffix(filepath.Base(*out), ".json"),
		Config: benchConfig{
			Peers: *peers, Shards: 1, ClusterSize: 40, SegmentsPerPeer: 4,
			SegmentBytes: 256 << 10, PoolSize: 8, Seed: *seed,
			BaselineEvents: *baselineEvents, Reps: *reps,
			Digest: fmt.Sprintf("%016x", digest),
		},
		Env: benchEnv{
			GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
			NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Incremental:           inc,
		FullBaseline:          full,
		EventsPerSecRatio:     inc.EventsPerSec / full.EventsPerSec,
		BaselineDigestMatches: truncRes.Digest == fullDigest,
		Observability:         obs,
	}
	if !rep.BaselineDigestMatches {
		return fmt.Errorf("baseline digest %x does not match truncated incremental digest %x: ratio would compare different workloads",
			fullDigest, truncRes.Digest)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchswarm: %d peers, incremental %.0f events/sec (%.2fs), traced overhead %+.2f%%, full baseline %.0f events/sec, ratio %.1fx -> %s\n",
		*peers, inc.EventsPerSec, inc.WallSeconds, overheadPct, full.EventsPerSec, rep.EventsPerSecRatio, *out)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchswarm:", err)
		os.Exit(1)
	}
}
