package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"p2psplice/internal/splicer"
)

var osStat = os.Stat

func TestPickSplicer(t *testing.T) {
	sp, err := pickSplicer("gop")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sp.(splicer.GOPSplicer); !ok {
		t.Errorf("gop parsed as %T", sp)
	}
	sp, err = pickSplicer("4s")
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := sp.(splicer.DurationSplicer); !ok || d.Target != 4*time.Second {
		t.Errorf("4s parsed as %#v", sp)
	}
	if _, err := pickSplicer("adaptive"); err != nil {
		t.Errorf("adaptive: %v", err)
	}
	for _, bad := range []string{"", "xyz", "-4s", "0s"} {
		if _, err := pickSplicer(bad); err == nil {
			t.Errorf("pickSplicer(%q): want error", bad)
		}
	}
}

func TestRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "m.json")
	topo := filepath.Join(dir, "t.json")
	playlist := filepath.Join(dir, "p.m3u8")
	if err := run(10*time.Second, 1, "2s", 64*1024, manifest, topo, playlist, true); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{manifest, topo, playlist} {
		if fi, err := filepathStat(f); err != nil || fi <= 0 {
			t.Errorf("artifact %s missing or empty (err=%v size=%d)", f, err, fi)
		}
	}
}

// filepathStat returns the size of a file.
func filepathStat(path string) (int64, error) {
	fi, err := osStat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}
