// Command splice synthesizes a clip, cuts it with the chosen technique, and
// reports the segment layout — optionally emitting the manifest JSON and the
// RSpec-equivalent topology spec.
//
// Usage:
//
//	splice [-clip 2m] [-seed 42] [-splicing gop|2s|4s|8s|adaptive] [-rate 125000]
//	       [-manifest out.json] [-topology out.json] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"p2psplice/internal/container"
	"p2psplice/internal/media"
	"p2psplice/internal/splicer"
	"p2psplice/internal/topology"
)

func main() {
	var (
		clip     = flag.Duration("clip", 2*time.Minute, "clip duration")
		seed     = flag.Int64("seed", 42, "synthesis seed")
		name     = flag.String("splicing", "4s", "technique: gop, 2s, 4s, 8s, or adaptive")
		rate     = flag.Int64("rate", 0, "override clip rate in bytes/second")
		manifest = flag.String("manifest", "", "write the manifest JSON to this file")
		topo     = flag.String("topology", "", "write the paper's 20-node topology spec to this file")
		playlist = flag.String("m3u8", "", "write an HLS media playlist to this file")
		verbose  = flag.Bool("v", false, "print every segment")
	)
	flag.Parse()
	if err := run(*clip, *seed, *name, *rate, *manifest, *topo, *playlist, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "splice:", err)
		os.Exit(1)
	}
}

func pickSplicer(name string) (splicer.Splicer, error) {
	switch name {
	case "gop":
		return splicer.GOPSplicer{}, nil
	case "adaptive":
		return splicer.AdaptiveSplicer{Bandwidth: 256 * 1024, BufferDepth: 4 * time.Second}, nil
	default:
		d, err := time.ParseDuration(name)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("unknown splicing %q (want gop, adaptive, or a duration like 4s)", name)
		}
		return splicer.DurationSplicer{Target: d}, nil
	}
}

func run(clip time.Duration, seed int64, name string, rate int64, manifestPath, topoPath, playlistPath string, verbose bool) error {
	cfg := media.DefaultEncoderConfig()
	if rate > 0 {
		cfg.BytesPerSecond = rate
	}
	sp, err := pickSplicer(name)
	if err != nil {
		return err
	}
	v, err := media.Synthesize(cfg, clip, seed)
	if err != nil {
		return err
	}
	segs, err := sp.Splice(v)
	if err != nil {
		return err
	}
	st := splicer.ComputeStats(segs)

	fmt.Printf("clip: %v at %d B/s (seed %d), %d frames in %d GOPs, %d bytes\n",
		v.Duration().Round(time.Millisecond), cfg.BytesPerSecond, seed,
		v.FrameCount(), len(v.GOPs), v.TotalBytes())
	fmt.Printf("splicing %q: %s\n", sp.Name(), st)
	if verbose {
		for _, s := range segs {
			flag := " "
			if s.InsertedIFrame {
				flag = "I"
			}
			fmt.Printf("  seg %3d %s start=%8.3fs dur=%6.3fs frames=%4d bytes=%8d\n",
				s.Index, flag, s.Start.Seconds(), s.Duration().Seconds(), len(s.Frames), s.Bytes())
		}
	}

	if manifestPath != "" {
		m, _, err := container.BuildManifest(container.ClipInfo{
			Duration: v.Duration(), BytesPerSecond: cfg.BytesPerSecond, Seed: seed,
		}, sp.Name(), segs)
		if err != nil {
			return err
		}
		f, err := os.Create(manifestPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := m.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("manifest written to %s (%d segments)\n", manifestPath, len(m.Segments))
	}

	if playlistPath != "" {
		m, _, err := container.BuildManifest(container.ClipInfo{
			Duration: v.Duration(), BytesPerSecond: cfg.BytesPerSecond, Seed: seed,
		}, sp.Name(), segs)
		if err != nil {
			return err
		}
		f, err := os.Create(playlistPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := m.WriteM3U8(f, ""); err != nil {
			return err
		}
		fmt.Printf("HLS playlist written to %s\n", playlistPath)
	}

	if topoPath != "" {
		spec := topology.Star("paper-20-nodes", 19, 128, 475*time.Millisecond, 5)
		f, err := os.Create(topoPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := spec.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("topology written to %s (%d nodes)\n", topoPath, len(spec.Nodes))
	}
	return nil
}
