// Command tracker runs the swarm rendezvous service.
//
// Usage:
//
//	tracker [-listen 127.0.0.1:7070] [-ttl 2m]
//	        [-debug-addr 127.0.0.1:6060] [-metrics-log 30s]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"p2psplice/internal/debughttp"
	"p2psplice/internal/trace"
	"p2psplice/internal/tracker"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:7070", "HTTP listen address")
		ttl        = flag.Duration("ttl", tracker.DefaultPeerTTL, "announce freshness window")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (empty = off)")
		metricsLog = flag.Duration("metrics-log", 0, "log a registry snapshot to stderr at this period (0 = off)")
	)
	flag.Parse()

	opts := []tracker.Option{tracker.WithPeerTTL(*ttl)}
	var reg *trace.Registry
	if *debugAddr != "" || *metricsLog > 0 {
		reg = trace.NewRegistry()
		opts = append(opts, tracker.WithMetrics(reg))
	}
	srv := tracker.NewServer(opts...)

	if *debugAddr != "" {
		dbg, err := debughttp.Start(debughttp.Config{
			Addr:          *debugAddr,
			Registry:      reg,
			SnapshotEvery: *metricsLog,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracker:", err)
			os.Exit(1)
		}
		defer dbg.Close()
		fmt.Println("debug endpoint on http://" + dbg.Addr())
	} else if *metricsLog > 0 {
		sl := debughttp.StartSnapshotLogger(reg, *metricsLog, func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		})
		defer sl.Stop()
	}

	fmt.Printf("tracker listening on http://%s (peer TTL %v)\n", *listen, *ttl)
	if err := http.ListenAndServe(*listen, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "tracker:", err)
		os.Exit(1)
	}
}
