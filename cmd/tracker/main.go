// Command tracker runs the swarm rendezvous service.
//
// Usage:
//
//	tracker [-listen 127.0.0.1:7070] [-ttl 2m]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"p2psplice/internal/tracker"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:7070", "HTTP listen address")
		ttl    = flag.Duration("ttl", tracker.DefaultPeerTTL, "announce freshness window")
	)
	flag.Parse()

	srv := tracker.NewServer(tracker.WithPeerTTL(*ttl))
	fmt.Printf("tracker listening on http://%s (peer TTL %v)\n", *listen, *ttl)
	if err := http.ListenAndServe(*listen, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "tracker:", err)
		os.Exit(1)
	}
}
