// Command splicetrace turns trace directories into answers.
//
// Usage:
//
//	splicetrace report DIR [-json] [-o FILE] [-require-attributed]
//	    Aggregate report: stall-cause breakdown (total/mean/p95), per-file
//	    peer-timeline rollup, flow-utilization summary. -require-attributed
//	    exits nonzero unless 100% of stalls carry a cause.
//
//	splicetrace diff DIR_A DIR_B [-json] [-o FILE]
//	    Compare two trace directories (e.g. adaptive vs fixed-4, faulted
//	    vs clean): stall counts/totals, startup means, per-cause deltas.
//
//	splicetrace cdf DIR [-kind stall|segment|startup] [-o FILE]
//	    CSV cumulative distribution of stall durations, segment transfer
//	    latencies, or startup delays.
//
//	splicetrace scrape URL [-series NAME]...
//	    Fetch URL/healthz and URL/metrics, validate the Prometheus text
//	    exposition, and require each named series to be present (used by
//	    `make metrics-smoke`).
//
//	splicetrace timeseries DIR [-window D] [-peers N] [-csv] [-o FILE]
//	    Rebuild the windowed virtual-time telemetry (buffer occupancy,
//	    in-flight flows, stalled peers, pool targets, completions per
//	    window) from a trace directory, as a summary report or CSV. The
//	    rebuild is bit-identical to what an in-process TimeSeries
//	    recorded during the same runs.
//
// Reports are deterministic: the same trace directory yields
// byte-identical output across runs, machines, and the -workers value
// that produced it.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"p2psplice/internal/trace"
	"p2psplice/internal/tracereport"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "report":
		err = cmdReport(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "cdf":
		err = cmdCDF(os.Args[2:])
	case "scrape":
		err = cmdScrape(os.Args[2:])
	case "timeseries":
		err = cmdTimeSeries(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "splicetrace: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "splicetrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  splicetrace report DIR [-json] [-o FILE] [-require-attributed]
  splicetrace diff DIR_A DIR_B [-json] [-o FILE]
  splicetrace cdf DIR [-kind stall|segment|startup] [-o FILE]
  splicetrace scrape URL [-series NAME]...
  splicetrace timeseries DIR [-window D] [-peers N] [-csv] [-o FILE]
`)
}

// parseArgs parses fs over args with flags and positionals freely
// interleaved (stdlib flag stops at the first positional), returning
// the positional arguments in order.
func parseArgs(fs *flag.FlagSet, args []string) ([]string, error) {
	var pos []string
	for len(args) > 0 {
		if err := fs.Parse(args); err != nil {
			return nil, err
		}
		if fs.NArg() == 0 {
			break
		}
		pos = append(pos, fs.Arg(0))
		args = fs.Args()[1:]
	}
	return pos, nil
}

// output opens -o (or stdout) and returns a close func.
func output(path string) (io.Writer, func() error, error) {
	if path == "" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	out := fs.String("o", "", "write to this file instead of stdout")
	requireAttr := fs.Bool("require-attributed", false, "exit nonzero unless every stall names a cause")
	pos, err := parseArgs(fs, args)
	if err != nil {
		return err
	}
	if len(pos) != 1 {
		return fmt.Errorf("report: want exactly one trace directory, got %d args", len(pos))
	}
	a, err := tracereport.AnalyzeDir(pos[0])
	if err != nil {
		return err
	}
	w, closeOut, err := output(*out)
	if err != nil {
		return err
	}
	if *asJSON {
		err = tracereport.WriteJSON(w, a.Report)
	} else {
		err = tracereport.WriteTable(w, a.Report)
	}
	if cerr := closeOut(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if *requireAttr && a.Report.Stalls.Attributed != a.Report.Stalls.Count {
		return fmt.Errorf("report: %d of %d stalls unattributed",
			a.Report.Stalls.Count-a.Report.Stalls.Attributed, a.Report.Stalls.Count)
	}
	return nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the diff as JSON")
	out := fs.String("o", "", "write to this file instead of stdout")
	pos, err := parseArgs(fs, args)
	if err != nil {
		return err
	}
	if len(pos) != 2 {
		return fmt.Errorf("diff: want two trace directories, got %d args", len(pos))
	}
	a, err := tracereport.AnalyzeDir(pos[0])
	if err != nil {
		return err
	}
	b, err := tracereport.AnalyzeDir(pos[1])
	if err != nil {
		return err
	}
	d := tracereport.Diff(pos[0], a.Report, pos[1], b.Report)
	w, closeOut, err := output(*out)
	if err != nil {
		return err
	}
	if *asJSON {
		err = tracereport.WriteDiffJSON(w, d)
	} else {
		err = tracereport.WriteDiffTable(w, d)
	}
	if cerr := closeOut(); err == nil {
		err = cerr
	}
	return err
}

func cmdCDF(args []string) error {
	fs := flag.NewFlagSet("cdf", flag.ExitOnError)
	kind := fs.String("kind", "stall", "sample set: stall, segment, or startup")
	out := fs.String("o", "", "write to this file instead of stdout")
	pos, err := parseArgs(fs, args)
	if err != nil {
		return err
	}
	if len(pos) != 1 {
		return fmt.Errorf("cdf: want exactly one trace directory, got %d args", len(pos))
	}
	a, err := tracereport.AnalyzeDir(pos[0])
	if err != nil {
		return err
	}
	var samples []int64
	switch *kind {
	case "stall":
		samples = a.StallUS
	case "segment":
		samples = a.SegmentUS
	case "startup":
		samples = a.StartupUS
	default:
		return fmt.Errorf("cdf: unknown -kind %q (want stall, segment, or startup)", *kind)
	}
	w, closeOut, err := output(*out)
	if err != nil {
		return err
	}
	err = tracereport.WriteCDF(w, *kind, samples)
	if cerr := closeOut(); err == nil {
		err = cerr
	}
	return err
}

func cmdTimeSeries(args []string) error {
	fs := flag.NewFlagSet("timeseries", flag.ExitOnError)
	window := fs.Duration("window", time.Second, "aggregation window width (virtual time)")
	peers := fs.Int("peers", 0, "leechers per run for the stall fraction (0 infers per file)")
	maxWindows := fs.Int("max-windows", 1024, "window budget per series; later observations clamp")
	asCSV := fs.Bool("csv", false, "emit one CSV row per (series, window) instead of the summary")
	out := fs.String("o", "", "write to this file instead of stdout")
	pos, err := parseArgs(fs, args)
	if err != nil {
		return err
	}
	if len(pos) != 1 {
		return fmt.Errorf("timeseries: want exactly one trace directory, got %d args", len(pos))
	}
	snap, err := tracereport.BuildTimeSeriesDir(pos[0], tracereport.TimeSeriesOptions{
		Window:     *window,
		MaxWindows: *maxWindows,
		Peers:      *peers,
	})
	if err != nil {
		return err
	}
	w, closeOut, err := output(*out)
	if err != nil {
		return err
	}
	if *asCSV {
		err = snap.WriteCSV(w)
	} else {
		err = snap.WriteText(w)
	}
	if cerr := closeOut(); err == nil {
		err = cerr
	}
	return err
}

// seriesList is a repeatable -series flag.
type seriesList []string

func (s *seriesList) String() string     { return strings.Join(*s, ",") }
func (s *seriesList) Set(v string) error { *s = append(*s, v); return nil }

func cmdScrape(args []string) error {
	fs := flag.NewFlagSet("scrape", flag.ExitOnError)
	var series seriesList
	fs.Var(&series, "series", "require this metric series to exist (repeatable)")
	timeout := fs.Duration("timeout", 10*time.Second, "HTTP timeout")
	pos, err := parseArgs(fs, args)
	if err != nil {
		return err
	}
	if len(pos) != 1 {
		return fmt.Errorf("scrape: want exactly one base URL, got %d args", len(pos))
	}
	base := strings.TrimRight(pos[0], "/")
	client := &http.Client{Timeout: *timeout}

	get := func(path string) (string, error) {
		resp, err := client.Get(base + path)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("GET %s%s: status %d", base, path, resp.StatusCode)
		}
		return string(body), nil
	}

	health, err := get("/healthz")
	if err != nil {
		return err
	}
	if !strings.HasPrefix(health, "ok") {
		return fmt.Errorf("scrape: /healthz = %q, want ok", strings.TrimSpace(health))
	}
	body, err := get("/metrics")
	if err != nil {
		return err
	}
	pm, err := trace.ParsePromText(body)
	if err != nil {
		return fmt.Errorf("scrape: /metrics is not valid exposition: %w", err)
	}
	var missing []string
	for _, name := range series {
		if _, ok := pm.Value(name); !ok {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("scrape: missing series: %s", strings.Join(missing, ", "))
	}
	fmt.Printf("scrape ok: %d samples, %d required series present\n", len(pm.Samples), len(series))
	return nil
}
