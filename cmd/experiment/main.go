// Command experiment regenerates the paper's evaluation figures on the
// deterministic emulator and prints them as text tables.
//
// Usage:
//
//	experiment [-figure all|2|3|4|5|6|table|churn|burst|adversary] [-quick] [-runs N] [-leechers N]
//	           [-clip 2m] [-seed N] [-workers N] [-json] [-trace DIR] [-churn] [-burst] [-adversary]
//	           [-ablation churn|estimator|relay|rarest|cross|varbw]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"p2psplice/internal/core"
	"p2psplice/internal/experiment"
	"p2psplice/internal/metrics"
	"p2psplice/internal/netem"
	"p2psplice/internal/shaper"
	"p2psplice/internal/simpeer"
	"p2psplice/internal/splicer"
	"p2psplice/internal/tracereport"
)

func main() {
	var (
		figure    = flag.String("figure", "all", "which figure to regenerate: all, 2, 3, 4, 5, 6, or table")
		quick     = flag.Bool("quick", false, "use the scaled-down quick parameters")
		runs      = flag.Int("runs", 0, "override repetitions per sweep point")
		leechers  = flag.Int("leechers", 0, "override the number of viewers")
		clip      = flag.Duration("clip", 0, "override the clip duration")
		seed      = flag.Int64("seed", 0, "override the base seed")
		ablation  = flag.String("ablation", "", "run an ablation instead: churn, estimator, relay, rarest, cross, varbw, hetero, cdn")
		real      = flag.Bool("real", false, "cross-validate: run one small swarm on BOTH the emulator and real TCP sockets")
		csvDir    = flag.String("csv", "", "also write each figure as CSV into this directory")
		workers   = flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS, 1 = serial); results are identical either way")
		jsonOut   = flag.Bool("json", false, "emit machine-readable figure results as JSON on stdout instead of text tables")
		traceDir  = flag.String("trace", "", "write per-cell trace artifacts (.jsonl, .trace.json, .timeline.json) into this directory; figure values are unchanged")
		churn     = flag.Bool("churn", false, "also run the churn figure (seeded fault injection); implied by -figure churn")
		burst     = flag.Bool("burst", false, "also run the burst figure (correlated loss + corruption); implied by -figure burst")
		adversary = flag.Bool("adversary", false, "also run the adversary figure (polluters vs reputation); implied by -figure adversary")
	)
	flag.Parse()

	if *real {
		if err := runRealValidation(); err != nil {
			fmt.Fprintln(os.Stderr, "experiment:", err)
			os.Exit(1)
		}
		return
	}

	p := experiment.DefaultParams()
	if *quick {
		p = experiment.QuickParams()
	}
	if *runs > 0 {
		p.Runs = *runs
	}
	if *leechers > 0 {
		p.Leechers = *leechers
	}
	if *clip > 0 {
		p.ClipDuration = *clip
	}
	if *seed != 0 {
		p.BaseSeed = *seed
	}
	if *workers != 0 {
		p.Workers = *workers
	}
	if *traceDir != "" {
		p.TraceDir = *traceDir
	}

	if *ablation != "" {
		if err := runAblation(p, *ablation); err != nil {
			fmt.Fprintln(os.Stderr, "experiment:", err)
			os.Exit(1)
		}
		if *traceDir != "" {
			if err := writeTraceReport(*traceDir); err != nil {
				fmt.Fprintln(os.Stderr, "experiment:", err)
				os.Exit(1)
			}
		}
		return
	}

	type gen struct {
		name string
		run  func([]int64) (*experiment.FigureResult, error)
	}
	gens := map[string]gen{
		"2":     {"Figure 2", p.Fig2Stalls},
		"3":     {"Figure 3", p.Fig3StallDuration},
		"4":     {"Figure 4", p.Fig4Startup},
		"5":     {"Figure 5", p.Fig5Pooling},
		"6":     {"Figure 6 (extension)", p.Fig6AdaptiveSplicing},
		"table": {"Splicing table", func([]int64) (*experiment.FigureResult, error) { return p.SpliceOverheadTable() }},
		"churn": {"Churn figure (extension)", func([]int64) (*experiment.FigureResult, error) { return p.FigChurn(nil) }},
		"burst": {"Burst figure (extension)", func([]int64) (*experiment.FigureResult, error) { return p.FigBurst(nil) }},
		"adversary": {"Adversary figure (extension)", func([]int64) (*experiment.FigureResult, error) {
			return p.FigAdversary(nil)
		}},
	}
	order := []string{"2", "3", "4", "5", "6", "table"}
	if *churn {
		order = append(order, "churn")
	}
	if *burst {
		order = append(order, "burst")
	}
	if *adversary {
		order = append(order, "adversary")
	}
	if *figure != "all" {
		if _, ok := gens[*figure]; !ok {
			fmt.Fprintf(os.Stderr, "experiment: unknown figure %q\n", *figure)
			os.Exit(2)
		}
		order = []string{*figure}
	}
	start := time.Now()
	report := jsonReport{
		Params: jsonParams{
			Leechers:    p.Leechers,
			ClipSeconds: p.ClipDuration.Seconds(),
			Runs:        p.Runs,
			BaseSeed:    p.BaseSeed,
			VideoSeed:   p.VideoSeed,
			Workers:     p.Workers,
		},
	}
	for _, key := range order {
		res, err := gens[key].run(nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment: %s: %v\n", gens[key].name, err)
			os.Exit(1)
		}
		if *jsonOut {
			report.Figures = append(report.Figures, jsonFigure{
				Key:    key,
				Title:  res.Figure.Title,
				XLabel: res.Figure.XLabel,
				X:      res.Figure.XValues,
				Series: res.Values,
			})
		} else {
			fmt.Println(res.Figure.Render())
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, key, res); err != nil {
				fmt.Fprintln(os.Stderr, "experiment:", err)
				os.Exit(1)
			}
		}
	}
	if *traceDir != "" {
		if err := writeTraceReport(*traceDir); err != nil {
			fmt.Fprintln(os.Stderr, "experiment:", err)
			os.Exit(1)
		}
	}
	if *jsonOut {
		report.ElapsedMS = time.Since(start).Milliseconds()
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "experiment:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("(%d leechers, %v clip, %d runs/point, elapsed %v)\n",
		p.Leechers, p.ClipDuration, p.Runs, time.Since(start).Round(time.Millisecond))
}

// jsonReport is the -json artifact: the machine-readable form of every
// regenerated figure, stable enough for a bench trajectory to diff.
type jsonReport struct {
	Params    jsonParams   `json:"params"`
	Figures   []jsonFigure `json:"figures"`
	ElapsedMS int64        `json:"elapsed_ms"`
}

// jsonParams records the experiment scale that produced the figures.
type jsonParams struct {
	Leechers    int     `json:"leechers"`
	ClipSeconds float64 `json:"clip_seconds"`
	Runs        int     `json:"runs"`
	BaseSeed    int64   `json:"base_seed"`
	VideoSeed   int64   `json:"video_seed"`
	Workers     int     `json:"workers"`
}

// jsonFigure is one figure: the x-axis plus the numeric series the text
// table renders (encoding/json sorts the series map, so output is stable).
type jsonFigure struct {
	Key    string               `json:"key"`
	Title  string               `json:"title"`
	XLabel string               `json:"xlabel"`
	X      []string             `json:"x"`
	Series map[string][]float64 `json:"series"`
}

// writeTraceReport makes a sweep's trace directory self-describing: the
// aggregate stall-cause/QoE analysis lands next to the raw artifacts as
// report.json, the same report `splicetrace report -json DIR` renders.
// The analyzer is deterministic over a deterministic trace set, so the
// file is bit-identical across runs and -workers values.
func writeTraceReport(dir string) error {
	a, err := tracereport.AnalyzeDir(dir)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "report.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracereport.WriteJSON(f, a.Report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "wrote", path)
	return nil
}

// writeCSV saves a figure's data under dir/figure-<key>.csv.
func writeCSV(dir, key string, res *experiment.FigureResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "figure-"+key+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := res.Figure.WriteCSV(f); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

// runRealValidation runs the same small workload on the deterministic
// emulator and on real loopback TCP, printing both sets of playback metrics.
// Loopback has no bandwidth shaping by default, so the comparison point uses
// a shaped link on the real side and the matching rate on the emulated side.
func runRealValidation() error {
	const (
		clip    = 8 * time.Second
		rate    = int64(32 * 1024)
		viewers = 3
		shapeKB = int64(128)
	)
	sp := splicer.DurationSplicer{Target: 2 * time.Second}

	// Emulated.
	p := experiment.QuickParams()
	p.ClipDuration = clip
	p.Encoder.BytesPerSecond = rate
	p.Leechers = viewers
	p.Runs = 1
	segs, err := p.Segments(sp)
	if err != nil {
		return err
	}
	emu, err := p.Sweep(sp, core.AdaptivePool{}, []int64{shapeKB}, nil)
	if err != nil {
		return err
	}
	_ = segs

	// Real TCP over loopback, shaped to the same access rate.
	fmt.Printf("cross-validation: %v clip at %d B/s, %d viewers, 2s segments, %d kB/s links\n",
		clip, rate, viewers, shapeKB)
	start := time.Now()
	samples, err := experiment.RealStackRun(experiment.RealStackConfig{
		Clip:    clip,
		Rate:    rate,
		Seed:    42,
		Splicer: sp,
		Viewers: viewers,
		Shape:   &shaper.Config{RateBytesPerSec: shapeKB * 1024, Latency: 25 * time.Millisecond},
		Timeout: 3 * time.Minute,
	})
	if err != nil {
		return err
	}
	sum := metrics.Summarize(samples)
	fmt.Printf("%-10s | %10s | %12s | %12s\n", "stack", "stalls", "stall sec", "startup sec")
	fmt.Printf("%-10s | %10.1f | %12.1f | %12.1f\n", "emulated", emu[0].Stalls, emu[0].StallSeconds, emu[0].StartupSecs)
	fmt.Printf("%-10s | %10.1f | %12.1f | %12.1f\n", "real TCP", sum.MeanStalls, sum.MeanStallSeconds, sum.MeanStartupSeconds)
	fmt.Printf("(real run wall time %v; the emulated run took milliseconds)\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// runAblation exercises the extension mechanisms DESIGN.md calls out and
// prints a small before/after table.
func runAblation(p experiment.Params, name string) error {
	bandwidths := []int64{128, 256, 512}

	type variant struct {
		label string
		mod   func(*simpeer.SwarmConfig)
	}
	var variants []variant
	switch name {
	case "churn":
		variants = []variant{
			{"no churn", nil},
			{"mean online 45s", func(c *simpeer.SwarmConfig) {
				c.Churn = simpeer.ChurnModel{MeanOnline: 45 * time.Second, MinRemaining: 3}
			}},
		}
	case "estimator":
		variants = []variant{
			{"oracle B", nil},
			{"EWMA B", func(c *simpeer.SwarmConfig) { c.OracleBandwidth = false }},
		}
	case "relay":
		variants = []variant{
			{"piece relay", nil},
			{"store-and-forward", func(c *simpeer.SwarmConfig) { c.DisableRelay = true }},
		}
	case "rarest":
		variants = []variant{
			{"sequential", nil},
			{"rarest-first", func(c *simpeer.SwarmConfig) { c.Selection = simpeer.SelectRarestFirst }},
		}
	case "cross":
		variants = []variant{
			{"idle network", nil},
			{"4 cross flows", func(c *simpeer.SwarmConfig) { c.CrossTraffic = 4 }},
		}
	case "cdn":
		variants = []variant{
			{"pure P2P", nil},
			{"CDN assist (1 MB/s)", func(c *simpeer.SwarmConfig) {
				c.CDN = &simpeer.CDNAssist{BandwidthBytesPerSec: 1024 * 1024}
			}},
		}
	case "hetero":
		half := make([]int64, 10)
		for i := range half {
			if i%2 == 0 {
				half[i] = 64 * 1024 // every other peer on a half-rate link
			}
		}
		variants = []variant{
			{"homogeneous", nil},
			{"half the peers at 64kB/s", func(c *simpeer.SwarmConfig) {
				c.LeecherBandwidths = half
			}},
		}
	case "varbw":
		variants = []variant{
			{"fixed bandwidth", nil},
			{"drops to half mid-clip", func(c *simpeer.SwarmConfig) {
				c.BandwidthSchedule = []netem.BandwidthStep{
					{At: 40 * time.Second, BytesPerSec: c.BandwidthBytesPerSec / 2},
					{At: 80 * time.Second, BytesPerSec: c.BandwidthBytesPerSec},
				}
			}},
		}
	default:
		return fmt.Errorf("unknown ablation %q", name)
	}

	fmt.Printf("Ablation %q (4s splicing, adaptive pooling)\n", name)
	fmt.Printf("%-24s | %-8s | %8s | %10s | %9s\n", "variant", "kB/s", "stalls", "stall sec", "startup")
	for _, v := range variants {
		for _, bw := range bandwidths {
			pts, err := p.Sweep(splicer.DurationSplicer{Target: 4 * time.Second}, core.AdaptivePool{}, []int64{bw}, v.mod)
			if err != nil {
				return err
			}
			pt := pts[0]
			fmt.Printf("%-24s | %-8d | %8.1f | %10.1f | %9.1f\n",
				v.label, bw, pt.Stalls, pt.StallSeconds, pt.StartupSecs)
		}
	}
	return nil
}
