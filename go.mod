module p2psplice

go 1.22
