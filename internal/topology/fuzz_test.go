package topology

import (
	"bytes"
	"testing"
	"time"
)

// FuzzReadJSON checks the spec parser never panics and never returns an
// invalid spec without error.
func FuzzReadJSON(f *testing.F) {
	sp := Star("s", 3, 128, 475*time.Millisecond, 5)
	var buf bytes.Buffer
	if err := sp.WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("{}"))
	f.Add([]byte("]["))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadJSON(bytes.NewReader(data))
		if err == nil && s.Validate() != nil {
			t.Fatal("ReadJSON returned invalid spec without error")
		}
	})
}
