// Package topology provides a declarative description of the emulated star
// network — the equivalent of the RSpec snippet in the paper's Figure 1,
// which declares virtual nodes and the bandwidth/latency/loss of the links
// connecting them. A Spec can be serialized to JSON, validated, and
// instantiated onto a netem.Network.
package topology

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"p2psplice/internal/netem"
	"p2psplice/internal/sim"
)

// Role classifies a node's function in an experiment.
type Role string

// Recognized roles.
const (
	RoleSeeder  Role = "seeder"
	RoleLeecher Role = "leecher"
	RoleTraffic Role = "traffic" // cross-traffic generator
)

// Valid reports whether r is a recognized role.
func (r Role) Valid() bool {
	switch r {
	case RoleSeeder, RoleLeecher, RoleTraffic:
		return true
	}
	return false
}

// NodeSpec declares one virtual node and its access link, mirroring the
// paper's per-link RSpec properties (capacity, latency, packet loss).
type NodeSpec struct {
	// Name is the unique node identifier.
	Name string `json:"name"`
	// Role is the node's function.
	Role Role `json:"role"`
	// UplinkKBps and DownlinkKBps are the access-link rates in kB/s.
	// Zero inherits the spec default.
	UplinkKBps   int64 `json:"uplink_kbps,omitempty"`
	DownlinkKBps int64 `json:"downlink_kbps,omitempty"`
	// AccessDelayMs is the one-way delay to the star hub in milliseconds.
	// Zero inherits the spec default (use -1 for a true zero delay).
	AccessDelayMs int `json:"access_delay_ms,omitempty"`
	// LossPct is the access-link loss percentage in [0, 100). Zero
	// inherits the spec default (use -1 for a true zero loss).
	LossPct float64 `json:"loss_pct,omitempty"`
}

// Defaults supplies values for fields NodeSpec leaves zero.
type Defaults struct {
	UplinkKBps    int64   `json:"uplink_kbps"`
	DownlinkKBps  int64   `json:"downlink_kbps"`
	AccessDelayMs int     `json:"access_delay_ms"`
	LossPct       float64 `json:"loss_pct"`
}

// Spec is a complete experiment topology.
type Spec struct {
	// Name labels the topology.
	Name string `json:"name"`
	// Defaults fills unset node fields.
	Defaults Defaults `json:"defaults"`
	// Nodes lists the virtual nodes.
	Nodes []NodeSpec `json:"nodes"`
}

// Star builds the paper's experimental topology: one seeder plus n leechers,
// all with the same access bandwidth, 25 ms leecher access delay (50 ms
// peer-to-peer) and the given seeder delay and loss.
func Star(name string, leechers int, bandwidthKBps int64, seederDelay time.Duration, lossPct float64) Spec {
	sp := Spec{
		Name: name,
		Defaults: Defaults{
			UplinkKBps:    bandwidthKBps,
			DownlinkKBps:  bandwidthKBps,
			AccessDelayMs: 25,
			LossPct:       lossPct,
		},
		Nodes: []NodeSpec{{
			Name:          "seeder",
			Role:          RoleSeeder,
			AccessDelayMs: int(seederDelay / time.Millisecond),
		}},
	}
	for i := 1; i <= leechers; i++ {
		sp.Nodes = append(sp.Nodes, NodeSpec{
			Name: fmt.Sprintf("peer%02d", i),
			Role: RoleLeecher,
		})
	}
	return sp
}

// Validate checks the spec's structural invariants.
func (s *Spec) Validate() error {
	if len(s.Nodes) == 0 {
		return fmt.Errorf("topology: no nodes")
	}
	seen := make(map[string]bool, len(s.Nodes))
	seeders := 0
	for i, n := range s.Nodes {
		if n.Name == "" {
			return fmt.Errorf("topology: node %d has no name", i)
		}
		if seen[n.Name] {
			return fmt.Errorf("topology: duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
		if !n.Role.Valid() {
			return fmt.Errorf("topology: node %q has unknown role %q", n.Name, n.Role)
		}
		if n.Role == RoleSeeder {
			seeders++
		}
		nc := s.resolve(n)
		if err := nc.Validate(); err != nil {
			return fmt.Errorf("topology: node %q: %w", n.Name, err)
		}
	}
	if seeders == 0 {
		return fmt.Errorf("topology: no seeder node")
	}
	return nil
}

// resolve merges a node spec with the defaults into a netem config.
func (s *Spec) resolve(n NodeSpec) netem.NodeConfig {
	up := n.UplinkKBps
	if up == 0 {
		up = s.Defaults.UplinkKBps
	}
	down := n.DownlinkKBps
	if down == 0 {
		down = s.Defaults.DownlinkKBps
	}
	delay := n.AccessDelayMs
	if delay == 0 {
		delay = s.Defaults.AccessDelayMs
	}
	if delay < 0 {
		delay = 0
	}
	loss := n.LossPct
	if loss == 0 {
		loss = s.Defaults.LossPct
	}
	if loss < 0 {
		loss = 0
	}
	return netem.NodeConfig{
		UplinkBytesPerSec:   up * 1024,
		DownlinkBytesPerSec: down * 1024,
		AccessDelay:         time.Duration(delay) * time.Millisecond,
		LossRate:            loss / 100,
	}
}

// Build instantiates the topology onto a fresh netem.Network and returns the
// network plus a name-to-ID mapping.
func (s *Spec) Build(eng *sim.Engine, cfg netem.Config) (*netem.Network, map[string]netem.NodeID, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	n := netem.New(eng, cfg)
	ids := make(map[string]netem.NodeID, len(s.Nodes))
	for _, node := range s.Nodes {
		id, err := n.AddNode(s.resolve(node))
		if err != nil {
			return nil, nil, fmt.Errorf("topology: node %q: %w", node.Name, err)
		}
		ids[node.Name] = id
	}
	return n, ids, nil
}

// Leechers returns the names of the leecher nodes in declaration order.
func (s *Spec) Leechers() []string {
	var out []string
	for _, n := range s.Nodes {
		if n.Role == RoleLeecher {
			out = append(out, n.Name)
		}
	}
	return out
}

// SeederName returns the first seeder node's name, or "".
func (s *Spec) SeederName() string {
	for _, n := range s.Nodes {
		if n.Role == RoleSeeder {
			return n.Name
		}
	}
	return ""
}

// WriteJSON serializes the spec.
func (s *Spec) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("topology: encode: %w", err)
	}
	return nil
}

// ReadJSON parses and validates a spec.
func ReadJSON(r io.Reader) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("topology: decode: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ResolvedByRole resolves every node against the defaults and groups the
// results by role: the (first) seeder, the leechers in declaration order,
// and any traffic nodes. It is the bridge from a declarative spec to the
// emulated swarm.
func (s *Spec) ResolvedByRole() (seeder netem.NodeConfig, leechers, traffic []netem.NodeConfig, err error) {
	if err = s.Validate(); err != nil {
		return netem.NodeConfig{}, nil, nil, err
	}
	seederSet := false
	for _, n := range s.Nodes {
		nc := s.resolve(n)
		switch n.Role {
		case RoleSeeder:
			if !seederSet {
				seeder = nc
				seederSet = true
			}
		case RoleLeecher:
			leechers = append(leechers, nc)
		case RoleTraffic:
			traffic = append(traffic, nc)
		}
	}
	return seeder, leechers, traffic, nil
}
