package topology

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"p2psplice/internal/netem"
	"p2psplice/internal/sim"
)

func TestStarSpec(t *testing.T) {
	sp := Star("paper", 19, 128, 475*time.Millisecond, 5)
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sp.Nodes) != 20 {
		t.Errorf("nodes = %d, want 20", len(sp.Nodes))
	}
	if got := sp.SeederName(); got != "seeder" {
		t.Errorf("SeederName = %q", got)
	}
	if got := len(sp.Leechers()); got != 19 {
		t.Errorf("leechers = %d, want 19", got)
	}
}

func TestBuild(t *testing.T) {
	sp := Star("t", 3, 256, 25*time.Millisecond, 5)
	eng := sim.New(1)
	n, ids, err := sp.Build(eng, netem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if n.NodeCount() != 4 {
		t.Errorf("NodeCount = %d, want 4", n.NodeCount())
	}
	seeder := ids["seeder"]
	nc, err := n.Node(seeder)
	if err != nil {
		t.Fatal(err)
	}
	if nc.UplinkBytesPerSec != 256*1024 {
		t.Errorf("seeder uplink = %d, want %d", nc.UplinkBytesPerSec, 256*1024)
	}
	if nc.LossRate != 0.05 {
		t.Errorf("seeder loss = %v, want 0.05", nc.LossRate)
	}
	// Peer-to-peer one-way delay: 25 + 25 ms.
	ow, err := n.OneWayDelay(ids["peer01"], ids["peer02"])
	if err != nil {
		t.Fatal(err)
	}
	if ow != 50*time.Millisecond {
		t.Errorf("peer one-way = %v, want 50ms", ow)
	}
}

func TestResolveDefaultsAndOverrides(t *testing.T) {
	sp := Spec{
		Name:     "x",
		Defaults: Defaults{UplinkKBps: 100, DownlinkKBps: 200, AccessDelayMs: 10, LossPct: 2},
		Nodes: []NodeSpec{
			{Name: "s", Role: RoleSeeder, UplinkKBps: 500, AccessDelayMs: -1, LossPct: -1},
			{Name: "l", Role: RoleLeecher},
		},
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	s := sp.resolve(sp.Nodes[0])
	if s.UplinkBytesPerSec != 500*1024 || s.DownlinkBytesPerSec != 200*1024 {
		t.Errorf("override merge wrong: %+v", s)
	}
	if s.AccessDelay != 0 || s.LossRate != 0 {
		t.Errorf("-1 sentinels should produce zero delay/loss: %+v", s)
	}
	l := sp.resolve(sp.Nodes[1])
	if l.UplinkBytesPerSec != 100*1024 || l.AccessDelay != 10*time.Millisecond || l.LossRate != 0.02 {
		t.Errorf("defaults merge wrong: %+v", l)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"empty", Spec{}},
		{"unnamed node", Spec{Nodes: []NodeSpec{{Role: RoleSeeder}}}},
		{"duplicate", Spec{
			Defaults: Defaults{UplinkKBps: 1, DownlinkKBps: 1},
			Nodes:    []NodeSpec{{Name: "a", Role: RoleSeeder}, {Name: "a", Role: RoleLeecher}},
		}},
		{"bad role", Spec{
			Defaults: Defaults{UplinkKBps: 1, DownlinkKBps: 1},
			Nodes:    []NodeSpec{{Name: "a", Role: "router"}},
		}},
		{"no seeder", Spec{
			Defaults: Defaults{UplinkKBps: 1, DownlinkKBps: 1},
			Nodes:    []NodeSpec{{Name: "a", Role: RoleLeecher}},
		}},
		{"zero bandwidth", Spec{Nodes: []NodeSpec{{Name: "a", Role: RoleSeeder}}}},
		{"loss 100", Spec{
			Defaults: Defaults{UplinkKBps: 1, DownlinkKBps: 1, LossPct: 100},
			Nodes:    []NodeSpec{{Name: "a", Role: RoleSeeder}},
		}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.spec.Validate(); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestJSONRoundTrip(t *testing.T) {
	sp := Star("rt", 2, 128, 475*time.Millisecond, 5)
	var buf bytes.Buffer
	if err := sp.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != sp.Name || len(got.Nodes) != len(sp.Nodes) {
		t.Error("round-trip mismatch")
	}
	for i := range got.Nodes {
		if got.Nodes[i] != sp.Nodes[i] {
			t.Errorf("node %d mismatch: %+v vs %+v", i, got.Nodes[i], sp.Nodes[i])
		}
	}
}

func TestReadJSONRejects(t *testing.T) {
	cases := []string{
		"not json",
		`{"name":"x","bogus":1}`,
		`{"name":"x","defaults":{"uplink_kbps":1,"downlink_kbps":1,"access_delay_ms":0,"loss_pct":0},"nodes":[]}`,
	}
	for _, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("ReadJSON(%q): want error", in)
		}
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	var sp Spec
	if _, _, err := sp.Build(sim.New(1), netem.Config{}); err == nil {
		t.Error("want error for invalid spec")
	}
}

func TestRoleValid(t *testing.T) {
	if !RoleSeeder.Valid() || !RoleLeecher.Valid() || !RoleTraffic.Valid() {
		t.Error("defined roles should be valid")
	}
	if Role("x").Valid() {
		t.Error("unknown role should be invalid")
	}
}

func TestResolvedByRole(t *testing.T) {
	sp := Star("r", 3, 256, 475*time.Millisecond, 5)
	sp.Nodes = append(sp.Nodes, NodeSpec{Name: "noise", Role: RoleTraffic, UplinkKBps: 64})
	seeder, leechers, traffic, err := sp.ResolvedByRole()
	if err != nil {
		t.Fatal(err)
	}
	if seeder.AccessDelay != 475*time.Millisecond {
		t.Errorf("seeder delay = %v", seeder.AccessDelay)
	}
	if len(leechers) != 3 {
		t.Fatalf("leechers = %d, want 3", len(leechers))
	}
	for i, l := range leechers {
		if l.UplinkBytesPerSec != 256*1024 {
			t.Errorf("leecher %d uplink = %d", i, l.UplinkBytesPerSec)
		}
		if l.LossRate != 0.05 {
			t.Errorf("leecher %d loss = %v", i, l.LossRate)
		}
	}
	if len(traffic) != 1 || traffic[0].UplinkBytesPerSec != 64*1024 {
		t.Errorf("traffic = %+v", traffic)
	}
	var bad Spec
	if _, _, _, err := bad.ResolvedByRole(); err == nil {
		t.Error("invalid spec: want error")
	}
}

func TestSeederNameEmpty(t *testing.T) {
	var sp Spec
	if got := sp.SeederName(); got != "" {
		t.Errorf("SeederName of empty spec = %q", got)
	}
}
