// Package cdn implements the hybrid architecture of the paper's Section IV:
// a CDN origin serving spliced segments over HTTP, and a client that
// downloads one segment at a time, sized by the rule W <= B*T — if the
// client has T seconds of buffer and bandwidth B, the largest segment that
// cannot cause a stall is B*T bytes.
//
// The origin can host several splicings of the same clip (a *duration
// ladder*: 2 s / 4 s / 8 s variants, analogous to a DASH bitrate ladder),
// and the client switches variants at aligned segment boundaries, picking
// the longest-duration variant whose next segment still satisfies the bound.
// This realizes the "adaptive splicing" the paper sketches as future work:
// adapting segment duration instead of bit-rate, so quality never degrades.
package cdn

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"p2psplice/internal/container"
	"p2psplice/internal/trace"
)

// Variant is one splicing of the clip hosted by the origin.
type Variant struct {
	// Name labels the variant ("2s", "4s", "8s", "gop").
	Name string
	// Manifest describes the variant's segments.
	Manifest *container.Manifest
	blobs    [][]byte
}

// Origin is an HTTP segment server. Safe for concurrent use.
type Origin struct {
	mu       sync.RWMutex
	variants map[string]*Variant
	order    []string

	// Per-endpoint request counters, delivered-byte total, and the
	// segment-size histogram. No-op handles until SetMetrics.
	reqVariants trace.Counter
	reqManifest trace.Counter
	reqPlaylist trace.Counter
	reqSegment  trace.Counter
	reqRejected trace.Counter
	bytesSent   trace.Counter
	segBytes    trace.Histogram
}

// NewOrigin returns an empty origin.
func NewOrigin() *Origin {
	return &Origin{variants: make(map[string]*Variant)}
}

// SetMetrics wires the origin's request counters and segment-size
// histogram into reg. Call before mounting Handler; nil is a no-op.
func (o *Origin) SetMetrics(reg *trace.Registry) {
	if reg == nil {
		return
	}
	reg.SetHelp("cdn_requests_total", "Origin requests served, by endpoint.")
	reg.SetHelp("cdn_rejected_total", "Origin requests rejected (unknown variant or bad index).")
	reg.SetHelp("cdn_bytes_sent_total", "Segment payload bytes handed to the HTTP layer.")
	reg.SetHelp("cdn_segment_bytes", "Sizes of segments served.")
	o.reqVariants = reg.Counter(`cdn_requests_total{endpoint="variants"}`)
	o.reqManifest = reg.Counter(`cdn_requests_total{endpoint="manifest"}`)
	o.reqPlaylist = reg.Counter(`cdn_requests_total{endpoint="playlist"}`)
	o.reqSegment = reg.Counter(`cdn_requests_total{endpoint="segment"}`)
	o.reqRejected = reg.Counter("cdn_rejected_total")
	o.bytesSent = reg.Counter("cdn_bytes_sent_total")
	o.segBytes = reg.Histogram("cdn_segment_bytes")
}

// AddVariant registers a splicing variant. Blob i must verify against the
// manifest's segment i.
func (o *Origin) AddVariant(name string, m *container.Manifest, blobs [][]byte) error {
	if name == "" || strings.ContainsAny(name, "/ ") {
		return fmt.Errorf("cdn: bad variant name %q", name)
	}
	if err := m.Validate(); err != nil {
		return err
	}
	if len(blobs) != len(m.Segments) {
		return fmt.Errorf("cdn: %d blobs for %d segments", len(blobs), len(m.Segments))
	}
	for i, b := range blobs {
		if err := m.VerifySegment(i, b); err != nil {
			return fmt.Errorf("cdn: variant %q: %w", name, err)
		}
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, dup := o.variants[name]; dup {
		return fmt.Errorf("cdn: duplicate variant %q", name)
	}
	o.variants[name] = &Variant{Name: name, Manifest: m, blobs: blobs}
	o.order = append(o.order, name)
	sort.Strings(o.order)
	return nil
}

// VariantNames lists registered variants in sorted order.
func (o *Origin) VariantNames() []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return append([]string(nil), o.order...)
}

// Handler mounts the origin API:
//
//	GET /variants                -> JSON list of variant names
//	GET /manifest/{name}         -> manifest JSON
//	GET /segment/{name}/{index}  -> raw segment container
func (o *Origin) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /variants", func(w http.ResponseWriter, _ *http.Request) {
		o.reqVariants.Inc()
		w.Header().Set("Content-Type", "application/json")
		//lint:ignore wireerr response-body write failure means the client went away; nothing to recover server-side
		_ = json.NewEncoder(w).Encode(o.VariantNames())
	})
	mux.HandleFunc("GET /manifest/{name}", func(w http.ResponseWriter, r *http.Request) {
		v, ok := o.variant(r.PathValue("name"))
		if !ok {
			o.reqRejected.Inc()
			http.NotFound(w, r)
			return
		}
		o.reqManifest.Inc()
		w.Header().Set("Content-Type", "application/json")
		//lint:ignore wireerr response-body write failure means the client went away; nothing to recover server-side
		_ = v.Manifest.WriteJSON(w)
	})
	mux.HandleFunc("GET /playlist/{name}", func(w http.ResponseWriter, r *http.Request) {
		v, ok := o.variant(r.PathValue("name"))
		if !ok {
			o.reqRejected.Inc()
			http.NotFound(w, r)
			return
		}
		o.reqPlaylist.Inc()
		w.Header().Set("Content-Type", "application/vnd.apple.mpegurl")
		//lint:ignore wireerr response-body write failure means the client went away; nothing to recover server-side
		_ = v.Manifest.WriteM3U8(w, "/segment/"+v.Name)
	})
	mux.HandleFunc("GET /segment/{name}/{index}", func(w http.ResponseWriter, r *http.Request) {
		v, ok := o.variant(r.PathValue("name"))
		if !ok {
			o.reqRejected.Inc()
			http.NotFound(w, r)
			return
		}
		idx, err := strconv.Atoi(r.PathValue("index"))
		if err != nil || idx < 0 || idx >= len(v.blobs) {
			o.reqRejected.Inc()
			http.Error(w, "bad segment index", http.StatusBadRequest)
			return
		}
		o.reqSegment.Inc()
		o.bytesSent.Add(int64(len(v.blobs[idx])))
		o.segBytes.Observe(int64(len(v.blobs[idx])))
		w.Header().Set("Content-Type", "application/octet-stream")
		//lint:ignore wireerr response-body write failure means the client went away; nothing to recover server-side
		_, _ = w.Write(v.blobs[idx])
	})
	return mux
}

func (o *Origin) variant(name string) (*Variant, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	v, ok := o.variants[name]
	return v, ok
}
