package cdn

import (
	"fmt"
	"time"

	"p2psplice/internal/player"
)

// timelinePlayer tracks playback against a continuously advancing download
// frontier. It is the variant-switching analogue of player.Player: the
// segment layout is not fixed up front (each fetch may come from a different
// splicing variant), so the buffer is tracked in clip time directly.
type timelinePlayer struct {
	clip     time.Duration
	frontier time.Duration
	pos      time.Duration
	last     time.Duration
	state    player.State

	startedAt  time.Duration
	startup    time.Duration
	stallStart time.Duration
	stalls     []player.Interval
	finishedAt time.Duration
}

func newTimelinePlayer(clip time.Duration) *timelinePlayer {
	return &timelinePlayer{clip: clip, state: player.StateIdle}
}

func (t *timelinePlayer) start(now time.Duration) error {
	if t.state != player.StateIdle {
		return fmt.Errorf("cdn: timeline player started twice")
	}
	t.state = player.StateWaiting
	t.startedAt = now
	t.last = now
	return nil
}

// advance moves the playhead to now.
func (t *timelinePlayer) advance(now time.Duration) {
	if now < t.last {
		now = t.last
	}
	if t.state == player.StatePlaying {
		newPos := t.pos + (now - t.last)
		switch {
		case newPos >= t.clip && t.frontier >= t.clip:
			t.finishedAt = t.last + (t.clip - t.pos)
			t.pos = t.clip
			t.state = player.StateFinished
		case newPos >= t.frontier:
			t.stallStart = t.last + (t.frontier - t.pos)
			t.pos = t.frontier
			t.state = player.StateStalled
		default:
			t.pos = newPos
		}
	}
	t.last = now
}

// advanceFrontier records that the clip is downloaded through f.
func (t *timelinePlayer) advanceFrontier(f, now time.Duration) {
	t.advance(now)
	if f > t.frontier {
		t.frontier = f
	}
	switch t.state {
	case player.StateWaiting:
		t.startup = now - t.startedAt
		t.state = player.StatePlaying
	case player.StateStalled:
		if t.frontier > t.pos {
			if now > t.stallStart {
				t.stalls = append(t.stalls, player.Interval{Start: t.stallStart, End: now})
			}
			t.state = player.StatePlaying
		}
	}
}

func (t *timelinePlayer) bufferedAhead(now time.Duration) time.Duration {
	t.advance(now)
	return t.frontier - t.pos
}

// finish is called when downloading completes; no further frontier events
// will arrive.
func (t *timelinePlayer) finish(now time.Duration) {
	t.advance(now)
}

// metrics projects the final playback outcome. Once the frontier covers the
// clip no more stalls can occur, so the projection to the finish instant is
// exact.
func (t *timelinePlayer) metrics(now time.Duration) player.Metrics {
	horizon := now
	if t.frontier >= t.clip {
		horizon = now + t.clip + time.Second
	}
	t.advance(horizon)
	m := player.Metrics{
		State:          t.state,
		StartupTime:    t.startup,
		Stalls:         len(t.stalls),
		StallIntervals: append([]player.Interval(nil), t.stalls...),
		Position:       t.pos,
		FinishedAt:     t.finishedAt,
	}
	for _, iv := range t.stalls {
		m.TotalStall += iv.Duration()
	}
	if t.state == player.StateStalled && horizon > t.stallStart {
		m.Stalls++
		m.TotalStall += horizon - t.stallStart
	}
	return m
}
