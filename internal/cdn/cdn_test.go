package cdn

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"p2psplice/internal/container"
	"p2psplice/internal/media"
	"p2psplice/internal/player"
	"p2psplice/internal/splicer"
)

// buildVariant splices the shared test clip at one target duration.
func buildVariant(t *testing.T, v *media.Video, target time.Duration) (*container.Manifest, [][]byte) {
	t.Helper()
	segs, err := splicer.DurationSplicer{Target: target}.Splice(v)
	if err != nil {
		t.Fatal(err)
	}
	m, blobs, err := container.BuildManifest(container.ClipInfo{
		Duration: v.Duration(), BytesPerSecond: v.Config.BytesPerSecond, Seed: v.Seed,
	}, splicer.DurationSplicer{Target: target}.Name(), segs)
	if err != nil {
		t.Fatal(err)
	}
	return m, blobs
}

// testVideo produces an 8-second low-rate clip whose 2/4/8s variants align.
func testVideo(t *testing.T) *media.Video {
	t.Helper()
	cfg := media.DefaultEncoderConfig()
	cfg.BytesPerSecond = 16 * 1024
	v, err := media.Synthesize(cfg, 8*time.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func newOriginServer(t *testing.T, v *media.Video, targets ...time.Duration) (*Origin, *httptest.Server) {
	t.Helper()
	o := NewOrigin()
	for _, target := range targets {
		m, blobs := buildVariant(t, v, target)
		if err := o.AddVariant(splicer.DurationSplicer{Target: target}.Name(), m, blobs); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(o.Handler())
	t.Cleanup(srv.Close)
	return o, srv
}

func TestOriginValidation(t *testing.T) {
	v := testVideo(t)
	m, blobs := buildVariant(t, v, 2*time.Second)
	o := NewOrigin()
	if err := o.AddVariant("bad name", m, blobs); err == nil {
		t.Error("name with space: want error")
	}
	if err := o.AddVariant("x/y", m, blobs); err == nil {
		t.Error("name with slash: want error")
	}
	if err := o.AddVariant("2s", m, blobs[:1]); err == nil {
		t.Error("missing blobs: want error")
	}
	if err := o.AddVariant("2s", m, blobs); err != nil {
		t.Fatal(err)
	}
	if err := o.AddVariant("2s", m, blobs); err == nil {
		t.Error("duplicate variant: want error")
	}
	if got := o.VariantNames(); len(got) != 1 || got[0] != "2s" {
		t.Errorf("VariantNames = %v", got)
	}
}

func TestOriginHTTPEndpoints(t *testing.T) {
	v := testVideo(t)
	_, srv := newOriginServer(t, v, 2*time.Second)

	get := func(path string) int {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	cases := map[string]int{
		"/variants":      200,
		"/manifest/2s":   200,
		"/manifest/zz":   404,
		"/segment/2s/0":  200,
		"/segment/2s/99": 400,
		"/segment/2s/-1": 400,
		"/segment/zz/0":  404,
	}
	for path, want := range cases {
		if got := get(path); got != want {
			t.Errorf("GET %s = %d, want %d", path, got, want)
		}
	}
}

func TestChooseSegmentPrefersLargestWithinBound(t *testing.T) {
	v := testVideo(t)
	m2, _ := buildVariant(t, v, 2*time.Second)
	m4, _ := buildVariant(t, v, 4*time.Second)
	m8, _ := buildVariant(t, v, 8*time.Second)
	manifests := []*container.Manifest{m2, m4, m8}
	names := []string{"2s", "4s", "8s"}

	// Huge bandwidth and buffer: the 8s segment wins.
	c, ok := ChooseSegment(manifests, names, 0, 1<<30, 10*time.Second)
	if !ok || c.Variant != "8s" {
		t.Errorf("rich client chose %+v, want 8s", c)
	}
	// T = 0 (startup): smallest segment wins.
	c, ok = ChooseSegment(manifests, names, 0, 1<<30, 0)
	if !ok || c.Variant != "2s" {
		t.Errorf("startup chose %+v, want 2s", c)
	}
	// Mid-range: bound above 4s's size but below 8s's size.
	limit4 := m4.Segments[0].Bytes
	bw := int64(limit4) // with T=1s, limit = limit4 exactly
	c, ok = ChooseSegment(manifests, names, 0, bw, time.Second)
	if !ok || c.Variant != "4s" {
		t.Errorf("mid client chose %+v, want 4s", c)
	}
	// Frontier at the 2s variant's second boundary (NB: frame durations
	// truncate, so boundaries sit just shy of whole seconds): only the 2s
	// variant has a segment starting there.
	c, ok = ChooseSegment(manifests, names, m2.Segments[1].Start, 1<<30, 10*time.Second)
	if !ok || c.Variant != "2s" || c.Index != 1 {
		t.Errorf("misaligned frontier chose %+v, want 2s[1]", c)
	}
	// Frontier at the 4s variant's second boundary: 2s and 4s are eligible,
	// 8s is not; the larger 4s segment wins.
	c, ok = ChooseSegment(manifests, names, m4.Segments[1].Start, 1<<30, 10*time.Second)
	if !ok || c.Variant != "4s" || c.Index != 1 {
		t.Errorf("frontier at 4s chose %+v, want 4s[1]", c)
	}
	// No boundary anywhere.
	if _, ok := ChooseSegment(manifests, names, 3*time.Second+7, 1<<30, time.Second); ok {
		t.Error("frontier off every boundary should not resolve")
	}
}

func TestClientStreamsWholeClip(t *testing.T) {
	v := testVideo(t)
	_, srv := newOriginServer(t, v, 2*time.Second, 4*time.Second, 8*time.Second)
	c, err := NewClient(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Load(ctx); err != nil {
		t.Fatal(err)
	}
	if got := c.Variants(); len(got) != 3 {
		t.Fatalf("Variants = %v", got)
	}
	// A virtual clock makes the whole session instantaneous and gives the
	// client a generous buffer so it climbs the duration ladder.
	var virtual time.Duration
	c.now = func() time.Duration { return virtual }
	res, err := c.Stream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var covered time.Duration
	for _, ch := range res.Choices {
		m := c.manifests[indexOf(c.names, ch.Variant)]
		covered += m.Segments[ch.Index].Duration
	}
	if covered != v.Duration() {
		t.Errorf("choices cover %v, want %v", covered, v.Duration())
	}
	if res.Bytes == 0 {
		t.Error("no bytes downloaded")
	}
	if res.Metrics.State != player.StateFinished {
		t.Errorf("final state %v, want finished", res.Metrics.State)
	}
	// With instant downloads the very first fetch is the only one at T=0:
	// later fetches should climb to larger segments.
	first := res.Choices[0]
	if first.Variant != "2s" {
		t.Errorf("first fetch used %s, want 2s (T=0 rule)", first.Variant)
	}
	if len(res.Choices) >= 2 {
		last := res.Choices[len(res.Choices)-1]
		if last.Variant == "2s" {
			t.Logf("note: client never climbed the ladder: %+v", res.Choices)
		}
	}
}

func TestClientErrors(t *testing.T) {
	ctx := context.Background()
	c, err := NewClient("http://127.0.0.1:1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stream(ctx); err == nil {
		t.Error("Stream before Load: want error")
	}
	if err := c.Load(ctx); err == nil {
		t.Error("Load against dead origin: want error")
	}
	// An origin with mismatched variant durations is rejected.
	v1 := testVideo(t)
	cfg := media.DefaultEncoderConfig()
	cfg.BytesPerSecond = 16 * 1024
	v2, err := media.Synthesize(cfg, 4*time.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOrigin()
	m1, b1 := buildVariant(t, v1, 2*time.Second)
	m2, b2 := buildVariant(t, v2, 2*time.Second)
	if err := o.AddVariant("a", m1, b1); err != nil {
		t.Fatal(err)
	}
	if err := o.AddVariant("b", m2, b2); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()
	c2, err := NewClient(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Load(ctx); err == nil {
		t.Error("mismatched clip durations: want error")
	}
}

func TestTimelinePlayerStallAccounting(t *testing.T) {
	tp := newTimelinePlayer(10 * time.Second)
	if err := tp.start(0); err != nil {
		t.Fatal(err)
	}
	if err := tp.start(0); err == nil {
		t.Error("double start: want error")
	}
	// 4s of video arrives at t=1: startup 1s, playing.
	tp.advanceFrontier(4*time.Second, time.Second)
	if got := tp.bufferedAhead(2 * time.Second); got != 3*time.Second {
		t.Errorf("buffered = %v, want 3s", got)
	}
	// Next 6s arrive at t=8: the playhead hit the 4s frontier at t=5.
	tp.advanceFrontier(10*time.Second, 8*time.Second)
	m := tp.metrics(8 * time.Second)
	if m.StartupTime != time.Second {
		t.Errorf("startup = %v, want 1s", m.StartupTime)
	}
	if m.Stalls != 1 || m.TotalStall != 3*time.Second {
		t.Errorf("stalls = %d/%v, want 1/3s", m.Stalls, m.TotalStall)
	}
	if m.State != player.StateFinished {
		t.Errorf("projected state = %v, want finished", m.State)
	}
	// Played 4s (1..5), stalled (5..8), played 6s (8..14).
	if m.FinishedAt != 14*time.Second {
		t.Errorf("FinishedAt = %v, want 14s", m.FinishedAt)
	}
}

func TestOriginPlaylistEndpoint(t *testing.T) {
	v := testVideo(t)
	_, srv := newOriginServer(t, v, 2*time.Second)
	resp, err := srv.Client().Get(srv.URL + "/playlist/2s")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /playlist/2s = %d", resp.StatusCode)
	}
	body := make([]byte, 4096)
	n, _ := resp.Body.Read(body)
	out := string(body[:n])
	if !strings.HasPrefix(out, "#EXTM3U") {
		t.Errorf("playlist does not start with #EXTM3U: %q", out[:min(40, len(out))])
	}
	if !strings.Contains(out, "/segment/2s/0.seg") {
		t.Errorf("playlist missing segment URI:\n%s", out)
	}
	resp2, err := srv.Client().Get(srv.URL + "/playlist/zz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 404 {
		t.Errorf("GET /playlist/zz = %d, want 404", resp2.StatusCode)
	}
}
