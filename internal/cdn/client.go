package cdn

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"p2psplice/internal/container"
	"p2psplice/internal/core"
	"p2psplice/internal/player"
)

// Choice is one variant-selection decision.
type Choice struct {
	// Variant is the chosen splicing.
	Variant string
	// Index is the segment index within the variant.
	Index int
	// Start and Bytes describe the chosen segment.
	Start time.Duration
	Bytes int64
}

// ChooseSegment applies Section IV at one decision point: among variants
// that have a segment boundary exactly at the download frontier, pick the
// longest-duration segment whose size respects W <= B*T. If none satisfies
// the bound (including at startup, when T = 0), the smallest eligible
// segment is returned — the client must fetch something to make progress.
//
// It returns false only when no variant has a boundary at the frontier,
// which cannot happen when variants share a common alignment and the
// frontier only ever advances by chosen segments.
func ChooseSegment(variants []*container.Manifest, names []string, frontier time.Duration,
	bandwidth int64, buffered time.Duration) (Choice, bool) {
	limit := core.MaxSegmentBytes(bandwidth, buffered)
	var candidates []Choice
	for vi, m := range variants {
		for i, s := range m.Segments {
			if s.Start == frontier {
				candidates = append(candidates, Choice{
					Variant: names[vi],
					Index:   i,
					Start:   s.Start,
					Bytes:   s.Bytes,
				})
				break
			}
			if s.Start > frontier {
				break
			}
		}
	}
	if len(candidates) == 0 {
		return Choice{}, false
	}
	// Sort by size ascending; sizes order the same way durations do within
	// one clip. Ties break deterministically by variant name.
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Bytes != candidates[j].Bytes {
			return candidates[i].Bytes < candidates[j].Bytes
		}
		return candidates[i].Variant < candidates[j].Variant
	})
	best := candidates[0]
	for _, c := range candidates[1:] {
		if c.Bytes <= limit {
			best = c
		}
	}
	return best, true
}

// Client streams a clip from an origin with duration-adaptive fetching.
type Client struct {
	base string
	http *http.Client

	names     []string
	manifests []*container.Manifest
	est       *core.BandwidthEstimator
	// now is the playback clock (monotone since Stream start); injectable
	// for tests.
	now func() time.Duration
}

// NewClient returns a client for the origin at base.
func NewClient(base string, httpClient *http.Client) (*Client, error) {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	est, err := core.NewBandwidthEstimator(core.DefaultEWMAAlpha)
	if err != nil {
		return nil, err
	}
	return &Client{base: base, http: httpClient, est: est}, nil
}

// Load fetches the variant list and manifests.
func (c *Client) Load(ctx context.Context) error {
	var names []string
	if err := c.getJSON(ctx, "/variants", &names); err != nil {
		return err
	}
	if len(names) == 0 {
		return fmt.Errorf("cdn: origin has no variants")
	}
	var manifests []*container.Manifest
	for _, name := range names {
		body, err := c.get(ctx, "/manifest/"+name)
		if err != nil {
			return err
		}
		m, err := container.ReadManifest(bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("cdn: variant %q: %w", name, err)
		}
		manifests = append(manifests, m)
	}
	// All variants must describe the same clip.
	clip := manifests[0].Video.Duration
	for i, m := range manifests {
		if m.Video.Duration != clip {
			return fmt.Errorf("cdn: variant %q covers %v, others %v", names[i], m.Video.Duration, clip)
		}
	}
	c.names = names
	c.manifests = manifests
	return nil
}

// Variants returns the loaded variant names.
func (c *Client) Variants() []string { return append([]string(nil), c.names...) }

// StreamResult summarizes a playback session.
type StreamResult struct {
	// Metrics is the playback outcome.
	Metrics player.Metrics
	// Choices records every fetch decision in order.
	Choices []Choice
	// Bytes is the total downloaded volume.
	Bytes int64
}

// Stream plays the whole clip, fetching one segment at a time and switching
// variants at aligned boundaries per the W <= B*T rule. It blocks for the
// real playback duration (download time + clip time); use short clips in
// tests.
func (c *Client) Stream(ctx context.Context) (*StreamResult, error) {
	if len(c.manifests) == 0 {
		return nil, fmt.Errorf("cdn: Load first")
	}
	start := time.Now()
	now := c.now
	if now == nil {
		now = func() time.Duration { return time.Since(start) }
	}
	clip := c.manifests[0].Video.Duration

	// The playback buffer is tracked in clip time; a single virtual
	// "timeline segment" per fetch keeps the player in sync with the
	// variant-switching frontier.
	res := &StreamResult{}
	var frontier time.Duration
	var buffered func() time.Duration
	pl := newTimelinePlayer(clip)
	if err := pl.start(now()); err != nil {
		return nil, err
	}
	buffered = func() time.Duration { return pl.bufferedAhead(now()) }

	for frontier < clip {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bandwidth := c.est.Estimate()
		if bandwidth <= 0 {
			bandwidth = c.manifests[0].Video.BytesPerSecond
		}
		choice, ok := ChooseSegment(c.manifests, c.names, frontier, bandwidth, buffered())
		if !ok {
			return nil, fmt.Errorf("cdn: no variant has a boundary at %v", frontier)
		}
		vi := indexOf(c.names, choice.Variant)
		seg := c.manifests[vi].Segments[choice.Index]

		fetchStart := time.Now()
		blob, err := c.get(ctx, fmt.Sprintf("/segment/%s/%d", choice.Variant, choice.Index))
		if err != nil {
			return nil, err
		}
		if err := c.manifests[vi].VerifySegment(choice.Index, blob); err != nil {
			return nil, fmt.Errorf("cdn: %w", err)
		}
		c.est.Observe(int64(len(blob)), time.Since(fetchStart))
		res.Bytes += int64(len(blob))
		res.Choices = append(res.Choices, choice)

		frontier += seg.Duration
		pl.advanceFrontier(frontier, now())
	}
	// Let playback drain.
	pl.finish(now())
	res.Metrics = pl.metrics(now())
	return res, nil
}

func indexOf(names []string, name string) int {
	for i, n := range names {
		if n == name {
			return i
		}
	}
	return -1
}

func (c *Client) get(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, fmt.Errorf("cdn: build request: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cdn: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cdn: GET %s: %s", path, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, container.MaxPayload))
	if err != nil {
		return nil, fmt.Errorf("cdn: read %s: %w", path, err)
	}
	return body, nil
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	body, err := c.get(ctx, path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("cdn: parse %s: %w", path, err)
	}
	return nil
}
