package tracker

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// retryClient wires a Client to srv with sleeps captured instead of slept.
func retryClient(srv *httptest.Server) (*Client, *[]time.Duration) {
	c := NewClient(srv.URL, srv.Client())
	var slept []time.Duration
	c.sleep = func(d time.Duration) { slept = append(slept, d) }
	return c, &slept
}

// Transient class: 5xx responses are retried until one succeeds.
func TestRetryOn5xx(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "backend restarting", http.StatusServiceUnavailable)
			return
		}
		_, _ = w.Write([]byte(`{"peers":[]}`))
	}))
	defer srv.Close()
	c, slept := retryClient(srv)
	body, err := c.do(http.MethodGet, "/announce", "", nil)
	if err != nil {
		t.Fatalf("do after two 503s: %v", err)
	}
	if string(body) != `{"peers":[]}` {
		t.Fatalf("unexpected body %q", body)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3 (two 503s then success)", got)
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(*slept))
	}
	if (*slept)[0] != 100*time.Millisecond || (*slept)[1] != 200*time.Millisecond {
		t.Errorf("backoff delays %v, want [100ms 200ms]", *slept)
	}
}

// Transient class: transport-level failures (connection refused) are
// retried and ultimately reported transient.
func TestRetryOnTransportError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // nothing listens: every attempt fails at the transport
	c, slept := retryClient(srv)
	_, err := c.do(http.MethodGet, "/announce", "", nil)
	if err == nil {
		t.Fatal("do against a closed server succeeded")
	}
	if !IsTransient(err) {
		t.Errorf("transport failure not classified transient: %v", err)
	}
	if len(*slept) != 2 {
		t.Errorf("slept %d times, want 2 (three total attempts)", len(*slept))
	}
}

// Permanent class: a 4xx fails fast after exactly one request.
func TestNoRetryOn4xx(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "unknown swarm", http.StatusNotFound)
	}))
	defer srv.Close()
	c, slept := retryClient(srv)
	_, err := c.do(http.MethodGet, "/manifest", "", nil)
	if err == nil {
		t.Fatal("do against a 404 succeeded")
	}
	if IsTransient(err) {
		t.Errorf("404 classified transient: %v", err)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1 (permanent errors fail fast)", got)
	}
	if len(*slept) != 0 {
		t.Errorf("slept %v before a permanent failure", *slept)
	}
}

// Timeouts are transport errors: retried, then reported transient.
func TestRetryOnTimeout(t *testing.T) {
	var hits atomic.Int64
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		<-block
	}))
	// Release the hung handlers before Close, which waits for them
	// (defers run last-in first-out).
	defer srv.Close()
	defer close(block)
	hc := srv.Client()
	hc.Timeout = 50 * time.Millisecond
	c := NewClient(srv.URL, hc)
	var slept []time.Duration
	c.sleep = func(d time.Duration) { slept = append(slept, d) }
	c.SetRetry(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond})
	_, err := c.do(http.MethodGet, "/announce", "", nil)
	if err == nil {
		t.Fatal("do against a hung server succeeded")
	}
	if !IsTransient(err) {
		t.Errorf("timeout not classified transient: %v", err)
	}
	if got := hits.Load(); got != 2 {
		t.Errorf("server saw %d requests, want 2", got)
	}
}

// POST bodies are rebuilt per attempt: the retried request carries the
// full payload, not a drained reader.
func TestRetryRebuildsRequestBody(t *testing.T) {
	var hits atomic.Int64
	want := `{"hello":"tracker"}`
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := make([]byte, len(want)+1)
		n, _ := r.Body.Read(body)
		if string(body[:n]) != want {
			t.Errorf("attempt %d saw body %q, want %q", hits.Load()+1, body[:n], want)
		}
		if hits.Add(1) == 1 {
			http.Error(w, "try again", http.StatusBadGateway)
			return
		}
		_, _ = w.Write([]byte("{}"))
	}))
	defer srv.Close()
	c, _ := retryClient(srv)
	if _, err := c.do(http.MethodPost, "/publish", "application/json", []byte(want)); err != nil {
		t.Fatalf("do: %v", err)
	}
	if got := hits.Load(); got != 2 {
		t.Errorf("server saw %d requests, want 2", got)
	}
}

// RetryPolicy{} disables retries entirely.
func TestRetryDisabled(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c, _ := retryClient(srv)
	c.SetRetry(RetryPolicy{})
	_, err := c.do(http.MethodGet, "/announce", "", nil)
	if err == nil {
		t.Fatal("do against a 500 succeeded")
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1 with retries disabled", got)
	}
	if !IsTransient(err) {
		t.Errorf("500 should still classify transient even without retries: %v", err)
	}
}

func TestIsTransientOnForeignError(t *testing.T) {
	if IsTransient(nil) {
		t.Error("IsTransient(nil) = true")
	}
	if IsTransient(http.ErrServerClosed) {
		t.Error("IsTransient on a non-tracker error = true")
	}
}
