package tracker

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"p2psplice/internal/container"
	"p2psplice/internal/media"
	"p2psplice/internal/splicer"
	"p2psplice/internal/wire"
)

func testManifest(t *testing.T) *container.Manifest {
	t.Helper()
	v, err := media.Synthesize(media.DefaultEncoderConfig(), 10*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := splicer.DurationSplicer{Target: 2 * time.Second}.Splice(v)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := container.BuildManifest(container.ClipInfo{
		Duration: v.Duration(), BytesPerSecond: v.Config.BytesPerSecond, Seed: v.Seed,
	}, "2s", segs)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newTestTracker(t *testing.T, opts ...Option) (*httptest.Server, *Client) {
	t.Helper()
	srv := httptest.NewServer(NewServer(opts...).Handler())
	t.Cleanup(srv.Close)
	return srv, NewClient(srv.URL, srv.Client())
}

func mustPeerID(t *testing.T) wire.PeerID {
	t.Helper()
	id, err := wire.NewPeerID()
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestPublishManifestRoundTrip(t *testing.T) {
	_, c := newTestTracker(t)
	m := testManifest(t)
	ih, err := c.Publish(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Manifest(ih)
	if err != nil {
		t.Fatal(err)
	}
	if got.Splicing != m.Splicing || len(got.Segments) != len(m.Segments) {
		t.Error("manifest round-trip mismatch")
	}
	// Publishing twice is idempotent.
	ih2, err := c.Publish(m)
	if err != nil {
		t.Fatal(err)
	}
	if ih2 != ih {
		t.Errorf("republish changed info hash: %s vs %s", ih2, ih)
	}
}

func TestAnnounceDiscoversPeers(t *testing.T) {
	_, c := newTestTracker(t)
	ih, err := c.Publish(testManifest(t))
	if err != nil {
		t.Fatal(err)
	}
	seederID, leecherID := mustPeerID(t), mustPeerID(t)

	peers, err := c.Announce(ih, seederID, "127.0.0.1:9001", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 0 {
		t.Errorf("first announce should see no peers, got %d", len(peers))
	}
	peers, err = c.Announce(ih, leecherID, "127.0.0.1:9002", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 1 || peers[0].Addr != "127.0.0.1:9001" || !peers[0].Seeder {
		t.Errorf("leecher should see the seeder, got %+v", peers)
	}
	// The seeder now sees the leecher and not itself.
	peers, err = c.Announce(ih, seederID, "127.0.0.1:9001", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 1 || peers[0].Seeder {
		t.Errorf("seeder should see only the leecher, got %+v", peers)
	}
}

func TestLeaveRemovesPeer(t *testing.T) {
	_, c := newTestTracker(t)
	ih, err := c.Publish(testManifest(t))
	if err != nil {
		t.Fatal(err)
	}
	a, b := mustPeerID(t), mustPeerID(t)
	if _, err := c.Announce(ih, a, "127.0.0.1:9001", true); err != nil {
		t.Fatal(err)
	}
	if err := c.Leave(ih, a); err != nil {
		t.Fatal(err)
	}
	peers, err := c.Announce(ih, b, "127.0.0.1:9002", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 0 {
		t.Errorf("departed peer still listed: %+v", peers)
	}
}

func TestStalePeersPruned(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	_, c := newTestTracker(t, WithPeerTTL(time.Minute), WithClock(clock))
	ih, err := c.Publish(testManifest(t))
	if err != nil {
		t.Fatal(err)
	}
	stale, fresh := mustPeerID(t), mustPeerID(t)
	if _, err := c.Announce(ih, stale, "127.0.0.1:9001", false); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	peers, err := c.Announce(ih, fresh, "127.0.0.1:9002", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 0 {
		t.Errorf("stale peer still listed: %+v", peers)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	srv, c := newTestTracker(t)
	m := testManifest(t)
	ih, err := c.Publish(m)
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) int {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	id := mustPeerID(t)
	cases := map[string]int{
		"/manifest?info_hash=zz":                                                                    http.StatusBadRequest,
		"/manifest?info_hash=" + strings.Repeat("ab", 32):                                           http.StatusNotFound,
		"/announce?info_hash=" + ih.String() + "&peer_id=short&addr=a:1":                            http.StatusBadRequest,
		"/announce?info_hash=" + ih.String() + "&peer_id=" + id.String():                            http.StatusBadRequest, // missing addr
		"/announce?info_hash=" + strings.Repeat("ab", 32) + "&peer_id=" + id.String() + "&addr=a:1": http.StatusNotFound,
	}
	for path, want := range cases {
		if got := get(path); got != want {
			t.Errorf("GET %s = %d, want %d", path, got, want)
		}
	}
	// Publish garbage.
	resp, err := srv.Client().Post(srv.URL+"/publish", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("publishing garbage: %d, want 400", resp.StatusCode)
	}
	// Publish an invalid (but parseable) manifest.
	resp, err = srv.Client().Post(srv.URL+"/publish", "application/json",
		strings.NewReader(`{"version":1,"video":{"duration_ns":0,"bytes_per_second":0,"seed":0},"splicing":"x","segments":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("publishing invalid manifest: %d, want 400", resp.StatusCode)
	}
}

func TestSwarmsEndpoint(t *testing.T) {
	srv, c := newTestTracker(t)
	if _, err := c.Publish(testManifest(t)); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Get(srv.URL + "/swarms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /swarms = %d", resp.StatusCode)
	}
}

func TestClientAgainstDeadServer(t *testing.T) {
	c := NewClient("http://127.0.0.1:1", &http.Client{Timeout: 200 * time.Millisecond})
	if _, err := c.Publish(testManifest(t)); err == nil {
		t.Error("want error against dead server")
	}
	var ih wire.InfoHash
	if _, err := c.Manifest(ih); err == nil {
		t.Error("want error against dead server")
	}
	if _, err := c.Announce(ih, wire.PeerID{}, "a:1", false); err == nil {
		t.Error("want error against dead server")
	}
	if err := c.Leave(ih, wire.PeerID{}); err == nil {
		t.Error("want error against dead server")
	}
}

func TestManifestHashVerification(t *testing.T) {
	// A tracker returning a manifest that doesn't hash to the requested
	// info hash must be rejected by the client.
	evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"version":1}`))
	}))
	defer evil.Close()
	c := NewClient(evil.URL, evil.Client())
	var ih wire.InfoHash
	if _, err := c.Manifest(ih); err == nil {
		t.Error("want hash-mismatch error")
	}
}
