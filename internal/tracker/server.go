// Package tracker implements the swarm rendezvous service: seeders publish a
// clip manifest, peers fetch it and announce themselves to discover other
// swarm members. The paper's application gets "different information about
// the video and the swarm" from the seeder at startup; factoring that into a
// tracker matches the BitTorrent architecture the protocol imitates.
//
// The protocol is plain HTTP + JSON over the standard library.
package tracker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"p2psplice/internal/container"
	"p2psplice/internal/trace"
	"p2psplice/internal/wire"
)

// DefaultPeerTTL is how long an announce stays fresh.
const DefaultPeerTTL = 2 * time.Minute

// maxManifestBytes bounds a published manifest (hostile-input protection).
const maxManifestBytes = 8 << 20

// PeerInfo is one swarm member as reported by the tracker.
type PeerInfo struct {
	PeerID string `json:"peer_id"`
	Addr   string `json:"addr"`
	Seeder bool   `json:"seeder"`
}

// AnnounceResponse is the tracker's reply to an announce.
type AnnounceResponse struct {
	Peers []PeerInfo `json:"peers"`
	// Interval suggests the next announce, in seconds.
	Interval int `json:"interval"`
}

// Server is the tracker. Create with NewServer and mount via Handler.
type Server struct {
	peerTTL time.Duration
	now     func() time.Time

	// Request counters and the live swarm gauge. No-op handles unless
	// WithMetrics supplies a registry.
	announces      trace.Counter
	publishes      trace.Counter
	manifestReads  trace.Counter
	leaves         trace.Counter
	announceErrors trace.Counter
	swarmGauge     trace.Gauge

	mu     sync.Mutex
	swarms map[wire.InfoHash]*swarmState
}

type swarmState struct {
	manifest []byte // canonical published JSON
	peers    map[string]*peerEntry
}

type peerEntry struct {
	info     PeerInfo
	lastSeen time.Time
}

// Option configures the server.
type Option func(*Server)

// WithPeerTTL overrides the announce freshness window.
func WithPeerTTL(ttl time.Duration) Option {
	return func(s *Server) {
		if ttl > 0 {
			s.peerTTL = ttl
		}
	}
}

// WithMetrics wires the tracker's request counters and swarm gauge into
// reg (shared with the rest of the process and served by its /metrics
// endpoint). Nil leaves the no-op handles in place.
func WithMetrics(reg *trace.Registry) Option {
	return func(s *Server) {
		if reg == nil {
			return
		}
		reg.SetHelp("tracker_announces_total", "Successful announce requests.")
		reg.SetHelp("tracker_announce_errors_total", "Rejected announce requests (bad peer or unknown swarm).")
		reg.SetHelp("tracker_publishes_total", "Accepted manifest publishes.")
		reg.SetHelp("tracker_manifest_fetches_total", "Manifest downloads served.")
		reg.SetHelp("tracker_leaves_total", "Processed leave requests.")
		reg.SetHelp("tracker_swarms", "Swarms currently registered.")
		s.announces = reg.Counter("tracker_announces_total")
		s.announceErrors = reg.Counter("tracker_announce_errors_total")
		s.publishes = reg.Counter("tracker_publishes_total")
		s.manifestReads = reg.Counter("tracker_manifest_fetches_total")
		s.leaves = reg.Counter("tracker_leaves_total")
		s.swarmGauge = reg.Gauge("tracker_swarms")
	}
}

// WithClock overrides the time source (tests).
func WithClock(now func() time.Time) Option {
	return func(s *Server) {
		if now != nil {
			s.now = now
		}
	}
}

// NewServer returns an empty tracker.
func NewServer(opts ...Option) *Server {
	s := &Server{
		peerTTL: DefaultPeerTTL,
		now:     time.Now,
		swarms:  make(map[wire.InfoHash]*swarmState),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Handler returns the HTTP mux for the tracker API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /publish", s.handlePublish)
	mux.HandleFunc("GET /manifest", s.handleManifest)
	mux.HandleFunc("GET /announce", s.handleAnnounce)
	mux.HandleFunc("POST /leave", s.handleLeave)
	mux.HandleFunc("GET /swarms", s.handleSwarms)
	return mux
}

// InfoHashFor returns the swarm identity of a published manifest: the
// SHA-256 of its canonical JSON encoding.
func InfoHashFor(raw []byte) wire.InfoHash {
	return wire.InfoHash(sha256.Sum256(raw))
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(io.LimitReader(r.Body, maxManifestBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(raw) > maxManifestBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "manifest exceeds %d bytes", maxManifestBytes)
		return
	}
	var m container.Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		httpError(w, http.StatusBadRequest, "parse manifest: %v", err)
		return
	}
	if err := m.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "invalid manifest: %v", err)
		return
	}
	ih := InfoHashFor(raw)
	s.mu.Lock()
	if _, ok := s.swarms[ih]; !ok {
		s.swarms[ih] = &swarmState{manifest: raw, peers: make(map[string]*peerEntry)}
	}
	s.swarmGauge.Set(int64(len(s.swarms)))
	s.mu.Unlock()
	s.publishes.Inc()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(map[string]string{"info_hash": ih.String()}); err != nil {
		return // client went away; nothing to do
	}
}

func (s *Server) swarmFor(w http.ResponseWriter, r *http.Request) (*swarmState, wire.InfoHash, bool) {
	ih, err := wire.ParseInfoHash(r.URL.Query().Get("info_hash"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return nil, ih, false
	}
	s.mu.Lock()
	sw, ok := s.swarms[ih]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown swarm %s", ih)
		return nil, ih, false
	}
	return sw, ih, true
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	sw, _, ok := s.swarmFor(w, r)
	if !ok {
		return
	}
	s.manifestReads.Inc()
	w.Header().Set("Content-Type", "application/json")
	//lint:ignore wireerr response-body write failure means the client went away; nothing to recover server-side
	_, _ = w.Write(sw.manifest)
}

func (s *Server) handleAnnounce(w http.ResponseWriter, r *http.Request) {
	sw, _, ok := s.swarmFor(w, r)
	if !ok {
		s.announceErrors.Inc()
		return
	}
	q := r.URL.Query()
	peerID := q.Get("peer_id")
	if len(peerID) != 2*wire.PeerIDLen {
		s.announceErrors.Inc()
		httpError(w, http.StatusBadRequest, "bad peer_id %q", peerID)
		return
	}
	addr := q.Get("addr")
	if _, _, err := net.SplitHostPort(addr); err != nil {
		s.announceErrors.Inc()
		httpError(w, http.StatusBadRequest, "bad addr %q: %v", addr, err)
		return
	}
	seeder := q.Get("seeder") == "1"
	s.announces.Inc()

	now := s.now()
	s.mu.Lock()
	sw.peers[peerID] = &peerEntry{
		info:     PeerInfo{PeerID: peerID, Addr: addr, Seeder: seeder},
		lastSeen: now,
	}
	resp := AnnounceResponse{Interval: int(s.peerTTL.Seconds() / 2)}
	for id, pe := range sw.peers {
		if id == peerID {
			continue
		}
		if now.Sub(pe.lastSeen) > s.peerTTL {
			delete(sw.peers, id)
			continue
		}
		resp.Peers = append(resp.Peers, pe.info)
	}
	s.mu.Unlock()
	sort.Slice(resp.Peers, func(i, j int) bool { return resp.Peers[i].PeerID < resp.Peers[j].PeerID })

	w.Header().Set("Content-Type", "application/json")
	//lint:ignore wireerr response-body write failure means the client went away; nothing to recover server-side
	_ = json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleLeave(w http.ResponseWriter, r *http.Request) {
	sw, _, ok := s.swarmFor(w, r)
	if !ok {
		return
	}
	peerID := r.URL.Query().Get("peer_id")
	s.mu.Lock()
	delete(sw.peers, peerID)
	s.mu.Unlock()
	s.leaves.Inc()
	w.WriteHeader(http.StatusNoContent)
}

// handleSwarms lists known swarms (operational introspection).
func (s *Server) handleSwarms(w http.ResponseWriter, _ *http.Request) {
	type swarmInfo struct {
		InfoHash string `json:"info_hash"`
		Peers    int    `json:"peers"`
	}
	var out []swarmInfo
	s.mu.Lock()
	for ih, sw := range s.swarms {
		out = append(out, swarmInfo{InfoHash: ih.String(), Peers: len(sw.peers)})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].InfoHash < out[j].InfoHash })
	w.Header().Set("Content-Type", "application/json")
	//lint:ignore wireerr response-body write failure means the client went away; nothing to recover server-side
	_ = json.NewEncoder(w).Encode(out)
}
