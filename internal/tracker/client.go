package tracker

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"p2psplice/internal/container"
	"p2psplice/internal/wire"
)

// Error is a classified tracker failure. Transport failures and
// timeouts, 5xx statuses, 408, and 429 are transient (the caller may
// retry); other 4xx statuses are permanent (retrying the same request
// cannot help — fail fast).
type Error struct {
	Op        string // "GET /announce" etc.
	Status    int    // HTTP status; 0 for transport errors
	Transient bool
	Err       error // underlying cause
}

// Error implements error.
func (e *Error) Error() string {
	kind := "permanent"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("tracker: %s: %s error: %v", e.Op, kind, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// IsTransient reports whether err is a tracker error worth retrying.
// A nil or non-tracker error reports false.
func IsTransient(err error) bool {
	var te *Error
	return errors.As(err, &te) && te.Transient
}

// transientStatus classifies HTTP statuses: all 5xx plus 408 (request
// timeout) and 429 (rate limited) are retryable; everything else
// non-2xx is a permanent caller error.
func transientStatus(code int) bool {
	return code/100 == 5 || code == http.StatusRequestTimeout || code == http.StatusTooManyRequests
}

// RetryPolicy bounds the client's transparent retries of transient
// failures. Delays double from BaseDelay up to MaxDelay between
// attempts.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt included).
	// Values below 1 mean 1 (no retries).
	MaxAttempts int
	// BaseDelay is the wait before the first retry. Default 100 ms.
	BaseDelay time.Duration
	// MaxDelay caps the doubling. Default 2 s.
	MaxDelay time.Duration
}

// DefaultRetryPolicy is what NewClient installs: three attempts with
// 100 ms → 200 ms backoff.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second}
}

// Client talks to a tracker over HTTP. Transient failures (timeouts,
// 5xx) are retried per the RetryPolicy; permanent failures (4xx) fail
// fast. Client is not safe for concurrent SetRetry during use.
type Client struct {
	base  string
	http  *http.Client
	retry RetryPolicy
	sleep func(time.Duration) // injectable for tests
}

// NewClient returns a client for the tracker at base (e.g.
// "http://127.0.0.1:7070"). httpClient may be nil for a sane default.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{base: base, http: httpClient, retry: DefaultRetryPolicy(), sleep: time.Sleep}
}

// SetRetry replaces the retry policy (RetryPolicy{} disables retries).
func (c *Client) SetRetry(p RetryPolicy) { c.retry = p }

// do issues method on path, retrying transient failures. The request is
// rebuilt from payload on every attempt — an *http.Request body is
// consumed by the first try, which is why do takes raw bytes rather
// than a request.
func (c *Client) do(method, path, contentType string, payload []byte) ([]byte, error) {
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var last error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			delay := c.retry.BaseDelay << (attempt - 1)
			if c.retry.MaxDelay > 0 && delay > c.retry.MaxDelay {
				delay = c.retry.MaxDelay
			}
			if delay > 0 {
				c.sleep(delay)
			}
		}
		body, err := c.once(method, path, contentType, payload)
		if err == nil {
			return body, nil
		}
		last = err
		if !IsTransient(err) {
			return nil, err
		}
	}
	return nil, last
}

// once performs a single classified request attempt.
func (c *Client) once(method, path, contentType string, payload []byte) ([]byte, error) {
	op := method + " " + strings.SplitN(path, "?", 2)[0]
	var reqBody io.Reader
	if payload != nil {
		reqBody = bytes.NewReader(payload)
	}
	req, err := http.NewRequest(method, c.base+path, reqBody)
	if err != nil {
		return nil, &Error{Op: op, Err: err}
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		// Transport errors — refused connections, timeouts, resets — are
		// exactly the "tracker briefly down" class retries exist for.
		return nil, &Error{Op: op, Transient: true, Err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxManifestBytes+1))
	if err != nil {
		return nil, &Error{Op: op, Status: resp.StatusCode, Transient: true,
			Err: fmt.Errorf("read response: %w", err)}
	}
	if resp.StatusCode/100 != 2 {
		return nil, &Error{Op: op, Status: resp.StatusCode, Transient: transientStatus(resp.StatusCode),
			Err: fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))}
	}
	return body, nil
}

// Publish uploads a manifest and returns the swarm's info hash.
func (c *Client) Publish(m *container.Manifest) (wire.InfoHash, error) {
	var ih wire.InfoHash
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return ih, fmt.Errorf("tracker: encode manifest: %w", err)
	}
	raw := buf.Bytes()
	body, err := c.do(http.MethodPost, "/publish", "application/json", raw)
	if err != nil {
		return ih, err
	}
	var out struct {
		InfoHash string `json:"info_hash"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return ih, fmt.Errorf("tracker: parse publish response: %w", err)
	}
	got, err := wire.ParseInfoHash(out.InfoHash)
	if err != nil {
		return ih, err
	}
	if want := InfoHashFor(raw); got != want {
		return ih, fmt.Errorf("tracker: info hash mismatch: got %s want %s", got, want)
	}
	return got, nil
}

// Manifest fetches and validates the swarm's manifest.
func (c *Client) Manifest(ih wire.InfoHash) (*container.Manifest, error) {
	body, err := c.do(http.MethodGet, "/manifest?info_hash="+ih.String(), "", nil)
	if err != nil {
		return nil, err
	}
	// Verify the content actually matches the requested swarm identity
	// before trusting it.
	if got := InfoHashFor(body); got != ih {
		return nil, fmt.Errorf("tracker: manifest hash %s does not match swarm %s", got, ih)
	}
	return container.ReadManifest(bytes.NewReader(body))
}

// Announce registers this peer and returns the other swarm members.
func (c *Client) Announce(ih wire.InfoHash, peerID wire.PeerID, addr string, seeder bool) ([]PeerInfo, error) {
	q := url.Values{}
	q.Set("info_hash", ih.String())
	q.Set("peer_id", peerID.String())
	q.Set("addr", addr)
	if seeder {
		q.Set("seeder", "1")
	}
	body, err := c.do(http.MethodGet, "/announce?"+q.Encode(), "", nil)
	if err != nil {
		return nil, err
	}
	var resp AnnounceResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, fmt.Errorf("tracker: parse announce response: %w", err)
	}
	return resp.Peers, nil
}

// Leave deregisters this peer.
func (c *Client) Leave(ih wire.InfoHash, peerID wire.PeerID) error {
	q := url.Values{}
	q.Set("info_hash", ih.String())
	q.Set("peer_id", peerID.String())
	_, err := c.do(http.MethodPost, "/leave?"+q.Encode(), "", nil)
	return err
}
