package tracker

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"p2psplice/internal/container"
	"p2psplice/internal/wire"
)

// Client talks to a tracker over HTTP.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the tracker at base (e.g.
// "http://127.0.0.1:7070"). httpClient may be nil for a sane default.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{base: base, http: httpClient}
}

func (c *Client) do(req *http.Request) ([]byte, error) {
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("tracker: %s %s: %w", req.Method, req.URL.Path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxManifestBytes+1))
	if err != nil {
		return nil, fmt.Errorf("tracker: read response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("tracker: %s %s: %s: %s",
			req.Method, req.URL.Path, resp.Status, bytes.TrimSpace(body))
	}
	return body, nil
}

// Publish uploads a manifest and returns the swarm's info hash.
func (c *Client) Publish(m *container.Manifest) (wire.InfoHash, error) {
	var ih wire.InfoHash
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return ih, fmt.Errorf("tracker: encode manifest: %w", err)
	}
	raw := buf.Bytes()
	req, err := http.NewRequest(http.MethodPost, c.base+"/publish", bytes.NewReader(raw))
	if err != nil {
		return ih, fmt.Errorf("tracker: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	body, err := c.do(req)
	if err != nil {
		return ih, err
	}
	var out struct {
		InfoHash string `json:"info_hash"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return ih, fmt.Errorf("tracker: parse publish response: %w", err)
	}
	got, err := wire.ParseInfoHash(out.InfoHash)
	if err != nil {
		return ih, err
	}
	if want := InfoHashFor(raw); got != want {
		return ih, fmt.Errorf("tracker: info hash mismatch: got %s want %s", got, want)
	}
	return got, nil
}

// Manifest fetches and validates the swarm's manifest.
func (c *Client) Manifest(ih wire.InfoHash) (*container.Manifest, error) {
	req, err := http.NewRequest(http.MethodGet, c.base+"/manifest?info_hash="+ih.String(), nil)
	if err != nil {
		return nil, fmt.Errorf("tracker: build request: %w", err)
	}
	body, err := c.do(req)
	if err != nil {
		return nil, err
	}
	// Verify the content actually matches the requested swarm identity
	// before trusting it.
	if got := InfoHashFor(body); got != ih {
		return nil, fmt.Errorf("tracker: manifest hash %s does not match swarm %s", got, ih)
	}
	return container.ReadManifest(bytes.NewReader(body))
}

// Announce registers this peer and returns the other swarm members.
func (c *Client) Announce(ih wire.InfoHash, peerID wire.PeerID, addr string, seeder bool) ([]PeerInfo, error) {
	q := url.Values{}
	q.Set("info_hash", ih.String())
	q.Set("peer_id", peerID.String())
	q.Set("addr", addr)
	if seeder {
		q.Set("seeder", "1")
	}
	req, err := http.NewRequest(http.MethodGet, c.base+"/announce?"+q.Encode(), nil)
	if err != nil {
		return nil, fmt.Errorf("tracker: build request: %w", err)
	}
	body, err := c.do(req)
	if err != nil {
		return nil, err
	}
	var resp AnnounceResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, fmt.Errorf("tracker: parse announce response: %w", err)
	}
	return resp.Peers, nil
}

// Leave deregisters this peer.
func (c *Client) Leave(ih wire.InfoHash, peerID wire.PeerID) error {
	q := url.Values{}
	q.Set("info_hash", ih.String())
	q.Set("peer_id", peerID.String())
	req, err := http.NewRequest(http.MethodPost, c.base+"/leave?"+q.Encode(), nil)
	if err != nil {
		return fmt.Errorf("tracker: build request: %w", err)
	}
	_, err = c.do(req)
	return err
}
