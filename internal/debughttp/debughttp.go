// Package debughttp is the opt-in operational endpoint for the real TCP
// stack. Every daemon (cmd/peer, cmd/tracker, cmd/seeder) and the CDN
// origin can mount one on a -debug-addr listener, serving:
//
//	GET /metrics  Prometheus text exposition of the process registry
//	GET /healthz  liveness probe ("ok" plus uptime)
//	GET /readyz   readiness probe (503 until the daemon reports ready)
//	/debug/pprof/ the stdlib profiler (heap, goroutine, CPU, trace, ...)
//
// Liveness and readiness are distinct on purpose: /healthz answers "is
// the process serving HTTP" and never fails while the listener is up,
// while /readyz asks the daemon's Ready callback — a joining peer that
// has no manifest or no live connection yet is alive but not ready, and
// an orchestrator should route traffic only on the latter.
//
// The package deliberately lives outside the deterministic core: it reads
// the wall clock for uptime and the snapshot logger, and it serves real
// HTTP. The registry it exposes is the same one cmd/peer's -trace exit
// dump renders — both go through trace.Registry.Snap, so a scrape and a
// dump can never disagree (the "one snapshot path" contract).
package debughttp

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"sync"
	"time"

	"p2psplice/internal/trace"
)

// Config parameterizes Start.
type Config struct {
	// Addr is the listen address, e.g. "127.0.0.1:6060". Required.
	Addr string
	// Registry backs /metrics. A nil registry serves an empty (but
	// valid) exposition, so callers can wire the flag unconditionally.
	Registry *trace.Registry
	// SnapshotEvery, when > 0, logs a full WriteText registry snapshot
	// through Logf at that period — the headless-run substitute for a
	// scraper.
	SnapshotEvery time.Duration
	// Logf receives snapshot output and serve errors. Defaults to
	// stderr.
	Logf func(format string, args ...any)
	// Ready backs /readyz: return nil when the daemon can take traffic,
	// or an error naming what is still missing (served in the 503 body).
	// Nil means always ready, so liveness-only daemons need no wiring.
	Ready func() error
}

// Server is a running debug endpoint. Close stops the listener and joins
// every goroutine the server started.
type Server struct {
	ln    net.Listener
	srv   *http.Server
	logf  func(format string, args ...any)
	snap  *SnapshotLogger
	wg    sync.WaitGroup
	once  sync.Once
	start time.Time
}

// SnapshotLogger periodically renders a registry through a log function —
// the headless-run substitute for a scraper. Start one directly when a
// daemon wants snapshots without the HTTP listener.
type SnapshotLogger struct {
	stop  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once
	start time.Time
}

// StartSnapshotLogger logs a WriteText snapshot of reg through logf every
// period until Stop.
func StartSnapshotLogger(reg *trace.Registry, every time.Duration, logf func(format string, args ...any)) *SnapshotLogger {
	sl := &SnapshotLogger{stop: make(chan struct{}), start: time.Now()}
	sl.wg.Add(1)
	go func() {
		defer sl.wg.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-sl.stop:
				return
			case <-tick.C:
				var b strings.Builder
				if err := reg.WriteText(&b); err != nil {
					logf("debughttp: snapshot: %v", err)
					continue
				}
				logf("-- metrics snapshot (uptime %s) --\n%s",
					time.Since(sl.start).Round(time.Second), strings.TrimRight(b.String(), "\n"))
			}
		}
	}()
	return sl
}

// Stop halts the logger and joins its goroutine. Safe to call twice.
func (sl *SnapshotLogger) Stop() {
	sl.once.Do(func() {
		close(sl.stop)
		sl.wg.Wait()
	})
}

// Handler returns the debug mux for reg: /metrics, /healthz, /readyz,
// and /debug/pprof/*. ready may be nil (always ready). Exported so
// servers with their own listener (the CDN origin, tests) can mount the
// same surface Start serves.
func Handler(reg *trace.Registry, start time.Time, ready func() error) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Render to a buffer first so a mid-write registry error cannot
		// emit a half exposition with a 200 status.
		var b strings.Builder
		if err := reg.WriteProm(&b); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		// Client disconnect mid-scrape is not actionable server-side.
		_, _ = fmt.Fprint(w, b.String())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// Client disconnect mid-probe is not actionable server-side.
		_, _ = fmt.Fprintf(w, "ok uptime=%s\n", time.Since(start).Round(time.Second))
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready != nil {
			if err := ready(); err != nil {
				http.Error(w, "not ready: "+err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		// Client disconnect mid-probe is not actionable server-side.
		_, _ = fmt.Fprint(w, "ready\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start listens on cfg.Addr and serves the debug surface until Close.
func Start(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("debughttp: empty listen address")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("debughttp: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		ln:    ln,
		logf:  logf,
		start: time.Now(),
	}
	s.srv = &http.Server{Handler: Handler(cfg.Registry, s.start, cfg.Ready)}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logf("debughttp: serve: %v", err)
		}
	}()
	if cfg.SnapshotEvery > 0 {
		s.snap = StartSnapshotLogger(cfg.Registry, cfg.SnapshotEvery, logf)
	}
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down and waits for the serve and snapshot
// goroutines to exit. Safe to call more than once.
func (s *Server) Close() error {
	var err error
	s.once.Do(func() {
		if s.snap != nil {
			s.snap.Stop()
		}
		err = s.srv.Close()
		s.wg.Wait()
	})
	return err
}
