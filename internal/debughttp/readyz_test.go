package debughttp

import (
	"errors"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
)

// TestReadyzTransitions drives /readyz through the probe lifecycle: 503
// with the blocking reason while the daemon reports not-ready, 200 once
// it does, and /healthz stays 200 throughout — liveness and readiness
// are distinct surfaces.
func TestReadyzTransitions(t *testing.T) {
	var ready atomic.Bool
	s, err := Start(Config{
		Addr: "127.0.0.1:0",
		Ready: func() error {
			if !ready.Load() {
				return errors.New("still joining the swarm")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body := get(t, base+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while not ready = %d, want 503", code)
	}
	if !strings.Contains(body, "still joining the swarm") {
		t.Errorf("/readyz 503 body %q does not name the blocker", body)
	}
	if code, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz while not ready = %d, want 200 (liveness != readiness)", code)
	}

	ready.Store(true)
	code, body = get(t, base+"/readyz")
	if code != http.StatusOK || !strings.HasPrefix(body, "ready") {
		t.Errorf("/readyz once ready = %d %q, want 200 ready", code, body)
	}
}

// TestReadyzNilAlwaysReady: daemons that wire no Ready callback are
// ready as soon as they serve — the pre-/readyz behavior.
func TestReadyzNilAlwaysReady(t *testing.T) {
	s, err := Start(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	code, body := get(t, "http://"+s.Addr()+"/readyz")
	if code != http.StatusOK || !strings.HasPrefix(body, "ready") {
		t.Errorf("/readyz with nil Ready = %d %q, want 200 ready", code, body)
	}
}
