package debughttp

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"p2psplice/internal/trace"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServeMetricsHealthzPprof(t *testing.T) {
	reg := trace.NewRegistry()
	reg.Counter("requests_total").Add(7)
	reg.SecondsHistogram("latency_seconds").Observe(1_500_000)

	s, err := Start(Config{Addr: "127.0.0.1:0", Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d, want 200", code)
	}
	pm, err := trace.ParsePromText(body)
	if err != nil {
		t.Fatalf("/metrics is not valid exposition: %v\n%s", err, body)
	}
	if v, ok := pm.Value("requests_total"); !ok || v != 7 {
		t.Errorf("requests_total = %v, %v; want 7, true", v, ok)
	}
	if v, ok := pm.Value("latency_seconds_sum"); !ok || v != 1.5 {
		t.Errorf("latency_seconds_sum = %v, %v; want 1.5, true", v, ok)
	}

	// The scrape must agree with the text dump: one snapshot path.
	var txt strings.Builder
	if err := reg.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "requests_total") {
		t.Errorf("WriteText missing requests_total:\n%s", txt.String())
	}

	code, body = get(t, base+"/healthz")
	if code != http.StatusOK || !strings.HasPrefix(body, "ok") {
		t.Errorf("/healthz = %d %q, want 200 ok...", code, body)
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d, want 200 with profile index", code)
	}
}

func TestNilRegistryServesEmptyExposition(t *testing.T) {
	s, err := Start(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	code, body := get(t, "http://"+s.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d, want 200", code)
	}
	if _, err := trace.ParsePromText(body); err != nil {
		t.Fatalf("empty exposition must still parse: %v", err)
	}
}

func TestSnapshotLogger(t *testing.T) {
	reg := trace.NewRegistry()
	reg.Counter("ticks").Inc()

	var mu sync.Mutex
	var lines []string
	s, err := Start(Config{
		Addr:          "127.0.0.1:0",
		Registry:      reg,
		SnapshotEvery: 10 * time.Millisecond,
		Logf: func(format string, args ...any) {
			mu.Lock()
			defer mu.Unlock()
			lines = append(lines, strings.TrimSpace(format))
			_ = args
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(lines)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no snapshot logged within 2s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Close joins the logger goroutine; no further lines may arrive.
	mu.Lock()
	n := len(lines)
	mu.Unlock()
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != n {
		t.Errorf("snapshot logger ran after Close: %d -> %d lines", n, len(lines))
	}
}

func TestCloseIdempotent(t *testing.T) {
	s, err := Start(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStartRequiresAddr(t *testing.T) {
	if _, err := Start(Config{}); err == nil {
		t.Fatal("Start with empty addr must fail")
	}
}
