package swarmbench

import "testing"

// TestScaleDeterminism10k asserts a 10k-peer swarm run is byte-identical
// — same digest, events, completions, virtual time — across repeated runs
// and across worker counts. Workers only change which goroutine simulates
// which shard; the digest combines shard digests in shard order, so any
// scheduling-order leak into the result shows up here.
func TestScaleDeterminism10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-peer determinism run skipped in -short mode")
	}
	base := Config{Peers: 10_000, Shards: 8, Seed: 42}

	var ref Result
	for i, workers := range []int{4, 1, 4, 8} {
		cfg := base
		cfg.Workers = workers
		got, err := Run(cfg)
		if err != nil {
			t.Fatalf("run %d (workers=%d): %v", i, workers, err)
		}
		if got.Truncated {
			t.Fatalf("run %d (workers=%d): truncated without a MaxEvents budget", i, workers)
		}
		if i == 0 {
			ref = got
			if ref.Digest == 0 || ref.Completed == 0 || ref.Events == 0 {
				t.Fatalf("degenerate reference run: %+v", ref)
			}
			continue
		}
		if got != ref {
			t.Errorf("run %d (workers=%d) diverged:\n got %+v\nwant %+v", i, workers, got, ref)
		}
	}
	if ref.Stats.FullReallocs != 0 {
		t.Errorf("incremental run took %d full reallocation passes, want 0", ref.Stats.FullReallocs)
	}
	t.Logf("10k swarm: events=%d completed=%d reallocs=%d components=%d vtime=%v digest=%x",
		ref.Events, ref.Completed, ref.Stats.Reallocs, ref.Stats.Components, ref.VirtualTime, ref.Digest)
}

// TestDigestSensitivity makes sure the digest actually depends on the
// seed — a constant digest would make the determinism test vacuous.
func TestDigestSensitivity(t *testing.T) {
	a, err := Run(Config{Peers: 200, Shards: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Peers: 200, Shards: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest == b.Digest {
		t.Fatalf("different seeds produced identical digest %x", a.Digest)
	}
}

// TestFullOracleSameWorkload checks the forced-full baseline simulates
// the identical workload: same digest as the incremental run, different
// only in allocator statistics. This is what makes the benchmark's
// full-vs-incremental ratio an apples-to-apples comparison.
func TestFullOracleSameWorkload(t *testing.T) {
	inc, err := Run(Config{Peers: 400, Shards: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(Config{Peers: 400, Shards: 2, Seed: 7, FullRealloc: true})
	if err != nil {
		t.Fatal(err)
	}
	if inc.Digest != full.Digest || inc.Events != full.Events || inc.VirtualTime != full.VirtualTime {
		t.Fatalf("full oracle simulated a different trajectory:\n inc  %+v\n full %+v", inc, full)
	}
	if full.Stats.FullReallocs != full.Stats.Reallocs {
		t.Errorf("forced-full run: %d of %d passes were full", full.Stats.FullReallocs, full.Stats.Reallocs)
	}
	if inc.Stats.FullReallocs != 0 {
		t.Errorf("incremental run took %d full passes, want 0", inc.Stats.FullReallocs)
	}
	if inc.Stats.FlowsFilled >= full.Stats.FlowsFilled {
		t.Errorf("incremental filled %d flows, full filled %d; incremental should fill strictly fewer",
			inc.Stats.FlowsFilled, full.Stats.FlowsFilled)
	}
}
