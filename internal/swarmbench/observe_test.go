package swarmbench

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"p2psplice/internal/trace"
)

// TestTelemetryInert proves the time-series recorder and the sampled
// ring are pure observers at the swarm-bench layer: the same run with
// and without them attached walks the identical trajectory (digest,
// events, completions, virtual time, allocator stats).
func TestTelemetryInert(t *testing.T) {
	base := Config{Peers: 400, Shards: 2, Seed: 7}
	bare, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	traced := base
	traced.TimeSeriesWindow = time.Second
	traced.TraceCapacity = 256
	traced.TraceSampleRate = 0.5
	obs, err := Run(traced)
	if err != nil {
		t.Fatal(err)
	}

	if obs.Digest != bare.Digest || obs.Events != bare.Events ||
		obs.Completed != bare.Completed || obs.VirtualTime != bare.VirtualTime ||
		obs.Stats != bare.Stats {
		t.Fatalf("telemetry perturbed the run:\nbare:   %+v\ntraced: %+v", bare, obs)
	}
	if obs.Series == nil {
		t.Fatal("traced run returned no telemetry snapshot")
	}
	var total int64
	for _, s := range obs.Series.Series {
		total += s.Total()
	}
	if total == 0 {
		t.Fatal("telemetry attached but nothing observed")
	}
	if got := obs.Trace.Sampled + obs.Trace.Rejected; got != int64(obs.Completed) {
		t.Fatalf("ring accounting leaks: sampled+rejected = %d, completions = %d", got, obs.Completed)
	}
	if obs.Trace.Rejected == 0 || obs.Trace.Sampled == 0 {
		t.Fatalf("0.5 sampling produced a degenerate split: %+v", obs.Trace)
	}
	if bare.Series != nil || bare.Trace != (trace.RingCounts{}) {
		t.Fatalf("untraced run carries telemetry: %+v", bare)
	}
}

// TestTelemetryWorkerIndependent proves the merged snapshot, ring
// counters, and CSV render are bit-identical across worker counts:
// per-shard snapshots merge in shard order and sampler verdicts hash
// the shard seed, so goroutine scheduling cannot leak in.
func TestTelemetryWorkerIndependent(t *testing.T) {
	base := Config{
		Peers: 600, Shards: 4, Seed: 11,
		TimeSeriesWindow: time.Second,
		TraceCapacity:    128,
		TraceSampleRate:  0.25,
	}
	var snaps [][]byte
	var ref Result
	for i, workers := range []int{1, 2, 4} {
		cfg := base
		cfg.Workers = workers
		got, err := Run(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Series == nil {
			t.Fatalf("workers=%d: no snapshot", workers)
		}
		var csv bytes.Buffer
		if err := got.Series.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, csv.Bytes())
		if i == 0 {
			ref = got
			continue
		}
		if got.Digest != ref.Digest {
			t.Errorf("workers=%d: digest %x, want %x", workers, got.Digest, ref.Digest)
		}
		if !reflect.DeepEqual(got.Series, ref.Series) {
			t.Errorf("workers=%d: telemetry snapshot diverges", workers)
		}
		if got.Trace != ref.Trace || got.TraceRetained != ref.TraceRetained {
			t.Errorf("workers=%d: ring accounting diverges: %+v vs %+v", workers, got.Trace, ref.Trace)
		}
		if !bytes.Equal(snaps[i], snaps[0]) {
			t.Errorf("workers=%d: telemetry CSV differs byte-wise", workers)
		}
	}
}
