// Package swarmbench drives swarm-scale netem workloads for the
// incremental-reallocation benchmarks and the scale determinism tests.
//
// The workload models tracker locality: peers are grouped into clusters
// (the tracker's locality-biased peer lists) and exchange segments only
// within their cluster, seeded by one origin peer per cluster. That keeps
// the flow graph's connected components cluster-sized, which is the
// regime the incremental reallocator is built for — each flow event
// refills one component instead of the whole star. A globally connected
// flow graph degrades the incremental path to component == swarm, i.e.
// full-recompute cost; see DESIGN.md §12 for the honest framing.
//
// A run is split into independent shards, each with its own sim.Engine
// and netem.Network. Shards never share links, so they can be simulated
// by a worker pool; per-shard digests are combined in shard order, making
// the result byte-identical regardless of worker count or interleaving.
package swarmbench

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"p2psplice/internal/netem"
	"p2psplice/internal/sim"
	"p2psplice/internal/trace"
)

// Swarm-scale telemetry series. Names are distinct from the simpeer
// sim_* set because the quantities differ: these are cluster-exchange
// aggregates, not per-peer playback state.
const (
	// TSCompletions counts completed segment transfers per window.
	TSCompletions = "swarm_completions"
	// TSInflight samples a cluster's in-flight transfer count after each
	// completion refill.
	TSInflight = "swarm_inflight_flows"
	// TSPending samples a cluster's queued-fetch backlog after each
	// completion refill.
	TSPending = "swarm_pending_fetches"
)

// swarmSeries bundles the per-shard telemetry handles. All handles are
// nil-safe zero values when telemetry is disabled, so the instrumented
// path executes the same statements either way (the inertness contract).
type swarmSeries struct {
	completions trace.TSCounter
	inflight    trace.TSGauge
	pending     trace.TSGauge
}

func newSwarmSeries(ts *trace.TimeSeries) swarmSeries {
	if ts == nil {
		return swarmSeries{}
	}
	return swarmSeries{
		completions: ts.Counter(TSCompletions),
		inflight:    ts.Gauge(TSInflight),
		pending:     ts.Gauge(TSPending),
	}
}

// Config parameterizes a swarm benchmark run.
type Config struct {
	// Peers is the total peer count across all shards.
	Peers int
	// Shards is the number of independent swarm shards. Each shard gets
	// its own engine and network; 1 means one swarm-wide network (the
	// configuration the full-vs-incremental ratio is measured on).
	Shards int
	// ClusterSize is the tracker-locality cluster size. Default 40.
	ClusterSize int
	// SegmentsPerPeer is how many segments each leecher fetches. Default 4.
	SegmentsPerPeer int
	// SegmentBytes is the size of one fetched segment. Default 256 KiB.
	SegmentBytes int64
	// PoolSize caps concurrent fetches per cluster. Default 8.
	PoolSize int
	// Seed drives every random choice (bandwidth heterogeneity, source
	// selection, fault placement). Same seed, same digest.
	Seed int64
	// FullRealloc forces the reallocateFull baseline on every network.
	FullRealloc bool
	// MaxEvents bounds the per-shard event count; 0 runs to completion.
	// A truncated run sets Result.Truncated instead of failing, so the
	// full-recompute baseline can be sampled without waiting out a full
	// 10k-peer drain.
	MaxEvents int
	// Workers is the number of goroutines simulating shards. Default
	// GOMAXPROCS. Has no effect on the digest.
	Workers int

	// TimeSeriesWindow, when positive, attaches a windowed virtual-time
	// telemetry recorder to every shard (completions, in-flight fetches,
	// pending queue depth per window). Shard snapshots merge in shard
	// order, so Result.Series is identical for every Workers value, and
	// the recorder is a pure observer: the digest is bit-identical with
	// and without it.
	TimeSeriesWindow time.Duration
	// TimeSeriesMaxWindows bounds the windows per series (default 1024).
	TimeSeriesMaxWindows int

	// TraceCapacity, when positive, attaches a bounded sampled event
	// ring to every shard: completion events pass a pure hash sampler
	// (seeded by the shard seed, never the workload RNG) and land in a
	// fixed-capacity ring. Result.Trace accounts for every event —
	// sampled, rejected, or evicted — so the bound is honest.
	TraceCapacity int
	// TraceSampleRate is the sampler keep probability in [0,1]. Only
	// meaningful with TraceCapacity > 0.
	TraceSampleRate float64
}

func (c *Config) applyDefaults() {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.ClusterSize <= 0 {
		c.ClusterSize = 40
	}
	if c.SegmentsPerPeer <= 0 {
		c.SegmentsPerPeer = 4
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 256 << 10
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 8
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// Result aggregates a run. Every field is deterministic in Config.
type Result struct {
	Peers       int
	Shards      int
	Events      uint64        // engine events fired, all shards
	Completed   uint64        // segment transfers completed
	VirtualTime time.Duration // max shard virtual clock
	Stats       netem.AllocStats
	Truncated   bool   // at least one shard hit MaxEvents
	Digest      uint64 // FNV-1a over completion records, shard order

	// Series is the shard-order merge of per-shard telemetry snapshots;
	// nil unless Config.TimeSeriesWindow was set. Behind a pointer so
	// untraced Results stay comparable with ==.
	Series *trace.TSSnapshot
	// Trace sums per-shard ring admission counters; zero unless
	// Config.TraceCapacity was set.
	Trace trace.RingCounts
	// TraceRetained is the event count still held across shard rings.
	TraceRetained int
}

type shardResult struct {
	events      uint64
	completed   uint64
	virtualTime time.Duration
	stats       netem.AllocStats
	truncated   bool
	digest      uint64
	series      trace.TSSnapshot
	hasSeries   bool
	ring        trace.RingCounts
	retained    int
}

// Run simulates the configured swarm and returns its aggregate result.
func Run(cfg Config) (Result, error) {
	cfg.applyDefaults()
	shards := make([]shardResult, cfg.Shards)
	errs := make([]error, cfg.Shards)
	idx := make(chan int, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		idx <- i
	}
	close(idx)

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				shards[i], errs[i] = runShard(cfg, i)
			}
		}()
	}
	wg.Wait()

	res := Result{Peers: cfg.Peers, Shards: cfg.Shards}
	h := fnv.New64a()
	var buf [8]byte
	var merged trace.TSSnapshot
	var hasSeries bool
	for i, s := range shards {
		if errs[i] != nil {
			return Result{}, errs[i]
		}
		res.Events += s.events
		res.Completed += s.completed
		if s.virtualTime > res.VirtualTime {
			res.VirtualTime = s.virtualTime
		}
		res.Stats.Reallocs += s.stats.Reallocs
		res.Stats.FullReallocs += s.stats.FullReallocs
		res.Stats.Components += s.stats.Components
		res.Stats.FlowsFilled += s.stats.FlowsFilled
		res.Truncated = res.Truncated || s.truncated
		putUint64(&buf, s.digest)
		h.Write(buf[:])
		if s.hasSeries {
			// Shard-order merge: windows aggregate commutatively, so the
			// combined snapshot is Workers-independent, same as the digest.
			m, err := trace.MergeTS(merged, s.series)
			if err != nil {
				return Result{}, fmt.Errorf("swarmbench: shard %d telemetry merge: %w", i, err)
			}
			merged = m
			hasSeries = true
		}
		res.Trace.Sampled += s.ring.Sampled
		res.Trace.Rejected += s.ring.Rejected
		res.Trace.Dropped += s.ring.Dropped
		res.TraceRetained += s.retained
	}
	res.Digest = h.Sum64()
	if hasSeries {
		res.Series = &merged
	}
	return res, nil
}

func putUint64(buf *[8]byte, v uint64) {
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
}

// cluster tracks one locality cluster's segment exchange.
type cluster struct {
	members []netem.NodeID
	// owners[seg] lists members that hold segment seg, in acquisition
	// order; the origin peer (members[0]) holds everything from t=0.
	owners  [][]netem.NodeID
	pending []fetch // queued (peer, segment) fetches
	active  int
}

type fetch struct {
	peer netem.NodeID
	seg  int
}

// runShard simulates one independent shard to completion (or MaxEvents).
func runShard(cfg Config, shard int) (shardResult, error) {
	// Deterministic per-shard seeds: shard index offsets the run seed.
	seed := cfg.Seed + int64(shard)*0x9e3779b9
	eng := sim.New(seed)
	rng := rand.New(rand.NewSource(seed ^ 0x5bd1e995))
	net := netem.New(eng, netem.Config{})
	if cfg.FullRealloc {
		net.ForceFullReallocation(true)
	}

	var sr shardResult
	eng.SetFireObserver(func(time.Duration) { sr.events++ })

	// Observability attachments. Both are pure observers: neither draws
	// from rng nor feeds the digest, and the sampler hashes the shard
	// seed — not an RNG stream — so verdicts are worker-independent.
	var ts *trace.TimeSeries
	if cfg.TimeSeriesWindow > 0 {
		ts = trace.NewTimeSeries(trace.TimeSeriesConfig{
			Window:     cfg.TimeSeriesWindow,
			MaxWindows: cfg.TimeSeriesMaxWindows,
		})
	}
	ss := newSwarmSeries(ts)
	var ring *trace.Ring
	if cfg.TraceCapacity > 0 {
		ring = trace.NewRing(cfg.TraceCapacity, trace.NewHashSampler(seed, cfg.TraceSampleRate, nil))
	}

	peers := cfg.Peers / cfg.Shards
	if shard < cfg.Peers%cfg.Shards {
		peers++
	}
	if peers < 2 {
		peers = 2
	}

	// ADSL-flavoured heterogeneous access links: a few bandwidth classes,
	// chosen per peer from the shard RNG.
	ids := make([]netem.NodeID, peers)
	for i := range ids {
		up := int64(128+64*rng.Intn(6)) << 10
		down := int64(1+rng.Intn(4)) << 20
		id, err := net.AddNode(netem.NodeConfig{
			UplinkBytesPerSec:   up,
			DownlinkBytesPerSec: down,
			AccessDelay:         time.Duration(5+rng.Intn(40)) * time.Millisecond,
		})
		if err != nil {
			return sr, err
		}
		ids[i] = id
	}

	// A sprinkle of scheduled link flaps (~0.5% of peers) keeps the
	// freeze/unfreeze paths in the measured workload.
	for i := range ids {
		if rng.Intn(200) != 0 {
			continue
		}
		at := time.Duration(1+rng.Intn(30)) * time.Second
		_ = net.ScheduleLink(ids[i], []netem.LinkStep{
			{At: at, Down: true},
			{At: at + 2*time.Second, Down: false},
		})
	}

	// Partition into clusters and queue every leecher's fetches in a
	// shard-deterministic shuffled order.
	var clusters []*cluster
	for lo := 0; lo < peers; lo += cfg.ClusterSize {
		hi := lo + cfg.ClusterSize
		if hi > peers {
			hi = peers
		}
		if hi-lo < 2 {
			break // a 1-peer tail cluster has nothing to exchange
		}
		c := &cluster{members: ids[lo:hi], owners: make([][]netem.NodeID, cfg.SegmentsPerPeer)}
		for seg := range c.owners {
			c.owners[seg] = append(c.owners[seg], c.members[0])
		}
		for _, m := range c.members[1:] {
			for seg := 0; seg < cfg.SegmentsPerPeer; seg++ {
				c.pending = append(c.pending, fetch{peer: m, seg: seg})
			}
		}
		rng.Shuffle(len(c.pending), func(i, j int) {
			c.pending[i], c.pending[j] = c.pending[j], c.pending[i]
		})
		clusters = append(clusters, c)
	}

	h := fnv.New64a()
	var buf [8]byte
	record := func(v uint64) {
		putUint64(&buf, v)
		h.Write(buf[:])
	}

	var shardErr error
	var pump func(c *cluster)
	pump = func(c *cluster) {
		for c.active < cfg.PoolSize && len(c.pending) > 0 {
			fe := c.pending[0]
			c.pending = c.pending[1:]
			src := c.owners[fe.seg][rng.Intn(len(c.owners[fe.seg]))]
			_, err := net.StartTransfer(src, fe.peer, cfg.SegmentBytes, netem.TransferOptions{}, func(f *netem.Flow) {
				c.active--
				sr.completed++
				c.owners[fe.seg] = append(c.owners[fe.seg], fe.peer)
				record(uint64(f.ID()))
				record(uint64(eng.Now()))
				record(uint64(fe.peer)<<32 | uint64(fe.seg))
				now := eng.Now()
				ss.completions.Inc(now)
				if ring != nil {
					ring.Emit(trace.Event{
						At:   now,
						Peer: int(fe.peer),
						Seg:  fe.seg,
						Cat:  trace.CatFlow,
						Name: trace.EvFlowComplete,
					})
				}
				pump(c)
				// Post-refill pool depth and backlog, mirroring simpeer's
				// post-fill inflight sample.
				ss.inflight.Observe(now, int64(c.active))
				ss.pending.Observe(now, int64(len(c.pending)))
			})
			if err != nil {
				// A fetch from an owner it just picked cannot self-transfer
				// or overflow; any error here is a harness bug worth failing.
				shardErr = err
				return
			}
			c.active++
		}
	}

	for _, c := range clusters {
		pump(c)
	}

	if err := eng.Run(cfg.MaxEvents); err != nil {
		// Budget exhaustion is the sampling mode, not a failure.
		sr.truncated = true
	}
	if shardErr != nil {
		return sr, shardErr
	}

	sr.virtualTime = eng.Now()
	sr.stats = net.AllocStats()
	record(uint64(sr.virtualTime))
	sr.digest = h.Sum64()
	if ts != nil {
		sr.series = ts.Snap()
		sr.hasSeries = true
	}
	if ring != nil {
		sr.ring = ring.Counts()
		sr.retained = ring.Len()
	}
	return sr, nil
}
