package core

import (
	"sync"
	"testing"
	"time"
)

func TestNewBandwidthEstimatorValidation(t *testing.T) {
	for _, alpha := range []float64{0, -0.5, 1.5} {
		if _, err := NewBandwidthEstimator(alpha); err == nil {
			t.Errorf("alpha=%v: want error", alpha)
		}
	}
	if _, err := NewBandwidthEstimator(1); err != nil {
		t.Errorf("alpha=1: unexpected error %v", err)
	}
}

func TestEstimatorFirstSample(t *testing.T) {
	e, err := NewBandwidthEstimator(DefaultEWMAAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if e.Estimate() != 0 || e.Samples() != 0 {
		t.Error("fresh estimator should report zero")
	}
	e.Observe(1024, time.Second)
	if got := e.Estimate(); got != 1024 {
		t.Errorf("first sample estimate = %d, want 1024", got)
	}
	if e.Samples() != 1 {
		t.Errorf("Samples = %d, want 1", e.Samples())
	}
}

func TestEstimatorSmoothing(t *testing.T) {
	e, err := NewBandwidthEstimator(0.5)
	if err != nil {
		t.Fatal(err)
	}
	e.Observe(1000, time.Second) // est = 1000
	e.Observe(2000, time.Second) // est = 0.5*2000 + 0.5*1000 = 1500
	if got := e.Estimate(); got != 1500 {
		t.Errorf("estimate = %d, want 1500", got)
	}
}

func TestEstimatorConvergence(t *testing.T) {
	e, err := NewBandwidthEstimator(DefaultEWMAAlpha)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		e.Observe(64*1024, time.Second)
	}
	got := e.Estimate()
	if got < 63*1024 || got > 65*1024 {
		t.Errorf("estimate = %d, want ~%d", got, 64*1024)
	}
}

func TestEstimatorIgnoresBadSamples(t *testing.T) {
	e, err := NewBandwidthEstimator(DefaultEWMAAlpha)
	if err != nil {
		t.Fatal(err)
	}
	e.Observe(0, time.Second)
	e.Observe(-5, time.Second)
	e.Observe(100, 0)
	e.Observe(100, -time.Second)
	if e.Samples() != 0 {
		t.Errorf("bad samples were recorded: %d", e.Samples())
	}
}

func TestEstimatorConcurrent(t *testing.T) {
	e, err := NewBandwidthEstimator(DefaultEWMAAlpha)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				e.Observe(1024, time.Second)
				_ = e.Estimate()
			}
		}()
	}
	wg.Wait()
	if e.Samples() != 800 {
		t.Errorf("Samples = %d, want 800", e.Samples())
	}
	if got := e.Estimate(); got != 1024 {
		t.Errorf("estimate = %d, want 1024", got)
	}
}
