// Package core implements the paper's download-policy contribution: the
// adaptive pooling formula (Equation 1) that bounds how many segments a peer
// downloads simultaneously, the fixed-pool baseline it is evaluated against,
// and the Section IV segment-size rule for hybrid CDN/P2P systems.
package core

import (
	"fmt"
	"time"
)

// Policy decides how many segments a peer should download simultaneously.
//
// Implementations must be safe for concurrent use; both provided policies
// are stateless.
type Policy interface {
	// Name returns a short label for reports ("adaptive", "pool-4", ...).
	Name() string
	// PoolSize returns the target number of simultaneous segment downloads
	// given the estimated peer bandwidth in bytes/second, the duration of
	// video already buffered ahead of the playhead, and the (typical)
	// segment size in bytes. The result is always at least 1.
	PoolSize(bandwidth int64, buffered time.Duration, segmentBytes int64) int
}

// AdaptivePool is the paper's Equation 1:
//
//	k = max( floor(B·T / W), 1 )
//
// with B the available bandwidth (bytes/s), T the buffered playback horizon
// (seconds), and W the segment size (bytes). The intuition: to avoid a stall,
// every in-flight segment must finish within T seconds, and T seconds of
// bandwidth B can carry at most B·T/W segments. At startup, after a stall, or
// when the buffer has drained (T = 0), the peer downloads exactly one segment.
type AdaptivePool struct {
	// MaxPool optionally caps the pool (0 means uncapped). The paper's
	// Section IV notes that very large pools overload uploading peers; the
	// cap models that operational limit.
	MaxPool int
}

var _ Policy = AdaptivePool{}

// Name implements Policy.
func (p AdaptivePool) Name() string { return "adaptive" }

// PoolSize implements Policy using Equation 1.
func (p AdaptivePool) PoolSize(bandwidth int64, buffered time.Duration, segmentBytes int64) int {
	if bandwidth <= 0 || buffered <= 0 || segmentBytes <= 0 {
		return 1
	}
	k := int(float64(bandwidth) * buffered.Seconds() / float64(segmentBytes))
	if k < 1 {
		k = 1
	}
	if p.MaxPool > 0 && k > p.MaxPool {
		k = p.MaxPool
	}
	return k
}

// FixedPool is the baseline in the paper's Figure 5: the peer always keeps a
// constant number of segment downloads in flight.
type FixedPool struct {
	// K is the pool size. Values below 1 behave as 1.
	K int
}

var _ Policy = FixedPool{}

// Name implements Policy.
func (p FixedPool) Name() string { return fmt.Sprintf("pool-%d", p.k()) }

func (p FixedPool) k() int {
	if p.K < 1 {
		return 1
	}
	return p.K
}

// PoolSize implements Policy; it ignores all inputs.
func (p FixedPool) PoolSize(int64, time.Duration, int64) int { return p.k() }

// MaxSegmentBytes is the paper's Section IV rule for hybrid CDN/P2P systems:
// when a client downloads one segment at a time from a CDN, the largest
// segment that cannot cause a stall is W = B·T. It returns 0 when either
// input is non-positive (no safe prefetch is possible: the client must be
// conservative and the caller should fall back to its minimum segment size).
func MaxSegmentBytes(bandwidth int64, buffered time.Duration) int64 {
	if bandwidth <= 0 || buffered <= 0 {
		return 0
	}
	return int64(float64(bandwidth) * buffered.Seconds())
}
