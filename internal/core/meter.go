package core

import (
	"fmt"
	"sync"
	"time"
)

// AggregateMeter measures the *aggregate* download bandwidth across all
// concurrent transfers, which is the B that Equation 1 needs.
//
// Observing each segment in isolation — Observe(size, ownElapsed) — is
// systematically wrong under pooling: when k segments share one access
// link, each one's private rate is ~B/k, so the EWMA converges to B/k,
// Equation 1 computes a pool of max(floor((B/k)·T/W), 1), and the pool
// collapses toward 1 exactly when pooling matters. The meter instead
// accumulates delivered bytes across *all* in-flight transfers and, at
// each completion, observes delivered/elapsed over the busy interval
// since the last observation — the aggregate link rate, independent of
// how many transfers shared it.
//
// The meter is clock-agnostic: callers pass the current time (virtual or
// wall) to Start/Finish, so it is unit-testable and usable from the
// deterministic emulation. Methods are safe for concurrent use.
type AggregateMeter struct {
	mu        sync.Mutex // guards est, inflight, busyStart and delivered
	est       *BandwidthEstimator
	inflight  int
	busyStart time.Duration // start of the current measurement window
	delivered int64         // payload bytes since busyStart
}

// minMeterWindow is the shortest interval worth observing: windows below
// it (e.g. two transfers completing in the same burst) fold into the
// next observation instead of producing a noisy near-zero-division rate.
const minMeterWindow = 20 * time.Millisecond

// NewAggregateMeter returns a meter smoothing with alpha in (0, 1].
func NewAggregateMeter(alpha float64) (*AggregateMeter, error) {
	est, err := NewBandwidthEstimator(alpha)
	if err != nil {
		return nil, err
	}
	return &AggregateMeter{est: est}, nil
}

// Start records that a transfer began at now. The first transfer of a
// busy period opens a fresh measurement window; idle time between busy
// periods is never counted as zero-rate bandwidth.
func (m *AggregateMeter) Start(now time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.inflight == 0 {
		m.busyStart = now
		m.delivered = 0
	}
	m.inflight++
}

// Deliver accumulates n payload bytes received on any transfer.
func (m *AggregateMeter) Deliver(n int64) {
	if n <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.delivered += n
}

// Finish records that a transfer ended (completed or abandoned) at now
// and folds the window's aggregate rate into the estimate.
func (m *AggregateMeter) Finish(now time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.inflight > 0 {
		m.inflight--
	}
	elapsed := now - m.busyStart
	if m.delivered > 0 && elapsed >= minMeterWindow {
		m.est.Observe(m.delivered, elapsed)
		m.busyStart = now
		m.delivered = 0
	}
	if m.inflight == 0 {
		// Idle: drop any sub-window residue; Start reopens the window.
		m.delivered = 0
	}
}

// Estimate returns the aggregate bandwidth estimate in bytes/second, or
// 0 before the first observation.
func (m *AggregateMeter) Estimate() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.est.Estimate()
}

// Samples returns the number of rate observations folded in.
func (m *AggregateMeter) Samples() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.est.Samples()
}

// InFlight returns the number of transfers currently counted as active.
func (m *AggregateMeter) InFlight() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inflight
}

// String aids debugging.
func (m *AggregateMeter) String() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return fmt.Sprintf("AggregateMeter{inflight=%d delivered=%d est=%d}",
		m.inflight, m.delivered, m.est.Estimate())
}
