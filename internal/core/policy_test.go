package core

import (
	"testing"
	"testing/quick"
	"time"
)

func TestAdaptivePoolFormula(t *testing.T) {
	p := AdaptivePool{}
	tests := []struct {
		name      string
		bandwidth int64
		buffered  time.Duration
		segBytes  int64
		want      int
	}{
		// Paper examples: B*T/W segments fit in T seconds.
		{"exact multiple", 512 * 1024, 4 * time.Second, 512 * 1024, 4},
		{"floor", 512 * 1024, 4 * time.Second, 700 * 1024, 2},
		{"below one clamps to one", 100, time.Second, 1 << 20, 1},
		{"startup T=0", 512 * 1024, 0, 512 * 1024, 1},
		{"stalled T<0", 512 * 1024, -time.Second, 512 * 1024, 1},
		{"zero bandwidth", 0, 4 * time.Second, 512 * 1024, 1},
		{"zero segment", 512 * 1024, 4 * time.Second, 0, 1},
		{"large buffer", 128 * 1024, 30 * time.Second, 512 * 1024, 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := p.PoolSize(tt.bandwidth, tt.buffered, tt.segBytes); got != tt.want {
				t.Errorf("PoolSize(%d, %v, %d) = %d, want %d",
					tt.bandwidth, tt.buffered, tt.segBytes, got, tt.want)
			}
		})
	}
}

func TestAdaptivePoolCap(t *testing.T) {
	p := AdaptivePool{MaxPool: 3}
	if got := p.PoolSize(10<<20, 10*time.Second, 1024); got != 3 {
		t.Errorf("capped PoolSize = %d, want 3", got)
	}
	if got := p.PoolSize(1024, time.Second, 1024); got != 1 {
		t.Errorf("PoolSize = %d, want 1", got)
	}
}

func TestFixedPool(t *testing.T) {
	if got := (FixedPool{K: 4}).PoolSize(0, 0, 0); got != 4 {
		t.Errorf("FixedPool(4) = %d, want 4", got)
	}
	if got := (FixedPool{K: 0}).PoolSize(1<<20, time.Minute, 1); got != 1 {
		t.Errorf("FixedPool(0) = %d, want 1", got)
	}
	if name := (FixedPool{K: 8}).Name(); name != "pool-8" {
		t.Errorf("Name() = %q, want pool-8", name)
	}
	if name := (AdaptivePool{}).Name(); name != "adaptive" {
		t.Errorf("Name() = %q, want adaptive", name)
	}
}

func TestMaxSegmentBytes(t *testing.T) {
	tests := []struct {
		bandwidth int64
		buffered  time.Duration
		want      int64
	}{
		{128 * 1024, 4 * time.Second, 512 * 1024},
		{0, 4 * time.Second, 0},
		{128 * 1024, 0, 0},
		{-1, time.Second, 0},
		{256 * 1024, 500 * time.Millisecond, 128 * 1024},
	}
	for _, tt := range tests {
		if got := MaxSegmentBytes(tt.bandwidth, tt.buffered); got != tt.want {
			t.Errorf("MaxSegmentBytes(%d, %v) = %d, want %d",
				tt.bandwidth, tt.buffered, got, tt.want)
		}
	}
}

// Property: PoolSize is >= 1 always, monotone non-decreasing in bandwidth
// and buffer, monotone non-increasing in segment size.
func TestQuickAdaptiveMonotonicity(t *testing.T) {
	p := AdaptivePool{}
	f := func(b1, b2 uint32, t1, t2 uint16, w1, w2 uint32) bool {
		B1, B2 := int64(b1%(8<<20))+1, int64(b2%(8<<20))+1
		if B1 > B2 {
			B1, B2 = B2, B1
		}
		T1 := time.Duration(t1%60) * time.Second
		T2 := time.Duration(t2%60) * time.Second
		if T1 > T2 {
			T1, T2 = T2, T1
		}
		W1, W2 := int64(w1%(16<<20))+1, int64(w2%(16<<20))+1
		if W1 > W2 {
			W1, W2 = W2, W1
		}
		base := p.PoolSize(B1, T1, W2)
		if base < 1 {
			return false
		}
		if p.PoolSize(B2, T1, W2) < base {
			return false // more bandwidth can't shrink the pool
		}
		if p.PoolSize(B1, T2, W2) < base {
			return false // deeper buffer can't shrink the pool
		}
		if p.PoolSize(B1, T1, W1) < base {
			return false // smaller segments can't shrink the pool
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Equation 1 guarantees k*W <= B*T whenever k > 1; i.e. the pool's
// total bytes are downloadable within the buffered horizon.
func TestQuickAdaptiveNoStallBound(t *testing.T) {
	p := AdaptivePool{}
	f := func(b uint32, ts uint16, w uint32) bool {
		B := int64(b%(8<<20)) + 1
		T := time.Duration(ts%120) * time.Second
		W := int64(w%(16<<20)) + 1
		k := p.PoolSize(B, T, W)
		if k == 1 {
			return true // the mandatory minimum may exceed the bound
		}
		return float64(k)*float64(W) <= float64(B)*T.Seconds()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the Section IV rule is the inverse of Equation 1 — a segment of
// MaxSegmentBytes(B, T) yields a pool of exactly 1 under Equation 1... or
// more precisely, any segment larger than B*T forces k = 1.
func TestQuickSectionIVInverse(t *testing.T) {
	p := AdaptivePool{}
	f := func(b uint32, ts uint16) bool {
		B := int64(b%(8<<20)) + 1
		T := time.Duration(ts%120+1) * time.Second
		W := MaxSegmentBytes(B, T)
		if W <= 0 {
			return false
		}
		// At exactly W = B*T: k = 1. Any larger: still 1.
		return p.PoolSize(B, T, W) == 1 && p.PoolSize(B, T, W+1) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
