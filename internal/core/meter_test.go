package core

import (
	"testing"
	"time"
)

// TestMeterConcurrentDownloadsEstimateAggregate is the regression test
// for the Eq. 1 bandwidth-input bug: k concurrent equal-rate downloads
// sharing a B-byte/s link must estimate ≈B. The naive per-segment
// estimator (each transfer observed with its own wall time) converges to
// ~B/k on the same schedule, which this test also demonstrates so the
// failure mode stays documented.
func TestMeterConcurrentDownloadsEstimateAggregate(t *testing.T) {
	const (
		linkB = int64(100_000) // bytes/s shared by all transfers
		k     = 4
		segW  = int64(50_000) // bytes per segment
	)
	m, err := NewAggregateMeter(DefaultEWMAAlpha)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NewBandwidthEstimator(DefaultEWMAAlpha)
	if err != nil {
		t.Fatal(err)
	}

	// k transfers start together and share the link fairly, so all k
	// complete at t = k*W/B = 2s, each having privately averaged B/k.
	total := time.Duration(float64(k*segW) / float64(linkB) * float64(time.Second))
	for i := 0; i < k; i++ {
		m.Start(0)
	}
	// Bytes arrive continuously; model them in 100ms batches.
	const step = 100 * time.Millisecond
	for at := step; at <= total; at += step {
		m.Deliver(linkB / 10)
	}
	for i := 0; i < k; i++ {
		m.Finish(total)
		naive.Observe(segW, total) // what download.go used to do
	}

	got := m.Estimate()
	if got < linkB*8/10 || got > linkB*12/10 {
		t.Fatalf("aggregate meter estimates %d B/s for a %d B/s link (want within 20%%)", got, linkB)
	}
	if m.InFlight() != 0 {
		t.Fatalf("inflight = %d after all finishes", m.InFlight())
	}
	// The old input really does collapse to B/k.
	old := naive.Estimate()
	if old > linkB/2 {
		t.Fatalf("per-segment estimator gave %d B/s; expected ~B/k = %d (test premise broken)",
			old, linkB/int64(k))
	}
}

// TestMeterSequentialMatchesSimpleObservation: with no concurrency the
// meter degenerates to the plain per-transfer estimate.
func TestMeterSequentialMatchesSimpleObservation(t *testing.T) {
	m, err := NewAggregateMeter(1) // track latest sample exactly
	if err != nil {
		t.Fatal(err)
	}
	now := time.Duration(0)
	for i := 0; i < 3; i++ {
		m.Start(now)
		m.Deliver(64_000)
		now += time.Second
		m.Finish(now)
		// 1s idle gap between transfers must not dilute the rate.
		now += time.Second
	}
	if got := m.Estimate(); got != 64_000 {
		t.Fatalf("estimate = %d, want 64000 (idle time leaked into the window?)", got)
	}
	if m.Samples() != 3 {
		t.Fatalf("samples = %d, want 3", m.Samples())
	}
}

// TestMeterSubWindowCompletionsFold: completions inside the minimum
// window produce no bogus sample; their bytes fold into the next one.
func TestMeterSubWindowCompletionsFold(t *testing.T) {
	m, err := NewAggregateMeter(1)
	if err != nil {
		t.Fatal(err)
	}
	m.Start(0)
	m.Start(0)
	m.Deliver(1_000)
	m.Finish(5 * time.Millisecond) // below minMeterWindow: no sample
	if m.Samples() != 0 {
		t.Fatalf("sub-window completion produced a sample")
	}
	m.Deliver(99_000)
	m.Finish(time.Second)
	if m.Samples() != 1 {
		t.Fatalf("samples = %d, want 1", m.Samples())
	}
	if got := m.Estimate(); got != 100_000 {
		t.Fatalf("estimate = %d, want 100000 (early bytes lost?)", got)
	}
}

// TestMeterValidation rejects bad alpha like the estimator does.
func TestMeterValidation(t *testing.T) {
	if _, err := NewAggregateMeter(0); err == nil {
		t.Fatal("alpha 0 accepted")
	}
	if _, err := NewAggregateMeter(1.5); err == nil {
		t.Fatal("alpha 1.5 accepted")
	}
}

// TestMeterUnmatchedFinishClamps: a Finish without a Start (possible on
// teardown races) must not wedge the in-flight count below zero.
func TestMeterUnmatchedFinishClamps(t *testing.T) {
	m, err := NewAggregateMeter(DefaultEWMAAlpha)
	if err != nil {
		t.Fatal(err)
	}
	m.Finish(time.Second)
	if m.InFlight() != 0 {
		t.Fatalf("inflight = %d, want 0", m.InFlight())
	}
	m.Start(2 * time.Second)
	m.Deliver(10_000)
	m.Finish(3 * time.Second)
	if got := m.Estimate(); got != 10_000 {
		t.Fatalf("estimate = %d, want 10000", got)
	}
}
