package core

import (
	"fmt"
	"sync"
	"time"
)

// BandwidthEstimator tracks available bandwidth from completed transfers
// using an exponentially weighted moving average. The paper simulated a
// known bandwidth on GENI and cites Libswift-style estimation for the real
// world; this estimator is the real-world counterpart and the experiment
// harness ablates it against an oracle.
//
// The zero value is not ready for use; construct with NewBandwidthEstimator.
// Methods are safe for concurrent use.
type BandwidthEstimator struct {
	mu       sync.Mutex
	alpha    float64
	estimate float64 // bytes/second; 0 until the first observation
	samples  int
}

// DefaultEWMAAlpha is the default smoothing factor: responsive enough to
// track congestion onset within a few segment downloads without chasing
// single-transfer noise.
const DefaultEWMAAlpha = 0.3

// NewBandwidthEstimator returns an estimator with smoothing factor alpha in
// (0, 1]. alpha = 1 tracks only the latest sample.
func NewBandwidthEstimator(alpha float64) (*BandwidthEstimator, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("core: alpha must be in (0, 1], got %v", alpha)
	}
	return &BandwidthEstimator{alpha: alpha}, nil
}

// Observe records a completed transfer of n bytes taking elapsed time.
// Non-positive inputs are ignored.
func (e *BandwidthEstimator) Observe(n int64, elapsed time.Duration) {
	if n <= 0 || elapsed <= 0 {
		return
	}
	rate := float64(n) / elapsed.Seconds()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.samples == 0 {
		e.estimate = rate
	} else {
		e.estimate = e.alpha*rate + (1-e.alpha)*e.estimate
	}
	e.samples++
}

// Estimate returns the current bandwidth estimate in bytes/second, or 0 if
// nothing has been observed yet.
func (e *BandwidthEstimator) Estimate() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return int64(e.estimate)
}

// Samples returns the number of observations recorded.
func (e *BandwidthEstimator) Samples() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.samples
}
