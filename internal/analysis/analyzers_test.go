package analysis_test

import (
	"testing"

	"p2psplice/internal/analysis"
	"p2psplice/internal/analysis/analysistest"
)

// Each analyzer is exercised against a golden fixture under testdata/.
// The want-comments make these tests fail if the analyzer is disabled
// or stops reporting, and the scope tests pin the package matching.

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata/determinism", analysis.Determinism, "p2psplice/internal/sim")
}

func TestDeterminismOutOfScope(t *testing.T) {
	analysistest.RunNoMatch(t, "testdata/determinism", analysis.Determinism, "p2psplice/internal/peer")
}

func TestMutexguard(t *testing.T) {
	analysistest.Run(t, "testdata/mutexguard", analysis.Mutexguard, "p2psplice/internal/anywhere")
}

func TestGolifecycle(t *testing.T) {
	analysistest.Run(t, "testdata/golifecycle", analysis.Golifecycle, "p2psplice/internal/anywhere")
}

func TestWireerr(t *testing.T) {
	analysistest.Run(t, "testdata/wireerr", analysis.Wireerr, "p2psplice/internal/wire")
}

func TestWireerrOutOfScope(t *testing.T) {
	analysistest.RunNoMatch(t, "testdata/wireerr", analysis.Wireerr, "p2psplice/internal/sim")
}

func TestFloatcmp(t *testing.T) {
	analysistest.Run(t, "testdata/floatcmp", analysis.Floatcmp, "p2psplice/internal/metrics")
}

func TestFloatcmpOutOfScope(t *testing.T) {
	analysistest.RunNoMatch(t, "testdata/floatcmp", analysis.Floatcmp, "p2psplice/internal/tracker")
}

func TestRegistry(t *testing.T) {
	all := analysis.All()
	if len(all) != 5 {
		t.Fatalf("expected 5 analyzers, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing Name, Doc, or Run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if analysis.ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the registered analyzer", a.Name)
		}
	}
	if analysis.ByName("nosuch") != nil {
		t.Error("ByName of unknown name should be nil")
	}
}
