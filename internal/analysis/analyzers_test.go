package analysis_test

import (
	"strings"
	"testing"

	"p2psplice/internal/analysis"
	"p2psplice/internal/analysis/analysistest"
)

// Each analyzer is exercised against a golden fixture under testdata/.
// The want-comments make these tests fail if the analyzer is disabled
// or stops reporting, and the scope tests pin the package matching.

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata/determinism", analysis.Determinism, "p2psplice/internal/sim")
}

func TestDeterminismOutOfScope(t *testing.T) {
	analysistest.RunNoMatch(t, "testdata/determinism", analysis.Determinism, "p2psplice/internal/peer")
}

func TestMutexguard(t *testing.T) {
	analysistest.Run(t, "testdata/mutexguard", analysis.Mutexguard, "p2psplice/internal/anywhere")
}

func TestGolifecycle(t *testing.T) {
	analysistest.Run(t, "testdata/golifecycle", analysis.Golifecycle, "p2psplice/internal/anywhere")
}

func TestWireerr(t *testing.T) {
	analysistest.Run(t, "testdata/wireerr", analysis.Wireerr, "p2psplice/internal/wire")
}

func TestWireerrOutOfScope(t *testing.T) {
	analysistest.RunNoMatch(t, "testdata/wireerr", analysis.Wireerr, "p2psplice/internal/sim")
}

func TestFloatcmp(t *testing.T) {
	analysistest.Run(t, "testdata/floatcmp", analysis.Floatcmp, "p2psplice/internal/metrics")
}

func TestFloatcmpOutOfScope(t *testing.T) {
	analysistest.RunNoMatch(t, "testdata/floatcmp", analysis.Floatcmp, "p2psplice/internal/tracker")
}

func TestDetercall(t *testing.T) {
	res := analysistest.RunModule(t, "testdata/detercall", analysis.Detercall, map[string]string{
		"helper": "p2psplice/internal/helper",
		"sim":    "p2psplice/internal/sim",
	})
	// The fixture's one suppression silences a real chain; it must not
	// read as dead.
	for _, d := range res.DeadIgnores {
		t.Errorf("unexpected dead ignore: %s", d)
	}
}

func TestAllocfree(t *testing.T) {
	analysistest.RunModule(t, "testdata/allocfree", analysis.Allocfree, map[string]string{
		"dep": "p2psplice/internal/dep",
		"hot": "p2psplice/internal/hot",
	})
}

func TestAtomicguard(t *testing.T) {
	analysistest.RunModule(t, "testdata/atomicguard", analysis.Atomicguard, map[string]string{
		"state": "p2psplice/internal/state",
		"user":  "p2psplice/internal/user",
	})
}

func TestDeadIgnores(t *testing.T) {
	res := analysistest.RunModule(t, "testdata/deadignore", analysis.Determinism, map[string]string{
		"pkg": "p2psplice/internal/sim/deadfixture",
	})
	if len(res.Findings) != 0 {
		t.Errorf("live suppression failed: %v", res.Findings)
	}
	if len(res.DeadIgnores) != 1 {
		t.Fatalf("expected exactly one dead ignore, got %v", res.DeadIgnores)
	}
	d := res.DeadIgnores[0]
	if d.Analyzer != "deadignore" || !strings.Contains(d.Message, "determinism") {
		t.Errorf("unexpected dead-ignore finding: %s", d)
	}
}

func TestRegistry(t *testing.T) {
	all := analysis.All()
	if len(all) != 8 {
		t.Fatalf("expected 8 analyzers, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing Name, Doc, or Run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if analysis.ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the registered analyzer", a.Name)
		}
	}
	if analysis.ByName("nosuch") != nil {
		t.Error("ByName of unknown name should be nil")
	}
}
