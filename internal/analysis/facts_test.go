package analysis_test

import (
	"go/ast"
	"go/types"
	"testing"

	"p2psplice/internal/analysis"
)

// markFact is attached to every function the probe analyzer sees.
type markFact struct{ From string }

func (*markFact) AFact() {}

// pkgMark is the package-fact counterpart.
type pkgMark struct{ N int }

func (*pkgMark) AFact() {}

// TestFactsSurviveDependencyOrder drives the whole engine stack with the
// real Loader: load only testdata/facts/top, expand to the dependency
// closure (pulling in base), hand the packages to the engine top-first,
// and prove that (a) the engine reorders them so base runs first, and
// (b) facts exported while analyzing base are importable from top —
// both object facts on functions and a package fact.
func TestFactsSurviveDependencyOrder(t *testing.T) {
	l, err := analysis.NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("testdata/facts/top")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("expected 1 package from the pattern, got %d", len(pkgs))
	}
	closure := l.Closure(pkgs)
	if len(closure) != 2 {
		t.Fatalf("closure should pull in base: got %d packages", len(closure))
	}
	const (
		topPath  = "p2psplice/internal/analysis/testdata/facts/top"
		basePath = "p2psplice/internal/analysis/testdata/facts/base"
	)
	if closure[0].Path != topPath || closure[1].Path != basePath {
		t.Fatalf("closure order: got %s, %s", closure[0].Path, closure[1].Path)
	}

	var ranOrder []string
	imported := map[string]string{} // callee name -> fact's From
	var pkgFactSeen *pkgMark
	probe := &analysis.Analyzer{
		Name:      "factprobe",
		Doc:       "test probe: round-trips object and package facts",
		FactTypes: []analysis.Fact{(*markFact)(nil), (*pkgMark)(nil)},
		Run: func(pass *analysis.Pass) error {
			ranOrder = append(ranOrder, pass.Pkg.Path())
			for _, file := range pass.Files {
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok {
						continue
					}
					if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
						pass.ExportObjectFact(fn, &markFact{From: pass.Pkg.Path()})
					}
				}
			}
			pass.ExportPackageFact(&pkgMark{N: len(pass.Files)})
			for _, obj := range pass.TypesInfo.Uses {
				fn, ok := obj.(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
					continue
				}
				var mf markFact
				if pass.ImportObjectFact(fn, &mf) {
					imported[fn.Name()] = mf.From
				}
			}
			for _, dep := range pass.Pkg.Imports() {
				var pm pkgMark
				if pass.ImportPackageFact(dep, &pm) {
					pkgFactSeen = &pm
				}
			}
			return nil
		},
	}

	// Hand the engine the closure top-first: dependency ordering is the
	// engine's job, not the caller's.
	if _, err := analysis.RunResult([]*analysis.Analyzer{probe}, closure); err != nil {
		t.Fatal(err)
	}
	if len(ranOrder) != 2 || ranOrder[0] != basePath || ranOrder[1] != topPath {
		t.Fatalf("engine did not run dependencies first: %v", ranOrder)
	}
	for _, callee := range []string{"Tick", "Tock"} {
		if imported[callee] != basePath {
			t.Errorf("fact for base.%s not imported in top: got %q", callee, imported[callee])
		}
	}
	if pkgFactSeen == nil || pkgFactSeen.N != 1 {
		t.Errorf("package fact did not round-trip: %+v", pkgFactSeen)
	}
}
