package analysis

import (
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// Fact is a typed datum an analyzer attaches to a types.Object or a
// package while analyzing one package, and reads back while analyzing a
// later package in dependency order. It mirrors
// golang.org/x/tools/go/analysis facts in miniature: facts are private
// to the analyzer that exported them, keyed by (object, concrete fact
// type), and — because the whole module is analyzed in one process —
// they are stored as live pointers instead of being gob-serialized.
//
// An analyzer that declares FactTypes is run over every package of the
// module (dependency order, imports first), not just the packages its
// Match accepts: that is what lets a check in a matched package see
// facts computed about its helper-package dependencies. Findings it
// reports while visiting a package outside its Match are discarded.
type Fact interface {
	// AFact marks the type as a fact. It is never called.
	AFact()
}

// ObjectFact pairs an object with one fact attached to it.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// factStore holds every fact exported during one Run, namespaced by
// analyzer so two analyzers can attach facts of coincidentally equal
// type names without collision.
type factStore struct {
	objects  map[objectFactKey]Fact
	packages map[packageFactKey]Fact
}

type objectFactKey struct {
	a   *Analyzer
	obj types.Object
	t   reflect.Type
}

type packageFactKey struct {
	a   *Analyzer
	pkg *types.Package
	t   reflect.Type
}

func newFactStore() *factStore {
	return &factStore{
		objects:  map[objectFactKey]Fact{},
		packages: map[packageFactKey]Fact{},
	}
}

// factType validates that fact is a non-nil pointer (so imports can
// copy into it) and returns its concrete type.
func factType(fact Fact) reflect.Type {
	t := reflect.TypeOf(fact)
	if t == nil || t.Kind() != reflect.Ptr {
		panic(fmt.Sprintf("analysis: fact %T must be a pointer", fact))
	}
	return t
}

// declaresFactType enforces the x/tools contract that an analyzer may
// only use fact types it declared up front; the declaration is what
// makes the engine run the analyzer over every package.
func declaresFactType(a *Analyzer, t reflect.Type) bool {
	for _, ft := range a.FactTypes {
		if reflect.TypeOf(ft) == t {
			return true
		}
	}
	return false
}

func (s *factStore) exportObject(a *Analyzer, obj types.Object, fact Fact) {
	t := factType(fact)
	if !declaresFactType(a, t) {
		panic(fmt.Sprintf("analysis: analyzer %s exports undeclared fact type %v", a.Name, t))
	}
	if obj == nil {
		panic(fmt.Sprintf("analysis: analyzer %s exports fact on nil object", a.Name))
	}
	s.objects[objectFactKey{a, obj, t}] = fact
}

func (s *factStore) importObject(a *Analyzer, obj types.Object, fact Fact) bool {
	t := factType(fact)
	got, ok := s.objects[objectFactKey{a, obj, t}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

func (s *factStore) exportPackage(a *Analyzer, pkg *types.Package, fact Fact) {
	t := factType(fact)
	if !declaresFactType(a, t) {
		panic(fmt.Sprintf("analysis: analyzer %s exports undeclared fact type %v", a.Name, t))
	}
	s.packages[packageFactKey{a, pkg, t}] = fact
}

func (s *factStore) importPackage(a *Analyzer, pkg *types.Package, fact Fact) bool {
	t := factType(fact)
	got, ok := s.packages[packageFactKey{a, pkg, t}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// objectFacts returns every object fact exported by a, sorted by object
// position (then name, then fact type) so iteration over them is
// deterministic.
func (s *factStore) objectFacts(a *Analyzer) []ObjectFact {
	var out []ObjectFact
	keys := make([]objectFactKey, 0)
	for k := range s.objects {
		if k.a == a {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		ki, kj := keys[i], keys[j]
		if ki.obj.Pos() != kj.obj.Pos() {
			return ki.obj.Pos() < kj.obj.Pos()
		}
		if ki.obj.Name() != kj.obj.Name() {
			return ki.obj.Name() < kj.obj.Name()
		}
		return ki.t.String() < kj.t.String()
	})
	for _, k := range keys {
		out = append(out, ObjectFact{Object: k.obj, Fact: s.objects[k]})
	}
	return out
}

// depOrder sorts packages so every package follows the packages it
// imports (restricted to the given set). The order is deterministic:
// ties are broken by import path. Analyzing in this order is what makes
// fact import well-defined — by the time a package is visited, all of
// its module-internal dependencies have exported their facts.
func depOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	paths := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		if _, dup := byPath[p.Path]; dup {
			continue
		}
		byPath[p.Path] = p
		paths = append(paths, p.Path)
	}
	sort.Strings(paths)
	var out []*Package
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(path string)
	visit = func(path string) {
		pkg, ok := byPath[path]
		if !ok || state[path] != 0 {
			return
		}
		state[path] = 1
		imps := pkg.Types.Imports()
		ipaths := make([]string, 0, len(imps))
		for _, imp := range imps {
			ipaths = append(ipaths, imp.Path())
		}
		sort.Strings(ipaths)
		for _, ip := range ipaths {
			visit(ip)
		}
		state[path] = 2
		out = append(out, pkg)
	}
	for _, p := range paths {
		visit(p)
	}
	return out
}

// moduleInternal reports whether path belongs to this module. The
// module path is recovered from the packages under analysis rather than
// go.mod so fixture packages loaded under fake p2psplice/... paths
// behave like module code.
func moduleInternal(modPath, path string) bool {
	return path == modPath || strings.HasPrefix(path, modPath+"/")
}
