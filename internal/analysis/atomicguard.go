package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// atomicUsesFact records, on a struct field's types.Var, every site in
// the module where the field's address is passed to a sync/atomic
// function.
type atomicUsesFact struct {
	Sites []token.Pos
}

func (*atomicUsesFact) AFact() {}

// plainUsesFact records, on a struct field's types.Var, every site in
// the module where the field is read, written, or address-taken
// *outside* a sync/atomic call. Only fields whose type sync/atomic can
// operate on (sized integers, uintptr, unsafe.Pointer) are tracked, so
// the fact volume stays proportional to plausible candidates.
type plainUsesFact struct {
	Sites []token.Pos
}

func (*plainUsesFact) AFact() {}

// Atomicguard enforces the sync/atomic discipline the race detector
// only checks under contention: once any code accesses a field through
// sync/atomic, *every* access module-wide must go through sync/atomic.
// A mixed plain read can see a torn or stale value and never trips
// -race unless the two accesses actually collide during the test run —
// this analyzer makes the bug class a compile-time (lint-time) error
// instead of a scheduling-dependent one.
//
// Both directions of the import graph matter (the atomic access may be
// in a package that imports the one with the plain access), so the
// per-package pass only collects facts and the verdicts are issued in
// RunEnd over the whole module. Fields of the typed atomic wrappers
// (atomic.Int64 etc.) are out of scope: their methods are the only way
// to touch the value. Address escapes through intermediate pointers
// (p := &s.f; atomic.AddInt64(p, 1)) are not traced.
var Atomicguard = &Analyzer{
	Name:      "atomicguard",
	Doc:       "a field accessed via sync/atomic anywhere must be accessed only via sync/atomic, everywhere",
	FactTypes: []Fact{(*atomicUsesFact)(nil), (*plainUsesFact)(nil)},
	Run:       runAtomicguard,
	RunEnd:    finishAtomicguard,
}

func runAtomicguard(pass *Pass) error {
	// First pass: find &field arguments of sync/atomic calls, and
	// remember the selector nodes involved so the second pass does not
	// double-count them as plain uses.
	atomicSels := map[*ast.SelectorExpr]bool{}
	atomicSites := map[*types.Var][]token.Pos{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				sel, field := addressedField(pass, arg)
				if field == nil {
					continue
				}
				atomicSels[sel] = true
				atomicSites[field] = append(atomicSites[field], sel.Pos())
			}
			return true
		})
	}
	// Second pass: every other access to a trackable field.
	plainSites := map[*types.Var][]token.Pos{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicSels[sel] {
				return true
			}
			field := fieldOf(pass, sel)
			if field == nil || !atomicCapable(field.Type()) {
				return true
			}
			if benignFieldUse(pass, file, sel) {
				return true
			}
			plainSites[field] = append(plainSites[field], sel.Pos())
			return true
		})
	}
	exportSiteFacts(pass, atomicSites, func(sites []token.Pos) Fact { return &atomicUsesFact{Sites: sites} },
		func(field *types.Var, fact Fact) bool { return pass.ImportObjectFact(field, fact.(*atomicUsesFact)) })
	exportSiteFacts(pass, plainSites, func(sites []token.Pos) Fact { return &plainUsesFact{Sites: sites} },
		func(field *types.Var, fact Fact) bool { return pass.ImportObjectFact(field, fact.(*plainUsesFact)) })
	return nil
}

// exportSiteFacts merges this package's sites into any fact already
// exported on the field (fields may be touched from several packages).
func exportSiteFacts(pass *Pass, sites map[*types.Var][]token.Pos,
	mk func([]token.Pos) Fact, imp func(*types.Var, Fact) bool) {
	fields := make([]*types.Var, 0, len(sites))
	for f := range sites {
		fields = append(fields, f)
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })
	for _, field := range fields {
		merged := sites[field]
		prev := mk(nil)
		if imp(field, prev) {
			switch p := prev.(type) {
			case *atomicUsesFact:
				merged = append(p.Sites, merged...)
			case *plainUsesFact:
				merged = append(p.Sites, merged...)
			}
		}
		sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
		pass.ExportObjectFact(field, mk(merged))
	}
}

// finishAtomicguard has the whole module's facts: any field with both
// atomic and plain uses is a mixed-access bug, reported at every plain
// site with a pointer to one atomic site.
func finishAtomicguard(pass *EndPass) error {
	for _, of := range pass.ObjectFacts() {
		au, ok := of.Fact.(*atomicUsesFact)
		if !ok || len(au.Sites) == 0 {
			continue
		}
		var pu plainUsesFact
		if !pass.ImportObjectFact(of.Object, &pu) {
			continue
		}
		atomicAt := pass.Fset.Position(au.Sites[0])
		for _, site := range pu.Sites {
			pass.Reportf(site, "field %s is accessed via sync/atomic (e.g. %s:%d) but non-atomically here; every access must go through sync/atomic",
				of.Object.Name(), shortPath(atomicAt.Filename), atomicAt.Line)
		}
	}
	return nil
}

// atomicFuncs are the sync/atomic package-level functions whose pointer
// argument marks the pointed-to field as atomically accessed.
var atomicFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

func isAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pn, ok := selectorPackage(pass, sel)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return false
	}
	return atomicFuncs[sel.Sel.Name]
}

// addressedField unwraps &s.f and &s.f[i] argument shapes to the struct
// field being atomically accessed, returning the selector node too so
// the caller can exclude it from the plain-use scan.
func addressedField(pass *Pass, arg ast.Expr) (*ast.SelectorExpr, *types.Var) {
	un, ok := arg.(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil, nil
	}
	inner := un.X
	if idx, ok := inner.(*ast.IndexExpr); ok {
		inner = idx.X // &s.f[i]: the array field carries the discipline
	}
	sel, ok := inner.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	return sel, fieldOf(pass, sel)
}

// fieldOf resolves sel to a module-declared struct field.
func fieldOf(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	if v.Pkg() == nil || !moduleInternal(pass.ModulePath, v.Pkg().Path()) {
		return nil
	}
	return v
}

// atomicCapable reports whether sync/atomic has operations for t:
// sized integers, uintptr, unsafe.Pointer, and arrays of those (an
// array element address can be an atomic operand).
func atomicCapable(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.Int32, types.Int64, types.Uint32, types.Uint64, types.Uintptr, types.UnsafePointer:
			return true
		}
	case *types.Array:
		return atomicCapable(u.Elem())
	}
	return false
}

// benignFieldUse filters accesses that never observe the field's value:
// len/cap of an array field, and index-only `for i := range s.f` loops.
func benignFieldUse(pass *Pass, file *ast.File, sel *ast.SelectorExpr) bool {
	benign := false
	ast.Inspect(file, func(n ast.Node) bool {
		if benign {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if len(x.Args) == 1 && x.Args[0] == sel {
				if id, ok := x.Fun.(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
					if _, isB := pass.TypesInfo.ObjectOf(id).(*types.Builtin); isB {
						benign = true
					}
				}
			}
		case *ast.RangeStmt:
			if x.X == sel && x.Value == nil {
				if _, isArr := pass.TypesInfo.TypeOf(sel).Underlying().(*types.Array); isArr {
					benign = true
				}
			}
		}
		return true
	})
	return benign
}

// shortPath keeps the last two path segments of an absolute filename so
// cross-package messages stay readable.
func shortPath(p string) string {
	slashes := 0
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' || p[i] == '\\' {
			slashes++
			if slashes == 2 {
				return p[i+1:]
			}
		}
	}
	return p
}
