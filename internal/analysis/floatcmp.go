package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Floatcmp flags == and != between floating-point operands in the
// metrics and experiment packages. The reproduction's stall counts and
// startup-delay aggregates come out of floating-point accumulation;
// exact equality on such values silently misclassifies results that
// differ by one ULP. Compare against an epsilon, or restructure so the
// comparison is on integers (counts, durations in time.Duration).
// Comparisons against an exact floating-point zero literal are still
// flagged: a sum that "should" be zero rarely is.
var Floatcmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flag ==/!= between floating-point operands in metrics and experiment packages",
	Match: matchPaths(
		"p2psplice/internal/metrics",
		"p2psplice/internal/experiment",
	),
	Run: runFloatcmp,
}

func runFloatcmp(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isFloat(pass.TypesInfo.TypeOf(be.X)) || isFloat(pass.TypesInfo.TypeOf(be.Y)) {
				pass.Reportf(be.OpPos, "floating-point %s comparison; use an epsilon or integer representation", be.Op)
			}
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
