package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// taintFact marks a function that transitively reaches a
// nondeterministic source: a wall-clock read, the process-global RNG,
// an entropy read, or an order-nondeterministic construct. Chain[0] is
// the function itself and the last element describes the source, so the
// report at the leak's entry edge can show the whole path.
type taintFact struct {
	Chain []string
}

func (*taintFact) AFact() {}

func (f *taintFact) String() string { return strings.Join(f.Chain, " -> ") }

// Detercall closes the hole the direct-call determinism analyzer leaves
// open: a time.Now or rand.Intn buried in a helper package is invisible
// to a per-package check, but the simulated data path still reaches it.
// The analyzer computes the module call graph bottom-up (dependency
// order, via the facts engine): every function that directly contains a
// nondeterministic source is tainted, every function that calls or
// references a tainted function is tainted, and each taint records a
// representative call chain to its source. A function in a
// DeterministicPackages entry that calls a tainted function *outside*
// the deterministic set is a leak, reported at the call site with the
// full chain. Direct source calls inside deterministic packages remain
// the determinism analyzer's findings; bare references to source
// functions (e.g. storing time.Now as a clock default) are reported
// here because no call expression exists for determinism to flag.
//
// Dynamic calls (interface methods, function values) are not resolved;
// injected-clock indirection is therefore invisible by design — that is
// exactly the sanctioned escape hatch.
var Detercall = &Analyzer{
	Name:      "detercall",
	Doc:       "forbid call chains from deterministic packages that transitively reach wall clocks, global RNG, entropy, or unsorted map iteration",
	Match:     matchPaths(DeterministicPackages...),
	FactTypes: []Fact{(*taintFact)(nil)},
	Run:       runDetercall,
}

// sourceDesc reports whether obj is a nondeterministic source function
// and describes it for call chains.
func sourceDesc(obj *types.Func) (string, bool) {
	pkg := obj.Pkg()
	if pkg == nil {
		return "", false
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", false // methods: only package-level functions are sources
	}
	switch pkg.Path() {
	case "time":
		if wallClockFuncs[obj.Name()] {
			return "time." + obj.Name() + " (wall clock)", true
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[obj.Name()] {
			return "rand." + obj.Name() + " (process-global RNG)", true
		}
	case "crypto/rand":
		return "crypto/rand." + obj.Name() + " (entropy read)", true
	}
	return "", false
}

// funcUse is one appearance of a function object in a body: either the
// callee of a call expression or a bare reference (a stored or passed
// function value).
type funcUse struct {
	obj  *types.Func
	pos  token.Pos
	call bool
}

// fnNode is the per-function call-graph node built from one FuncDecl.
type fnNode struct {
	fn      *types.Func
	uses    []funcUse
	sources []string // direct nondeterministic sources, chain-formatted
	srcPos  token.Pos
}

func runDetercall(pass *Pass) error {
	nodes := collectFnNodes(pass)

	// Taint fixpoint within the package. Imported facts are already
	// final (dependency order), so only intra-package edges need
	// iteration; chains are picked first-use-in-source-order, which
	// keeps output deterministic.
	taint := map[*types.Func][]string{}
	for _, n := range nodes {
		if len(n.sources) > 0 {
			taint[n.fn] = []string{funcDisplay(n.fn), n.sources[0]}
		}
	}
	chainOf := func(obj *types.Func) []string {
		if c, ok := taint[obj]; ok {
			return c
		}
		if obj.Pkg() != nil && obj.Pkg() != pass.Pkg {
			var tf taintFact
			if pass.ImportObjectFact(obj, &tf) {
				return tf.Chain
			}
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			if taint[n.fn] != nil {
				continue
			}
			for _, u := range n.uses {
				if chain := chainOf(u.obj); chain != nil {
					taint[n.fn] = append([]string{funcDisplay(n.fn)}, chain...)
					changed = true
					break
				}
			}
		}
	}
	for _, n := range nodes {
		if chain := taint[n.fn]; chain != nil {
			pass.ExportObjectFact(n.fn, &taintFact{Chain: chain})
		}
	}

	// Reporting. The engine discards findings outside Match, so this
	// runs unconditionally; only deterministic packages surface them.
	deterministic := matchPaths(DeterministicPackages...)
	for _, n := range nodes {
		reported := map[*types.Func]bool{}
		for _, u := range n.uses {
			if reported[u.obj] {
				continue
			}
			if desc, ok := sourceDesc(u.obj); ok {
				if !u.call {
					reported[u.obj] = true
					pass.Reportf(u.pos, "reference to %s leaks nondeterminism into a deterministic package; inject a clock or seeded RNG instead", desc)
				}
				continue // direct source calls are determinism's findings
			}
			pkg := u.obj.Pkg()
			if pkg == nil || !moduleInternal(pass.ModulePath, pkg.Path()) || deterministic(pkg.Path()) {
				continue
			}
			chain := chainOf(u.obj)
			if chain == nil {
				continue
			}
			reported[u.obj] = true
			pass.Reportf(u.pos, "call chain reaches nondeterminism: %s",
				strings.Join(append([]string{funcDisplay(n.fn)}, chain...), " -> "))
		}
	}

	reportTopLevelSourceRefs(pass)
	return nil
}

// collectFnNodes builds one call-graph node per function declaration:
// every *types.Func used in the body (called or referenced, including
// inside nested function literals, which are attributed to the
// declaring function) plus the direct nondeterministic sources.
func collectFnNodes(pass *Pass) []*fnNode {
	var nodes []*fnNode
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &fnNode{fn: fn}
			callIdents := map[*ast.Ident]bool{}
			ast.Inspect(fd.Body, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					switch fun := call.Fun.(type) {
					case *ast.Ident:
						callIdents[fun] = true
					case *ast.SelectorExpr:
						callIdents[fun.Sel] = true
					}
				}
				return true
			})
			ast.Inspect(fd.Body, func(x ast.Node) bool {
				id, ok := x.(*ast.Ident)
				if !ok {
					return true
				}
				obj, ok := pass.TypesInfo.Uses[id].(*types.Func)
				if !ok {
					return true
				}
				use := funcUse{obj: obj, pos: id.Pos(), call: callIdents[id]}
				n.uses = append(n.uses, use)
				if desc, ok := sourceDesc(obj); ok {
					n.sources = append(n.sources, desc)
					if n.srcPos == token.NoPos {
						n.srcPos = id.Pos()
					}
				}
				return true
			})
			for _, hit := range unsortedMapRanges(pass.TypesInfo, fd.Body) {
				n.sources = append(n.sources, fmt.Sprintf("unsorted map iteration feeding %q", hit.varName))
			}
			nodes = append(nodes, n)
		}
	}
	return nodes
}

// reportTopLevelSourceRefs flags package-level variable initializers
// that store a reference to a source function (`var now = time.Now`):
// no call expression exists for the determinism analyzer to catch, yet
// every later use of the variable reads the wall clock.
func reportTopLevelSourceRefs(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			ast.Inspect(gd, func(x ast.Node) bool {
				id, ok := x.(*ast.Ident)
				if !ok {
					return true
				}
				obj, ok := pass.TypesInfo.Uses[id].(*types.Func)
				if !ok {
					return true
				}
				if desc, ok := sourceDesc(obj); ok {
					pass.Reportf(id.Pos(), "reference to %s leaks nondeterminism into a deterministic package; inject a clock or seeded RNG instead", desc)
				}
				return true
			})
		}
	}
}

// funcDisplay renders a function or method as pkg.Name or
// pkg.(*Recv).Name for call chains.
func funcDisplay(f *types.Func) string {
	pkgName := ""
	if f.Pkg() != nil {
		pkgName = f.Pkg().Name() + "."
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		ptr := ""
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
			ptr = "*"
		}
		if named, ok := rt.(*types.Named); ok {
			return fmt.Sprintf("%s(%s%s).%s", pkgName, ptr, named.Obj().Name(), f.Name())
		}
	}
	return pkgName + f.Name()
}
