// Fixture for the determinism analyzer, type-checked as if it were
// package p2psplice/internal/sim.
package sim

import (
	"math/rand"
	"sort"
	"time"
)

func clock() time.Time {
	return time.Now() // want "reads the wall clock"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "reads the wall clock"
}

func roll() int {
	return rand.Intn(6) // want "process-global RNG"
}

func shuffleGlobal(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "process-global RNG"
}

func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // seeded constructor: allowed
	return r.Float64()
}

func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m { // want "iteration order is nondeterministic"
		out = append(out, k)
	}
	return out
}

func sortedKeys(m map[string]int) []string {
	var out []string
	for k := range m { // sorted below: allowed
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sliceOrder(xs []int) []int {
	var out []int
	for _, x := range xs { // slice iteration is ordered: allowed
		out = append(out, x)
	}
	return out
}

func suppressedClock() time.Time {
	//lint:ignore determinism fixture demonstrating an explicit suppression
	return time.Now()
}
