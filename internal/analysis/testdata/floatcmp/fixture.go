// Fixture for the floatcmp analyzer, type-checked as if it were package
// p2psplice/internal/metrics.
package metrics

func eq(a, b float64) bool {
	return a == b // want "floating-point"
}

func neq(a, b float32) bool {
	return a != b // want "floating-point"
}

func zeroCompare(a float64) bool {
	return a == 0 // want "floating-point"
}

func ints(a, b int) bool {
	return a == b // integer equality: allowed
}

func ordered(a, b float64) bool {
	return a < b // ordered float comparison: allowed
}

func epsilon(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
