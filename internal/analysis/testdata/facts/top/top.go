// Package top imports base; the probe analyzer imports the facts base
// exported while analyzing this package.
package top

import "p2psplice/internal/analysis/testdata/facts/base"

func Use() int { return base.Tick() + base.Tock() }
