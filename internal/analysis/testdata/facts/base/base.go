// Package base is the dependency in the facts round-trip test: the
// probe analyzer exports facts on its functions, and package top must
// see them — proving facts flow along the import edge regardless of the
// order packages were handed to the engine.
package base

func Tick() int { return 1 }

func Tock() int { return 2 }
