// Fixture for the golifecycle analyzer.
package fixture

import (
	"context"
	"sync"
)

func leak(work func()) {
	go work() // want "not tied"
}

func leakLit(work func()) {
	go func() { work() }() // want "not tied"
}

func wgTied(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func ctxTied(ctx context.Context, work func()) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

func doneTied(done chan struct{}, work func()) {
	go func() {
		<-done
		work()
	}()
}

func run(ctx context.Context) { <-ctx.Done() }

func spawnRun(ctx context.Context) {
	go run(ctx) // context argument ties the goroutine's lifetime
}

func suppressed(work func()) {
	//lint:ignore golifecycle fixture demonstrating an explicit suppression
	go work()
}
