// Package pkg carries one live suppression (it silences a real
// determinism finding, so no want comment exists for it) and one stale
// suppression that silences nothing and must be reported dead.
package pkg

import "time"

func used() time.Time {
	//lint:ignore determinism fixture: justified wall-clock read
	return time.Now()
}

//lint:ignore determinism fixture: stale, nothing on this line or the next
var version = 3

var _ = used
var _ = version
