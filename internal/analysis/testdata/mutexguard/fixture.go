// Fixture for the mutexguard analyzer.
package fixture

import "sync"

type counter struct {
	mu    sync.Mutex // guards n and total
	n     int
	total int

	state int // guarded by mu
}

func (c *counter) bad() int {
	return c.n // want "guarded by \"mu\""
}

func (c *counter) badState() {
	c.state++ // want "guarded by \"mu\""
}

func (c *counter) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n + c.total
}

func (c *counter) addLocked(d int) { // *Locked: caller holds mu
	c.n += d
}

type owner struct {
	mu sync.Mutex
}

type item struct {
	parent *owner
	hits   int // guarded by parent.mu
}

func (i *item) bump() {
	i.hits++ // want "guarded by \"mu\""
}

func (i *item) bumpSafe() {
	i.parent.mu.Lock()
	i.hits++
	i.parent.mu.Unlock()
}

type stale struct {
	mu  sync.Mutex // guards gone    // want "unknown field \"gone\""
	val int
}

func (s *stale) read() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.val
}
