// Package helper is a fixture package OUTSIDE the deterministic set: a
// per-package analyzer never sees its wall-clock read from the caller's
// side. No findings surface here (detercall's Match rejects the path);
// the package exists to carry taint facts across the package boundary.
package helper

import "time"

// Stamp reads the wall clock directly: the taint source.
func Stamp() int64 { return time.Now().UnixNano() }

// Indirect adds one hop so chains longer than a single edge are proven.
func Indirect() int64 { return Stamp() + 1 }

// Pure is taint-free: callers stay clean.
func Pure(a, b int) int { return a + b }
