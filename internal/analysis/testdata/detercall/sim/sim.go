// Package sim is loaded under a DeterministicPackages path: every leak
// of nondeterminism through the helper package must surface here, with
// the full call chain.
package sim

import (
	"time"

	"p2psplice/internal/helper"
)

// clock stores a wall-clock reference at package level: no call
// expression exists for the direct-call determinism analyzer to flag,
// so detercall owns this finding.
var clock = time.Now // want "reference to time.Now \(wall clock\) leaks nondeterminism"

// Step leaks through two helper hops; the report carries the chain.
func Step() int64 {
	return helper.Indirect() // want "call chain reaches nondeterminism: sim.Step -> helper.Indirect -> helper.Stamp -> time.Now \(wall clock\)"
}

// sample passes a source function as a value instead of calling it.
func sample() func() time.Time {
	return time.Now // want "reference to time.Now \(wall clock\) leaks nondeterminism"
}

// Sum only touches the taint-free helper: clean.
func Sum() int { return helper.Pure(1, 2) }

// stamped exercises a justified suppression: the finding exists but is
// silenced, and the suppression counts as used (not dead).
func stamped() int64 {
	//lint:ignore detercall fixture: deliberate wall-clock edge under a justification
	return helper.Stamp()
}
