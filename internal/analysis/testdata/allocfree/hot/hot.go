// Package hot exercises every allocfree check inside //lint:hotpath
// functions, plus the negative space: unmarked functions may allocate
// freely, and pointer-shaped values box for free.
package hot

import (
	"errors"
	"fmt"

	"p2psplice/internal/dep"
)

var sink any
var sinkFn func() int
var sinkErr error

type point struct{ x, y int }

//lint:hotpath fixture: every line below is an allocation
func Bad(buf []byte, v int64, s string) int {
	_ = fmt.Sprint(v)       // want "fmt.Sprint allocates in a //lint:hotpath function"
	sinkErr = errors.New(s) // want "errors.New allocates in a //lint:hotpath function"
	b := make([]byte, 8)    // want "make allocates in a //lint:hotpath function"
	buf = append(buf, b...) // want "append without a same-function capacity hint"
	sink = v                // want "assignment boxes int64 into an interface"
	_ = s + "!"             // want "string concatenation allocates"
	_ = []byte(s)           // want "conversion allocates"
	n := v
	sinkFn = func() int { return int(n) } // want "capturing function literal allocates a closure context"
	_ = dep.Slow(1)                       // want "calls dep.Slow, which is not marked //lint:hotpath"
	go dep.Fast(1)                        // want "go statement allocates a goroutine"
	p := &point{}                         // want "&composite literal escapes to the heap"
	_ = []int{1, 2}                       // want "slice/map composite literal allocates"
	return p.x
}

//lint:hotpath fixture: none of this allocates
func Good(dst []byte, v int64) []byte {
	if cap(dst) < 8 {
		return nil
	}
	dst = dst[:8]
	for i := 0; i < 8; i++ {
		dst[i] = byte(v >> (8 * uint(i)))
	}
	_ = dep.Fast(int(v)) // marked callee: the contract holds transitively
	return dst
}

//lint:hotpath fixture: a 3-arg make hints capacity, so appends to it pass
func Hinted(vals []byte) []byte {
	out := make([]byte, 0, 64) // want "make allocates in a //lint:hotpath function"
	out = append(out, vals...) // hinted target: no append finding
	return out
}

//lint:hotpath fixture: pointer-shaped values fit the interface word
func PtrBox(p *point) { sink = p }

// NotHot is unmarked: allocating freely here must produce no findings.
func NotHot(v int64) string { return fmt.Sprintf("%d", v) }
