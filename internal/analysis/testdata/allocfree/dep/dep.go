// Package dep provides callees for the cross-package hotpath-contract
// check: hot code may call Fast (marked, fact exported) but not Slow.
package dep

//lint:hotpath covered by the fixture's contract
func Fast(x int) int { return x + 1 }

// Slow carries no hotpath marker; hot callers must be flagged.
func Slow(x int) int { return x + 2 }
