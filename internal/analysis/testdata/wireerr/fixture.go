// Fixture for the wireerr analyzer, type-checked as if it were package
// p2psplice/internal/wire.
package wire

import "io"

func encodeThing() error { return nil }

func sendLoop() error { return nil }

func frobnicate() error { return nil }

func drop() {
	encodeThing() // want "discarded"
}

func blankSingle() {
	_ = encodeThing() // want "assigned to _"
}

func blankPair(w io.Writer, b []byte) {
	_, _ = w.Write(b) // want "assigned to _"
}

func handled(w io.Writer, b []byte) error {
	if _, err := w.Write(b); err != nil {
		return err
	}
	return encodeThing()
}

func kept(r io.Reader, b []byte) (int, error) {
	n, err := r.Read(b)
	return n, err
}

func goDrop() {
	go sendLoop() // want "discarded by go statement"
}

func nonWireVerb() {
	frobnicate() // name has no wire verb: out of scope for this analyzer
}

func suppressed(w io.Writer, b []byte) {
	//lint:ignore wireerr fixture demonstrating an explicit suppression
	_, _ = w.Write(b)
}
