// Package user imports state and completes both cross-package mixes.
package user

import (
	"sync/atomic"

	"p2psplice/internal/state"
)

// Read is the plain half of Gauge.Val; the atomic half is state.Bump.
func Read(g *state.Gauge) int64 {
	return g.Val // want "field Val is accessed via sync/atomic .* but non-atomically here"
}

// Raise is the atomic half of Flags.Bits; the plain half is
// state.Plain, in the package this one imports.
func Raise(f *state.Flags) {
	atomic.StoreUint32(&f.Bits, 1)
}
