// Package state declares the fields under atomic discipline. One mix
// happens inside this package; the other two cross the package boundary
// in both directions (atomic here / plain in user, and plain here /
// atomic in user), which is exactly what RunEnd exists for.
package state

import "sync/atomic"

type Counters struct {
	hits int64
	cold int64
}

func (c *Counters) Hit() { atomic.AddInt64(&c.hits, 1) }

// Snapshot mixes a plain read into an atomically-updated field.
func (c *Counters) Snapshot() int64 {
	return c.hits // want "field hits is accessed via sync/atomic .* but non-atomically here"
}

// Cold is only ever accessed plainly: no discipline, no finding.
func (c *Counters) Cold() int64 { return c.cold }

// Gauge's field goes atomic here and plain in package user.
type Gauge struct {
	Val int64
}

func (g *Gauge) Bump() { atomic.AddInt64(&g.Val, 1) }

// Flags is the reverse direction: the plain access is here, the atomic
// access lives in package user, which imports this one.
type Flags struct {
	Bits uint32
}

func (f *Flags) Plain() uint32 {
	return f.Bits // want "field Bits is accessed via sync/atomic .* but non-atomically here"
}

// Hist proves the benign-use exemptions: len of an array field and an
// index-only range never observe element values.
type Hist struct {
	counts [4]int64
}

func (h *Hist) Inc(i int) { atomic.AddInt64(&h.counts[i], 1) }

func (h *Hist) Len() int { return len(h.counts) }

func (h *Hist) Sum() int64 {
	var s int64
	for i := range h.counts {
		s += atomic.LoadInt64(&h.counts[i])
	}
	return s
}
