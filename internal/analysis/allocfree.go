package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotpathFact marks a function whose declaration carries the
// //lint:hotpath contract, so hotpath callers in other packages can
// verify their callees are covered by the same gate.
type hotpathFact struct{}

func (*hotpathFact) AFact() {}

// Allocfree is the static half of the zero-allocation gate for the
// wire/observe hot paths (the runtime half is the paired -benchmem
// benchmarks behind `make bench-alloc`). A function whose doc comment
// contains a `//lint:hotpath` line must not contain constructs that
// heap-allocate:
//
//   - interface boxing of non-pointer-shaped values (call arguments,
//     assignments, returns, conversions)
//   - capturing function literals (closure contexts escape)
//   - fmt/errors/log calls (allocate per call; build errors as
//     package-level sentinels instead)
//   - append without a capacity hint (targets not created by a 3-arg
//     make in the same function may grow per call)
//   - non-constant string concatenation and string<->[]byte/[]rune
//     conversions
//   - make, new, &composite-literal, slice/map composite literals,
//     and go statements
//   - calls to module-internal functions not themselves marked
//     //lint:hotpath (the transitive contract, via the facts engine)
//
// Dynamic calls (function values, interface methods) and unmarked
// stdlib calls are assumed allocation-free; the benchmarks catch what
// the static over-approximation cannot see, and `//lint:ignore
// allocfree <reason>` documents the deliberate exceptions (amortized
// buffer growth).
var Allocfree = &Analyzer{
	Name:      "allocfree",
	Doc:       "forbid heap allocations in functions marked //lint:hotpath",
	FactTypes: []Fact{(*hotpathFact)(nil)},
	Run:       runAllocfree,
}

// isHotpathMarked reports whether the declaration's doc comment carries
// a //lint:hotpath line.
func isHotpathMarked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, "//lint:hotpath") {
			return true
		}
	}
	return false
}

func runAllocfree(pass *Pass) error {
	// Export facts for every marked function first, so same-package
	// hotpath calls verify regardless of declaration order.
	local := map[*types.Func]bool{}
	var marked []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpathMarked(fd) {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			local[fn] = true
			marked = append(marked, fd)
			pass.ExportObjectFact(fn, &hotpathFact{})
		}
	}
	for _, fd := range marked {
		checkHotpathBody(pass, fd, local)
	}
	return nil
}

func checkHotpathBody(pass *Pass, fd *ast.FuncDecl, local map[*types.Func]bool) {
	info := pass.TypesInfo
	hinted := hintedSlices(info, fd.Body)
	sig, _ := info.Defs[fd.Name].Type().(*types.Signature)
	concats := topStringConcats(info, fd.Body)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			checkHotpathCall(pass, x, hinted, local)
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && isStringType(info.TypeOf(x.Lhs[0])) {
				pass.Reportf(x.Pos(), "string += concatenation allocates in a //lint:hotpath function")
			}
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					if boxes(info, info.TypeOf(x.Lhs[i]), x.Rhs[i]) {
						pass.Reportf(x.Rhs[i].Pos(), "assignment boxes %s into an interface, allocating in a //lint:hotpath function", types.TypeString(info.TypeOf(x.Rhs[i]), nil))
					}
				}
			}
		case *ast.ValueSpec:
			if x.Type != nil {
				t := info.TypeOf(x.Type)
				for _, v := range x.Values {
					if boxes(info, t, v) {
						pass.Reportf(v.Pos(), "declaration boxes %s into an interface, allocating in a //lint:hotpath function", types.TypeString(info.TypeOf(v), nil))
					}
				}
			}
		case *ast.ReturnStmt:
			if sig != nil && sig.Results() != nil && len(x.Results) == sig.Results().Len() {
				for i, res := range x.Results {
					if boxes(info, sig.Results().At(i).Type(), res) {
						pass.Reportf(res.Pos(), "return boxes %s into an interface, allocating in a //lint:hotpath function", types.TypeString(info.TypeOf(res), nil))
					}
				}
			}
		case *ast.BinaryExpr:
			if concats[x] {
				pass.Reportf(x.Pos(), "string concatenation allocates in a //lint:hotpath function")
			}
		case *ast.FuncLit:
			if capturesOuter(info, fd, x) {
				pass.Reportf(x.Pos(), "capturing function literal allocates a closure context in a //lint:hotpath function")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, isLit := x.X.(*ast.CompositeLit); isLit {
					pass.Reportf(x.Pos(), "&composite literal escapes to the heap in a //lint:hotpath function")
				}
			}
		case *ast.CompositeLit:
			switch info.TypeOf(x).Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(x.Pos(), "slice/map composite literal allocates in a //lint:hotpath function")
			}
		case *ast.GoStmt:
			pass.Reportf(x.Pos(), "go statement allocates a goroutine in a //lint:hotpath function")
		}
		return true
	})
}

// checkHotpathCall vets one call expression: allocating builtins,
// allocating conversions, banned stdlib packages, unverified
// module-internal callees, and interface boxing of arguments.
func checkHotpathCall(pass *Pass, call *ast.CallExpr, hinted map[types.Object]bool, local map[*types.Func]bool) {
	info := pass.TypesInfo

	// Type conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		target := tv.Type
		if len(call.Args) == 1 {
			arg := call.Args[0]
			if boxes(info, target, arg) {
				pass.Reportf(call.Pos(), "conversion boxes %s into an interface, allocating in a //lint:hotpath function", types.TypeString(info.TypeOf(arg), nil))
				return
			}
			at := info.TypeOf(arg)
			if at != nil && convAllocates(target, at) {
				pass.Reportf(call.Pos(), "%s(%s) conversion allocates in a //lint:hotpath function", types.TypeString(target, nil), types.TypeString(at, nil))
			}
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := info.ObjectOf(id).(*types.Builtin); isB {
			switch id.Name {
			case "append":
				if len(call.Args) > 0 {
					root := rootIdent(call.Args[0])
					if root == nil || !hinted[info.ObjectOf(root)] {
						pass.Reportf(call.Pos(), "append without a same-function capacity hint may grow the backing array in a //lint:hotpath function")
					}
				}
			case "make":
				pass.Reportf(call.Pos(), "make allocates in a //lint:hotpath function")
			case "new":
				pass.Reportf(call.Pos(), "new allocates in a //lint:hotpath function")
			}
			return
		}
	}

	fn := calleeFunc(info, call)
	if fn == nil {
		return // dynamic call: function value or unresolvable; the benchmarks are the backstop
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return // interface method: dynamic dispatch, assumed covered by benchmarks
		}
	}
	if pkg := fn.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "fmt", "errors", "log":
			pass.Reportf(call.Pos(), "%s.%s allocates in a //lint:hotpath function; use package-level sentinels or preformatted values", pkg.Name(), fn.Name())
			return
		}
		if moduleInternal(pass.ModulePath, pkg.Path()) && !local[fn] {
			var hp hotpathFact
			if !pass.ImportObjectFact(fn, &hp) {
				pass.Reportf(call.Pos(), "//lint:hotpath function calls %s, which is not marked //lint:hotpath; mark it or suppress with a justification", funcDisplay(fn))
				return
			}
		}
	}
	checkArgBoxing(pass, call, fn)
}

// checkArgBoxing flags concrete non-pointer-shaped arguments passed to
// interface-typed parameters.
func checkArgBoxing(pass *Pass, call *ast.CallExpr, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic() && call.Ellipsis == token.NoPos:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case sig.Variadic():
			continue // f(xs...): the slice is passed as-is
		default:
			continue
		}
		if boxes(pass.TypesInfo, pt, arg) {
			pass.Reportf(arg.Pos(), "argument boxes %s into an interface, allocating in a //lint:hotpath function", types.TypeString(pass.TypesInfo.TypeOf(arg), nil))
		}
	}
}

// calleeFunc resolves a call's static target function, if any.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// hintedSlices finds locals initialized with a 3-arg make — the only
// append targets the analyzer trusts not to grow per call.
func hintedSlices(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	mark := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || len(call.Args) != 3 {
			return
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "make" {
			return
		}
		if _, isB := info.ObjectOf(id).(*types.Builtin); !isB {
			return
		}
		if lid, ok := lhs.(*ast.Ident); ok {
			if obj := info.ObjectOf(lid); obj != nil {
				out[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					mark(x.Lhs[i], x.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(x.Names) == len(x.Values) {
				for i := range x.Names {
					mark(x.Names[i], x.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// topStringConcats returns the maximal non-constant string-typed +
// expressions (a+b+c reports once, at the outermost +).
func topStringConcats(info *types.Info, body *ast.BlockStmt) map[*ast.BinaryExpr]bool {
	isConcat := func(e ast.Expr) *ast.BinaryExpr {
		b, ok := ast.Unparen(e).(*ast.BinaryExpr)
		if !ok || b.Op != token.ADD {
			return nil
		}
		tv := info.Types[b]
		if !isStringType(tv.Type) || tv.Value != nil {
			return nil
		}
		return b
	}
	all := map[*ast.BinaryExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			if b := isConcat(e); b != nil {
				all[b] = true
			}
		}
		return true
	})
	for b := range all {
		if inner := isConcat(b.X); inner != nil {
			delete(all, inner)
		}
		if inner := isConcat(b.Y); inner != nil {
			delete(all, inner)
		}
	}
	return all
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// pointerShaped reports whether values of t fit in an interface's data
// word without allocating: pointers, channels, maps, and functions.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// boxes reports whether assigning arg to a target of type target wraps
// a concrete non-pointer-shaped value in an interface, allocating.
func boxes(info *types.Info, target types.Type, arg ast.Expr) bool {
	if target == nil || !types.IsInterface(target) {
		return false
	}
	at := info.TypeOf(arg)
	if at == nil || types.IsInterface(at.Underlying()) {
		return false
	}
	if tv, ok := info.Types[arg]; ok && tv.IsNil() {
		return false
	}
	return !pointerShaped(at)
}

// convAllocates reports conversions that copy backing storage:
// string <-> []byte / []rune.
func convAllocates(target, arg types.Type) bool {
	tStr, aStr := isStringType(target), isStringType(arg)
	_, tSlice := target.Underlying().(*types.Slice)
	_, aSlice := arg.Underlying().(*types.Slice)
	return (tStr && aSlice) || (aStr && tSlice)
}

// capturesOuter reports whether the function literal references any
// object declared in the enclosing function outside the literal itself
// (package-level and universe objects do not force a closure context).
func capturesOuter(info *types.Info, outer *ast.FuncDecl, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		pos := obj.Pos()
		if pos >= outer.Pos() && pos < lit.Pos() {
			captured = true
		}
		return true
	})
	return captured
}
