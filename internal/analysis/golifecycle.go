package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Golifecycle flags `go` statements in non-test code that are not tied
// to any lifecycle mechanism. A goroutine is considered tied when
// either
//
//   - the enclosing function calls (*sync.WaitGroup).Add — the
//     convention here is wg.Add(1) before `go` and defer wg.Done()
//     inside — or
//   - the spawned function (a literal, or the body it go-calls) refers
//     to a sync.WaitGroup, selects/receives on a done channel, or
//     checks a context.Context's Done/Err.
//
// Untied goroutines leak past Close(), keep sockets alive between
// experiment repetitions, and make -race reports unreproducible, so
// every spawn must either join a WaitGroup or watch a cancellation
// signal.
var Golifecycle = &Analyzer{
	Name: "golifecycle",
	Doc:  "flag go statements not tied to a WaitGroup, done channel, or context",
	Run:  runGolifecycle,
}

func runGolifecycle(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			hasAdd := containsWaitGroupCall(pass, fn.Body, "Add")
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if hasAdd || goroutineIsTied(pass, g) {
					return true
				}
				pass.Reportf(g.Pos(), "goroutine is not tied to a WaitGroup, done channel, or context; it can outlive its owner")
				return true
			})
		}
	}
	return nil
}

// goroutineIsTied inspects the spawned function itself for lifecycle
// participation.
func goroutineIsTied(pass *Pass, g *ast.GoStmt) bool {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		// go obj.method() / go fn(): accept if a lifecycle-typed value
		// is the receiver or an argument (e.g. go run(ctx)).
		tied := false
		ast.Inspect(g.Call, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok && isLifecycleType(pass.TypesInfo.TypeOf(e)) {
				tied = true
			}
			return !tied
		})
		return tied
	}
	tied := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if isWaitGroupMethod(pass, sel, "Done") || isWaitGroupMethod(pass, sel, "Wait") {
					tied = true
				}
				if t := pass.TypesInfo.TypeOf(sel.X); isContextType(t) &&
					(sel.Sel.Name == "Done" || sel.Sel.Name == "Err" || sel.Sel.Name == "Deadline") {
					tied = true
				}
			}
		case *ast.UnaryExpr:
			// <-ch on any channel: a done/quit channel receive.
			if n.Op == token.ARROW {
				tied = true
			}
		}
		return !tied
	})
	return tied
}

// containsWaitGroupCall reports whether body calls the named method on
// a sync.WaitGroup.
func containsWaitGroupCall(pass *Pass, body *ast.BlockStmt, method string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isWaitGroupMethod(pass, sel, method) {
			found = true
		}
		return !found
	})
	return found
}

func isWaitGroupMethod(pass *Pass, sel *ast.SelectorExpr, method string) bool {
	if sel.Sel.Name != method {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	return isNamedType(t, "sync", "WaitGroup")
}

func isLifecycleType(t types.Type) bool {
	return isContextType(t) || isNamedType(t, "sync", "WaitGroup") || isChanType(t)
}

func isContextType(t types.Type) bool {
	return isNamedType(t, "context", "Context")
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func isNamedType(t types.Type, pkg, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkg
}
