package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of a single module using only
// the standard library: module-internal imports resolve by path mapping
// under the module root, and everything else (the stdlib) goes through
// the source importer. Test files are skipped — splicelint's invariants
// target production code.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	std  types.Importer
	pkgs map[string]*Package // by import path
	busy map[string]bool     // import cycle detection
}

// NewLoader builds a loader rooted at the directory holding go.mod.
func NewLoader(moduleRoot string) (*Loader, error) {
	abs, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: abs,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		busy:       map[string]bool{},
	}, nil
}

func readModulePath(goMod string) (string, error) {
	data, err := os.ReadFile(goMod)
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", goMod)
}

// Load resolves each pattern to packages and type-checks them. Patterns:
//
//	./...            every package under the module root
//	./dir/...        every package under dir
//	./dir            the single package in dir
//	path/to/dir      likewise, for an existing directory
//	mod/import/path  a module import path
//
// Directories named testdata, or whose name starts with "." or "_", are
// skipped by the ... walk (matching the go tool), but may be named
// directly — that is how the driver tests load fixture packages.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case strings.HasSuffix(pat, "/..."):
			root := strings.TrimSuffix(pat, "/...")
			if root == "." || root == "" {
				root = l.ModuleRoot
			} else {
				root = l.absDir(root)
			}
			expanded, err := l.walk(root)
			if err != nil {
				return nil, err
			}
			for _, d := range expanded {
				add(d)
			}
		default:
			add(l.absDir(pat))
		}
	}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// absDir maps a pattern element to an absolute directory: either an
// existing path (relative to the working directory or the module root)
// or a module import path.
func (l *Loader) absDir(pat string) string {
	if filepath.IsAbs(pat) {
		return filepath.Clean(pat)
	}
	if rest, ok := strings.CutPrefix(pat, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleRoot, rest)
	}
	if pat == l.ModulePath {
		return l.ModuleRoot
	}
	if st, err := os.Stat(pat); err == nil && st.IsDir() {
		abs, err := filepath.Abs(pat)
		if err == nil {
			return abs
		}
	}
	return filepath.Join(l.ModuleRoot, strings.TrimPrefix(pat, "./"))
}

// walk finds every directory under root containing non-test .go files.
func (l *Loader) walk(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// importPath maps an absolute directory to its module import path.
func (l *Loader) importPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleRoot)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks the package in dir, returning nil if
// the directory holds no non-test Go files.
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPath(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importerFunc(l.importFor)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Closure expands pkgs to their full module-internal dependency
// closure, drawing on the packages the loader already type-checked
// while resolving imports. The result is deterministic: the input
// packages in order, then the discovered dependencies sorted by import
// path. Analyzers that compute cross-package facts need the closure —
// a pattern like ./internal/sim must still see the helper packages the
// sim data path calls into.
func (l *Loader) Closure(pkgs []*Package) []*Package {
	seen := map[string]bool{}
	out := make([]*Package, 0, len(pkgs))
	for _, p := range pkgs {
		if !seen[p.Path] {
			seen[p.Path] = true
			out = append(out, p)
		}
	}
	var extra []string
	var visit func(t *types.Package)
	visit = func(t *types.Package) {
		path := t.Path()
		if seen[path] {
			return
		}
		seen[path] = true
		if dep, ok := l.pkgs[path]; ok {
			extra = append(extra, path)
			for _, imp := range dep.Types.Imports() {
				visit(imp)
			}
			return
		}
		// Not module-internal (stdlib): no syntax to analyze.
	}
	for _, p := range pkgs {
		for _, imp := range p.Types.Imports() {
			visit(imp)
		}
	}
	sort.Strings(extra)
	for _, path := range extra {
		out = append(out, l.pkgs[path])
	}
	return out
}

// importFor resolves an import encountered while type-checking:
// module-internal packages recurse through the loader, everything else
// is delegated to the stdlib source importer.
func (l *Loader) importFor(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.loadDir(l.absDir(path))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: no Go files in %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
