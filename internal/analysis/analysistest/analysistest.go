// Package analysistest is a golden-fixture harness for splicelint
// analyzers, modeled on golang.org/x/tools/go/analysis/analysistest
// but built only on the stdlib. Fixture files live under a testdata
// directory and carry expectations as trailing comments:
//
//	time.Now() // want "reads the wall clock"
//
// Each `// want "rx"` comment demands a finding on its line whose
// message matches the regexp; findings without a matching want, and
// wants without a matching finding, fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"p2psplice/internal/analysis"
)

// The stdlib source importer re-type-checks the standard library from
// source; share one across all fixture runs in the process.
var (
	stdOnce sync.Once
	stdFset *token.FileSet
	stdImp  types.Importer
)

func sharedImporter() (*token.FileSet, types.Importer) {
	stdOnce.Do(func() {
		stdFset = token.NewFileSet()
		stdImp = importer.ForCompiler(stdFset, "source", nil)
	})
	return stdFset, stdImp
}

// Run type-checks the fixture package in dir as if its import path were
// asPath (so analyzers with path-scoped Match fire), runs the analyzer,
// and compares findings against the // want comments. It returns the
// surviving findings so callers can make extra assertions.
func Run(t *testing.T, dir string, a *analysis.Analyzer, asPath string) []analysis.Finding {
	t.Helper()
	if a.Match != nil && !a.Match(asPath) {
		t.Fatalf("analyzer %s does not match package path %s; fixture would be vacuous", a.Name, asPath)
	}
	pkg, err := loadFixture(dir, asPath)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run([]*analysis.Analyzer{a}, []*analysis.Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	checkWants(t, pkg, findings)
	return findings
}

// RunNoMatch asserts the analyzer reports nothing for the fixture when
// loaded under a package path outside the analyzer's scope — the
// scoping half of the contract.
func RunNoMatch(t *testing.T, dir string, a *analysis.Analyzer, asPath string) {
	t.Helper()
	if a.Match == nil {
		t.Fatalf("analyzer %s has no Match; RunNoMatch is meaningless", a.Name)
	}
	if a.Match(asPath) {
		t.Fatalf("analyzer %s matches %s; pick an out-of-scope path", a.Name, asPath)
	}
	pkg, err := loadFixture(dir, asPath)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run([]*analysis.Analyzer{a}, []*analysis.Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("analyzer %s reported outside its scope (%s): %s", a.Name, asPath, f)
	}
}

// RunModule exercises an analyzer across a multi-package fixture: a
// miniature module whose packages live in subdirectories of dir. The
// paths map names each subdirectory's fake import path (fixture code
// imports the fake paths directly, e.g. `import
// "p2psplice/internal/helper"`). Packages are type-checked against each
// other — facts flow between them exactly as in a real module run — and
// // want comments are honored in every fixture file. It returns the
// engine's full result so callers can also assert on dead ignores.
func RunModule(t *testing.T, dir string, a *analysis.Analyzer, paths map[string]string) *analysis.Result {
	t.Helper()
	pkgs := loadModuleFixture(t, dir, paths)
	res, err := analysis.RunResult([]*analysis.Analyzer{a}, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	checkWantsAll(t, pkgs, res.Findings)
	return res
}

// loadModuleFixture type-checks every subdirectory fixture package under
// its fake import path, in dependency order (re-running until the
// importer has what it needs would be circular; instead the fixture
// importer recursively loads module-internal imports on demand).
func loadModuleFixture(t *testing.T, dir string, paths map[string]string) []*analysis.Package {
	t.Helper()
	fset, std := sharedImporter()
	fm := &fixtureModule{
		fset: fset,
		std:  std,
		dirs: map[string]string{},
		pkgs: map[string]*analysis.Package{},
	}
	var order []string
	for sub, path := range paths {
		fm.dirs[path] = filepath.Join(dir, sub)
		order = append(order, path)
	}
	sort.Strings(order)
	var pkgs []*analysis.Package
	for _, path := range order {
		pkg, err := fm.load(path)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

// fixtureModule resolves fake module-internal import paths to fixture
// subdirectories, and everything else through the stdlib source
// importer — the analysistest equivalent of the real Loader.
type fixtureModule struct {
	fset *token.FileSet
	std  types.Importer
	dirs map[string]string // fake import path -> fixture dir
	pkgs map[string]*analysis.Package
}

func (m *fixtureModule) Import(path string) (*types.Package, error) {
	if _, ok := m.dirs[path]; ok {
		pkg, err := m.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return m.std.Import(path)
}

func (m *fixtureModule) load(path string) (*analysis.Package, error) {
	if pkg, ok := m.pkgs[path]; ok {
		return pkg, nil
	}
	dir := m.dirs[path]
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(m.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysistest: no fixture files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: m}
	tpkg, err := conf.Check(path, m.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysistest: type-check %s: %w", dir, err)
	}
	pkg := &analysis.Package{Path: path, Dir: dir, Fset: m.fset, Files: files, Types: tpkg, Info: info}
	m.pkgs[path] = pkg
	return pkg, nil
}

// loadFixture parses and type-checks every .go file in dir as one
// package with import path asPath.
func loadFixture(dir, asPath string) (*analysis.Package, error) {
	fset, imp := sharedImporter()
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysistest: no fixture files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(asPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysistest: type-check %s: %w", dir, err)
	}
	return &analysis.Package{Path: asPath, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

var wantRE = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// checkWants matches findings against // want comments line by line.
func checkWants(t *testing.T, pkg *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	checkWantsAll(t, []*analysis.Package{pkg}, findings)
}

// checkWantsAll is checkWants over every package of a module fixture.
func checkWantsAll(t *testing.T, pkgs []*analysis.Package, findings []analysis.Finding) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
						rx, err := regexp.Compile(strings.ReplaceAll(m[1], `\"`, `"`))
						if err != nil {
							t.Fatalf("bad want regexp %q: %v", m[1], err)
						}
						pos := pkg.Fset.Position(c.Pos())
						wants[key{pos.Filename, pos.Line}] = append(wants[key{pos.Filename, pos.Line}], rx)
					}
				}
			}
		}
	}
	for _, f := range findings {
		k := key{f.File, f.Line}
		matched := -1
		for i, rx := range wants[k] {
			if rx.MatchString(f.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, rxs := range wants {
		for _, rx := range rxs {
			t.Errorf("%s:%d: want %q: no matching finding", k.file, k.line, rx)
		}
	}
}
