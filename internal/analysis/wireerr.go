package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Wireerr flags discarded error returns from encode/decode/read/write
// style calls in the protocol and transport packages. A swallowed wire
// error turns a half-written message or truncated read into silent
// corruption that surfaces much later as a bogus measurement; these
// packages must handle, propagate, or explicitly suppress (with a
// //lint:ignore justification) every such error.
var Wireerr = &Analyzer{
	Name: "wireerr",
	Doc:  "flag discarded errors from encode/decode/read/write calls in wire-facing packages",
	Match: matchPaths(
		"p2psplice/internal/wire",
		"p2psplice/internal/peer",
		"p2psplice/internal/tracker",
		"p2psplice/internal/cdn",
	),
	Run: runWireerr,
}

// wireVerbs are the name fragments (lower-cased match) identifying
// serialization and transport calls.
var wireVerbs = []string{"encode", "decode", "read", "write", "marshal", "unmarshal", "send", "recv"}

func runWireerr(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				// foo.Write(b) as a bare statement: all results dropped.
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name := wireCallDroppingError(pass, call); name != "" {
						pass.Reportf(call.Pos(), "error from %s is discarded; handle it or suppress with //lint:ignore wireerr <reason>", name)
					}
				}
			case *ast.AssignStmt:
				checkAssignDiscard(pass, n)
			case *ast.GoStmt:
				if name := wireCallDroppingError(pass, n.Call); name != "" {
					pass.Reportf(n.Call.Pos(), "error from %s is discarded by go statement; handle it in the goroutine", name)
				}
			case *ast.DeferStmt:
				if name := wireCallDroppingError(pass, n.Call); name != "" {
					pass.Reportf(n.Call.Pos(), "error from %s is discarded by defer; wrap it in a closure that checks the error", name)
				}
			}
			return true
		})
	}
	return nil
}

// checkAssignDiscard flags `_ = w.Write(b)` and `_, _ = x.Read(b)`
// forms where the error result lands in a blank identifier.
func checkAssignDiscard(pass *Pass, as *ast.AssignStmt) {
	// Only the single-call form (n LHS, 1 RHS call) places results
	// positionally; handle it plus the 1:1 form.
	if len(as.Rhs) == 1 && len(as.Lhs) >= 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		name, errIdx := wireCallErrorResult(pass, call)
		if name == "" {
			return
		}
		var errLHS ast.Expr
		if len(as.Lhs) == 1 && errIdx >= 0 {
			// single-value context: only valid if call has 1 result
			errLHS = as.Lhs[0]
		} else if errIdx < len(as.Lhs) {
			errLHS = as.Lhs[errIdx]
		}
		if id, ok := errLHS.(*ast.Ident); ok && id.Name == "_" {
			pass.Reportf(call.Pos(), "error from %s is assigned to _; handle it or suppress with //lint:ignore wireerr <reason>", name)
		}
		return
	}
	// n:n form: check each pair.
	if len(as.Rhs) == len(as.Lhs) {
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			name, errIdx := wireCallErrorResult(pass, call)
			if name == "" || errIdx != 0 {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
				pass.Reportf(call.Pos(), "error from %s is assigned to _; handle it or suppress with //lint:ignore wireerr <reason>", name)
			}
		}
	}
}

// wireCallDroppingError reports a wire-verb call that returns an error
// among its results (all of which the caller is dropping).
func wireCallDroppingError(pass *Pass, call *ast.CallExpr) string {
	name, errIdx := wireCallErrorResult(pass, call)
	if name == "" || errIdx < 0 {
		return ""
	}
	return name
}

// wireCallErrorResult identifies a call to a wire-verb function and the
// index of its error result, or ("", -1).
func wireCallErrorResult(pass *Pass, call *ast.CallExpr) (string, int) {
	name := calleeName(call)
	if name == "" || !hasWireVerb(name) {
		return "", -1
	}
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return "", -1
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return name, i
		}
	}
	return "", -1
}

func hasWireVerb(name string) bool {
	lower := strings.ToLower(name)
	for _, v := range wireVerbs {
		if strings.Contains(lower, v) {
			return true
		}
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}
