package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Mutexguard enforces the `// guards X` / `// guarded by mu` field
// comment convention. A field whose comment names a guarding mutex may
// only be read or written inside a function that either locks that
// mutex (a `.<mutex>.Lock()` or `.<mutex>.RLock()` call anywhere in the
// body) or advertises a caller-held lock by ending its name in
// "Locked". The check is flow-insensitive by design: it catches the
// common failure (a method touching guarded state with no locking at
// all) without a full happens-before analysis. It also flags guards
// comments naming fields that do not exist, so the annotations cannot
// rot.
//
// Recognized comment forms, on struct fields:
//
//	mu sync.Mutex // guards a, b and c
//	x  int        // guarded by mu
//	y  int        // ... guarded by node.mu: ...   (cross-object guard)
var Mutexguard = &Analyzer{
	Name: "mutexguard",
	Doc:  "flag guarded-field access in functions that never lock the guarding mutex",
	Run:  runMutexguard,
}

// guardInfo describes one struct's guard annotations.
type guardInfo struct {
	strct *types.Named
	// guardedBy maps a field name to the final component of its
	// guarding mutex path ("mu" for both `mu` and `node.mu`).
	guardedBy map[string]string
}

func runMutexguard(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkGuardedAccess(pass, fn, guards)
		}
	}
	return nil
}

// collectGuards parses guard comments from every struct type declared
// in the package.
func collectGuards(pass *Pass) []*guardInfo {
	var out []*guardInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Defs[ts.Name]
			if obj == nil {
				return true
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				return true
			}
			gi := &guardInfo{strct: named, guardedBy: map[string]string{}}
			fieldNames := map[string]bool{}
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, f := range st.Fields.List {
				text := fieldCommentText(f)
				if text == "" {
					continue
				}
				if mutexNames, ok := parseGuardsClause(text); ok && len(f.Names) > 0 {
					// `mu sync.Mutex // guards a, b` — f is the mutex.
					for _, g := range mutexNames {
						if !fieldNames[g] {
							pass.Reportf(f.Pos(), "guards comment names unknown field %q (struct %s)", g, ts.Name.Name)
							continue
						}
						gi.guardedBy[g] = f.Names[0].Name
					}
				}
				if mu, ok := parseGuardedByClause(text); ok {
					// `x int // guarded by mu` — f is the guarded field.
					for _, name := range f.Names {
						gi.guardedBy[name.Name] = mu
					}
				}
			}
			if len(gi.guardedBy) > 0 {
				out = append(out, gi)
			}
			return true
		})
	}
	return out
}

// fieldCommentText joins a field's doc and line comments.
func fieldCommentText(f *ast.Field) string {
	var parts []string
	if f.Doc != nil {
		parts = append(parts, f.Doc.Text())
	}
	if f.Comment != nil {
		parts = append(parts, f.Comment.Text())
	}
	return strings.Join(parts, " ")
}

// parseGuardsClause extracts field names from "guards a, b and c".
func parseGuardsClause(text string) ([]string, bool) {
	idx := strings.Index(text, "guards ")
	if idx < 0 {
		return nil, false
	}
	rest := text[idx+len("guards "):]
	if end := strings.IndexAny(rest, ".:;("); end >= 0 {
		rest = rest[:end]
	}
	var names []string
	for _, w := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\n' }) {
		if w == "and" || w == "" {
			continue
		}
		if !isIdentLike(w) {
			break // prose follows the field list
		}
		names = append(names, w)
	}
	return names, len(names) > 0
}

// parseGuardedByClause extracts the mutex's final path component from
// "guarded by mu" or "guarded by node.mu".
func parseGuardedByClause(text string) (string, bool) {
	idx := strings.Index(text, "guarded by ")
	if idx < 0 {
		return "", false
	}
	rest := text[idx+len("guarded by "):]
	fields := strings.FieldsFunc(rest, func(r rune) bool {
		return r == ' ' || r == ':' || r == ',' || r == ';' || r == ')' || r == '\n'
	})
	if len(fields) == 0 {
		return "", false
	}
	path := fields[0]
	if i := strings.LastIndex(path, "."); i >= 0 {
		path = path[i+1:]
	}
	if !isIdentLike(path) {
		return "", false
	}
	return path, true
}

func isIdentLike(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// checkGuardedAccess flags guarded-field selector accesses in fn when
// fn neither locks the guarding mutex nor is named *Locked.
func checkGuardedAccess(pass *Pass, fn *ast.FuncDecl, guards []*guardInfo) {
	if strings.HasSuffix(fn.Name.Name, "Locked") {
		return
	}
	locked := lockedMutexes(pass, fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv := pass.TypesInfo.TypeOf(sel.X)
		if recv == nil {
			return true
		}
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok {
			return true
		}
		for _, gi := range guards {
			if gi.strct.Obj() != named.Obj() {
				continue
			}
			mu, guarded := gi.guardedBy[sel.Sel.Name]
			if !guarded || locked[mu] {
				continue
			}
			pass.Reportf(sel.Pos(), "%s.%s is guarded by %q but %s never locks it (rename to %sLocked if the caller holds it)",
				named.Obj().Name(), sel.Sel.Name, mu, fn.Name.Name, fn.Name.Name)
		}
		return true
	})
}

// lockedMutexes collects the names of mutex fields that fn Lock()s or
// RLock()s anywhere in its body: a call shaped `<expr>.mu.Lock()`
// contributes "mu".
func lockedMutexes(pass *Pass, body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if ok {
			out[inner.Sel.Name] = true
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			out[id.Name] = true
		}
		return true
	})
	return out
}
