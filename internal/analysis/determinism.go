package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// DeterministicPackages lists the packages that must be bit-for-bit
// deterministic: the discrete-event simulator and everything on the
// simulated data path. The paper's GENI testbed results had to be
// averaged over repetitions because the testbed was not deterministic;
// our substitute claims to do better, so any wall-clock read, global
// (unseeded) RNG use, or order-sensitive map iteration in these
// packages silently invalidates the headline stall/startup figures.
// The list is the closure of the emulation data path: everything the
// experiment harness reaches, directly or through helpers, except the
// real-network stack (peer, tracker, shaper, cdn) whose wall-clock
// timing is the thing the emulation is compared against.
var DeterministicPackages = []string{
	"p2psplice/internal/sim",
	"p2psplice/internal/netem",
	"p2psplice/internal/simpeer",
	"p2psplice/internal/splicer",
	"p2psplice/internal/media",
	"p2psplice/internal/experiment",
	"p2psplice/internal/metrics",
	"p2psplice/internal/trace",
	"p2psplice/internal/fault",
	"p2psplice/internal/tracereport",
	"p2psplice/internal/core",
	"p2psplice/internal/container",
	"p2psplice/internal/topology",
	"p2psplice/internal/player",
	"p2psplice/internal/reputation",
}

// Determinism flags, inside the simulation-deterministic packages:
// wall-clock reads (time.Now, time.Since, time.Until), top-level
// math/rand functions (the process-global RNG; seeded *rand.Rand
// methods are fine), and for-range loops over maps that append to a
// variable declared outside the loop without a sort of that variable
// later in the same block.
var Determinism = &Analyzer{
	Name:  "determinism",
	Doc:   "forbid wall-clock reads, global RNG, and unsorted map-iteration output in deterministic packages",
	Match: matchPaths(DeterministicPackages...),
	Run:   runDeterminism,
}

// wall-clock functions in package time. time.Since and time.Until call
// time.Now internally, so they are just as nondeterministic.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// math/rand package-level functions that are allowed because they only
// construct explicitly seeded generators (the v2 source constructors
// included).
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterministicCall(pass, n)
			case *ast.RangeStmt:
				// handled with block context below
			}
			return true
		})
		for _, hit := range unsortedMapRanges(pass.TypesInfo, file) {
			pass.Reportf(hit.pos, "map iteration order feeds %q without a subsequent sort; iteration order is nondeterministic", hit.varName)
		}
	}
	return nil
}

// mapRangeHit is one `for range m` over a map whose body appends to an
// outer variable that is never sorted afterwards in the same block.
type mapRangeHit struct {
	pos     token.Pos
	varName string
}

// unsortedMapRanges finds the order-nondeterministic map-range
// construct anywhere under root. Map-range loops need the statement
// list around them to look for a later sort, so it walks blocks rather
// than single nodes. Shared by determinism (direct reporting) and
// detercall (as a taint source in helper packages).
func unsortedMapRanges(info *types.Info, root ast.Node) []mapRangeHit {
	var hits []mapRangeHit
	ast.Inspect(root, func(n ast.Node) bool {
		body, ok := blockStmts(n)
		if !ok {
			return true
		}
		for i, st := range body {
			rng, ok := st.(*ast.RangeStmt)
			if !ok {
				continue
			}
			hits = append(hits, checkMapRange(info, rng, body[i+1:])...)
		}
		return true
	})
	return hits
}

func checkDeterministicCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkgName, ok := selectorPackage(pass, sel)
	if !ok {
		return
	}
	switch pkgName.Imported().Path() {
	case "time":
		if wallClockFuncs[sel.Sel.Name] {
			pass.Reportf(call.Pos(), "time.%s reads the wall clock in a deterministic package; inject a clock instead", sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[sel.Sel.Name] {
			pass.Reportf(call.Pos(), "rand.%s uses the process-global RNG in a deterministic package; use a seeded *rand.Rand", sel.Sel.Name)
		}
	}
}

// selectorPackage resolves sel.X to an imported package name, if it is one.
func selectorPackage(pass *Pass, sel *ast.SelectorExpr) (*types.PkgName, bool) {
	return infoSelectorPackage(pass.TypesInfo, sel)
}

// infoSelectorPackage is selectorPackage for helpers that carry only a
// *types.Info.
func infoSelectorPackage(info *types.Info, sel *ast.SelectorExpr) (*types.PkgName, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return pn, ok
}

// checkMapRange returns a hit for `for ... := range m` over a map when
// the body appends to a variable declared outside the loop and no
// statement after the loop (in the same block) sorts that variable.
func checkMapRange(info *types.Info, rng *ast.RangeStmt, rest []ast.Stmt) []mapRangeHit {
	t := info.TypeOf(rng.X)
	if t == nil {
		return nil
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return nil
	}
	targets := outerAppendTargets(info, rng)
	if len(targets) == 0 {
		return nil
	}
	for _, st := range rest {
		for obj := range targets {
			if sortsVariable(info, st, obj) {
				delete(targets, obj)
			}
		}
	}
	var hits []mapRangeHit
	names := make([]string, 0, len(targets))
	for obj := range targets {
		names = append(names, obj.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		hits = append(hits, mapRangeHit{pos: rng.Pos(), varName: name})
	}
	return hits
}

// outerAppendTargets finds variables declared outside the loop that the
// loop body appends to.
func outerAppendTargets(info *types.Info, rng *ast.RangeStmt) map[types.Object]bool {
	targets := map[types.Object]bool{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltin(info, call.Fun, "append") || i >= len(as.Lhs) {
				continue
			}
			id := rootIdent(as.Lhs[i])
			if id == nil {
				continue
			}
			obj := info.ObjectOf(id)
			if obj == nil || obj.Pos() == token.NoPos {
				continue
			}
			// Declared outside the loop?
			if obj.Pos() < rng.Pos() || obj.Pos() > rng.End() {
				targets[obj] = true
			}
		}
		return true
	})
	return targets
}

// sortsVariable reports whether stmt calls a sort.* or slices.Sort*
// function mentioning obj.
func sortsVariable(info *types.Info, stmt ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pn, ok := infoSelectorPackage(info, sel)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			mentioned := false
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && info.ObjectOf(id) == obj {
					mentioned = true
				}
				return !mentioned
			})
			if mentioned {
				found = true
			}
		}
		return !found
	})
	return found
}

func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.ObjectOf(id).(*types.Builtin)
	return ok
}

// rootIdent unwraps x in expressions like x, x[i], x.f to the base
// identifier, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.IndexExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// blockStmts returns the statement list of block-bearing nodes.
func blockStmts(n ast.Node) ([]ast.Stmt, bool) {
	switch v := n.(type) {
	case *ast.BlockStmt:
		return v.List, true
	case *ast.CaseClause:
		return v.Body, true
	case *ast.CommClause:
		return v.Body, true
	}
	return nil, false
}
