// Package analysis is a stdlib-only static-analysis framework for this
// module, plus the splicelint analyzers that enforce its correctness
// invariants: simulation determinism (direct and transitive), mutex
// guard discipline, goroutine lifecycle hygiene, wire-level error
// handling, float comparison safety, hot-path allocation freedom, and
// atomic access discipline. It deliberately uses only go/ast, go/parser,
// go/token and go/types so the module keeps zero external dependencies.
//
// The framework is a miniature of golang.org/x/tools/go/analysis: each
// Analyzer inspects one type-checked package through a Pass, and
// analyzers that declare FactTypes participate in the cross-package
// facts engine — the engine visits packages in dependency order
// (imports first), an analyzer exports typed facts about functions or
// objects while visiting one package, and imports them while visiting
// the packages that depend on it. That is what lets detercall follow a
// call chain out of a deterministic package, through any number of
// helper packages, to a wall-clock read.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects a single type-checked
// package and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:ignore
	// suppression comments. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Match restricts *reporting* to packages whose import path it
	// accepts. Nil means every package. An analyzer with FactTypes is
	// still run over non-matching packages so it can compute facts
	// there; only its findings in those packages are discarded.
	Match func(pkgPath string) bool
	// FactTypes declares the fact types the analyzer exports and
	// imports, one zero value per type (pointers). Declaring any fact
	// type opts the analyzer into whole-module dependency-order
	// analysis.
	FactTypes []Fact
	// Run performs the analysis on one package.
	Run func(*Pass) error
	// RunEnd, if set, runs once after every package has been analyzed,
	// with access to the full fact store. It is where whole-module
	// checks that need both directions of the import graph (such as
	// atomicguard) report their findings.
	RunEnd func(*EndPass) error
}

// Pass carries one package's parsed and type-checked state to an
// analyzer, mirroring golang.org/x/tools/go/analysis.Pass in miniature.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// ModulePath is the import-path prefix identifying module-internal
	// packages (facts only exist for those).
	ModulePath string

	findings *[]Finding
	facts    *factStore
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportObjectFact attaches fact to obj for later passes of the same
// analyzer. The fact type must appear in the analyzer's FactTypes.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	p.facts.exportObject(p.Analyzer, obj, fact)
}

// ImportObjectFact copies the fact of fact's concrete type previously
// exported on obj into fact, reporting whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	return p.facts.importObject(p.Analyzer, obj, fact)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.facts.exportPackage(p.Analyzer, p.Pkg, fact)
}

// ImportPackageFact copies the fact previously exported on pkg into
// fact, reporting whether one existed.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	return p.facts.importPackage(p.Analyzer, pkg, fact)
}

// EndPass is the whole-module view handed to RunEnd after every
// package's Run has completed.
type EndPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Pkgs holds every analyzed package in dependency order.
	Pkgs       []*Package
	ModulePath string

	findings *[]Finding
	facts    *factStore
}

// Reportf records a finding at pos, which may lie in any analyzed
// package. Suppressions at the finding's file:line apply as usual.
func (p *EndPass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ObjectFacts returns every object fact this analyzer exported, in
// deterministic (position) order.
func (p *EndPass) ObjectFacts() []ObjectFact {
	return p.facts.objectFacts(p.Analyzer)
}

// ImportObjectFact copies the fact previously exported on obj into
// fact, reporting whether one existed.
func (p *EndPass) ImportObjectFact(obj types.Object, fact Fact) bool {
	return p.facts.importObject(p.Analyzer, obj, fact)
}

// Finding is one reported problem.
type Finding struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

// String formats the finding in the human-readable driver format.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Result is the full outcome of one engine run.
type Result struct {
	// Findings are the surviving (unsuppressed) findings, sorted by
	// position.
	Findings []Finding
	// DeadIgnores lists well-formed //lint:ignore comments that
	// suppressed no finding of any analyzer in this run. They are only
	// meaningful when every analyzer was enabled — a disabled analyzer
	// makes its suppressions look dead.
	DeadIgnores []Finding
}

// Run applies the analyzers to the packages and returns the surviving
// findings sorted by position. See RunResult for the full outcome.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Finding, error) {
	res, err := RunResult(analyzers, pkgs)
	if err != nil {
		return nil, err
	}
	return res.Findings, nil
}

// RunResult analyzes the packages in dependency order. For each
// package, every analyzer runs if its Match accepts the package path or
// if it declares FactTypes (facts must be computed everywhere); only
// findings in Match-accepted packages are kept. After all packages,
// each analyzer's RunEnd runs with the whole-module fact store.
// Suppression comments are collected across all packages and applied to
// the combined findings, so a RunEnd finding in package A is
// suppressible at its site even though it was discovered while
// finishing the whole-module pass.
func RunResult(analyzers []*Analyzer, pkgs []*Package) (*Result, error) {
	pkgs = depOrder(pkgs)
	modPath := modulePathOf(pkgs)
	facts := newFactStore()
	sup := collectSuppressions(pkgs)
	var all []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			matched := a.Match == nil || a.Match(pkg.Path)
			if !matched && len(a.FactTypes) == 0 {
				continue
			}
			var found []Finding
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.Info,
				ModulePath: modPath,
				findings:   &found,
				facts:      facts,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			if matched {
				all = append(all, found...)
			}
		}
	}
	for _, a := range analyzers {
		if a.RunEnd == nil {
			continue
		}
		var found []Finding
		end := &EndPass{
			Analyzer:   a,
			Fset:       fsetOf(pkgs),
			Pkgs:       pkgs,
			ModulePath: modPath,
			findings:   &found,
			facts:      facts,
		}
		if err := a.RunEnd(end); err != nil {
			return nil, fmt.Errorf("%s: finish: %w", a.Name, err)
		}
		all = append(all, found...)
	}

	var kept []Finding
	for _, f := range all {
		if sup.suppress(f) {
			continue
		}
		f.File = f.Pos.Filename
		f.Line = f.Pos.Line
		f.Col = f.Pos.Column
		kept = append(kept, f)
	}
	sortFindings(kept)
	dead := sup.dead()
	sortFindings(dead)
	return &Result{Findings: kept, DeadIgnores: dead}, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].File != fs[j].File {
			return fs[i].File < fs[j].File
		}
		if fs[i].Line != fs[j].Line {
			return fs[i].Line < fs[j].Line
		}
		if fs[i].Col != fs[j].Col {
			return fs[i].Col < fs[j].Col
		}
		return fs[i].Analyzer < fs[j].Analyzer
	})
}

// modulePathOf recovers the module path from the first package path
// segment ("p2psplice/internal/sim" -> "p2psplice"); fixture packages
// loaded under fake module-internal paths therefore behave like module
// code.
func modulePathOf(pkgs []*Package) string {
	for _, p := range pkgs {
		if i := strings.IndexByte(p.Path, '/'); i > 0 {
			return p.Path[:i]
		}
		return p.Path
	}
	return ""
}

func fsetOf(pkgs []*Package) *token.FileSet {
	for _, p := range pkgs {
		return p.Fset
	}
	return token.NewFileSet()
}

// supComment is one well-formed //lint:ignore comment; used records
// whether it silenced at least one finding during the run.
type supComment struct {
	pos   token.Position
	names []string
	used  bool
}

// suppressions indexes the comments by file name and by the lines they
// cover (the comment's own line and the line below it).
type suppressions struct {
	byLine map[string]map[int][]*supComment
	all    []*supComment
}

// collectSuppressions parses //lint:ignore comments across every
// package. The format is
//
//	//lint:ignore analyzer[,analyzer...] reason
//
// and the comment silences the named analyzers (or every analyzer, for
// the name "all") on its own line and on the line directly below, so it
// can sit either at the end of the offending line or just above it. A
// missing reason makes the suppression itself a finding, reported by
// the driver via BadSuppressions.
func collectSuppressions(pkgs []*Package) *suppressions {
	sup := &suppressions{byLine: map[string]map[int][]*supComment{}}
	for _, pkg := range pkgs {
		forEachIgnore(pkg.Fset, pkg.Files, func(pos token.Position, names []string, reason string) {
			if reason == "" {
				return // malformed: never silences anything
			}
			c := &supComment{pos: pos, names: names}
			sup.all = append(sup.all, c)
			byLine := sup.byLine[pos.Filename]
			if byLine == nil {
				byLine = map[int][]*supComment{}
				sup.byLine[pos.Filename] = byLine
			}
			byLine[pos.Line] = append(byLine[pos.Line], c)
			byLine[pos.Line+1] = append(byLine[pos.Line+1], c)
		})
	}
	return sup
}

// suppress reports whether a comment covers f, marking every covering
// comment as used.
func (s *suppressions) suppress(f Finding) bool {
	hit := false
	for _, c := range s.byLine[f.Pos.Filename][f.Pos.Line] {
		for _, name := range c.names {
			if name == "all" || name == f.Analyzer {
				c.used = true
				hit = true
			}
		}
	}
	return hit
}

// dead returns a finding for every comment that silenced nothing.
func (s *suppressions) dead() []Finding {
	var out []Finding
	for _, c := range s.all {
		if c.used {
			continue
		}
		out = append(out, Finding{
			Pos:      c.pos,
			File:     c.pos.Filename,
			Line:     c.pos.Line,
			Col:      c.pos.Column,
			Analyzer: "deadignore",
			Message: fmt.Sprintf("//lint:ignore %s suppresses no finding; delete the stale suppression",
				strings.Join(c.names, ",")),
		})
	}
	return out
}

// BadSuppressions reports //lint:ignore comments that lack a reason;
// an unexplained suppression is itself a finding so that silencing an
// analyzer always leaves a justification in the code.
func BadSuppressions(pkgs []*Package) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		forEachIgnore(pkg.Fset, pkg.Files, func(pos token.Position, names []string, reason string) {
			if reason != "" {
				return
			}
			out = append(out, Finding{
				Pos:      pos,
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: "suppression",
				Message:  "//lint:ignore comment needs a reason after the analyzer name(s)",
			})
		})
	}
	return out
}

// forEachIgnore invokes fn for every //lint:ignore comment.
func forEachIgnore(fset *token.FileSet, files []*ast.File, fn func(pos token.Position, names []string, reason string)) {
	const prefix = "//lint:ignore"
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, prefix))
				nameField, reason, _ := strings.Cut(rest, " ")
				if nameField == "" {
					continue
				}
				names := strings.Split(nameField, ",")
				fn(fset.Position(c.Pos()), names, strings.TrimSpace(reason))
			}
		}
	}
}

// matchPaths returns a Match function accepting packages whose import
// path equals, or is a sub-package of, one of the given paths.
func matchPaths(paths ...string) func(string) bool {
	return func(pkgPath string) bool {
		for _, p := range paths {
			if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
				return true
			}
		}
		return false
	}
}
