// Package analysis is a stdlib-only static-analysis framework for this
// module, plus the splicelint analyzers that enforce its correctness
// invariants: simulation determinism, mutex guard discipline, goroutine
// lifecycle hygiene, wire-level error handling, and float comparison
// safety. It deliberately uses only go/ast, go/parser, go/token and
// go/types so the module keeps zero external dependencies.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects a single type-checked
// package and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:ignore
	// suppression comments. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Match restricts the analyzer to packages whose import path it
	// accepts. Nil means every package.
	Match func(pkgPath string) bool
	// Run performs the analysis on one package.
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked state to an
// analyzer, mirroring golang.org/x/tools/go/analysis.Pass in miniature.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported problem.
type Finding struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

// String formats the finding in the human-readable driver format.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Run applies each analyzer whose Match accepts the package, filters
// suppressed findings, and returns the rest sorted by position.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Finding, error) {
	var all []Finding
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			var found []Finding
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				findings:  &found,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			for _, f := range found {
				if sup.suppressed(f) {
					continue
				}
				f.File = f.Pos.Filename
				f.Line = f.Pos.Line
				f.Col = f.Pos.Column
				all = append(all, f)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].File != all[j].File {
			return all[i].File < all[j].File
		}
		if all[i].Line != all[j].Line {
			return all[i].Line < all[j].Line
		}
		if all[i].Col != all[j].Col {
			return all[i].Col < all[j].Col
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, nil
}

// suppressions maps file name -> line -> analyzer names suppressed on
// that line (the comment's own line and the line below it).
type suppressions map[string]map[int][]string

// collectSuppressions parses //lint:ignore comments. The format is
//
//	//lint:ignore analyzer[,analyzer...] reason
//
// and the comment silences the named analyzers (or every analyzer, for
// the name "all") on its own line and on the line directly below, so it
// can sit either at the end of the offending line or just above it. A
// missing reason makes the suppression itself a finding, reported by
// the driver via BadSuppressions.
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := suppressions{}
	forEachIgnore(fset, files, func(pos token.Position, names []string, reason string) {
		if reason == "" {
			return // malformed: never silences anything
		}
		byLine := sup[pos.Filename]
		if byLine == nil {
			byLine = map[int][]string{}
			sup[pos.Filename] = byLine
		}
		byLine[pos.Line] = append(byLine[pos.Line], names...)
		byLine[pos.Line+1] = append(byLine[pos.Line+1], names...)
	})
	return sup
}

func (s suppressions) suppressed(f Finding) bool {
	for _, name := range s[f.Pos.Filename][f.Pos.Line] {
		if name == "all" || name == f.Analyzer {
			return true
		}
	}
	return false
}

// BadSuppressions reports //lint:ignore comments that lack a reason;
// an unexplained suppression is itself a finding so that silencing an
// analyzer always leaves a justification in the code.
func BadSuppressions(pkgs []*Package) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		forEachIgnore(pkg.Fset, pkg.Files, func(pos token.Position, names []string, reason string) {
			if reason != "" {
				return
			}
			out = append(out, Finding{
				Pos:      pos,
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: "suppression",
				Message:  "//lint:ignore comment needs a reason after the analyzer name(s)",
			})
		})
	}
	return out
}

// forEachIgnore invokes fn for every //lint:ignore comment.
func forEachIgnore(fset *token.FileSet, files []*ast.File, fn func(pos token.Position, names []string, reason string)) {
	const prefix = "//lint:ignore"
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, prefix))
				nameField, reason, _ := strings.Cut(rest, " ")
				if nameField == "" {
					continue
				}
				names := strings.Split(nameField, ",")
				fn(fset.Position(c.Pos()), names, strings.TrimSpace(reason))
			}
		}
	}
}

// matchPaths returns a Match function accepting packages whose import
// path equals, or is a sub-package of, one of the given paths.
func matchPaths(paths ...string) func(string) bool {
	return func(pkgPath string) bool {
		for _, p := range paths {
			if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
				return true
			}
		}
		return false
	}
}
