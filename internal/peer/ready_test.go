package peer

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestNodeReady walks the readiness lifecycle behind /readyz: a freshly
// seeded node with no peers is not ready (no live connections), becomes
// ready once a leecher connects, and reverts to not-ready after Close.
func TestNodeReady(t *testing.T) {
	m, blobs := testSwarmData(t, 4*time.Second, 2*time.Second)
	trk := newTracker(t)

	seeder, err := Seed(trk, m, blobs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer seeder.Close()
	if err := seeder.Ready(); err == nil || !strings.Contains(err.Error(), "connection") {
		t.Fatalf("lonely seeder Ready() = %v, want a no-connections error", err)
	}

	l, err := Join(trk, seeder.InfoHash(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := l.WaitComplete(ctx); err != nil {
		t.Fatal(err)
	}
	// Both ends of the established connection are ready.
	if err := seeder.Ready(); err != nil {
		t.Errorf("connected seeder Ready() = %v, want nil", err)
	}
	if err := l.Ready(); err != nil {
		t.Errorf("connected leecher Ready() = %v, want nil", err)
	}

	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Ready(); err == nil {
		t.Error("closed node still reports ready")
	}
	// The seeder sheds the dead connection and goes not-ready again.
	deadline := time.Now().Add(10 * time.Second)
	for seeder.Ready() == nil {
		if time.Now().After(deadline) {
			t.Fatal("seeder still ready 10s after its only peer closed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
