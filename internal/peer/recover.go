package peer

import (
	"time"

	"p2psplice/internal/tracker"
)

// This file holds the node's failure-recovery plumbing: per-address dial
// backoff so dead peers are not hammered every watchdog tick, and the
// reconnect pass that keeps a node attached to the swarm through peer
// churn and tracker outages.

const (
	// dialBackoffBase is the wait after the first failed dial to an
	// address; it doubles per consecutive failure up to dialBackoffCap.
	dialBackoffBase = 500 * time.Millisecond
	dialBackoffCap  = 15 * time.Second
)

// dialBackoff tracks consecutive dial failures to one address.
type dialBackoff struct {
	failures int
	next     time.Time // earliest permitted redial
}

// shouldDialLocked reports whether addr is outside its backoff window
// (n.mu held).
func (n *Node) shouldDialLocked(addr string, now time.Time) bool {
	st := n.dialState[addr]
	return st == nil || !now.Before(st.next)
}

// noteDialLocked records a dial outcome: success clears the address's
// backoff state, failure doubles it (n.mu held).
func (n *Node) noteDialLocked(addr string, now time.Time, err error) {
	if err == nil {
		delete(n.dialState, addr)
		return
	}
	st := n.dialState[addr]
	if st == nil {
		st = &dialBackoff{}
		n.dialState[addr] = st
	}
	st.failures++
	d := dialBackoffBase
	for i := 1; i < st.failures && d < dialBackoffCap; i++ {
		d *= 2
	}
	if d > dialBackoffCap {
		d = dialBackoffCap
	}
	st.next = now.Add(d)
}

// connectKnownPeers dials every listed peer this node is not already
// connected to, skipping addresses still inside a dial-backoff window.
func (n *Node) connectKnownPeers(peers []tracker.PeerInfo) {
	for _, p := range peers {
		if n.hasConn(p.PeerID) {
			continue
		}
		n.mu.Lock()
		ok := !n.closed && n.shouldDialLocked(p.Addr, time.Now())
		n.mu.Unlock()
		if !ok {
			continue
		}
		err := n.Connect(p.Addr)
		n.mu.Lock()
		n.noteDialLocked(p.Addr, time.Now(), err)
		n.mu.Unlock()
		if err != nil {
			n.nm.dialFails.Inc()
			n.cfg.Logf("peer %s: connect %s: %v", n.peerID, p.Addr, err)
		}
	}
}

// reconnectPeers re-dials cached swarm members the node has lost its
// connection to (watchdog tick). The cache survives tracker outages, so
// a node keeps healing its connection set even while the tracker is
// down; backoff keeps the retry cost of a genuinely dead peer bounded.
func (n *Node) reconnectPeers() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	cached := append([]tracker.PeerInfo(nil), n.cachedPeers...)
	n.mu.Unlock()
	n.connectKnownPeers(cached)
}
