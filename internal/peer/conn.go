package peer

import (
	"fmt"
	"net"
	"sync"
	"time"

	"p2psplice/internal/wire"
)

// conn is one established peer connection.
type conn struct {
	node   *Node
	id     wire.PeerID
	raw    net.Conn
	wmu    sync.Mutex   // serializes writes
	wr     *wire.Writer // reusable encode buffer, guarded by wmu
	mu     sync.Mutex   // guards have and closed
	have   []bool       // remote's bitfield
	closed bool

	// Upload-slot state: serving marks an occupied unchoke slot, waiting
	// marks membership in the choked-waiters queue, and lastServe drives
	// idle slot release.
	serving   bool      // guarded by node.mu
	waiting   bool      // guarded by node.mu
	lastServe time.Time // guarded by node.mu

	// choked (guarded by c.mu) records that the REMOTE choked us: it will
	// not answer requests until it unchokes.
	choked bool
}

// startConn registers the connection, exchanges bitfields, and runs the
// reader until the connection dies.
func (n *Node) startConn(raw net.Conn, id wire.PeerID) error {
	c := &conn{
		node: n,
		id:   id,
		raw:  raw,
		wr:   wire.NewWriter(raw),
		have: make([]bool, n.store.Segments()),
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		raw.Close()
		return fmt.Errorf("peer: node closed")
	}
	if _, dup := n.conns[id]; dup || id == n.peerID {
		n.mu.Unlock()
		raw.Close()
		return nil // already connected (simultaneous dial) or self
	}
	n.conns[id] = c
	n.mu.Unlock()

	if err := c.send(&wire.Message{Type: wire.MsgBitfield, Bitfield: wire.EncodeBitfield(n.store.Bitfield())}); err != nil {
		c.close()
		return err
	}

	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		err := c.readLoop()
		c.close()
		n.dropConn(c, err)
	}()
	return nil
}

// dropConn removes the connection and reschedules its downloads.
func (n *Node) dropConn(c *conn, err error) {
	var unchoke *conn
	n.mu.Lock()
	if n.conns[c.id] == c {
		delete(n.conns, c.id)
	}
	unchoke = n.releaseSlotLocked(c)
	if c.waiting {
		c.waiting = false
		for i, w := range n.chokedWaiters {
			if w == c {
				n.chokedWaiters = append(n.chokedWaiters[:i], n.chokedWaiters[i+1:]...)
				break
			}
		}
	}
	var orphaned []*segDownload
	for _, d := range n.active {
		if d.conn == c {
			orphaned = append(orphaned, d)
		}
	}
	for _, d := range orphaned {
		delete(n.active, d.index)
		n.est.Finish(n.now())
	}
	n.mu.Unlock()
	if unchoke != nil {
		if err := unchoke.send(&wire.Message{Type: wire.MsgUnchoke}); err != nil {
			unchoke.close()
		}
	}
	if err != nil {
		n.cfg.Logf("peer %s: conn %s: %v", n.peerID, c.id, err)
	}
	if len(orphaned) > 0 {
		n.schedule()
	}
}

// send writes one message, serialized against concurrent senders. The
// shared Writer keeps the steady-state send path allocation-free.
func (c *conn) send(m *wire.Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.wr == nil { // conns built by tests skip startConn
		c.wr = wire.NewWriter(c.raw)
	}
	return c.wr.WriteMsg(m)
}

// close shuts the underlying conn; safe to call multiple times.
func (c *conn) close() {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	c.mu.Unlock()
	if !already {
		_ = c.raw.Close()
	}
}

// isClosed reports whether close has run. The scheduler checks it
// before assigning a download: between close() and the asynchronous
// dropConn that removes the conn from n.conns, the dead conn is still
// listed and would otherwise be picked again.
func (c *conn) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// remoteHas reports whether the remote holds segment i.
func (c *conn) remoteHas(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return i >= 0 && i < len(c.have) && c.have[i]
}

// readLoop processes inbound messages until the connection fails. The
// Reader and Message are reused across iterations — every handler
// either finishes with the payload before the next read or copies it
// (onPiece copies into the download buffer, the bitfield is decoded
// into a fresh slice), so the aliasing is safe and the steady-state
// receive path is allocation-free.
func (c *conn) readLoop() error {
	rd := wire.NewReader(c.raw)
	var msg wire.Message
	for {
		m := &msg
		if err := rd.ReadInto(m); err != nil {
			return err
		}
		switch m.Type {
		case wire.MsgBitfield:
			have, err := wire.DecodeBitfield(m.Bitfield, c.node.store.Segments())
			if err != nil {
				return err
			}
			c.mu.Lock()
			copy(c.have, have)
			c.mu.Unlock()
			c.node.schedule()
		case wire.MsgHave:
			idx := int(m.Index)
			if idx >= c.node.store.Segments() {
				return fmt.Errorf("peer: have for segment %d of %d", idx, c.node.store.Segments())
			}
			c.mu.Lock()
			c.have[idx] = true
			c.mu.Unlock()
			c.node.schedule()
		case wire.MsgRequest:
			if err := c.serveBlock(m); err != nil {
				return err
			}
		case wire.MsgPiece:
			c.node.onPiece(c, m)
		case wire.MsgChoke:
			c.mu.Lock()
			c.choked = true
			c.mu.Unlock()
			c.node.abandonDownloadsOn(c)
		case wire.MsgUnchoke:
			c.mu.Lock()
			c.choked = false
			c.mu.Unlock()
			c.node.schedule()
		case wire.MsgCancel, wire.MsgKeepAlive,
			wire.MsgInterested, wire.MsgNotInterested:
			// Accepted for protocol compatibility.
		default:
			return fmt.Errorf("peer: unexpected message %s", m.Type)
		}
	}
}

// serveBlock answers a block request from the store, subject to the
// node's upload slots: a requester that cannot get a slot is choked and
// retries after MsgUnchoke.
func (c *conn) serveBlock(m *wire.Message) error {
	n := c.node
	n.mu.Lock()
	if !c.serving {
		if n.servingConns < n.cfg.MaxUploadSlots {
			c.serving = true
			n.servingConns++
		} else {
			if !c.waiting {
				c.waiting = true
				n.chokedWaiters = append(n.chokedWaiters, c)
			}
			n.mu.Unlock()
			return c.send(&wire.Message{Type: wire.MsgChoke})
		}
	}
	c.lastServe = time.Now()
	dup := n.serveDuplicate
	n.mu.Unlock()

	data, err := n.store.Block(int(m.Index), int(m.Offset), int(m.Length))
	if err != nil {
		// Requests for data we do not hold indicate a confused or hostile
		// peer; drop the connection rather than serve garbage.
		return err
	}
	sends := 1
	if dup {
		// Duplicated-delivery fault window: every PIECE goes out twice.
		// The receiver's block ledger must count it once.
		sends = 2
	}
	for i := 0; i < sends; i++ {
		if err := c.send(&wire.Message{
			Type:   wire.MsgPiece,
			Index:  m.Index,
			Offset: m.Offset,
			Data:   data,
		}); err != nil {
			return err
		}
	}
	n.mu.Lock()
	n.stats.UploadedBytes += int64(sends) * int64(len(data))
	n.mu.Unlock()
	return nil
}

// remoteChoked reports whether the remote has choked us.
func (c *conn) remoteChoked() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.choked
}

// releaseSlotLocked frees c's upload slot (node.mu held) and returns the
// waiter to unchoke, if any.
func (n *Node) releaseSlotLocked(c *conn) *conn {
	if !c.serving {
		return nil
	}
	c.serving = false
	n.servingConns--
	for len(n.chokedWaiters) > 0 {
		next := n.chokedWaiters[0]
		n.chokedWaiters = n.chokedWaiters[1:]
		next.waiting = false
		if n.conns[next.id] == next {
			next.serving = true
			next.lastServe = time.Now()
			n.servingConns++
			return next
		}
	}
	return nil
}

// reapIdleSlots releases slots whose holders have gone quiet and unchokes
// waiters. Driven by the node watchdog.
func (n *Node) reapIdleSlots() {
	const idleRelease = 2 * time.Second
	var unchoke []*conn
	n.mu.Lock()
	for _, c := range n.conns {
		if c.serving && time.Since(c.lastServe) > idleRelease {
			if next := n.releaseSlotLocked(c); next != nil {
				unchoke = append(unchoke, next)
			}
		}
	}
	n.mu.Unlock()
	for _, c := range unchoke {
		if err := c.send(&wire.Message{Type: wire.MsgUnchoke}); err != nil {
			c.close()
		}
	}
}

// abandonDownloadsOn reschedules in-flight downloads assigned to a conn
// that just choked us.
func (n *Node) abandonDownloadsOn(c *conn) {
	n.mu.Lock()
	var orphaned []int
	for idx, d := range n.active {
		if d.conn == c {
			orphaned = append(orphaned, idx)
		}
	}
	for _, idx := range orphaned {
		delete(n.active, idx)
		n.est.Finish(n.now())
	}
	n.mu.Unlock()
	if len(orphaned) > 0 {
		n.schedule()
	}
}

// broadcastHave tells every peer we now hold segment idx.
func (n *Node) broadcastHave(idx int) {
	n.mu.Lock()
	conns := make([]*conn, 0, len(n.conns))
	for _, c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	for _, c := range conns {
		if err := c.send(&wire.Message{Type: wire.MsgHave, Index: uint32(idx)}); err != nil {
			c.close()
		}
	}
}
