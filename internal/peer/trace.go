package peer

import (
	"time"

	"p2psplice/internal/player"
	"p2psplice/internal/trace"
)

// nodeMetrics bundles the node's counter/gauge handles. A nil
// Config.Metrics registry hands out no-op handles, so instrumented call
// sites never branch on whether metrics are enabled.
type nodeMetrics struct {
	schedCalls  trace.Counter
	launches    trace.Counter
	blocksRx    trace.Counter
	bytesRx     trace.Counter
	segsDone    trace.Counter
	verifyFails trace.Counter
	storeFails  trace.Counter
	expired     trace.Counter
	stalls      trace.Counter
	activeDowns trace.Gauge
	// Recovery-path counters: failed tracker announces and failed peer
	// dials (post-backoff attempts included).
	announceFails trace.Counter
	dialFails     trace.Counter
	// Reputation counters: penalties recorded against remote peers and
	// quarantine windows opened.
	repPenalties trace.Counter
	quarantines  trace.Counter

	// QoE/transport histograms (the distributions the paper's figures
	// summarize, live on a real node). All are nil-safe no-ops without a
	// registry, like the counters above.
	startup     trace.Histogram // p2p_startup_seconds
	segSeconds  trace.Histogram // p2p_segment_download_seconds{scheme=...}
	segBytes    trace.Histogram // p2p_segment_bytes{scheme=...}
	poolK       trace.Histogram // p2p_pool_size_k
	announceRTT trace.Histogram // p2p_announce_rtt_seconds
	// stallSeconds maps each attributable cause to its labeled duration
	// histogram; the cause set is closed (trace.StallCauses), so every
	// series registers up front and the recording path never takes the
	// registry lock.
	stallSeconds map[string]trace.Histogram
}

func newNodeMetrics(r *trace.Registry, scheme string) nodeMetrics {
	nm := nodeMetrics{
		schedCalls:  r.Counter("sched_calls"),
		launches:    r.Counter("sched_launches"),
		blocksRx:    r.Counter("blocks_rx"),
		bytesRx:     r.Counter("bytes_rx"),
		segsDone:    r.Counter("segments_done"),
		verifyFails: r.Counter("verify_failures"),
		storeFails:  r.Counter("store_failures"),
		expired:     r.Counter("downloads_expired"),
		stalls:      r.Counter("stalls"),
		activeDowns: r.Gauge("active_downloads"),

		announceFails: r.Counter("announce_failures"),
		dialFails:     r.Counter("dial_failures"),
		repPenalties:  r.Counter("rep_penalties"),
		quarantines:   r.Counter("rep_quarantines"),
	}
	if r == nil {
		return nm
	}
	schemeLabel := ""
	if scheme != "" {
		schemeLabel = `{scheme="` + scheme + `"}`
	}
	r.SetHelp("p2p_startup_seconds", "Time from join to first rendered frame.")
	r.SetHelp("p2p_stall_seconds", "Playback stall durations by attributed cause.")
	r.SetHelp("p2p_segment_download_seconds", "Per-segment transfer latency.")
	r.SetHelp("p2p_segment_bytes", "Per-segment wire size.")
	r.SetHelp("p2p_pool_size_k", "Equation 1 pool-size decisions.")
	r.SetHelp("p2p_announce_rtt_seconds", "Tracker announce round-trip time (successful announces).")
	nm.startup = r.SecondsHistogram("p2p_startup_seconds")
	nm.segSeconds = r.SecondsHistogram("p2p_segment_download_seconds" + schemeLabel)
	nm.segBytes = r.Histogram("p2p_segment_bytes" + schemeLabel)
	nm.poolK = r.Histogram("p2p_pool_size_k")
	nm.announceRTT = r.SecondsHistogram("p2p_announce_rtt_seconds")
	nm.stallSeconds = make(map[string]trace.Histogram, 8)
	for _, cause := range trace.StallCauses() {
		nm.stallSeconds[cause] = r.SecondsHistogram(`p2p_stall_seconds{cause="` + cause + `"}`)
	}
	return nm
}

// stallFor returns the duration histogram for a cause (no-op when
// unmetered).
func (nm nodeMetrics) stallFor(cause string) trace.Histogram { return nm.stallSeconds[cause] }

// emitAt sends one trace event at the given playback-clock time. A node
// without a tracer pays only this nil check.
func (n *Node) emitAt(at time.Duration, cat, name string, seg int, args ...trace.Arg) {
	if !n.tr.Enabled() {
		return
	}
	n.tr.Emit(trace.Event{At: at, Peer: -1, Seg: seg, Cat: cat, Name: name, Args: args})
}

// playbackTransitionLocked receives player state changes. It always runs
// with n.mu held: every player call on a published node happens under the
// node lock, and the observer fires synchronously from those calls.
func (n *Node) playbackTransitionLocked(t player.Transition) {
	switch {
	case t.From == player.StateWaiting && t.To == player.StatePlaying:
		n.emitAt(t.At, trace.CatPlayer, trace.EvStartup, -1,
			trace.Int64("startup_us", t.At.Microseconds()))
		n.nm.startup.ObserveDuration(t.At)
	case t.To == player.StateStalled:
		n.nm.stalls.Inc()
		cause := n.stallCauseLocked()
		n.openStallAt, n.openStallCause = t.At, cause
		n.emitAt(t.At, trace.CatPlayer, trace.EvStallBegin, -1)
		n.emitAt(t.At, trace.CatPlayer, trace.EvStallCause, -1,
			trace.Str("cause", cause),
			trace.Int64("inflight", int64(len(n.active))))
	case t.From == player.StateStalled && t.To == player.StatePlaying:
		n.emitAt(t.At, trace.CatPlayer, trace.EvStallEnd, -1)
		n.closeOpenStallLocked(t.At)
	case t.To == player.StateFinished:
		n.emitAt(t.At, trace.CatPlayer, trace.EvFinished, -1)
		if t.From == player.StateStalled {
			n.closeOpenStallLocked(t.At)
		}
	}
}

// closeOpenStallLocked records the finished stall's duration into its
// cause-labeled histogram (n.mu held).
func (n *Node) closeOpenStallLocked(at time.Duration) {
	if n.openStallCause == "" {
		return
	}
	n.nm.stallFor(n.openStallCause).ObserveDuration(at - n.openStallAt)
	n.openStallCause = ""
}

// stallCauseLocked attributes a beginning stall to its proximate cause by
// inspecting the download pool and connection set (n.mu held).
func (n *Node) stallCauseLocked() string {
	if len(n.active) > 0 {
		// Every in-flight download rides a quarantined source: the
		// escape hatch kept liveness, but the pool is degraded to its
		// least-trusted serving set.
		if n.allActiveQuarantinedLocked() {
			return trace.CausePeerQuarantined
		}
		// Downloads are in flight but did not outrun the playhead.
		return trace.CauseSlowFlow
	}
	next := -1
	for i := 0; i < n.store.Segments(); i++ {
		if !n.store.Have(i) {
			next = i
			break
		}
	}
	if next < 0 {
		return trace.CauseSlowFlow // store complete; playhead will catch up
	}
	holders, choked, quarantined := 0, 0, 0
	for _, c := range n.conns {
		if c.remoteHas(next) {
			holders++
			if c.remoteChoked() {
				choked++
			}
			if n.rep.Quarantined(c.id, n.now()) {
				quarantined++
			}
		}
	}
	switch {
	case holders == 0:
		if n.trackerDown {
			// No connected peer holds the segment and the tracker is
			// unreachable, so no new holder can be discovered: the outage
			// is the binding constraint.
			return trace.CauseTrackerDown
		}
		return trace.CauseNoSource
	case quarantined == holders:
		// Holders exist but reputation has every one of them in
		// quarantine: progress waits on probation or on the escape
		// hatch's next pick.
		return trace.CausePeerQuarantined
	case choked == holders:
		return trace.CauseChokedSources
	default:
		// A willing source exists yet nothing is in flight: the scheduler
		// left the pool empty (the failure mode of the old scan budget).
		return trace.CauseEmptyPool
	}
}

// allActiveQuarantinedLocked reports whether every in-flight download's
// source is quarantined right now (n.mu held).
func (n *Node) allActiveQuarantinedLocked() bool {
	now := n.now()
	for _, d := range n.active {
		if !n.rep.Quarantined(d.conn.id, now) {
			return false
		}
	}
	return len(n.active) > 0
}
