package peer

import (
	"context"
	"net"
	"testing"
	"time"

	"p2psplice/internal/wire"
)

// evilPeer accepts swarm connections, claims to hold every segment, and
// serves garbage bytes of the correct length for every request.
type evilPeer struct {
	ln       net.Listener
	infoHash wire.InfoHash
	segments int
	served   chan struct{} // closed once it has served at least one block
}

func startEvilPeer(t *testing.T, ih wire.InfoHash, segments int) *evilPeer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	e := &evilPeer{ln: ln, infoHash: ih, segments: segments, served: make(chan struct{})}
	go e.run()
	t.Cleanup(func() { ln.Close() })
	return e
}

func (e *evilPeer) run() {
	servedOnce := false
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return
		}
		go func(c net.Conn) {
			defer c.Close()
			if _, err := wire.ReadHandshake(c); err != nil {
				return
			}
			var id wire.PeerID
			copy(id[:], "EVILEVILEVILEVILEVIL")
			if err := wire.WriteHandshake(c, wire.Handshake{InfoHash: e.infoHash, PeerID: id}); err != nil {
				return
			}
			have := make([]bool, e.segments)
			for i := range have {
				have[i] = true
			}
			if err := wire.Write(c, &wire.Message{Type: wire.MsgBitfield, Bitfield: wire.EncodeBitfield(have)}); err != nil {
				return
			}
			for {
				m, err := wire.Read(c)
				if err != nil {
					return
				}
				if m.Type != wire.MsgRequest {
					continue
				}
				garbage := make([]byte, m.Length)
				for i := range garbage {
					garbage[i] = 0x66
				}
				if err := wire.Write(c, &wire.Message{
					Type: wire.MsgPiece, Index: m.Index, Offset: m.Offset, Data: garbage,
				}); err != nil {
					return
				}
				if !servedOnce {
					servedOnce = true
					close(e.served)
				}
			}
		}(c)
	}
}

func TestViewerSurvivesMaliciousPeer(t *testing.T) {
	m, blobs := testSwarmData(t, 4*time.Second, 2*time.Second)
	trk := newTracker(t)
	seeder, err := Seed(trk, m, blobs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer seeder.Close()

	evil := startEvilPeer(t, seeder.InfoHash(), len(blobs))

	cfg := fastConfig()
	cfg.DownloadTimeout = 2 * time.Second
	viewer, err := Join(trk, seeder.InfoHash(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer viewer.Close()
	// Connect the viewer to the malicious peer directly (as if the tracker
	// had listed it).
	if err := viewer.Connect(evil.ln.Addr().String()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	select {
	case <-evil.served:
	case <-ctx.Done():
		t.Log("note: evil peer was never asked for a block (scheduler preferred the seeder)")
	}
	if err := viewer.WaitComplete(ctx); err != nil {
		t.Fatalf("viewer failed to complete despite honest seeder: %v", err)
	}
	// Every stored segment must verify against the manifest — garbage from
	// the malicious peer may have been received but never stored.
	for i := range blobs {
		blob, err := viewer.Store().Block(i, 0, viewer.Store().SegmentSize(i))
		if err != nil {
			t.Fatalf("segment %d: %v", i, err)
		}
		if err := m.VerifySegment(i, blob); err != nil {
			t.Errorf("segment %d stored corrupt: %v", i, err)
		}
	}
}

func TestInboundRejectsWrongSwarm(t *testing.T) {
	m, blobs := testSwarmData(t, 4*time.Second, 2*time.Second)
	trk := newTracker(t)
	seeder, err := Seed(trk, m, blobs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer seeder.Close()

	c, err := net.DialTimeout("tcp", seeder.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wrong wire.InfoHash
	wrong[0] = 0xFF
	var id wire.PeerID
	if err := wire.WriteHandshake(c, wire.Handshake{InfoHash: wrong, PeerID: id}); err != nil {
		t.Fatal(err)
	}
	// The seeder must close the connection without handshaking back.
	_ = c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := wire.ReadHandshake(c); err == nil {
		t.Error("seeder handshook with a wrong-swarm peer")
	}
}

func TestServeUnknownBlockDropsConn(t *testing.T) {
	m, blobs := testSwarmData(t, 4*time.Second, 2*time.Second)
	trk := newTracker(t)
	seeder, err := Seed(trk, m, blobs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer seeder.Close()

	c, err := net.DialTimeout("tcp", seeder.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var id wire.PeerID
	copy(id[:], "PROBEPROBEPROBEPROBE")
	if err := wire.WriteHandshake(c, wire.Handshake{InfoHash: seeder.InfoHash(), PeerID: id}); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadHandshake(c); err != nil {
		t.Fatal(err)
	}
	// Request a block far outside any segment: the seeder must drop us.
	if err := wire.Write(c, &wire.Message{Type: wire.MsgRequest, Index: 9999, Offset: 0, Length: 16384}); err != nil {
		t.Fatal(err)
	}
	_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		if _, err := wire.Read(c); err != nil {
			return // connection closed or reset: correct
		}
	}
}

// silentPeer claims every segment but never answers requests, forcing the
// downloader's watchdog to expire the stalled transfers.
func startSilentPeer(t *testing.T, ih wire.InfoHash, segments int) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				if _, err := wire.ReadHandshake(c); err != nil {
					return
				}
				var id wire.PeerID
				copy(id[:], "SILENTSILENTSILENTSI")
				if err := wire.WriteHandshake(c, wire.Handshake{InfoHash: ih, PeerID: id}); err != nil {
					return
				}
				have := make([]bool, segments)
				for i := range have {
					have[i] = true
				}
				_ = wire.Write(c, &wire.Message{Type: wire.MsgBitfield, Bitfield: wire.EncodeBitfield(have)})
				// Read requests forever, never answering.
				for {
					if _, err := wire.Read(c); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func TestDownloadTimeoutRecovers(t *testing.T) {
	m, blobs := testSwarmData(t, 4*time.Second, 2*time.Second)
	trk := newTracker(t)

	// Publish the swarm, then take the seeder away so the silent peer is
	// the only source at join time.
	seeder, err := Seed(trk, m, blobs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	ih := seeder.InfoHash()
	if err := seeder.Close(); err != nil {
		t.Fatal(err)
	}

	silent := startSilentPeer(t, ih, len(blobs))

	cfg := fastConfig()
	cfg.DownloadTimeout = 1 * time.Second
	viewer, err := Join(trk, ih, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer viewer.Close()
	if err := viewer.Connect(silent.Addr().String()); err != nil {
		t.Fatal(err)
	}

	// Give the viewer time to request from the silent peer and time out.
	time.Sleep(1500 * time.Millisecond)

	// Now a real seeder returns (same manifest, same info hash).
	seeder2, err := Seed(trk, m, blobs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer seeder2.Close()
	if seeder2.InfoHash() != ih {
		t.Fatalf("republish changed info hash")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := viewer.WaitComplete(ctx); err != nil {
		t.Fatalf("viewer never recovered from the silent peer: %v", err)
	}
}

// probeConn is a minimal hand-driven wire client for protocol tests.
type probeConn struct {
	c net.Conn
}

func dialProbe(t *testing.T, addr string, ih wire.InfoHash, tag string) *probeConn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var id wire.PeerID
	copy(id[:], tag)
	if err := wire.WriteHandshake(c, wire.Handshake{InfoHash: ih, PeerID: id}); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadHandshake(c); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &probeConn{c: c}
}

// readUntil returns the first message of one of the wanted types, skipping
// others (bitfield, have, ...).
func (p *probeConn) readUntil(t *testing.T, want ...wire.MessageType) *wire.Message {
	t.Helper()
	_ = p.c.SetReadDeadline(time.Now().Add(10 * time.Second))
	for {
		m, err := wire.Read(p.c)
		if err != nil {
			t.Fatalf("probe read: %v", err)
		}
		for _, w := range want {
			if m.Type == w {
				return m
			}
		}
	}
}

func TestUploadSlotsChokeAndUnchoke(t *testing.T) {
	m, blobs := testSwarmData(t, 4*time.Second, 2*time.Second)
	cfg := fastConfig()
	cfg.MaxUploadSlots = 1
	trk := newTracker(t)
	seeder, err := Seed(trk, m, blobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer seeder.Close()

	// Probe 1 takes the only slot.
	p1 := dialProbe(t, seeder.Addr(), seeder.InfoHash(), "PROBE-ONE-PROBE-ONE-")
	if err := wire.Write(p1.c, &wire.Message{Type: wire.MsgRequest, Index: 0, Offset: 0, Length: 1024}); err != nil {
		t.Fatal(err)
	}
	if got := p1.readUntil(t, wire.MsgPiece, wire.MsgChoke); got.Type != wire.MsgPiece {
		t.Fatalf("probe 1 got %s, want piece", got.Type)
	}

	// Probe 2 must be choked while probe 1 holds the slot.
	p2 := dialProbe(t, seeder.Addr(), seeder.InfoHash(), "PROBE-TWO-PROBE-TWO-")
	if err := wire.Write(p2.c, &wire.Message{Type: wire.MsgRequest, Index: 0, Offset: 0, Length: 1024}); err != nil {
		t.Fatal(err)
	}
	if got := p2.readUntil(t, wire.MsgPiece, wire.MsgChoke); got.Type != wire.MsgChoke {
		t.Fatalf("probe 2 got %s, want choke", got.Type)
	}

	// Probe 1 disconnects: its slot must pass to probe 2 via unchoke.
	p1.c.Close()
	if got := p2.readUntil(t, wire.MsgUnchoke); got.Type != wire.MsgUnchoke {
		t.Fatalf("probe 2 got %s, want unchoke", got.Type)
	}
	// And probe 2 can now be served.
	if err := wire.Write(p2.c, &wire.Message{Type: wire.MsgRequest, Index: 0, Offset: 0, Length: 1024}); err != nil {
		t.Fatal(err)
	}
	if got := p2.readUntil(t, wire.MsgPiece, wire.MsgChoke); got.Type != wire.MsgPiece {
		t.Fatalf("probe 2 after unchoke got %s, want piece", got.Type)
	}
}

func TestSwarmCompletesUnderTightUploadSlots(t *testing.T) {
	m, blobs := testSwarmData(t, 6*time.Second, 2*time.Second)
	cfg := fastConfig()
	cfg.MaxUploadSlots = 1
	trk := newTracker(t)
	seeder, err := Seed(trk, m, blobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer seeder.Close()
	var viewers []*Node
	for i := 0; i < 3; i++ {
		v, err := Join(trk, seeder.InfoHash(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer v.Close()
		viewers = append(viewers, v)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i, v := range viewers {
		if err := v.WaitComplete(ctx); err != nil {
			t.Fatalf("viewer %d starved under slot pressure: %v", i, err)
		}
	}
}
