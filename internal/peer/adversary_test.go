package peer

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"p2psplice/internal/fault"
	"p2psplice/internal/reputation"
	"p2psplice/internal/trace"
	"p2psplice/internal/tracker"
	"p2psplice/internal/wire"
)

// misbehavingPeer is the real-stack twin of the emulation's adversary
// kinds: a wire-level peer that claims every segment and then misbehaves
// as a source. The corrupter and polluter serve payloads that fail
// Manifest.VerifySegment at the victim; the stale-have liar accepts
// requests and serves nothing; the slowloris serves honest bytes with a
// per-block delay. The polluter's per-attempt decisions come from
// fault.PolluteDraw — the same pure-hash draws the emulation uses.
type misbehavingPeer struct {
	ln       net.Listener
	infoHash wire.InfoHash
	id       wire.PeerID
	kind     fault.AdversaryKind
	blobs    [][]byte // honest payloads (polluter and slowloris serve them)
	percent  float64  // polluter pollution percentage
	seed     int64    // polluter draw seed
	trickle  time.Duration

	mu       sync.Mutex
	attempts map[int]int // serve attempts per segment (polluter draws)
}

func startMisbehavingPeer(t *testing.T, ih wire.InfoHash, kind fault.AdversaryKind, blobs [][]byte) *misbehavingPeer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &misbehavingPeer{
		ln:       ln,
		infoHash: ih,
		kind:     kind,
		blobs:    blobs,
		attempts: make(map[int]int),
	}
	copy(p.id[:], "ADVERSARYADVERSARYAD")
	go p.run()
	t.Cleanup(func() { ln.Close() })
	return p
}

// announceLoop registers the adversary with the tracker every interval so
// victims rediscover (and redial) it after each verification failure
// closes the conn — the repeat-offender scenario reputation exists for.
func (p *misbehavingPeer) announceLoop(t *testing.T, trk *tracker.Client) {
	t.Helper()
	done := make(chan struct{})
	t.Cleanup(func() { close(done) })
	go func() {
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			_, _ = trk.Announce(p.infoHash, p.id, p.ln.Addr().String(), true)
			select {
			case <-done:
				return
			case <-tick.C:
			}
		}
	}()
}

func (p *misbehavingPeer) run() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.serveConn(c)
	}
}

func (p *misbehavingPeer) serveConn(c net.Conn) {
	defer c.Close()
	if _, err := wire.ReadHandshake(c); err != nil {
		return
	}
	if err := wire.WriteHandshake(c, wire.Handshake{InfoHash: p.infoHash, PeerID: p.id}); err != nil {
		return
	}
	have := make([]bool, len(p.blobs))
	for i := range have {
		have[i] = true
	}
	if err := wire.Write(c, &wire.Message{Type: wire.MsgBitfield, Bitfield: wire.EncodeBitfield(have)}); err != nil {
		return
	}
	for {
		m, err := wire.Read(c)
		if err != nil {
			return
		}
		if m.Type != wire.MsgRequest {
			continue
		}
		idx, off, length := int(m.Index), int(m.Offset), int(m.Length)
		if idx < 0 || idx >= len(p.blobs) || off+length > len(p.blobs[idx]) {
			return
		}
		var data []byte
		switch p.kind {
		case fault.AdvStaleHave:
			continue // accept the request, serve nothing
		case fault.AdvCorrupter:
			data = garbage(length)
		case fault.AdvPolluter:
			p.mu.Lock()
			if off == 0 {
				p.attempts[idx]++
			}
			attempt := p.attempts[idx] - 1
			p.mu.Unlock()
			if fault.PolluteDraw(p.seed, 0, 1, idx, attempt)*100 < p.percent {
				data = garbage(length)
			} else {
				data = p.blobs[idx][off : off+length]
			}
		case fault.AdvSlowloris:
			time.Sleep(p.trickle)
			data = p.blobs[idx][off : off+length]
		}
		if err := wire.Write(c, &wire.Message{
			Type: wire.MsgPiece, Index: m.Index, Offset: m.Offset, Data: data,
		}); err != nil {
			return
		}
	}
}

func garbage(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = 0x66
	}
	return b
}

// instantQuarantine is a reputation config whose first penalty of any
// kind quarantines: it makes the quarantine transitions in these tests
// deterministic instead of timing-dependent.
func instantQuarantine() *reputation.Config {
	return &reputation.Config{
		VerifyFailCost:     10,
		StaleHaveCost:      10,
		SlowServeCost:      10,
		TimeoutCost:        10,
		DecayHalfLife:      time.Hour,
		QuarantineScore:    10,
		QuarantineFor:      30 * time.Second,
		ProbationSuccesses: 2,
	}
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func countRepEvents(buf *trace.Buffer, name string) int {
	n := 0
	for _, ev := range buf.Events() {
		if ev.Cat == trace.CatRep && ev.Name == name {
			n++
		}
	}
	return n
}

// A persistent corrupter as the only source: its garbage fails
// Manifest.VerifySegment at the viewer, one failure quarantines it (and
// is traced), and when an honest seeder appears the viewer completes
// with every stored segment verifying.
func TestCorrupterQuarantinedAndViewerRecovers(t *testing.T) {
	m, blobs := testSwarmData(t, 4*time.Second, 2*time.Second)
	trk := newTracker(t)
	seeder, err := Seed(trk, m, blobs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	ih := seeder.InfoHash()
	if err := seeder.Close(); err != nil {
		t.Fatal(err)
	}

	evil := startMisbehavingPeer(t, ih, fault.AdvCorrupter, blobs)

	buf := trace.NewBuffer()
	cfg := fastConfig()
	cfg.Trace = trace.New(buf)
	cfg.Reputation = instantQuarantine()
	viewer, err := Join(trk, ih, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer viewer.Close()
	if err := viewer.Connect(evil.ln.Addr().String()); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "a verification failure", 30*time.Second, func() bool {
		return viewer.Stats().VerifyFailures >= 1
	})
	waitFor(t, "a quarantine trace event", 10*time.Second, func() bool {
		return countRepEvents(buf, trace.EvQuarantine) >= 1
	})
	snap := viewer.Reputation()
	if len(snap) == 0 || snap[0].Key != evil.id || snap[0].Quarantines < 1 {
		t.Fatalf("reputation snapshot does not show the quarantined corrupter: %+v", snap)
	}

	seeder2, err := Seed(trk, m, blobs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer seeder2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := viewer.WaitComplete(ctx); err != nil {
		t.Fatalf("viewer did not recover from the corrupter: %v", err)
	}
	for i := range blobs {
		blob, err := viewer.Store().Block(i, 0, viewer.Store().SegmentSize(i))
		if err != nil {
			t.Fatalf("segment %d: %v", i, err)
		}
		if err := m.VerifySegment(i, blob); err != nil {
			t.Errorf("segment %d stored corrupt: %v", i, err)
		}
	}
}

// Sole-source liveness: the only source is an intermittent polluter
// (pure-hash per-attempt draws, seed chosen so the first serve of at
// least one segment pollutes). The viewer quarantines it after the first
// failure yet still completes — the pickConn escape hatch re-admits a
// quarantined sole source, and the tracker-driven redial loop restores
// the connection its verify failures keep closing.
func TestPolluterSoleSourceEscapeHatchCompletes(t *testing.T) {
	m, blobs := testSwarmData(t, 8*time.Second, 2*time.Second)
	trk := newTracker(t)
	seeder, err := Seed(trk, m, blobs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	ih := seeder.InfoHash()
	if err := seeder.Close(); err != nil {
		t.Fatal(err)
	}

	evil := startMisbehavingPeer(t, ih, fault.AdvPolluter, blobs)
	evil.percent = 60
	evil.seed = 7 // seg 0 pollutes on its first serves, all segs clean within 4 attempts
	evil.announceLoop(t, trk)

	buf := trace.NewBuffer()
	cfg := fastConfig()
	cfg.Trace = trace.New(buf)
	cfg.Reputation = instantQuarantine()
	viewer, err := Join(trk, ih, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer viewer.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := viewer.WaitComplete(ctx); err != nil {
		t.Fatalf("viewer did not complete off a quarantined polluting sole source: %v", err)
	}
	if got := viewer.Stats().VerifyFailures; got < 1 {
		t.Fatalf("VerifyFailures = %d, want >= 1 (seed 7 pollutes first serves)", got)
	}
	if countRepEvents(buf, trace.EvQuarantine) < 1 {
		t.Fatal("the polluter was never quarantined")
	}
	for i := range blobs {
		blob, err := viewer.Store().Block(i, 0, viewer.Store().SegmentSize(i))
		if err != nil {
			t.Fatalf("segment %d: %v", i, err)
		}
		if err := m.VerifySegment(i, blob); err != nil {
			t.Errorf("segment %d stored corrupt: %v", i, err)
		}
	}
}

// A stale-have liar accepts requests and serves nothing: the download
// watchdog expires the transfer with zero blocks received, which scores
// as ObsStaleHave (not a mere timeout) and quarantines the liar.
func TestStaleHaveLiarScoredAndQuarantined(t *testing.T) {
	m, blobs := testSwarmData(t, 4*time.Second, 2*time.Second)
	trk := newTracker(t)
	seeder, err := Seed(trk, m, blobs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	ih := seeder.InfoHash()
	if err := seeder.Close(); err != nil {
		t.Fatal(err)
	}

	liar := startMisbehavingPeer(t, ih, fault.AdvStaleHave, blobs)

	buf := trace.NewBuffer()
	cfg := fastConfig()
	cfg.DownloadTimeout = time.Second
	cfg.Trace = trace.New(buf)
	cfg.Reputation = instantQuarantine()
	viewer, err := Join(trk, ih, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer viewer.Close()
	if err := viewer.Connect(liar.ln.Addr().String()); err != nil {
		t.Fatal(err)
	}

	staleHavePenalty := func() bool {
		for _, ev := range buf.Events() {
			if ev.Cat == trace.CatRep && ev.Name == trace.EvRepPenalty &&
				ev.ArgStr("obs", "") == reputation.ObsStaleHave.String() {
				return true
			}
		}
		return false
	}
	waitFor(t, "a stale_have penalty", 30*time.Second, staleHavePenalty)
	waitFor(t, "the liar's quarantine", 10*time.Second, func() bool {
		return countRepEvents(buf, trace.EvQuarantine) >= 1
	})
	if got := viewer.Stats().ExpiredDownloads; got < 1 {
		t.Fatalf("ExpiredDownloads = %d, want >= 1", got)
	}

	seeder2, err := Seed(trk, m, blobs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer seeder2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := viewer.WaitComplete(ctx); err != nil {
		t.Fatalf("viewer did not recover from the stale-have liar: %v", err)
	}
}

// A slowloris that serves honest bytes below the slow-serve floor is
// charged ObsSlowServe on every completion; with quarantining disabled
// (QuarantineScore 0) it is penalized but never banned, and the download
// still completes off it.
func TestSlowServePenalizedWithoutQuarantine(t *testing.T) {
	m, blobs := testSwarmData(t, 4*time.Second, 2*time.Second)
	trk := newTracker(t)
	seeder, err := Seed(trk, m, blobs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	ih := seeder.InfoHash()
	if err := seeder.Close(); err != nil {
		t.Fatal(err)
	}

	loris := startMisbehavingPeer(t, ih, fault.AdvSlowloris, blobs)
	loris.trickle = 30 * time.Millisecond

	buf := trace.NewBuffer()
	cfg := fastConfig()
	cfg.Trace = trace.New(buf)
	cfg.Reputation = &reputation.Config{
		SlowServeCost:        2,
		DecayHalfLife:        time.Hour,
		QuarantineScore:      0, // scoring on, quarantine off
		SlowServeBytesPerSec: 8 << 20,
	}
	viewer, err := Join(trk, ih, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer viewer.Close()
	if err := viewer.Connect(loris.ln.Addr().String()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := viewer.WaitComplete(ctx); err != nil {
		t.Fatalf("viewer did not complete off the slowloris: %v", err)
	}
	slowPenalties := 0
	for _, ev := range buf.Events() {
		if ev.Cat == trace.CatRep && ev.Name == trace.EvRepPenalty &&
			ev.ArgStr("obs", "") == reputation.ObsSlowServe.String() {
			slowPenalties++
		}
	}
	if slowPenalties < 1 {
		t.Fatalf("slow_serve penalties = %d, want >= 1 (floor 8 MB/s, ~30ms per block)", slowPenalties)
	}
	if countRepEvents(buf, trace.EvQuarantine) != 0 {
		t.Fatal("QuarantineScore 0 must never quarantine")
	}
}

// Duplicated PIECE delivery (fault.KindDuplicate driven through
// fault.Start into SetServeDuplication): every block arrives twice and
// the receiver's ledger must count it once — DownloadedBytes equals the
// clip's exact byte size, not double.
func TestDuplicatePieceDeliveryIsIdempotent(t *testing.T) {
	m, blobs := testSwarmData(t, 4*time.Second, 2*time.Second)
	trk := newTracker(t)
	sbuf := trace.NewBuffer()
	scfg := fastConfig()
	scfg.Trace = trace.New(sbuf)
	seeder, err := Seed(trk, m, blobs, scfg)
	if err != nil {
		t.Fatal(err)
	}
	defer seeder.Close()

	plan := fault.Duplication(0, 0, time.Minute)
	fired := make(chan struct{}, 2)
	sched := fault.Start(plan, func(ev fault.Event) {
		seeder.SetServeDuplication(ev.Kind == fault.KindDuplicate)
		fired <- struct{}{}
	})
	defer sched.Stop()
	<-fired // the window is open before the viewer joins

	viewer, err := Join(trk, seeder.InfoHash(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer viewer.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := viewer.WaitComplete(ctx); err != nil {
		t.Fatal(err)
	}

	var total int64
	for _, b := range blobs {
		total += int64(len(b))
	}
	if got := viewer.Stats().DownloadedBytes; got != total {
		t.Fatalf("DownloadedBytes = %d, want exactly %d: duplicated blocks must not double-count", got, total)
	}
	if got := seeder.Stats().UploadedBytes; got < 2*total {
		t.Fatalf("seeder UploadedBytes = %d, want >= %d (every PIECE sent twice)", got, 2*total)
	}
	dupTraced := false
	for _, ev := range sbuf.Events() {
		if ev.Cat == trace.CatFault && ev.Name == trace.EvDuplicate {
			dupTraced = true
		}
	}
	if !dupTraced {
		t.Error("opening the duplication window emitted no duplicate_start fault event")
	}
}
