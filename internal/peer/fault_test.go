package peer

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"p2psplice/internal/fault"
	"p2psplice/internal/shaper"
	"p2psplice/internal/trace"
	"p2psplice/internal/tracker"
	"p2psplice/internal/wire"
)

// Regression test for the handshake deadline: both the dialing and the
// accepting path set a connection deadline bounding the handshake, and
// both must clear it afterwards. A deadline left armed does nothing for
// DialTimeout and then kills the idle connection's read loop — so hold
// two freshly handshaken connections idle for several deadline periods
// and require that they survive.
func TestHandshakeClearsDeadline(t *testing.T) {
	m, blobs := testSwarmData(t, 4*time.Second, 2*time.Second)
	trk := newTracker(t)
	cfg := fastConfig()
	cfg.DialTimeout = 300 * time.Millisecond
	cfg.AnnounceInterval = time.Hour // only the two hand-made conns below
	node, err := Seed(trk, m, blobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	// Accept path: a raw client handshakes with the node, then idles.
	inbound, err := net.Dial("tcp", node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer inbound.Close()
	clientID, err := wire.NewPeerID()
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteHandshake(inbound, wire.Handshake{InfoHash: node.InfoHash(), PeerID: clientID}); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadHandshake(inbound); err != nil {
		t.Fatal(err)
	}

	// Initiate path: the node dials a fake peer that handshakes, then idles.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	remoteID, err := wire.NewPeerID()
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		hs, err := wire.ReadHandshake(c)
		if err != nil {
			return
		}
		_ = wire.WriteHandshake(c, wire.Handshake{InfoHash: hs.InfoHash, PeerID: remoteID})
		// Keep c open and silent for the rest of the test.
	}()
	if err := node.Connect(ln.Addr().String()); err != nil {
		t.Fatal(err)
	}

	if got := node.Stats().Connections; got != 2 {
		t.Fatalf("connections after handshakes = %d, want 2", got)
	}

	// Idle for three deadline periods. An armed deadline fails the read
	// loop at ~DialTimeout, which drops the connection.
	time.Sleep(3*cfg.DialTimeout + 200*time.Millisecond)

	if got := node.Stats().Connections; got != 2 {
		t.Fatalf("connections after idling past the deadline = %d, want 2 (handshake left the conn deadline armed)", got)
	}
}

// waitStoreCount polls until the node holds at least want segments.
func waitStoreCount(t *testing.T, n *Node, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for n.Store().Count() < want {
		if time.Now().After(deadline) {
			t.Fatalf("store stuck at %d/%d segments", n.Store().Count(), want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// The acceptance scenario for the real stack: a leecher completes its
// download through a mid-stream seeder crash plus tracker outage,
// sourcing the rest from another leecher via the cached peer list. The
// faults are driven by a wall-clock fault.Scheduler, the same plan
// machinery the emulated stack compiles against the sim clock.
func TestSurvivesSeederCrashAndTrackerOutage(t *testing.T) {
	m, blobs := testSwarmData(t, 6*time.Second, 2*time.Second)
	srv := httptest.NewServer(tracker.NewServer().Handler())
	defer srv.Close()
	trk := tracker.NewClient(srv.URL, nil)

	seeder, err := Seed(trk, m, blobs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer seeder.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// First leecher completes while everything is healthy: it becomes the
	// surviving source.
	l1, err := Join(trk, seeder.InfoHash(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Close()
	if err := l1.WaitComplete(ctx); err != nil {
		t.Fatal(err)
	}

	// Second leecher joins, traced and bandwidth-shaped so the download
	// spans a few seconds and the faults land mid-stream.
	buf := trace.NewBuffer()
	cfg := fastConfig()
	cfg.Trace = trace.New(buf)
	cfg.Shape = &shaper.Config{RateBytesPerSec: 48 * 1024}
	l2, err := Join(tracker.NewClient(srv.URL, nil), seeder.InfoHash(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	waitStoreCount(t, l2, 1, 30*time.Second)
	if l2.Store().Complete() {
		t.Skip("clip too small: download completed before the faults could fire")
	}

	// Mid-stream: the seeder crashes and the tracker goes away, together.
	plan := fault.Plan{Events: []fault.Event{
		{At: 0, Kind: fault.KindTrackerDown},
		{At: 0, Kind: fault.KindPeerCrash, Node: 0},
	}}
	fired := make(chan fault.Kind, 2)
	sched := fault.Start(plan, func(ev fault.Event) {
		switch ev.Kind {
		case fault.KindTrackerDown:
			srv.CloseClientConnections()
			srv.Close()
		case fault.KindPeerCrash:
			_ = seeder.Close()
		}
		fired <- ev.Kind
	})
	defer sched.Stop()
	for i := 0; i < 2; i++ {
		select {
		case <-fired:
		case <-ctx.Done():
			t.Fatal("fault plan never fired")
		}
	}

	// The leecher must still finish: announces fail (and are retried with
	// backoff), the cached peer list keeps it attached to l1, and every
	// segment the seeder held is also held by l1.
	if err := l2.WaitComplete(ctx); err != nil {
		t.Fatalf("leecher did not survive seeder crash + tracker outage: %v", err)
	}

	// The outage must be visible in the trace for stall attribution.
	sawTrackerDown := false
	for _, ev := range buf.Events() {
		if ev.Cat == trace.CatFault && ev.Name == trace.EvTrackerDown {
			sawTrackerDown = true
			break
		}
	}
	if !sawTrackerDown {
		t.Error("no tracker_down fault event traced during the outage")
	}
}

// Tracker loss and recovery: announces fail while the tracker returns
// 503, the node keeps its connections and emits tracker_down once, and
// on recovery re-announce resumes and is traced as tracker_up.
func TestTrackerRecoveryResumesAnnounce(t *testing.T) {
	var down atomic.Bool
	inner := tracker.NewServer().Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "tracker outage", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	m, blobs := testSwarmData(t, 4*time.Second, 2*time.Second)
	seeder, err := Seed(tracker.NewClient(srv.URL, nil), m, blobs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer seeder.Close()

	buf := trace.NewBuffer()
	cfg := fastConfig()
	cfg.Trace = trace.New(buf)
	l, err := Join(tracker.NewClient(srv.URL, nil), seeder.InfoHash(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := l.WaitComplete(ctx); err != nil {
		t.Fatal(err)
	}

	countFault := func(name string) int {
		n := 0
		for _, ev := range buf.Events() {
			if ev.Cat == trace.CatFault && ev.Name == name {
				n++
			}
		}
		return n
	}
	waitFault := func(name string) {
		deadline := time.Now().Add(30 * time.Second)
		for countFault(name) == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("no %s fault event traced", name)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	down.Store(true)
	waitFault(trace.EvTrackerDown)
	// The node must hold on to its swarm connections while degraded.
	if got := l.Stats().Connections; got == 0 {
		t.Error("leecher dropped all connections during the tracker outage")
	}

	down.Store(false)
	waitFault(trace.EvTrackerUp)
	// Loss and recovery are edge-triggered: one event per transition, not
	// one per failed announce.
	if got := countFault(trace.EvTrackerDown); got != 1 {
		t.Errorf("tracker_down traced %d times for one outage, want 1", got)
	}
}
