package peer

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestFileStoreLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Segments() != 3 || s.Count() != 0 || s.Complete() {
		t.Error("fresh file store state wrong")
	}
	if err := s.Put(1, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if !s.Have(1) || s.Count() != 1 {
		t.Error("Put not reflected")
	}
	b, err := s.Block(1, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "world" {
		t.Errorf("Block = %q", b)
	}
	if s.SegmentSize(1) != 11 || s.SegmentSize(0) != 0 {
		t.Error("SegmentSize wrong")
	}
	// Duplicate put keeps the first copy.
	if err := s.Put(1, []byte("XXXXXXXXXXX")); err != nil {
		t.Fatal(err)
	}
	b, _ = s.Block(1, 0, 5)
	if string(b) != "hello" {
		t.Error("duplicate put overwrote data")
	}
	bf := s.Bitfield()
	if bf[0] || !bf[1] || bf[2] {
		t.Errorf("Bitfield = %v", bf)
	}
	if s.Dir() != dir {
		t.Error("Dir() wrong")
	}
}

func TestFileStoreRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(0, []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	// A second store over the same directory recovers the segment.
	s2, err := NewFileStore(dir, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Have(0) || s2.Count() != 1 {
		t.Error("recovery missed the persisted segment")
	}
	b, err := s2.Block(0, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "persisted" {
		t.Errorf("recovered data = %q", b)
	}
}

func TestFileStoreRecoveryValidatesAgainstManifest(t *testing.T) {
	m, blobs := testSwarmData(t, 4*time.Second, 2*time.Second)
	dir := t.TempDir()
	s, err := NewFileStore(dir, len(blobs), m)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(0, blobs[0]); err != nil {
		t.Fatal(err)
	}
	// Corrupt the on-disk file for segment 0 and write garbage as segment 1.
	if err := os.WriteFile(filepath.Join(dir, "000001.seg"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "000000.seg"))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(filepath.Join(dir, "000000.seg"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := NewFileStore(dir, len(blobs), m)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Count() != 0 {
		t.Errorf("corrupt segments survived recovery: %d held", s2.Count())
	}
	if _, err := os.Stat(filepath.Join(dir, "000000.seg")); !os.IsNotExist(err) {
		t.Error("corrupt file not removed")
	}
}

func TestFileStoreErrors(t *testing.T) {
	if _, err := NewFileStore(t.TempDir(), 0, nil); err == nil {
		t.Error("zero segments: want error")
	}
	m, blobs := testSwarmData(t, 4*time.Second, 2*time.Second)
	if _, err := NewFileStore(t.TempDir(), len(blobs)+1, m); err == nil {
		t.Error("manifest size mismatch: want error")
	}
	s, err := NewFileStore(t.TempDir(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(0, nil); err == nil {
		t.Error("empty blob: want error")
	}
	if err := s.Put(9, []byte("x")); err == nil {
		t.Error("out-of-range put: want error")
	}
	if _, err := s.Block(0, 0, 1); err == nil {
		t.Error("block of absent segment: want error")
	}
	if err := s.Put(0, []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Block(0, 2, 10); err == nil {
		t.Error("out-of-range block: want error")
	}
}

func TestSeedFromFileStoreAndResume(t *testing.T) {
	m, blobs := testSwarmData(t, 6*time.Second, 2*time.Second)
	trk := newTracker(t)

	// Populate a file store as if a prior run had downloaded everything.
	dir := t.TempDir()
	fs, err := NewFileStore(dir, len(blobs), m)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range blobs {
		if err := fs.Put(i, b); err != nil {
			t.Fatal(err)
		}
	}

	seeder, err := SeedFromStore(trk, m, fs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer seeder.Close()

	// A resuming viewer already holds segment 0 on disk.
	viewerDir := t.TempDir()
	vs, err := NewFileStore(viewerDir, len(blobs), m)
	if err != nil {
		t.Fatal(err)
	}
	if err := vs.Put(0, blobs[0]); err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.Store = vs
	viewer, err := Join(trk, seeder.InfoHash(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer viewer.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := viewer.WaitComplete(ctx); err != nil {
		t.Fatal(err)
	}
	// The resumed segment started playback instantly: startup is zero.
	if pm := viewer.Playback(); pm.StartupTime != 0 {
		t.Errorf("resumed viewer startup = %v, want 0", pm.StartupTime)
	}
	// Everything on disk matches the seed data.
	for i, want := range blobs {
		got, err := vs.Block(i, 0, len(want))
		if err != nil {
			t.Fatalf("segment %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("segment %d differs", i)
		}
	}
}

func TestSeedFromStoreRejectsIncomplete(t *testing.T) {
	m, blobs := testSwarmData(t, 4*time.Second, 2*time.Second)
	trk := newTracker(t)
	fs, err := NewFileStore(t.TempDir(), len(blobs), m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SeedFromStore(trk, m, fs, fastConfig()); err == nil {
		t.Error("incomplete store: want error")
	}
	if _, err := SeedFromStore(trk, m, nil, fastConfig()); err == nil {
		t.Error("nil store: want error")
	}
	if _, err := SeedFromStore(nil, m, fs, fastConfig()); err == nil {
		t.Error("nil tracker: want error")
	}
}

func TestJoinRejectsMismatchedStore(t *testing.T) {
	m, blobs := testSwarmData(t, 4*time.Second, 2*time.Second)
	trk := newTracker(t)
	seeder, err := Seed(trk, m, blobs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer seeder.Close()
	wrong, err := NewStore(len(blobs) + 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.Store = wrong
	if _, err := Join(trk, seeder.InfoHash(), cfg); err == nil {
		t.Error("mismatched store capacity: want error")
	}
}
