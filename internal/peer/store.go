// Package peer implements the real-TCP swarm node: the seeder/leecher
// application the paper built in Java, here as a Go library. A node serves
// segments it holds over the wire protocol, downloads missing segments with
// a pluggable pooling policy (internal/core), verifies them against the
// published manifest, and feeds a playback model (internal/player) so real
// deployments report the same metrics as the emulation.
package peer

import (
	"fmt"
	"sync"
)

// SegmentStore is the storage abstraction a Node serves from and downloads
// into. Store (in-memory) and FileStore (persistent) implement it.
// Implementations must be safe for concurrent use.
type SegmentStore interface {
	// Segments returns the store capacity.
	Segments() int
	// Have reports whether segment i is present.
	Have(i int) bool
	// Count returns how many segments are present.
	Count() int
	// Complete reports whether every segment is present.
	Complete() bool
	// Bitfield snapshots the have-flags.
	Bitfield() []bool
	// Put stores segment i (idempotent; first copy wins).
	Put(i int, blob []byte) error
	// Block returns length bytes of segment i starting at off.
	Block(i, off, length int) ([]byte, error)
	// SegmentSize returns the stored size of segment i, or 0 if absent.
	SegmentSize(i int) int
}

var (
	_ SegmentStore = (*Store)(nil)
	_ SegmentStore = (*FileStore)(nil)
)

// Store holds encoded segment containers in memory, keyed by segment index.
// It is safe for concurrent use.
type Store struct {
	mu    sync.RWMutex
	blobs [][]byte
	count int
}

// NewStore returns an empty store for n segments.
func NewStore(n int) (*Store, error) {
	if n <= 0 {
		return nil, fmt.Errorf("peer: store needs at least one segment, got %d", n)
	}
	return &Store{blobs: make([][]byte, n)}, nil
}

// NewFullStore returns a store pre-populated with every segment (a seeder).
func NewFullStore(blobs [][]byte) (*Store, error) {
	s, err := NewStore(len(blobs))
	if err != nil {
		return nil, err
	}
	for i, b := range blobs {
		if len(b) == 0 {
			return nil, fmt.Errorf("peer: seed segment %d is empty", i)
		}
		cp := make([]byte, len(b))
		copy(cp, b)
		s.blobs[i] = cp
	}
	s.count = len(blobs)
	return s, nil
}

// Segments returns the store capacity.
func (s *Store) Segments() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blobs)
}

// Have reports whether segment i is present.
func (s *Store) Have(i int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return i >= 0 && i < len(s.blobs) && s.blobs[i] != nil
}

// Count returns how many segments are present.
func (s *Store) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// Complete reports whether every segment is present.
func (s *Store) Complete() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count == len(s.blobs)
}

// Bitfield snapshots the have-flags.
func (s *Store) Bitfield() []bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]bool, len(s.blobs))
	for i, b := range s.blobs {
		out[i] = b != nil
	}
	return out
}

// Put stores segment i. Duplicate puts are ignored; the first copy wins.
// The blob is copied, so callers may reuse their buffer.
func (s *Store) Put(i int, blob []byte) error {
	if len(blob) == 0 {
		return fmt.Errorf("peer: empty segment %d", i)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.blobs) {
		return fmt.Errorf("peer: segment index %d out of range [0, %d)", i, len(s.blobs))
	}
	if s.blobs[i] != nil {
		return nil
	}
	cp := make([]byte, len(blob))
	copy(cp, blob)
	s.blobs[i] = cp
	s.count++
	return nil
}

// Block returns length bytes of segment i starting at off. The returned
// slice is a copy.
func (s *Store) Block(i int, off, length int) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if i < 0 || i >= len(s.blobs) || s.blobs[i] == nil {
		return nil, fmt.Errorf("peer: segment %d not available", i)
	}
	b := s.blobs[i]
	if off < 0 || length <= 0 || off+length > len(b) {
		return nil, fmt.Errorf("peer: block [%d, %d+%d) outside segment of %d bytes", off, off, length, len(b))
	}
	out := make([]byte, length)
	copy(out, b[off:off+length])
	return out, nil
}

// SegmentSize returns the stored size of segment i, or 0 if absent.
func (s *Store) SegmentSize(i int) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if i < 0 || i >= len(s.blobs) {
		return 0
	}
	return len(s.blobs[i])
}
