package peer

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"p2psplice/internal/container"
	"p2psplice/internal/media"
	"p2psplice/internal/player"
	"p2psplice/internal/splicer"
	"p2psplice/internal/tracker"
	"p2psplice/internal/wire"
)

// testSwarmData builds a small spliced clip with its manifest and blobs.
func testSwarmData(t *testing.T, clip time.Duration, target time.Duration) (*container.Manifest, [][]byte) {
	t.Helper()
	cfg := media.DefaultEncoderConfig()
	cfg.BytesPerSecond = 32 * 1024 // keep test transfers small
	v, err := media.Synthesize(cfg, clip, 7)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := splicer.DurationSplicer{Target: target}.Splice(v)
	if err != nil {
		t.Fatal(err)
	}
	m, blobs, err := container.BuildManifest(container.ClipInfo{
		Duration: v.Duration(), BytesPerSecond: cfg.BytesPerSecond, Seed: v.Seed,
	}, "2s", segs)
	if err != nil {
		t.Fatal(err)
	}
	return m, blobs
}

func newTracker(t *testing.T) *tracker.Client {
	t.Helper()
	srv := httptest.NewServer(tracker.NewServer().Handler())
	t.Cleanup(srv.Close)
	return tracker.NewClient(srv.URL, srv.Client())
}

func fastConfig() Config {
	return Config{
		AnnounceInterval: 100 * time.Millisecond,
		DownloadTimeout:  5 * time.Second,
	}
}

func TestSwarmDistribution(t *testing.T) {
	m, blobs := testSwarmData(t, 6*time.Second, 2*time.Second)
	trk := newTracker(t)

	seeder, err := Seed(trk, m, blobs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer seeder.Close()

	var leechers []*Node
	for i := 0; i < 2; i++ {
		l, err := Join(trk, seeder.InfoHash(), fastConfig())
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		leechers = append(leechers, l)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, l := range leechers {
		if err := l.WaitComplete(ctx); err != nil {
			t.Fatalf("leecher %d: %v", i, err)
		}
	}
	// Data integrity: every leecher holds byte-identical segments.
	for i, l := range leechers {
		for idx, want := range blobs {
			got, err := l.Store().Block(idx, 0, len(want))
			if err != nil {
				t.Fatalf("leecher %d segment %d: %v", i, idx, err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("leecher %d segment %d differs from seed", i, idx)
			}
		}
		st := l.Stats()
		if st.DownloadedBytes == 0 {
			t.Errorf("leecher %d reports no downloaded bytes", i)
		}
	}
	if seeder.Stats().UploadedBytes == 0 {
		t.Error("seeder reports no uploaded bytes")
	}
}

func TestPlaybackMetrics(t *testing.T) {
	m, blobs := testSwarmData(t, 4*time.Second, 2*time.Second)
	trk := newTracker(t)
	seeder, err := Seed(trk, m, blobs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer seeder.Close()

	l, err := Join(trk, seeder.InfoHash(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := l.WaitComplete(ctx); err != nil {
		t.Fatal(err)
	}
	pm := l.Playback()
	if pm.StartupTime <= 0 {
		t.Errorf("startup time = %v, want positive", pm.StartupTime)
	}
	if pm.State == player.StateIdle || pm.State == player.StateWaiting {
		t.Errorf("player state = %v after completion", pm.State)
	}
	// A seeder has no playback.
	if got := seeder.Playback(); got.State != player.StateIdle {
		t.Errorf("seeder playback state = %v, want idle", got.State)
	}
}

func TestLeecherToLeecherRelay(t *testing.T) {
	m, blobs := testSwarmData(t, 4*time.Second, 2*time.Second)
	trk := newTracker(t)
	seeder, err := Seed(trk, m, blobs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}

	first, err := Join(trk, seeder.InfoHash(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := first.WaitComplete(ctx); err != nil {
		t.Fatal(err)
	}
	// The seeder leaves; the only source is now the first leecher.
	if err := seeder.Close(); err != nil {
		t.Fatal(err)
	}

	second, err := Join(trk, first.InfoHash(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if err := second.WaitComplete(ctx); err != nil {
		t.Fatalf("second leecher could not complete from a leecher source: %v", err)
	}
	if first.Stats().UploadedBytes == 0 {
		t.Error("first leecher never uploaded")
	}
}

func TestJoinUnknownSwarm(t *testing.T) {
	trk := newTracker(t)
	var ih wire.InfoHash
	if _, err := Join(trk, ih, fastConfig()); err == nil {
		t.Error("joining unknown swarm: want error")
	}
}

func TestSeedValidation(t *testing.T) {
	m, blobs := testSwarmData(t, 4*time.Second, 2*time.Second)
	trk := newTracker(t)
	if _, err := Seed(nil, m, blobs, Config{}); err == nil {
		t.Error("nil tracker: want error")
	}
	if _, err := Seed(trk, m, blobs[:1], Config{}); err == nil {
		t.Error("missing blobs: want error")
	}
	bad := make([][]byte, len(blobs))
	copy(bad, blobs)
	bad[0] = append([]byte(nil), blobs[0]...)
	bad[0][10] ^= 0xFF
	if _, err := Seed(trk, m, bad, Config{}); err == nil {
		t.Error("corrupt blob: want error")
	}
	if _, err := Join(nil, wire.InfoHash{}, Config{}); err == nil {
		t.Error("nil tracker join: want error")
	}
}

func TestCloseIdempotent(t *testing.T) {
	m, blobs := testSwarmData(t, 4*time.Second, 2*time.Second)
	trk := newTracker(t)
	seeder, err := Seed(trk, m, blobs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := seeder.Close(); err != nil {
		t.Fatal(err)
	}
	if err := seeder.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSeederDoneImmediately(t *testing.T) {
	m, blobs := testSwarmData(t, 4*time.Second, 2*time.Second)
	trk := newTracker(t)
	seeder, err := Seed(trk, m, blobs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer seeder.Close()
	select {
	case <-seeder.Done():
	default:
		t.Error("seeder should be complete at birth")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := seeder.WaitComplete(ctx); err != nil {
		t.Error(err)
	}
}

func TestManyLeechers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-peer integration test")
	}
	m, blobs := testSwarmData(t, 8*time.Second, 2*time.Second)
	trk := newTracker(t)
	seeder, err := Seed(trk, m, blobs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer seeder.Close()
	var leechers []*Node
	for i := 0; i < 5; i++ {
		l, err := Join(trk, seeder.InfoHash(), fastConfig())
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		leechers = append(leechers, l)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i, l := range leechers {
		if err := l.WaitComplete(ctx); err != nil {
			t.Fatalf("leecher %d: %v", i, err)
		}
	}
}

func TestNodeAccessorsAndWaitCancel(t *testing.T) {
	m, blobs := testSwarmData(t, 4*time.Second, 2*time.Second)
	trk := newTracker(t)
	seeder, err := Seed(trk, m, blobs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer seeder.Close()
	if seeder.PeerID() == (wire.PeerID{}) {
		t.Error("zero peer id")
	}
	if seeder.Manifest() == nil || len(seeder.Manifest().Segments) != len(blobs) {
		t.Error("Manifest accessor wrong")
	}
	// WaitComplete honours context cancellation on an incomplete node.
	viewerStore, err := NewStore(len(blobs))
	if err != nil {
		t.Fatal(err)
	}
	_ = viewerStore
	viewer, err := Join(trk, seeder.InfoHash(), Config{
		AnnounceInterval: time.Hour, // never finds the seeder
		DialTimeout:      time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Note: the first announce happens immediately, so disconnect by
	// closing right after checking cancellation.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_ = viewer.WaitComplete(ctx) // must return promptly either way
	viewer.Close()
}

func TestConnectErrors(t *testing.T) {
	m, blobs := testSwarmData(t, 4*time.Second, 2*time.Second)
	trk := newTracker(t)
	seeder, err := Seed(trk, m, blobs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer seeder.Close()
	if err := seeder.Connect("127.0.0.1:1"); err == nil {
		t.Error("connecting to a dead port: want error")
	}
}
