package peer

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"p2psplice/internal/container"
	"p2psplice/internal/core"
	"p2psplice/internal/trace"
	"p2psplice/internal/wire"
)

// newIdleLeecher builds a leecher with no live connections: the manifest
// is published to a tracker nobody else joined, so the node's connection
// set is entirely under the test's control.
func newIdleLeecher(t *testing.T, m *container.Manifest, cfg Config) *Node {
	t.Helper()
	trk := newTracker(t)
	ih, err := trk.Publish(m)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Join(trk, ih, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// addFakeConn registers a hand-built connection whose remote end only
// drains what the node sends, so the test controls exactly which
// segments appear servable and whether the remote has choked us.
func addFakeConn(t *testing.T, n *Node, id byte, have []bool, choked bool) *conn {
	t.Helper()
	server, client := net.Pipe()
	t.Cleanup(func() { server.Close(); client.Close() })
	go io.Copy(io.Discard, client) //nolint — drains pipelined requests
	var pid wire.PeerID
	pid[0] = id
	c := &conn{
		node:   n,
		id:     pid,
		raw:    server,
		have:   append([]bool(nil), have...),
		choked: choked,
	}
	n.mu.Lock()
	n.conns[pid] = c
	n.mu.Unlock()
	return c
}

func activeIndices(n *Node) map[int]*conn {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[int]*conn, len(n.active))
	for idx, d := range n.active {
		out[idx] = d.conn
	}
	return out
}

// Regression test for the scheduler scan budget: with a choked peer
// holding the front of the pool window, the scheduler must skip past it
// and launch the servable segments behind it. The pre-fix scheduler
// budgeted its scan at `target` considered segments, so the two choked
// front segments exhausted the budget and nothing launched at all.
func TestScheduleSkipsChokedFrontOfWindow(t *testing.T) {
	m, _ := testSwarmData(t, 8*time.Second, 2*time.Second)
	if len(m.Segments) < 4 {
		t.Fatalf("need at least 4 segments, got %d", len(m.Segments))
	}
	cfg := fastConfig()
	cfg.Policy = core.FixedPool{K: 2}
	n := newIdleLeecher(t, m, cfg)

	segs := len(m.Segments)
	frontOnly := make([]bool, segs)
	frontOnly[0], frontOnly[1] = true, true
	rest := make([]bool, segs)
	for i := 2; i < segs; i++ {
		rest[i] = true
	}
	addFakeConn(t, n, 'a', frontOnly, true) // holds 0,1 but choked us
	addFakeConn(t, n, 'b', rest, false)

	n.schedule()

	act := activeIndices(n)
	if len(act) != 2 {
		t.Fatalf("scheduler launched %d downloads (%v), want 2: the choked "+
			"front of the window must not consume the scan budget", len(act), act)
	}
	for _, idx := range []int{2, 3} {
		if _, ok := act[idx]; !ok {
			t.Fatalf("segment %d not scheduled; active = %v", idx, act)
		}
	}
}

// failPutStore rejects the first Put so the store-failure path runs, then
// behaves normally.
type failPutStore struct {
	SegmentStore
	failed bool
}

func (s *failPutStore) Put(i int, blob []byte) error {
	if !s.failed {
		s.failed = true
		return errors.New("induced store failure")
	}
	return s.SegmentStore.Put(i, blob)
}

// injectDownload registers an in-flight segment download as the scheduler
// would, with controllable progress freshness.
func injectDownload(n *Node, c *conn, idx, size int, progress time.Time) {
	d := &segDownload{
		index:    idx,
		size:     size,
		conn:     c,
		buf:      make([]byte, size),
		blocks:   make([]bool, wire.BlockCount(int64(size), n.cfg.BlockLen)),
		started:  progress,
		progress: progress,
	}
	d.remaining = len(d.blocks)
	n.mu.Lock()
	n.active[idx] = d
	n.est.Start(n.now())
	n.mu.Unlock()
}

// feedSegment delivers blob to the node as wire pieces on c.
func feedSegment(n *Node, c *conn, idx int, blob []byte) {
	for off := 0; off < len(blob); off += n.cfg.BlockLen {
		end := off + n.cfg.BlockLen
		if end > len(blob) {
			end = len(blob)
		}
		n.onPiece(c, &wire.Message{
			Type:   wire.MsgPiece,
			Index:  uint32(idx),
			Offset: uint32(off),
			Data:   blob[off:end],
		})
	}
}

// Regression test for the store-failure path: when store.Put rejects a
// verified segment, the segment is already out of the in-flight set, so
// the node must reschedule it immediately. Pre-fix it just logged and
// returned, leaving the segment unpooled until an unrelated event.
func TestStoreFailureReschedulesImmediately(t *testing.T) {
	m, blobs := testSwarmData(t, 4*time.Second, 2*time.Second)
	store, err := NewStore(len(m.Segments))
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.Policy = core.FixedPool{K: 1}
	cfg.Store = &failPutStore{SegmentStore: store}
	n := newIdleLeecher(t, m, cfg)

	all := make([]bool, len(m.Segments))
	for i := range all {
		all[i] = true
	}
	ca := addFakeConn(t, n, 'a', all, false)
	addFakeConn(t, n, 'b', all, false)

	injectDownload(n, ca, 0, len(blobs[0]), time.Now())
	feedSegment(n, ca, 0, blobs[0])

	// The assertion runs synchronously after onPiece: the watchdog (1s
	// cadence) cannot have rescued an unrescheduled segment yet.
	act := activeIndices(n)
	if _, ok := act[0]; !ok {
		t.Fatalf("segment 0 not rescheduled after store failure; active = %v", act)
	}
	if got := n.Stats().StoreFailures; got != 1 {
		t.Fatalf("StoreFailures = %d, want 1", got)
	}
}

// Regression test for expireStalled: expiring a download whose connection
// is already dead must reschedule directly. Pre-fix it relied on
// conn.close() → dropConn for the reschedule, a no-op on an
// already-closed connection.
func TestExpireStalledReschedulesOnLiveConn(t *testing.T) {
	m, blobs := testSwarmData(t, 4*time.Second, 2*time.Second)
	cfg := fastConfig()
	cfg.Policy = core.FixedPool{K: 1}
	cfg.DownloadTimeout = 50 * time.Millisecond
	n := newIdleLeecher(t, m, cfg)

	none := make([]bool, len(m.Segments))
	all := make([]bool, len(m.Segments))
	for i := range all {
		all[i] = true
	}
	// The stalled download sits on a connection that no longer advertises
	// anything and is already closed; only conn b can serve the retry.
	ca := addFakeConn(t, n, 'a', none, false)
	cb := addFakeConn(t, n, 'b', all, false)
	ca.close()

	injectDownload(n, ca, 0, len(blobs[0]), time.Now().Add(-time.Second))
	n.expireStalled()

	act := activeIndices(n)
	got, ok := act[0]
	if !ok {
		t.Fatalf("segment 0 not rescheduled after expiry; active = %v", act)
	}
	if got != cb {
		t.Fatalf("segment 0 rescheduled on %s, want the live holder %s", got.id, cb.id)
	}
	if stats := n.Stats(); stats.ExpiredDownloads != 1 {
		t.Fatalf("ExpiredDownloads = %d, want 1", stats.ExpiredDownloads)
	}
}

// A traced, metered leecher that completes a real swarm download reports
// schedule/completion events and non-zero counters.
func TestNodeTraceAndMetrics(t *testing.T) {
	m, blobs := testSwarmData(t, 4*time.Second, 2*time.Second)
	trk := newTracker(t)
	seeder, err := Seed(trk, m, blobs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer seeder.Close()

	buf := trace.NewBuffer()
	reg := trace.NewRegistry()
	cfg := fastConfig()
	cfg.Trace = trace.New(buf)
	cfg.Metrics = reg
	l, err := Join(trk, seeder.InfoHash(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	deadline := time.After(30 * time.Second)
	select {
	case <-l.Done():
	case <-deadline:
		t.Fatal("download did not complete")
	}

	names := map[string]int{}
	for _, ev := range buf.Events() {
		names[ev.Name]++
	}
	if names[trace.EvSchedule] == 0 {
		t.Fatalf("no %s events: %v", trace.EvSchedule, names)
	}
	if names[trace.EvSegComplete] != len(m.Segments) {
		t.Fatalf("%d %s events for %d segments: %v",
			names[trace.EvSegComplete], trace.EvSegComplete, len(m.Segments), names)
	}
	if got := reg.Counter("segments_done").Value(); got != int64(len(m.Segments)) {
		t.Fatalf("segments_done = %d, want %d", got, len(m.Segments))
	}
	if got := reg.Counter("bytes_rx").Value(); got <= 0 {
		t.Fatalf("bytes_rx = %d, want > 0", got)
	}
}
