package peer

import (
	"testing"
	"time"

	"p2psplice/internal/reputation"
	"p2psplice/internal/wire"
)

func pickTestNode() *Node {
	cfg := Config{}.withDefaults()
	return &Node{
		cfg:     cfg,
		started: time.Now(),
		conns:   make(map[wire.PeerID]*conn),
		active:  make(map[int]*segDownload),
		rep:     reputation.NewTable[wire.PeerID](*cfg.Reputation),
	}
}

func pickTestConn(n *Node, tag string, segments int) *conn {
	var id wire.PeerID
	copy(id[:], tag)
	c := &conn{id: id, have: make([]bool, segments)}
	for i := range c.have {
		c.have[i] = true
	}
	n.conns[id] = c
	return c
}

// Regression: a verify failure closes the serving conn, but the conn
// stays in n.conns until its reader goroutine runs dropConn. The
// immediate reschedule must not hand the segment back to the dead conn
// — pre-fix, pickConnLocked did exactly that and the segment stranded
// until the watchdog.
func TestPickConnSkipsClosedConns(t *testing.T) {
	n := pickTestNode()
	dead := pickTestConn(n, "DEAD-CONN-DEAD-CONN-", 4)
	dead.closed = true

	n.mu.Lock()
	got := n.pickConnLocked(0)
	n.mu.Unlock()
	if got != nil {
		t.Fatal("pickConnLocked returned a closed conn")
	}

	// With a live alternative present, the closed conn must lose even
	// though it looks less busy (its downloads were orphaned).
	live := pickTestConn(n, "LIVE-CONN-LIVE-CONN-", 4)
	n.active[1] = &segDownload{index: 1, conn: live}
	n.mu.Lock()
	got = n.pickConnLocked(0)
	n.mu.Unlock()
	if got != live {
		t.Fatalf("pickConnLocked = %v, want the live conn", got)
	}
}

// Regression: a peer that served corrupt data was re-picked over a clean
// source whenever it was less busy, so a persistent corrupter (or a
// malicious peer) could capture the schedule indefinitely. A recorded
// verify failure now raises the peer's reputation score, which outranks
// busyness.
func TestPickConnDeprioritizesVerifyFailers(t *testing.T) {
	n := pickTestNode()
	bad := pickTestConn(n, "EVIL-CONN-EVIL-CONN-", 4)
	good := pickTestConn(n, "GOOD-CONN-GOOD-CONN-", 4)
	n.rep.Observe(bad.id, n.now(), reputation.ObsVerifyFail)
	// The clean conn is busier: pre-fix least-busy logic picked the
	// corrupter.
	n.active[1] = &segDownload{index: 1, conn: good}

	n.mu.Lock()
	got := n.pickConnLocked(0)
	n.mu.Unlock()
	if got != good {
		t.Fatal("pickConnLocked preferred a conn with a recorded verify failure")
	}

	// The score outranks busyness, but a failing conn is still a last
	// resort when it is the only source.
	delete(n.conns, good.id)
	delete(n.active, 1)
	n.mu.Lock()
	got = n.pickConnLocked(0)
	n.mu.Unlock()
	if got != bad {
		t.Fatal("a sole source must still be picked despite verify failures")
	}
}

// Regression for the scoring half of the old verifyFailsBy map: failure
// counts never decayed, so one long-ago verify failure deprioritized a
// peer forever against busier alternatives. Scores now decay
// exponentially (reputation.Config.DecayHalfLife); after enough quiet
// time the offender competes on busyness again. Pre-fix this failed —
// the map's count was permanent.
func TestPickConnVerifyFailureDecays(t *testing.T) {
	n := pickTestNode()
	bad := pickTestConn(n, "EVIL-CONN-EVIL-CONN-", 4)
	good := pickTestConn(n, "GOOD-CONN-GOOD-CONN-", 4)
	n.rep.Observe(bad.id, n.now(), reputation.ObsVerifyFail)
	n.active[1] = &segDownload{index: 1, conn: good}

	n.mu.Lock()
	got := n.pickConnLocked(0)
	n.mu.Unlock()
	if got != good {
		t.Fatal("a fresh verify failure must deprioritize the offender")
	}

	// Ten quiet minutes (20 default half-lives): the score decays to the
	// floor and snaps to zero, so least-busy wins again. The playback
	// clock is advanced by backdating the node's start.
	n.started = n.started.Add(-10 * time.Minute)
	n.mu.Lock()
	got = n.pickConnLocked(0)
	n.mu.Unlock()
	if got != bad {
		t.Fatal("a decayed verify failure must not deprioritize the peer forever")
	}
}

// Enough verify failures quarantine the conn outright: it loses to any
// healthy source regardless of busyness, but remains reachable through
// the second selection pass when it is the only source left (the
// sole-source escape hatch).
func TestPickConnQuarantineAndEscapeHatch(t *testing.T) {
	n := pickTestNode()
	bad := pickTestConn(n, "EVIL-CONN-EVIL-CONN-", 4)
	good := pickTestConn(n, "GOOD-CONN-GOOD-CONN-", 4)
	for i := 0; i < 3; i++ {
		n.rep.Observe(bad.id, n.now(), reputation.ObsVerifyFail)
	}
	if !n.rep.Quarantined(bad.id, n.now()) {
		t.Fatal("three verify failures at default costs must quarantine")
	}
	n.active[1] = &segDownload{index: 1, conn: good}

	n.mu.Lock()
	got := n.pickConnLocked(0)
	n.mu.Unlock()
	if got != good {
		t.Fatal("pickConnLocked picked a quarantined conn over a healthy one")
	}

	delete(n.conns, good.id)
	delete(n.active, 1)
	n.mu.Lock()
	got = n.pickConnLocked(0)
	n.mu.Unlock()
	if got != bad {
		t.Fatal("escape hatch failed: a quarantined sole source must still be picked")
	}
}
