package peer

import (
	"testing"

	"p2psplice/internal/wire"
)

func pickTestNode() *Node {
	return &Node{
		cfg:           Config{}.withDefaults(),
		conns:         make(map[wire.PeerID]*conn),
		active:        make(map[int]*segDownload),
		verifyFailsBy: make(map[wire.PeerID]int),
	}
}

func pickTestConn(n *Node, tag string, segments int) *conn {
	var id wire.PeerID
	copy(id[:], tag)
	c := &conn{id: id, have: make([]bool, segments)}
	for i := range c.have {
		c.have[i] = true
	}
	n.conns[id] = c
	return c
}

// Regression: a verify failure closes the serving conn, but the conn
// stays in n.conns until its reader goroutine runs dropConn. The
// immediate reschedule must not hand the segment back to the dead conn
// — pre-fix, pickConnLocked did exactly that and the segment stranded
// until the watchdog.
func TestPickConnSkipsClosedConns(t *testing.T) {
	n := pickTestNode()
	dead := pickTestConn(n, "DEAD-CONN-DEAD-CONN-", 4)
	dead.closed = true

	n.mu.Lock()
	got := n.pickConnLocked(0)
	n.mu.Unlock()
	if got != nil {
		t.Fatal("pickConnLocked returned a closed conn")
	}

	// With a live alternative present, the closed conn must lose even
	// though it looks less busy (its downloads were orphaned).
	live := pickTestConn(n, "LIVE-CONN-LIVE-CONN-", 4)
	n.active[1] = &segDownload{index: 1, conn: live}
	n.mu.Lock()
	got = n.pickConnLocked(0)
	n.mu.Unlock()
	if got != live {
		t.Fatalf("pickConnLocked = %v, want the live conn", got)
	}
}

// Regression: a peer that served corrupt data was re-picked over a clean
// source whenever it was less busy, so a persistent corrupter (or a
// malicious peer) could capture the schedule indefinitely. Recorded
// verify failures now outrank busyness.
func TestPickConnDeprioritizesVerifyFailers(t *testing.T) {
	n := pickTestNode()
	bad := pickTestConn(n, "EVIL-CONN-EVIL-CONN-", 4)
	good := pickTestConn(n, "GOOD-CONN-GOOD-CONN-", 4)
	n.verifyFailsBy[bad.id] = 1
	// The clean conn is busier: pre-fix least-busy logic picked the
	// corrupter.
	n.active[1] = &segDownload{index: 1, conn: good}

	n.mu.Lock()
	got := n.pickConnLocked(0)
	n.mu.Unlock()
	if got != good {
		t.Fatal("pickConnLocked preferred a conn with recorded verify failures")
	}

	// Busyness still breaks ties between equally-trusted conns.
	n.verifyFailsBy[bad.id] = 0
	n.mu.Lock()
	got = n.pickConnLocked(0)
	n.mu.Unlock()
	if got != bad {
		t.Fatal("with equal failure counts the least-busy conn must win")
	}

	// The failure count outranks busyness, but a failing conn is still a
	// last resort when it is the only source.
	n.verifyFailsBy[bad.id] = 3
	delete(n.conns, good.id)
	delete(n.active, 1)
	n.mu.Lock()
	got = n.pickConnLocked(0)
	n.mu.Unlock()
	if got != bad {
		t.Fatal("a sole source must still be picked despite verify failures")
	}
}
