package peer

import (
	"time"

	"p2psplice/internal/reputation"
	"p2psplice/internal/trace"
	"p2psplice/internal/wire"
)

// segDownload tracks one in-flight segment transfer.
type segDownload struct {
	index     int
	size      int
	conn      *conn
	buf       []byte
	blocks    []bool // received flags
	remaining int
	started   time.Time
	progress  time.Time // last block arrival (watchdog)
}

// schedule tops up the download pool according to the policy. It is the
// real-stack twin of the emulation's fill: called on join, on every
// have/bitfield/piece event, and from the watchdog.
func (n *Node) schedule() {
	if n.seeder {
		return
	}
	type request struct {
		c   *conn
		idx int
	}
	var launches []request
	var target, activeAfter int

	n.mu.Lock()
	if !n.closed && !n.store.Complete() {
		target = n.poolTargetLocked()
		n.nm.poolK.Observe(int64(target))
		// Fill the pool with the first `target` missing segments some
		// connected peer can serve. Segments already in flight or currently
		// unservable (choked or absent sources) are skipped without
		// consuming pool budget: an earlier version capped the scan at
		// `target` considered segments, so a choked segment at the front of
		// the window could exhaust the budget and leave the pool empty with
		// servable segments just behind it — a scheduler-induced stall. (It
		// also counted each launch twice, in n.active and in launches,
		// halving the effective pool.)
		for idx := 0; idx < n.store.Segments() && len(n.active) < target; idx++ {
			if n.store.Have(idx) {
				continue
			}
			if _, inFlight := n.active[idx]; inFlight {
				continue
			}
			if c := n.pickConnLocked(idx); c != nil {
				size := int(n.manifest.Segments[idx].Bytes)
				d := &segDownload{
					index:    idx,
					size:     size,
					conn:     c,
					buf:      make([]byte, size),
					blocks:   make([]bool, wire.BlockCount(int64(size), n.cfg.BlockLen)),
					started:  time.Now(),
					progress: time.Now(),
				}
				d.remaining = len(d.blocks)
				n.active[idx] = d
				n.est.Start(n.now())
				launches = append(launches, request{c: c, idx: idx})
			}
		}
		activeAfter = len(n.active)
	}
	n.mu.Unlock()

	n.nm.schedCalls.Inc()
	n.nm.launches.Add(int64(len(launches)))
	n.nm.activeDowns.Set(int64(activeAfter))
	if len(launches) > 0 {
		n.emitAt(n.now(), trace.CatSched, trace.EvSchedule, -1,
			trace.Int64("target", int64(target)),
			trace.Int64("launched", int64(len(launches))),
			trace.Int64("active", int64(activeAfter)))
	} else if target > 0 && activeAfter == 0 {
		n.emitAt(n.now(), trace.CatSched, trace.EvScheduleIdle, -1,
			trace.Int64("target", int64(target)))
	}

	for _, l := range launches {
		n.requestAllBlocks(l.c, l.idx)
	}
}

// poolTargetLocked computes Equation 1's k with the node's live inputs:
// B from the EWMA estimator (falling back to the clip rate before the first
// sample), T from the playback buffer, W from the next missing segment.
func (n *Node) poolTargetLocked() int {
	bandwidth := n.est.Estimate()
	if bandwidth <= 0 {
		bandwidth = n.manifest.Video.BytesPerSecond
	}
	var buffered time.Duration
	if n.play != nil {
		buffered = n.play.BufferedAhead(n.now())
	}
	segBytes := int64(1)
	for idx := 0; idx < n.store.Segments(); idx++ {
		if !n.store.Have(idx) {
			segBytes = n.manifest.Segments[idx].Bytes
			break
		}
	}
	return n.cfg.Policy.PoolSize(bandwidth, buffered, segBytes)
}

// pickConnLocked returns the connection to fetch idx from: among live,
// non-quarantined conns whose remote has the segment, the one with the
// lowest decayed reputation score, ties broken by least busy. When every
// candidate is quarantined a second pass re-admits them — the sole-source
// escape hatch: a swarm whose remaining sources all misbehaved must still
// drain rather than strand the segment. Closed conns are skipped — a
// verify failure closes the serving conn, and until its asynchronous
// dropConn runs the conn is still in n.conns, so without the check the
// immediate reschedule re-picked the dead conn and the segment stranded
// until the drop or the watchdog.
func (n *Node) pickConnLocked(idx int) *conn {
	busy := make(map[*conn]int)
	for _, d := range n.active {
		busy[d.conn]++
	}
	if c := n.pickConnPassLocked(idx, busy, false); c != nil {
		return c
	}
	return n.pickConnPassLocked(idx, busy, true)
}

// pickConnPassLocked runs one selection pass over the connection set
// (n.mu held); allowQuarantined opens the escape hatch.
func (n *Node) pickConnPassLocked(idx int, busy map[*conn]int, allowQuarantined bool) *conn {
	now := n.now()
	var best *conn
	bestBusy := 0
	bestScore := 0.0
	for _, c := range n.conns {
		if c.isClosed() || !c.remoteHas(idx) || c.remoteChoked() {
			continue
		}
		if busy[c] >= n.cfg.MaxConcurrentPerConn {
			continue
		}
		if !allowQuarantined && n.rep.Quarantined(c.id, now) {
			continue
		}
		score := n.rep.Score(c.id, now)
		if best == nil || score < bestScore ||
			(score == bestScore && busy[c] < bestBusy) {
			best, bestBusy, bestScore = c, busy[c], score
		}
	}
	return best
}

// requestAllBlocks pipelines every block request for a segment.
func (n *Node) requestAllBlocks(c *conn, idx int) {
	size := int(n.manifest.Segments[idx].Bytes)
	for off := 0; off < size; off += n.cfg.BlockLen {
		length := n.cfg.BlockLen
		if off+length > size {
			length = size - off
		}
		if err := c.send(&wire.Message{
			Type:   wire.MsgRequest,
			Index:  uint32(idx),
			Offset: uint32(off),
			Length: uint32(length),
		}); err != nil {
			c.close()
			return
		}
	}
}

// onPiece integrates an arriving block.
func (n *Node) onPiece(c *conn, m *wire.Message) {
	idx := int(m.Index)
	var completed []byte
	var elapsed time.Duration

	n.mu.Lock()
	d, ok := n.active[idx]
	if !ok || d.conn != c {
		n.mu.Unlock()
		return // stale block from an abandoned download
	}
	off := int(m.Offset)
	if off%n.cfg.BlockLen != 0 || off+len(m.Data) > d.size {
		n.mu.Unlock()
		n.cfg.Logf("peer %s: bogus block seg=%d off=%d len=%d", n.peerID, idx, off, len(m.Data))
		c.close()
		return
	}
	block := off / n.cfg.BlockLen
	if !d.blocks[block] {
		d.blocks[block] = true
		d.remaining--
		copy(d.buf[off:], m.Data)
		d.progress = time.Now()
		n.stats.DownloadedBytes += int64(len(m.Data))
		n.est.Deliver(int64(len(m.Data)))
		n.nm.blocksRx.Inc()
		n.nm.bytesRx.Add(int64(len(m.Data)))
	}
	if d.remaining == 0 {
		delete(n.active, idx)
		completed = d.buf
		elapsed = time.Since(d.started)
		n.est.Finish(n.now())
	}
	n.mu.Unlock()

	if completed == nil {
		return
	}
	if err := n.manifest.VerifySegment(idx, completed); err != nil {
		// The remote served data that does not match the manifest: drop it
		// and re-download from someone else.
		n.cfg.Logf("peer %s: segment %d failed verification from %s: %v", n.peerID, idx, c.id, err)
		n.mu.Lock()
		n.stats.VerifyFailures++
		n.mu.Unlock()
		n.nm.verifyFails.Inc()
		n.emitAt(n.now(), trace.CatSched, trace.EvVerifyFail, idx)
		// Score the offender across reconnects: the peer ID, not the conn,
		// is the stable identity a repeat corrupter keeps.
		n.observePeer(c.id, reputation.ObsVerifyFail)
		c.close()
		n.schedule()
		return
	}
	if err := n.store.Put(idx, completed); err != nil {
		// The segment is already out of n.active, so without an immediate
		// reschedule it would sit undownloaded until some unrelated event
		// (or the watchdog) next ran the scheduler.
		n.cfg.Logf("peer %s: store segment %d: %v", n.peerID, idx, err)
		n.mu.Lock()
		n.stats.StoreFailures++
		n.mu.Unlock()
		n.nm.storeFails.Inc()
		n.emitAt(n.now(), trace.CatSched, trace.EvStoreFail, idx)
		n.schedule()
		return
	}
	// A verified completion earns the server credit — unless it crawled in
	// below the slow-serve floor (a polite slowloris that keeps beating the
	// progress watchdog still gets charged).
	obs := reputation.ObsSuccess
	if floor := n.rep.Config().SlowServeBytesPerSec; floor > 0 && elapsed > 0 &&
		float64(d.size)/elapsed.Seconds() < float64(floor) {
		obs = reputation.ObsSlowServe
	}
	n.observePeer(c.id, obs)
	n.nm.segsDone.Inc()
	n.nm.segSeconds.ObserveDuration(elapsed)
	n.nm.segBytes.Observe(int64(d.size))
	n.emitAt(n.now(), trace.CatSched, trace.EvSegComplete, idx,
		trace.Int64("bytes", int64(d.size)),
		trace.Int64("elapsed_us", elapsed.Microseconds()))
	n.mu.Lock()
	if n.play != nil {
		// Errors are impossible: idx was validated against the store size.
		_ = n.play.OnSegmentComplete(idx, n.now())
	}
	complete := n.store.Complete()
	n.mu.Unlock()

	n.broadcastHave(idx)
	if complete {
		n.completeOnce.Do(func() { close(n.completeC) })
	}
	n.schedule()
}

// expireStalled abandons downloads that have made no progress within the
// timeout so the watchdog can retry them on another connection.
func (n *Node) expireStalled() {
	var stalled []*segDownload
	n.mu.Lock()
	for idx, d := range n.active {
		if time.Since(d.progress) > n.cfg.DownloadTimeout {
			delete(n.active, idx)
			n.est.Finish(n.now())
			n.stats.ExpiredDownloads++
			stalled = append(stalled, d)
		}
	}
	n.mu.Unlock()
	for _, d := range stalled {
		n.cfg.Logf("peer %s: segment %d timed out on %s", n.peerID, d.index, d.conn.id)
		n.nm.expired.Inc()
		n.emitAt(n.now(), trace.CatSched, trace.EvTimeout, d.index)
		// Not a single block arrived: the remote advertised the segment and
		// accepted the requests but served nothing — a stale HAVE, which
		// scores harder than a transfer that died partway.
		obs := reputation.ObsTimeout
		if d.remaining == len(d.blocks) {
			obs = reputation.ObsStaleHave
		}
		n.observePeer(d.conn.id, obs)
		d.conn.close()
	}
	if len(stalled) > 0 {
		// close() on an already-dead conn is a no-op (its dropConn ran long
		// ago), so the expired segments would otherwise stay unscheduled
		// until something else happened to run the scheduler.
		n.schedule()
	}
}

// observePeer records one reputation observation about a remote peer and
// traces the resulting penalty, quarantine, or probation clearance. The
// CatRep events carry the peer ID as an argument: the node's own trace
// stream has no per-event peer column (Event.Peer is the emulation's).
func (n *Node) observePeer(id wire.PeerID, obs reputation.Observation) {
	at := n.now()
	n.mu.Lock()
	up := n.rep.Observe(id, at, obs)
	n.mu.Unlock()
	if obs != reputation.ObsSuccess {
		n.nm.repPenalties.Inc()
		n.emitAt(at, trace.CatRep, trace.EvRepPenalty, -1,
			trace.Str("peer", id.String()),
			trace.Str("obs", obs.String()),
			trace.Float64("score", up.Score))
	}
	if up.Cleared {
		n.emitAt(at, trace.CatRep, trace.EvProbationClear, -1,
			trace.Str("peer", id.String()))
	}
	if up.Quarantined {
		n.nm.quarantines.Inc()
		n.emitAt(at, trace.CatRep, trace.EvQuarantine, -1,
			trace.Str("peer", id.String()),
			trace.Float64("score", up.Score),
			trace.Int64("until_us", up.Until.Microseconds()))
	}
}
