package peer

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"p2psplice/internal/container"
)

// FileStore persists segment containers to a directory, one file per
// segment, so a seeder can resume serving (and a viewer resume downloading)
// across process restarts. Files are named NNNNNN.seg and written
// atomically via a temp file + rename. It implements the same interface
// surface as Store and is safe for concurrent use.
type FileStore struct {
	dir string

	mu    sync.RWMutex
	sizes []int64 // 0 = absent; otherwise the segment's byte size
	count int
}

// segFileName returns the path for segment i.
func (s *FileStore) segFileName(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%06d.seg", i))
}

// NewFileStore opens (or initializes) a segment directory for a clip with n
// segments. Existing segment files are validated against the manifest if
// one is supplied (pass nil to skip validation, e.g. for ad-hoc tooling).
func NewFileStore(dir string, n int, m *container.Manifest) (*FileStore, error) {
	if n <= 0 {
		return nil, fmt.Errorf("peer: file store needs at least one segment, got %d", n)
	}
	if m != nil && len(m.Segments) != n {
		return nil, fmt.Errorf("peer: manifest has %d segments, store sized for %d", len(m.Segments), n)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("peer: create store dir: %w", err)
	}
	s := &FileStore{dir: dir, sizes: make([]int64, n)}
	// Recover existing segments.
	for i := 0; i < n; i++ {
		blob, err := os.ReadFile(s.segFileName(i))
		if errors.Is(err, fs.ErrNotExist) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("peer: read segment %d: %w", i, err)
		}
		if m != nil {
			if err := m.VerifySegment(i, blob); err != nil {
				// A corrupt or stale file is discarded, not fatal: the
				// segment will simply be re-downloaded.
				_ = os.Remove(s.segFileName(i))
				continue
			}
		}
		if len(blob) == 0 {
			_ = os.Remove(s.segFileName(i))
			continue
		}
		s.sizes[i] = int64(len(blob))
		s.count++
	}
	return s, nil
}

// Dir returns the backing directory.
func (s *FileStore) Dir() string { return s.dir }

// Segments returns the store capacity.
func (s *FileStore) Segments() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sizes)
}

// Have reports whether segment i is present.
func (s *FileStore) Have(i int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return i >= 0 && i < len(s.sizes) && s.sizes[i] > 0
}

// Count returns how many segments are present.
func (s *FileStore) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// Complete reports whether every segment is present.
func (s *FileStore) Complete() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count == len(s.sizes)
}

// Bitfield snapshots the have-flags.
func (s *FileStore) Bitfield() []bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]bool, len(s.sizes))
	for i, sz := range s.sizes {
		out[i] = sz > 0
	}
	return out
}

// Put persists segment i atomically. Duplicate puts are ignored.
func (s *FileStore) Put(i int, blob []byte) error {
	if len(blob) == 0 {
		return fmt.Errorf("peer: empty segment %d", i)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.sizes) {
		return fmt.Errorf("peer: segment index %d out of range [0, %d)", i, len(s.sizes))
	}
	if s.sizes[i] > 0 {
		return nil
	}
	tmp, err := os.CreateTemp(s.dir, "seg-*.tmp")
	if err != nil {
		return fmt.Errorf("peer: write segment %d: %w", i, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		_ = os.Remove(tmpName)
		return fmt.Errorf("peer: write segment %d: %w", i, err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("peer: write segment %d: %w", i, err)
	}
	if err := os.Rename(tmpName, s.segFileName(i)); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("peer: commit segment %d: %w", i, err)
	}
	s.sizes[i] = int64(len(blob))
	s.count++
	return nil
}

// Block reads length bytes of segment i starting at off.
func (s *FileStore) Block(i int, off, length int) ([]byte, error) {
	s.mu.RLock()
	size := int64(0)
	if i >= 0 && i < len(s.sizes) {
		size = s.sizes[i]
	}
	s.mu.RUnlock()
	if size == 0 {
		return nil, fmt.Errorf("peer: segment %d not available", i)
	}
	if off < 0 || length <= 0 || int64(off)+int64(length) > size {
		return nil, fmt.Errorf("peer: block [%d, %d+%d) outside segment of %d bytes", off, off, length, size)
	}
	f, err := os.Open(s.segFileName(i))
	if err != nil {
		return nil, fmt.Errorf("peer: open segment %d: %w", i, err)
	}
	defer f.Close()
	out := make([]byte, length)
	if _, err := f.ReadAt(out, int64(off)); err != nil {
		return nil, fmt.Errorf("peer: read segment %d: %w", i, err)
	}
	return out, nil
}

// SegmentSize returns the stored size of segment i, or 0 if absent.
func (s *FileStore) SegmentSize(i int) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if i < 0 || i >= len(s.sizes) {
		return 0
	}
	return int(s.sizes[i])
}
