package peer

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"p2psplice/internal/container"
	"p2psplice/internal/core"
	"p2psplice/internal/player"
	"p2psplice/internal/reputation"
	"p2psplice/internal/shaper"
	"p2psplice/internal/trace"
	"p2psplice/internal/tracker"
	"p2psplice/internal/wire"
)

// Config configures a node.
type Config struct {
	// ListenAddr is the TCP address to serve on. Defaults to "127.0.0.1:0".
	ListenAddr string
	// Policy is the download-pooling policy. Defaults to core.AdaptivePool.
	Policy core.Policy
	// BlockLen is the transfer block size. Defaults to wire.DefaultBlockLen.
	BlockLen int
	// MaxConcurrentPerConn bounds simultaneous segment downloads from one
	// remote peer. Defaults to 2.
	MaxConcurrentPerConn int
	// MaxUploadSlots bounds how many connections this node serves blocks to
	// simultaneously (BitTorrent unchoke slots). A requester beyond the
	// limit receives MsgChoke and retries after MsgUnchoke. Defaults to 8;
	// set -1 for unlimited.
	MaxUploadSlots int
	// AnnounceInterval is the tracker refresh period. Defaults to 30s.
	AnnounceInterval time.Duration
	// DownloadTimeout abandons a segment download making no progress for
	// this long and retries elsewhere. Defaults to 30s.
	DownloadTimeout time.Duration
	// Shape optionally applies an access-link shape (bandwidth/latency) to
	// all of this node's connections, emulating the paper's GENI links.
	Shape *shaper.Config
	// Store optionally supplies the segment storage (e.g. a FileStore for
	// resume across restarts). Join uses it as-is — segments already
	// present are kept and not re-downloaded. Its capacity must match the
	// manifest. Nil means a fresh in-memory store.
	Store SegmentStore
	// DialTimeout bounds peer connection attempts. Defaults to 5s.
	DialTimeout time.Duration
	// Reputation configures per-peer scoring and quarantine: decaying
	// penalties for verification failures, serve timeouts, stale HAVEs and
	// slow serves, with probation re-admission (see internal/reputation).
	// Nil means reputation.Default(). A zero-valued config keeps scoring
	// but never quarantines.
	Reputation *reputation.Config
	// Logf receives debug logs. Nil disables logging.
	Logf func(format string, args ...any)
	// Trace receives structured events (schedule decisions, piece and
	// verification outcomes, playback transitions with attributed stall
	// causes). Nil disables tracing at the cost of one nil check per event.
	Trace *trace.Tracer
	// Metrics receives the node's counters and gauges. Nil disables them.
	Metrics *trace.Registry
}

func (c Config) withDefaults() Config {
	if c.ListenAddr == "" {
		c.ListenAddr = "127.0.0.1:0"
	}
	if c.Policy == nil {
		c.Policy = core.AdaptivePool{}
	}
	if c.BlockLen <= 0 || c.BlockLen > wire.MaxBlockLen {
		c.BlockLen = wire.DefaultBlockLen
	}
	if c.MaxConcurrentPerConn <= 0 {
		c.MaxConcurrentPerConn = 2
	}
	if c.MaxUploadSlots == 0 {
		c.MaxUploadSlots = 8
	}
	if c.MaxUploadSlots < 0 {
		c.MaxUploadSlots = int(^uint(0) >> 1) // unlimited
	}
	if c.AnnounceInterval <= 0 {
		c.AnnounceInterval = 30 * time.Second
	}
	if c.DownloadTimeout <= 0 {
		c.DownloadTimeout = 30 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.Reputation == nil {
		d := reputation.Default()
		c.Reputation = &d
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Stats is a snapshot of a node's transfer counters.
type Stats struct {
	DownloadedBytes int64
	UploadedBytes   int64
	SegmentsHeld    int
	Connections     int
	// VerifyFailures counts completed segments that failed manifest
	// verification and were re-downloaded.
	VerifyFailures int64
	// StoreFailures counts completed segments the store rejected; each one
	// is rescheduled.
	StoreFailures int64
	// ExpiredDownloads counts in-flight downloads abandoned by the
	// progress watchdog and retried elsewhere.
	ExpiredDownloads int64
}

// Node is one swarm member (seeder or leecher).
type Node struct {
	cfg      Config
	trk      *tracker.Client
	infoHash wire.InfoHash
	peerID   wire.PeerID
	manifest *container.Manifest
	store    SegmentStore
	seeder   bool

	ln      net.Listener
	started time.Time // playback clock origin (leechers)

	tr *trace.Tracer // immutable after construction; nil-safe
	nm nodeMetrics   // immutable after construction; handles are no-ops without a registry

	mu     sync.Mutex // guards conns, active, play, est, stats, servingConns, chokedWaiters, closed, trackerDown, cachedPeers, dialState, rep, serveDuplicate, openStallAt and openStallCause
	conns  map[wire.PeerID]*conn
	active map[int]*segDownload // in-flight segment downloads
	// rep scores remote peers by ID — the stable identity a repeat
	// offender keeps across reconnects. The scheduler deprioritizes high
	// scores and skips quarantined peers, so a peer serving corrupt data
	// or dangling stale HAVEs cannot capture the schedule just because it
	// is less busy; decay and probation let a reformed (or misjudged)
	// peer earn its way back, unlike the never-decaying failure count it
	// replaces.
	rep           *reputation.Table[wire.PeerID]
	play          *player.Player // nil for seeders
	est           *core.AggregateMeter
	stats         Stats
	servingConns  int     // occupied upload slots
	chokedWaiters []*conn // FIFO of choked requesters awaiting a slot
	closed        bool
	// serveDuplicate, while set, makes serveBlock send every PIECE twice
	// (the KindDuplicate fault): receivers must be idempotent.
	serveDuplicate bool
	trackerDown    bool                    // last announce failed; degraded to cachedPeers
	cachedPeers    []tracker.PeerInfo      // last successful announce result
	dialState      map[string]*dialBackoff // per-address reconnect backoff
	// openStallAt/openStallCause track the in-progress stall so its full
	// duration lands in the cause-labeled histogram at stall end.
	openStallAt    time.Duration
	openStallCause string
	completeC      chan struct{} // closed when the store completes
	completeOnce   sync.Once

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// Seed publishes the manifest to the tracker and serves the given segment
// blobs. The returned node runs until Close.
func Seed(trk *tracker.Client, m *container.Manifest, blobs [][]byte, cfg Config) (*Node, error) {
	if trk == nil {
		return nil, errors.New("peer: nil tracker client")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(blobs) != len(m.Segments) {
		return nil, fmt.Errorf("peer: %d blobs for %d manifest segments", len(blobs), len(m.Segments))
	}
	for i, b := range blobs {
		if err := m.VerifySegment(i, b); err != nil {
			return nil, fmt.Errorf("peer: seed data: %w", err)
		}
	}
	store, err := NewFullStore(blobs)
	if err != nil {
		return nil, err
	}
	ih, err := trk.Publish(m)
	if err != nil {
		return nil, err
	}
	n, err := newNode(trk, ih, m, store, true, cfg)
	if err != nil {
		return nil, err
	}
	return n, nil
}

// Join fetches the manifest for infoHash from the tracker and starts
// downloading and playing the clip.
func Join(trk *tracker.Client, infoHash wire.InfoHash, cfg Config) (*Node, error) {
	if trk == nil {
		return nil, errors.New("peer: nil tracker client")
	}
	m, err := trk.Manifest(infoHash)
	if err != nil {
		return nil, err
	}
	var store SegmentStore
	if cfg.Store != nil {
		if cfg.Store.Segments() != len(m.Segments) {
			return nil, fmt.Errorf("peer: supplied store holds %d segments, manifest has %d",
				cfg.Store.Segments(), len(m.Segments))
		}
		store = cfg.Store
	} else {
		store, err = NewStore(len(m.Segments))
		if err != nil {
			return nil, err
		}
	}
	return newNode(trk, infoHash, m, store, false, cfg)
}

// SeedFromStore serves a swarm from an existing (complete) store — e.g. a
// FileStore directory left by a previous run — without re-supplying blobs.
// Every stored segment is verified against the manifest before serving.
func SeedFromStore(trk *tracker.Client, m *container.Manifest, store SegmentStore, cfg Config) (*Node, error) {
	if trk == nil {
		return nil, errors.New("peer: nil tracker client")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if store == nil || store.Segments() != len(m.Segments) {
		return nil, fmt.Errorf("peer: store does not match manifest")
	}
	if !store.Complete() {
		return nil, fmt.Errorf("peer: store incomplete (%d/%d segments)", store.Count(), store.Segments())
	}
	for i := range m.Segments {
		blob, err := store.Block(i, 0, store.SegmentSize(i))
		if err != nil {
			return nil, fmt.Errorf("peer: seed data: %w", err)
		}
		if err := m.VerifySegment(i, blob); err != nil {
			return nil, fmt.Errorf("peer: seed data: %w", err)
		}
	}
	ih, err := trk.Publish(m)
	if err != nil {
		return nil, err
	}
	return newNode(trk, ih, m, store, true, cfg)
}

func newNode(trk *tracker.Client, ih wire.InfoHash, m *container.Manifest, store SegmentStore, seeder bool, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	peerID, err := wire.NewPeerID()
	if err != nil {
		return nil, err
	}
	// The pool-size formula needs the *aggregate* download bandwidth, so
	// the node meters delivered bytes across all concurrent transfers
	// rather than observing each segment with its own elapsed time (which
	// converges to B/k under k-way pooling).
	est, err := core.NewAggregateMeter(core.DefaultEWMAAlpha)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	// Build the player before the Node exists so every post-construction
	// access to the guarded play field goes through n.mu.
	var play *player.Player
	if !seeder {
		durations := make([]time.Duration, len(m.Segments))
		for i, s := range m.Segments {
			durations[i] = s.Duration
		}
		play, err = player.New(player.Config{SegmentDurations: durations})
		if err != nil {
			cancel()
			return nil, err
		}
		// Segments recovered from a resumed store count as instantly
		// downloaded: register them before the playback clock starts.
		for i := 0; i < store.Segments(); i++ {
			if store.Have(i) {
				_ = play.OnSegmentComplete(i, 0) // index verified in range
			}
		}
		if err := play.Start(0); err != nil {
			cancel()
			return nil, err
		}
	}
	n := &Node{
		cfg:       cfg,
		trk:       trk,
		infoHash:  ih,
		peerID:    peerID,
		manifest:  m,
		store:     store,
		seeder:    seeder,
		started:   time.Now(),
		tr:        cfg.Trace,
		nm:        newNodeMetrics(cfg.Metrics, m.Splicing),
		conns:     make(map[wire.PeerID]*conn),
		active:    make(map[int]*segDownload),
		dialState: make(map[string]*dialBackoff),
		rep:       reputation.NewTable[wire.PeerID](*cfg.Reputation),
		play:      play,
		est:       est,
		completeC: make(chan struct{}),
		ctx:       ctx,
		cancel:    cancel,
	}
	if play != nil {
		// Attached after the resume registrations above, so only post-join
		// transitions are traced. Every later player call runs under n.mu,
		// which the observer therefore inherits.
		play.SetObserver(func(t player.Transition) { n.playbackTransitionLocked(t) })
	}
	if store.Complete() {
		n.completeOnce.Do(func() { close(n.completeC) })
	}

	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		cancel()
		return nil, fmt.Errorf("peer: listen: %w", err)
	}
	if cfg.Shape != nil {
		shaped, err := shaper.NewListener(ln, *cfg.Shape)
		if err != nil {
			ln.Close()
			cancel()
			return nil, err
		}
		n.ln = shaped
	} else {
		n.ln = ln
	}

	n.wg.Add(2)
	go n.acceptLoop()
	go n.trackerLoop()
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// PeerID returns the node's identity.
func (n *Node) PeerID() wire.PeerID { return n.peerID }

// InfoHash returns the swarm identity.
func (n *Node) InfoHash() wire.InfoHash { return n.infoHash }

// Manifest returns the clip manifest.
func (n *Node) Manifest() *container.Manifest { return n.manifest }

// Store exposes the segment store (read-mostly use).
func (n *Node) Store() SegmentStore { return n.store }

// now returns the playback-clock time (time since the node joined).
func (n *Node) now() time.Duration { return time.Since(n.started) }

// Playback returns the playback metrics (zero Metrics for a seeder).
func (n *Node) Playback() player.Metrics {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.play == nil {
		return player.Metrics{}
	}
	return n.play.Metrics(n.now())
}

// Stats snapshots the transfer counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.stats
	st.SegmentsHeld = n.store.Count()
	st.Connections = len(n.conns)
	return st
}

// Ready reports whether the node can usefully take traffic: it holds a
// manifest and at least one peer connection is live. Nil means ready;
// the error names what is missing. Backs the /readyz probe — a node
// that is still joining (or has lost every connection) is alive but not
// ready, and a prober should distinguish the two.
func (n *Node) Ready() error {
	if n.manifest == nil {
		return errors.New("no manifest")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return errors.New("node closed")
	}
	if len(n.conns) == 0 {
		return errors.New("no live peer connections")
	}
	return nil
}

// SetServeDuplication opens (on) or closes a duplicated-delivery fault
// window: while open, serveBlock sends every PIECE twice. Wired to
// fault.KindDuplicate by the fault harness; receivers must be idempotent
// (blocks are counted once however often they arrive).
func (n *Node) SetServeDuplication(on bool) {
	n.mu.Lock()
	changed := n.serveDuplicate != on
	n.serveDuplicate = on
	n.mu.Unlock()
	if !changed {
		return
	}
	name := trace.EvDuplicateEnd
	if on {
		name = trace.EvDuplicate
	}
	n.emitAt(n.now(), trace.CatFault, name, -1)
}

// Reputation snapshots the node's per-peer reputation table on the
// playback clock (first-observation order).
func (n *Node) Reputation() []reputation.PeerStats[wire.PeerID] {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rep.Snapshot(n.now())
}

// Done returns a channel closed when every segment has been downloaded.
func (n *Node) Done() <-chan struct{} { return n.completeC }

// WaitComplete blocks until the store is complete or ctx is cancelled.
func (n *Node) WaitComplete(ctx context.Context) error {
	select {
	case <-n.completeC:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-n.ctx.Done():
		return errors.New("peer: node closed")
	}
}

// Close leaves the swarm and releases all resources.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := make([]*conn, 0, len(n.conns))
	for _, c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()

	n.cancel()
	_ = n.ln.Close()
	for _, c := range conns {
		c.close()
	}
	_ = n.trk.Leave(n.infoHash, n.peerID)
	n.wg.Wait()
	return nil
}

// acceptLoop serves inbound peers.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		raw, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			if err := n.handleInbound(raw); err != nil {
				n.cfg.Logf("peer %s: inbound: %v", n.peerID, err)
			}
		}()
	}
}

// handshake runs the wire handshake on a fresh connection, under a
// deadline bounding the whole exchange. The deadline is cleared by defer
// so no exit path can leave it armed — an armed deadline would silently
// kill the connection's read loop DialTimeout after the handshake.
func (n *Node) handshake(raw net.Conn, initiate bool) (wire.PeerID, error) {
	_ = raw.SetDeadline(time.Now().Add(n.cfg.DialTimeout))
	defer func() { _ = raw.SetDeadline(time.Time{}) }()
	var remote wire.PeerID
	if initiate {
		if err := wire.WriteHandshake(raw, wire.Handshake{InfoHash: n.infoHash, PeerID: n.peerID}); err != nil {
			return remote, err
		}
		hs, err := wire.ReadHandshake(raw)
		if err != nil {
			return remote, err
		}
		if hs.InfoHash != n.infoHash {
			return remote, fmt.Errorf("remote is in swarm %s", hs.InfoHash)
		}
		return hs.PeerID, nil
	}
	hs, err := wire.ReadHandshake(raw)
	if err != nil {
		return remote, err
	}
	if hs.InfoHash != n.infoHash {
		return remote, fmt.Errorf("wrong swarm %s", hs.InfoHash)
	}
	if err := wire.WriteHandshake(raw, wire.Handshake{InfoHash: n.infoHash, PeerID: n.peerID}); err != nil {
		return remote, err
	}
	return hs.PeerID, nil
}

func (n *Node) handleInbound(raw net.Conn) error {
	remote, err := n.handshake(raw, false)
	if err != nil {
		raw.Close()
		return err
	}
	return n.startConn(raw, remote)
}

// Connect dials a peer and adds it to the connection set. Connecting to an
// already-connected peer is a no-op.
func (n *Node) Connect(addr string) error {
	var raw net.Conn
	var err error
	if n.cfg.Shape != nil {
		raw, err = shaper.Dial("tcp", addr, *n.cfg.Shape, n.cfg.DialTimeout)
	} else {
		raw, err = net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
	}
	if err != nil {
		return fmt.Errorf("peer: dial %s: %w", addr, err)
	}
	remote, err := n.handshake(raw, true)
	if err != nil {
		raw.Close()
		return fmt.Errorf("peer: %s: %w", addr, err)
	}
	return n.startConn(raw, remote)
}

// trackerLoop announces periodically and connects to discovered peers.
func (n *Node) trackerLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.AnnounceInterval)
	defer t.Stop()
	n.announceAndConnect()
	// A faster watchdog drives download retries and timeouts.
	wd := time.NewTicker(time.Second)
	defer wd.Stop()
	for {
		select {
		case <-n.ctx.Done():
			return
		case <-t.C:
			n.announceAndConnect()
		case <-wd.C:
			n.expireStalled()
			n.reapIdleSlots()
			n.reconnectPeers()
			n.schedule()
		}
	}
}

// announceAndConnect refreshes swarm membership from the tracker. When
// the announce fails the node degrades gracefully instead of giving up:
// it keeps serving and downloading over existing connections, falls back
// to the peer list cached from the last successful announce, and
// re-announces on the next tick. Tracker loss and recovery are traced as
// fault events so timelines can attribute downstream stalls to it.
func (n *Node) announceAndConnect() {
	annStart := time.Now()
	peers, err := n.trk.Announce(n.infoHash, n.peerID, n.Addr(), n.seeder)
	if err != nil {
		n.nm.announceFails.Inc()
		n.cfg.Logf("peer %s: announce: %v", n.peerID, err)
		n.mu.Lock()
		wasUp := !n.trackerDown
		n.trackerDown = true
		cached := append([]tracker.PeerInfo(nil), n.cachedPeers...)
		n.mu.Unlock()
		if wasUp {
			n.emitAt(n.now(), trace.CatFault, trace.EvTrackerDown, -1)
		}
		n.connectKnownPeers(cached)
		n.schedule()
		return
	}
	// Only successful announces measure tracker RTT — a failed one's
	// elapsed time is the retry/timeout budget, not the server's latency.
	n.nm.announceRTT.ObserveDuration(time.Since(annStart))
	n.mu.Lock()
	wasDown := n.trackerDown
	n.trackerDown = false
	n.cachedPeers = append(n.cachedPeers[:0], peers...)
	n.mu.Unlock()
	if wasDown {
		n.emitAt(n.now(), trace.CatFault, trace.EvTrackerUp, -1)
	}
	n.connectKnownPeers(peers)
	n.schedule()
}

func (n *Node) hasConn(peerIDHex string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	for id := range n.conns {
		if id.String() == peerIDHex {
			return true
		}
	}
	return false
}
