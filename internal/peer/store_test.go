package peer

import (
	"bytes"
	"testing"
)

func TestStoreLifecycle(t *testing.T) {
	s, err := NewStore(3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Segments() != 3 || s.Count() != 0 || s.Complete() {
		t.Error("fresh store state wrong")
	}
	if s.Have(0) || s.Have(-1) || s.Have(99) {
		t.Error("fresh store should have nothing")
	}
	if err := s.Put(1, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if !s.Have(1) || s.Count() != 1 {
		t.Error("Put not reflected")
	}
	// Duplicate put keeps the first copy.
	if err := s.Put(1, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	b, err := s.Block(1, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, []byte("abc")) {
		t.Errorf("Block = %q, want abc", b)
	}
	if s.SegmentSize(1) != 3 || s.SegmentSize(0) != 0 || s.SegmentSize(-1) != 0 {
		t.Error("SegmentSize wrong")
	}
	bf := s.Bitfield()
	if bf[0] || !bf[1] || bf[2] {
		t.Errorf("Bitfield = %v", bf)
	}
	if err := s.Put(0, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(2, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if !s.Complete() {
		t.Error("store should be complete")
	}
}

func TestStoreErrors(t *testing.T) {
	if _, err := NewStore(0); err == nil {
		t.Error("zero-size store: want error")
	}
	if _, err := NewFullStore([][]byte{{1}, nil}); err == nil {
		t.Error("empty seed blob: want error")
	}
	s, err := NewStore(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(0, nil); err == nil {
		t.Error("empty blob: want error")
	}
	if err := s.Put(5, []byte("x")); err == nil {
		t.Error("out-of-range put: want error")
	}
	if _, err := s.Block(0, 0, 1); err == nil {
		t.Error("block of absent segment: want error")
	}
	if err := s.Put(0, []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	for _, tc := range [][2]int{{-1, 2}, {0, 0}, {2, 4}, {0, 5}} {
		if _, err := s.Block(0, tc[0], tc[1]); err == nil {
			t.Errorf("Block(%d, %d): want error", tc[0], tc[1])
		}
	}
}

func TestFullStoreCopiesInput(t *testing.T) {
	src := [][]byte{[]byte("hello")}
	s, err := NewFullStore(src)
	if err != nil {
		t.Fatal(err)
	}
	src[0][0] = 'X'
	b, err := s.Block(0, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "hello" {
		t.Errorf("store aliased caller buffer: %q", b)
	}
}
