package player

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestQuickPlayerInvariants feeds random (but time-ordered) completion
// sequences to a player and checks the structural invariants that must hold
// for any input:
//
//  1. the playhead never exceeds the downloaded frontier or the clip length;
//  2. closed stall intervals are disjoint, ordered, and positive;
//  3. total stall time never exceeds elapsed wall time;
//  4. once every segment is delivered, playback eventually finishes with
//     no further stalls.
func TestQuickPlayerInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		durs := make([]time.Duration, n)
		for i := range durs {
			durs[i] = time.Duration(500+r.Intn(8000)) * time.Millisecond
		}
		p, err := New(Config{
			SegmentDurations: durs,
			StartThreshold:   1 + r.Intn(2),
			ResumeThreshold:  time.Duration(r.Intn(6000)) * time.Millisecond,
		})
		if err != nil {
			return false
		}
		if err := p.Start(0); err != nil {
			return false
		}

		// Deliver all segments in random order at random increasing times,
		// probing invariants along the way.
		order := r.Perm(n)
		var now time.Duration
		for _, idx := range order {
			now += time.Duration(r.Intn(5000)) * time.Millisecond
			// Probe before the delivery.
			pos := p.Position(now)
			if pos < 0 || pos > p.ClipDuration() {
				t.Logf("seed %d: position %v outside clip", seed, pos)
				return false
			}
			if b := p.BufferedAhead(now); b < 0 {
				t.Logf("seed %d: negative buffer %v", seed, b)
				return false
			}
			if err := p.OnSegmentComplete(idx, now); err != nil {
				t.Logf("seed %d: complete(%d): %v", seed, idx, err)
				return false
			}
		}
		// Let playback drain fully.
		end := now + p.ClipDuration() + time.Second
		m := p.Metrics(end)
		if m.State != StateFinished {
			t.Logf("seed %d: final state %v", seed, m.State)
			return false
		}
		if m.TotalStall < 0 || m.TotalStall > end {
			t.Logf("seed %d: total stall %v out of range", seed, m.TotalStall)
			return false
		}
		var prevEnd time.Duration
		for i, iv := range m.StallIntervals {
			if iv.Duration() <= 0 {
				t.Logf("seed %d: non-positive stall %v", seed, iv)
				return false
			}
			if iv.Start < prevEnd {
				t.Logf("seed %d: overlapping stalls at %d", seed, i)
				return false
			}
			prevEnd = iv.End
		}
		// Startup + playing + stalls == finish time.
		if m.FinishedAt != m.StartupTime+p.ClipDuration()+m.TotalStall {
			t.Logf("seed %d: time accounting: finished=%v startup=%v clip=%v stalls=%v",
				seed, m.FinishedAt, m.StartupTime, p.ClipDuration(), m.TotalStall)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
