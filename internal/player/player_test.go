package player

import (
	"reflect"
	"testing"
	"time"
)

func sec(n float64) time.Duration { return time.Duration(n * float64(time.Second)) }

func newPlayer(t *testing.T, durs ...time.Duration) *Player {
	t.Helper()
	p, err := New(Config{SegmentDurations: durs})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func four(t *testing.T) *Player {
	return newPlayer(t, sec(4), sec(4), sec(4), sec(4))
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no segments: want error")
	}
	if _, err := New(Config{SegmentDurations: []time.Duration{0}}); err == nil {
		t.Error("zero duration: want error")
	}
	if _, err := New(Config{SegmentDurations: []time.Duration{sec(1)}, StartThreshold: 2}); err == nil {
		t.Error("threshold > segments: want error")
	}
}

func TestStartupTime(t *testing.T) {
	p := four(t)
	if err := p.Start(0); err != nil {
		t.Fatal(err)
	}
	if got := p.State(sec(1)); got != StateWaiting {
		t.Errorf("state = %v, want waiting", got)
	}
	if err := p.OnSegmentComplete(0, sec(2.5)); err != nil {
		t.Fatal(err)
	}
	m := p.Metrics(sec(3))
	if m.StartupTime != sec(2.5) {
		t.Errorf("StartupTime = %v, want 2.5s", m.StartupTime)
	}
	if m.State != StatePlaying {
		t.Errorf("state = %v, want playing", m.State)
	}
}

func TestSmoothPlaybackNoStalls(t *testing.T) {
	p := four(t)
	if err := p.Start(0); err != nil {
		t.Fatal(err)
	}
	// All segments arrive well ahead of the playhead.
	for i := 0; i < 4; i++ {
		if err := p.OnSegmentComplete(i, sec(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Playback: starts at 0s... startup was 0s (seg 0 at t=0).
	m := p.Metrics(sec(30))
	if m.Stalls != 0 || m.TotalStall != 0 {
		t.Errorf("stalls = %d/%v, want none", m.Stalls, m.TotalStall)
	}
	if m.State != StateFinished {
		t.Errorf("state = %v, want finished", m.State)
	}
	// Started at t=0, 16s of video: finished at 16s.
	if m.FinishedAt != sec(16) {
		t.Errorf("FinishedAt = %v, want 16s", m.FinishedAt)
	}
}

func TestStallAccounting(t *testing.T) {
	p := four(t)
	if err := p.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := p.OnSegmentComplete(0, sec(1)); err != nil { // play 4s of video from t=1
		t.Fatal(err)
	}
	// Segment 1 arrives at t=7; playhead hit the frontier at t=5.
	if err := p.OnSegmentComplete(1, sec(7)); err != nil {
		t.Fatal(err)
	}
	m := p.Metrics(sec(7))
	if m.Stalls != 1 {
		t.Fatalf("stalls = %d, want 1", m.Stalls)
	}
	if m.TotalStall != sec(2) {
		t.Errorf("TotalStall = %v, want 2s", m.TotalStall)
	}
	if len(m.StallIntervals) != 1 || m.StallIntervals[0] != (Interval{Start: sec(5), End: sec(7)}) {
		t.Errorf("intervals = %v, want [{5s 7s}]", m.StallIntervals)
	}
	// Remaining segments arrive instantly; finish without further stalls.
	if err := p.OnSegmentComplete(2, sec(7)); err != nil {
		t.Fatal(err)
	}
	if err := p.OnSegmentComplete(3, sec(7)); err != nil {
		t.Fatal(err)
	}
	m = p.Metrics(sec(60))
	if m.Stalls != 1 {
		t.Errorf("final stalls = %d, want 1", m.Stalls)
	}
	// Played 4s (1..5), stalled 2s (5..7), played 12s (7..19).
	if m.FinishedAt != sec(19) {
		t.Errorf("FinishedAt = %v, want 19s", m.FinishedAt)
	}
}

func TestOpenStallCounted(t *testing.T) {
	p := four(t)
	if err := p.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := p.OnSegmentComplete(0, 0); err != nil {
		t.Fatal(err)
	}
	// Playhead exhausts segment 0 at t=4; still stalled at t=10.
	m := p.Metrics(sec(10))
	if m.State != StateStalled {
		t.Fatalf("state = %v, want stalled", m.State)
	}
	if m.Stalls != 1 || m.TotalStall != sec(6) {
		t.Errorf("open stall = %d/%v, want 1/6s", m.Stalls, m.TotalStall)
	}
	if len(m.StallIntervals) != 0 {
		t.Errorf("open stall should not appear in closed intervals: %v", m.StallIntervals)
	}
}

func TestOutOfOrderCompletionNoResume(t *testing.T) {
	p := four(t)
	if err := p.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := p.OnSegmentComplete(0, 0); err != nil {
		t.Fatal(err)
	}
	// Segment 2 (non-contiguous) arrives during the stall: no resume.
	if err := p.OnSegmentComplete(2, sec(5)); err != nil {
		t.Fatal(err)
	}
	if got := p.State(sec(6)); got != StateStalled {
		t.Errorf("state = %v, want still stalled", got)
	}
	// Segment 1 closes the gap at t=8: contiguous jumps to 3, resume.
	if err := p.OnSegmentComplete(1, sec(8)); err != nil {
		t.Fatal(err)
	}
	if got := p.Contiguous(); got != 3 {
		t.Errorf("contiguous = %d, want 3", got)
	}
	if got := p.State(sec(8)); got != StatePlaying {
		t.Errorf("state = %v, want playing", got)
	}
	m := p.Metrics(sec(8))
	if m.Stalls != 1 || m.TotalStall != sec(4) {
		t.Errorf("stalls = %d/%v, want 1/4s", m.Stalls, m.TotalStall)
	}
}

func TestBufferedAhead(t *testing.T) {
	p := four(t)
	if err := p.Start(0); err != nil {
		t.Fatal(err)
	}
	if got := p.BufferedAhead(0); got != 0 {
		t.Errorf("initial BufferedAhead = %v, want 0", got)
	}
	if err := p.OnSegmentComplete(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.OnSegmentComplete(1, 0); err != nil {
		t.Fatal(err)
	}
	if got := p.BufferedAhead(0); got != sec(8) {
		t.Errorf("BufferedAhead = %v, want 8s", got)
	}
	if got := p.BufferedAhead(sec(3)); got != sec(5) {
		t.Errorf("BufferedAhead at 3s = %v, want 5s", got)
	}
}

func TestStartThreshold(t *testing.T) {
	p, err := New(Config{SegmentDurations: []time.Duration{sec(2), sec(2), sec(2)}, StartThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := p.OnSegmentComplete(0, sec(1)); err != nil {
		t.Fatal(err)
	}
	if got := p.State(sec(1)); got != StateWaiting {
		t.Errorf("after 1 segment: state = %v, want waiting", got)
	}
	if err := p.OnSegmentComplete(1, sec(3)); err != nil {
		t.Fatal(err)
	}
	m := p.Metrics(sec(3))
	if m.StartupTime != sec(3) || m.State != StatePlaying {
		t.Errorf("startup = %v state = %v, want 3s playing", m.StartupTime, m.State)
	}
}

func TestSegmentsBeforeStart(t *testing.T) {
	p := four(t)
	for i := 0; i < 4; i++ {
		if err := p.OnSegmentComplete(i, sec(1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Start(sec(5)); err != nil {
		t.Fatal(err)
	}
	m := p.Metrics(sec(5))
	if m.StartupTime != 0 || m.State != StatePlaying {
		t.Errorf("pre-buffered start: startup = %v state = %v", m.StartupTime, m.State)
	}
}

func TestDuplicateAndInvalidCompletions(t *testing.T) {
	p := four(t)
	if err := p.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := p.OnSegmentComplete(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.OnSegmentComplete(0, sec(1)); err != nil {
		t.Errorf("duplicate completion should be ignored, got %v", err)
	}
	if err := p.OnSegmentComplete(-1, 0); err == nil {
		t.Error("negative index: want error")
	}
	if err := p.OnSegmentComplete(4, 0); err == nil {
		t.Error("out-of-range index: want error")
	}
	if p.Completed(-1) || p.Completed(99) {
		t.Error("out-of-range Completed should be false")
	}
	if !p.Completed(0) || p.Completed(1) {
		t.Error("Completed flags wrong")
	}
}

func TestDoubleStart(t *testing.T) {
	p := four(t)
	if err := p.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(sec(1)); err == nil {
		t.Error("second Start: want error")
	}
}

func TestStateString(t *testing.T) {
	want := map[State]string{
		StateIdle: "idle", StateWaiting: "waiting", StatePlaying: "playing",
		StateStalled: "stalled", StateFinished: "finished", State(9): "State(9)",
	}
	for s, w := range want {
		if got := s.String(); got != w {
			t.Errorf("State(%d).String() = %q, want %q", s, got, w)
		}
	}
}

func TestZeroLengthStallNotCounted(t *testing.T) {
	p := four(t)
	if err := p.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := p.OnSegmentComplete(0, 0); err != nil {
		t.Fatal(err)
	}
	// Segment 1 arrives at exactly the instant the buffer empties.
	if err := p.OnSegmentComplete(1, sec(4)); err != nil {
		t.Fatal(err)
	}
	m := p.Metrics(sec(5))
	if m.Stalls != 0 {
		t.Errorf("zero-length stall counted: %d", m.Stalls)
	}
	if m.State != StatePlaying {
		t.Errorf("state = %v, want playing", m.State)
	}
}

func TestAccessors(t *testing.T) {
	p := four(t)
	if p.SegmentCount() != 4 {
		t.Errorf("SegmentCount = %d, want 4", p.SegmentCount())
	}
	if p.ClipDuration() != sec(16) {
		t.Errorf("ClipDuration = %v, want 16s", p.ClipDuration())
	}
	if p.NextMissing() != 0 {
		t.Errorf("NextMissing = %d, want 0", p.NextMissing())
	}
	if err := p.OnSegmentComplete(0, 0); err != nil {
		t.Fatal(err)
	}
	if p.NextMissing() != 1 {
		t.Errorf("NextMissing = %d, want 1", p.NextMissing())
	}
	if got := p.Position(sec(10)); got != 0 {
		t.Errorf("idle Position = %v, want 0", got)
	}
}

// TestObserverSeesTransitions drives a full lifecycle — startup, a stall
// with a retroactive start, recovery, finish — and checks the observer
// reports every transition exactly once, in order, with model times.
func TestObserverSeesTransitions(t *testing.T) {
	p := four(t)
	var got []Transition
	p.SetObserver(func(tr Transition) { got = append(got, tr) })

	if err := p.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := p.OnSegmentComplete(0, sec(1)); err != nil { // startup at 1s
		t.Fatal(err)
	}
	// Playhead hits the 4s frontier at t=5s; the stall is detected later,
	// at the t=7s completion, but must be reported as starting at 5s.
	if err := p.OnSegmentComplete(1, sec(7)); err != nil {
		t.Fatal(err)
	}
	if err := p.OnSegmentComplete(2, sec(8)); err != nil {
		t.Fatal(err)
	}
	if err := p.OnSegmentComplete(3, sec(9)); err != nil {
		t.Fatal(err)
	}
	p.Position(sec(60)) // drain to the end

	want := []Transition{
		{From: StateIdle, To: StateWaiting, At: 0},
		{From: StateWaiting, To: StatePlaying, At: sec(1)},
		{From: StatePlaying, To: StateStalled, At: sec(5)},
		{From: StateStalled, To: StatePlaying, At: sec(7)},
		// Played 4s at t=7s with 16s of clip: finish at 7+12 = 19s.
		{From: StatePlaying, To: StateFinished, At: sec(19)},
	}
	if len(got) != len(want) {
		t.Fatalf("observed %d transitions %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transition %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestObserverIsInert: metrics with and without an observer attached are
// identical — the observer is a pure listener.
func TestObserverIsInert(t *testing.T) {
	run := func(observe bool) Metrics {
		p := four(t)
		if observe {
			p.SetObserver(func(Transition) {})
		}
		if err := p.Start(0); err != nil {
			t.Fatal(err)
		}
		for i, at := range []float64{1, 7, 8, 9} {
			if err := p.OnSegmentComplete(i, sec(at)); err != nil {
				t.Fatal(err)
			}
		}
		return p.Metrics(sec(60))
	}
	plain, observed := run(false), run(true)
	if !reflect.DeepEqual(plain, observed) {
		t.Fatalf("observer changed metrics: %+v vs %+v", plain, observed)
	}
}
