// Package player models playback of a segmented clip: a playout buffer fed
// by segment-download completions and drained in real time by the playhead.
// It produces the three quantities the paper measures — startup time, stall
// count, and total stall duration — and exposes the buffered-playback
// horizon T that the adaptive pooling formula (Equation 1) consumes.
//
// The player is passive and clock-agnostic: callers supply the current time
// with every call, so the same implementation serves both the discrete-event
// emulation (virtual time) and the real TCP stack (wall time since join).
package player

import (
	"fmt"
	"time"
)

// State is the playback state.
type State uint8

const (
	// StateIdle means Start has not been called.
	StateIdle State = iota
	// StateWaiting means the viewer pressed play and the initial buffer is
	// still filling (the startup period).
	StateWaiting
	// StatePlaying means the playhead is advancing.
	StatePlaying
	// StateStalled means the playhead caught up with the download frontier.
	StateStalled
	// StateFinished means the whole clip has played.
	StateFinished
)

// String returns a short state name.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateWaiting:
		return "waiting"
	case StatePlaying:
		return "playing"
	case StateStalled:
		return "stalled"
	case StateFinished:
		return "finished"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Config configures a Player.
type Config struct {
	// SegmentDurations lists the display duration of every segment in
	// playback order. Must be non-empty with positive entries.
	SegmentDurations []time.Duration
	// StartThreshold is how many leading segments must be buffered before
	// playback begins. Values below 1 default to 1 (the paper's player
	// starts as soon as the first segment arrives).
	StartThreshold int
	// ResumeThreshold is the rebuffering depth: after a stall begins,
	// playback resumes only once this much contiguous video is buffered
	// ahead (or the clip tail is fully downloaded). Zero resumes as soon
	// as the next segment arrives. Real players rebuffer a few seconds to
	// avoid stall flapping.
	ResumeThreshold time.Duration
}

// Interval is one closed stall period.
type Interval struct {
	Start time.Duration
	End   time.Duration
}

// Duration returns the interval length.
func (iv Interval) Duration() time.Duration { return iv.End - iv.Start }

// Metrics is a snapshot of the paper's three playback measures.
type Metrics struct {
	// State is the playback state at snapshot time.
	State State
	// StartupTime is the delay from Start to first playback. Zero until
	// playback begins.
	StartupTime time.Duration
	// Stalls counts stall periods, including an in-progress one.
	Stalls int
	// TotalStall sums stall durations, including the in-progress one.
	TotalStall time.Duration
	// StallIntervals lists closed stall periods.
	StallIntervals []Interval
	// Position is the playhead position.
	Position time.Duration
	// FinishedAt is when playback completed (zero if not finished).
	FinishedAt time.Duration
}

// Transition is one playback state change, reported to an observer.
// At is the model time at which the transition took effect — for
// Playing→Stalled that is the (possibly retroactive) moment the playhead
// hit the frontier, not the later call that detected it.
type Transition struct {
	From State
	To   State
	At   time.Duration
}

// Player tracks playback state. It is not safe for concurrent use; the real
// stack serializes access, and the emulation is single-threaded.
type Player struct {
	durations []time.Duration
	prefix    []time.Duration // prefix[i] = total duration of segments [0, i)
	completed []bool
	threshold int
	observer  func(Transition)

	state      State
	resume     time.Duration // rebuffering depth before a stall ends
	contiguous int           // leading completed segments
	pos        time.Duration // playhead position
	last       time.Duration // time of the last state sync
	startedAt  time.Duration
	startup    time.Duration
	stallStart time.Duration
	stalls     []Interval
	finishedAt time.Duration
}

// New returns a Player for the given segment layout.
func New(cfg Config) (*Player, error) {
	if len(cfg.SegmentDurations) == 0 {
		return nil, fmt.Errorf("player: no segments")
	}
	threshold := cfg.StartThreshold
	if threshold < 1 {
		threshold = 1
	}
	if cfg.ResumeThreshold < 0 {
		return nil, fmt.Errorf("player: negative resume threshold %v", cfg.ResumeThreshold)
	}
	if threshold > len(cfg.SegmentDurations) {
		return nil, fmt.Errorf("player: start threshold %d exceeds %d segments",
			threshold, len(cfg.SegmentDurations))
	}
	p := &Player{
		durations: append([]time.Duration(nil), cfg.SegmentDurations...),
		completed: make([]bool, len(cfg.SegmentDurations)),
		prefix:    make([]time.Duration, len(cfg.SegmentDurations)+1),
		threshold: threshold,
		resume:    cfg.ResumeThreshold,
	}
	for i, d := range p.durations {
		if d <= 0 {
			return nil, fmt.Errorf("player: segment %d has non-positive duration %v", i, d)
		}
		p.prefix[i+1] = p.prefix[i] + d
	}
	return p, nil
}

// SetObserver registers fn to receive every state transition. The
// observer is a pure listener: it runs after the transition is applied
// and must not call back into the Player. Transitions detected lazily
// (stalls are noticed by the next query after the playhead hit the
// frontier) are reported with their retroactive model time. Pass nil to
// remove the observer.
func (p *Player) SetObserver(fn func(Transition)) { p.observer = fn }

// setState applies a state change and notifies the observer.
func (p *Player) setState(to State, at time.Duration) {
	from := p.state
	p.state = to
	if p.observer != nil && from != to {
		p.observer(Transition{From: from, To: to, At: at})
	}
}

// SegmentCount returns the number of segments in the clip.
func (p *Player) SegmentCount() int { return len(p.durations) }

// ClipDuration returns the total clip duration.
func (p *Player) ClipDuration() time.Duration { return p.prefix[len(p.durations)] }

// frontier returns the contiguous playable duration.
func (p *Player) frontier() time.Duration { return p.prefix[p.contiguous] }

// Start marks the viewer pressing play at now. Calling Start twice is an error.
func (p *Player) Start(now time.Duration) error {
	if p.state != StateIdle {
		return fmt.Errorf("player: Start called in state %v", p.state)
	}
	p.setState(StateWaiting, now)
	p.startedAt = now
	p.last = now
	// Segments may have arrived before the viewer pressed play.
	if p.contiguous >= p.threshold {
		p.startup = 0
		p.setState(StatePlaying, now)
	}
	return nil
}

// advanceTo moves the playhead to now.
func (p *Player) advanceTo(now time.Duration) {
	if now < p.last {
		now = p.last // clocks never run backwards; tolerate equal timestamps
	}
	if p.state == StatePlaying {
		newPos := p.pos + (now - p.last)
		clip := p.ClipDuration()
		f := p.frontier()
		switch {
		case newPos >= clip && f >= clip:
			p.finishedAt = p.last + (clip - p.pos)
			p.pos = clip
			p.setState(StateFinished, p.finishedAt)
		case newPos >= f:
			p.stallStart = p.last + (f - p.pos)
			p.pos = f
			p.setState(StateStalled, p.stallStart)
		default:
			p.pos = newPos
		}
	}
	p.last = now
}

// OnSegmentComplete records that segment idx finished downloading at now.
// Duplicate completions are ignored.
func (p *Player) OnSegmentComplete(idx int, now time.Duration) error {
	if idx < 0 || idx >= len(p.completed) {
		return fmt.Errorf("player: segment index %d out of range [0, %d)", idx, len(p.completed))
	}
	p.advanceTo(now)
	if p.completed[idx] {
		return nil
	}
	p.completed[idx] = true
	for p.contiguous < len(p.completed) && p.completed[p.contiguous] {
		p.contiguous++
	}
	switch p.state {
	case StateWaiting:
		if p.contiguous >= p.threshold {
			p.startup = now - p.startedAt
			p.setState(StatePlaying, now)
		}
	case StateStalled:
		f := p.frontier()
		rebuffered := f-p.pos >= p.resume || f >= p.ClipDuration()
		if f > p.pos && rebuffered {
			if now > p.stallStart {
				p.stalls = append(p.stalls, Interval{Start: p.stallStart, End: now})
			}
			p.setState(StatePlaying, now)
		}
	}
	return nil
}

// Position returns the playhead position at now.
func (p *Player) Position(now time.Duration) time.Duration {
	p.advanceTo(now)
	return p.pos
}

// BufferedAhead returns the buffered playback horizon T at now: how much
// contiguous video beyond the playhead has been downloaded. This is the T
// in the paper's Equation 1.
func (p *Player) BufferedAhead(now time.Duration) time.Duration {
	p.advanceTo(now)
	return p.frontier() - p.pos
}

// Contiguous returns the count of leading downloaded segments.
func (p *Player) Contiguous() int { return p.contiguous }

// NextMissing returns the index of the first segment not yet downloaded,
// or SegmentCount() if everything is downloaded.
func (p *Player) NextMissing() int { return p.contiguous }

// Completed reports whether segment idx has been downloaded.
func (p *Player) Completed(idx int) bool {
	if idx < 0 || idx >= len(p.completed) {
		return false
	}
	return p.completed[idx]
}

// State returns the playback state at now.
func (p *Player) State(now time.Duration) State {
	p.advanceTo(now)
	return p.state
}

// Metrics returns a snapshot of the playback measures at now. An
// in-progress stall contributes to Stalls and TotalStall but not to
// StallIntervals.
func (p *Player) Metrics(now time.Duration) Metrics {
	p.advanceTo(now)
	m := Metrics{
		State:          p.state,
		StartupTime:    p.startup,
		Stalls:         len(p.stalls),
		StallIntervals: append([]Interval(nil), p.stalls...),
		Position:       p.pos,
		FinishedAt:     p.finishedAt,
	}
	for _, iv := range p.stalls {
		m.TotalStall += iv.Duration()
	}
	if p.state == StateStalled && now > p.stallStart {
		m.Stalls++
		m.TotalStall += now - p.stallStart
	}
	return m
}
