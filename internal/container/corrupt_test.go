package container

import (
	"bytes"
	"testing"
)

// FlipBits is deterministic, flips exactly the requested number of bits,
// and any flip makes the manifest reject the blob.
func TestFlipBitsCorruptionIsDetected(t *testing.T) {
	v, segs := testSegments(t)
	info := ClipInfo{Duration: v.Duration(), BytesPerSecond: v.Config.BytesPerSecond, Seed: v.Seed}
	m, blobs, err := BuildManifest(info, "4s", segs)
	if err != nil {
		t.Fatal(err)
	}
	for nbits := 1; nbits <= 9; nbits += 4 {
		a := clone(blobs[0])
		b := clone(blobs[0])
		FlipBits(a, 42, nbits)
		FlipBits(b, 42, nbits)
		if !bytes.Equal(a, b) {
			t.Fatalf("FlipBits(seed=42, nbits=%d) is not deterministic", nbits)
		}
		diff := 0
		for i := range a {
			for bit := 0; bit < 8; bit++ {
				if (a[i]^blobs[0][i])&(1<<bit) != 0 {
					diff++
				}
			}
		}
		if diff != nbits {
			t.Errorf("nbits=%d: %d bits actually differ", nbits, diff)
		}
		if err := m.VerifySegment(0, a); err == nil {
			t.Errorf("nbits=%d: manifest verified a corrupted blob", nbits)
		}
	}
	// Different seeds damage different bits (the draws are keyed).
	a := clone(blobs[0])
	b := clone(blobs[0])
	FlipBits(a, 1, 8)
	FlipBits(b, 2, 8)
	if bytes.Equal(a, b) {
		t.Error("seeds 1 and 2 flipped identical bit sets")
	}
	// Degenerate inputs are no-ops.
	FlipBits(nil, 1, 4)
	empty := []byte{}
	FlipBits(empty, 1, 4)
	pristine := clone(blobs[0])
	FlipBits(pristine, 1, 0)
	if !bytes.Equal(pristine, blobs[0]) {
		t.Error("nbits=0 modified the buffer")
	}
	// nbits beyond the buffer saturates instead of looping forever.
	tiny := []byte{0x00}
	FlipBits(tiny, 7, 1000)
	if tiny[0] != 0xFF {
		t.Errorf("flipping all 8 bits of 0x00 = %#x, want 0xFF", tiny[0])
	}
}
