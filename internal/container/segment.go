// Package container defines the on-the-wire segment container and the clip
// manifest. The container wraps a spliced segment's frame index and payload
// with a checksummed, versioned binary header so peers can verify segments
// received from untrusted swarm members; the manifest is the playlist a
// seeder publishes (the HLS-playlist role in the paper's HTTP-streaming
// framing).
package container

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"time"

	"p2psplice/internal/media"
	"p2psplice/internal/splicer"
)

// Format constants.
const (
	// MagicLen is the length of the container magic.
	MagicLen = 8
	// headerLen is the fixed-size portion after the magic.
	headerLen = 4 + 1 + 4 + 8 + 8
	// frameEntryLen is the per-frame index entry size.
	frameEntryLen = 1 + 4 + 4
	// checksumLen is the SHA-256 trailer length.
	checksumLen = sha256.Size

	// MaxFrames bounds the frame count a decoder will accept, protecting
	// against corrupt or hostile headers.
	MaxFrames = 1 << 20
	// MaxPayload bounds the payload size a decoder will accept (1 GiB).
	MaxPayload = 1 << 30
)

// Magic identifies a v1 segment container.
var Magic = [MagicLen]byte{'P', '2', 'S', 'S', 'E', 'G', 1, 0}

// flag bits.
const flagInsertedIFrame = 1 << 0

// Segment is a decoded container: the transferable unit of the swarm.
type Segment struct {
	// Index is the segment's playback-order position.
	Index int
	// Start is the presentation time of the first frame.
	Start time.Duration
	// InsertedIFrame records duration-splicing keyframe insertion.
	InsertedIFrame bool
	// Frames is the frame index (types, sizes, durations).
	Frames []FrameInfo
	// Payload holds the coded bytes; len(Payload) equals the sum of frame sizes.
	Payload []byte
}

// FrameInfo is one entry of the container's frame index.
type FrameInfo struct {
	Type     media.FrameType
	Bytes    int64
	Duration time.Duration
}

// Duration returns the display duration of the segment.
func (s *Segment) Duration() time.Duration {
	var d time.Duration
	for _, f := range s.Frames {
		d += f.Duration
	}
	return d
}

// PayloadBytes returns the payload length.
func (s *Segment) PayloadBytes() int64 { return int64(len(s.Payload)) }

// Checksum returns the SHA-256 digest of the encoded container.
func (s *Segment) Checksum() ([checksumLen]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		return [checksumLen]byte{}, err
	}
	b := buf.Bytes()
	var sum [checksumLen]byte
	copy(sum[:], b[len(b)-checksumLen:])
	return sum, nil
}

// Build materializes a spliced segment into a container, generating a
// deterministic pseudo-payload from (seed, segment index). Two seeders
// holding the same clip seed produce byte-identical containers, so swarm
// checksums agree.
func Build(seg splicer.Segment, seed int64) (*Segment, error) {
	if err := seg.Validate(); err != nil {
		return nil, err
	}
	out := &Segment{
		Index:          seg.Index,
		Start:          seg.Start,
		InsertedIFrame: seg.InsertedIFrame,
		Frames:         make([]FrameInfo, len(seg.Frames)),
	}
	var total int64
	for i, f := range seg.Frames {
		out.Frames[i] = FrameInfo{Type: f.Type, Bytes: f.Bytes, Duration: f.Duration}
		total += f.Bytes
	}
	if total > MaxPayload {
		return nil, fmt.Errorf("container: segment %d payload %d exceeds limit", seg.Index, total)
	}
	out.Payload = GeneratePayload(seed, seg.Index, int(total))
	return out, nil
}

// Encode writes the container to w: magic, header, frame index, payload,
// and a SHA-256 trailer over everything preceding it.
func Encode(w io.Writer, s *Segment) error {
	if len(s.Frames) == 0 {
		return fmt.Errorf("container: segment %d has no frames", s.Index)
	}
	if len(s.Frames) > MaxFrames {
		return fmt.Errorf("container: segment %d has %d frames, limit %d", s.Index, len(s.Frames), MaxFrames)
	}
	var total int64
	for i, f := range s.Frames {
		if f.Bytes <= 0 || f.Bytes > MaxPayload {
			return fmt.Errorf("container: segment %d frame %d has bad size %d", s.Index, i, f.Bytes)
		}
		if !f.Type.Valid() {
			return fmt.Errorf("container: segment %d frame %d has invalid type", s.Index, i)
		}
		total += f.Bytes
	}
	if total != int64(len(s.Payload)) {
		return fmt.Errorf("container: segment %d payload %d bytes, frame index says %d",
			s.Index, len(s.Payload), total)
	}

	h := sha256.New()
	mw := io.MultiWriter(w, h)

	if _, err := mw.Write(Magic[:]); err != nil {
		return fmt.Errorf("container: write magic: %w", err)
	}
	var flags uint8
	if s.InsertedIFrame {
		flags |= flagInsertedIFrame
	}
	hdr := make([]byte, headerLen)
	binary.BigEndian.PutUint32(hdr[0:4], uint32(s.Index))
	hdr[4] = flags
	binary.BigEndian.PutUint32(hdr[5:9], uint32(len(s.Frames)))
	binary.BigEndian.PutUint64(hdr[9:17], uint64(s.Start))
	binary.BigEndian.PutUint64(hdr[17:25], uint64(len(s.Payload)))
	if _, err := mw.Write(hdr); err != nil {
		return fmt.Errorf("container: write header: %w", err)
	}

	entry := make([]byte, frameEntryLen)
	for i, f := range s.Frames {
		if f.Duration < 0 || f.Duration > time.Duration(1<<32-1) {
			return fmt.Errorf("container: segment %d frame %d duration %v out of range", s.Index, i, f.Duration)
		}
		entry[0] = byte(f.Type)
		binary.BigEndian.PutUint32(entry[1:5], uint32(f.Bytes))
		binary.BigEndian.PutUint32(entry[5:9], uint32(f.Duration))
		if _, err := mw.Write(entry); err != nil {
			return fmt.Errorf("container: write frame index: %w", err)
		}
	}
	if _, err := mw.Write(s.Payload); err != nil {
		return fmt.Errorf("container: write payload: %w", err)
	}
	if _, err := w.Write(h.Sum(nil)); err != nil {
		return fmt.Errorf("container: write checksum: %w", err)
	}
	return nil
}

// EncodeBytes encodes s into a fresh byte slice.
func EncodeBytes(s *Segment) ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(MagicLen + headerLen + len(s.Frames)*frameEntryLen + len(s.Payload) + checksumLen)
	if err := Encode(&buf, s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode reads one container from r, verifying the magic and checksum.
func Decode(r io.Reader) (*Segment, error) {
	h := sha256.New()
	tr := io.TeeReader(r, h)

	var magic [MagicLen]byte
	if _, err := io.ReadFull(tr, magic[:]); err != nil {
		return nil, fmt.Errorf("container: read magic: %w", err)
	}
	if magic != Magic {
		return nil, fmt.Errorf("container: bad magic %x", magic)
	}
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(tr, hdr); err != nil {
		return nil, fmt.Errorf("container: read header: %w", err)
	}
	s := &Segment{
		Index:          int(binary.BigEndian.Uint32(hdr[0:4])),
		InsertedIFrame: hdr[4]&flagInsertedIFrame != 0,
		Start:          time.Duration(binary.BigEndian.Uint64(hdr[9:17])),
	}
	frameCount := binary.BigEndian.Uint32(hdr[5:9])
	payloadLen := binary.BigEndian.Uint64(hdr[17:25])
	if frameCount == 0 || frameCount > MaxFrames {
		return nil, fmt.Errorf("container: frame count %d out of range", frameCount)
	}
	if payloadLen > MaxPayload {
		return nil, fmt.Errorf("container: payload %d exceeds limit", payloadLen)
	}

	s.Frames = make([]FrameInfo, frameCount)
	entry := make([]byte, frameEntryLen)
	var total int64
	for i := range s.Frames {
		if _, err := io.ReadFull(tr, entry); err != nil {
			return nil, fmt.Errorf("container: read frame index: %w", err)
		}
		fi := FrameInfo{
			Type:     media.FrameType(entry[0]),
			Bytes:    int64(binary.BigEndian.Uint32(entry[1:5])),
			Duration: time.Duration(binary.BigEndian.Uint32(entry[5:9])),
		}
		if !fi.Type.Valid() {
			return nil, fmt.Errorf("container: frame %d has invalid type %d", i, entry[0])
		}
		if fi.Bytes <= 0 {
			return nil, fmt.Errorf("container: frame %d has non-positive size", i)
		}
		total += fi.Bytes
		s.Frames[i] = fi
	}
	if total != int64(payloadLen) {
		return nil, fmt.Errorf("container: frame index sums to %d, header says %d", total, payloadLen)
	}
	s.Payload = make([]byte, payloadLen)
	if _, err := io.ReadFull(tr, s.Payload); err != nil {
		return nil, fmt.Errorf("container: read payload: %w", err)
	}
	want := h.Sum(nil)
	got := make([]byte, checksumLen)
	if _, err := io.ReadFull(r, got); err != nil {
		return nil, fmt.Errorf("container: read checksum: %w", err)
	}
	if !bytes.Equal(got, want) {
		return nil, fmt.Errorf("container: checksum mismatch: got %s, want %s",
			hex.EncodeToString(got), hex.EncodeToString(want))
	}
	return s, nil
}

// DecodeBytes decodes a container from b, rejecting trailing garbage.
func DecodeBytes(b []byte) (*Segment, error) {
	r := bytes.NewReader(b)
	s, err := Decode(r)
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("container: %d trailing bytes", r.Len())
	}
	return s, nil
}

// WireSize returns the encoded container size for a segment with the given
// frame count and payload bytes, without materializing it: magic + header +
// frame index + payload + checksum trailer.
func WireSize(frames int, payload int64) int64 {
	return int64(MagicLen+headerLen+frames*frameEntryLen+checksumLen) + payload
}
