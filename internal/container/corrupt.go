package container

// FlipBits deterministically flips nbits distinct bit positions of buf in
// place, keyed by seed. It models transport-level payload corruption for
// tests and fault injection: the damage is reproducible (same seed, same
// buffer length, same bits), and any single flipped bit is enough to make
// Manifest.VerifySegment reject the blob, since the manifest checksums
// cover every payload byte. Buffers shorter than one byte are returned
// unchanged.
func FlipBits(buf []byte, seed int64, nbits int) {
	total := len(buf) * 8
	if total == 0 || nbits <= 0 {
		return
	}
	if nbits > total {
		nbits = total
	}
	// splitmix64 stream keyed by seed; rejection-free modulo bias is
	// irrelevant here (corruption needs no uniformity guarantees), but
	// distinctness matters: flipping the same bit twice undoes it.
	x := uint64(seed) ^ 0x9E3779B97F4A7C15
	flipped := make(map[int]bool, nbits)
	for done := 0; done < nbits; {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		pos := int(z % uint64(total))
		if flipped[pos] {
			continue
		}
		flipped[pos] = true
		buf[pos/8] ^= 1 << (pos % 8)
		done++
	}
}
