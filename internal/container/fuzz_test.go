package container

import (
	"bytes"
	"testing"
	"time"

	"p2psplice/internal/media"
	"p2psplice/internal/splicer"
)

// FuzzDecode checks that the container decoder never panics and never
// accepts corrupted input as valid.
func FuzzDecode(f *testing.F) {
	// Seed with a valid container and mutations of it.
	v, err := media.Synthesize(media.DefaultEncoderConfig(), 4*time.Second, 1)
	if err != nil {
		f.Fatal(err)
	}
	segs, err := splicer.DurationSplicer{Target: 2 * time.Second}.Splice(v)
	if err != nil {
		f.Fatal(err)
	}
	cs, err := Build(segs[0], 1)
	if err != nil {
		f.Fatal(err)
	}
	blob, err := EncodeBytes(cs)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add([]byte{})
	f.Add(Magic[:])
	mutated := append([]byte(nil), blob...)
	mutated[len(mutated)/3] ^= 0x42
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeBytes(data)
		if err != nil {
			return // rejection is always acceptable
		}
		// Anything accepted must re-encode to the identical bytes.
		out, err := EncodeBytes(s)
		if err != nil {
			t.Fatalf("decoded container failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatal("decode/encode not a bijection on accepted input")
		}
	})
}

// FuzzReadManifest checks the manifest parser never panics.
func FuzzReadManifest(f *testing.F) {
	v, err := media.Synthesize(media.DefaultEncoderConfig(), 4*time.Second, 1)
	if err != nil {
		f.Fatal(err)
	}
	segs, err := splicer.DurationSplicer{Target: 2 * time.Second}.Splice(v)
	if err != nil {
		f.Fatal(err)
	}
	m, _, err := BuildManifest(ClipInfo{
		Duration: v.Duration(), BytesPerSecond: v.Config.BytesPerSecond, Seed: 1,
	}, "2s", segs)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("{}"))
	f.Add([]byte("not json"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadManifest(bytes.NewReader(data))
		if err == nil && m.Validate() != nil {
			t.Fatal("ReadManifest returned an invalid manifest without error")
		}
	})
}
