package container

// GeneratePayload produces n deterministic pseudo-random bytes for segment
// segIndex of the clip identified by seed. It stands in for real coded video
// data: two seeders configured with the same clip seed emit byte-identical
// segments, so checksums published in the manifest verify across the swarm.
func GeneratePayload(seed int64, segIndex, n int) []byte {
	if n <= 0 {
		return nil
	}
	out := make([]byte, n)
	// splitmix64 keyed by (seed, segIndex); fast and reproducible.
	x := uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(segIndex+1)*0xBF58476D1CE4E5B9
	i := 0
	for i+8 <= n {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		out[i] = byte(z)
		out[i+1] = byte(z >> 8)
		out[i+2] = byte(z >> 16)
		out[i+3] = byte(z >> 24)
		out[i+4] = byte(z >> 32)
		out[i+5] = byte(z >> 40)
		out[i+6] = byte(z >> 48)
		out[i+7] = byte(z >> 56)
		i += 8
	}
	if i < n {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		for ; i < n; i++ {
			out[i] = byte(z)
			z >>= 8
		}
	}
	return out
}
