package container

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteM3U8 renders the manifest as an HLS media playlist (RFC 8216), the
// format the paper's framing is built around ("In HTTP live streaming (HLS),
// a video is spliced into multiple segments"). Segment URIs are
// baseURL/<index>.seg; a standard HLS player pointed at a server that maps
// those URIs to the encoded containers will play the clip's timeline.
func (m *Manifest) WriteM3U8(w io.Writer, baseURL string) error {
	if err := m.Validate(); err != nil {
		return err
	}
	baseURL = strings.TrimSuffix(baseURL, "/")

	// EXT-X-TARGETDURATION is the maximum segment duration, rounded up.
	var target float64
	for _, s := range m.Segments {
		if d := s.Duration.Seconds(); d > target {
			target = d
		}
	}
	var b strings.Builder
	b.WriteString("#EXTM3U\n")
	b.WriteString("#EXT-X-VERSION:3\n")
	fmt.Fprintf(&b, "#EXT-X-TARGETDURATION:%d\n", int(math.Ceil(target)))
	b.WriteString("#EXT-X-MEDIA-SEQUENCE:0\n")
	b.WriteString("#EXT-X-PLAYLIST-TYPE:VOD\n")
	for _, s := range m.Segments {
		fmt.Fprintf(&b, "#EXTINF:%.5f,\n", s.Duration.Seconds())
		if baseURL != "" {
			fmt.Fprintf(&b, "%s/%d.seg\n", baseURL, s.Index)
		} else {
			fmt.Fprintf(&b, "%d.seg\n", s.Index)
		}
	}
	b.WriteString("#EXT-X-ENDLIST\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("container: write playlist: %w", err)
	}
	return nil
}
