package container

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"p2psplice/internal/media"
	"p2psplice/internal/splicer"
)

func testSegments(t *testing.T) (*media.Video, []splicer.Segment) {
	t.Helper()
	v, err := media.Synthesize(media.DefaultEncoderConfig(), 20*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := splicer.DurationSplicer{Target: 4 * time.Second}.Splice(v)
	if err != nil {
		t.Fatal(err)
	}
	return v, segs
}

func TestBuildAndRoundTrip(t *testing.T) {
	_, segs := testSegments(t)
	for _, sg := range segs {
		cs, err := Build(sg, 1)
		if err != nil {
			t.Fatalf("Build(%d): %v", sg.Index, err)
		}
		if cs.PayloadBytes() != sg.Bytes() {
			t.Errorf("segment %d payload %d, want %d", sg.Index, cs.PayloadBytes(), sg.Bytes())
		}
		if cs.Duration() != sg.Duration() {
			t.Errorf("segment %d duration %v, want %v", sg.Index, cs.Duration(), sg.Duration())
		}
		blob, err := EncodeBytes(cs)
		if err != nil {
			t.Fatalf("Encode(%d): %v", sg.Index, err)
		}
		got, err := DecodeBytes(blob)
		if err != nil {
			t.Fatalf("Decode(%d): %v", sg.Index, err)
		}
		if got.Index != cs.Index || got.Start != cs.Start || got.InsertedIFrame != cs.InsertedIFrame {
			t.Errorf("segment %d header round-trip mismatch: %+v vs %+v", sg.Index, got, cs)
		}
		if len(got.Frames) != len(cs.Frames) {
			t.Fatalf("segment %d frame count %d, want %d", sg.Index, len(got.Frames), len(cs.Frames))
		}
		for i := range got.Frames {
			if got.Frames[i] != cs.Frames[i] {
				t.Errorf("segment %d frame %d mismatch", sg.Index, i)
			}
		}
		if !bytes.Equal(got.Payload, cs.Payload) {
			t.Errorf("segment %d payload mismatch", sg.Index)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	_, segs := testSegments(t)
	cs, err := Build(segs[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := EncodeBytes(cs)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { c := clone(b); c[0] ^= 0xFF; return c }},
		{"flipped payload byte", func(b []byte) []byte { c := clone(b); c[len(c)/2] ^= 0x01; return c }},
		{"flipped checksum byte", func(b []byte) []byte { c := clone(b); c[len(c)-1] ^= 0x01; return c }},
		{"truncated", func(b []byte) []byte { return clone(b)[:len(b)-5] }},
		{"trailing garbage", func(b []byte) []byte { return append(clone(b), 0xAB) }},
		{"empty", func(b []byte) []byte { return nil }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := DecodeBytes(tt.mut(blob)); err == nil {
				t.Error("want decode error, got nil")
			}
		})
	}
}

func clone(b []byte) []byte {
	c := make([]byte, len(b))
	copy(c, b)
	return c
}

func TestDecodeRejectsHostileHeader(t *testing.T) {
	// A header claiming a huge frame count must be rejected before any
	// large allocation.
	var buf bytes.Buffer
	buf.Write(Magic[:])
	hdr := make([]byte, headerLen)
	hdr[5], hdr[6], hdr[7], hdr[8] = 0xFF, 0xFF, 0xFF, 0xFF // frameCount
	buf.Write(hdr)
	if _, err := Decode(&buf); err == nil {
		t.Error("want error for hostile frame count")
	}
}

func TestEncodeRejectsBadSegments(t *testing.T) {
	tests := []struct {
		name string
		seg  *Segment
	}{
		{"no frames", &Segment{}},
		{"payload mismatch", &Segment{
			Frames:  []FrameInfo{{Type: media.FrameI, Bytes: 10, Duration: time.Second}},
			Payload: make([]byte, 5),
		}},
		{"invalid frame type", &Segment{
			Frames:  []FrameInfo{{Type: media.FrameType(9), Bytes: 4, Duration: time.Second}},
			Payload: make([]byte, 4),
		}},
		{"non-positive frame size", &Segment{
			Frames:  []FrameInfo{{Type: media.FrameI, Bytes: 0, Duration: time.Second}},
			Payload: nil,
		}},
		{"duration overflow", &Segment{
			Frames:  []FrameInfo{{Type: media.FrameI, Bytes: 4, Duration: time.Duration(1 << 40)}},
			Payload: make([]byte, 4),
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := EncodeBytes(tt.seg); err == nil {
				t.Error("want encode error, got nil")
			}
		})
	}
}

func TestGeneratePayloadDeterministic(t *testing.T) {
	a := GeneratePayload(7, 3, 1000)
	b := GeneratePayload(7, 3, 1000)
	if !bytes.Equal(a, b) {
		t.Error("same key produced different payloads")
	}
	c := GeneratePayload(7, 4, 1000)
	if bytes.Equal(a, c) {
		t.Error("different segment index produced identical payload")
	}
	d := GeneratePayload(8, 3, 1000)
	if bytes.Equal(a, d) {
		t.Error("different seed produced identical payload")
	}
	if GeneratePayload(1, 1, 0) != nil {
		t.Error("zero-length payload should be nil")
	}
	if got := len(GeneratePayload(1, 1, 13)); got != 13 {
		t.Errorf("payload length %d, want 13", got)
	}
}

func TestBuildManifestAndVerify(t *testing.T) {
	v, segs := testSegments(t)
	info := ClipInfo{Duration: v.Duration(), BytesPerSecond: v.Config.BytesPerSecond, Seed: v.Seed}
	m, blobs, err := BuildManifest(info, "4s", segs)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(blobs) != len(segs) {
		t.Fatalf("got %d blobs, want %d", len(blobs), len(segs))
	}
	for i, blob := range blobs {
		if err := m.VerifySegment(i, blob); err != nil {
			t.Errorf("VerifySegment(%d): %v", i, err)
		}
	}
	// Cross-verification must fail.
	if len(blobs) >= 2 {
		if err := m.VerifySegment(0, blobs[1]); err == nil {
			t.Error("verifying wrong blob should fail")
		}
	}
	// A flipped byte must fail even at the right length.
	bad := clone(blobs[0])
	bad[len(bad)/2] ^= 1
	if err := m.VerifySegment(0, bad); err == nil {
		t.Error("verifying corrupted blob should fail")
	}
	if err := m.VerifySegment(-1, blobs[0]); err == nil {
		t.Error("negative index should fail")
	}
	if m.TotalBytes() <= v.TotalBytes() {
		t.Errorf("manifest total %d should exceed source %d (headers + inserted I frames)",
			m.TotalBytes(), v.TotalBytes())
	}
}

func TestManifestJSONRoundTrip(t *testing.T) {
	v, segs := testSegments(t)
	info := ClipInfo{Duration: v.Duration(), BytesPerSecond: v.Config.BytesPerSecond, Seed: v.Seed}
	m, _, err := BuildManifest(info, "4s", segs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Splicing != m.Splicing || len(got.Segments) != len(m.Segments) {
		t.Error("manifest round-trip mismatch")
	}
	for i := range got.Segments {
		if got.Segments[i] != m.Segments[i] {
			t.Errorf("segment info %d mismatch", i)
		}
	}
}

func TestReadManifestRejectsBadInput(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"garbage", "not json"},
		{"unknown field", `{"version":1,"bogus":true}`},
		{"wrong version", `{"version":2,"video":{"duration_ns":1,"bytes_per_second":1,"seed":0},"splicing":"gop","segments":[]}`},
		{"no segments", `{"version":1,"video":{"duration_ns":1,"bytes_per_second":1,"seed":0},"splicing":"gop","segments":[]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadManifest(strings.NewReader(tt.in)); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestManifestValidateDetails(t *testing.T) {
	v, segs := testSegments(t)
	info := ClipInfo{Duration: v.Duration(), BytesPerSecond: v.Config.BytesPerSecond, Seed: v.Seed}
	fresh := func() *Manifest {
		m, _, err := BuildManifest(info, "4s", segs)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	mut := []struct {
		name string
		mut  func(*Manifest)
	}{
		{"index gap", func(m *Manifest) { m.Segments[1].Index = 5 }},
		{"start gap", func(m *Manifest) { m.Segments[1].Start += time.Second }},
		{"zero duration", func(m *Manifest) { m.Segments[0].Duration = 0 }},
		{"zero bytes", func(m *Manifest) { m.Segments[0].Bytes = 0 }},
		{"bad checksum hex", func(m *Manifest) { m.Segments[0].SHA256 = "zz" }},
		{"coverage mismatch", func(m *Manifest) { m.Video.Duration += time.Second }},
		{"zero clip duration", func(m *Manifest) { m.Video.Duration = 0 }},
	}
	for _, tt := range mut {
		t.Run(tt.name, func(t *testing.T) {
			m := fresh()
			tt.mut(m)
			if err := m.Validate(); err == nil {
				t.Error("want validation error, got nil")
			}
		})
	}
}

func TestChecksumMatchesManifest(t *testing.T) {
	v, segs := testSegments(t)
	cs, err := Build(segs[0], v.Seed)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := cs.Checksum()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := EncodeBytes(cs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sum[:], blob[len(blob)-32:]) {
		t.Error("Checksum() does not match encoded trailer")
	}
}

func TestWireSizeMatchesEncoding(t *testing.T) {
	_, segs := testSegments(t)
	for _, sg := range segs {
		cs, err := Build(sg, 1)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := EncodeBytes(cs)
		if err != nil {
			t.Fatal(err)
		}
		want := WireSize(len(sg.Frames), sg.Bytes())
		if int64(len(blob)) != want {
			t.Errorf("segment %d: WireSize = %d, encoded = %d", sg.Index, want, len(blob))
		}
	}
}

func TestWriteM3U8(t *testing.T) {
	v, segs := testSegments(t)
	info := ClipInfo{Duration: v.Duration(), BytesPerSecond: v.Config.BytesPerSecond, Seed: v.Seed}
	m, _, err := BuildManifest(info, "4s", segs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteM3U8(&buf, "http://cdn.example/clip/"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"#EXTM3U", "#EXT-X-VERSION:3", "#EXT-X-TARGETDURATION:",
		"#EXT-X-PLAYLIST-TYPE:VOD", "#EXT-X-ENDLIST",
		"http://cdn.example/clip/0.seg",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("playlist missing %q:\n%s", want, out)
		}
	}
	// One EXTINF per segment, and durations sum to the clip.
	if got := strings.Count(out, "#EXTINF:"); got != len(m.Segments) {
		t.Errorf("%d EXTINF lines, want %d", got, len(m.Segments))
	}
	// Invalid manifests are rejected.
	bad := *m
	bad.Segments = nil
	if err := bad.WriteM3U8(&buf, ""); err == nil {
		t.Error("invalid manifest: want error")
	}
	// Empty base URL yields relative URIs.
	buf.Reset()
	if err := m.WriteM3U8(&buf, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\n0.seg\n") {
		t.Error("relative URI missing")
	}
}
