package container

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"p2psplice/internal/splicer"
)

// ManifestVersion is the current manifest schema version.
const ManifestVersion = 1

// Manifest is the playlist a seeder publishes: clip metadata plus the
// ordered segment index with per-segment checksums. It plays the role the
// HLS playlist plays in the paper's HTTP-streaming framing and the role the
// torrent metainfo plays in its BitTorrent-like protocol.
type Manifest struct {
	Version int      `json:"version"`
	Video   ClipInfo `json:"video"`
	// Splicing is the splicer label that produced the segments ("gop", "4s"...).
	Splicing string        `json:"splicing"`
	Segments []SegmentInfo `json:"segments"`
}

// ClipInfo describes the source clip.
type ClipInfo struct {
	// Duration is the clip display duration in nanoseconds.
	Duration time.Duration `json:"duration_ns"`
	// BytesPerSecond is the clip's coded rate.
	BytesPerSecond int64 `json:"bytes_per_second"`
	// Seed identifies the synthetic clip (reproducibility metadata).
	Seed int64 `json:"seed"`
}

// SegmentInfo is one manifest entry.
type SegmentInfo struct {
	Index int `json:"index"`
	// Start and Duration are display times in nanoseconds.
	Start    time.Duration `json:"start_ns"`
	Duration time.Duration `json:"duration_ns"`
	// Bytes is the full container size on the wire.
	Bytes int64 `json:"bytes"`
	// SHA256 is the hex digest of the encoded container.
	SHA256 string `json:"sha256"`
	// InsertedIFrame records duration-splicing keyframe insertion.
	InsertedIFrame bool `json:"inserted_iframe,omitempty"`
}

// BuildManifest materializes every segment (via Build/Encode) and assembles
// the manifest plus the encoded container blobs, keyed by segment index.
func BuildManifest(info ClipInfo, splicing string, segs []splicer.Segment) (*Manifest, [][]byte, error) {
	if len(segs) == 0 {
		return nil, nil, fmt.Errorf("container: no segments")
	}
	m := &Manifest{
		Version:  ManifestVersion,
		Video:    info,
		Splicing: splicing,
		Segments: make([]SegmentInfo, len(segs)),
	}
	blobs := make([][]byte, len(segs))
	for i, sg := range segs {
		cs, err := Build(sg, info.Seed)
		if err != nil {
			return nil, nil, fmt.Errorf("container: segment %d: %w", i, err)
		}
		blob, err := EncodeBytes(cs)
		if err != nil {
			return nil, nil, fmt.Errorf("container: segment %d: %w", i, err)
		}
		sum := sha256.Sum256(blob)
		m.Segments[i] = SegmentInfo{
			Index:          sg.Index,
			Start:          sg.Start,
			Duration:       sg.Duration(),
			Bytes:          int64(len(blob)),
			SHA256:         hex.EncodeToString(sum[:]),
			InsertedIFrame: sg.InsertedIFrame,
		}
		blobs[i] = blob
	}
	return m, blobs, nil
}

// Validate checks the manifest's structural invariants: version, contiguous
// indices and presentation times, positive sizes, well-formed checksums.
func (m *Manifest) Validate() error {
	if m.Version != ManifestVersion {
		return fmt.Errorf("container: manifest version %d, want %d", m.Version, ManifestVersion)
	}
	if len(m.Segments) == 0 {
		return fmt.Errorf("container: manifest has no segments")
	}
	if m.Video.Duration <= 0 {
		return fmt.Errorf("container: manifest clip duration %v", m.Video.Duration)
	}
	var at time.Duration
	for i, s := range m.Segments {
		if s.Index != i {
			return fmt.Errorf("container: manifest segment %d has index %d", i, s.Index)
		}
		if s.Start != at {
			return fmt.Errorf("container: manifest segment %d starts at %v, want %v", i, s.Start, at)
		}
		if s.Duration <= 0 {
			return fmt.Errorf("container: manifest segment %d has duration %v", i, s.Duration)
		}
		if s.Bytes <= 0 {
			return fmt.Errorf("container: manifest segment %d has size %d", i, s.Bytes)
		}
		if b, err := hex.DecodeString(s.SHA256); err != nil || len(b) != sha256.Size {
			return fmt.Errorf("container: manifest segment %d has bad checksum %q", i, s.SHA256)
		}
		at += s.Duration
	}
	if at != m.Video.Duration {
		return fmt.Errorf("container: manifest segments cover %v, want %v", at, m.Video.Duration)
	}
	return nil
}

// TotalBytes returns the sum of all segment container sizes.
func (m *Manifest) TotalBytes() int64 {
	var n int64
	for _, s := range m.Segments {
		n += s.Bytes
	}
	return n
}

// VerifySegment checks an encoded container blob against manifest entry idx.
func (m *Manifest) VerifySegment(idx int, blob []byte) error {
	if idx < 0 || idx >= len(m.Segments) {
		return fmt.Errorf("container: segment index %d out of range", idx)
	}
	want := m.Segments[idx]
	if int64(len(blob)) != want.Bytes {
		return fmt.Errorf("container: segment %d is %d bytes, manifest says %d", idx, len(blob), want.Bytes)
	}
	sum := sha256.Sum256(blob)
	if hex.EncodeToString(sum[:]) != want.SHA256 {
		return fmt.Errorf("container: segment %d checksum mismatch", idx)
	}
	return nil
}

// WriteJSON writes the manifest as indented JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("container: encode manifest: %w", err)
	}
	return nil
}

// ReadManifest parses and validates a JSON manifest.
func ReadManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("container: decode manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
