package reputation

import (
	"reflect"
	"testing"
	"time"
)

func TestZeroConfigDisabledNeverQuarantines(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	tb := NewTable[int](Config{VerifyFailCost: 4})
	for i := 0; i < 100; i++ {
		up := tb.Observe(1, time.Duration(i)*time.Second, ObsVerifyFail)
		if up.Quarantined || up.State == Quarantined {
			t.Fatal("disabled config quarantined a peer")
		}
	}
}

func TestScoresAccumulateAndQuarantine(t *testing.T) {
	cfg := Default()
	tb := NewTable[string](cfg)
	// Default: 4 per verify fail, threshold 10 → third failure trips it.
	now := time.Second
	var up Update
	for i := 0; i < 3; i++ {
		up = tb.Observe("evil", now, ObsVerifyFail)
	}
	if !up.Quarantined || up.State != Quarantined {
		t.Fatalf("three rapid verify failures did not quarantine: %+v", up)
	}
	if want := now + cfg.QuarantineFor; up.Until != want {
		t.Fatalf("quarantine until %v, want %v", up.Until, want)
	}
	if !tb.Quarantined("evil", now) {
		t.Fatal("Quarantined read disagrees with update")
	}
	if tb.Quarantined("evil", up.Until) {
		t.Fatal("still quarantined at window end")
	}
	if st := tb.State("evil", up.Until); st != Probation {
		t.Fatalf("state after window = %v, want probation", st)
	}
	if tb.Quarantined("bystander", now) {
		t.Fatal("unobserved peer is quarantined")
	}
}

func TestDecayFullyRehabilitates(t *testing.T) {
	cfg := Default()
	tb := NewTable[int](cfg)
	tb.Observe(1, 0, ObsVerifyFail)
	s0 := tb.Score(1, 0)
	if s0 != cfg.VerifyFailCost {
		t.Fatalf("score after one failure = %v, want %v", s0, cfg.VerifyFailCost)
	}
	half := tb.Score(1, cfg.DecayHalfLife)
	if half < s0*0.49 || half > s0*0.51 {
		t.Fatalf("score after one half-life = %v, want ~%v", half, s0/2)
	}
	// Many half-lives later the score must snap to exactly zero so the
	// peer ties a clean one.
	if s := tb.Score(1, 100*cfg.DecayHalfLife); s != 0 {
		t.Fatalf("score after 100 half-lives = %v, want exactly 0", s)
	}
	// Score reads must not mutate: an Observe at that instant sees the
	// same decayed base.
	up := tb.Observe(1, 100*cfg.DecayHalfLife, ObsVerifyFail)
	if up.Score != cfg.VerifyFailCost {
		t.Fatalf("post-decay failure score = %v, want %v", up.Score, cfg.VerifyFailCost)
	}
}

func TestSuccessRewardAndProbationClear(t *testing.T) {
	cfg := Default()
	cfg.DecayHalfLife = 0 // isolate the reward/probation arithmetic
	tb := NewTable[int](cfg)
	tb.Observe(1, 0, ObsVerifyFail)
	up := tb.Observe(1, 0, ObsSuccess)
	if up.Score != cfg.VerifyFailCost-cfg.SuccessReward {
		t.Fatalf("score after success = %v, want %v", up.Score, cfg.VerifyFailCost-cfg.SuccessReward)
	}
	// Drive into quarantine, exit the window, then clear via probation.
	entered := false
	for i := 0; i < 3; i++ {
		up = tb.Observe(1, 0, ObsVerifyFail)
		entered = entered || up.Quarantined
	}
	if !entered || up.State != Quarantined {
		t.Fatalf("expected quarantine, got %+v", up)
	}
	after := up.Until
	for i := 0; i < cfg.ProbationSuccesses; i++ {
		if tb.State(1, after) != Probation {
			t.Fatalf("success %d: state %v, want probation", i, tb.State(1, after))
		}
		up = tb.Observe(1, after, ObsSuccess)
	}
	if !up.Cleared || up.Score != 0 || up.State != Healthy {
		t.Fatalf("probation did not clear: %+v", up)
	}
}

func TestPenaltyDuringProbationRequarantines(t *testing.T) {
	cfg := Default()
	cfg.DecayHalfLife = 0
	tb := NewTable[int](cfg)
	var up Update
	for i := 0; i < 3; i++ {
		up = tb.Observe(1, 0, ObsVerifyFail)
	}
	after := up.Until
	// Score is 12 ≥ threshold 10; one more failure on probation must
	// reopen the window immediately.
	up = tb.Observe(1, after, ObsVerifyFail)
	if !up.Quarantined || up.Until != after+cfg.QuarantineFor {
		t.Fatalf("probation penalty did not re-quarantine: %+v", up)
	}
	snap := tb.Snapshot(after)
	if len(snap) != 1 || snap[0].Quarantines != 2 {
		t.Fatalf("expected 2 quarantine windows in snapshot, got %+v", snap)
	}
}

func TestSnapshotDeterministicInsertionOrder(t *testing.T) {
	run := func() []PeerStats[int] {
		tb := NewTable[int](Default())
		for _, k := range []int{5, 2, 9, 2, 5, 7} {
			tb.Observe(k, time.Second, ObsVerifyFail)
		}
		tb.Observe(9, 2*time.Second, ObsSuccess)
		return tb.Snapshot(3 * time.Second)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical observation sequences produced different snapshots")
	}
	wantOrder := []int{5, 2, 9, 7}
	for i, ps := range a {
		if ps.Key != wantOrder[i] {
			t.Fatalf("snapshot order %v, want first-observation order %v", a, wantOrder)
		}
	}
	if a[0].Penalties != 2 || a[2].Successes != 1 {
		t.Fatalf("snapshot counters wrong: %+v", a)
	}
}

func TestObservationAndStateNames(t *testing.T) {
	names := map[string]string{
		ObsSuccess.String():    "success",
		ObsVerifyFail.String(): "verify_fail",
		ObsStaleHave.String():  "stale_have",
		ObsSlowServe.String():  "slow_serve",
		ObsTimeout.String():    "timeout",
		Healthy.String():       "healthy",
		Probation.String():     "probation",
		Quarantined.String():   "quarantined",
	}
	for got, want := range names {
		if got != want {
			t.Errorf("String(): got %q want %q", got, want)
		}
	}
}
