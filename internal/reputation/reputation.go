// Package reputation is a deterministic per-peer scoring and quarantine
// subsystem shared by both stacks: the emulation (internal/simpeer,
// keyed by peer index on the virtual clock) and the real node
// (internal/peer, keyed by wire.PeerID on the playback clock).
//
// Misbehavior observations (verify failures, stale-have lies, slow
// serves, serve timeouts) add to a per-peer score that decays
// exponentially with a configurable half-life; successful serves pay
// the score down. When the score crosses QuarantineScore the peer is
// quarantined for QuarantineFor: selectors skip it unless it is the
// sole remaining source (the liveness escape hatch — a fully
// quarantined swarm with one honest seeder must still complete). After
// the window the peer is on probation: it is selectable again, and
// ProbationSuccesses verified serves clear its score entirely, while
// further misbehavior can re-quarantine it immediately.
//
// Determinism contract (DESIGN.md §14): the table never reads a clock —
// callers pass `now` explicitly (sim time or playback time) — and never
// draws randomness, so identical observation sequences produce
// identical scores, states, and snapshots. Snapshot iterates peers in
// first-observation order, not map order. The package is registered in
// splicelint's DeterministicPackages.
package reputation

import (
	"fmt"
	"math"
	"time"
)

// Config parameterizes scoring, decay, and quarantine. The zero value
// is disabled (Enabled reports false): consumers treat it as "no
// reputation" and keep their legacy behavior bit-identical.
type Config struct {
	// Penalty costs per observation kind.
	VerifyFailCost float64 // a served segment failed manifest verification
	StaleHaveCost  float64 // advertised a segment, then never served a byte
	SlowServeCost  float64 // served below the slow-serve floor
	TimeoutCost    float64 // a transfer expired mid-flight

	// SuccessReward is subtracted from the score (floored at 0) on each
	// verified serve outside probation.
	SuccessReward float64

	// DecayHalfLife halves the score per elapsed interval; 0 disables
	// decay (scores only move on observations).
	DecayHalfLife time.Duration

	// QuarantineScore is the score at or above which a penalized peer is
	// quarantined; it also gates Enabled.
	QuarantineScore float64
	// QuarantineFor is how long a quarantine window lasts.
	QuarantineFor time.Duration
	// ProbationSuccesses is how many verified serves after a quarantine
	// window clear the score back to zero.
	ProbationSuccesses int

	// Detection thresholds consumed by the stacks, not the table:
	// ServeTimeout bounds how long a pending request may sit without
	// completing before the source is charged (stale-have or timeout);
	// SlowServeBytesPerSec is the delivery-rate floor below which a
	// completed serve is charged SlowServeCost.
	ServeTimeout         time.Duration
	SlowServeBytesPerSec int64
}

// Enabled reports whether the config activates reputation tracking.
func (c Config) Enabled() bool { return c.QuarantineScore > 0 }

// Default returns the tuning used by both stacks unless overridden: a
// handful of verify failures quarantines a peer for 20s, transient sins
// decay with a 30s half-life, and three clean serves after the window
// fully rehabilitate it.
func Default() Config {
	return Config{
		VerifyFailCost:       4,
		StaleHaveCost:        3,
		SlowServeCost:        2,
		TimeoutCost:          1,
		SuccessReward:        0.5,
		DecayHalfLife:        30 * time.Second,
		QuarantineScore:      10,
		QuarantineFor:        20 * time.Second,
		ProbationSuccesses:   3,
		ServeTimeout:         4 * time.Second,
		SlowServeBytesPerSec: 4 << 10,
	}
}

// cost maps a penalty observation to its configured score cost.
func (c Config) cost(o Observation) float64 {
	switch o {
	case ObsVerifyFail:
		return c.VerifyFailCost
	case ObsStaleHave:
		return c.StaleHaveCost
	case ObsSlowServe:
		return c.SlowServeCost
	case ObsTimeout:
		return c.TimeoutCost
	default:
		return 0
	}
}

// Observation is one reputation-relevant event about a peer.
type Observation int

const (
	// ObsSuccess is a verified, timely serve.
	ObsSuccess Observation = iota
	// ObsVerifyFail is a serve whose payload failed verification.
	ObsVerifyFail
	// ObsStaleHave is an advertised segment the peer never started
	// serving before the serve timeout.
	ObsStaleHave
	// ObsSlowServe is a serve delivered below the slow-serve rate floor.
	ObsSlowServe
	// ObsTimeout is a transfer that expired mid-flight.
	ObsTimeout
)

// String returns the canonical trace name of the observation.
func (o Observation) String() string {
	switch o {
	case ObsSuccess:
		return "success"
	case ObsVerifyFail:
		return "verify_fail"
	case ObsStaleHave:
		return "stale_have"
	case ObsSlowServe:
		return "slow_serve"
	case ObsTimeout:
		return "timeout"
	default:
		return fmt.Sprintf("obs(%d)", int(o))
	}
}

// State is a peer's standing at a given instant.
type State int

const (
	// Healthy peers are selectable with no strings attached.
	Healthy State = iota
	// Probation peers are selectable; enough successes clear their score.
	Probation
	// Quarantined peers are skipped unless they are the sole source.
	Quarantined
)

// String returns the canonical trace name of the state.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Probation:
		return "probation"
	case Quarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Update reports the effect of one observation.
type Update struct {
	Score       float64       // decayed score after the observation
	State       State         // standing after the observation
	Quarantined bool          // this observation opened a quarantine window
	Until       time.Duration // end of the current/last quarantine window
	Cleared     bool          // this observation completed probation
}

// scoreFloor snaps decayed scores to exactly zero: full rehabilitation,
// so a long-clean peer ties a never-penalized one instead of losing
// ranking to an invisible residue forever.
const scoreFloor = 1e-3

// entry is one peer's record. Times are the caller's clock.
type entry struct {
	score         float64
	at            time.Duration // instant score was last current
	quarUntil     time.Duration
	probationLeft int
	penalties     int64
	successes     int64
	quarantines   int64
}

// Table tracks reputation for peers keyed by K. It performs no locking:
// simpeer runs single-threaded on the event loop, and internal/peer
// calls it under the node mutex.
type Table[K comparable] struct {
	cfg     Config
	entries map[K]*entry
	order   []K // first-observation order, for deterministic Snapshot
}

// NewTable builds a table with the given config.
func NewTable[K comparable](cfg Config) *Table[K] {
	return &Table[K]{cfg: cfg, entries: make(map[K]*entry)}
}

// Config returns the table's configuration.
func (t *Table[K]) Config() Config { return t.cfg }

func (t *Table[K]) get(k K) *entry {
	e := t.entries[k]
	if e == nil {
		e = &entry{}
		t.entries[k] = e
		t.order = append(t.order, k)
	}
	return e
}

// decay brings e's score current to now.
func (t *Table[K]) decay(e *entry, now time.Duration) {
	if now <= e.at {
		return
	}
	if e.score > 0 && t.cfg.DecayHalfLife > 0 {
		e.score *= math.Exp2(-float64(now-e.at) / float64(t.cfg.DecayHalfLife))
		if e.score < scoreFloor {
			e.score = 0
		}
	}
	e.at = now
}

func (t *Table[K]) stateOf(e *entry, now time.Duration) State {
	switch {
	case now < e.quarUntil:
		return Quarantined
	case e.probationLeft > 0:
		return Probation
	default:
		return Healthy
	}
}

// Observe records one observation about peer k at instant now and
// returns the resulting update. now must be monotone per table (both
// stacks' clocks are).
func (t *Table[K]) Observe(k K, now time.Duration, obs Observation) Update {
	e := t.get(k)
	t.decay(e, now)
	var up Update
	if obs == ObsSuccess {
		e.successes++
		if e.probationLeft > 0 && now >= e.quarUntil {
			e.probationLeft--
			if e.probationLeft == 0 {
				e.score = 0
				up.Cleared = true
			}
		} else if t.cfg.SuccessReward > 0 {
			e.score -= t.cfg.SuccessReward
			if e.score < 0 {
				e.score = 0
			}
		}
	} else {
		e.penalties++
		e.score += t.cfg.cost(obs)
		if now >= e.quarUntil && t.cfg.Enabled() && e.score >= t.cfg.QuarantineScore {
			e.quarUntil = now + t.cfg.QuarantineFor
			e.probationLeft = t.cfg.ProbationSuccesses
			e.quarantines++
			up.Quarantined = true
		}
	}
	up.Score = e.score
	up.State = t.stateOf(e, now)
	up.Until = e.quarUntil
	return up
}

// Score returns k's decayed score at now without recording anything.
func (t *Table[K]) Score(k K, now time.Duration) float64 {
	e := t.entries[k]
	if e == nil {
		return 0
	}
	if now > e.at && e.score > 0 && t.cfg.DecayHalfLife > 0 {
		s := e.score * math.Exp2(-float64(now-e.at)/float64(t.cfg.DecayHalfLife))
		if s < scoreFloor {
			return 0
		}
		return s
	}
	return e.score
}

// State returns k's standing at now. Pure read: safe to call from stall
// classifiers and other observers without perturbing the table.
func (t *Table[K]) State(k K, now time.Duration) State {
	e := t.entries[k]
	if e == nil {
		return Healthy
	}
	return t.stateOf(e, now)
}

// Quarantined reports whether k is quarantined at now.
func (t *Table[K]) Quarantined(k K, now time.Duration) bool {
	return t.State(k, now) == Quarantined
}

// PeerStats is one peer's row in a Snapshot.
type PeerStats[K comparable] struct {
	Key         K
	Score       float64
	State       State
	Penalties   int64
	Successes   int64
	Quarantines int64
}

// Snapshot returns every observed peer's stats in first-observation
// order — deterministic for identical observation sequences.
func (t *Table[K]) Snapshot(now time.Duration) []PeerStats[K] {
	out := make([]PeerStats[K], 0, len(t.order))
	for _, k := range t.order {
		e := t.entries[k]
		out = append(out, PeerStats[K]{
			Key:         k,
			Score:       t.Score(k, now),
			State:       t.stateOf(e, now),
			Penalties:   e.penalties,
			Successes:   e.successes,
			Quarantines: e.quarantines,
		})
	}
	return out
}
