// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event queue with stable FIFO ordering among
// simultaneous events, and a seeded RNG. It is the substrate under the
// network emulator that replaces the paper's GENI testbed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use: all event handlers run on the caller's goroutine, which is
// what makes runs deterministic.
type Engine struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	rng    *rand.Rand
	onFire func(at time.Duration)
}

// New returns an engine whose RNG is seeded with seed. The virtual clock
// starts at zero.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// RNG returns the engine's deterministic random source.
func (e *Engine) RNG() *rand.Rand { return e.rng }

// SetFireObserver registers fn to run after each event fires, with the
// virtual time of that event. The observer is a pure listener for
// instrumentation (event counting, trace heartbeats): it must not
// schedule events, draw from the RNG, or otherwise feed back into the
// simulation, so that runs are identical with and without it. Pass nil
// to remove the observer.
func (e *Engine) SetFireObserver(fn func(at time.Duration)) { e.onFire = fn }

// Pending returns the number of scheduled (uncancelled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// Timer is a handle to a scheduled event.
type Timer struct {
	ev *event
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op. A nil timer is safe to cancel.
func (t *Timer) Cancel() {
	if t != nil && t.ev != nil {
		t.ev.cancelled = true
	}
}

// Cancelled reports whether the timer was cancelled before firing.
func (t *Timer) Cancelled() bool { return t != nil && t.ev != nil && t.ev.cancelled }

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero (fires at the current instant, after already-queued events for
// that instant).
func (e *Engine) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t. Times in the past fire at the
// current instant.
func (e *Engine) At(t time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil function")
	}
	if t < e.now {
		t = e.now
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &Timer{ev: ev}
}

// Step fires the next event, advancing the clock. It returns false when the
// queue is empty.
//
//lint:hotpath the simulator's inner loop; the benchmarks assert 0 allocs/op
func (e *Engine) Step() bool {
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fn()
		if e.onFire != nil {
			e.onFire(ev.at)
		}
		return true
	}
	return false
}

// Run fires events until the queue is empty or the event budget is
// exhausted. It returns an error on budget exhaustion, which almost always
// indicates a livelock (events rescheduling each other forever).
func (e *Engine) Run(maxEvents int) error {
	for i := 0; maxEvents <= 0 || i < maxEvents; i++ {
		if !e.Step() {
			return nil
		}
	}
	return fmt.Errorf("sim: event budget %d exhausted at t=%v", maxEvents, e.now)
}

// RunUntil fires events with virtual time <= deadline, then sets the clock
// to deadline. Events scheduled beyond the deadline stay queued.
func (e *Engine) RunUntil(deadline time.Duration) {
	for e.events.Len() > 0 {
		ev := e.events[0]
		if ev.cancelled {
			heap.Pop(&e.events)
			continue
		}
		if ev.at > deadline {
			break
		}
		heap.Pop(&e.events)
		e.now = ev.at
		ev.fn()
		if e.onFire != nil {
			e.onFire(ev.at)
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
}

type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	index     int
}

// eventHeap orders by (time, insertion sequence) for deterministic FIFO
// behaviour among simultaneous events.
type eventHeap []*event

//lint:hotpath heap op on every schedule/fire
func (h eventHeap) Len() int { return len(h) }

//lint:hotpath heap op on every schedule/fire
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

//lint:hotpath heap op on every schedule/fire
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

//lint:hotpath heap op on every schedule/fire; *event values are pointer-shaped, so boxing into any is free
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	//lint:ignore allocfree amortized: the heap's backing array grows to the pending-event high-water mark once
	*h = append(*h, ev)
}

//lint:hotpath heap op on every schedule/fire; *event values are pointer-shaped, so boxing into any is free
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
