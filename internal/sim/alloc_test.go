// Zero-allocation tests for the //lint:hotpath contract on the event
// loop: scheduling allocates (one event and one Timer per At, by
// design), but the heap operations and Step itself must not. Excluded
// under -race because race instrumentation inserts allocations the
// production build does not have.

//go:build !race

package sim

import (
	"container/heap"
	"testing"
	"time"
)

func nop() {}

// TestZeroAllocStep pins the fire path: with events already scheduled,
// draining them through Step allocates nothing — *event is
// pointer-shaped, so even the heap's `any` boxing is free.
func TestZeroAllocStep(t *testing.T) {
	e := New(1)
	evs := make([]*event, 256)
	for i := range evs {
		evs[i] = &event{at: time.Duration(i), seq: uint64(i), fn: nop}
	}
	allocs := testing.AllocsPerRun(50, func() {
		for _, ev := range evs {
			heap.Push(&e.events, ev)
		}
		for e.Step() {
		}
	})
	if allocs != 0 {
		t.Errorf("heap ops + Step allocated %.1f times per drain, want 0", allocs)
	}
}

// BenchmarkHotpathSimStep is the -benchmem gate for the simulator's
// inner loop: `make bench-alloc` fails if it reports nonzero allocs/op.
// Each op pushes and drains a 256-event heap.
func BenchmarkHotpathSimStep(b *testing.B) {
	e := New(1)
	evs := make([]*event, 256)
	for i := range evs {
		evs[i] = &event{at: time.Duration(i), seq: uint64(i), fn: nop}
	}
	// Warm-up drain grows the heap's backing array outside the measurement.
	for _, ev := range evs {
		heap.Push(&e.events, ev)
	}
	for e.Step() {
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ev := range evs {
			heap.Push(&e.events, ev)
		}
		for e.Step() {
		}
	}
}
