package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := New(1)
	var order []int
	e.Schedule(3*time.Second, func() { order = append(order, 3) })
	e.Schedule(1*time.Second, func() { order = append(order, 1) })
	e.Schedule(2*time.Second, func() { order = append(order, 2) })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now() = %v, want 3s", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { order = append(order, i) })
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("simultaneous events fired out of insertion order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New(1)
	var fired []time.Duration
	e.Schedule(time.Second, func() {
		fired = append(fired, e.Now())
		e.Schedule(time.Second, func() {
			fired = append(fired, e.Now())
		})
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 2*time.Second {
		t.Errorf("fired = %v, want [1s 2s]", fired)
	}
}

func TestCancel(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.Schedule(time.Second, func() { fired = true })
	tm.Cancel()
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
	if !tm.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
	var nilTimer *Timer
	nilTimer.Cancel() // must not panic
	if nilTimer.Cancelled() {
		t.Error("nil timer should not report cancelled")
	}
}

func TestNegativeDelayAndPastTime(t *testing.T) {
	e := New(1)
	e.Schedule(time.Second, func() {
		e.Schedule(-5*time.Second, func() {
			if e.Now() != time.Second {
				t.Errorf("negative delay fired at %v, want 1s", e.Now())
			}
		})
		e.At(0, func() {
			if e.Now() != time.Second {
				t.Errorf("past At fired at %v, want 1s", e.Now())
			}
		})
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestRunBudget(t *testing.T) {
	e := New(1)
	var loop func()
	loop = func() { e.Schedule(time.Millisecond, loop) }
	e.Schedule(0, loop)
	if err := e.Run(100); err == nil {
		t.Error("want budget-exhausted error for livelock")
	}
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 5 * time.Second} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(3 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now() = %v, want 3s", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", e.Pending())
	}
	e.RunUntil(10 * time.Second)
	if len(fired) != 3 {
		t.Errorf("fired %d events after second RunUntil, want 3", len(fired))
	}
}

func TestRunUntilSkipsCancelled(t *testing.T) {
	e := New(1)
	tm := e.Schedule(time.Second, func() { t.Error("cancelled event fired") })
	tm.Cancel()
	e.RunUntil(2 * time.Second)
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d, want 0", e.Pending())
	}
}

func TestAtNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for nil function")
		}
	}()
	New(1).At(0, nil)
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		e := New(42)
		var draws []int64
		for i := 0; i < 5; i++ {
			e.Schedule(time.Duration(i)*time.Second, func() {
				draws = append(draws, e.RNG().Int63())
			})
		}
		if err := e.Run(0); err != nil {
			t.Fatal(err)
		}
		return draws
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different RNG draws")
		}
	}
}

// Property: events always fire in non-decreasing time order regardless of
// insertion order.
func TestQuickMonotoneClock(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New(7)
		var times []time.Duration
		for _, d := range delays {
			e.Schedule(time.Duration(d)*time.Millisecond, func() {
				times = append(times, e.Now())
			})
		}
		if err := e.Run(0); err != nil {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// The fire observer sees every fired event (and no cancelled ones), and
// its presence changes nothing about execution.
func TestFireObserverCountsFires(t *testing.T) {
	run := func(observe bool) (fired int, times []time.Duration) {
		e := New(11)
		if observe {
			e.SetFireObserver(func(at time.Duration) { fired++ })
		}
		var cancelled *Timer
		for i := 0; i < 5; i++ {
			d := time.Duration(i) * time.Millisecond
			tm := e.Schedule(d, func() { times = append(times, e.Now()) })
			if i == 3 {
				cancelled = tm
			}
		}
		cancelled.Cancel()
		if err := e.Run(0); err != nil {
			t.Fatal(err)
		}
		return fired, times
	}
	fired, times := run(true)
	if fired != 4 {
		t.Fatalf("observer saw %d fires, want 4 (cancelled event must not count)", fired)
	}
	_, plain := run(false)
	if len(plain) != len(times) {
		t.Fatalf("observer changed execution: %v vs %v", plain, times)
	}
	for i := range plain {
		if plain[i] != times[i] {
			t.Fatalf("observer changed firing times: %v vs %v", plain, times)
		}
	}
}
