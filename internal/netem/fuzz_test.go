package netem

import "testing"

// FuzzReallocate feeds fuzzer-mutated byte scripts through the
// differential harness: each input decodes into a flow-event script
// (transfer starts, engine steps, cancellations, capacity changes, link
// flaps, scheduled fault plans) replayed against a paired incremental
// network and reallocateFull oracle. Any rate or state divergence, or a
// link carrying more than its derated capacity, fails the run. Seed
// corpus entries cover each opcode family so the fuzzer starts from
// structurally valid scripts.
func FuzzReallocate(f *testing.F) {
	// seed/node header, then op-heavy tails exercising each opcode class.
	f.Add([]byte{1, 2, 3, 10, 20, 30, 40, 0, 1, 0, 128, 3, 200, 3, 255})
	f.Add([]byte{9, 9, 5, 50, 60, 7, 0, 2, 0, 1, 64, 5, 0, 17, 0, 3, 40, 4, 1, 3, 255})
	f.Add([]byte{0, 44, 2, 90, 90, 0, 0, 6, 1, 3, 30, 6, 1, 3, 30, 7, 0, 12, 1, 3, 250})
	f.Add([]byte{200, 1, 6, 1, 2, 3, 4, 5, 6, 7, 8, 0, 0, 5, 16, 1, 3, 47, 5, 2, 8, 0, 3, 100, 4, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512] // bound script length, not coverage
		}
		if err := differentialScript(data); err != nil {
			t.Fatal(err)
		}
	})
}
