// Package netem emulates the paper's GENI testbed: a star topology of nodes
// with shaped access links (bandwidth, latency, loss), carrying TCP-like
// transfers between peers.
//
// It is a flow-level model on top of the discrete-event engine in
// internal/sim: each segment download is a flow; active flows share link
// capacity max-min fairly, and each flow is additionally capped by a TCP
// model — connection setup costs 1.5 RTT, throughput ramps like slow start
// (doubling per RTT from an initial window), and sustained throughput under
// path loss follows the Mathis bound C·MSS/(RTT·sqrt(p)). These are exactly
// the mechanisms behind the paper's observations: many small segments pay
// per-connection setup ("many small TCP connections that create congestion"),
// and high-latency/lossy paths cap per-flow throughput so the download-pool
// size matters.
package netem

import (
	"fmt"
	"time"

	"p2psplice/internal/sim"
)

// NodeID identifies a node in the emulated network.
type NodeID int

// Config holds the TCP model parameters.
type Config struct {
	// MSS is the TCP maximum segment size in bytes. Default 1460.
	MSS int
	// InitCwndSegments is the initial congestion window in MSS units
	// (RFC 6928 initial window). Default 10.
	InitCwndSegments int
	// MathisC is the constant in the Mathis throughput bound. Default 1.22.
	MathisC float64
	// LossEventFactor converts a raw packet-loss rate into the TCP
	// loss-*event* rate used by the Mathis bound; modern stacks with SACK
	// recover several drops per loss event, so the event rate is well below
	// the packet-drop rate. Default 0.125, calibrated so that one flow over
	// the paper's 5%-loss, 100 ms-RTT path sustains ~160 kB/s — enough to
	// carry the paper's 128 kB/s clip on one connection (as its testbed
	// evidently did) while still capping per-flow throughput well below the
	// faster links, which is what makes the download-pool size matter.
	LossEventFactor float64
	// HandshakeRTTs is the connection-establishment cost in RTTs before the
	// first payload byte (TCP handshake plus the request). Default 1.5.
	// Set to a negative value for a free handshake (treated as exactly 0).
	HandshakeRTTs float64
	// ConcurrencyPenalty models the aggregate goodput loss of running many
	// simultaneous TCP flows through a small-buffer shaped link (retransmit
	// waste, synchronized losses): a link carrying n flows delivers
	// capacity / (1 + ConcurrencyPenalty*max(0, n-ConcurrencyFreeFlows)).
	// This is the "large pool size increases the network overload ... which
	// increases the stalls" mechanism in the paper's Figure 5 discussion.
	// Default 0.1. Set to a negative value to disable (treated as 0).
	ConcurrencyPenalty float64
	// ConcurrencyFreeFlows is the number of concurrent flows a link carries
	// without degradation (shaper buffers absorb a few flows cleanly).
	// Default 3. Set to a negative value for 0.
	ConcurrencyFreeFlows int
	// TimeoutHazard is the per-second probability (per excess flow beyond
	// ConcurrencyFreeFlows on the flow's most crowded link) that a flow
	// suffers a retransmission timeout and freezes. RTOs — not smooth
	// goodput loss — are how overloading a small-buffer shaped link with
	// many TCP flows actually manifests: individual transfers stall for
	// seconds. Default 0.02. Negative disables.
	TimeoutHazard float64
	// TimeoutMeanFreeze is the mean duration of an RTO freeze (exponential,
	// clamped to [0.2s, 8s]). Default 1.5s. Negative disables freezing.
	TimeoutMeanFreeze time.Duration
}

// DefaultConfig returns the default TCP model parameters.
func DefaultConfig() Config {
	return Config{
		MSS:                  1460,
		InitCwndSegments:     10,
		MathisC:              1.22,
		LossEventFactor:      0.125,
		HandshakeRTTs:        1.5,
		ConcurrencyPenalty:   0.1,
		ConcurrencyFreeFlows: 3,
		TimeoutHazard:        0.05,
		TimeoutMeanFreeze:    1500 * time.Millisecond,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MSS <= 0 {
		c.MSS = d.MSS
	}
	if c.InitCwndSegments <= 0 {
		c.InitCwndSegments = d.InitCwndSegments
	}
	if c.MathisC <= 0 {
		c.MathisC = d.MathisC
	}
	if c.LossEventFactor <= 0 {
		c.LossEventFactor = d.LossEventFactor
	}
	switch {
	case c.HandshakeRTTs == 0:
		c.HandshakeRTTs = d.HandshakeRTTs
	case c.HandshakeRTTs < 0:
		c.HandshakeRTTs = 0
	}
	switch {
	case c.ConcurrencyPenalty == 0:
		c.ConcurrencyPenalty = d.ConcurrencyPenalty
	case c.ConcurrencyPenalty < 0:
		c.ConcurrencyPenalty = 0
	}
	switch {
	case c.ConcurrencyFreeFlows == 0:
		c.ConcurrencyFreeFlows = d.ConcurrencyFreeFlows
	case c.ConcurrencyFreeFlows < 0:
		c.ConcurrencyFreeFlows = 0
	}
	switch {
	case c.TimeoutHazard == 0:
		c.TimeoutHazard = d.TimeoutHazard
	case c.TimeoutHazard < 0:
		c.TimeoutHazard = 0
	}
	switch {
	case c.TimeoutMeanFreeze == 0:
		c.TimeoutMeanFreeze = d.TimeoutMeanFreeze
	case c.TimeoutMeanFreeze < 0:
		c.TimeoutMeanFreeze = 0
	}
	return c
}

// NodeConfig describes one node's access link in the star topology.
type NodeConfig struct {
	// UplinkBytesPerSec and DownlinkBytesPerSec shape the access link.
	// Both must be positive.
	UplinkBytesPerSec   int64
	DownlinkBytesPerSec int64
	// AccessDelay is the one-way delay from the node to the star's hub.
	// The one-way delay between nodes a and b is a.AccessDelay +
	// b.AccessDelay (the paper's 50 ms peer latency corresponds to 25 ms
	// access delay on each side).
	AccessDelay time.Duration
	// LossRate is the packet loss probability on the access link in [0, 1).
	LossRate float64
}

// Validate reports whether the node configuration is usable.
func (nc NodeConfig) Validate() error {
	if nc.UplinkBytesPerSec <= 0 || nc.DownlinkBytesPerSec <= 0 {
		return fmt.Errorf("netem: link rates must be positive, got up=%d down=%d",
			nc.UplinkBytesPerSec, nc.DownlinkBytesPerSec)
	}
	if nc.AccessDelay < 0 {
		return fmt.Errorf("netem: negative access delay %v", nc.AccessDelay)
	}
	if nc.LossRate < 0 || nc.LossRate >= 1 {
		return fmt.Errorf("netem: loss rate %v outside [0, 1)", nc.LossRate)
	}
	return nil
}

// Network is the emulated star network. It is single-threaded: all methods
// must be called from the owning sim.Engine's event context (or before Run).
type Network struct {
	eng     *sim.Engine
	cfg     Config
	nodes   []*node
	flows   []*Flow // live flows; swap-removed on detach (order not load-bearing)
	flowSeq int     // next flow ID
	onFlow  func(FlowEvent)
	// onLossState observes Gilbert–Elliott transitions (gemodel.go).
	onLossState func(LossStateEvent)

	// Incremental-reallocation state: a collection generation counter
	// (stale marks never compare equal, so resets are O(1)) and reusable
	// region scratch that grows once to the largest dirty region.
	allocGen    uint64
	regionLinks []*link
	regionFlows []*Flow
	linkQueue   []*link
	compBounds  []compBound
	stats       AllocStats
	forceFull   bool // reallocate via the full per-event oracle instead
}

type node struct {
	id      NodeID
	cfg     NodeConfig
	up      *link
	down    *link
	offline bool     // link administratively down; flows touching it freeze
	ge      *geState // installed Gilbert–Elliott loss model, nil for baseline
}

// lossRate returns the node's effective packet-loss rate: the installed
// Gilbert–Elliott model's state-dependent rate while one is active, the
// configured baseline otherwise.
func (nd *node) lossRate() float64 {
	if nd.ge != nil {
		if nd.ge.bad {
			return nd.ge.params.PBad
		}
		return nd.ge.params.PGood
	}
	return nd.cfg.LossRate
}

type link struct {
	ord      int     // creation order: node ID doubled, uplink before downlink
	capacity float64 // bytes per second
	flows    []*Flow // active flows traversing this link (swap-removed)

	// Transient allocator state, valid only inside a reallocation pass.
	mark      uint64  // collection generation that last visited this link
	remaining float64 // capacity left during progressive filling
	unfixed   int     // flows not yet fixed during progressive filling
}

// New creates an empty network on eng.
func New(eng *sim.Engine, cfg Config) *Network {
	if eng == nil {
		panic("netem: nil engine")
	}
	return &Network{eng: eng, cfg: cfg.withDefaults()}
}

// AddNode registers a node and returns its ID.
func (n *Network) AddNode(nc NodeConfig) (NodeID, error) {
	if err := nc.Validate(); err != nil {
		return 0, err
	}
	id := NodeID(len(n.nodes))
	n.nodes = append(n.nodes, &node{
		id:   id,
		cfg:  nc,
		up:   &link{ord: 2 * int(id), capacity: float64(nc.UplinkBytesPerSec)},
		down: &link{ord: 2*int(id) + 1, capacity: float64(nc.DownlinkBytesPerSec)},
	})
	return id, nil
}

// NodeCount returns the number of registered nodes.
func (n *Network) NodeCount() int { return len(n.nodes) }

// Node returns the configuration of id.
func (n *Network) Node(id NodeID) (NodeConfig, error) {
	if err := n.checkID(id); err != nil {
		return NodeConfig{}, err
	}
	return n.nodes[id].cfg, nil
}

func (n *Network) checkID(id NodeID) error {
	if id < 0 || int(id) >= len(n.nodes) {
		return fmt.Errorf("netem: unknown node %d", id)
	}
	return nil
}

// OneWayDelay returns the one-way propagation delay between a and b.
func (n *Network) OneWayDelay(a, b NodeID) (time.Duration, error) {
	if err := n.checkID(a); err != nil {
		return 0, err
	}
	if err := n.checkID(b); err != nil {
		return 0, err
	}
	return n.nodes[a].cfg.AccessDelay + n.nodes[b].cfg.AccessDelay, nil
}

// RTT returns the round-trip time between a and b.
func (n *Network) RTT(a, b NodeID) (time.Duration, error) {
	ow, err := n.OneWayDelay(a, b)
	return 2 * ow, err
}

// pathLossEventRate returns the TCP loss-event rate along a->b, from
// each endpoint's effective (loss-model-aware) loss rate.
func (n *Network) pathLossEventRate(a, b NodeID) float64 {
	raw := 1 - (1-n.nodes[a].lossRate())*(1-n.nodes[b].lossRate())
	return raw * n.cfg.LossEventFactor
}

// SetUplink changes a node's uplink capacity (the paper's future-work
// "variable bandwidth" case) and reallocates active flows.
func (n *Network) SetUplink(id NodeID, bytesPerSec int64) error {
	if err := n.checkID(id); err != nil {
		return err
	}
	if bytesPerSec <= 0 {
		return fmt.Errorf("netem: uplink rate must be positive, got %d", bytesPerSec)
	}
	n.nodes[id].cfg.UplinkBytesPerSec = bytesPerSec
	n.nodes[id].up.capacity = float64(bytesPerSec)
	n.reallocateOn(n.nodes[id].up, nil)
	return nil
}

// SetDownlink changes a node's downlink capacity and reallocates.
func (n *Network) SetDownlink(id NodeID, bytesPerSec int64) error {
	if err := n.checkID(id); err != nil {
		return err
	}
	if bytesPerSec <= 0 {
		return fmt.Errorf("netem: downlink rate must be positive, got %d", bytesPerSec)
	}
	n.nodes[id].cfg.DownlinkBytesPerSec = bytesPerSec
	n.nodes[id].down.capacity = float64(bytesPerSec)
	n.reallocateOn(n.nodes[id].down, nil)
	return nil
}

// ScheduleBandwidth applies symmetric up/down capacity changes to a node at
// the given virtual times. It supports the variable-bandwidth experiments.
func (n *Network) ScheduleBandwidth(id NodeID, steps []BandwidthStep) error {
	if err := n.checkID(id); err != nil {
		return err
	}
	for i, s := range steps {
		if s.At < 0 {
			return fmt.Errorf("netem: bandwidth step at negative time %v", s.At)
		}
		if i > 0 && s.At <= steps[i-1].At {
			return fmt.Errorf("netem: bandwidth step times must be strictly increasing, got %v after %v",
				s.At, steps[i-1].At)
		}
		if s.BytesPerSec <= 0 {
			return fmt.Errorf("netem: bandwidth step rate must be positive, got %d", s.BytesPerSec)
		}
		step := s
		n.eng.At(step.At, func() {
			// Errors are impossible here: id and rate were validated above.
			_ = n.SetUplink(id, step.BytesPerSec)
			_ = n.SetDownlink(id, step.BytesPerSec)
		})
	}
	return nil
}

// BandwidthStep is one point of a bandwidth schedule.
type BandwidthStep struct {
	At          time.Duration
	BytesPerSec int64
}

// ActiveFlows returns the number of in-progress transfers (including those
// still in connection setup).
func (n *Network) ActiveFlows() int {
	count := len(n.flows)
	for _, f := range n.flows {
		if f.state == flowDone || f.state == flowCancelled {
			count--
		}
	}
	return count
}
