package netem

import (
	"math"
	"time"
)

// FlowEventKind classifies a flow lifecycle event.
type FlowEventKind uint8

const (
	// FlowEventSetup fires when a transfer is created (handshake begins).
	FlowEventSetup FlowEventKind = iota
	// FlowEventActivate fires when the first payload byte can move.
	FlowEventActivate
	// FlowEventFreeze fires when an RTO freeze stops the flow.
	FlowEventFreeze
	// FlowEventUnfreeze fires when an RTO freeze ends.
	FlowEventUnfreeze
	// FlowEventRamp fires at each slow-start doubling.
	FlowEventRamp
	// FlowEventComplete fires when the last byte is delivered.
	FlowEventComplete
	// FlowEventCancel fires when the flow is aborted.
	FlowEventCancel
)

// String returns a short event-kind name.
func (k FlowEventKind) String() string {
	switch k {
	case FlowEventSetup:
		return "setup"
	case FlowEventActivate:
		return "activate"
	case FlowEventFreeze:
		return "freeze"
	case FlowEventUnfreeze:
		return "unfreeze"
	case FlowEventRamp:
		return "ramp"
	case FlowEventComplete:
		return "complete"
	case FlowEventCancel:
		return "cancel"
	default:
		return "unknown"
	}
}

// FlowEvent is one flow lifecycle notification, delivered synchronously
// from the engine's event context.
type FlowEvent struct {
	At   time.Duration
	Kind FlowEventKind
	// Flow is the network-unique flow ID (creation order).
	Flow int
	Src  NodeID
	Dst  NodeID
	Size int64
	// Rate is the allocated rate in bytes/s at the time of the event.
	Rate float64
	// Remaining is the unsent byte count, or -1 for unbounded flows.
	Remaining int64
}

// SetFlowObserver registers fn to receive every flow lifecycle event.
// The observer is a pure listener for instrumentation: it runs after the
// state change (and any reallocation) is applied and must not start,
// cancel, or otherwise mutate flows or the engine, so that runs are
// identical with and without it. Pass nil to remove the observer.
func (n *Network) SetFlowObserver(fn func(FlowEvent)) { n.onFlow = fn }

// emitFlow notifies the observer, if any. It reads flow state without
// advancing it (advance mutates remaining, which would make tracing
// non-inert).
func (n *Network) emitFlow(f *Flow, kind FlowEventKind) {
	if n.onFlow == nil {
		return
	}
	remaining := int64(-1)
	if !math.IsInf(f.remaining, 1) {
		remaining = int64(math.Ceil(f.remaining))
	}
	n.onFlow(FlowEvent{
		At:        n.eng.Now(),
		Kind:      kind,
		Flow:      f.id,
		Src:       f.src,
		Dst:       f.dst,
		Size:      f.size,
		Rate:      f.rate,
		Remaining: remaining,
	})
}
