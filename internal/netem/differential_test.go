package netem

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"p2psplice/internal/sim"
)

// The differential harness drives a pair of networks — one on the
// incremental reallocator, one forced through the reallocateFull oracle —
// through the same decoded event script, stepping both engines in
// lockstep and requiring every flow's state to be bit-identical after
// every single event. It is shared by TestQuickIncrementalMatchesFull
// (randomized scripts) and FuzzReallocate (fuzzer-mutated scripts).

// diffPair is the paired incremental/full network under test.
type diffPair struct {
	engA, engB *sim.Engine
	netA, netB *Network // A: incremental, B: full oracle
	flowsA     []*Flow  // every flow ever started, creation order
	flowsB     []*Flow
}

const (
	diffMaxNodes    = 8
	diffMaxStarts   = 30
	diffDrainBudget = 4000
)

// decodeByte pulls the next script byte, treating exhaustion as zero so
// every prefix of a valid script is itself a valid script.
func decodeByte(data []byte, pos *int) byte {
	if *pos >= len(data) {
		return 0
	}
	b := data[*pos]
	*pos++
	return b
}

// differentialScript decodes data into a flow-event script, applies it to
// the pair, and returns an error on the first divergence or invariant
// violation. Script format: one seed byte and one node-count byte, four
// bytes of link parameters per node, then opcodes with inline operands.
func differentialScript(data []byte) error {
	pos := 0
	seed := int64(decodeByte(data, &pos))*256 + int64(decodeByte(data, &pos))
	nNodes := 2 + int(decodeByte(data, &pos))%(diffMaxNodes-1)

	p := &diffPair{engA: sim.New(seed), engB: sim.New(seed)}
	p.netA = New(p.engA, Config{})
	p.netB = New(p.engB, Config{})
	p.netB.ForceFullReallocation(true)

	for i := 0; i < nNodes; i++ {
		nc := NodeConfig{
			UplinkBytesPerSec:   20_000 + int64(decodeByte(data, &pos))*4_000,
			DownlinkBytesPerSec: 20_000 + int64(decodeByte(data, &pos))*4_000,
			AccessDelay:         time.Duration(decodeByte(data, &pos)%100) * time.Millisecond,
			LossRate:            float64(decodeByte(data, &pos)%8) / 100,
		}
		if _, err := p.netA.AddNode(nc); err != nil {
			return nil // invalid config: not a divergence
		}
		if _, err := p.netB.AddNode(nc); err != nil {
			return nil
		}
	}

	starts := 0
	for pos < len(data) {
		op := decodeByte(data, &pos)
		var err error
		switch op % 9 {
		case 0, 1, 2: // weight flow starts highest: they grow the graph
			if starts >= diffMaxStarts {
				break
			}
			starts++
			src := NodeID(int(decodeByte(data, &pos)) % nNodes)
			dst := NodeID(int(decodeByte(data, &pos)) % nNodes)
			b := decodeByte(data, &pos)
			size := 10_000 + int64(b)*20_000
			opts := TransferOptions{ReuseConnection: b&1 == 1, Unbounded: b%16 == 0}
			err = p.start(src, dst, size, opts)
		case 3: // run both engines k events forward, comparing each
			err = p.lockstep(1 + int(decodeByte(data, &pos))%48)
		case 4: // cancel a flow (completions come from lockstep instead)
			if len(p.flowsA) > 0 {
				i := int(decodeByte(data, &pos)) % len(p.flowsA)
				p.flowsA[i].Cancel()
				p.flowsB[i].Cancel()
				err = p.compare("cancel")
			}
		case 5: // capacity change on a live link
			id := NodeID(int(decodeByte(data, &pos)) % nNodes)
			rate := int64(1+int(decodeByte(data, &pos))%64) * 16_384
			if decodeByte(data, &pos)&1 == 0 {
				_ = p.netA.SetUplink(id, rate)
				_ = p.netB.SetUplink(id, rate)
			} else {
				_ = p.netA.SetDownlink(id, rate)
				_ = p.netB.SetDownlink(id, rate)
			}
			err = p.compare("setlink")
		case 6: // administrative link down/up toggle
			id := NodeID(int(decodeByte(data, &pos)) % nNodes)
			down := !p.netA.LinkIsDown(id)
			_ = p.netA.SetLinkDown(id, down)
			_ = p.netB.SetLinkDown(id, down)
			err = p.compare("linkdown")
		case 7: // scheduled fault plan: a closed link-flap window plus a rate dip
			id := NodeID(int(decodeByte(data, &pos)) % nNodes)
			at := p.engA.Now() + time.Duration(1+int(decodeByte(data, &pos))%200)*50*time.Millisecond
			flap := []LinkStep{{At: at, Down: true}, {At: at + 300*time.Millisecond, Down: false}}
			_ = p.netA.ScheduleLink(id, flap)
			_ = p.netB.ScheduleLink(id, flap)
			dip := []BandwidthStep{{At: at, BytesPerSec: 24_000}, {At: at + time.Second, BytesPerSec: 256_000}}
			id2 := NodeID(int(decodeByte(data, &pos)) % nNodes)
			_ = p.netA.ScheduleBandwidth(id2, dip)
			_ = p.netB.ScheduleBandwidth(id2, dip)
		case 8: // Gilbert–Elliott loss model install/clear (bursty loss)
			id := NodeID(int(decodeByte(data, &pos)) % nNodes)
			b := decodeByte(data, &pos)
			if b%5 == 0 {
				_ = p.netA.ClearGEModel(id)
				_ = p.netB.ClearGEModel(id)
			} else {
				gp := GEParams{
					PGood: float64(b%8) / 100,
					PBad:  0.10 + float64(decodeByte(data, &pos)%30)/100,
					P13:   0.05 + float64(decodeByte(data, &pos)%20)/10,
					P31:   0.05 + float64(decodeByte(data, &pos)%20)/10,
				}
				_ = p.netA.SetGEModel(id, gp)
				_ = p.netB.SetGEModel(id, gp)
			}
			err = p.compare("gemodel")
		}
		if err != nil {
			return err
		}
	}

	// Clear loss models and cancel unbounded cross-traffic so the queues
	// can drain, then run to completion under a budget (hazard timers
	// stop with their flows; GE chains would reschedule forever).
	for i := 0; i < nNodes; i++ {
		_ = p.netA.ClearGEModel(NodeID(i))
		_ = p.netB.ClearGEModel(NodeID(i))
	}
	for i, f := range p.flowsA {
		if math.IsInf(f.remaining, 1) {
			f.Cancel()
			p.flowsB[i].Cancel()
		}
	}
	if err := p.compare("final-cancel"); err != nil {
		return err
	}
	return p.lockstep(diffDrainBudget)
}

func (p *diffPair) start(src, dst NodeID, size int64, opts TransferOptions) error {
	fa, errA := p.netA.StartTransfer(src, dst, size, opts, nil)
	fb, errB := p.netB.StartTransfer(src, dst, size, opts, nil)
	if (errA == nil) != (errB == nil) {
		return fmt.Errorf("start divergence: incremental err=%v full err=%v", errA, errB)
	}
	if errA != nil {
		return nil // both rejected (self-transfer etc.): not a divergence
	}
	p.flowsA = append(p.flowsA, fa)
	p.flowsB = append(p.flowsB, fb)
	return p.compare("start")
}

// lockstep fires up to k events on each engine, pairwise, comparing the
// networks after every event.
func (p *diffPair) lockstep(k int) error {
	for j := 0; j < k; j++ {
		okA := p.engA.Step()
		okB := p.engB.Step()
		if okA != okB {
			return fmt.Errorf("event-queue divergence: incremental stepped=%v full stepped=%v at %v", okA, okB, p.engA.Now())
		}
		if !okA {
			return nil
		}
		if err := p.compare("step"); err != nil {
			return err
		}
	}
	return nil
}

// compare asserts the paired networks are in bit-identical states: same
// virtual clock, same pending-event count, and for every flow the same
// state, freeze flag, and Float64bits-identical rate and remaining. It
// also checks conservation on the incremental network: the rates through
// any link must not exceed its concurrency-derated capacity.
func (p *diffPair) compare(where string) error {
	if p.engA.Now() != p.engB.Now() {
		return fmt.Errorf("%s: clock divergence: incremental %v full %v", where, p.engA.Now(), p.engB.Now())
	}
	if pa, pb := p.engA.Pending(), p.engB.Pending(); pa != pb {
		return fmt.Errorf("%s at %v: pending-event divergence: incremental %d full %d", where, p.engA.Now(), pa, pb)
	}
	for i, fa := range p.flowsA {
		fb := p.flowsB[i]
		if fa.state != fb.state || fa.frozen != fb.frozen {
			return fmt.Errorf("%s at %v: flow %d state divergence: incremental (%d frozen=%v) full (%d frozen=%v)",
				where, p.engA.Now(), fa.id, fa.state, fa.frozen, fb.state, fb.frozen)
		}
		if math.Float64bits(fa.rate) != math.Float64bits(fb.rate) {
			return fmt.Errorf("%s at %v: flow %d rate divergence: incremental %x (%.6f) full %x (%.6f)",
				where, p.engA.Now(), fa.id, math.Float64bits(fa.rate), fa.rate, math.Float64bits(fb.rate), fb.rate)
		}
		// Anchors are only load-bearing while accrual runs (positive rate,
		// finite remaining): stalled flows are re-anchored by the full pass
		// on every event but skipped by the incremental one, harmlessly —
		// at rate 0 the re-anchor is a no-op for every observable value.
		accruing := fa.rate > allocEpsilon && !math.IsInf(fa.anchorRemaining, 1)
		if accruing && (fa.anchorAt != fb.anchorAt || math.Float64bits(fa.anchorRemaining) != math.Float64bits(fb.anchorRemaining)) {
			return fmt.Errorf("%s at %v: flow %d anchor divergence: incremental (%v, %x) full (%v, %x)",
				where, p.engA.Now(), fa.id, fa.anchorAt, math.Float64bits(fa.anchorRemaining), fb.anchorAt, math.Float64bits(fb.anchorRemaining))
		}
		// Stored remaining is lazily advanced, so the two networks may have
		// observed it at different times; evaluate both at the current clock.
		ra, rb := effRemaining(fa, p.engA.Now()), effRemaining(fb, p.engB.Now())
		if math.Float64bits(ra) != math.Float64bits(rb) {
			return fmt.Errorf("%s at %v: flow %d remaining divergence: incremental %x full %x",
				where, p.engA.Now(), fa.id, math.Float64bits(ra), math.Float64bits(rb))
		}
	}
	return p.checkConservation(where)
}

// effRemaining mirrors Network.advance: remaining bytes evaluated at now
// from the flow's accrual anchor, without mutating the flow.
func effRemaining(f *Flow, now time.Duration) float64 {
	r := f.remaining
	if f.state == flowActive && now > f.anchorAt {
		r = f.anchorRemaining - f.rate*(now-f.anchorAt).Seconds()
		if r < 0 {
			r = 0
		}
	}
	return r
}

// checkConservation verifies that the sum of allocated rates through every
// link stays within its concurrency-derated effective capacity.
func (p *diffPair) checkConservation(where string) error {
	cfg := p.netA.cfg
	for _, nd := range p.netA.nodes {
		for _, l := range []*link{nd.up, nd.down} {
			var load float64
			for _, f := range l.flows {
				load += f.rate
			}
			excess := len(l.flows) - cfg.ConcurrencyFreeFlows
			if excess < 0 {
				excess = 0
			}
			eff := l.capacity / (1 + cfg.ConcurrencyPenalty*float64(excess))
			if load > eff*(1+1e-6)+allocEpsilon {
				return fmt.Errorf("%s at %v: link ord %d overloaded: load %.3f > derated capacity %.3f",
					where, p.engA.Now(), l.ord, load, eff)
			}
		}
	}
	return nil
}

// randomScript draws a script of the given length from r using the same
// byte format the fuzzer mutates.
func randomScript(r *rand.Rand, n int) []byte {
	data := make([]byte, n)
	r.Read(data)
	return data
}

// TestQuickIncrementalMatchesFull is the differential property: across
// ≥1000 randomized event scripts (transfer starts, completions, ramps,
// freezes, cancellations, capacity changes, administrative link flaps,
// scheduled fault plans, and Gilbert–Elliott loss-state transitions),
// the incremental reallocator and the reallocateFull oracle stay on
// bit-identical trajectories, compared after every single engine event.
func TestQuickIncrementalMatchesFull(t *testing.T) {
	count := 0
	f := func(seed int64) bool {
		count++
		r := rand.New(rand.NewSource(seed))
		data := randomScript(r, 40+r.Intn(200))
		if err := differentialScript(data); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1050}); err != nil {
		t.Error(err)
	}
	if count < 1000 {
		t.Fatalf("differential property ran only %d sequences, want >= 1000", count)
	}
}

// TestDifferentialCatchesBrokenIncremental proves the harness has teeth:
// a network whose incremental path deliberately skips reallocation after
// a capacity change must diverge from the oracle.
func TestDifferentialCatchesBrokenIncremental(t *testing.T) {
	eng := sim.New(7)
	n := New(eng, Config{})
	a, _ := n.AddNode(NodeConfig{UplinkBytesPerSec: 100_000, DownlinkBytesPerSec: 100_000})
	b, _ := n.AddNode(NodeConfig{UplinkBytesPerSec: 100_000, DownlinkBytesPerSec: 100_000})
	fl, err := n.StartTransfer(a, b, 1_000_000, TransferOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(2 * time.Second)
	// Sabotage: change capacity without marking anything dirty.
	n.nodes[b].down.capacity = 30_000
	n.nodes[b].cfg.DownlinkBytesPerSec = 30_000
	before := fl.rate
	n.reallocateFull()
	if math.Float64bits(before) == math.Float64bits(fl.rate) {
		t.Fatalf("oracle failed to catch a stale rate after an unmarked capacity change (rate %.1f)", fl.rate)
	}
}
