package netem

import (
	"math"
	"testing"
	"time"

	"p2psplice/internal/sim"
)

func geTestNet(t *testing.T, loss float64) (*sim.Engine, *Network, NodeID, NodeID) {
	t.Helper()
	eng := sim.New(11)
	n := New(eng, Config{})
	a, err := n.AddNode(NodeConfig{UplinkBytesPerSec: 1_000_000, DownlinkBytesPerSec: 1_000_000,
		AccessDelay: 25 * time.Millisecond, LossRate: loss})
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.AddNode(NodeConfig{UplinkBytesPerSec: 1_000_000, DownlinkBytesPerSec: 1_000_000,
		AccessDelay: 25 * time.Millisecond, LossRate: loss})
	if err != nil {
		t.Fatal(err)
	}
	return eng, n, a, b
}

func TestGEParamsValidate(t *testing.T) {
	ok := GEParams{PGood: 0.005, PBad: 0.32, P13: 0.1, P31: 0.6}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []GEParams{
		{PGood: -0.1, PBad: 0.3, P13: 0.1, P31: 0.6},
		{PGood: 0.01, PBad: 1.0, P13: 0.1, P31: 0.6},
		{PGood: 0.01, PBad: 0.3, P13: 0, P31: 0.6},
		{PGood: 0.01, PBad: 0.3, P13: 0.1, P31: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params %+v accepted", i, p)
		}
	}
	_, n, a, _ := geTestNet(t, 0)
	if err := n.SetGEModel(a, GEParams{}); err == nil {
		t.Error("SetGEModel accepted zero params")
	}
	if err := n.SetGEModel(NodeID(99), ok); err == nil {
		t.Error("SetGEModel accepted unknown node")
	}
}

// TestMathisCapGuard is the sqrt(p) denominator guard: a lossless path
// must yield an unbounded cap, not an Inf/NaN division artifact.
func TestMathisCapGuard(t *testing.T) {
	_, n, a, b := geTestNet(t, 0)
	for _, p := range []float64{0, -0.5, math.NaN()} {
		if c := n.mathisCap(p, 100*time.Millisecond); !math.IsInf(c, 1) {
			t.Errorf("mathisCap(%v) = %v, want +Inf", p, c)
		}
	}
	if c := n.mathisCap(0.01, 0); !math.IsInf(c, 1) {
		t.Errorf("mathisCap with zero RTT = %v, want +Inf", c)
	}
	if c := n.mathisCap(0.01, 100*time.Millisecond); math.IsInf(c, 1) || math.IsNaN(c) || c <= 0 {
		t.Errorf("mathisCap(0.01) = %v, want a finite positive bound", c)
	}
	f, err := n.StartTransfer(a, b, 1_000_000, TransferOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(f.lossCap, 1) {
		t.Errorf("lossless flow lossCap = %v, want +Inf", f.lossCap)
	}
}

// TestGEFlipRefreshesMathisCap is the mid-flow refresh bugfix: a
// loss-state change must re-derive the Mathis cap of flows already on
// the node's links (it used to be computed once at StartTransfer) and
// restart a parked slow-start ramp when the cap rises again.
func TestGEFlipRefreshesMathisCap(t *testing.T) {
	eng, n, a, b := geTestNet(t, 0)
	f, err := n.StartTransfer(a, b, 50_000_000, TransferOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(5 * time.Second) // active, fully ramped, unconstrained by loss
	if f.state != flowActive {
		t.Fatalf("flow state %d, want active", f.state)
	}
	if err := n.SetGEModel(a, GEParams{PGood: 0, PBad: 0.4, P13: 0.1, P31: 0.5}); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(f.lossCap, 1) {
		t.Fatalf("good-state (pg=0) lossCap = %v, want +Inf", f.lossCap)
	}
	goodRate := f.rate

	// Force the bad state deterministically (the chain's own flips are
	// exponential draws) and refresh the way a transition does.
	n.nodes[a].ge.bad = true
	n.refreshLossOn(n.nodes[a])
	if math.IsInf(f.lossCap, 1) {
		t.Fatal("bad-state flip did not refresh the flow's Mathis cap")
	}
	if f.rate >= goodRate {
		t.Fatalf("bad-state rate %.0f not below good-state rate %.0f", f.rate, goodRate)
	}
	// The low cap parks the ramp; collapse rampCap below it to prove the
	// good-state refresh restarts ramping rather than leaving the flow
	// stuck at the bad-state ceiling.
	f.rampCap = f.lossCap / 4
	f.rampPending = false

	n.nodes[a].ge.bad = false
	n.refreshLossOn(n.nodes[a])
	if !math.IsInf(f.lossCap, 1) {
		t.Fatal("good-state flip did not restore the unbounded cap")
	}
	if !f.rampPending {
		t.Fatal("raised cap did not restart the slow-start ramp")
	}
	eng.RunUntil(eng.Now() + 10*time.Second)
	if f.rate < goodRate*0.9 {
		t.Fatalf("flow stuck at %.0f B/s after burst ended, want ~%.0f", f.rate, goodRate)
	}
}

// TestGETransitionsAreObservable drives the chain from the seeded RNG
// and checks the pure observer sees both states with the right rates.
func TestGETransitionsAreObservable(t *testing.T) {
	eng, n, a, _ := geTestNet(t, 0.05)
	var evs []LossStateEvent
	n.SetLossStateObserver(func(ev LossStateEvent) { evs = append(evs, ev) })
	gp := GEParams{PGood: 0.005, PBad: 0.32, P13: 2, P31: 4}
	if err := n.SetGEModel(a, gp); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(30 * time.Second)
	var sawGood, sawBad bool
	for _, ev := range evs {
		if ev.Node != a {
			t.Fatalf("event for node %d, want %d", ev.Node, a)
		}
		if ev.Bad {
			sawBad = true
			if ev.Loss != gp.PBad {
				t.Fatalf("bad-state loss %v, want %v", ev.Loss, gp.PBad)
			}
		} else {
			sawGood = true
			if ev.Loss != gp.PGood {
				t.Fatalf("good-state loss %v, want %v", ev.Loss, gp.PGood)
			}
		}
	}
	if !sawGood || !sawBad {
		t.Fatalf("expected both states in 30s (good=%v bad=%v, %d events)", sawGood, sawBad, len(evs))
	}
	if !n.LossStateBad(a) && !sawBad {
		t.Fatal("no bad state ever reached")
	}
	// Clearing restores the baseline and emits a final good-state event.
	evs = nil
	if err := n.ClearGEModel(a); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Bad || evs[0].Loss != 0.05 {
		t.Fatalf("clear event = %+v, want good state at baseline 0.05", evs)
	}
	if err := n.ClearGEModel(a); err != nil {
		t.Fatalf("double clear: %v", err)
	}
}

// TestScheduleStepValidation is the uniform step-validation bugfix:
// ScheduleBandwidth and ScheduleLink must reject unsorted or duplicate
// At times and negative times/rates, not just zero rates.
func TestScheduleStepValidation(t *testing.T) {
	_, n, a, _ := geTestNet(t, 0)
	sec := time.Second
	bwCases := map[string][]BandwidthStep{
		"negative time":  {{At: -sec, BytesPerSec: 1000}},
		"negative rate":  {{At: sec, BytesPerSec: -5}},
		"zero rate":      {{At: sec, BytesPerSec: 0}},
		"duplicate time": {{At: sec, BytesPerSec: 1000}, {At: sec, BytesPerSec: 2000}},
		"unsorted times": {{At: 2 * sec, BytesPerSec: 1000}, {At: sec, BytesPerSec: 2000}},
	}
	for name, steps := range bwCases {
		if err := n.ScheduleBandwidth(a, steps); err == nil {
			t.Errorf("ScheduleBandwidth accepted %s", name)
		}
	}
	linkCases := map[string][]LinkStep{
		"negative time":  {{At: -sec, Down: true}},
		"duplicate time": {{At: sec, Down: true}, {At: sec, Down: false}},
		"unsorted times": {{At: 2 * sec, Down: true}, {At: sec, Down: false}},
	}
	for name, steps := range linkCases {
		if err := n.ScheduleLink(a, steps); err == nil {
			t.Errorf("ScheduleLink accepted %s", name)
		}
	}
	if err := n.ScheduleBandwidth(a, []BandwidthStep{{At: sec, BytesPerSec: 1000}, {At: 2 * sec, BytesPerSec: 2000}}); err != nil {
		t.Errorf("sorted bandwidth steps rejected: %v", err)
	}
	if err := n.ScheduleLink(a, []LinkStep{{At: sec, Down: true}, {At: 2 * sec, Down: false}}); err != nil {
		t.Errorf("sorted link steps rejected: %v", err)
	}
}
