package netem

import (
	"fmt"
	"math"
	"time"

	"p2psplice/internal/sim"
)

// Gilbert–Elliott two-state burst-loss model. Real access links do not
// drop packets i.i.d.: loss arrives in bursts when a link degrades (the
// "bad" state) separated by long quiet stretches (the "good" state).
// The model is a continuous-time two-state Markov chain per node: while
// installed it replaces the node's configured baseline loss rate with
// the state-dependent rate (PGood or PBad), and the chain's transitions
// advance on the engine clock from the seeded deterministic RNG, so
// runs are reproducible and the incremental/full differential harness
// can drive both networks through identical transition sequences.

// GEParams parameterizes a node's Gilbert–Elliott loss model.
type GEParams struct {
	// PGood and PBad are the packet-loss rates in the good and bad
	// states, each in [0, 1) like NodeConfig.LossRate.
	PGood float64
	PBad  float64
	// P13 and P31 are the good->bad and bad->good transition hazards in
	// events per second (pumba's loss-gemodel naming); sojourn times are
	// exponential with means 1/P13 (good) and 1/P31 (bad). Both must be
	// positive.
	P13 float64
	P31 float64
}

// Validate reports whether the model parameters are usable.
func (p GEParams) Validate() error {
	if p.PGood < 0 || p.PGood >= 1 || p.PBad < 0 || p.PBad >= 1 {
		return fmt.Errorf("netem: GE loss rates must be in [0, 1), got pg=%v pb=%v", p.PGood, p.PBad)
	}
	if p.P13 <= 0 || p.P31 <= 0 {
		return fmt.Errorf("netem: GE transition rates must be positive, got p13=%v p31=%v", p.P13, p.P31)
	}
	return nil
}

// geState is a node's live Gilbert–Elliott chain. Replacing or clearing
// the model swaps the whole struct, so a stale transition timer can
// recognize itself (nd.ge != g) and fall dead.
type geState struct {
	params GEParams
	bad    bool
	timer  *sim.Timer
}

// SetGEModel installs (or replaces) a Gilbert–Elliott loss model on a
// node, starting in the good state. The node's baseline LossRate is
// shadowed until ClearGEModel; flows touching the node have their
// Mathis caps re-derived immediately and on every state transition.
func (n *Network) SetGEModel(id NodeID, p GEParams) error {
	if err := n.checkID(id); err != nil {
		return err
	}
	if err := p.Validate(); err != nil {
		return err
	}
	nd := n.nodes[id]
	if nd.ge != nil {
		nd.ge.timer.Cancel()
	}
	nd.ge = &geState{params: p}
	n.refreshLossOn(nd)
	n.scheduleGETransition(nd, nd.ge)
	n.emitLossState(nd)
	return nil
}

// ClearGEModel removes a node's loss model, restoring the configured
// baseline loss rate. Clearing a node without a model is a no-op.
func (n *Network) ClearGEModel(id NodeID) error {
	if err := n.checkID(id); err != nil {
		return err
	}
	nd := n.nodes[id]
	if nd.ge == nil {
		return nil
	}
	nd.ge.timer.Cancel()
	nd.ge = nil
	n.refreshLossOn(nd)
	n.emitLossState(nd)
	return nil
}

// LossStateBad reports whether a node's Gilbert–Elliott chain is
// currently in the bad (bursting) state. Like Flow.Frozen it is a pure
// read, safe for stall attribution.
func (n *Network) LossStateBad(id NodeID) bool {
	if n.checkID(id) != nil {
		return false
	}
	nd := n.nodes[id]
	return nd.ge != nil && nd.ge.bad
}

// scheduleGETransition arranges the chain's next state flip: an
// exponential sojourn at the current state's hazard, clamped to at
// least a millisecond so degenerate hazards cannot flood the event
// queue with zero-delay flips.
func (n *Network) scheduleGETransition(nd *node, g *geState) {
	hazard := g.params.P13
	if g.bad {
		hazard = g.params.P31
	}
	d := time.Duration(n.eng.RNG().ExpFloat64() / hazard * float64(time.Second))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	g.timer = n.eng.Schedule(d, func() {
		if nd.ge != g {
			return // model replaced or cleared since this was scheduled
		}
		g.bad = !g.bad
		n.refreshLossOn(nd)
		n.scheduleGETransition(nd, g)
		n.emitLossState(nd)
	})
}

// refreshLossOn re-derives the Mathis cap of every flow touching the
// node's links after its effective loss rate changed, restarts
// slow-start ramps that had parked against a now-raised cap, and
// reallocates with the node's two links as the dirty set — a
// loss-state flip dirties exactly that node's links, nothing else.
func (n *Network) refreshLossOn(nd *node) {
	for _, l := range []*link{nd.up, nd.down} {
		for _, f := range l.flows {
			c := n.mathisCap(n.pathLossEventRate(f.src, f.dst), f.rtt)
			if math.Float64bits(c) == math.Float64bits(f.lossCap) {
				continue
			}
			grew := c > f.lossCap
			f.lossCap = c
			if grew {
				// scheduleRamp stops permanently once rampCap reaches the
				// cap; a raised cap must restart it or the flow would stay
				// stuck at the bad-state ceiling after the burst ends.
				f.scheduleRamp()
			}
		}
	}
	n.reallocateOn(nd.up, nd.down)
}

// LossStateEvent is one Gilbert–Elliott transition notification (also
// fired on model install and clear), delivered synchronously from the
// engine's event context.
type LossStateEvent struct {
	At   time.Duration
	Node NodeID
	// Bad is the chain's state after the transition (false on clear).
	Bad bool
	// Loss is the node's effective packet-loss rate after the transition.
	Loss float64
}

// SetLossStateObserver registers fn to receive every loss-state
// transition. Like SetFlowObserver it is a pure listener: it must not
// mutate the network or engine, so runs are identical with and without
// it. Pass nil to remove the observer.
func (n *Network) SetLossStateObserver(fn func(LossStateEvent)) { n.onLossState = fn }

// emitLossState notifies the loss-state observer, if any.
func (n *Network) emitLossState(nd *node) {
	if n.onLossState == nil {
		return
	}
	n.onLossState(LossStateEvent{
		At:   n.eng.Now(),
		Node: nd.id,
		Bad:  nd.ge != nil && nd.ge.bad,
		Loss: nd.lossRate(),
	})
}
