package netem

import (
	"testing"
	"time"

	"p2psplice/internal/sim"
)

func TestLinkDownFreezesAndRevivesFlow(t *testing.T) {
	eng := sim.New(1)
	n := New(eng, instantSetup())
	a := addNode(t, n, 100_000, 100_000, 0, 0)
	b := addNode(t, n, 100_000, 100_000, 0, 0)

	var doneAt time.Duration
	f, err := n.StartTransfer(a, b, 100_000, TransferOptions{}, func(*Flow) {
		doneAt = eng.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Down b's link from t=0.5s to t=1.5s: the 1s transfer pauses with
	// half its bytes moved and finishes 1s late.
	if err := n.ScheduleLink(b, []LinkStep{
		{At: 500 * time.Millisecond, Down: true},
		{At: 1500 * time.Millisecond, Down: false},
	}); err != nil {
		t.Fatal(err)
	}
	eng.At(time.Second, func() {
		if !f.LinkDown() {
			t.Error("flow should report LinkDown mid-outage")
		}
		if f.Rate() != 0 {
			t.Errorf("downed flow has rate %v, want 0", f.Rate())
		}
		if rem := f.Remaining(); rem < 45_000 || rem > 55_000 {
			t.Errorf("remaining %d mid-outage, want ~50000 (progress must freeze, not reset)", rem)
		}
	})
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	want := 2 * time.Second
	if diff := (doneAt - want).Abs(); diff > 10*time.Millisecond {
		t.Errorf("completed at %v, want ~%v (1s transfer + 1s outage)", doneAt, want)
	}
	if f.LinkDown() {
		t.Error("flow reports LinkDown after recovery")
	}
}

func TestSetLinkDownEmitsFreezeEvents(t *testing.T) {
	eng := sim.New(1)
	n := New(eng, instantSetup())
	a := addNode(t, n, 100_000, 100_000, 0, 0)
	b := addNode(t, n, 100_000, 100_000, 0, 0)
	c := addNode(t, n, 100_000, 100_000, 0, 0)

	var events []FlowEvent
	n.SetFlowObserver(func(ev FlowEvent) { events = append(events, ev) })

	fab, err := n.StartTransfer(a, b, 1_000_000, TransferOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.StartTransfer(a, c, 1_000_000, TransferOptions{}, nil); err != nil {
		t.Fatal(err)
	}
	eng.At(100*time.Millisecond, func() {
		if err := n.SetLinkDown(b, true); err != nil {
			t.Error(err)
		}
		if !n.LinkIsDown(b) {
			t.Error("LinkIsDown(b) false after SetLinkDown")
		}
	})
	eng.At(200*time.Millisecond, func() {
		if err := n.SetLinkDown(b, false); err != nil {
			t.Error(err)
		}
		// Idempotence: restoring an up link emits nothing and errs nothing.
		if err := n.SetLinkDown(b, false); err != nil {
			t.Error(err)
		}
	})
	eng.RunUntil(300 * time.Millisecond)
	freezes, unfreezes := 0, 0
	for _, ev := range events {
		switch ev.Kind {
		case FlowEventFreeze:
			freezes++
			if ev.Flow != fab.ID() {
				t.Errorf("freeze emitted for flow %d; only the a→b flow touches b", ev.Flow)
			}
		case FlowEventUnfreeze:
			unfreezes++
		}
	}
	if freezes != 1 || unfreezes != 1 {
		t.Errorf("got %d freezes / %d unfreezes, want 1 / 1", freezes, unfreezes)
	}
}

func TestLinkDownUnknownNode(t *testing.T) {
	eng := sim.New(1)
	n := New(eng, instantSetup())
	if err := n.SetLinkDown(5, true); err == nil {
		t.Error("SetLinkDown on unknown node must error")
	}
	if n.LinkIsDown(5) {
		t.Error("LinkIsDown on unknown node must be false")
	}
	if err := n.ScheduleLink(0, nil); err == nil {
		t.Error("ScheduleLink on unknown node must error")
	}
}
