// Zero-allocation tests for the //lint:hotpath contract on the
// incremental reallocator: in steady state (no rate changes, live
// completion timers) a reallocation pass touches only generation-stamped
// scratch that has already grown to its high-water mark, so it must not
// allocate. Excluded under -race because race instrumentation inserts
// allocations the production build does not have.

//go:build !race

package netem

import (
	"testing"
	"time"

	"p2psplice/internal/sim"
)

// steadyNetwork builds a network with crossing active flows, runs past
// every slow-start ramp, and returns it with one dirty link pair to
// reallocate on. The first reallocation grows the region scratch; after
// that the pass is steady: every rate recomputes bit-identically, so
// applyRates keeps every completion timer and schedules nothing.
func steadyNetwork(tb testing.TB) (*Network, *link, *link) {
	tb.Helper()
	eng := sim.New(1)
	n := New(eng, Config{})
	ids := make([]NodeID, 8)
	for i := range ids {
		id, err := n.AddNode(NodeConfig{
			UplinkBytesPerSec:   int64(128+32*i) << 10,
			DownlinkBytesPerSec: 1 << 20,
			AccessDelay:         10 * time.Millisecond,
		})
		if err != nil {
			tb.Fatal(err)
		}
		ids[i] = id
	}
	// A connected mesh: every node uploads to the next two, huge sizes so
	// nothing completes while the clock is stopped.
	for i, src := range ids {
		for k := 1; k <= 2; k++ {
			dst := ids[(i+k)%len(ids)]
			if _, err := n.StartTransfer(src, dst, 1<<40, TransferOptions{}, nil); err != nil {
				tb.Fatal(err)
			}
		}
	}
	eng.RunUntil(60 * time.Second) // past setup and every ramp step
	a, b := n.nodes[ids[0]].up, n.nodes[ids[1]].down
	n.reallocateOn(a, b) // warm the region scratch to its high-water mark
	return n, a, b
}

// TestZeroAllocReallocate pins the steady-state incremental pass at zero
// allocations: region collection, component fills, heapsorts, and the
// keep-timer apply path all run on reused scratch.
func TestZeroAllocReallocate(t *testing.T) {
	n, a, b := steadyNetwork(t)
	allocs := testing.AllocsPerRun(100, func() {
		n.reallocateOn(a, b)
	})
	if allocs != 0 {
		t.Errorf("steady-state reallocateOn allocated %.1f times per pass, want 0", allocs)
	}
}

// TestZeroAllocReallocateFull extends the pin to the full-recompute
// oracle: it shares every hotpath with the incremental path and must stay
// alloc-free too, or the benchmark baseline would measure the garbage
// collector instead of the algorithm.
func TestZeroAllocReallocateFull(t *testing.T) {
	n, _, _ := steadyNetwork(t)
	n.reallocateFull() // warm the full-region scratch
	allocs := testing.AllocsPerRun(100, func() {
		n.reallocateFull()
	})
	if allocs != 0 {
		t.Errorf("steady-state reallocateFull allocated %.1f times per pass, want 0", allocs)
	}
}

// BenchmarkHotpathReallocate is the -benchmem gate for the incremental
// reallocator: `make bench-alloc` fails if it reports nonzero allocs/op.
// Each op is one steady-state dirty-pair reallocation over the mesh.
func BenchmarkHotpathReallocate(b *testing.B) {
	n, la, lb := steadyNetwork(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.reallocateOn(la, lb)
	}
}
