package netem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"p2psplice/internal/sim"
)

// Property: at any instant, (1) no link carries more than its capacity,
// (2) no flow exceeds its own cap, and (3) the allocation is Pareto-efficient
// (every active flow is limited by either its cap or a saturated link).
func TestQuickAllocationInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		eng := sim.New(seed)
		n := New(eng, DefaultConfig())

		nNodes := 3 + r.Intn(8)
		ids := make([]NodeID, nNodes)
		for i := range ids {
			id, err := n.AddNode(NodeConfig{
				UplinkBytesPerSec:   int64(20_000 + r.Intn(500_000)),
				DownlinkBytesPerSec: int64(20_000 + r.Intn(500_000)),
				AccessDelay:         time.Duration(r.Intn(100)) * time.Millisecond,
				LossRate:            float64(r.Intn(8)) / 100,
			})
			if err != nil {
				return false
			}
			ids[i] = id
		}
		var flows []*Flow
		for i := 0; i < 2+r.Intn(12); i++ {
			src := ids[r.Intn(nNodes)]
			dst := ids[r.Intn(nNodes)]
			if src == dst {
				continue
			}
			fl, err := n.StartTransfer(src, dst, int64(100_000+r.Intn(5_000_000)), TransferOptions{}, nil)
			if err != nil {
				return false
			}
			flows = append(flows, fl)
		}
		// Let setups and some ramping happen.
		eng.RunUntil(time.Duration(1+r.Intn(5)) * time.Second)

		// (1) link conservation — against the concurrency-derated effective
		// capacity, since that is what the allocator fills.
		upLoad := make(map[NodeID]float64)
		downLoad := make(map[NodeID]float64)
		upCount := make(map[NodeID]int)
		downCount := make(map[NodeID]int)
		for _, fl := range flows {
			if fl.Done() || fl.Cancelled() || fl.state != flowActive {
				continue
			}
			upLoad[fl.Src()] += fl.Rate()
			downLoad[fl.Dst()] += fl.Rate()
			upCount[fl.Src()]++
			downCount[fl.Dst()]++
		}
		defCfg := DefaultConfig()
		eff := func(capacity int64, count int) float64 {
			excess := count - defCfg.ConcurrencyFreeFlows
			if excess < 0 {
				excess = 0
			}
			return float64(capacity) / (1 + defCfg.ConcurrencyPenalty*float64(excess))
		}
		for id, load := range upLoad {
			nc, _ := n.Node(id)
			if load > eff(nc.UplinkBytesPerSec, upCount[id])*(1+1e-6)+allocEpsilon {
				t.Logf("uplink %d overloaded: %.0f > %d", id, load, nc.UplinkBytesPerSec)
				return false
			}
		}
		for id, load := range downLoad {
			nc, _ := n.Node(id)
			if load > eff(nc.DownlinkBytesPerSec, downCount[id])*(1+1e-6)+allocEpsilon {
				t.Logf("downlink %d overloaded: %.0f > %d", id, load, nc.DownlinkBytesPerSec)
				return false
			}
		}
		// (2) per-flow caps and (3) Pareto efficiency
		for _, fl := range flows {
			if fl.Done() || fl.Cancelled() || fl.state != flowActive {
				continue
			}
			if fl.Rate() > fl.capLimit()*(1+1e-6) {
				t.Logf("flow exceeds cap: %.0f > %.0f", fl.Rate(), fl.capLimit())
				return false
			}
			capped := math.Abs(fl.Rate()-fl.capLimit()) <= fl.capLimit()*1e-6+allocEpsilon
			srcCfg, _ := n.Node(fl.Src())
			dstCfg, _ := n.Node(fl.Dst())
			upSat := upLoad[fl.Src()] >= eff(srcCfg.UplinkBytesPerSec, upCount[fl.Src()])*(1-1e-6)-allocEpsilon
			downSat := downLoad[fl.Dst()] >= eff(dstCfg.DownlinkBytesPerSec, downCount[fl.Dst()])*(1-1e-6)-allocEpsilon
			if !capped && !upSat && !downSat {
				t.Logf("flow %d->%d rate %.0f is neither capped (%.0f) nor on a saturated link",
					fl.Src(), fl.Dst(), fl.Rate(), fl.capLimit())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: total delivered bytes never exceed capacity * time for the
// receiving downlink, and completed flows deliver exactly their size.
func TestQuickByteConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		eng := sim.New(seed)
		n := New(eng, DefaultConfig())
		down := int64(50_000 + r.Intn(200_000))
		dst, err := n.AddNode(NodeConfig{UplinkBytesPerSec: 1 << 20, DownlinkBytesPerSec: down})
		if err != nil {
			return false
		}
		var total int64
		var completed int64
		for i := 0; i < 1+r.Intn(6); i++ {
			src, err := n.AddNode(NodeConfig{UplinkBytesPerSec: 1 << 20, DownlinkBytesPerSec: 1 << 20})
			if err != nil {
				return false
			}
			size := int64(10_000 + r.Intn(1_000_000))
			total += size
			if _, err := n.StartTransfer(src, dst, size, TransferOptions{}, func(fl *Flow) {
				completed += fl.Size()
			}); err != nil {
				return false
			}
		}
		horizon := time.Duration(1+r.Intn(20)) * time.Second
		eng.RunUntil(horizon)
		// Delivered bytes cannot exceed downlink capacity * elapsed time.
		if float64(completed) > float64(down)*horizon.Seconds()*(1+1e-6)+float64(down) {
			t.Logf("completed %d bytes in %v over a %d B/s downlink", completed, horizon, down)
			return false
		}
		eng.RunUntil(10 * time.Minute)
		return completed == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
