package netem

import (
	"testing"
	"time"

	"p2psplice/internal/sim"
)

// The flow observer sees the full lifecycle in order, carries stable flow
// IDs, and its presence does not perturb the simulation.
func TestFlowObserverSeesLifecycle(t *testing.T) {
	run := func(observe bool) (events []FlowEvent, doneAt time.Duration) {
		eng := sim.New(3)
		n := New(eng, instantSetup())
		a := addNode(t, n, 100_000, 100_000, 0, 0)
		b := addNode(t, n, 50_000, 50_000, 0, 0)
		if observe {
			n.SetFlowObserver(func(ev FlowEvent) { events = append(events, ev) })
		}
		_, err := n.StartTransfer(a, b, 100_000, TransferOptions{}, func(*Flow) {
			doneAt = eng.Now()
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(0); err != nil {
			t.Fatal(err)
		}
		return events, doneAt
	}

	events, doneAt := run(true)
	if len(events) < 3 {
		t.Fatalf("got %d events, want at least setup/activate/complete: %v", len(events), events)
	}
	if events[0].Kind != FlowEventSetup || events[0].At != 0 {
		t.Fatalf("first event = %+v, want setup at t=0", events[0])
	}
	if events[1].Kind != FlowEventActivate {
		t.Fatalf("second event = %+v, want activate", events[1])
	}
	if events[1].Rate <= 0 {
		t.Fatalf("activate carries rate %v, want the post-reallocation rate", events[1].Rate)
	}
	last := events[len(events)-1]
	if last.Kind != FlowEventComplete || last.At != doneAt || last.Remaining != 0 {
		t.Fatalf("last event = %+v, want complete at %v with 0 remaining", last, doneAt)
	}
	for _, ev := range events {
		if ev.Flow != 0 || ev.Src != 0 || ev.Dst != 1 || ev.Size != 100_000 {
			t.Fatalf("event identity wrong: %+v", ev)
		}
	}

	_, plainDone := run(false)
	if plainDone != doneAt {
		t.Fatalf("observer changed completion time: %v vs %v", plainDone, doneAt)
	}
}

// Freeze/unfreeze events fire in RTO-hazard runs, and cancels are observed.
func TestFlowObserverFreezeAndCancel(t *testing.T) {
	eng := sim.New(5)
	cfg := DefaultConfig()
	cfg.ConcurrencyFreeFlows = 1
	cfg.TimeoutHazard = 0.9
	n := New(eng, cfg)
	a := addNode(t, n, 50_000, 50_000, 5*time.Millisecond, 0)
	b := addNode(t, n, 50_000, 50_000, 5*time.Millisecond, 0)

	counts := map[FlowEventKind]int{}
	n.SetFlowObserver(func(ev FlowEvent) { counts[ev.Kind]++ })

	var flows []*Flow
	for i := 0; i < 4; i++ {
		f, err := n.StartTransfer(a, b, 5_000_000, TransferOptions{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		flows = append(flows, f)
	}
	eng.RunUntil(20 * time.Second)
	if counts[FlowEventFreeze] == 0 {
		t.Fatal("no freeze events under a near-certain RTO hazard")
	}
	flows[0].Cancel()
	eng.RunUntil(21 * time.Second)
	if counts[FlowEventCancel] != 1 {
		t.Fatalf("cancel events = %d, want 1", counts[FlowEventCancel])
	}
}

// Slow-start doublings are observable on a link fast enough to ramp into.
func TestFlowObserverSeesRamps(t *testing.T) {
	eng := sim.New(1)
	n := New(eng, DefaultConfig())
	a := addNode(t, n, 10_000_000, 10_000_000, 50*time.Millisecond, 0)
	b := addNode(t, n, 10_000_000, 10_000_000, 50*time.Millisecond, 0)
	ramps := 0
	n.SetFlowObserver(func(ev FlowEvent) {
		if ev.Kind == FlowEventRamp {
			ramps++
		}
	})
	if _, err := n.StartTransfer(a, b, 20_000_000, TransferOptions{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if ramps == 0 {
		t.Fatal("no ramp events for a slow-starting flow")
	}
}

// Flow IDs are unique and stable in creation order.
func TestFlowIDsAreCreationOrdered(t *testing.T) {
	eng := sim.New(1)
	n := New(eng, instantSetup())
	a := addNode(t, n, 100_000, 100_000, 0, 0)
	b := addNode(t, n, 100_000, 100_000, 0, 0)
	for i := 0; i < 3; i++ {
		f, err := n.StartTransfer(a, b, 1000, TransferOptions{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if f.ID() != i {
			t.Fatalf("flow %d has ID %d", i, f.ID())
		}
		if f.Frozen() {
			t.Fatal("fresh flow reports frozen")
		}
	}
}
