package netem

import (
	"testing"
	"time"

	"p2psplice/internal/sim"
)

// TestRTOStaggersCrowdedFlows checks that the timeout model fires on
// overloaded links. Under max-min sharing a frozen flow's capacity is
// redistributed, so the *aggregate* finish time is conserved; the observable
// effect is that per-flow completions spread out instead of landing in one
// synchronized batch — exactly the staggering that makes big download pools
// stall repeatedly.
func TestRTOStaggersCrowdedFlows(t *testing.T) {
	run := func(hazard float64) (first, last time.Duration) {
		eng := sim.New(7)
		cfg := DefaultConfig()
		cfg.HandshakeRTTs = -1
		cfg.InitCwndSegments = 1 << 20
		cfg.ConcurrencyPenalty = -1 // isolate the RTO effect
		cfg.TimeoutHazard = hazard
		if hazard == 0 {
			cfg.TimeoutHazard = -1 // disable
		}
		n := New(eng, cfg)
		d := addNode(t, n, 1_000_000, 200_000, 0, 0)
		remaining := 8
		for i := 0; i < 8; i++ {
			u := addNode(t, n, 1_000_000, 1_000_000, 10*time.Millisecond, 0)
			if _, err := n.StartTransfer(u, d, 1_000_000, TransferOptions{}, func(*Flow) {
				if remaining == 8 {
					first = eng.Now()
				}
				remaining--
				if remaining == 0 {
					last = eng.Now()
				}
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Run(0); err != nil {
			t.Fatal(err)
		}
		if remaining != 0 {
			t.Fatal("flows never completed")
		}
		return first, last
	}
	cleanFirst, cleanLast := run(0)
	frozenFirst, frozenLast := run(0.3) // aggressive hazard: unambiguous effect
	cleanSpread := cleanLast - cleanFirst
	frozenSpread := frozenLast - frozenFirst
	if cleanSpread > time.Second {
		t.Errorf("clean fair-share run should complete in a near-batch, spread %v", cleanSpread)
	}
	if frozenSpread <= cleanSpread {
		t.Errorf("RTO freezes should stagger completions: clean spread %v, frozen spread %v",
			cleanSpread, frozenSpread)
	}
}

// TestRTONeverFiresUnderFreeFlows checks that uncrowded links never freeze.
func TestRTONeverFiresUnderFreeFlows(t *testing.T) {
	eng := sim.New(3)
	cfg := DefaultConfig()
	cfg.HandshakeRTTs = -1
	cfg.InitCwndSegments = 1 << 20
	cfg.ConcurrencyPenalty = -1
	cfg.TimeoutHazard = 0.9 // would freeze constantly if eligible
	n := New(eng, cfg)
	a := addNode(t, n, 100_000, 100_000, 0, 0)
	b := addNode(t, n, 100_000, 100_000, 0, 0)
	var doneAt time.Duration
	if _, err := n.StartTransfer(a, b, 300_000, TransferOptions{}, func(*Flow) { doneAt = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	// One flow on the link: exactly 3 seconds, no freeze possible.
	if diff := (doneAt - 3*time.Second).Abs(); diff > 20*time.Millisecond {
		t.Errorf("single flow done at %v, want ~3s (no RTO below the free-flow count)", doneAt)
	}
}

// TestRTODeterministic checks that freeze timing is reproducible per seed.
func TestRTODeterministic(t *testing.T) {
	run := func(seed int64) time.Duration {
		eng := sim.New(seed)
		cfg := DefaultConfig()
		cfg.TimeoutHazard = 0.2
		n := New(eng, cfg)
		d := addNode(t, n, 1_000_000, 150_000, 5*time.Millisecond, 0.02)
		var last time.Duration
		for i := 0; i < 6; i++ {
			u := addNode(t, n, 400_000, 400_000, 5*time.Millisecond, 0.02)
			if _, err := n.StartTransfer(u, d, 500_000, TransferOptions{}, func(*Flow) {
				last = eng.Now()
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Run(0); err != nil {
			t.Fatal(err)
		}
		return last
	}
	if a, b := run(11), run(11); a != b {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
	if a, b := run(11), run(12); a == b {
		t.Log("note: different seeds coincided (possible but unlikely)")
	}
}

// TestFrozenFlowRecovers checks a frozen flow resumes and finishes.
func TestFrozenFlowRecovers(t *testing.T) {
	eng := sim.New(5)
	cfg := DefaultConfig()
	cfg.HandshakeRTTs = -1
	cfg.InitCwndSegments = 1 << 20
	cfg.ConcurrencyPenalty = -1
	cfg.TimeoutHazard = 1.0 // every eligible check freezes
	cfg.TimeoutMeanFreeze = 500 * time.Millisecond
	n := New(eng, cfg)
	d := addNode(t, n, 1_000_000, 400_000, 0, 0)
	completions := 0
	for i := 0; i < 5; i++ {
		u := addNode(t, n, 1_000_000, 1_000_000, 0, 0)
		if _, err := n.StartTransfer(u, d, 400_000, TransferOptions{}, func(*Flow) {
			completions++
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Run(200000); err != nil {
		t.Fatal(err)
	}
	if completions != 5 {
		t.Errorf("only %d/5 flows completed under heavy freezing", completions)
	}
}
