package netem

import (
	"fmt"
	"math"
	"time"

	"p2psplice/internal/sim"
)

type flowState uint8

const (
	flowSetup flowState = iota // connection establishing, no bytes moving
	flowActive
	flowDone
	flowCancelled
)

// Flow is one TCP-like transfer.
type Flow struct {
	net  *Network
	id   int // network-unique, assigned in creation order
	src  NodeID
	dst  NodeID
	size int64

	state      flowState
	remaining  float64
	rate       float64 // current allocated rate, bytes/s
	rampCap    float64 // slow-start cap, doubles per RTT
	lossCap    float64 // Mathis bound; +Inf when the path is loss-free
	rampMax    float64 // stop ramping once rampCap exceeds this
	rtt        time.Duration
	started    time.Duration // creation time (setup start)
	activated  time.Duration // first payload byte
	lastUpdate time.Duration
	onLinks    bool // joined the link flow lists (reached flowActive)

	// Progress is anchored at the last rate change: remaining(t) is
	// recomputed as anchorRemaining - rate*(t-anchorAt) rather than
	// accumulated, so accrual is exact no matter how often (or rarely) a
	// flow is advanced — the property that lets the incremental
	// reallocator skip clean components entirely.
	anchorAt        time.Duration
	anchorRemaining float64

	// Link adjacency (valid while onLinks): the two access links the flow
	// traverses and its positions in their swap-removed flow lists.
	lup, ldown     *link
	upIdx, downIdx int
	flowsIdx       int // position in net.flows (swap-removed)

	// Transient allocator state, valid only inside a reallocation pass.
	mark        uint64 // collection generation that last visited this flow
	fixMark     uint64 // generation whose fill fixed this flow's rate
	pendingRate float64

	frozen      bool // in an RTO freeze; no bytes move
	rampPending bool // a slow-start doubling is scheduled (fired timers are not Cancelled)
	completion  *sim.Timer
	rampTimer   *sim.Timer
	setup       *sim.Timer
	hazardTimer *sim.Timer
	freezeTimer *sim.Timer
	onComplete  func(*Flow)
}

// TransferOptions tune one transfer.
type TransferOptions struct {
	// ReuseConnection skips the handshake cost, modelling a persistent
	// connection to a peer already contacted.
	ReuseConnection bool
	// Unbounded marks a cross-traffic flow that never completes; size is
	// ignored and OnComplete never fires. Cancel it to remove the load.
	Unbounded bool
}

// StartTransfer begins a transfer of size bytes from src to dst and invokes
// onComplete (which may be nil) from the engine's event context when the
// last byte is delivered.
func (n *Network) StartTransfer(src, dst NodeID, size int64, opts TransferOptions, onComplete func(*Flow)) (*Flow, error) {
	if err := n.checkID(src); err != nil {
		return nil, err
	}
	if err := n.checkID(dst); err != nil {
		return nil, err
	}
	if src == dst {
		return nil, fmt.Errorf("netem: transfer from node %d to itself", src)
	}
	if size <= 0 && !opts.Unbounded {
		return nil, fmt.Errorf("netem: transfer size must be positive, got %d", size)
	}

	rtt, err := n.RTT(src, dst)
	if err != nil {
		return nil, err
	}
	if rtt <= 0 {
		rtt = time.Millisecond // avoid division by zero for zero-delay paths
	}
	f := &Flow{
		net:        n,
		id:         n.flowSeq,
		src:        src,
		dst:        dst,
		size:       size,
		remaining:  float64(size),
		rtt:        rtt,
		started:    n.eng.Now(),
		lastUpdate: n.eng.Now(),
		onComplete: onComplete,
		lossCap:    math.Inf(1),
	}
	if opts.Unbounded {
		f.remaining = math.Inf(1)
	}
	f.lossCap = n.mathisCap(n.pathLossEventRate(src, dst), rtt)
	// Ramping beyond what the access links can carry is pointless; stop there.
	f.rampMax = math.Min(float64(n.nodes[src].cfg.UplinkBytesPerSec),
		float64(n.nodes[dst].cfg.DownlinkBytesPerSec))
	f.rampCap = float64(n.cfg.InitCwndSegments*n.cfg.MSS) / rtt.Seconds()

	n.flowSeq++
	f.flowsIdx = len(n.flows)
	n.flows = append(n.flows, f)

	setupDelay := time.Duration(0)
	if !opts.ReuseConnection {
		setupDelay = time.Duration(n.cfg.HandshakeRTTs * float64(rtt))
	} else {
		// A request on a warm connection still takes half an RTT to reach
		// the uploader.
		setupDelay = rtt / 2
	}
	f.state = flowSetup
	f.setup = n.eng.Schedule(setupDelay, f.activate)
	n.emitFlow(f, FlowEventSetup)
	return f, nil
}

// ID returns the network-unique flow identifier (creation order).
func (f *Flow) ID() int { return f.id }

// Frozen reports whether the flow is currently in an RTO freeze. It is a
// pure read: unlike Remaining, it does not advance the flow's progress.
func (f *Flow) Frozen() bool { return f.frozen }

// Src returns the uploading node.
func (f *Flow) Src() NodeID { return f.src }

// Dst returns the downloading node.
func (f *Flow) Dst() NodeID { return f.dst }

// Size returns the transfer size in bytes.
func (f *Flow) Size() int64 { return f.size }

// Remaining returns the bytes not yet transferred.
func (f *Flow) Remaining() int64 {
	f.net.advance(f)
	if math.IsInf(f.remaining, 1) {
		return math.MaxInt64
	}
	return int64(math.Ceil(f.remaining))
}

// Rate returns the current transfer rate in bytes/second.
func (f *Flow) Rate() float64 { return f.rate }

// Done reports whether the flow completed.
func (f *Flow) Done() bool { return f.state == flowDone }

// Cancelled reports whether the flow was cancelled.
func (f *Flow) Cancelled() bool { return f.state == flowCancelled }

// Elapsed returns how long the flow has existed (setup included) up to its
// completion, cancellation, or the current instant.
func (f *Flow) Elapsed() time.Duration {
	if f.state == flowDone || f.state == flowCancelled {
		return f.lastUpdate - f.started
	}
	return f.net.eng.Now() - f.started
}

// Cancel aborts the flow (peer departure, shutdown). OnComplete does not
// fire. Cancelling a finished or already-cancelled flow is a no-op.
func (f *Flow) Cancel() {
	if f.state == flowDone || f.state == flowCancelled {
		return
	}
	wasActive := f.state == flowActive
	f.net.advance(f)
	f.state = flowCancelled
	f.setup.Cancel()
	f.completion.Cancel()
	f.rampTimer.Cancel()
	f.hazardTimer.Cancel()
	f.freezeTimer.Cancel()
	lup, ldown := f.lup, f.ldown
	f.net.detach(f)
	if wasActive {
		f.net.reallocateOn(lup, ldown)
	}
	f.net.emitFlow(f, FlowEventCancel)
}

// activate moves the flow from connection setup to data transfer.
func (f *Flow) activate() {
	if f.state != flowSetup {
		return
	}
	f.state = flowActive
	f.activated = f.net.eng.Now()
	f.lastUpdate = f.activated
	f.anchorAt = f.activated
	f.anchorRemaining = f.remaining
	f.onLinks = true
	f.lup = f.net.nodes[f.src].up
	f.ldown = f.net.nodes[f.dst].down
	f.upIdx = len(f.lup.flows)
	f.lup.flows = append(f.lup.flows, f)
	f.downIdx = len(f.ldown.flows)
	f.ldown.flows = append(f.ldown.flows, f)
	f.scheduleRamp()
	f.scheduleHazard()
	f.net.reallocateOn(f.lup, f.ldown)
	f.net.emitFlow(f, FlowEventActivate)
}

// scheduleHazard arranges the next RTO check, one second out. At each check
// the flow freezes with probability TimeoutHazard per flow beyond the
// penalty-free count on its most crowded link.
func (f *Flow) scheduleHazard() {
	if f.net.cfg.TimeoutHazard <= 0 || f.net.cfg.TimeoutMeanFreeze <= 0 {
		return
	}
	f.hazardTimer = f.net.eng.Schedule(time.Second, func() {
		if f.state != flowActive {
			return
		}
		f.scheduleHazard()
		if f.frozen {
			return
		}
		crowd := len(f.lup.flows)
		if d := len(f.ldown.flows); d > crowd {
			crowd = d
		}
		excess := crowd - f.net.cfg.ConcurrencyFreeFlows
		if excess <= 0 {
			return
		}
		p := f.net.cfg.TimeoutHazard * float64(excess)
		if f.net.eng.RNG().Float64() >= p {
			return
		}
		// Freeze: exponential duration clamped to [0.2s, 8s].
		d := time.Duration(f.net.eng.RNG().ExpFloat64() * float64(f.net.cfg.TimeoutMeanFreeze))
		if d < 200*time.Millisecond {
			d = 200 * time.Millisecond
		}
		if d > 8*time.Second {
			d = 8 * time.Second
		}
		f.frozen = true
		f.freezeTimer = f.net.eng.Schedule(d, func() {
			if f.state != flowActive {
				return
			}
			f.frozen = false
			f.net.reallocateOn(f.lup, f.ldown)
			f.net.emitFlow(f, FlowEventUnfreeze)
		})
		f.net.reallocateOn(f.lup, f.ldown)
		f.net.emitFlow(f, FlowEventFreeze)
	})
}

// scheduleRamp arranges the next slow-start doubling. It is re-entered
// when a loss-state change raises a parked flow's Mathis cap, so the
// rampPending guard keeps at most one doubling in flight per flow.
func (f *Flow) scheduleRamp() {
	if f.rampPending || f.rampCap >= f.rampMax || f.rampCap >= f.lossCap {
		return // ramping further would never change the allocation
	}
	f.rampPending = true
	f.rampTimer = f.net.eng.Schedule(f.rtt, func() {
		f.rampPending = false
		if f.state != flowActive {
			return
		}
		f.rampCap *= 2
		f.scheduleRamp()
		f.net.reallocateOn(f.lup, f.ldown)
		f.net.emitFlow(f, FlowEventRamp)
	})
}

// mathisCap returns the Mathis throughput bound C·MSS/(RTT·sqrt(p)) for
// a path with loss-event rate p, guarding the sqrt(p) denominator: a
// lossless path (p <= 0) or a degenerate input (NaN rate, non-positive
// RTT) yields an unbounded cap instead of an Inf/NaN division.
func (n *Network) mathisCap(p float64, rtt time.Duration) float64 {
	if !(p > 0) || rtt <= 0 {
		return math.Inf(1)
	}
	return n.cfg.MathisC * float64(n.cfg.MSS) / (rtt.Seconds() * math.Sqrt(p))
}

// capLimit returns the flow's own rate ceiling (slow start, loss model,
// RTO freezes, and administratively-downed links). A zero cap means the
// allocator fixes the flow at rate 0 and cancels its completion timer;
// a later reallocation (link up, freeze end) revives it.
//
//lint:hotpath read in the progressive-filling inner loop, twice per flow per round
func (f *Flow) capLimit() float64 {
	if f.frozen || f.net.nodes[f.src].offline || f.net.nodes[f.dst].offline {
		return 0
	}
	return math.Min(f.rampCap, f.lossCap)
}

// LinkDown reports whether either endpoint's link is administratively
// down. Like Frozen, it is a pure read for stall attribution.
func (f *Flow) LinkDown() bool {
	return f.net.nodes[f.src].offline || f.net.nodes[f.dst].offline
}

// complete finishes the flow and notifies the owner.
func (f *Flow) complete() {
	if f.state != flowActive {
		return
	}
	f.net.advance(f)
	f.remaining = 0
	f.state = flowDone
	f.rampTimer.Cancel()
	f.hazardTimer.Cancel()
	f.freezeTimer.Cancel()
	lup, ldown := f.lup, f.ldown
	f.net.detach(f)
	f.net.reallocateOn(lup, ldown)
	f.net.emitFlow(f, FlowEventComplete)
	if f.onComplete != nil {
		f.onComplete(f)
	}
}

// detach removes the flow from its links and the live list, swapping the
// last element into its slot so removal is O(1) at swarm scale. Only
// flows that reached flowActive ever joined the links.
func (n *Network) detach(f *Flow) {
	if f.onLinks {
		f.lup.removeFlow(f.upIdx)
		f.ldown.removeFlow(f.downIdx)
		f.onLinks = false
	}
	last := len(n.flows) - 1
	moved := n.flows[last]
	n.flows[f.flowsIdx] = moved
	n.flows[last] = nil
	n.flows = n.flows[:last]
	if f.flowsIdx < last {
		moved.flowsIdx = f.flowsIdx
	}
}

// removeFlow swap-removes the flow at index i from the link's flow list
// and fixes up the moved flow's stored position.
func (l *link) removeFlow(i int) {
	last := len(l.flows) - 1
	moved := l.flows[last]
	l.flows[i] = moved
	l.flows[last] = nil
	l.flows = l.flows[:last]
	if i < last {
		if moved.lup == l {
			moved.upIdx = i
		} else {
			moved.downIdx = i
		}
	}
}

// advance accrues progress for f up to the current instant. Progress is
// recomputed from the last rate-change anchor rather than accumulated,
// so the result is identical no matter how many intermediate events
// called advance — the incremental reallocator relies on this to leave
// flows in clean components untouched.
func (n *Network) advance(f *Flow) {
	now := n.eng.Now()
	if f.state == flowActive && now > f.anchorAt {
		f.remaining = f.anchorRemaining - f.rate*(now-f.anchorAt).Seconds()
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
	if f.state == flowActive || f.state == flowSetup {
		f.lastUpdate = now
	}
}
