package netem

import (
	"math"
	"time"
)

// allocEpsilon absorbs floating-point noise when comparing rates.
const allocEpsilon = 1e-6

// reallocate recomputes every active flow's rate by progressive filling
// (max-min fairness) over the star topology's access links, honouring each
// flow's own cap (slow-start ramp and Mathis loss bound). It then reschedules
// completion events. It runs on every event that changes the flow set, a
// flow cap, or a link capacity; between such events all rates are constant,
// which is what makes the flow-level model exact.
func (n *Network) reallocate() {
	// Accrue progress at the old rates before changing anything.
	for _, f := range n.flows {
		n.advance(f)
	}

	// Working state: per-link remaining capacity and unfixed-flow count.
	type linkWork struct {
		remaining float64
		count     int
	}
	work := make(map[*link]*linkWork)
	var active []*Flow
	for _, f := range n.flows {
		if f.state != flowActive {
			continue
		}
		active = append(active, f)
		for _, l := range []*link{n.nodes[f.src].up, n.nodes[f.dst].down} {
			if _, ok := work[l]; !ok {
				work[l] = &linkWork{remaining: l.capacity}
			}
			work[l].count++
		}
	}

	// Many concurrent flows through one shaped link waste capacity on
	// retransmissions and synchronized loss; derate each link's effective
	// capacity by its concurrency before filling.
	for l, w := range work {
		excess := l.nFlows - n.cfg.ConcurrencyFreeFlows
		if excess < 0 {
			excess = 0
		}
		w.remaining = l.capacity / (1 + n.cfg.ConcurrencyPenalty*float64(excess))
	}

	fixed := make(map[*Flow]float64, len(active))
	// Deterministic link iteration order: nodes in ID order, up then down.
	orderedLinks := func() []*link {
		var ls []*link
		for _, nd := range n.nodes {
			if w, ok := work[nd.up]; ok && w.count > 0 {
				ls = append(ls, nd.up)
			}
			if w, ok := work[nd.down]; ok && w.count > 0 {
				ls = append(ls, nd.down)
			}
		}
		return ls
	}

	fix := func(f *Flow, rate float64) {
		fixed[f] = rate
		for _, l := range []*link{n.nodes[f.src].up, n.nodes[f.dst].down} {
			w := work[l]
			w.remaining -= rate
			if w.remaining < 0 {
				w.remaining = 0
			}
			w.count--
		}
	}

	for len(fixed) < len(active) {
		links := orderedLinks()
		minShare := math.Inf(1)
		var bottleneck *link
		for _, l := range links {
			w := work[l]
			share := w.remaining / float64(w.count)
			if share < minShare-allocEpsilon {
				minShare = share
				bottleneck = l
			}
		}
		if bottleneck == nil {
			// No unfixed flow traverses any link; nothing left to do.
			break
		}
		// Flows whose own cap is below the fair share are rate-limited by
		// their cap, not the network: fix them first and refill.
		anyCapped := false
		for _, f := range active {
			if _, ok := fixed[f]; ok {
				continue
			}
			if f.capLimit() <= minShare+allocEpsilon {
				fix(f, f.capLimit())
				anyCapped = true
			}
		}
		if anyCapped {
			continue
		}
		// Otherwise the bottleneck link saturates: its flows get the share.
		for _, f := range active {
			if _, ok := fixed[f]; ok {
				continue
			}
			if n.nodes[f.src].up == bottleneck || n.nodes[f.dst].down == bottleneck {
				fix(f, minShare)
			}
		}
	}

	// Apply rates and reschedule completions.
	for _, f := range active {
		rate := fixed[f]
		if math.Abs(rate-f.rate) <= allocEpsilon*math.Max(1, f.rate) && f.completion != nil && !f.completion.Cancelled() {
			continue // unchanged; keep the existing completion event
		}
		f.rate = rate
		f.completion.Cancel()
		f.completion = nil
		if math.IsInf(f.remaining, 1) {
			continue // unbounded cross-traffic never completes
		}
		if rate <= allocEpsilon {
			continue // starved; a later reallocation will revive it
		}
		delay := time.Duration(f.remaining / rate * float64(time.Second))
		f.completion = n.eng.Schedule(delay, f.complete)
	}
}
