package netem

import (
	"math"
	"time"
)

// allocEpsilon absorbs floating-point noise when comparing rates.
const allocEpsilon = 1e-6

// AllocStats counts reallocation work. The swarm-scale benchmarks report
// these alongside wall-clock rates so the full-vs-incremental ratio is
// visible in BENCH_*.json artifacts.
type AllocStats struct {
	// Reallocs is the number of reallocation passes (each flow event that
	// changes the flow set, a cap, or a link triggers exactly one).
	Reallocs uint64
	// FullReallocs is the number of passes that refilled every component
	// (the ForceFullReallocation oracle mode; the incremental path never
	// widens beyond the dirty components, so outside that mode this stays
	// zero).
	FullReallocs uint64
	// Components is the number of connected components progressively
	// filled across all passes.
	Components uint64
	// FlowsFilled is the number of flow rates recomputed across all
	// passes — the incremental path's unit of work. Under full
	// reallocation this grows by the whole active flow count per event.
	FlowsFilled uint64
}

// AllocStats returns the cumulative reallocation counters.
func (n *Network) AllocStats() AllocStats { return n.stats }

// ForceFullReallocation switches the network between the incremental
// reallocator (default) and the full per-event recompute. The full mode
// is the test oracle: the differential and fuzz tests drive paired
// networks through identical event scripts and assert every flow rate is
// bit-identical between the two modes. It is also the benchmark baseline
// the BENCH_*.json full-vs-incremental ratio is measured against.
func (n *Network) ForceFullReallocation(on bool) { n.forceFull = on }

// compBound delimits one connected component inside the region scratch
// slices: links [l0:l1) and flows [f0:f1).
type compBound struct {
	l0, l1, f0, f1 int
}

// reallocateOn recomputes max-min fair rates after a flow event whose
// direct effect is confined to links a and b (either may be nil). Only
// the connected components of the flow/link sharing graph that contain a
// dirty link are refilled: progressive filling is a pure function of a
// component's link capacities, per-link flow counts, and flow caps, so a
// component none of whose inputs changed would refill to bit-identical
// rates — skipping it is exact, not approximate. When the dirty
// components span the whole star this degenerates to the full recompute.
func (n *Network) reallocateOn(a, b *link) {
	n.stats.Reallocs++
	if n.forceFull {
		n.reallocateFull()
		return
	}
	n.beginRegion()
	n.collectComponent(a)
	n.collectComponent(b)
	n.fillRegion()
}

// reallocateFull refills every connected component. It is the oracle the
// incremental path is differentially tested against: both run the same
// per-component progressive filling in the same canonical order, so for
// any single component the two paths execute identical floating-point
// operations. The full pass simply never skips a clean component.
func (n *Network) reallocateFull() {
	n.stats.FullReallocs++
	n.beginRegion()
	for _, nd := range n.nodes {
		n.collectComponent(nd.up)
		n.collectComponent(nd.down)
	}
	n.fillRegion()
}

// beginRegion starts a new collection generation and resets the region
// scratch. Generation-stamped marks on links and flows make resets O(1):
// stale marks from earlier passes never compare equal.
//
//lint:hotpath region setup on every flow event; the paired AllocsPerRun test and BenchmarkHotpathReallocate assert 0 allocs/op in steady state
func (n *Network) beginRegion() {
	n.allocGen++
	n.regionLinks = n.regionLinks[:0]
	n.regionFlows = n.regionFlows[:0]
	n.compBounds = n.compBounds[:0]
}

// collectComponent walks the flow/link sharing graph from seed and
// appends its connected component to the region, then sorts the
// component's links by ord and flows by creation ID. The sort makes the
// component's fill order canonical — independent of which dirty link the
// walk entered through — which is what makes the incremental path
// bit-identical to the full recompute. A nil, already-collected, or
// flow-free seed contributes nothing.
//
//lint:hotpath dirty-component discovery on every flow event
func (n *Network) collectComponent(seed *link) {
	if seed == nil || seed.mark == n.allocGen || len(seed.flows) == 0 {
		return
	}
	l0, f0 := len(n.regionLinks), len(n.regionFlows)
	seed.mark = n.allocGen
	n.linkQueue = n.linkQueue[:0]
	//lint:ignore allocfree amortized: region scratch grows to the largest component once and is reused
	n.linkQueue = append(n.linkQueue, seed)
	//lint:ignore allocfree amortized: region scratch grows to the largest component once and is reused
	n.regionLinks = append(n.regionLinks, seed)
	for len(n.linkQueue) > 0 {
		l := n.linkQueue[len(n.linkQueue)-1]
		n.linkQueue = n.linkQueue[:len(n.linkQueue)-1]
		for _, f := range l.flows {
			if f.mark == n.allocGen {
				continue
			}
			f.mark = n.allocGen
			//lint:ignore allocfree amortized: region scratch grows to the largest component once and is reused
			n.regionFlows = append(n.regionFlows, f)
			if f.lup.mark != n.allocGen {
				f.lup.mark = n.allocGen
				//lint:ignore allocfree amortized: region scratch grows to the largest component once and is reused
				n.regionLinks = append(n.regionLinks, f.lup)
				//lint:ignore allocfree amortized: region scratch grows to the largest component once and is reused
				n.linkQueue = append(n.linkQueue, f.lup)
			}
			if f.ldown.mark != n.allocGen {
				f.ldown.mark = n.allocGen
				//lint:ignore allocfree amortized: region scratch grows to the largest component once and is reused
				n.regionLinks = append(n.regionLinks, f.ldown)
				//lint:ignore allocfree amortized: region scratch grows to the largest component once and is reused
				n.linkQueue = append(n.linkQueue, f.ldown)
			}
		}
	}
	sortLinksByOrd(n.regionLinks[l0:])
	sortFlowsByID(n.regionFlows[f0:])
	//lint:ignore allocfree amortized: component-bound scratch grows to the high-water mark once and is reused
	n.compBounds = append(n.compBounds, compBound{l0: l0, l1: len(n.regionLinks), f0: f0, f1: len(n.regionFlows)})
}

// fillRegion accrues progress for every flow in the region, refills each
// collected component, and applies the resulting rates in global flow-ID
// order. The apply order matters: rescheduled completion timers consume
// engine sequence numbers, which break FIFO ties among simultaneous
// events, so both reallocation paths must reschedule in the same order.
func (n *Network) fillRegion() {
	for _, f := range n.regionFlows {
		n.advance(f)
	}
	for _, c := range n.compBounds {
		n.fillComponent(n.regionLinks[c.l0:c.l1], n.regionFlows[c.f0:c.f1])
	}
	n.stats.Components += uint64(len(n.compBounds))
	n.stats.FlowsFilled += uint64(len(n.regionFlows))
	sortFlowsByID(n.regionFlows)
	n.applyRates(n.regionFlows)
}

// fillComponent runs progressive filling (max-min fairness) over one
// connected component: links sorted by ord, flows sorted by creation ID.
// Each round finds the minimum per-flow share among unsaturated links;
// flows whose own cap (slow-start ramp, Mathis loss bound, freezes, down
// links) is below that share are rate-limited by the cap, not the
// network, so they are fixed first and the round repeats; otherwise the
// bottleneck link saturates and its flows get the fair share. Many
// concurrent flows through one shaped link waste capacity on
// retransmissions and synchronized loss, so each link's effective
// capacity is derated by its concurrency before filling.
//
//lint:hotpath the incremental reallocator's inner loop; runs once per dirty component per flow event
func (n *Network) fillComponent(links []*link, flows []*Flow) {
	for _, l := range links {
		excess := len(l.flows) - n.cfg.ConcurrencyFreeFlows
		if excess < 0 {
			excess = 0
		}
		l.remaining = l.capacity / (1 + n.cfg.ConcurrencyPenalty*float64(excess))
		l.unfixed = len(l.flows)
	}
	nFixed := 0
	for nFixed < len(flows) {
		minShare := math.Inf(1)
		var bottleneck *link
		for _, l := range links {
			if l.unfixed == 0 {
				continue
			}
			share := l.remaining / float64(l.unfixed)
			if share < minShare-allocEpsilon {
				minShare = share
				bottleneck = l
			}
		}
		if bottleneck == nil {
			// No unfixed flow traverses any link; nothing left to do.
			break
		}
		anyCapped := false
		for _, f := range flows {
			if f.fixMark == n.allocGen {
				continue
			}
			if f.capLimit() <= minShare+allocEpsilon {
				n.fixFlow(f, f.capLimit())
				nFixed++
				anyCapped = true
			}
		}
		if anyCapped {
			continue
		}
		for _, f := range flows {
			if f.fixMark == n.allocGen {
				continue
			}
			if f.lup == bottleneck || f.ldown == bottleneck {
				n.fixFlow(f, minShare)
				nFixed++
			}
		}
	}
}

// fixFlow pins f's rate for this pass and charges it to both links.
//
//lint:hotpath called once per flow per fill
func (n *Network) fixFlow(f *Flow, rate float64) {
	f.fixMark = n.allocGen
	f.pendingRate = rate
	f.lup.remaining -= rate
	if f.lup.remaining < 0 {
		f.lup.remaining = 0
	}
	f.lup.unfixed--
	f.ldown.remaining -= rate
	if f.ldown.remaining < 0 {
		f.ldown.remaining = 0
	}
	f.ldown.unfixed--
}

// applyRates installs the computed rates and reschedules completion
// events. Flows whose rate is unchanged (within epsilon) keep their
// existing completion timer, so clean refills consume no engine sequence
// numbers — the property that lets the full oracle and the incremental
// path stay on identical trajectories.
func (n *Network) applyRates(flows []*Flow) {
	for _, f := range flows {
		rate := 0.0
		if f.fixMark == n.allocGen {
			rate = f.pendingRate
		}
		if math.Abs(rate-f.rate) <= allocEpsilon*math.Max(1, f.rate) && f.completion != nil && !f.completion.Cancelled() {
			continue // unchanged; keep the existing completion event
		}
		f.rate = rate
		f.anchorAt = n.eng.Now()
		f.anchorRemaining = f.remaining
		f.completion.Cancel()
		f.completion = nil
		if math.IsInf(f.remaining, 1) {
			continue // unbounded cross-traffic never completes
		}
		if rate <= allocEpsilon {
			continue // starved; a later reallocation will revive it
		}
		delay := time.Duration(f.remaining / rate * float64(time.Second))
		f.completion = n.eng.Schedule(delay, f.complete)
	}
}

// sortLinksByOrd heap-sorts links in place by their creation order
// (node ID, uplink before downlink). Heapsort keeps the hot path
// allocation-free; ord values are unique, so the lack of stability
// cannot introduce nondeterminism.
//
//lint:hotpath canonical link ordering for every collected component
func sortLinksByOrd(ls []*link) {
	k := len(ls)
	for i := k/2 - 1; i >= 0; i-- {
		siftLink(ls, i, k)
	}
	for i := k - 1; i > 0; i-- {
		ls[0], ls[i] = ls[i], ls[0]
		siftLink(ls, 0, i)
	}
}

//lint:hotpath heapsort helper for sortLinksByOrd
func siftLink(ls []*link, i, k int) {
	for {
		c := 2*i + 1
		if c >= k {
			return
		}
		if c+1 < k && ls[c+1].ord > ls[c].ord {
			c++
		}
		if ls[i].ord >= ls[c].ord {
			return
		}
		ls[i], ls[c] = ls[c], ls[i]
		i = c
	}
}

// sortFlowsByID heap-sorts flows in place by creation ID. Flow IDs are
// unique, so the result is deterministic.
//
//lint:hotpath canonical flow ordering for every collected component and the global apply pass
func sortFlowsByID(fs []*Flow) {
	k := len(fs)
	for i := k/2 - 1; i >= 0; i-- {
		siftFlow(fs, i, k)
	}
	for i := k - 1; i > 0; i-- {
		fs[0], fs[i] = fs[i], fs[0]
		siftFlow(fs, 0, i)
	}
}

//lint:hotpath heapsort helper for sortFlowsByID
func siftFlow(fs []*Flow, i, k int) {
	for {
		c := 2*i + 1
		if c >= k {
			return
		}
		if c+1 < k && fs[c+1].id > fs[c].id {
			c++
		}
		if fs[i].id >= fs[c].id {
			return
		}
		fs[i], fs[c] = fs[c], fs[i]
		i = c
	}
}
