package netem

import (
	"math"
	"testing"
	"time"

	"p2psplice/internal/sim"
)

// lossless returns a config with no per-connection costs so transfer times
// are pure bandwidth arithmetic, making assertions exact.
func instantSetup() Config {
	c := DefaultConfig()
	c.HandshakeRTTs = -1         // disable: exact bandwidth arithmetic
	c.InitCwndSegments = 1 << 20 // effectively disable slow start
	c.ConcurrencyPenalty = -1
	return c
}

func addNode(t *testing.T, n *Network, up, down int64, delay time.Duration, loss float64) NodeID {
	t.Helper()
	id, err := n.AddNode(NodeConfig{
		UplinkBytesPerSec:   up,
		DownlinkBytesPerSec: down,
		AccessDelay:         delay,
		LossRate:            loss,
	})
	if err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	return id
}

func TestSingleFlowSaturatesBottleneck(t *testing.T) {
	eng := sim.New(1)
	n := New(eng, instantSetup())
	a := addNode(t, n, 100_000, 100_000, 0, 0)
	b := addNode(t, n, 50_000, 50_000, 0, 0)

	var doneAt time.Duration
	_, err := n.StartTransfer(a, b, 100_000, TransferOptions{}, func(f *Flow) {
		doneAt = eng.Now()
		if !f.Done() {
			t.Error("flow should report Done in completion callback")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	// Bottleneck is b's 50 kB/s downlink: 100 kB takes 2 s.
	want := 2 * time.Second
	if diff := (doneAt - want).Abs(); diff > 10*time.Millisecond {
		t.Errorf("completed at %v, want ~%v", doneAt, want)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	eng := sim.New(1)
	n := New(eng, instantSetup())
	// Two uploaders, one downloader: the downlink is the shared bottleneck.
	u1 := addNode(t, n, 1_000_000, 1_000_000, 0, 0)
	u2 := addNode(t, n, 1_000_000, 1_000_000, 0, 0)
	d := addNode(t, n, 1_000_000, 100_000, 0, 0)

	var times []time.Duration
	done := func(*Flow) { times = append(times, eng.Now()) }
	if _, err := n.StartTransfer(u1, d, 100_000, TransferOptions{}, done); err != nil {
		t.Fatal(err)
	}
	if _, err := n.StartTransfer(u2, d, 100_000, TransferOptions{}, done); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	// Each gets 50 kB/s, so both finish at ~2 s.
	if len(times) != 2 {
		t.Fatalf("got %d completions, want 2", len(times))
	}
	for _, at := range times {
		if diff := (at - 2*time.Second).Abs(); diff > 20*time.Millisecond {
			t.Errorf("completed at %v, want ~2s", at)
		}
	}
}

func TestMaxMinRespectsPerFlowCaps(t *testing.T) {
	// One capped flow (lossy path) and one clean flow share a downlink:
	// the clean flow should take up the slack the capped flow can't use.
	eng := sim.New(1)
	cfg := instantSetup()
	n := New(eng, cfg)
	// 5% loss on u1's uplink. With LossEventFactor 0.125, RTT 100 ms:
	// cap = 1.22*1460/(0.1*sqrt(0.00625)) ~= 225 kB/s, below the 300 kB/s
	// fair share of the 600 kB/s downlink, so the cap binds.
	u1 := addNode(t, n, 1_000_000, 1_000_000, 25*time.Millisecond, 0.05)
	u2 := addNode(t, n, 1_000_000, 1_000_000, 25*time.Millisecond, 0)
	d := addNode(t, n, 1_000_000, 600_000, 25*time.Millisecond, 0)

	f1, err := n.StartTransfer(u1, d, 10_000_000, TransferOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := n.StartTransfer(u2, d, 10_000_000, TransferOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(5 * time.Second)
	capWant := cfg.MathisC * 1460 / (0.1 * math.Sqrt(0.05*cfg.LossEventFactor))
	if diff := math.Abs(f1.Rate() - capWant); diff > 1 {
		t.Errorf("lossy flow rate %.0f, want Mathis cap %.0f", f1.Rate(), capWant)
	}
	if want := 600_000 - capWant; math.Abs(f2.Rate()-want) > 1 {
		t.Errorf("clean flow rate %.0f, want remainder %.0f", f2.Rate(), want)
	}
	f1.Cancel()
	eng.RunUntil(6 * time.Second)
	if math.Abs(f2.Rate()-600_000) > 1 {
		t.Errorf("after cancel, clean flow rate %.0f, want full 600000", f2.Rate())
	}
}

func TestHandshakeDelaysFirstByte(t *testing.T) {
	eng := sim.New(1)
	cfg := instantSetup()
	cfg.HandshakeRTTs = 1.5
	n := New(eng, cfg)
	a := addNode(t, n, 100_000, 100_000, 25*time.Millisecond, 0)
	b := addNode(t, n, 100_000, 100_000, 25*time.Millisecond, 0)

	var doneAt time.Duration
	if _, err := n.StartTransfer(a, b, 100_000, TransferOptions{}, func(*Flow) { doneAt = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	// RTT = 100 ms, handshake = 150 ms, transfer = 1 s.
	want := 1150 * time.Millisecond
	if diff := (doneAt - want).Abs(); diff > 10*time.Millisecond {
		t.Errorf("completed at %v, want ~%v", doneAt, want)
	}

	// Reused connection: only half an RTT of request latency.
	eng2 := sim.New(1)
	n2 := New(eng2, cfg)
	a2 := addNode(t, n2, 100_000, 100_000, 25*time.Millisecond, 0)
	b2 := addNode(t, n2, 100_000, 100_000, 25*time.Millisecond, 0)
	var doneAt2 time.Duration
	if _, err := n2.StartTransfer(a2, b2, 100_000, TransferOptions{ReuseConnection: true}, func(*Flow) { doneAt2 = eng2.Now() }); err != nil {
		t.Fatal(err)
	}
	if err := eng2.Run(0); err != nil {
		t.Fatal(err)
	}
	if doneAt2 >= doneAt {
		t.Errorf("reused connection (%v) should beat fresh connection (%v)", doneAt2, doneAt)
	}
}

func TestSlowStartPenalizesSmallTransfers(t *testing.T) {
	// With slow start, downloading 10 x 100kB takes longer than 1 x 1MB:
	// the per-transfer ramp (and handshakes) dominate short flows.
	cfg := DefaultConfig()
	elapsed := func(pieces int, size int64) time.Duration {
		eng := sim.New(1)
		n := New(eng, cfg)
		a := addNode(t, n, 1_000_000, 1_000_000, 25*time.Millisecond, 0)
		b := addNode(t, n, 1_000_000, 1_000_000, 25*time.Millisecond, 0)
		var finish time.Duration
		var next func(i int)
		next = func(i int) {
			if i == pieces {
				finish = eng.Now()
				return
			}
			if _, err := n.StartTransfer(a, b, size, TransferOptions{}, func(*Flow) { next(i + 1) }); err != nil {
				t.Fatal(err)
			}
		}
		next(0)
		if err := eng.Run(0); err != nil {
			t.Fatal(err)
		}
		return finish
	}
	small := elapsed(10, 100_000)
	big := elapsed(1, 1_000_000)
	if small <= big {
		t.Errorf("10x100kB (%v) should be slower than 1x1MB (%v)", small, big)
	}
}

func TestUnboundedCrossTraffic(t *testing.T) {
	eng := sim.New(1)
	n := New(eng, instantSetup())
	a := addNode(t, n, 100_000, 100_000, 0, 0)
	b := addNode(t, n, 100_000, 100_000, 0, 0)
	c := addNode(t, n, 100_000, 100_000, 0, 0)

	cross, err := n.StartTransfer(c, b, 0, TransferOptions{Unbounded: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var doneAt time.Duration
	if _, err := n.StartTransfer(a, b, 100_000, TransferOptions{}, func(*Flow) { doneAt = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(30 * time.Second)
	// b's downlink shared: real flow gets 50 kB/s -> 2 s.
	if diff := (doneAt - 2*time.Second).Abs(); diff > 20*time.Millisecond {
		t.Errorf("flow with cross traffic done at %v, want ~2s", doneAt)
	}
	if cross.Done() {
		t.Error("unbounded flow must never complete")
	}
	if cross.Remaining() != math.MaxInt64 {
		t.Error("unbounded flow should report MaxInt64 remaining")
	}
	cross.Cancel()
	if !cross.Cancelled() {
		t.Error("Cancelled() should be true after Cancel")
	}
}

func TestCancelDuringSetup(t *testing.T) {
	eng := sim.New(1)
	n := New(eng, DefaultConfig())
	a := addNode(t, n, 100_000, 100_000, 25*time.Millisecond, 0)
	b := addNode(t, n, 100_000, 100_000, 25*time.Millisecond, 0)
	f, err := n.StartTransfer(a, b, 100_000, TransferOptions{}, func(*Flow) {
		t.Error("cancelled flow completed")
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Cancel()
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if n.ActiveFlows() != 0 {
		t.Errorf("ActiveFlows = %d, want 0", n.ActiveFlows())
	}
	// Cancel again: no-op, no panic.
	f.Cancel()
}

func TestBandwidthSchedule(t *testing.T) {
	eng := sim.New(1)
	n := New(eng, instantSetup())
	a := addNode(t, n, 1_000_000, 1_000_000, 0, 0)
	b := addNode(t, n, 100_000, 100_000, 0, 0)
	if err := n.ScheduleBandwidth(b, []BandwidthStep{{At: time.Second, BytesPerSec: 50_000}}); err != nil {
		t.Fatal(err)
	}
	var doneAt time.Duration
	if _, err := n.StartTransfer(a, b, 150_000, TransferOptions{}, func(*Flow) { doneAt = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	// 100 kB in the first second at 100 kB/s, remaining 50 kB at 50 kB/s: 2 s.
	if diff := (doneAt - 2*time.Second).Abs(); diff > 20*time.Millisecond {
		t.Errorf("done at %v, want ~2s", doneAt)
	}
}

func TestValidationErrors(t *testing.T) {
	eng := sim.New(1)
	n := New(eng, DefaultConfig())
	a := addNode(t, n, 100, 100, 0, 0)

	if _, err := n.AddNode(NodeConfig{UplinkBytesPerSec: 0, DownlinkBytesPerSec: 1}); err == nil {
		t.Error("zero uplink: want error")
	}
	if _, err := n.AddNode(NodeConfig{UplinkBytesPerSec: 1, DownlinkBytesPerSec: 1, AccessDelay: -time.Second}); err == nil {
		t.Error("negative delay: want error")
	}
	if _, err := n.AddNode(NodeConfig{UplinkBytesPerSec: 1, DownlinkBytesPerSec: 1, LossRate: 1}); err == nil {
		t.Error("loss=1: want error")
	}
	if _, err := n.StartTransfer(a, a, 10, TransferOptions{}, nil); err == nil {
		t.Error("self transfer: want error")
	}
	if _, err := n.StartTransfer(a, NodeID(99), 10, TransferOptions{}, nil); err == nil {
		t.Error("unknown dst: want error")
	}
	if _, err := n.StartTransfer(NodeID(99), a, 10, TransferOptions{}, nil); err == nil {
		t.Error("unknown src: want error")
	}
	b := addNode(t, n, 100, 100, 0, 0)
	if _, err := n.StartTransfer(a, b, 0, TransferOptions{}, nil); err == nil {
		t.Error("zero size: want error")
	}
	if err := n.SetUplink(NodeID(99), 10); err == nil {
		t.Error("unknown node SetUplink: want error")
	}
	if err := n.SetUplink(a, 0); err == nil {
		t.Error("zero SetUplink: want error")
	}
	if err := n.SetDownlink(a, -1); err == nil {
		t.Error("negative SetDownlink: want error")
	}
	if err := n.ScheduleBandwidth(a, []BandwidthStep{{At: 0, BytesPerSec: 0}}); err == nil {
		t.Error("zero schedule rate: want error")
	}
	if _, err := n.Node(NodeID(99)); err == nil {
		t.Error("unknown Node: want error")
	}
	if _, err := n.RTT(a, NodeID(99)); err == nil {
		t.Error("unknown RTT node: want error")
	}
	if _, err := n.OneWayDelay(NodeID(99), a); err == nil {
		t.Error("unknown OneWayDelay node: want error")
	}
}

func TestDelays(t *testing.T) {
	eng := sim.New(1)
	n := New(eng, DefaultConfig())
	seeder := addNode(t, n, 100, 100, 475*time.Millisecond, 0)
	peer := addNode(t, n, 100, 100, 25*time.Millisecond, 0)
	ow, err := n.OneWayDelay(seeder, peer)
	if err != nil {
		t.Fatal(err)
	}
	if ow != 500*time.Millisecond {
		t.Errorf("seeder-peer one-way = %v, want 500ms", ow)
	}
	rtt, err := n.RTT(peer, peer)
	if err != nil {
		t.Fatal(err)
	}
	if rtt != 100*time.Millisecond {
		t.Errorf("peer RTT = %v, want 100ms", rtt)
	}
	if n.NodeCount() != 2 {
		t.Errorf("NodeCount = %d, want 2", n.NodeCount())
	}
	nc, err := n.Node(seeder)
	if err != nil || nc.AccessDelay != 475*time.Millisecond {
		t.Errorf("Node(seeder) = %+v, %v", nc, err)
	}
}

func TestDeterministicCompletion(t *testing.T) {
	run := func() []time.Duration {
		eng := sim.New(99)
		n := New(eng, DefaultConfig())
		var ids []NodeID
		for i := 0; i < 6; i++ {
			ids = append(ids, addNode(t, n, 200_000, 200_000, 25*time.Millisecond, 0.02))
		}
		var times []time.Duration
		for i := 1; i < 6; i++ {
			size := int64(50_000 * i)
			if _, err := n.StartTransfer(ids[0], ids[i], size, TransferOptions{}, func(*Flow) {
				times = append(times, eng.Now())
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Run(0); err != nil {
			t.Fatal(err)
		}
		return times
	}
	a, b := run(), run()
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("completions: %d and %d, want 5", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run differed at completion %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestConservationUnderLoad(t *testing.T) {
	// Many flows into one downlink: aggregate rate must not exceed capacity.
	eng := sim.New(5)
	n := New(eng, instantSetup())
	d := addNode(t, n, 1_000_000, 300_000, 0, 0)
	var flows []*Flow
	for i := 0; i < 8; i++ {
		u := addNode(t, n, 150_000, 150_000, 0, 0)
		f, err := n.StartTransfer(u, d, 10_000_000, TransferOptions{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		flows = append(flows, f)
	}
	eng.RunUntil(time.Second)
	var sum float64
	for _, f := range flows {
		sum += f.Rate()
	}
	if sum > 300_000*(1+1e-6) {
		t.Errorf("aggregate rate %.0f exceeds downlink capacity 300000", sum)
	}
	if sum < 300_000*0.999 {
		t.Errorf("aggregate rate %.0f underuses downlink capacity 300000", sum)
	}
}

func TestConcurrencyPenaltyDeratesLink(t *testing.T) {
	// Four flows into one downlink exceed the 3 penalty-free flows by one:
	// aggregate goodput is capacity / (1 + 0.1*1).
	eng := sim.New(1)
	cfg := DefaultConfig()
	cfg.HandshakeRTTs = 0
	cfg.InitCwndSegments = 1 << 20
	n := New(eng, cfg)
	d := addNode(t, n, 1_000_000, 400_000, 0, 0)
	var flows []*Flow
	for i := 0; i < 4; i++ {
		u := addNode(t, n, 1_000_000, 1_000_000, 0, 0)
		f, err := n.StartTransfer(u, d, 50_000_000, TransferOptions{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		flows = append(flows, f)
	}
	eng.RunUntil(time.Second)
	var sum float64
	for _, f := range flows {
		sum += f.Rate()
	}
	want := 400_000 / (1 + 0.1*1)
	if math.Abs(sum-want) > 1 {
		t.Errorf("aggregate = %.0f, want derated %.0f", sum, want)
	}
	// A single flow pays no penalty.
	for _, f := range flows[1:] {
		f.Cancel()
	}
	eng.RunUntil(2 * time.Second)
	if math.Abs(flows[0].Rate()-400_000) > 1 {
		t.Errorf("single flow = %.0f, want full 400000", flows[0].Rate())
	}
}

func TestFlowAccessors(t *testing.T) {
	eng := sim.New(1)
	n := New(eng, instantSetup())
	a := addNode(t, n, 100_000, 100_000, 0, 0)
	b := addNode(t, n, 100_000, 100_000, 0, 0)
	f, err := n.StartTransfer(a, b, 100_000, TransferOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Src() != a || f.Dst() != b || f.Size() != 100_000 {
		t.Error("accessors wrong")
	}
	eng.RunUntil(500 * time.Millisecond)
	if got := f.Elapsed(); got != 500*time.Millisecond {
		t.Errorf("Elapsed = %v, want 500ms", got)
	}
	rem := f.Remaining()
	if rem <= 0 || rem >= 100_000 {
		t.Errorf("Remaining = %d mid-transfer", rem)
	}
	if n.ActiveFlows() != 1 {
		t.Errorf("ActiveFlows = %d, want 1", n.ActiveFlows())
	}
	eng.RunUntil(5 * time.Second)
	if !f.Done() || f.Remaining() != 0 {
		t.Error("flow should be done with zero remaining")
	}
	if got := f.Elapsed(); got != time.Second {
		t.Errorf("final Elapsed = %v, want 1s", got)
	}
	if n.ActiveFlows() != 0 {
		t.Errorf("ActiveFlows after completion = %d, want 0", n.ActiveFlows())
	}
}

func TestConfigDefaultsAndSentinels(t *testing.T) {
	d := Config{}.withDefaults()
	def := DefaultConfig()
	if d != def {
		t.Errorf("zero config defaults = %+v, want %+v", d, def)
	}
	// Negative sentinels disable each mechanism.
	off := Config{
		HandshakeRTTs:        -1,
		ConcurrencyPenalty:   -1,
		ConcurrencyFreeFlows: -1,
		TimeoutHazard:        -1,
		TimeoutMeanFreeze:    -1,
	}.withDefaults()
	if off.ConcurrencyPenalty != 0 || off.ConcurrencyFreeFlows != 0 ||
		off.TimeoutHazard != 0 || off.TimeoutMeanFreeze != 0 {
		t.Errorf("negative sentinels not honoured: %+v", off)
	}
	// HandshakeRTTs < 0 means an explicitly free handshake.
	if off.HandshakeRTTs != 0 {
		t.Errorf("HandshakeRTTs = %v, want 0 for negative sentinel", off.HandshakeRTTs)
	}
	// Explicit values survive.
	custom := Config{MSS: 9000, MathisC: 2, LossEventFactor: 0.5}.withDefaults()
	if custom.MSS != 9000 || custom.MathisC != 2 || custom.LossEventFactor != 0.5 {
		t.Errorf("explicit values overwritten: %+v", custom)
	}
}

func TestNewNilEnginePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for nil engine")
		}
	}()
	New(nil, Config{})
}
