package netem

import (
	"fmt"
	"time"
)

// SetLinkDown administratively downs (or restores) a node's access
// links. Down links contribute a zero cap to every flow touching the
// node, so those flows freeze in place — bytes already accrued stay
// accrued, completion timers are cancelled, and the next reallocation
// after the link returns revives them. Flow freeze/unfreeze events are
// emitted for the observer so traces show the outage's blast radius.
func (n *Network) SetLinkDown(id NodeID, down bool) error {
	if err := n.checkID(id); err != nil {
		return err
	}
	if n.nodes[id].offline == down {
		return nil
	}
	n.nodes[id].offline = down
	n.reallocateOn(n.nodes[id].up, n.nodes[id].down)
	// Observer contract: emit after the state change and reallocation so
	// rates are current. Only active flows touching the node are
	// affected; a flow whose other endpoint is also down stays frozen on
	// link-up, so skip its unfreeze.
	kind := FlowEventFreeze
	if !down {
		kind = FlowEventUnfreeze
	}
	for _, f := range n.flows {
		if f.state != flowActive || (f.src != id && f.dst != id) {
			continue
		}
		if !down && (f.frozen || f.LinkDown()) {
			continue // still frozen for another reason
		}
		n.emitFlow(f, kind)
	}
	return nil
}

// LinkIsDown reports whether a node's links are administratively down.
func (n *Network) LinkIsDown(id NodeID) bool {
	if n.checkID(id) != nil {
		return false
	}
	return n.nodes[id].offline
}

// LinkStep is one point of a link up/down schedule.
type LinkStep struct {
	At   time.Duration
	Down bool
}

// ScheduleLink applies link up/down transitions to a node at the given
// virtual times, mirroring ScheduleBandwidth.
func (n *Network) ScheduleLink(id NodeID, steps []LinkStep) error {
	if err := n.checkID(id); err != nil {
		return err
	}
	for i, s := range steps {
		if s.At < 0 {
			return fmt.Errorf("netem: link step at negative time %v", s.At)
		}
		if i > 0 && s.At <= steps[i-1].At {
			return fmt.Errorf("netem: link step times must be strictly increasing, got %v after %v",
				s.At, steps[i-1].At)
		}
		step := s
		n.eng.At(step.At, func() {
			// Errors are impossible here: id was validated above.
			_ = n.SetLinkDown(id, step.Down)
		})
	}
	return nil
}
