package tracereport

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"p2psplice/internal/trace"
)

func us(v int64) time.Duration { return time.Duration(v) * time.Microsecond }

// playerEvents builds a startup + one attributed closed stall for peer.
func playerEvents(peer int, startupUS, stallStart, stallEnd int64, cause string) []trace.Event {
	evs := []trace.Event{
		{At: us(startupUS), Peer: peer, Seg: -1, Cat: trace.CatPlayer, Name: trace.EvStartup,
			Args: []trace.Arg{trace.Int64("startup_us", startupUS)}},
		{At: us(stallStart), Peer: peer, Seg: -1, Cat: trace.CatPlayer, Name: trace.EvStallBegin},
		{At: us(stallStart), Peer: peer, Seg: -1, Cat: trace.CatPlayer, Name: trace.EvStallCause,
			Args: []trace.Arg{trace.Str("cause", cause)}},
	}
	if stallEnd >= 0 {
		evs = append(evs, trace.Event{At: us(stallEnd), Peer: peer, Seg: -1,
			Cat: trace.CatPlayer, Name: trace.EvStallEnd})
	}
	evs = append(evs, trace.Event{At: us(stallEnd + 1000), Peer: peer, Seg: -1,
		Cat: trace.CatPlayer, Name: trace.EvFinished})
	return evs
}

func TestNearestRank(t *testing.T) {
	sorted := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		pct  int
		want int64
	}{{50, 50}, {95, 100}, {100, 100}, {1, 10}, {10, 10}, {11, 20}}
	for _, c := range cases {
		if got := nearestRank(sorted, c.pct); got != c.want {
			t.Errorf("nearestRank(%d) = %d, want %d", c.pct, got, c.want)
		}
	}
	if got := nearestRank(nil, 95); got != 0 {
		t.Errorf("nearestRank(empty) = %d, want 0", got)
	}
}

func TestDistOf(t *testing.T) {
	d := distOf([]int64{300, 100, 200})
	if d.Count != 3 || d.TotalUS != 600 || d.MeanUS != 200 || d.MaxUS != 300 {
		t.Errorf("distOf = %+v", d)
	}
	if d.P50US != 200 || d.P95US != 300 {
		t.Errorf("quantiles = p50 %d p95 %d, want 200 300", d.P50US, d.P95US)
	}
	if z := distOf(nil); z != (Dist{}) {
		t.Errorf("distOf(nil) = %+v, want zero", z)
	}
}

func TestStallAttributionAndCauses(t *testing.T) {
	var evs []trace.Event
	evs = append(evs, playerEvents(0, 1000, 5000, 7000, trace.CauseSlowFlow)...)  // 2000us
	evs = append(evs, playerEvents(1, 2000, 6000, 11000, trace.CauseSlowFlow)...) // 5000us
	evs = append(evs, playerEvents(2, 1500, 8000, 9000, trace.CauseEmptyPool)...) // 1000us
	a := AnalyzeFiles([]string{"a.jsonl"}, [][]trace.Event{evs})
	r := a.Report

	if r.Peers != 3 || r.Finished != 3 {
		t.Errorf("peers=%d finished=%d, want 3 3", r.Peers, r.Finished)
	}
	if r.Stalls.Count != 3 || r.Stalls.Attributed != 3 || r.Stalls.AttributedPct != 100 {
		t.Errorf("stalls = %+v, want 3 attributed 100%%", r.Stalls)
	}
	if r.Stalls.Durations.TotalUS != 8000 {
		t.Errorf("stall total = %d, want 8000", r.Stalls.Durations.TotalUS)
	}
	// slow_flow (7000us total) must outrank empty_pool (1000us).
	if len(r.Causes) != 2 || r.Causes[0].Cause != trace.CauseSlowFlow || r.Causes[0].TotalUS != 7000 {
		t.Fatalf("causes = %+v", r.Causes)
	}
	if r.Causes[1].Cause != trace.CauseEmptyPool || r.Causes[1].Count != 1 {
		t.Errorf("causes[1] = %+v", r.Causes[1])
	}
	if r.Startup.Count != 3 || r.Startup.TotalUS != 4500 {
		t.Errorf("startup = %+v", r.Startup)
	}
}

func TestUnattributedAndOpenStalls(t *testing.T) {
	evs := []trace.Event{
		{At: us(100), Peer: 0, Seg: -1, Cat: trace.CatPlayer, Name: trace.EvStallBegin},
		// No cause, no end: unattributed AND open.
	}
	a := AnalyzeFiles([]string{"a.jsonl"}, [][]trace.Event{evs})
	r := a.Report
	if r.Stalls.Count != 1 || r.Stalls.Attributed != 0 || r.Stalls.Open != 1 {
		t.Errorf("stalls = %+v", r.Stalls)
	}
	if r.Stalls.AttributedPct != 0 {
		t.Errorf("attributed pct = %v, want 0", r.Stalls.AttributedPct)
	}
	if r.PerFile[0].Unattributed != 1 || r.PerFile[0].Open != 1 {
		t.Errorf("per-file = %+v", r.PerFile[0])
	}
	// Open stalls contribute no duration sample.
	if r.Stalls.Durations.Count != 0 {
		t.Errorf("durations count = %d, want 0", r.Stalls.Durations.Count)
	}
}

func TestFlowUtilization(t *testing.T) {
	flow := func(at int64, name string, id int64) trace.Event {
		return trace.Event{At: us(at), Peer: 0, Seg: -1, Cat: trace.CatFlow, Name: name,
			Args: []trace.Arg{trace.Int64("flow", id)}}
	}
	evs := []trace.Event{
		flow(0, trace.EvFlowSetup, 1),
		flow(100, trace.EvFlowActivate, 1),
		flow(200, trace.EvFlowFreeze, 1),
		flow(450, trace.EvFlowUnfreeze, 1),
		flow(1100, trace.EvFlowComplete, 1), // active 1000us, frozen 250us
		flow(0, trace.EvFlowSetup, 2),
		flow(500, trace.EvFlowActivate, 2),
		flow(900, trace.EvFlowFreeze, 2),
		flow(1000, trace.EvFlowCancel, 2), // active 500us, frozen 100us (closed by cancel)
	}
	a := AnalyzeFiles([]string{"a.jsonl"}, [][]trace.Event{evs})
	f := a.Report.Flows
	if f.Setups != 2 || f.Completes != 1 || f.Cancels != 1 || f.Freezes != 2 {
		t.Errorf("flow counts = %+v", f)
	}
	if f.ActiveUS != 1500 || f.FrozenUS != 350 {
		t.Errorf("active=%d frozen=%d, want 1500 350", f.ActiveUS, f.FrozenUS)
	}
	want := 100 * float64(1500-350) / 1500
	if f.UtilizationPct != want {
		t.Errorf("utilization = %v, want %v", f.UtilizationPct, want)
	}
}

func TestFlowOpenAtTraceEndIsCharged(t *testing.T) {
	evs := []trace.Event{
		{At: us(100), Peer: 0, Seg: -1, Cat: trace.CatFlow, Name: trace.EvFlowActivate,
			Args: []trace.Arg{trace.Int64("flow", 1)}},
		{At: us(300), Peer: 0, Seg: -1, Cat: trace.CatFlow, Name: trace.EvFlowFreeze,
			Args: []trace.Arg{trace.Int64("flow", 1)}},
		// Trace ends at 500 with the flow still active and frozen.
		{At: us(500), Peer: 0, Seg: -1, Cat: trace.CatPlayer, Name: trace.EvFinished},
	}
	a := AnalyzeFiles([]string{"a.jsonl"}, [][]trace.Event{evs})
	f := a.Report.Flows
	if f.ActiveUS != 400 || f.FrozenUS != 200 {
		t.Errorf("active=%d frozen=%d, want 400 200", f.ActiveUS, f.FrozenUS)
	}
}

func TestSegmentStats(t *testing.T) {
	seg := func(at int64, cat string, bytes, elapsed int64) trace.Event {
		return trace.Event{At: us(at), Peer: 0, Seg: 1, Cat: cat, Name: trace.EvSegComplete,
			Args: []trace.Arg{trace.Int64("bytes", bytes), trace.Int64("elapsed_us", elapsed)}}
	}
	evs := []trace.Event{
		seg(100, trace.CatPool, 1000, 50),  // emulation
		seg(200, trace.CatSched, 2000, 70), // real stack
	}
	a := AnalyzeFiles([]string{"a.jsonl"}, [][]trace.Event{evs})
	s := a.Report.Segments
	if s.Count != 2 || s.TotalBytes != 3000 || s.Latency.TotalUS != 120 {
		t.Errorf("segments = %+v", s)
	}
}

func TestReportOutputsAreByteStable(t *testing.T) {
	var evs []trace.Event
	evs = append(evs, playerEvents(0, 1000, 5000, 7000, trace.CauseSlowFlow)...)
	evs = append(evs, playerEvents(1, 1200, 5500, 9500, trace.CauseFrozenFlow)...)
	files := []string{"a.jsonl", "b.jsonl"}
	logs := [][]trace.Event{evs, evs}

	render := func() (string, string, string) {
		a := AnalyzeFiles(files, logs)
		var j, tb, c bytes.Buffer
		if err := WriteJSON(&j, a.Report); err != nil {
			t.Fatal(err)
		}
		if err := WriteTable(&tb, a.Report); err != nil {
			t.Fatal(err)
		}
		if err := WriteCDF(&c, "stall", a.StallUS); err != nil {
			t.Fatal(err)
		}
		return j.String(), tb.String(), c.String()
	}
	j1, t1, c1 := render()
	for i := 0; i < 5; i++ {
		j2, t2, c2 := render()
		if j1 != j2 || t1 != t2 || c1 != c2 {
			t.Fatalf("render %d differs from first render", i)
		}
	}
	if !strings.Contains(t1, "slow_flow") || !strings.Contains(t1, "frozen_flow") {
		t.Errorf("table missing causes:\n%s", t1)
	}
}

func TestWriteCDF(t *testing.T) {
	var b bytes.Buffer
	if err := WriteCDF(&b, "stall", []int64{100, 200, 200, 400}); err != nil {
		t.Fatal(err)
	}
	want := "stall_us,cdf\n100,0.250000\n200,0.750000\n400,1.000000\n"
	if b.String() != want {
		t.Errorf("cdf = %q, want %q", b.String(), want)
	}
}

func TestDiff(t *testing.T) {
	mk := func(cause string, startUS, endUS int64) *Report {
		evs := playerEvents(0, 1000, startUS, endUS, cause)
		return AnalyzeFiles([]string{"a.jsonl"}, [][]trace.Event{evs}).Report
	}
	a := mk(trace.CauseSlowFlow, 5000, 6000)  // 1000us slow_flow
	b := mk(trace.CauseEmptyPool, 5000, 9000) // 4000us empty_pool
	d := Diff("A", a, "B", b)
	if d.AStalls != 1 || d.BStalls != 1 {
		t.Errorf("stall counts = %d %d", d.AStalls, d.BStalls)
	}
	if d.AStallTotalUS != 1000 || d.BStallTotalUS != 4000 {
		t.Errorf("totals = %d %d", d.AStallTotalUS, d.BStallTotalUS)
	}
	if len(d.Causes) != 2 {
		t.Fatalf("causes = %+v", d.Causes)
	}
	// empty_pool has |delta| 4000, slow_flow 1000: empty_pool first.
	if d.Causes[0].Cause != trace.CauseEmptyPool || d.Causes[0].DeltaTotalUS != 4000 {
		t.Errorf("causes[0] = %+v", d.Causes[0])
	}
	if d.Causes[1].Cause != trace.CauseSlowFlow || d.Causes[1].DeltaTotalUS != -1000 {
		t.Errorf("causes[1] = %+v", d.Causes[1])
	}
	var tb bytes.Buffer
	if err := WriteDiffTable(&tb, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.String(), "empty_pool") {
		t.Errorf("diff table missing cause:\n%s", tb.String())
	}
}

func TestAnalyzeDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var evs []trace.Event
	evs = append(evs, playerEvents(0, 1000, 5000, 7000, trace.CauseSlowFlow)...)
	for _, name := range []string{"b.jsonl", "a.jsonl"} {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteJSONL(f, evs); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// A non-jsonl file must be ignored.
	if err := os.WriteFile(filepath.Join(dir, "x.timeline.json"), []byte("[]"), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := a.Report
	if r.Files != 2 || r.Peers != 2 || r.Stalls.Count != 2 {
		t.Errorf("report = files %d peers %d stalls %d", r.Files, r.Peers, r.Stalls.Count)
	}
	// Sorted file order: a.jsonl first despite creation order.
	if r.PerFile[0].File != "a.jsonl" || r.PerFile[1].File != "b.jsonl" {
		t.Errorf("per-file order = %s, %s", r.PerFile[0].File, r.PerFile[1].File)
	}
}

func TestAnalyzeDirEmpty(t *testing.T) {
	if _, err := AnalyzeDir(t.TempDir()); err == nil {
		t.Fatal("AnalyzeDir over an empty dir must fail")
	}
}

// repEvent builds one CatRep event the emulator way (integer peer id on
// Event.Peer) unless peerArg is non-empty, in which case it mimics the
// real stack (Peer=-1, id in the "peer" arg).
func repEvent(at int64, peer int, peerArg, name string, args ...trace.Arg) trace.Event {
	ev := trace.Event{At: us(at), Peer: peer, Seg: -1, Cat: trace.CatRep, Name: name, Args: args}
	if peerArg != "" {
		ev.Peer = -1
		ev.Args = append([]trace.Arg{trace.Str("peer", peerArg)}, args...)
	}
	return ev
}

func TestReputationRollup(t *testing.T) {
	evs := []trace.Event{
		repEvent(1000, 3, "", trace.EvRepPenalty,
			trace.Str("obs", "verify_fail"), trace.Float64("score", 4)),
		repEvent(2000, 3, "", trace.EvRepPenalty,
			trace.Str("obs", "verify_fail"), trace.Float64("score", 7.5)),
		repEvent(2000, 3, "", trace.EvQuarantine,
			trace.Float64("score", 11), trace.Int64("until_us", 6000)),
		// Re-offense inside the live window: the extended span must merge,
		// charging 2000..8000 once (6000us), not 4000+6000.
		repEvent(4000, 3, "", trace.EvQuarantine,
			trace.Float64("score", 15), trace.Int64("until_us", 8000)),
		repEvent(1500, 1, "", trace.EvRepPenalty,
			trace.Str("obs", "stale_have"), trace.Float64("score", 3)),
		// Real-stack shaped event: string peer key.
		repEvent(1700, 0, "EVILEVIL", trace.EvRepPenalty,
			trace.Str("obs", "timeout"), trace.Float64("score", 1)),
		// The trace runs long enough that no window needs end-clamping.
		{At: us(20000), Peer: 0, Seg: -1, Cat: trace.CatPlayer, Name: trace.EvFinished},
	}
	a := AnalyzeFiles([]string{"a.jsonl"}, [][]trace.Event{evs})
	rep := a.Report.Reputation
	if len(rep) != 3 {
		t.Fatalf("reputation rows = %+v, want 3", rep)
	}
	// Numeric-aware order: 1, 3, then the string key.
	if rep[0].Peer != "1" || rep[1].Peer != "3" || rep[2].Peer != "EVILEVIL" {
		t.Fatalf("row order = %s, %s, %s", rep[0].Peer, rep[1].Peer, rep[2].Peer)
	}
	p3 := rep[1]
	if p3.Penalties != 2 || p3.Quarantines != 2 || p3.FinalScore != 15 {
		t.Errorf("peer 3 = %+v", p3)
	}
	if p3.QuarantineUS != 6000 {
		t.Errorf("peer 3 quarantine time = %d, want 6000 (merged overlap)", p3.QuarantineUS)
	}
	if rep[2].Penalties != 1 || rep[2].FinalScore != 1 {
		t.Errorf("real-stack row = %+v", rep[2])
	}

	var tb bytes.Buffer
	if err := WriteTable(&tb, a.Report); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.String(), "penalized peer") || !strings.Contains(tb.String(), "EVILEVIL") {
		t.Errorf("table missing reputation section:\n%s", tb.String())
	}
}

func TestReputationQuarantineClampedAtTraceEnd(t *testing.T) {
	evs := []trace.Event{
		repEvent(1000, 2, "", trace.EvQuarantine,
			trace.Float64("score", 12), trace.Int64("until_us", 50000)),
		{At: us(3000), Peer: 0, Seg: -1, Cat: trace.CatPlayer, Name: trace.EvFinished},
	}
	a := AnalyzeFiles([]string{"a.jsonl"}, [][]trace.Event{evs})
	rep := a.Report.Reputation
	if len(rep) != 1 || rep[0].QuarantineUS != 2000 {
		t.Fatalf("reputation = %+v, want one row clamped to 2000us", rep)
	}
}

func TestReputationAbsentWithoutRepEvents(t *testing.T) {
	evs := playerEvents(0, 1000, 5000, 7000, trace.CauseSlowFlow)
	a := AnalyzeFiles([]string{"a.jsonl"}, [][]trace.Event{evs})
	if a.Report.Reputation != nil {
		t.Fatalf("reputation = %+v, want nil (omitted from JSON)", a.Report.Reputation)
	}
	var tb bytes.Buffer
	if err := WriteTable(&tb, a.Report); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(tb.String(), "penalized peer") {
		t.Error("table rendered a reputation section for a rep-free trace")
	}
}
