// Package tracereport turns trace directories (the *.jsonl event logs
// cmd/experiment -trace and cmd/peer -trace write) into answers: which
// causes stole playback time, how long stalls ran, how utilized the
// transfer flows were, and how two runs compare.
//
// Everything here is deterministic by construction — the package is
// registered in splicelint's DeterministicPackages. Files are analyzed
// in sorted order, aggregates are exact integer sums, quantiles are
// nearest-rank over fully sorted samples (no estimation), and every
// writer renders from sorted slices, so a report over the same trace
// directory is byte-identical across runs, machines, and the -workers
// value that produced the traces.
package tracereport

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"p2psplice/internal/trace"
)

// Dist summarizes a duration sample set in whole microseconds. Mean is
// integer division (exact, order-independent); quantiles are
// nearest-rank from the sorted samples.
type Dist struct {
	Count   int   `json:"count"`
	TotalUS int64 `json:"total_us"`
	MeanUS  int64 `json:"mean_us"`
	P50US   int64 `json:"p50_us"`
	P95US   int64 `json:"p95_us"`
	MaxUS   int64 `json:"max_us"`
}

// distOf summarizes samples, sorting them in place.
func distOf(samples []int64) Dist {
	if len(samples) == 0 {
		return Dist{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var total int64
	for _, s := range samples {
		total += s
	}
	return Dist{
		Count:   len(samples),
		TotalUS: total,
		MeanUS:  total / int64(len(samples)),
		P50US:   nearestRank(samples, 50),
		P95US:   nearestRank(samples, 95),
		MaxUS:   samples[len(samples)-1],
	}
}

// nearestRank returns the pct-th percentile of sorted samples by the
// nearest-rank method: the smallest sample with at least pct% of the
// mass at or below it.
func nearestRank(sorted []int64, pct int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (pct*len(sorted) + 99) / 100 // ceil(pct/100 * n)
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// CauseStats is one row of the stall-cause breakdown.
type CauseStats struct {
	Cause string `json:"cause"`
	Dist
}

// StallStats summarizes stall behavior across the directory.
type StallStats struct {
	Count         int     `json:"count"`
	Attributed    int     `json:"attributed"`
	AttributedPct float64 `json:"attributed_pct"`
	// Open counts stalls never closed within their trace; their
	// durations are unknowable so they are excluded from Durations.
	Open      int  `json:"open"`
	Durations Dist `json:"durations"`
}

// FlowStats summarizes the netem flow lifecycle events. FrozenUS sums
// freeze->unfreeze spans; ActiveUS sums activate->complete/cancel
// spans. UtilizationPct is the share of active flow time not spent
// frozen in an RTO.
type FlowStats struct {
	Setups         int64   `json:"setups"`
	Completes      int64   `json:"completes"`
	Cancels        int64   `json:"cancels"`
	Freezes        int64   `json:"freezes"`
	Ramps          int64   `json:"ramps"`
	ActiveUS       int64   `json:"active_us"`
	FrozenUS       int64   `json:"frozen_us"`
	UtilizationPct float64 `json:"utilization_pct"`
}

// SegmentStats summarizes completed segment transfers.
type SegmentStats struct {
	Count      int   `json:"count"`
	TotalBytes int64 `json:"total_bytes"`
	Latency    Dist  `json:"latency"`
}

// RepPeerStats is one row of the per-peer reputation rollup, aggregated
// across the directory by peer key (the emulator's integer node id, or
// the real stack's peer id string). Penalties and Quarantines count the
// peer's CatRep events; QuarantineUS sums its quarantine windows —
// begin to the scheduled release, clamped to each trace's end, with
// overlapping windows merged. FinalScore is the score carried by the
// peer's last penalty or quarantine event in sorted-file order (scores
// are only traced when charged, so it reflects the last offense).
type RepPeerStats struct {
	Peer         string  `json:"peer"`
	Penalties    int64   `json:"penalties"`
	Quarantines  int64   `json:"quarantines"`
	QuarantineUS int64   `json:"quarantine_us"`
	FinalScore   float64 `json:"final_score"`
}

// FileStats is the per-file (per experiment cell) rollup of the peer
// timelines: one row per *.jsonl in the directory.
type FileStats struct {
	File          string `json:"file"`
	Events        int    `json:"events"`
	Peers         int    `json:"peers"`
	Finished      int    `json:"finished"`
	Stalls        int    `json:"stalls"`
	Unattributed  int    `json:"unattributed"`
	Open          int    `json:"open"`
	TotalStallUS  int64  `json:"total_stall_us"`
	MeanStartupUS int64  `json:"mean_startup_us"`
}

// Report is the aggregate analysis of one trace directory. It contains
// no absolute paths, timestamps, or map-ordered fields, so serialized
// reports are byte-identical whenever the input traces are.
type Report struct {
	Files    int          `json:"files"`
	Events   int64        `json:"events"`
	Peers    int          `json:"peers"`
	Finished int          `json:"finished"`
	Startup  Dist         `json:"startup"`
	Stalls   StallStats   `json:"stalls"`
	Causes   []CauseStats `json:"causes"`
	Flows    FlowStats    `json:"flows"`
	Segments SegmentStats `json:"segments"`
	// Reputation is present only when the traces carry CatRep events
	// (reputation-enabled runs): one row per penalized peer.
	Reputation []RepPeerStats `json:"reputation,omitempty"`
	PerFile    []FileStats    `json:"per_file"`
}

// Analysis couples the Report with the raw sorted sample sets the CDF
// export needs (samples are deliberately kept out of the JSON report).
type Analysis struct {
	Report *Report
	// StallUS holds every closed stall duration, sorted ascending.
	StallUS []int64
	// SegmentUS holds every segment transfer latency, sorted ascending.
	SegmentUS []int64
	// StartupUS holds every peer's startup delay, sorted ascending.
	StartupUS []int64
}

// accum folds one directory's events.
type accum struct {
	report   Report
	startups []int64
	stalls   []int64
	segments []int64
	byCause  map[string][]int64
	flows    FlowStats
	// rep aggregates CatRep events by peer key; repOrder preserves
	// first-seen order until the final numeric-aware sort.
	rep      map[string]*RepPeerStats
	repOrder []string
}

// flowState tracks one flow id within one file.
type flowState struct {
	activeAt int64 // microseconds; -1 when not active
	frozenAt int64 // microseconds; -1 when not frozen
}

// AnalyzeDir reads every *.jsonl under dir (sorted by name) and folds
// them into one Analysis.
func AnalyzeDir(dir string) (*Analysis, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("tracereport: %w", err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("tracereport: no *.jsonl traces in %s", dir)
	}
	sort.Strings(paths)
	a := newAccum()
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("tracereport: %w", err)
		}
		events, err := trace.ReadJSONL(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("tracereport: %s: %w", filepath.Base(path), err)
		}
		a.addFile(filepath.Base(path), events)
	}
	return a.finish(), nil
}

// AnalyzeFiles folds pre-loaded event logs (tests and in-process
// callers). Files are processed in the order given; callers wanting the
// directory contract must pass them name-sorted.
func AnalyzeFiles(names []string, eventsByFile [][]trace.Event) *Analysis {
	a := newAccum()
	for i, name := range names {
		a.addFile(name, eventsByFile[i])
	}
	return a.finish()
}

func newAccum() *accum {
	return &accum{
		byCause: make(map[string][]int64),
		rep:     make(map[string]*RepPeerStats),
	}
}

// addFile folds one event log into the accumulator.
func (a *accum) addFile(name string, events []trace.Event) {
	fs := FileStats{File: name, Events: len(events)}
	a.report.Events += int64(len(events))

	// Player-side rollup comes from the shared timeline builder so the
	// report can never disagree with the *.timeline.json artifacts.
	tls := trace.BuildTimeline(events)
	fs.Peers = len(tls)
	var startupTotal, startupN int64
	for _, tl := range tls {
		if tl.Finished {
			fs.Finished++
		}
		if tl.StartupUS >= 0 {
			a.startups = append(a.startups, tl.StartupUS)
			startupTotal += tl.StartupUS
			startupN++
		}
		for _, s := range tl.Stalls {
			fs.Stalls++
			a.report.Stalls.Count++
			if s.Cause != "" {
				a.report.Stalls.Attributed++
			} else {
				fs.Unattributed++
			}
			if s.EndUS < 0 {
				fs.Open++
				a.report.Stalls.Open++
				continue
			}
			d := s.EndUS - s.StartUS
			a.stalls = append(a.stalls, d)
			fs.TotalStallUS += d
			if s.Cause != "" {
				a.byCause[s.Cause] = append(a.byCause[s.Cause], d)
			}
		}
	}
	if startupN > 0 {
		fs.MeanStartupUS = startupTotal / startupN
	}
	a.report.Peers += fs.Peers
	a.report.Finished += fs.Finished

	// Flow and segment events fold directly; flow spans are tracked per
	// flow id within the file (ids are not unique across files).
	flows := make(map[int64]*flowState)
	var quarSpans []repSpan
	var lastUS int64
	for _, ev := range events {
		if us := ev.At.Microseconds(); us > lastUS {
			lastUS = us
		}
		switch ev.Cat {
		case trace.CatFlow:
			a.addFlowEvent(flows, ev)
		case trace.CatPool, trace.CatSched:
			if ev.Name == trace.EvSegComplete {
				a.segments = append(a.segments, ev.ArgInt64("elapsed_us", 0))
				a.report.Segments.Count++
				a.report.Segments.TotalBytes += ev.ArgInt64("bytes", 0)
			}
		case trace.CatRep:
			quarSpans = a.addRepEvent(quarSpans, ev)
		}
	}
	// Quarantine windows are charged up to their scheduled release,
	// clamped to the trace's end; per-peer overlaps (an escape-hatch
	// offense extending a live window) are merged, which the in-order
	// span list makes a single forward pass. The merge state is per file:
	// peer keys repeat across cells on fresh timelines.
	openUntil := make(map[string]int64)
	for _, sp := range quarSpans {
		start, end := sp.startUS, sp.untilUS
		if end > lastUS {
			end = lastUS
		}
		if prev := openUntil[sp.peer]; start < prev {
			start = prev
		}
		if end > start {
			a.rep[sp.peer].QuarantineUS += end - start
			openUntil[sp.peer] = end
		}
	}
	// Close out still-active/frozen flows at the trace's end so a run
	// truncated mid-transfer still charges its frozen time. Integer sums
	// commute, so map iteration order cannot affect the totals.
	for _, st := range flows {
		if st.frozenAt >= 0 {
			a.flows.FrozenUS += lastUS - st.frozenAt
		}
		if st.activeAt >= 0 {
			a.flows.ActiveUS += lastUS - st.activeAt
		}
	}
	a.report.PerFile = append(a.report.PerFile, fs)
}

func (a *accum) addFlowEvent(flows map[int64]*flowState, ev trace.Event) {
	id := ev.ArgInt64("flow", -1)
	if id < 0 {
		return
	}
	st := flows[id]
	if st == nil {
		st = &flowState{activeAt: -1, frozenAt: -1}
		flows[id] = st
	}
	us := ev.At.Microseconds()
	switch ev.Name {
	case trace.EvFlowSetup:
		a.flows.Setups++
	case trace.EvFlowActivate:
		st.activeAt = us
	case trace.EvFlowFreeze:
		a.flows.Freezes++
		if st.frozenAt < 0 {
			st.frozenAt = us
		}
	case trace.EvFlowUnfreeze:
		if st.frozenAt >= 0 {
			a.flows.FrozenUS += us - st.frozenAt
			st.frozenAt = -1
		}
	case trace.EvFlowRamp:
		a.flows.Ramps++
	case trace.EvFlowComplete, trace.EvFlowCancel:
		if ev.Name == trace.EvFlowComplete {
			a.flows.Completes++
		} else {
			a.flows.Cancels++
		}
		if st.frozenAt >= 0 {
			a.flows.FrozenUS += us - st.frozenAt
			st.frozenAt = -1
		}
		if st.activeAt >= 0 {
			a.flows.ActiveUS += us - st.activeAt
			st.activeAt = -1
		}
	}
}

// repSpan is one quarantine window within one file, pending the clamp
// against the file's last timestamp.
type repSpan struct {
	peer    string
	startUS int64
	untilUS int64
}

// repPeerKey derives the rollup key for a CatRep event: the emulator
// stamps the scored node id on Event.Peer; the real stack has no integer
// ids and carries the wire peer id in the "peer" arg instead.
func repPeerKey(ev trace.Event) string {
	if ev.Peer >= 0 {
		return strconv.Itoa(ev.Peer)
	}
	return ev.ArgStr("peer", "")
}

// addRepEvent folds one CatRep event and returns the (possibly grown)
// quarantine span list.
func (a *accum) addRepEvent(spans []repSpan, ev trace.Event) []repSpan {
	key := repPeerKey(ev)
	if key == "" {
		return spans
	}
	st := a.rep[key]
	if st == nil {
		st = &RepPeerStats{Peer: key}
		a.rep[key] = st
		a.repOrder = append(a.repOrder, key)
	}
	switch ev.Name {
	case trace.EvRepPenalty:
		st.Penalties++
		st.FinalScore = ev.ArgFloat64("score", st.FinalScore)
	case trace.EvQuarantine:
		st.Quarantines++
		st.FinalScore = ev.ArgFloat64("score", st.FinalScore)
		spans = append(spans, repSpan{
			peer:    key,
			startUS: ev.At.Microseconds(),
			untilUS: ev.ArgInt64("until_us", ev.At.Microseconds()),
		})
	}
	return spans
}

// finish seals the accumulator into an Analysis.
func (a *accum) finish() *Analysis {
	r := &a.report
	r.Files = len(r.PerFile)
	r.Startup = distOf(a.startups)
	r.Stalls.Durations = distOf(a.stalls)
	if r.Stalls.Count > 0 {
		r.Stalls.AttributedPct = 100 * float64(r.Stalls.Attributed) / float64(r.Stalls.Count)
	} else {
		r.Stalls.AttributedPct = 100
	}
	r.Segments.Latency = distOf(a.segments)

	var causes []CauseStats
	for cause, samples := range a.byCause {
		causes = append(causes, CauseStats{Cause: cause, Dist: distOf(samples)})
	}
	// Biggest time thief first; name breaks ties so the order is total.
	sort.Slice(causes, func(i, j int) bool {
		if causes[i].TotalUS != causes[j].TotalUS {
			return causes[i].TotalUS > causes[j].TotalUS
		}
		return causes[i].Cause < causes[j].Cause
	})
	r.Causes = causes

	a.flows.UtilizationPct = 100
	if a.flows.ActiveUS > 0 {
		a.flows.UtilizationPct = 100 * float64(a.flows.ActiveUS-a.flows.FrozenUS) / float64(a.flows.ActiveUS)
	}
	r.Flows = a.flows

	// Numeric-aware peer order: the emulator's integer node ids sort by
	// value, the real stack's opaque id strings after them by name.
	sort.Slice(a.repOrder, func(i, j int) bool {
		ki, kj := a.repOrder[i], a.repOrder[j]
		ni, erri := strconv.Atoi(ki)
		nj, errj := strconv.Atoi(kj)
		switch {
		case erri == nil && errj == nil:
			return ni < nj
		case erri == nil:
			return true
		case errj == nil:
			return false
		default:
			return ki < kj
		}
	})
	for _, key := range a.repOrder {
		r.Reputation = append(r.Reputation, *a.rep[key])
	}

	return &Analysis{
		Report:    r,
		StallUS:   a.stalls,
		SegmentUS: a.segments,
		StartupUS: a.startups,
	}
}
