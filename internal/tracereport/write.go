package tracereport

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// secs renders whole microseconds as fixed-precision seconds. Fixed
// precision (not %g) keeps column widths stable in the tables.
func secs(us int64) string {
	return strconv.FormatFloat(float64(us)/1e6, 'f', 3, 64) + "s"
}

// pct renders a percentage with one decimal.
func pct(v float64) string {
	return strconv.FormatFloat(v, 'f', 1, 64) + "%"
}

// WriteJSON renders the report as indented JSON. Struct field order is
// fixed and no maps are serialized, so the output is byte-stable.
func WriteJSON(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable renders the human-readable report: totals, the stall-cause
// breakdown, the per-file rollup, and the flow-utilization summary.
func WriteTable(w io.Writer, r *Report) error {
	p := func(format string, args ...any) (err error) {
		_, err = fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("trace report: %d files, %d events, %d peers (%d finished)\n",
		r.Files, r.Events, r.Peers, r.Finished); err != nil {
		return err
	}
	if err := p("startup:  count=%d mean=%s p50=%s p95=%s max=%s\n",
		r.Startup.Count, secs(r.Startup.MeanUS), secs(r.Startup.P50US),
		secs(r.Startup.P95US), secs(r.Startup.MaxUS)); err != nil {
		return err
	}
	if err := p("stalls:   count=%d attributed=%s open=%d total=%s\n",
		r.Stalls.Count, pct(r.Stalls.AttributedPct), r.Stalls.Open,
		secs(r.Stalls.Durations.TotalUS)); err != nil {
		return err
	}
	if err := p("segments: count=%d bytes=%d mean=%s p95=%s\n\n",
		r.Segments.Count, r.Segments.TotalBytes,
		secs(r.Segments.Latency.MeanUS), secs(r.Segments.Latency.P95US)); err != nil {
		return err
	}

	if len(r.Causes) > 0 {
		if err := p("%-16s %6s %12s %12s %12s %12s\n",
			"stall cause", "count", "total", "mean", "p95", "max"); err != nil {
			return err
		}
		for _, c := range r.Causes {
			if err := p("%-16s %6d %12s %12s %12s %12s\n",
				c.Cause, c.Count, secs(c.TotalUS), secs(c.MeanUS),
				secs(c.P95US), secs(c.MaxUS)); err != nil {
				return err
			}
		}
		if err := p("\n"); err != nil {
			return err
		}
	}

	if err := p("flows: setups=%d completes=%d cancels=%d freezes=%d ramps=%d utilization=%s (frozen %s of %s active)\n\n",
		r.Flows.Setups, r.Flows.Completes, r.Flows.Cancels, r.Flows.Freezes,
		r.Flows.Ramps, pct(r.Flows.UtilizationPct),
		secs(r.Flows.FrozenUS), secs(r.Flows.ActiveUS)); err != nil {
		return err
	}

	if len(r.Reputation) > 0 {
		if err := p("%-24s %10s %12s %16s %12s\n",
			"penalized peer", "penalties", "quarantines", "quarantine-time", "last-score"); err != nil {
			return err
		}
		for _, rp := range r.Reputation {
			if err := p("%-24s %10d %12d %16s %12s\n",
				rp.Peer, rp.Penalties, rp.Quarantines, secs(rp.QuarantineUS),
				strconv.FormatFloat(rp.FinalScore, 'f', 2, 64)); err != nil {
				return err
			}
		}
		if err := p("\n"); err != nil {
			return err
		}
	}

	if err := p("%-48s %6s %6s %6s %8s %12s %12s\n",
		"file", "peers", "fin", "stalls", "open", "stall-total", "startup-mean"); err != nil {
		return err
	}
	for _, f := range r.PerFile {
		if err := p("%-48s %6d %6d %6d %8d %12s %12s\n",
			f.File, f.Peers, f.Finished, f.Stalls, f.Open,
			secs(f.TotalStallUS), secs(f.MeanStartupUS)); err != nil {
			return err
		}
	}
	return nil
}

// WriteCDF emits a CSV cumulative distribution of the (sorted) sample
// set: one row per distinct value with the cumulative fraction of
// samples at or below it.
func WriteCDF(w io.Writer, header string, sortedUS []int64) error {
	if _, err := fmt.Fprintf(w, "%s_us,cdf\n", header); err != nil {
		return err
	}
	n := len(sortedUS)
	for i := 0; i < n; i++ {
		// Emit only the last occurrence of each value: the CDF at v is
		// the fraction of samples <= v.
		if i+1 < n && sortedUS[i+1] == sortedUS[i] {
			continue
		}
		frac := strconv.FormatFloat(float64(i+1)/float64(n), 'f', 6, 64)
		if _, err := fmt.Fprintf(w, "%d,%s\n", sortedUS[i], frac); err != nil {
			return err
		}
	}
	return nil
}

// CauseDiff compares one stall cause across two reports.
type CauseDiff struct {
	Cause        string `json:"cause"`
	ACount       int    `json:"a_count"`
	BCount       int    `json:"b_count"`
	ATotalUS     int64  `json:"a_total_us"`
	BTotalUS     int64  `json:"b_total_us"`
	DeltaTotalUS int64  `json:"delta_total_us"`
}

// DiffReport compares two trace directories (e.g. adaptive vs fixed-4,
// or faulted vs clean).
type DiffReport struct {
	ALabel string `json:"a"`
	BLabel string `json:"b"`

	AStalls int `json:"a_stalls"`
	BStalls int `json:"b_stalls"`

	AStallTotalUS int64 `json:"a_stall_total_us"`
	BStallTotalUS int64 `json:"b_stall_total_us"`

	AStartupMeanUS int64 `json:"a_startup_mean_us"`
	BStartupMeanUS int64 `json:"b_startup_mean_us"`

	ASegmentP95US int64 `json:"a_segment_p95_us"`
	BSegmentP95US int64 `json:"b_segment_p95_us"`

	Causes []CauseDiff `json:"causes"`
}

// Diff builds the comparison between two reports. Causes appear in
// descending |delta| order, name-tiebroken.
func Diff(aLabel string, a *Report, bLabel string, b *Report) *DiffReport {
	d := &DiffReport{
		ALabel:         aLabel,
		BLabel:         bLabel,
		AStalls:        a.Stalls.Count,
		BStalls:        b.Stalls.Count,
		AStallTotalUS:  a.Stalls.Durations.TotalUS,
		BStallTotalUS:  b.Stalls.Durations.TotalUS,
		AStartupMeanUS: a.Startup.MeanUS,
		BStartupMeanUS: b.Startup.MeanUS,
		ASegmentP95US:  a.Segments.Latency.P95US,
		BSegmentP95US:  b.Segments.Latency.P95US,
	}
	byCause := map[string]*CauseDiff{}
	var order []string
	for _, c := range a.Causes {
		byCause[c.Cause] = &CauseDiff{Cause: c.Cause, ACount: c.Count, ATotalUS: c.TotalUS}
		order = append(order, c.Cause)
	}
	for _, c := range b.Causes {
		cd := byCause[c.Cause]
		if cd == nil {
			cd = &CauseDiff{Cause: c.Cause}
			byCause[c.Cause] = cd
			order = append(order, c.Cause)
		}
		cd.BCount = c.Count
		cd.BTotalUS = c.TotalUS
	}
	for _, cause := range order {
		cd := byCause[cause]
		cd.DeltaTotalUS = cd.BTotalUS - cd.ATotalUS
		d.Causes = append(d.Causes, *cd)
	}
	sort.Slice(d.Causes, func(i, j int) bool {
		di, dj := abs64(d.Causes[i].DeltaTotalUS), abs64(d.Causes[j].DeltaTotalUS)
		if di != dj {
			return di > dj
		}
		return d.Causes[i].Cause < d.Causes[j].Cause
	})
	return d
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// WriteDiffJSON renders the diff as indented JSON.
func WriteDiffJSON(w io.Writer, d *DiffReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteDiffTable renders the human-readable comparison.
func WriteDiffTable(w io.Writer, d *DiffReport) error {
	p := func(format string, args ...any) (err error) {
		_, err = fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("diff: A=%s B=%s\n", d.ALabel, d.BLabel); err != nil {
		return err
	}
	if err := p("stalls:       A=%d B=%d (%+d)\n", d.AStalls, d.BStalls, d.BStalls-d.AStalls); err != nil {
		return err
	}
	if err := p("stall total:  A=%s B=%s (delta %s)\n",
		secs(d.AStallTotalUS), secs(d.BStallTotalUS), secs(d.BStallTotalUS-d.AStallTotalUS)); err != nil {
		return err
	}
	if err := p("startup mean: A=%s B=%s (delta %s)\n",
		secs(d.AStartupMeanUS), secs(d.BStartupMeanUS), secs(d.BStartupMeanUS-d.AStartupMeanUS)); err != nil {
		return err
	}
	if err := p("segment p95:  A=%s B=%s (delta %s)\n\n",
		secs(d.ASegmentP95US), secs(d.BSegmentP95US), secs(d.BSegmentP95US-d.ASegmentP95US)); err != nil {
		return err
	}
	if len(d.Causes) == 0 {
		return nil
	}
	if err := p("%-16s %8s %8s %12s %12s %12s\n",
		"stall cause", "A-count", "B-count", "A-total", "B-total", "delta"); err != nil {
		return err
	}
	for _, c := range d.Causes {
		if err := p("%-16s %8d %8d %12s %12s %12s\n",
			c.Cause, c.ACount, c.BCount, secs(c.ATotalUS), secs(c.BTotalUS), secs(c.DeltaTotalUS)); err != nil {
			return err
		}
	}
	return nil
}
