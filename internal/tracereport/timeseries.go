package tracereport

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"p2psplice/internal/trace"
)

// This file rebuilds the emulation's windowed time series from trace
// events alone. The in-process recorder (simpeer's simSeries) and this
// builder observe the same quantities at the same timestamps — pool-fill
// args, player transitions, segment completions — so for a single run
// the two snapshots are bit-identical (TestTimeSeriesCoherent), and a
// trace directory written by the experiment runner yields the same
// byte-for-byte CSV on every rerun and worker count.

// TimeSeriesOptions configures the trace-derived builder.
type TimeSeriesOptions struct {
	// Window is the aggregation window (default 1s).
	Window time.Duration
	// MaxWindows bounds the windows per series (default 1024).
	MaxWindows int
	// Peers is the leecher count behind the stall-fraction series. Zero
	// infers it per file as the highest peer ID seen, which is exact for
	// runs where every leecher emits at least one event.
	Peers int
}

// TimeSeriesBuilder folds event logs into a TimeSeries.
type TimeSeriesBuilder struct {
	opts TimeSeriesOptions
	ts   *trace.TimeSeries
	s    struct {
		bufferedUS    trace.TSGauge
		poolTarget    trace.TSHist
		inflight      trace.TSGauge
		stalled       trace.TSGauge
		stallPermille trace.TSGauge
		segsDone      trace.TSCounter
	}
}

// NewTimeSeriesBuilder returns an empty builder with every emulation
// series registered (so snapshots list the full set even when a quiet
// run never observes one of them, mirroring the in-process recorder).
func NewTimeSeriesBuilder(opts TimeSeriesOptions) *TimeSeriesBuilder {
	b := &TimeSeriesBuilder{
		opts: opts,
		ts: trace.NewTimeSeries(trace.TimeSeriesConfig{
			Window:     opts.Window,
			MaxWindows: opts.MaxWindows,
		}),
	}
	b.s.bufferedUS = b.ts.Gauge(trace.TSBufferOccupancyUS)
	b.s.poolTarget = b.ts.Histogram(trace.TSPoolTargetK)
	b.s.inflight = b.ts.Gauge(trace.TSInflightFlows)
	b.s.stalled = b.ts.Gauge(trace.TSStalledPeers)
	b.s.stallPermille = b.ts.Gauge(trace.TSStallFractionPermille)
	b.s.segsDone = b.ts.Counter(trace.TSSegmentsCompleted)
	return b
}

// AddEvents folds one event log (one run's trace, in emission order).
// Stall state is tracked per log: each file is an independent swarm.
func (b *TimeSeriesBuilder) AddEvents(events []trace.Event) {
	peers := b.opts.Peers
	if peers == 0 {
		for _, ev := range events {
			if ev.Peer > peers {
				peers = ev.Peer
			}
		}
	}
	stalled := make(map[int]bool)
	stalledNow := 0
	observeStalled := func(at time.Duration) {
		b.s.stalled.Observe(at, int64(stalledNow))
		if peers > 0 {
			b.s.stallPermille.Observe(at, int64(stalledNow)*1000/int64(peers))
		}
	}
	for _, ev := range events {
		switch {
		case ev.Cat == trace.CatPool && ev.Name == trace.EvPoolFill:
			b.s.bufferedUS.Observe(ev.At, ev.ArgInt64("buffered_us", 0))
			b.s.poolTarget.Observe(ev.At, ev.ArgInt64("target", 0))
			// The in-process gauge samples the post-fill pool depth.
			b.s.inflight.Observe(ev.At, ev.ArgInt64("inflight", 0)+ev.ArgInt64("launched", 0))
		case ev.Cat == trace.CatPool && ev.Name == trace.EvSegComplete:
			b.s.segsDone.Inc(ev.At)
		case ev.Cat == trace.CatPlayer && ev.Name == trace.EvStallBegin:
			if !stalled[ev.Peer] {
				stalled[ev.Peer] = true
				stalledNow++
				observeStalled(ev.At)
			}
		case ev.Cat == trace.CatPlayer && ev.Name == trace.EvStallEnd:
			if stalled[ev.Peer] {
				delete(stalled, ev.Peer)
				stalledNow--
				observeStalled(ev.At)
			}
		case ev.Cat == trace.CatPlayer && ev.Name == trace.EvFinished:
			// Finishing straight out of a stall closes it without a
			// stall_end, exactly as the in-process recorder counts it.
			if stalled[ev.Peer] {
				delete(stalled, ev.Peer)
				stalledNow--
				observeStalled(ev.At)
			}
		}
	}
}

// Snap returns the accumulated snapshot.
func (b *TimeSeriesBuilder) Snap() trace.TSSnapshot { return b.ts.Snap() }

// BuildTimeSeriesDir reads every *.jsonl under dir (sorted by name, the
// AnalyzeDir contract) and folds them into one snapshot. The result is
// order-independent — windows aggregate commutatively — so reruns and
// different worker counts that produced the same per-cell logs yield a
// byte-identical CSV.
func BuildTimeSeriesDir(dir string, opts TimeSeriesOptions) (trace.TSSnapshot, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return trace.TSSnapshot{}, fmt.Errorf("tracereport: %w", err)
	}
	if len(paths) == 0 {
		return trace.TSSnapshot{}, fmt.Errorf("tracereport: no *.jsonl traces in %s", dir)
	}
	sort.Strings(paths)
	b := NewTimeSeriesBuilder(opts)
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return trace.TSSnapshot{}, fmt.Errorf("tracereport: %w", err)
		}
		events, err := trace.ReadJSONL(f)
		f.Close()
		if err != nil {
			return trace.TSSnapshot{}, fmt.Errorf("tracereport: %s: %w", filepath.Base(path), err)
		}
		b.AddEvents(events)
	}
	return b.Snap(), nil
}
