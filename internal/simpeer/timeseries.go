package simpeer

import (
	"time"

	"p2psplice/internal/trace"
)

// simSeries caches the windowed time-series handles, mirroring
// simMetrics: all handles are nil-safe zero values when no TimeSeries is
// attached, so the recording sites execute identically either way —
// which is what TestTimeSeriesInert proves at the figure level.
//
// Every series is also derivable from the trace event stream alone
// (pool_fill args, player transitions, segment completions), and the
// observation sites sit exactly at the corresponding emit sites with the
// same timestamps and values, so tracereport.BuildTimeSeries reproduces
// this recorder bit for bit from a run's JSONL — the coherence test
// enforces it.
type simSeries struct {
	bufferedUS    trace.TSGauge
	poolTarget    trace.TSHist
	inflight      trace.TSGauge
	stalled       trace.TSGauge
	stallPermille trace.TSGauge
	segsDone      trace.TSCounter
}

// newSimSeries registers the emulation's series against ts. A nil ts
// yields all-no-op handles (the zero simSeries).
func newSimSeries(ts *trace.TimeSeries) simSeries {
	if ts == nil {
		return simSeries{}
	}
	return simSeries{
		bufferedUS:    ts.Gauge(trace.TSBufferOccupancyUS),
		poolTarget:    ts.Histogram(trace.TSPoolTargetK),
		inflight:      ts.Gauge(trace.TSInflightFlows),
		stalled:       ts.Gauge(trace.TSStalledPeers),
		stallPermille: ts.Gauge(trace.TSStallFractionPermille),
		segsDone:      ts.Counter(trace.TSSegmentsCompleted),
	}
}

// observeStalled samples the stalled-peer count and stall fraction after
// a transition updated s.stalledNow. at is the transition's (possibly
// retroactive) timestamp, matching the emitted player events.
func (s *swarm) observeStalled(at time.Duration) {
	s.ss.stalled.Observe(at, int64(s.stalledNow))
	if lee := len(s.peers) - 1; lee > 0 {
		s.ss.stallPermille.Observe(at, int64(s.stalledNow)*1000/int64(lee))
	}
}
