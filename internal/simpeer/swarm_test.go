package simpeer

import (
	"testing"
	"time"

	"p2psplice/internal/core"
	"p2psplice/internal/media"
	"p2psplice/internal/netem"
	"p2psplice/internal/player"
	"p2psplice/internal/splicer"
	"p2psplice/internal/topology"
)

// segmentsFor splices the standard test clip and converts to SegmentMeta.
func segmentsFor(t *testing.T, sp splicer.Splicer, clip time.Duration, seed int64) []SegmentMeta {
	t.Helper()
	v, err := media.Synthesize(media.DefaultEncoderConfig(), clip, seed)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := sp.Splice(v)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]SegmentMeta, len(segs))
	for i, s := range segs {
		out[i] = SegmentMeta{Bytes: s.Bytes(), Duration: s.Duration()}
	}
	return out
}

func baseConfig(bandwidth int64) SwarmConfig {
	return SwarmConfig{
		Seed:                 1,
		Leechers:             4,
		BandwidthBytesPerSec: bandwidth,
		PeerAccessDelay:      25 * time.Millisecond,
		SeederAccessDelay:    25 * time.Millisecond,
		LossRate:             0.05,
		Policy:               core.AdaptivePool{},
		OracleBandwidth:      true,
		// Stagger joins: simultaneous joins create a pathological lockstep
		// flash crowd where only the seeder ever holds the wanted segment.
		JoinSpread: 5 * time.Second,
	}
}

func TestRunSwarmCompletes(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, 30*time.Second, 1)
	res, err := RunSwarm(baseConfig(512*1024), segs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 4 {
		t.Fatalf("got %d samples, want 4", len(res.Samples))
	}
	for _, s := range res.Samples {
		if !s.Finished {
			t.Errorf("peer %d did not finish", s.Peer)
		}
		if s.Startup <= 0 {
			t.Errorf("peer %d startup %v, want positive", s.Peer, s.Startup)
		}
	}
	if res.EndTime <= 0 {
		t.Error("EndTime should be positive")
	}
}

func TestRunSwarmDeterministic(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, 30*time.Second, 1)
	cfg := baseConfig(256 * 1024)
	cfg.JoinSpread = 2 * time.Second
	a, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	if a.EndTime != b.EndTime {
		t.Errorf("EndTime differs: %v vs %v", a.EndTime, b.EndTime)
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Errorf("sample %d differs: %+v vs %+v", i, a.Samples[i], b.Samples[i])
		}
	}
}

func TestHigherBandwidthFewerStalls(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, time.Minute, 2)
	stalls := func(bw int64) float64 {
		cfg := baseConfig(bw)
		cfg.Seed = 7
		res, err := RunSwarm(cfg, segs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary().MeanStalls
	}
	low := stalls(128 * 1024)
	high := stalls(1024 * 1024)
	if high > low {
		t.Errorf("stalls at 1024kB/s (%v) exceed stalls at 128kB/s (%v)", high, low)
	}
	if low == 0 {
		t.Log("note: no stalls even at 128 kB/s; model may be too permissive")
	}
}

func TestAdaptiveBeatsLargeFixedPoolAtLowBandwidth(t *testing.T) {
	// The paper's Figure 5 claim at its core: at low bandwidth a large fixed
	// pool stalls more than adaptive pooling.
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, time.Minute, 3)
	run := func(p core.Policy) float64 {
		cfg := baseConfig(128 * 1024)
		cfg.Policy = p
		cfg.Seed = 11
		res, err := RunSwarm(cfg, segs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary().MeanStallSeconds
	}
	adaptive := run(core.AdaptivePool{})
	pool8 := run(core.FixedPool{K: 8})
	if adaptive > pool8 {
		t.Errorf("adaptive stall time %v exceeds pool-8 stall time %v at 128kB/s", adaptive, pool8)
	}
}

func TestChurnDepartsPeers(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, time.Minute, 4)
	cfg := baseConfig(512 * 1024)
	cfg.Leechers = 8
	cfg.Churn = ChurnModel{MeanOnline: 20 * time.Second, MinRemaining: 2}
	res, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Departed == 0 {
		t.Error("expected some departures under churn")
	}
	active := 0
	for _, p := range res.Peers {
		if !p.Departed {
			active++
		}
	}
	if active < cfg.Churn.MinRemaining {
		t.Errorf("only %d peers remain, want >= %d", active, cfg.Churn.MinRemaining)
	}
	// Survivors must still finish: the seeder never departs.
	for _, s := range res.Samples {
		if !s.Finished {
			t.Errorf("surviving peer %d did not finish", s.Peer)
		}
	}
}

func TestUploadCapRespected(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 2 * time.Second}, 30*time.Second, 5)
	cfg := baseConfig(256 * 1024)
	cfg.Leechers = 6
	cfg.MaxUploadsPerPeer = 1
	cfg.Policy = core.FixedPool{K: 4}
	res, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Samples {
		if !s.Finished {
			t.Errorf("peer %d did not finish under upload cap", s.Peer)
		}
	}
}

func TestRarestFirstCompletes(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, 30*time.Second, 6)
	cfg := baseConfig(512 * 1024)
	cfg.Selection = SelectRarestFirst
	res, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Samples {
		if !s.Finished {
			t.Errorf("peer %d did not finish with rarest-first", s.Peer)
		}
	}
}

func TestEWMAEstimatorPathCompletes(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, 30*time.Second, 7)
	cfg := baseConfig(512 * 1024)
	cfg.OracleBandwidth = false
	res, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Samples {
		if !s.Finished {
			t.Errorf("peer %d did not finish with EWMA estimation", s.Peer)
		}
	}
}

func TestCrossTrafficSlowsPlayback(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, time.Minute, 8)
	run := func(cross int) float64 {
		cfg := baseConfig(256 * 1024)
		cfg.Seed = 13
		cfg.CrossTraffic = cross
		res, err := RunSwarm(cfg, segs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary().MeanStallSeconds + res.Summary().MeanStartupSeconds
	}
	clean := run(0)
	congested := run(4)
	if congested < clean {
		t.Errorf("cross traffic improved playback: %v < %v", congested, clean)
	}
}

func TestVariableBandwidthSchedule(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, time.Minute, 9)
	cfg := baseConfig(512 * 1024)
	cfg.BandwidthSchedule = []netem.BandwidthStep{
		{At: 20 * time.Second, BytesPerSec: 128 * 1024},
		{At: 40 * time.Second, BytesPerSec: 512 * 1024},
	}
	res, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Samples {
		if !s.Finished {
			t.Errorf("peer %d did not finish under variable bandwidth", s.Peer)
		}
	}
}

func TestRunSwarmValidation(t *testing.T) {
	segs := []SegmentMeta{{Bytes: 100, Duration: time.Second}}
	cases := []struct {
		name string
		mut  func(*SwarmConfig)
		segs []SegmentMeta
	}{
		{"no leechers", func(c *SwarmConfig) { c.Leechers = 0 }, segs},
		{"zero bandwidth", func(c *SwarmConfig) { c.BandwidthBytesPerSec = 0 }, segs},
		{"nil policy", func(c *SwarmConfig) { c.Policy = nil }, segs},
		{"bad loss", func(c *SwarmConfig) { c.LossRate = 1 }, segs},
		{"negative delay", func(c *SwarmConfig) { c.PeerAccessDelay = -time.Second }, segs},
		{"no segments", func(c *SwarmConfig) {}, nil},
		{"bad segment", func(c *SwarmConfig) {}, []SegmentMeta{{Bytes: 0, Duration: time.Second}}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			cfg := baseConfig(128 * 1024)
			tt.mut(&cfg)
			if _, err := RunSwarm(cfg, tt.segs); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestPlayerStateExposedInPeers(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, 20*time.Second, 10)
	res, err := RunSwarm(baseConfig(512*1024), segs)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Peers {
		if p.Metrics.State != player.StateFinished {
			t.Errorf("peer %d state %v, want finished", p.Peer, p.Metrics.State)
		}
	}
}

func TestHeterogeneousBandwidths(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, time.Minute, 12)
	cfg := baseConfig(512 * 1024)
	cfg.Leechers = 4
	// Leecher 1's link is below the clip rate: it cannot stream cleanly no
	// matter what the swarm does.
	cfg.LeecherBandwidths = []int64{100 * 1024}
	res, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Samples {
		if !s.Finished {
			t.Errorf("peer %d did not finish", s.Peer)
		}
	}
	// The slow peer should wait longer than the fast ones.
	var slow, fastSum time.Duration
	var fastN int
	for _, s := range res.Samples {
		wait := s.Startup + s.TotalStall
		if s.Peer == 1 {
			slow = wait
		} else {
			fastSum += wait
			fastN++
		}
	}
	if fastN == 0 || slow <= fastSum/time.Duration(fastN) {
		t.Errorf("slow peer waited %v, fast peers averaged %v", slow, fastSum/time.Duration(fastN))
	}
}

func TestFreshConnectionsComplete(t *testing.T) {
	// The per-segment handshake cost itself is asserted deterministically at
	// the netem layer (TestHandshakeDelaysFirstByte); at swarm scale it sits
	// below the stochastic noise floor, so here we only check the ablation
	// configuration streams correctly.
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 2 * time.Second}, 30*time.Second, 13)
	cfg := baseConfig(512 * 1024)
	cfg.FreshConnectionPerSegment = true
	res, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Samples {
		if !s.Finished {
			t.Errorf("peer %d did not finish with fresh connections", s.Peer)
		}
	}
}

func TestUnlimitedUploadSlots(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, 30*time.Second, 14)
	cfg := baseConfig(512 * 1024)
	cfg.MaxUploadsPerPeer = -1 // unlimited
	res, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Samples {
		if !s.Finished {
			t.Errorf("peer %d did not finish with unlimited slots", s.Peer)
		}
	}
}

func TestDepartedPeersExcludedFromSamples(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, time.Minute, 15)
	cfg := baseConfig(512 * 1024)
	cfg.Leechers = 8
	cfg.Churn = ChurnModel{MeanOnline: 15 * time.Second, MinRemaining: 2}
	res, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples)+res.Departed != cfg.Leechers {
		t.Errorf("samples (%d) + departed (%d) != leechers (%d)",
			len(res.Samples), res.Departed, cfg.Leechers)
	}
	for _, pr := range res.Peers {
		if pr.Departed {
			for _, smp := range res.Samples {
				if smp.Peer == pr.Peer {
					t.Errorf("departed peer %d appears in samples", pr.Peer)
				}
			}
		}
	}
}

func TestRunSwarmOnTopologySpec(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, 30*time.Second, 16)
	spec := topology.Star("test", 4, 512, 25*time.Millisecond, 5)
	// Slow down one leecher and add a traffic node via the spec.
	spec.Nodes[1].UplinkKBps = 256
	spec.Nodes[1].DownlinkKBps = 256
	spec.Nodes = append(spec.Nodes, topology.NodeSpec{Name: "noise", Role: topology.RoleTraffic})
	cfg := SwarmConfig{
		Seed:            1,
		Policy:          core.AdaptivePool{},
		OracleBandwidth: true,
		JoinSpread:      2 * time.Second,
		Topology:        &spec,
	}
	res, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 4 {
		t.Fatalf("got %d samples, want 4 (from the spec)", len(res.Samples))
	}
	for _, s := range res.Samples {
		if !s.Finished {
			t.Errorf("peer %d did not finish", s.Peer)
		}
	}
}

func TestRunSwarmTopologyValidation(t *testing.T) {
	segs := []SegmentMeta{{Bytes: 100, Duration: time.Second}}
	bad := topology.Spec{Nodes: []topology.NodeSpec{{Name: "s", Role: topology.RoleSeeder}}}
	cfg := SwarmConfig{Seed: 1, Policy: core.AdaptivePool{}, Topology: &bad}
	if _, err := RunSwarm(cfg, segs); err == nil {
		t.Error("invalid topology (zero bandwidth): want error")
	}
	noLeechers := topology.Star("x", 0, 128, 0, 0)
	cfg.Topology = &noLeechers
	if _, err := RunSwarm(cfg, segs); err == nil {
		t.Error("topology without leechers: want error")
	}
}

func TestCDNAssistReducesWaiting(t *testing.T) {
	// Section IV hybrid: at low bandwidth, an assisting CDN should reduce
	// viewer waiting versus the pure-P2P swarm.
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, time.Minute, 17)
	run := func(cdn *CDNAssist) float64 {
		var tot float64
		for seed := int64(31); seed < 34; seed++ {
			cfg := baseConfig(128 * 1024)
			cfg.Seed = seed
			cfg.Leechers = 8
			cfg.CDN = cdn
			res, err := RunSwarm(cfg, segs)
			if err != nil {
				t.Fatal(err)
			}
			sum := res.Summary()
			tot += (sum.MeanStallSeconds + sum.MeanStartupSeconds) / 3
		}
		return tot
	}
	pure := run(nil)
	hybrid := run(&CDNAssist{BandwidthBytesPerSec: 1024 * 1024})
	if hybrid >= pure {
		t.Errorf("CDN assist did not help: hybrid %.1fs vs pure %.1fs", hybrid, pure)
	}
}

func TestCDNOneSegmentAtATime(t *testing.T) {
	// Even with a big pool policy, a client holds at most one in-flight CDN
	// download. Use a swarm with no peer capacity (seeder upload-starved is
	// hard to construct; instead verify via the eligibility rule directly).
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 2 * time.Second}, 20*time.Second, 18)
	cfg := baseConfig(512 * 1024)
	cfg.Policy = core.FixedPool{K: 8}
	cfg.CDN = &CDNAssist{BandwidthBytesPerSec: 2048 * 1024}
	res, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Samples {
		if !s.Finished {
			t.Errorf("peer %d did not finish with CDN assist", s.Peer)
		}
	}
}

func TestCDNValidation(t *testing.T) {
	segs := []SegmentMeta{{Bytes: 100, Duration: time.Second}}
	cfg := baseConfig(128 * 1024)
	cfg.CDN = &CDNAssist{BandwidthBytesPerSec: 0}
	if _, err := RunSwarm(cfg, segs); err == nil {
		t.Error("zero CDN bandwidth: want error")
	}
	cfg.CDN = &CDNAssist{BandwidthBytesPerSec: 1024, AccessDelay: -time.Second}
	if _, err := RunSwarm(cfg, segs); err == nil {
		t.Error("negative CDN delay: want error")
	}
}
