package simpeer

import (
	"p2psplice/internal/netem"
	"p2psplice/internal/reputation"
	"p2psplice/internal/trace"
)

// This file is the emulation's reputation glue: observations recorded
// against download sources, quarantine enforcement (cancel the
// offender's uploads, skip it in selection, schedule the release), and
// the CatRep trace events. Everything runs on the engine clock and the
// pure-hash draw layer, so a reputation-enabled run is bit-identical
// across repetitions and -workers values. With s.rep == nil every entry
// point is a no-op and the run is bit-identical to pre-reputation
// behavior (the inertness tests enforce it).

// observeRep records one observation about a download source and
// enforces any resulting quarantine. The CDN is never scored: it is
// infrastructure, not a peer, and quarantining the fallback of last
// resort could only hurt liveness.
func (s *swarm) observeRep(src *peerState, obs reputation.Observation) {
	if s.rep == nil || src.isCDN {
		return
	}
	now := s.eng.Now()
	up := s.rep.Observe(src.id, now, obs)
	if s.cfg.Tracer.Enabled() {
		if obs != reputation.ObsSuccess {
			s.emit(src.id, -1, trace.CatRep, trace.EvRepPenalty,
				trace.Str("obs", obs.String()),
				trace.Float64("score", up.Score))
		}
		if up.Cleared {
			s.emit(src.id, -1, trace.CatRep, trace.EvProbationClear)
		}
	}
	if obs != reputation.ObsSuccess {
		s.sm.repPenalties.Inc()
	}
	if !up.Quarantined {
		return
	}
	s.sm.quarantines.Inc()
	if s.cfg.Tracer.Enabled() {
		s.emit(src.id, -1, trace.CatRep, trace.EvQuarantine,
			trace.Float64("score", up.Score),
			trace.Int64("until_us", up.Until.Microseconds()))
	}
	// A quarantined source should not keep serving what selection would
	// no longer assign it: abort its uploads so the victims re-request
	// from healthy sources immediately instead of finishing doomed (or
	// already-poisoned) transfers.
	s.cancelUploadsFrom(src)
	s.fillAll()
	// Release: probation begins when the window lapses, and peers whose
	// pools were starved by the quarantine may now use this source again.
	// If the peer was re-quarantined in the meantime the later window's
	// own release event handles it.
	s.eng.Schedule(up.Until-now, func() {
		if s.rep.Quarantined(src.id, s.eng.Now()) {
			return
		}
		if s.cfg.Tracer.Enabled() {
			s.emit(src.id, -1, trace.CatRep, trace.EvQuarantineEnd)
		}
		s.fillAll()
	})
}

// observeRepSuccess scores a verified completion: a clean serve, unless
// it crawled in below the slow-serve floor (a polite slowloris that
// beats the serve timeout still gets charged).
func (s *swarm) observeRepSuccess(src *peerState, f *netem.Flow) {
	if s.rep == nil || src.isCDN {
		return
	}
	obs := reputation.ObsSuccess
	if floor := s.rep.Config().SlowServeBytesPerSec; floor > 0 && f.Elapsed() > 0 &&
		float64(f.Size())/f.Elapsed().Seconds() < float64(floor) {
		obs = reputation.ObsSlowServe
	}
	s.observeRep(src, obs)
}
