package simpeer

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"p2psplice/internal/splicer"
	"p2psplice/internal/trace"
	"p2psplice/internal/tracereport"
)

// The windowed time-series layer must be a pure observer: the same
// swarm run, with and without a TimeSeries attached, produces
// bit-identical results — the swarm-level half of TestTimeSeriesInert.
func TestTimeSeriesIsInert(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, 30*time.Second, 1)

	plain := baseConfig(160 * 1024)
	plain.Seed = 13
	plain.LossRate = 0.1
	bare, err := RunSwarm(plain, segs)
	if err != nil {
		t.Fatal(err)
	}

	timed := plain
	ts := trace.NewTimeSeries(trace.TimeSeriesConfig{Window: time.Second, MaxWindows: 256})
	timed.Series = ts
	obs, err := RunSwarm(timed, segs)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(bare, obs) {
		t.Fatalf("results diverge with time series attached:\nbare:  %+v\ntimed: %+v", bare, obs)
	}
	snap := ts.Snap()
	var total int64
	for _, s := range snap.Series {
		total += s.Total()
	}
	if total == 0 {
		t.Fatal("time series attached but nothing observed")
	}
}

// TestTimeSeriesCoherent proves the two observation paths cannot drift:
// the series recorded in-process during a run and the series rebuilt
// from that same run's serialized JSONL trace are bit-identical —
// window by window, bucket by bucket.
func TestTimeSeriesCoherent(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, time.Minute, 2)
	cfg := baseConfig(128 * 1024)
	cfg.Seed = 7
	cfg.LossRate = 0.1
	ts := trace.NewTimeSeries(trace.TimeSeriesConfig{Window: time.Second, MaxWindows: 512})
	cfg.Series = ts
	buf := trace.NewBuffer()
	cfg.Tracer = trace.New(buf)
	if _, err := RunSwarm(cfg, segs); err != nil {
		t.Fatal(err)
	}

	// Round-trip the events through the JSONL encoding: the derived
	// builder must agree with the recorder at the serialization's
	// microsecond resolution, not just on in-memory events.
	var jsonl bytes.Buffer
	if err := trace.WriteJSONL(&jsonl, buf.Events()); err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadJSONL(&jsonl)
	if err != nil {
		t.Fatal(err)
	}

	b := tracereport.NewTimeSeriesBuilder(tracereport.TimeSeriesOptions{
		Window:     time.Second,
		MaxWindows: 512,
		Peers:      cfg.Leechers,
	})
	b.AddEvents(events)
	derived := b.Snap()
	inproc := ts.Snap()

	if !reflect.DeepEqual(inproc, derived) {
		for i := range inproc.Series {
			if i < len(derived.Series) && !reflect.DeepEqual(inproc.Series[i], derived.Series[i]) {
				t.Errorf("series %s diverges:\nin-process: %+v\nderived:    %+v",
					inproc.Series[i].Name, inproc.Series[i], derived.Series[i])
			}
		}
		t.Fatal("trace-derived time series differs from the in-process recording")
	}
	var hasObs bool
	for _, s := range inproc.Series {
		if s.Total() > 0 {
			hasObs = true
		}
	}
	if !hasObs {
		t.Fatal("coherence proved on an empty recording; run produced no observations")
	}
}
