package simpeer

import (
	"time"

	"p2psplice/internal/fault"
	"p2psplice/internal/netem"
	"p2psplice/internal/player"
	"p2psplice/internal/trace"
)

// This file is the emulation's trace glue: pure listeners translating
// engine, netem, and player callbacks into trace events. Nothing here may
// mutate swarm, flow, or player state, draw from the RNG, or schedule
// events — the same run must be bit-identical with tracing on and off
// (see DESIGN.md §8 and the TestTracingIsInert equivalence test).

// emitAt sends one event with an explicit timestamp (player transitions
// carry retroactive times).
func (s *swarm) emitAt(at time.Duration, peer, seg int, cat, name string, args ...trace.Arg) {
	s.cfg.Tracer.Emit(trace.Event{At: at, Peer: peer, Seg: seg, Cat: cat, Name: name, Args: args})
}

// emit sends one event stamped with the current virtual time.
func (s *swarm) emit(peer, seg int, cat, name string, args ...trace.Arg) {
	s.emitAt(s.eng.Now(), peer, seg, cat, name, args...)
}

// onFlowEvent translates netem flow lifecycle events, attributing each
// flow to its downloading peer.
func (s *swarm) onFlowEvent(ev netem.FlowEvent) {
	var name string
	switch ev.Kind {
	case netem.FlowEventSetup:
		name = trace.EvFlowSetup
	case netem.FlowEventActivate:
		name = trace.EvFlowActivate
	case netem.FlowEventFreeze:
		name = trace.EvFlowFreeze
	case netem.FlowEventUnfreeze:
		name = trace.EvFlowUnfreeze
	case netem.FlowEventRamp:
		name = trace.EvFlowRamp
	case netem.FlowEventComplete:
		name = trace.EvFlowComplete
	case netem.FlowEventCancel:
		name = trace.EvFlowCancel
	default:
		return
	}
	peer := -1
	if id, ok := s.nodeToPeer[ev.Dst]; ok {
		peer = id
	}
	args := []trace.Arg{
		trace.Int64("flow", int64(ev.Flow)),
		trace.Float64("rate", ev.Rate),
		trace.Int64("remaining", ev.Remaining),
	}
	if src, ok := s.nodeToPeer[ev.Src]; ok {
		args = append(args, trace.Int64("src", int64(src)))
	}
	s.emitAt(ev.At, peer, -1, trace.CatFlow, name, args...)
}

// onLossState observes Gilbert–Elliott state transitions on peers'
// access links. It records the most recent bad window's bounds on the
// peer (observer-owned fields, like openStall*: read only by stall
// attribution, never by scheduling) and, when tracing, emits the
// transition. Attached whenever tracing or metering is on — both need
// stall attribution.
func (s *swarm) onLossState(ev netem.LossStateEvent) {
	peer := -1
	if id, ok := s.nodeToPeer[ev.Node]; ok {
		peer = id
	}
	if peer >= 0 {
		p := s.peers[peer]
		if ev.Bad {
			p.geBursts++
			p.geBadAt = ev.At
		} else if p.geBursts > 0 {
			p.geGoodAt = ev.At
		}
	}
	if s.cfg.Tracer.Enabled() {
		bad := int64(0)
		if ev.Bad {
			bad = 1
		}
		s.emitAt(ev.At, peer, -1, trace.CatFault, trace.EvLossState,
			trace.Int64("bad", bad),
			trace.Float64("loss", ev.Loss))
	}
}

// inBurstWindow reports whether the peer's access link is in the
// Gilbert–Elliott bad state now, or was at the (possibly retroactive)
// stall timestamp at, per the windows onLossState recorded.
func (s *swarm) inBurstWindow(p *peerState, at time.Duration) bool {
	if s.net.LossStateBad(p.node) {
		return true
	}
	if p.geBursts == 0 || at < p.geBadAt {
		return false
	}
	// geGoodAt <= geBadAt means the recovery transition has not fired
	// (or fired for an earlier burst): the window is still open.
	return p.geGoodAt <= p.geBadAt || at < p.geGoodAt
}

// onPlayerTransition translates playback state changes, attributing every
// beginning stall to its proximate cause.
func (s *swarm) onPlayerTransition(p *peerState, tr player.Transition) {
	switch {
	case tr.From == player.StateWaiting && tr.To == player.StatePlaying:
		s.emitAt(tr.At, p.id, -1, trace.CatPlayer, trace.EvStartup,
			trace.Int64("startup_us", (tr.At-p.joined).Microseconds()))
		s.sm.startup.ObserveDuration(tr.At - p.joined)
	case tr.To == player.StateStalled:
		cause, inflight, frozen := s.classifyStall(p, tr.At)
		p.openStallAt, p.openStallCause = tr.At, cause
		s.stalledNow++
		s.observeStalled(tr.At)
		s.emitAt(tr.At, p.id, -1, trace.CatPlayer, trace.EvStallBegin)
		s.emitAt(tr.At, p.id, -1, trace.CatPlayer, trace.EvStallCause,
			trace.Str("cause", cause),
			trace.Int64("inflight", int64(inflight)),
			trace.Int64("frozen", int64(frozen)))
	case tr.From == player.StateStalled && tr.To == player.StatePlaying:
		s.stalledNow--
		s.observeStalled(tr.At)
		s.emitAt(tr.At, p.id, -1, trace.CatPlayer, trace.EvStallEnd)
		if p.openStallCause != "" {
			s.sm.stallFor(p.openStallCause).ObserveDuration(tr.At - p.openStallAt)
			p.openStallCause = ""
		}
	case tr.To == player.StateFinished:
		if tr.From == player.StateStalled {
			s.stalledNow--
			s.observeStalled(tr.At)
		}
		s.emitAt(tr.At, p.id, -1, trace.CatPlayer, trace.EvFinished)
		if tr.From == player.StateStalled && p.openStallCause != "" {
			// A run can finish straight out of a stall; close it so the
			// histogram's total matches the attributed stall time.
			s.sm.stallFor(p.openStallCause).ObserveDuration(tr.At - p.openStallAt)
			p.openStallCause = ""
		}
	}
}

// classifyStall inspects the stalling peer's download pool with pure
// reads only (in particular flow.Frozen and flow.LinkDown, never
// flow.Remaining, which advances flow progress). at is the stall's own
// timestamp: player transitions surface lazily, so a stall observed
// after a rejoin may have begun inside the crash window.
func (s *swarm) classifyStall(p *peerState, at time.Duration) (cause string, inflight, frozen int) {
	inflight = len(p.inFlight)
	// The peer itself is (or was, at the stall's timestamp) crashed:
	// the outage is the cause regardless of pool state.
	if p.crashed || (p.crashes > 0 && at >= p.lastCrashAt && at < p.rejoinedAt) {
		return trace.CausePeerCrash, inflight, 0
	}
	// The peer's own access link is (or was, at the stall's timestamp)
	// administratively down: nothing can move whether or not downloads
	// are in flight.
	if s.net.LinkIsDown(p.node) ||
		(p.linkDowns > 0 && at >= p.lastLinkDownAt && at < p.linkUpAt) {
		return trace.CauseLinkDown, inflight, 0
	}
	// A corruption window made this peer throw away verified-bad
	// segments: the re-downloads, not the scheduler, are the proximate
	// cause of a stall inside the window.
	if p.corruptDiscards > 0 && at >= p.corruptStartAt &&
		(p.corruptPct > 0 || at < p.corruptEndAt) {
		return trace.CauseCorruptSegment, inflight, 0
	}
	if inflight == 0 {
		next := s.nextWanted(p)
		if next >= 0 && s.holderCount(next) == 0 {
			if s.trackerDown {
				// No live holder and no tracker to discover one through:
				// the tracker is the binding constraint, whatever took the
				// holders away.
				return trace.CauseTrackerDown, 0, 0
			}
			if s.crashedHolder(next) {
				// A crashed peer holds it; the swarm lost the source.
				return trace.CausePeerCrash, 0, 0
			}
			return trace.CauseNoSource, 0, 0
		}
		if s.rep != nil && next >= 0 && s.allHoldersQuarantined(p, next, at) {
			// Holders exist but the reputation subsystem has every one of
			// them in quarantine: progress waits on probation or on the
			// sole-source escape hatch's next retry.
			return trace.CausePeerQuarantined, 0, 0
		}
		if p.retryPending {
			// Sources exist but none was eligible (upload slots full, relay
			// threshold not crossed); the peer is waiting out a retry.
			return trace.CauseChokedSources, 0, 0
		}
		// A source exists and no retry is pending: the scheduler simply
		// left the pool empty.
		return trace.CauseEmptyPool, 0, 0
	}
	// Pending adversary serves have no flow: if nothing else is moving
	// either, the peer is hung on sources that accepted requests and are
	// serving nothing (stale-have) or a useless trickle (slowloris).
	pending, trickling := 0, 0
	for _, d := range p.inFlight {
		if d.flow == nil {
			pending++
			if d.pending == fault.AdvSlowloris {
				trickling++
			}
		}
	}
	if pending == inflight {
		if trickling > 0 {
			return trace.CauseSlowServe, inflight, 0
		}
		return trace.CauseStaleHave, inflight, 0
	}
	linkDown := 0
	for _, d := range p.inFlight {
		if d.flow == nil {
			continue
		}
		if d.flow.Frozen() {
			frozen++
		}
		if d.flow.LinkDown() {
			linkDown++
		}
	}
	if linkDown > 0 && linkDown == inflight-pending {
		// Every in-flight download rides a downed link (the sources'
		// side — the peer's own link was handled above).
		return trace.CauseLinkDown, inflight, frozen
	}
	if frozen > 0 {
		return trace.CauseFrozenFlow, inflight, frozen
	}
	if s.rep != nil && s.allInFlightSourcesQuarantined(p, at) {
		// Every moving download comes from a quarantined source — the
		// escape hatch kept liveness, but the swarm is degraded to its
		// least-trusted serving set.
		return trace.CausePeerQuarantined, inflight, frozen
	}
	// Burst loss: the peer's own access link, or the link of a source
	// serving one of its in-flight downloads, is (or was, at the stall's
	// timestamp) in the Gilbert–Elliott bad state — the crushed Mathis
	// caps, not ordinary congestion, explain the slow flows. The map
	// iteration order is irrelevant: any match yields the same cause.
	if s.inBurstWindow(p, at) {
		return trace.CauseBurstLoss, inflight, 0
	}
	for _, d := range p.inFlight {
		if s.inBurstWindow(d.src, at) {
			return trace.CauseBurstLoss, inflight, 0
		}
	}
	return trace.CauseSlowFlow, inflight, 0
}

// allHoldersQuarantined reports whether segment idx has at least one
// live holder and every live holder was quarantined at the stall's
// timestamp. Pure reads only (Table.Quarantined never mutates), like
// the rest of stall attribution.
func (s *swarm) allHoldersQuarantined(p *peerState, idx int, at time.Duration) bool {
	holders := 0
	for _, q := range s.peers {
		if q == p || q.departed || q.crashed || !q.have[idx] {
			continue
		}
		holders++
		if !s.rep.Quarantined(q.id, at) {
			return false
		}
	}
	return holders > 0
}

// allInFlightSourcesQuarantined reports whether every in-flight
// download's source was quarantined at the stall's timestamp (map
// iteration order is irrelevant: boolean AND).
func (s *swarm) allInFlightSourcesQuarantined(p *peerState, at time.Duration) bool {
	for _, d := range p.inFlight {
		if d.src.isCDN || !s.rep.Quarantined(d.src.id, at) {
			return false
		}
	}
	return len(p.inFlight) > 0
}
