package simpeer

import (
	"reflect"
	"testing"
	"time"

	"p2psplice/internal/splicer"
	"p2psplice/internal/trace"
)

// Tracing must be a pure observer: the same swarm run, with and without a
// tracer attached, produces bit-identical results.
func TestTracingIsInert(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, 30*time.Second, 1)

	plain := baseConfig(192 * 1024)
	plain.Seed = 11
	plain.LossRate = 0.15
	bare, err := RunSwarm(plain, segs)
	if err != nil {
		t.Fatal(err)
	}

	traced := plain
	buf := trace.NewBuffer()
	traced.Tracer = trace.New(buf)
	obs, err := RunSwarm(traced, segs)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(bare, obs) {
		t.Fatalf("results diverge with tracing enabled:\nbare:   %+v\ntraced: %+v", bare, obs)
	}
	if len(buf.Events()) == 0 {
		t.Fatal("tracer attached but no events recorded")
	}
}

// A traced run must attribute every stall: each stall_begin is accompanied
// by a stall_cause with a named cause at the same instant, and in a run
// where every peer finishes, each stall also ends.
func TestStallAttribution(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, time.Minute, 2)
	cfg := baseConfig(128 * 1024)
	cfg.Seed = 7
	buf := trace.NewBuffer()
	cfg.Tracer = trace.New(buf)
	res, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Samples {
		if !s.Finished {
			t.Fatalf("peer %d did not finish; stall pairing below assumes completion", s.Peer)
		}
	}

	type key struct {
		peer int
		at   time.Duration
	}
	begins := map[key]bool{}
	causes := map[key]string{}
	perPeer := map[int]int{} // open stalls per peer
	var nBegin, nEnd int
	for _, ev := range buf.Events() {
		switch ev.Name {
		case trace.EvStallBegin:
			begins[key{ev.Peer, ev.At}] = true
			perPeer[ev.Peer]++
			nBegin++
		case trace.EvStallCause:
			for _, a := range ev.Args {
				if a.Key == "cause" && a.Str != "" {
					causes[key{ev.Peer, ev.At}] = a.Str
				}
			}
		case trace.EvStallEnd:
			if perPeer[ev.Peer] <= 0 {
				t.Fatalf("peer %d: stall_end at %v without open stall", ev.Peer, ev.At)
			}
			perPeer[ev.Peer]--
			nEnd++
		}
	}
	if nBegin == 0 {
		t.Skip("no stalls at this seed/bandwidth; attribution untestable")
	}
	for k := range begins {
		if causes[k] == "" {
			t.Errorf("stall_begin peer=%d at=%v has no attributed cause", k.peer, k.at)
		}
	}
	if nBegin != nEnd {
		t.Errorf("%d stall_begin vs %d stall_end in a fully-finished run", nBegin, nEnd)
	}

	// Cross-check against the result samples: traced stall counts must match
	// the player-reported per-peer stall totals.
	wantStalls := 0
	for _, s := range res.Samples {
		wantStalls += s.Stalls
	}
	if nBegin != wantStalls {
		t.Errorf("traced %d stalls, samples report %d", nBegin, wantStalls)
	}
}

// The virtual-time summary and flow lifecycle events appear in a traced run.
func TestTraceContainsFlowAndSummaryEvents(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, 30*time.Second, 3)
	cfg := baseConfig(512 * 1024)
	buf := trace.NewBuffer()
	cfg.Tracer = trace.New(buf)
	if _, err := RunSwarm(cfg, segs); err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	for _, ev := range buf.Events() {
		names[ev.Name]++
	}
	for _, want := range []string{
		trace.EvFlowSetup, trace.EvFlowActivate, trace.EvFlowComplete,
		trace.EvPoolFill, trace.EvSourcePick, trace.EvSegComplete,
		trace.EvStartup, trace.EvFinished, trace.EvSimSummary,
	} {
		if names[want] == 0 {
			t.Errorf("no %s events; got %v", want, names)
		}
	}
	if names[trace.EvSimSummary] != 1 {
		t.Errorf("%d sim summary events, want 1", names[trace.EvSimSummary])
	}
}
