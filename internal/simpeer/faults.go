package simpeer

import (
	"fmt"

	"p2psplice/internal/fault"
	"p2psplice/internal/netem"
	"p2psplice/internal/trace"
)

// This file compiles a fault.Plan against the sim clock and implements
// the swarm-side fault semantics: crash/rejoin, link flaps and rate
// dips, and tracker outages. Every injected fault and recovery is a
// typed CatFault trace event so timelines show fault → stall (or
// fault → masked) causality.

// compileFaults validates the configured plan and schedules one engine
// event per fault. An empty plan schedules nothing — the fault layer is
// provably inert when unused.
func (s *swarm) compileFaults() error {
	if s.cfg.Faults.Empty() {
		return nil
	}
	if err := s.cfg.Faults.Validate(len(s.peers) - 1); err != nil {
		return fmt.Errorf("simpeer: %w", err)
	}
	for _, ev := range s.cfg.Faults.Sorted().Events {
		ev := ev
		switch ev.Kind {
		case fault.KindPeerCrash:
			s.eng.At(ev.At, func() { s.crash(s.peers[ev.Node]) })
		case fault.KindPeerRejoin:
			s.eng.At(ev.At, func() { s.rejoin(s.peers[ev.Node]) })
		case fault.KindLinkDown:
			s.eng.At(ev.At, func() { s.setLink(s.peers[ev.Node], true) })
		case fault.KindLinkUp:
			s.eng.At(ev.At, func() { s.setLink(s.peers[ev.Node], false) })
		case fault.KindLinkRate:
			s.eng.At(ev.At, func() { s.setLinkRate(s.peers[ev.Node], ev.BytesPerSec) })
		case fault.KindTrackerDown:
			s.eng.At(ev.At, func() { s.setTracker(true) })
		case fault.KindTrackerUp:
			s.eng.At(ev.At, func() { s.setTracker(false) })
		case fault.KindBurstLoss:
			m := ev.Loss
			s.eng.At(ev.At, func() { s.setBurstLoss(s.peers[ev.Node], &m) })
		case fault.KindBurstLossEnd:
			s.eng.At(ev.At, func() { s.setBurstLoss(s.peers[ev.Node], nil) })
		case fault.KindCorrupt:
			s.eng.At(ev.At, func() { s.setCorrupt(s.peers[ev.Node], ev.Percent) })
		case fault.KindCorruptEnd:
			s.eng.At(ev.At, func() { s.setCorrupt(s.peers[ev.Node], 0) })
		case fault.KindAdversary:
			s.eng.At(ev.At, func() { s.setAdversary(s.peers[ev.Node], ev) })
		case fault.KindAdversaryEnd:
			s.eng.At(ev.At, func() { s.clearAdversary(s.peers[ev.Node]) })
		case fault.KindDuplicate:
			s.eng.At(ev.At, func() { s.setDuplicate(s.peers[ev.Node], true) })
		case fault.KindDuplicateEnd:
			s.eng.At(ev.At, func() { s.setDuplicate(s.peers[ev.Node], false) })
		}
	}
	return nil
}

// crash takes a peer (seeder included — node 0 models a seeder outage)
// abruptly offline: every flow it was part of is cancelled so in-flight
// segments return to their requesters' pools immediately, instead of
// waiting out a transfer that will never finish.
func (s *swarm) crash(p *peerState) {
	if p.departed || p.crashed {
		return
	}
	p.crashed = true
	p.crashes++
	p.lastCrashAt = s.eng.Now()
	s.emit(p.id, -1, trace.CatFault, trace.EvPeerCrash)
	s.cancelPeerFlows(p)
	s.fillAll()
}

// rejoin brings a crashed peer back with its segment store intact (a
// process restart, not a fresh install). While the tracker is down the
// rejoin defers: a restarting peer cannot re-enter the swarm without it.
func (s *swarm) rejoin(p *peerState) {
	if p.departed || !p.crashed {
		return
	}
	if s.trackerDown {
		s.deferred = append(s.deferred, func() { s.rejoin(p) })
		return
	}
	p.crashed = false
	p.rejoinedAt = s.eng.Now()
	p.retryAttempt = 0
	s.emit(p.id, -1, trace.CatFault, trace.EvPeerRejoin)
	// Its segments are visible again and it wants the rest: refill everyone.
	s.fillAll()
}

// setLink downs or restores a peer's access links. Down links freeze
// flows in place (netem fixes them at rate zero); link-up revives them
// at the next reallocation and refills every pool, since the returning
// node may have been somebody's only source.
func (s *swarm) setLink(p *peerState, down bool) {
	// Errors are impossible: node IDs come from setup.
	_ = s.net.SetLinkDown(p.node, down)
	name := trace.EvLinkUp
	if down {
		name = trace.EvLinkDown
		p.linkDowns++
		p.lastLinkDownAt = s.eng.Now()
	} else {
		p.linkUpAt = s.eng.Now()
	}
	s.emit(p.id, -1, trace.CatFault, name)
	if !down {
		s.fillAll()
	}
}

// setLinkRate degrades or restores a peer's symmetric access rate
// without downing the link (mirrors BandwidthSchedule semantics: the
// oracle policy input keeps the configured rate).
func (s *swarm) setLinkRate(p *peerState, bytesPerSec int64) {
	// Errors are impossible: the plan validated rate > 0 and the node
	// IDs come from setup.
	_ = s.net.SetUplink(p.node, bytesPerSec)
	_ = s.net.SetDownlink(p.node, bytesPerSec)
	s.emit(p.id, -1, trace.CatFault, trace.EvLinkRate,
		trace.Int64("rate", bytesPerSec))
}

// setBurstLoss installs (m != nil) or clears (m == nil) a
// Gilbert–Elliott burst-loss model on a peer's access link. While
// installed, netem drives the good/bad chain on the engine clock and
// re-derives every affected Mathis cap on each transition through the
// incremental allocator; the per-transition loss-state observer (see
// trace.go) records the windows for stall attribution.
func (s *swarm) setBurstLoss(p *peerState, m *fault.GEModel) {
	if m != nil {
		// Errors are impossible: the plan validated the parameters and
		// node IDs come from setup.
		_ = s.net.SetGEModel(p.node, netem.GEParams{
			PGood: m.PGood, PBad: m.PBad, P13: m.P13, P31: m.P31,
		})
		s.emit(p.id, -1, trace.CatFault, trace.EvBurstLoss,
			trace.Float64("p_good", m.PGood),
			trace.Float64("p_bad", m.PBad),
			trace.Float64("p13", m.P13),
			trace.Float64("p31", m.P31))
		return
	}
	_ = s.net.ClearGEModel(p.node)
	s.emit(p.id, -1, trace.CatFault, trace.EvBurstLossEnd)
}

// setCorrupt opens (pct > 0) or closes (pct == 0) a segment-corruption
// window on a peer: while open, each completed download is discarded
// with probability pct/100 as a container checksum failure and
// re-requested. The draws are pure hashes (fault.CorruptDraw), so the
// window consumes no engine randomness.
func (s *swarm) setCorrupt(p *peerState, pct float64) {
	if pct > 0 {
		p.corruptPct = pct
		p.corruptStartAt = s.eng.Now()
		if p.segAttempts == nil {
			p.segAttempts = make(map[int]int)
		}
		s.emit(p.id, -1, trace.CatFault, trace.EvCorrupt,
			trace.Float64("percent", pct))
		return
	}
	p.corruptPct = 0
	p.corruptEndAt = s.eng.Now()
	s.emit(p.id, -1, trace.CatFault, trace.EvCorruptEnd)
}

// setAdversary opens an adversary window on a peer: it misbehaves AS A
// SOURCE per ev.Adversary until the window closes. The flag is sticky
// (adversarial) so collection can exclude the peer's own playback from
// honest-swarm samples. Stale-have/slowloris windows change apparent
// availability (the liar now claims every segment), so every pool is
// refilled — that is the lure.
func (s *swarm) setAdversary(p *peerState, ev fault.Event) {
	p.advKind = ev.Adversary
	p.advPct = ev.Percent
	p.advTrickle = ev.BytesPerSec
	p.advStartAt = s.eng.Now()
	p.adversarial = true
	s.emit(p.id, -1, trace.CatFault, trace.EvAdversary,
		trace.Str("kind", ev.Adversary.String()),
		trace.Float64("percent", ev.Percent),
		trace.Int64("trickle", ev.BytesPerSec))
	s.fillAll()
}

// clearAdversary closes the window: the peer serves honestly again.
// Pending downloads against it still die by serve timeout (the victims
// cannot know the liar reformed), but new requests complete normally.
func (s *swarm) clearAdversary(p *peerState) {
	p.advKind = fault.AdvNone
	p.advPct = 0
	p.advTrickle = 0
	p.advEndAt = s.eng.Now()
	s.emit(p.id, -1, trace.CatFault, trace.EvAdversaryEnd)
	s.fillAll()
}

// setDuplicate opens or closes a duplicated-delivery window. Per-packet
// duplication is below the fluid flow model's granularity — receivers
// in the emulation are trivially idempotent — so the window is traced
// for timeline parity with the real stack (where serveBlock really does
// send every PIECE twice) without behavioral effect here.
func (s *swarm) setDuplicate(p *peerState, on bool) {
	name := trace.EvDuplicateEnd
	if on {
		name = trace.EvDuplicate
	}
	s.emit(p.id, -1, trace.CatFault, name)
}

// setTracker starts or ends a tracker outage. Peers already in the
// swarm keep trading (the tracker is not on the data path); joins and
// rejoins queue up and drain, in arrival order, on recovery.
func (s *swarm) setTracker(down bool) {
	if s.trackerDown == down {
		return
	}
	s.trackerDown = down
	if down {
		s.emit(-1, -1, trace.CatFault, trace.EvTrackerDown)
		return
	}
	s.emit(-1, -1, trace.CatFault, trace.EvTrackerUp)
	q := s.deferred
	s.deferred = nil
	for _, fn := range q {
		fn()
	}
}
