package simpeer

import (
	"reflect"
	"testing"
	"time"

	"p2psplice/internal/fault"
	"p2psplice/internal/splicer"
	"p2psplice/internal/trace"
)

// geTest is a bursty model with a ~5% long-run average loss rate
// (stationary bad fraction p13/(p13+p31) = 1/7; 0.005·6/7 + 0.32/7 ≈ 0.05):
// the same mean loss as the default i.i.d. 5%, concentrated into bursts.
var geTest = fault.GEModel{PGood: 0.005, PBad: 0.32, P13: 0.1, P31: 0.6}

// A burst-loss window produces loss-state transitions in the trace and
// burst_loss stall attribution; every stall stays attributed and the
// swarm still finishes.
func TestBurstLossAttribution(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, time.Minute, 2)
	cfg := baseConfig(96 * 1024)
	cfg.Seed = 3
	cfg.LossRate = 0.005 // matches the GE good state outside the window
	cfg.JoinSpread = 2 * time.Second
	var plans []fault.Plan
	for n := 0; n <= cfg.Leechers; n++ {
		plans = append(plans, fault.BurstLoss(n, 5*time.Second, 80*time.Second, geTest))
	}
	cfg.Faults = fault.Merge(plans...)
	buf := trace.NewBuffer()
	cfg.Tracer = trace.New(buf)
	res, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Samples {
		if !s.Finished {
			t.Errorf("peer %d did not finish through the burst window", s.Peer)
		}
	}
	names := map[string]int{}
	for _, ev := range buf.Events() {
		names[ev.Name]++
	}
	wantN := cfg.Leechers + 1
	if names[trace.EvBurstLoss] != wantN || names[trace.EvBurstLossEnd] != wantN {
		t.Errorf("burst window events = %d start / %d end, want %d / %d",
			names[trace.EvBurstLoss], names[trace.EvBurstLossEnd], wantN, wantN)
	}
	if names[trace.EvLossState] == 0 {
		t.Error("an 80s GE window with mean sojourns of 10s/1.7s fired no loss_state transitions")
	}
	tls := trace.BuildTimeline(buf.Events())
	if un := trace.Unattributed(tls); len(un) > 0 {
		t.Fatalf("%d unattributed stalls under burst loss: %+v", len(un), un)
	}
	causes := map[string]int{}
	for _, tl := range tls {
		for _, st := range tl.Stalls {
			causes[st.Cause]++
		}
	}
	if causes[trace.CauseBurstLoss] == 0 {
		t.Errorf("no burst_loss stalls despite swarm-wide GE windows at 96 kB/s; causes: %v", causes)
	}
}

// A corruption window discards segments as verify failures, the peer
// re-downloads them and still finishes, and stalls inside the window
// attribute to corrupt_segment.
func TestCorruptionDiscardAndAttribution(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, time.Minute, 2)
	cfg := baseConfig(128 * 1024)
	cfg.Seed = 5
	cfg.JoinSpread = 2 * time.Second
	cfg.Faults = fault.Corruption(1, 5*time.Second, 60*time.Second, 50)
	buf := trace.NewBuffer()
	cfg.Tracer = trace.New(buf)
	res, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Samples {
		if !s.Finished {
			t.Errorf("peer %d did not finish through the corruption window", s.Peer)
		}
	}
	fails := 0
	for _, ev := range buf.Events() {
		if ev.Name == trace.EvVerifyFail {
			if ev.Peer != 1 {
				t.Errorf("verify_fail on peer %d; the window covers only peer 1", ev.Peer)
			}
			fails++
		}
	}
	if fails == 0 {
		t.Fatal("a 60s window at 50% corruption discarded nothing")
	}
	tls := trace.BuildTimeline(buf.Events())
	if un := trace.Unattributed(tls); len(un) > 0 {
		t.Fatalf("%d unattributed stalls under corruption: %+v", len(un), un)
	}
	causes := map[string]int{}
	for _, tl := range tls {
		if tl.Peer != 1 {
			continue
		}
		for _, st := range tl.Stalls {
			causes[st.Cause]++
		}
	}
	if causes[trace.CauseCorruptSegment] == 0 {
		t.Errorf("no corrupt_segment stalls on peer 1 despite 50%% discards; causes: %v", causes)
	}
}

// Correlated-impairment plans are part of the deterministic state: two
// identical runs agree bit for bit, results and traces included. The
// corruption draws are pure hashes, so they cannot perturb any other
// randomness.
func TestImpairedRunDeterministic(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, 30*time.Second, 1)
	cfg := baseConfig(128 * 1024)
	cfg.Seed = 9
	cfg.JoinSpread = 2 * time.Second
	cfg.Faults = fault.Merge(
		fault.BurstLoss(1, 4*time.Second, 20*time.Second, geTest),
		fault.BurstLoss(3, 8*time.Second, 15*time.Second, geTest),
		fault.Corruption(2, 6*time.Second, 18*time.Second, 30),
	)
	bufA := trace.NewBuffer()
	a := cfg
	a.Tracer = trace.New(bufA)
	ra, err := RunSwarm(a, segs)
	if err != nil {
		t.Fatal(err)
	}
	bufB := trace.NewBuffer()
	b := cfg
	b.Tracer = trace.New(bufB)
	rb, err := RunSwarm(b, segs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ra, rb) {
		t.Fatal("impaired runs diverge between identical configs")
	}
	if !reflect.DeepEqual(bufA.Events(), bufB.Events()) {
		t.Fatal("impaired run traces diverge between identical configs")
	}
}

// Tracing stays inert under correlated impairments: the same impaired
// run is bit-identical with tracing plus metrics attached and with
// both off. This pins down the loss-state observer (attached in either
// mode) as a pure listener.
func TestImpairmentObserversInert(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, 30*time.Second, 1)
	cfg := baseConfig(128 * 1024)
	cfg.Seed = 9
	cfg.JoinSpread = 2 * time.Second
	cfg.Faults = fault.Merge(
		fault.BurstLoss(1, 4*time.Second, 20*time.Second, geTest),
		fault.Corruption(2, 6*time.Second, 18*time.Second, 30),
	)
	bare, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	obs := cfg
	obs.Tracer = trace.New(trace.NewBuffer())
	obs.Metrics = trace.NewRegistry()
	wired, err := RunSwarm(obs, segs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, wired) {
		t.Fatalf("impaired run diverges when observed:\nbare:  %+v\nwired: %+v", bare, wired)
	}
}
