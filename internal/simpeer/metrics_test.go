package simpeer

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"p2psplice/internal/splicer"
	"p2psplice/internal/trace"
)

// Metrics must be a pure observer, exactly like tracing: the same swarm
// run, with and without a registry attached, produces bit-identical
// results.
func TestMetricsAreInert(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, 30*time.Second, 1)

	plain := baseConfig(192 * 1024)
	plain.Seed = 11
	plain.LossRate = 0.15
	bare, err := RunSwarm(plain, segs)
	if err != nil {
		t.Fatal(err)
	}

	metered := plain
	reg := trace.NewRegistry()
	metered.Metrics = reg
	metered.MetricsScheme = "4s"
	obs, err := RunSwarm(metered, segs)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(bare, obs) {
		t.Fatalf("results diverge with metrics enabled:\nbare:    %+v\nmetered: %+v", bare, obs)
	}
	snap := reg.Snap()
	if len(snap.Hists) == 0 {
		t.Fatal("registry attached but no histograms recorded")
	}
}

// The QoE histograms must agree with the player-reported metrics: one
// startup observation per started peer, and the per-cause stall counts
// summing to the sample stall totals.
func TestMetricsMatchPlaybackSamples(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, time.Minute, 2)
	cfg := baseConfig(128 * 1024)
	cfg.Seed = 7
	reg := trace.NewRegistry()
	cfg.Metrics = reg
	cfg.MetricsScheme = "4s"
	res, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Samples {
		if !s.Finished {
			t.Fatalf("peer %d did not finish; histogram pairing below assumes completion", s.Peer)
		}
	}

	var startupCount, stallCount, segCount, poolCount int64
	var stallSumUS int64
	for _, h := range reg.Snap().Hists {
		switch {
		case h.Name == "sim_startup_seconds":
			startupCount = h.Count
		case strings.HasPrefix(h.Name, "sim_stall_seconds{"):
			stallCount += h.Count
			stallSumUS += h.Sum
		case h.Name == `sim_segment_download_seconds{scheme="4s"}`:
			segCount = h.Count
		case h.Name == "sim_pool_size_k":
			poolCount = h.Count
		}
	}
	if want := int64(len(res.Samples)); startupCount != want {
		t.Errorf("startup observations = %d, want %d (one per finished peer)", startupCount, want)
	}
	wantStalls, wantStallTime := 0, time.Duration(0)
	for _, s := range res.Samples {
		wantStalls += s.Stalls
		wantStallTime += s.TotalStall
	}
	if stallCount != int64(wantStalls) {
		t.Errorf("stall observations = %d, samples report %d", stallCount, wantStalls)
	}
	// Durations agree to microsecond rounding (one rounding per stall).
	if diff := stallSumUS - wantStallTime.Microseconds(); diff > int64(wantStalls) || diff < -int64(wantStalls) {
		t.Errorf("stall seconds sum = %dµs, samples report %dµs", stallSumUS, wantStallTime.Microseconds())
	}
	// Every leecher downloaded every segment once.
	if want := int64(len(res.Samples) * len(segs)); segCount != want {
		t.Errorf("segment observations = %d, want %d", segCount, want)
	}
	if poolCount == 0 {
		t.Error("no pool-size observations")
	}
}
