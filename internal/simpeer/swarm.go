// Package simpeer emulates the paper's experimental swarm: one seeder and N
// leechers on a star topology, exchanging spliced video segments with a
// BitTorrent-like sequential-with-pool strategy while every leecher plays
// the clip. It drives internal/netem with download decisions from
// internal/core policies and measures playback with internal/player.
package simpeer

import (
	"fmt"
	"time"

	"p2psplice/internal/core"
	"p2psplice/internal/fault"
	"p2psplice/internal/metrics"
	"p2psplice/internal/netem"
	"p2psplice/internal/player"
	"p2psplice/internal/reputation"
	"p2psplice/internal/sim"
	"p2psplice/internal/topology"
	"p2psplice/internal/trace"
)

// SegmentMeta is what the swarm needs to know about each segment: its wire
// size and display duration (from the manifest).
type SegmentMeta struct {
	Bytes    int64
	Duration time.Duration
}

// SelectionStrategy picks which wanted segment to request next.
type SelectionStrategy uint8

const (
	// SelectSequential requests the lowest-index wanted segment (the
	// paper's sequential-viewing strategy).
	SelectSequential SelectionStrategy = iota
	// SelectRarestFirst requests, within the next RarestWindow wanted
	// segments, the one with the fewest holders (the BitTorrent default,
	// used as an ablation).
	SelectRarestFirst
)

// CDNAssist configures the hybrid architecture's CDN origin.
type CDNAssist struct {
	// BandwidthBytesPerSec is the CDN's uplink capacity. Must be positive.
	BandwidthBytesPerSec int64
	// AccessDelay is the CDN's one-way delay to the star hub. CDNs are
	// close; zero is typical.
	AccessDelay time.Duration
}

// ChurnModel makes leechers depart mid-swarm (the paper's motivation for
// prefetching: "peers can leave the swarm anytime").
type ChurnModel struct {
	// MeanOnline is the mean exponential online time of a leecher after it
	// joins. Zero disables churn.
	MeanOnline time.Duration
	// MinRemaining stops departures once this many leechers remain.
	MinRemaining int
}

// SwarmConfig configures one emulated run.
type SwarmConfig struct {
	// Seed drives all randomness (join jitter, churn, tie-breaks).
	Seed int64
	// Leechers is the number of downloading viewers. The paper uses 19
	// leechers plus one seeder (twenty nodes).
	Leechers int
	// BandwidthBytesPerSec is every node's symmetric access-link rate (the
	// quantity the paper sweeps).
	BandwidthBytesPerSec int64
	// LeecherBandwidths optionally overrides individual leechers' access
	// rates (heterogeneous swarms; index i configures leecher i+1). Missing
	// or non-positive entries fall back to BandwidthBytesPerSec. The oracle
	// policy input uses each peer's own rate.
	LeecherBandwidths []int64
	// PeerAccessDelay is each leecher's one-way delay to the star hub
	// (peer-to-peer latency is twice this; the paper's 50 ms corresponds
	// to 25 ms).
	PeerAccessDelay time.Duration
	// SeederAccessDelay is the seeder's one-way delay to the hub (475 ms
	// reproduces the paper's 500 ms seeder latency in the startup
	// experiment).
	SeederAccessDelay time.Duration
	// LossRate is the per-access-link packet loss probability (paper: 5%).
	LossRate float64
	// Policy is the download-pooling policy every leecher uses.
	Policy core.Policy
	// OracleBandwidth, when true, feeds the configured link bandwidth into
	// the policy (the paper "simulated the bandwidth on GENI"). When false,
	// leechers estimate bandwidth with an EWMA over completed downloads.
	OracleBandwidth bool
	// InitialBandwidthGuess seeds the EWMA estimator before any download
	// completes (only used when OracleBandwidth is false). Defaults to
	// 64 kB/s.
	InitialBandwidthGuess int64
	// StartThreshold is how many leading segments a player buffers before
	// starting playback. Defaults to 1.
	StartThreshold int
	// ResumeBuffer is the player's rebuffering depth after a stall (see
	// player.Config.ResumeThreshold). Zero resumes on the next segment.
	ResumeBuffer time.Duration
	// JoinSpread staggers leecher joins uniformly over [0, JoinSpread].
	JoinSpread time.Duration
	// MaxUploadsPerPeer caps concurrent uploads per node — BitTorrent-style
	// unchoke slots. Without a cap, every peer's pool lands on the seeder
	// (the only holder of future segments) and the pile-up of TCP flows
	// collapses its uplink. Default 4; set -1 for unlimited (ablation).
	MaxUploadsPerPeer int
	// Selection picks the next segment to request. Default sequential.
	Selection SelectionStrategy
	// RarestWindow bounds rarest-first lookahead (default 8).
	RarestWindow int
	// RelayThreshold is the minimum download progress (fraction of segment
	// bytes received) at which a leecher starts serving that segment to
	// others. This models the BitTorrent-style piece-level exchange of the
	// paper's protocol: a segment is the splicing unit, but transfers move
	// in small pieces, so a peer relays a segment while still fetching it.
	// Without relaying, a swarm of simultaneous sequential viewers
	// degenerates to seeder fan-out (every peer waits on the only full
	// holder). Default 0.1; set DisableRelay for strict store-and-forward.
	RelayThreshold float64
	// DisableRelay forces whole-segment store-and-forward (ablation).
	DisableRelay bool
	// FreshConnectionPerSegment opens a new TCP connection for every
	// segment request (1.5 RTT handshake before the first byte) instead of
	// the default persistent peer connections (0.5 RTT request latency,
	// with slow-start restart after idle still applying). The paper's
	// observation that 2 s segments create "many small TCP connections"
	// is ablated with this flag.
	FreshConnectionPerSegment bool
	// Churn optionally makes leechers depart.
	Churn ChurnModel
	// Faults optionally injects a deterministic schedule of fault events
	// (peer crash/rejoin, link flaps and rate dips, tracker outages,
	// Gilbert–Elliott burst-loss windows, segment-corruption windows),
	// compiled against the sim clock at setup. The plan must validate
	// against the swarm's node count and have closed windows (every crash
	// paired with a rejoin, etc. — see fault.Plan.Validate). An empty plan
	// schedules nothing: the run is bit-identical to one without the
	// fault layer, which the golden tests enforce.
	Faults fault.Plan
	// Reputation optionally enables the deterministic per-peer scoring and
	// quarantine subsystem (internal/reputation): misbehavior observed on
	// downloads — verify failures, serve timeouts, slow serves — demotes
	// and eventually quarantines the offending source, with decay and
	// probation re-admission, and a sole-source escape hatch preserving
	// liveness. Nil (or a disabled config) keeps legacy source selection
	// bit-identical — the inertness tests enforce it.
	Reputation *reputation.Config
	// RetryBackoff optionally replaces the fixed source-retry delay with
	// capped exponential backoff and deterministic jitter (hashed from
	// seed, peer, and attempt — never the engine RNG). The zero value
	// keeps the legacy fixed 250 ms retry, preserving existing goldens.
	RetryBackoff fault.Backoff
	// CDN optionally adds the paper's Section IV hybrid architecture: a
	// CDN node holding every segment. Peers prefer swarm sources and fall
	// back to the CDN, and — per the paper — each client downloads at most
	// one segment at a time from it.
	CDN *CDNAssist
	// CrossTraffic adds this many unbounded background flows between
	// dedicated traffic nodes and random leechers (congestion ablation).
	CrossTraffic int
	// BandwidthSchedule optionally varies every leecher's access bandwidth
	// over time (the paper's variable-bandwidth future work).
	BandwidthSchedule []netem.BandwidthStep
	// Topology optionally supplies per-node link parameters from a
	// declarative spec (the paper's RSpec equivalent): the spec's seeder
	// configures the seeder node and its leechers configure the leechers in
	// declaration order. When set, it overrides Leechers,
	// BandwidthBytesPerSec, LeecherBandwidths, the access delays, and
	// LossRate. Nodes with the traffic role become unbounded cross-traffic
	// sources aimed at successive leechers.
	Topology *topology.Spec
	// Net tunes the TCP model (zero value uses netem defaults).
	Net netem.Config
	// MaxEvents bounds the simulation (0 = default of 20 million).
	MaxEvents int
	// Trace dumps per-download decisions to stdout (debugging aid).
	Trace bool
	// Tracer receives structured events: flow lifecycles, pool-fill
	// decisions with their live Equation-1 inputs, source picks, and
	// playback transitions with attributed stall causes. Tracing is inert:
	// the run is bit-identical with and without it. Nil disables.
	Tracer *trace.Tracer
	// Metrics optionally receives QoE/transport histograms (startup,
	// per-cause stall durations, segment latency and bytes, Eq. 1 pool
	// sizes). Like the Tracer it is a pure observer — the run is
	// bit-identical with and without it (TestMetricsAreInert). Nil
	// disables.
	Metrics *trace.Registry
	// MetricsScheme labels the segment histograms with the splicing
	// scheme under test (e.g. "gop", "4s") so one registry can compare
	// schemes. Empty omits the label.
	MetricsScheme string
	// Series optionally receives windowed virtual-time telemetry (buffer
	// occupancy, in-flight flows, stalled peers, pool targets, segment
	// completions per window — trace.TS* series). Like Tracer and Metrics
	// it is a pure observer: the run is bit-identical with and without it
	// (TestTimeSeriesInert). Nil disables.
	Series *trace.TimeSeries
	// ManifestBytes is the size of the swarm/clip metadata a joining peer
	// fetches from the seeder before requesting segments (the paper: "each
	// peer contacts the seeder and gets different information about the
	// video and the swarm"). Default 4096; this is why the seeder's 500 ms
	// latency shows up in every startup time.
	ManifestBytes int64
}

func (c SwarmConfig) validate() error {
	if c.Topology != nil {
		if err := c.Topology.Validate(); err != nil {
			return err
		}
		if len(c.Topology.Leechers()) == 0 {
			return fmt.Errorf("simpeer: topology has no leechers")
		}
	} else {
		if c.Leechers < 1 {
			return fmt.Errorf("simpeer: need at least 1 leecher, got %d", c.Leechers)
		}
		if c.BandwidthBytesPerSec <= 0 {
			return fmt.Errorf("simpeer: bandwidth must be positive, got %d", c.BandwidthBytesPerSec)
		}
	}
	if c.Policy == nil {
		return fmt.Errorf("simpeer: nil policy")
	}
	if c.LossRate < 0 || c.LossRate >= 1 {
		return fmt.Errorf("simpeer: loss rate %v outside [0, 1)", c.LossRate)
	}
	if c.PeerAccessDelay < 0 || c.SeederAccessDelay < 0 {
		return fmt.Errorf("simpeer: negative access delay")
	}
	if c.CDN != nil {
		if c.CDN.BandwidthBytesPerSec <= 0 {
			return fmt.Errorf("simpeer: CDN bandwidth must be positive, got %d", c.CDN.BandwidthBytesPerSec)
		}
		if c.CDN.AccessDelay < 0 {
			return fmt.Errorf("simpeer: negative CDN access delay")
		}
	}
	return nil
}

// PeerResult is one leecher's outcome.
type PeerResult struct {
	Peer     int
	Departed bool
	// Crashes counts how many times an injected fault took this peer down.
	Crashes int
	// Adversarial marks a peer that ran an injected adversary window at
	// any point: its playback is not a measurement of the honest swarm.
	Adversarial bool
	Metrics     player.Metrics
}

// Result is the outcome of one emulated run.
type Result struct {
	// Samples holds one entry per leecher that stayed in the swarm and
	// never crashed, in peer order. Crashed peers are excluded because a
	// crash window is dead air, not a playback stall.
	Samples []metrics.PlaybackSample
	// Peers holds detailed per-leecher results (departed and crashed
	// peers included).
	Peers []PeerResult
	// EndTime is the virtual time at which the last event fired.
	EndTime time.Duration
	// Departed counts churned-out leechers.
	Departed int
	// Crashed counts leechers that suffered at least one injected crash
	// (and did not also depart).
	Crashed int
	// Adversarial counts leechers excluded from Samples because they ran
	// an adversary window (their playback measures nothing honest).
	Adversarial int
}

// Summary aggregates the non-departed samples.
func (r *Result) Summary() metrics.Summary { return metrics.Summarize(r.Samples) }

// RunSwarm executes one deterministic emulated run.
func RunSwarm(cfg SwarmConfig, segs []SegmentMeta) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("simpeer: no segments")
	}
	for i, s := range segs {
		if s.Bytes <= 0 || s.Duration <= 0 {
			return nil, fmt.Errorf("simpeer: segment %d has non-positive size or duration", i)
		}
	}

	eng := sim.New(cfg.Seed)
	net := netem.New(eng, cfg.Net)
	sw := &swarm{eng: eng, net: net, cfg: cfg, segs: segs,
		sm: newSimMetrics(cfg.Metrics, cfg.MetricsScheme),
		ss: newSimSeries(cfg.Series)}

	if err := sw.setup(); err != nil {
		return nil, err
	}

	maxEvents := cfg.MaxEvents
	if maxEvents <= 0 {
		maxEvents = 20_000_000
	}
	if err := eng.Run(maxEvents); err != nil {
		return nil, fmt.Errorf("simpeer: %w", err)
	}
	if cfg.Tracer.Enabled() {
		sw.emit(-1, -1, trace.CatSim, trace.EvSimSummary,
			trace.Int64("events_fired", sw.eventsFired))
	}

	return sw.collect(), nil
}

// swarm is the run-scoped state.
type swarm struct {
	eng   *sim.Engine
	net   *netem.Network
	cfg   SwarmConfig
	segs  []SegmentMeta
	peers []*peerState // peers[0] is the seeder
	// cdn is the Section IV hybrid origin, or nil. It is not in peers.
	cdn *peerState
	// cross holds background traffic flows; they are cancelled once every
	// leecher has finished downloading so the event queue can drain.
	cross []*netem.Flow
	// sm holds the cached histogram handles (all no-ops when
	// cfg.Metrics is nil), so recording sites never branch.
	sm simMetrics
	// ss holds the cached windowed time-series handles (all no-ops when
	// cfg.Series is nil); stalledNow is the running stalled-peer count
	// its gauge samples. Both are observer-owned: nothing in scheduling
	// reads them.
	ss         simSeries
	stalledNow int
	// nodeToPeer attributes netem flow events to peer IDs; populated only
	// when tracing.
	nodeToPeer map[netem.NodeID]int
	// eventsFired counts engine events; maintained only when tracing.
	eventsFired int64
	// trackerDown marks an injected tracker outage: joins and rejoins
	// defer into the queue below until recovery drains it.
	trackerDown bool
	deferred    []func()
	// rep is the per-peer reputation table, or nil when the subsystem is
	// disabled (the legacy-selection path).
	rep *reputation.Table[int]
}

// nodePlan resolves the per-node link parameters, either from the scalar
// config fields or from the declarative topology spec.
func (s *swarm) nodePlan() (seeder netem.NodeConfig, leechers, traffic []netem.NodeConfig, err error) {
	if s.cfg.Topology != nil {
		return s.cfg.Topology.ResolvedByRole()
	}
	seeder = netem.NodeConfig{
		UplinkBytesPerSec:   s.cfg.BandwidthBytesPerSec,
		DownlinkBytesPerSec: s.cfg.BandwidthBytesPerSec,
		AccessDelay:         s.cfg.SeederAccessDelay,
		LossRate:            s.cfg.LossRate,
	}
	for i := 0; i < s.cfg.Leechers; i++ {
		rate := s.cfg.BandwidthBytesPerSec
		if i < len(s.cfg.LeecherBandwidths) && s.cfg.LeecherBandwidths[i] > 0 {
			rate = s.cfg.LeecherBandwidths[i]
		}
		leechers = append(leechers, netem.NodeConfig{
			UplinkBytesPerSec:   rate,
			DownlinkBytesPerSec: rate,
			AccessDelay:         s.cfg.PeerAccessDelay,
			LossRate:            s.cfg.LossRate,
		})
	}
	for i := 0; i < s.cfg.CrossTraffic; i++ {
		traffic = append(traffic, netem.NodeConfig{
			UplinkBytesPerSec:   s.cfg.BandwidthBytesPerSec,
			DownlinkBytesPerSec: s.cfg.BandwidthBytesPerSec,
			AccessDelay:         s.cfg.PeerAccessDelay,
		})
	}
	return seeder, leechers, traffic, nil
}

func (s *swarm) setup() error {
	if s.cfg.Reputation != nil && s.cfg.Reputation.Enabled() {
		s.rep = reputation.NewTable[int](*s.cfg.Reputation)
	}
	if s.cfg.Tracer.Enabled() || s.cfg.Metrics != nil {
		// Pure listeners: they observe without feeding anything back into
		// the simulation. The loss-state observer (and the node→peer map
		// it needs) also serves metrics-only runs, because per-cause stall
		// histograms attribute retroactive stalls to burst windows.
		s.nodeToPeer = make(map[netem.NodeID]int)
		s.net.SetLossStateObserver(s.onLossState)
	}
	if s.cfg.Tracer.Enabled() {
		s.eng.SetFireObserver(func(time.Duration) { s.eventsFired++ })
		s.net.SetFlowObserver(s.onFlowEvent)
	}
	seederNC, leecherNCs, trafficNCs, err := s.nodePlan()
	if err != nil {
		return err
	}
	seederNode, err := s.net.AddNode(seederNC)
	if err != nil {
		return err
	}
	if s.nodeToPeer != nil {
		s.nodeToPeer[seederNode] = 0
	}
	seeder := &peerState{
		id: 0, node: seederNode, isSeeder: true,
		have:      make([]bool, len(s.segs)),
		uploading: make(map[int]int),
	}
	for i := range seeder.have {
		seeder.have[i] = true
	}
	seeder.haveCount = len(s.segs)
	s.peers = append(s.peers, seeder)

	if s.cfg.CDN != nil {
		cdnNode, err := s.net.AddNode(netem.NodeConfig{
			UplinkBytesPerSec:   s.cfg.CDN.BandwidthBytesPerSec,
			DownlinkBytesPerSec: s.cfg.CDN.BandwidthBytesPerSec,
			AccessDelay:         s.cfg.CDN.AccessDelay,
		})
		if err != nil {
			return err
		}
		if s.nodeToPeer != nil {
			s.nodeToPeer[cdnNode] = -1
		}
		cdn := &peerState{
			id: -1, node: cdnNode, isSeeder: true, isCDN: true,
			have:      make([]bool, len(s.segs)),
			uploading: make(map[int]int),
		}
		for i := range cdn.have {
			cdn.have[i] = true
		}
		cdn.haveCount = len(s.segs)
		// The CDN is tracked outside s.peers: peers[0] must stay the seeder
		// and peers[1:] the leechers for metric collection and churn.
		s.cdn = cdn
	}

	durations := make([]time.Duration, len(s.segs))
	for i, sg := range s.segs {
		durations[i] = sg.Duration
	}

	guess := s.cfg.InitialBandwidthGuess
	if guess <= 0 {
		guess = 64 * 1024
	}

	for i := 1; i <= len(leecherNCs); i++ {
		nc := leecherNCs[i-1]
		rate := nc.DownlinkBytesPerSec
		node, err := s.net.AddNode(nc)
		if err != nil {
			return err
		}
		if s.nodeToPeer != nil {
			s.nodeToPeer[node] = i
		}
		pl, err := player.New(player.Config{
			SegmentDurations: durations,
			StartThreshold:   s.cfg.StartThreshold,
			ResumeThreshold:  s.cfg.ResumeBuffer,
		})
		if err != nil {
			return err
		}
		est, err := core.NewBandwidthEstimator(core.DefaultEWMAAlpha)
		if err != nil {
			return err
		}
		p := &peerState{
			id:        i,
			rate:      rate,
			node:      node,
			have:      make([]bool, len(s.segs)),
			player:    pl,
			inFlight:  make(map[int]*download),
			uploading: make(map[int]int),
			// Pre-allocated (not lazily, as setCorrupt does) because any
			// peer can become the victim of an adversarial source and needs
			// per-segment attempt counters for its pollution draws.
			segAttempts: make(map[int]int),
			est:         est,
			estGuess:    guess,
		}
		s.peers = append(s.peers, p)

		var join time.Duration
		if s.cfg.JoinSpread > 0 {
			join = time.Duration(s.eng.RNG().Int63n(int64(s.cfg.JoinSpread)))
		}
		s.eng.At(join, func() { s.join(p) })

		if len(s.cfg.BandwidthSchedule) > 0 {
			if err := s.net.ScheduleBandwidth(node, s.cfg.BandwidthSchedule); err != nil {
				return err
			}
		}
	}

	// Cross traffic: unbounded flows from dedicated nodes into leechers.
	for _, nc := range trafficNCs {
		src, err := s.net.AddNode(nc)
		if err != nil {
			return err
		}
		dst := s.peers[1+s.eng.RNG().Intn(len(leecherNCs))].node
		f, err := s.net.StartTransfer(src, dst, 0, netem.TransferOptions{Unbounded: true}, nil)
		if err != nil {
			return err
		}
		s.cross = append(s.cross, f)
	}
	return s.compileFaults()
}

// join starts a leecher: the viewer presses play, the peer fetches the
// manifest from the seeder, and then downloading begins.
func (s *swarm) join(p *peerState) {
	if s.trackerDown {
		// No tracker, no swarm entry: the join completes when the outage
		// ends (tracker-up drains the queue in arrival order).
		s.deferred = append(s.deferred, func() { s.join(p) })
		return
	}
	p.joined = s.eng.Now()
	if s.cfg.Tracer.Enabled() || s.cfg.Metrics != nil || s.cfg.Series != nil {
		// The observer feeds the trace stream, the QoE histograms, and the
		// windowed time series; any consumer alone needs it attached.
		p.player.SetObserver(func(tr player.Transition) { s.onPlayerTransition(p, tr) })
	}
	if err := p.player.Start(s.eng.Now()); err != nil {
		panic(fmt.Sprintf("simpeer: start player: %v", err)) // unreachable by construction
	}
	if s.cfg.Churn.MeanOnline > 0 {
		online := time.Duration(s.eng.RNG().ExpFloat64() * float64(s.cfg.Churn.MeanOnline))
		s.eng.Schedule(online, func() { s.depart(p) })
	}
	manifest := s.cfg.ManifestBytes
	if manifest <= 0 {
		manifest = 4096
	}
	if _, err := s.net.StartTransfer(s.peers[0].node, p.node, manifest, netem.TransferOptions{},
		func(*netem.Flow) {
			if !p.departed {
				s.fill(p)
			}
		}); err != nil {
		panic("simpeer: fetch manifest: " + err.Error()) // unreachable
	}
}

// depart removes a leecher from the swarm (churn).
func (s *swarm) depart(p *peerState) {
	if p.departed || p.isSeeder {
		return
	}
	remaining := 0
	for _, q := range s.peers[1:] {
		if !q.departed {
			remaining++
		}
	}
	if remaining <= s.cfg.Churn.MinRemaining {
		return
	}
	p.departed = true
	s.cancelPeerFlows(p)
	s.fillAll()
}

// cancelPeerFlows severs a peer from the swarm's data plane: its own
// downloads and every upload it was serving are cancelled, returning
// the affected segments to their requesters' pools immediately (no
// timeout wait). Shared by departure (churn) and crash (fault plan).
func (s *swarm) cancelPeerFlows(p *peerState) {
	// Abort this peer's downloads, returning the upload slots it held.
	// Iterate in sorted key order: map order is randomized and cancellation
	// order influences event sequencing, which must stay deterministic.
	for _, idx := range sortedKeys(p.inFlight) {
		d := p.inFlight[idx]
		if d.flow != nil { // pending adversary serves have no flow
			d.flow.Cancel()
		}
		d.src.uploads--
		d.src.uploading[idx]--
		delete(p.inFlight, idx)
	}
	// Abort uploads served by this peer: every other leecher loses any
	// in-flight download sourced here and will re-request elsewhere.
	s.cancelUploadsFrom(p)
}

// cancelUploadsFrom aborts every in-flight download sourced from p,
// returning the affected segments to their requesters' pools. Shared by
// crash/departure teardown and quarantine enforcement (a just-
// quarantined source should not keep serving what selectors would no
// longer assign it).
func (s *swarm) cancelUploadsFrom(p *peerState) {
	for _, q := range s.peers[1:] {
		if q == p || q.departed {
			continue
		}
		for _, idx := range sortedKeys(q.inFlight) {
			d := q.inFlight[idx]
			if d.src == p {
				if d.flow != nil {
					d.flow.Cancel()
				}
				delete(q.inFlight, idx)
				p.uploads--
				p.uploading[idx]--
			}
		}
	}
}

// fillAll re-runs the scheduling decision for every active leecher, in peer
// order for determinism.
func (s *swarm) fillAll() {
	for _, p := range s.peers[1:] {
		if !p.departed {
			s.fill(p)
		}
	}
}

// collect snapshots the final metrics. Playback can outlive the last network
// event (buffer draining), so metrics are taken far enough in the future for
// every finished download to have played out.
func (s *swarm) collect() *Result {
	end := s.eng.Now()
	var clip time.Duration
	for _, sg := range s.segs {
		clip += sg.Duration
	}
	horizon := end + clip + time.Second
	res := &Result{EndTime: end}
	for _, p := range s.peers[1:] {
		m := p.player.Metrics(horizon)
		res.Peers = append(res.Peers, PeerResult{Peer: p.id, Departed: p.departed, Crashes: p.crashes, Adversarial: p.adversarial, Metrics: m})
		if p.departed {
			res.Departed++
			continue
		}
		if p.crashes > 0 {
			res.Crashed++
			continue
		}
		if p.adversarial {
			// An adversary's own playback measures nothing about the honest
			// swarm (it may even be self-sabotaged); keep it out of Samples.
			res.Adversarial++
			continue
		}
		res.Samples = append(res.Samples, metrics.PlaybackSample{
			Peer:       p.id,
			Startup:    m.StartupTime,
			Stalls:     m.Stalls,
			TotalStall: m.TotalStall,
			Finished:   m.State == player.StateFinished,
		})
	}
	return res
}
