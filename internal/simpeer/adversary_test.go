package simpeer

import (
	"reflect"
	"testing"
	"time"

	"p2psplice/internal/fault"
	"p2psplice/internal/reputation"
	"p2psplice/internal/splicer"
	"p2psplice/internal/trace"
)

// repDefault returns a pointer to the default reputation config (the
// SwarmConfig field is a pointer so nil means "subsystem absent").
func repDefault() *reputation.Config {
	cfg := reputation.Default()
	return &cfg
}

// A wired-but-disabled reputation config (zero value: QuarantineScore 0)
// leaves the run bit-identical to one with no reputation at all: the
// selection passes, the discard path, and stall attribution all gate on
// the table being live, not merely configured.
func TestReputationDisabledConfigInert(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, 30*time.Second, 1)
	cfg := baseConfig(128 * 1024)
	cfg.Seed = 7
	bare, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	wired := cfg
	wired.Reputation = &reputation.Config{}
	got, err := RunSwarm(wired, segs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, got) {
		t.Fatalf("disabled reputation config perturbs the run:\nbare:  %+v\nwired: %+v", bare, got)
	}
}

// adversaryMixConfig builds the shared scenario for the determinism and
// observer-inertness tests: three adversary kinds at once (polluter,
// stale-have liar, slowloris) with reputation on, one honest leecher.
func adversaryMixConfig(t *testing.T) (SwarmConfig, []SegmentMeta) {
	t.Helper()
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, 30*time.Second, 1)
	cfg := baseConfig(128 * 1024)
	cfg.Seed = 11
	cfg.JoinSpread = 2 * time.Second
	cfg.Reputation = repDefault()
	cfg.Faults = fault.Merge(
		fault.Polluter(1, 3*time.Second, 90*time.Second, 60),
		fault.StaleHaveLiar(2, 5*time.Second, 90*time.Second),
		fault.Slowloris(3, 4*time.Second, 90*time.Second, 1024),
	)
	return cfg, segs
}

// Adversary plans and the reputation subsystem are part of the
// deterministic state: two identical runs agree bit for bit, results and
// traces included. The pollution draws are pure hashes, so they cannot
// perturb any other randomness.
func TestAdversaryRunDeterministic(t *testing.T) {
	cfg, segs := adversaryMixConfig(t)
	bufA := trace.NewBuffer()
	a := cfg
	a.Tracer = trace.New(bufA)
	ra, err := RunSwarm(a, segs)
	if err != nil {
		t.Fatal(err)
	}
	bufB := trace.NewBuffer()
	b := cfg
	b.Tracer = trace.New(bufB)
	rb, err := RunSwarm(b, segs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ra, rb) {
		t.Fatal("adversarial runs diverge between identical configs")
	}
	if !reflect.DeepEqual(bufA.Events(), bufB.Events()) {
		t.Fatal("adversarial run traces diverge between identical configs")
	}
}

// Tracing and metrics stay inert under adversaries and reputation: the
// same run is bit-identical with both observers attached and with both
// off. This pins the CatRep emits and counters as pure listeners —
// quarantine enforcement itself must not depend on a tracer being wired.
func TestAdversaryObserversInert(t *testing.T) {
	cfg, segs := adversaryMixConfig(t)
	bare, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	obs := cfg
	obs.Tracer = trace.New(trace.NewBuffer())
	obs.Metrics = trace.NewRegistry()
	wired, err := RunSwarm(obs, segs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, wired) {
		t.Fatalf("adversarial run diverges when observed:\nbare:  %+v\nwired: %+v", bare, wired)
	}
}

// A stale-have liar lures requests it never serves: victims reap them by
// serve timeout, the reputation table quarantines the liar, honest peers
// still finish, and every stall stays attributed.
func TestStaleHaveLiarQuarantineAndAttribution(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, time.Minute, 2)
	cfg := baseConfig(96 * 1024)
	cfg.Seed = 3
	cfg.JoinSpread = 2 * time.Second
	cfg.Reputation = repDefault()
	cfg.Faults = fault.StaleHaveLiar(1, 2*time.Second, 3*time.Minute)
	buf := trace.NewBuffer()
	cfg.Tracer = trace.New(buf)
	res, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Adversarial != 1 {
		t.Fatalf("Adversarial = %d, want 1", res.Adversarial)
	}
	if len(res.Samples) != cfg.Leechers-1 {
		t.Fatalf("got %d honest samples, want %d", len(res.Samples), cfg.Leechers-1)
	}
	for _, s := range res.Samples {
		if !s.Finished {
			t.Errorf("honest peer %d did not finish despite the liar being quarantinable", s.Peer)
		}
	}
	names := map[string]int{}
	quarantinedPeers := map[int]bool{}
	for _, ev := range buf.Events() {
		names[ev.Name]++
		if ev.Name == trace.EvQuarantine {
			quarantinedPeers[ev.Peer] = true
		}
	}
	if names[trace.EvServeTimeout] == 0 {
		t.Error("a stale-have window produced no serve timeouts")
	}
	if names[trace.EvRepPenalty] == 0 {
		t.Error("serve timeouts produced no reputation penalties")
	}
	if names[trace.EvQuarantine] == 0 || !quarantinedPeers[1] {
		t.Errorf("liar (peer 1) was never quarantined; quarantine events on %v", quarantinedPeers)
	}
	tls := trace.BuildTimeline(buf.Events())
	if un := trace.Unattributed(tls); len(un) > 0 {
		t.Fatalf("%d unattributed stalls under a stale-have liar: %+v", len(un), un)
	}
}

// With every other leecher a persistent corrupter, the one honest leecher
// still finishes: reputation quarantines the corrupters after a bounded
// number of poisoned serves and the honest seeder carries the swarm.
// Graceful degradation, not collapse.
func TestAllOtherLeechersAdversarialLiveness(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, time.Minute, 2)
	cfg := baseConfig(96 * 1024)
	cfg.Seed = 5
	cfg.JoinSpread = 2 * time.Second
	cfg.Reputation = repDefault()
	cfg.Faults = fault.Merge(
		fault.Corrupter(2, time.Second, 5*time.Minute),
		fault.Corrupter(3, time.Second, 5*time.Minute),
		fault.Corrupter(4, time.Second, 5*time.Minute),
	)
	buf := trace.NewBuffer()
	cfg.Tracer = trace.New(buf)
	res, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Adversarial != 3 {
		t.Fatalf("Adversarial = %d, want 3", res.Adversarial)
	}
	if len(res.Samples) != 1 {
		t.Fatalf("got %d honest samples, want 1", len(res.Samples))
	}
	if !res.Samples[0].Finished {
		t.Fatal("the honest peer did not finish with every other leecher a corrupter")
	}
	tls := trace.BuildTimeline(buf.Events())
	if un := trace.Unattributed(tls); len(un) > 0 {
		t.Fatalf("%d unattributed stalls in the mostly-adversarial swarm: %+v", len(un), un)
	}
}

// Sole-source escape hatch: a single leecher whose only source — the
// seeder — is a polluter. The seeder gets quarantined, yet the run must
// still complete (the second selection pass re-admits it), with stalls
// during the quarantine windows attributed to peer_quarantined.
func TestSoleSourceEscapeHatch(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, 30*time.Second, 1)
	cfg := baseConfig(128 * 1024)
	cfg.Seed = 5
	cfg.Leechers = 1
	cfg.Reputation = repDefault()
	cfg.Faults = fault.Polluter(0, time.Second, 10*time.Minute, 60)
	buf := trace.NewBuffer()
	cfg.Tracer = trace.New(buf)
	res, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 1 {
		t.Fatalf("got %d samples, want 1", len(res.Samples))
	}
	if !res.Samples[0].Finished {
		t.Fatal("viewer did not finish off a quarantined sole source — escape hatch broken")
	}
	quarantines := 0
	for _, ev := range buf.Events() {
		if ev.Name == trace.EvQuarantine {
			if ev.Peer != 0 {
				t.Errorf("quarantine on peer %d; only the seeder misbehaves", ev.Peer)
			}
			quarantines++
		}
	}
	if quarantines == 0 {
		t.Fatal("a 60% polluting sole source was never quarantined")
	}
	tls := trace.BuildTimeline(buf.Events())
	if un := trace.Unattributed(tls); len(un) > 0 {
		t.Fatalf("%d unattributed stalls under a quarantined sole source: %+v", len(un), un)
	}
	causes := map[string]int{}
	for _, tl := range tls {
		for _, st := range tl.Stalls {
			causes[st.Cause]++
		}
	}
	if causes[trace.CausePeerQuarantined] == 0 {
		t.Errorf("no peer_quarantined stalls despite escape-hatch downloads; causes: %v", causes)
	}
}
