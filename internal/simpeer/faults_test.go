package simpeer

import (
	"reflect"
	"testing"
	"time"

	"p2psplice/internal/fault"
	"p2psplice/internal/splicer"
	"p2psplice/internal/trace"
)

// An explicitly wired empty plan (and zero backoff) must be bit-identical
// to a run without the fault layer at all.
func TestEmptyFaultPlanIsInert(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, 30*time.Second, 1)
	plain := baseConfig(192 * 1024)
	plain.Seed = 11
	plain.LossRate = 0.15
	bare, err := RunSwarm(plain, segs)
	if err != nil {
		t.Fatal(err)
	}
	wired := plain
	wired.Faults = fault.Plan{}
	wired.RetryBackoff = fault.Backoff{}
	obs, err := RunSwarm(wired, segs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, obs) {
		t.Fatalf("results diverge with an empty fault plan wired in:\nbare:  %+v\nwired: %+v", bare, obs)
	}
}

// A mid-stream crash must return the crashed peer's in-flight segments to
// the pool immediately; the survivors finish, the crashed peer rejoins
// with its store intact and finishes too, but is excluded from Samples.
func TestPeerCrashAndRejoin(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, 30*time.Second, 1)
	cfg := baseConfig(256 * 1024)
	cfg.JoinSpread = 2 * time.Second
	cfg.Faults = fault.Merge(
		Plan2CrashRejoin(2, 8*time.Second, 14*time.Second),
	)
	buf := trace.NewBuffer()
	cfg.Tracer = trace.New(buf)
	res, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed != 1 {
		t.Fatalf("Crashed = %d, want 1", res.Crashed)
	}
	if len(res.Samples) != cfg.Leechers-1 {
		t.Fatalf("got %d samples, want %d (crashed peer excluded)", len(res.Samples), cfg.Leechers-1)
	}
	for _, s := range res.Samples {
		if s.Peer == 2 {
			t.Fatal("crashed peer 2 appears in Samples")
		}
		if !s.Finished {
			t.Errorf("survivor peer %d did not finish through the crash", s.Peer)
		}
	}
	var crashed *PeerResult
	for i := range res.Peers {
		if res.Peers[i].Peer == 2 {
			crashed = &res.Peers[i]
		}
	}
	if crashed == nil || crashed.Crashes != 1 {
		t.Fatalf("peer 2 result %+v, want Crashes=1", crashed)
	}
	names := map[string]int{}
	for _, ev := range buf.Events() {
		names[ev.Name]++
	}
	if names[trace.EvPeerCrash] != 1 || names[trace.EvPeerRejoin] != 1 {
		t.Errorf("crash/rejoin events = %d/%d, want 1/1", names[trace.EvPeerCrash], names[trace.EvPeerRejoin])
	}
	if names[trace.EvFlowCancel] == 0 {
		t.Error("a crash mid-download should cancel flows; no flow_cancel events")
	}
}

// Plan2CrashRejoin builds a crash/rejoin pair for one node (test helper
// kept exported-free of init-order issues).
func Plan2CrashRejoin(node int, down, up time.Duration) fault.Plan {
	return fault.Plan{Events: []fault.Event{
		{At: down, Kind: fault.KindPeerCrash, Node: node},
		{At: up, Kind: fault.KindPeerRejoin, Node: node},
	}}
}

// The swarm survives a seeder outage: peers that already hold segments
// serve the rest, and downloads blocked on seeder-only segments resume
// on rejoin. Everyone finishes.
func TestSeederOutageSurvived(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, 30*time.Second, 1)
	cfg := baseConfig(256 * 1024)
	cfg.JoinSpread = 2 * time.Second
	cfg.Faults = fault.SeederOutage(10*time.Second, 8*time.Second)
	res, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	// The seeder is not a leecher: its crash must not shrink Samples.
	if len(res.Samples) != cfg.Leechers {
		t.Fatalf("got %d samples, want %d", len(res.Samples), cfg.Leechers)
	}
	if res.Crashed != 0 {
		t.Fatalf("Crashed = %d, want 0 (only the seeder crashed)", res.Crashed)
	}
	for _, s := range res.Samples {
		if !s.Finished {
			t.Errorf("peer %d did not finish through the seeder outage", s.Peer)
		}
	}
}

// Joins arriving during a tracker outage defer until recovery, then the
// swarm proceeds normally.
func TestTrackerOutageDefersJoins(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, 30*time.Second, 1)
	cfg := baseConfig(256 * 1024)
	cfg.JoinSpread = 2 * time.Second // all joins land inside the outage
	cfg.Faults = fault.TrackerOutage(0, 5*time.Second)
	buf := trace.NewBuffer()
	cfg.Tracer = trace.New(buf)
	res, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != cfg.Leechers {
		t.Fatalf("got %d samples, want %d", len(res.Samples), cfg.Leechers)
	}
	for _, s := range res.Samples {
		if !s.Finished {
			t.Errorf("peer %d did not finish after the deferred join", s.Peer)
		}
	}
	// No peer can have joined (started playing) before the outage ended.
	for _, ev := range buf.Events() {
		if ev.Name == trace.EvStartup && ev.At < 5*time.Second {
			t.Errorf("peer %d started at %v, inside the tracker outage", ev.Peer, ev.At)
		}
	}
}

// A seeded fault plan is part of the deterministic state: two runs with
// the same config produce identical results, traces included.
func TestFaultedRunDeterministic(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, 30*time.Second, 1)
	cfg := baseConfig(192 * 1024)
	cfg.JoinSpread = 2 * time.Second
	cfg.Faults = fault.Merge(
		fault.Churn(cfg.Seed, []int{1, 3}, time.Minute, 15*time.Second, 4*time.Second),
		fault.SeederOutage(12*time.Second, 5*time.Second),
		fault.LinkFlap(2, 6*time.Second, 4*time.Second),
	)
	cfg.RetryBackoff = fault.Backoff{Base: 200 * time.Millisecond, Cap: 2 * time.Second, JitterFrac: 0.5}
	bufA := trace.NewBuffer()
	a := cfg
	a.Tracer = trace.New(bufA)
	ra, err := RunSwarm(a, segs)
	if err != nil {
		t.Fatal(err)
	}
	bufB := trace.NewBuffer()
	b := cfg
	b.Tracer = trace.New(bufB)
	rb, err := RunSwarm(b, segs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ra, rb) {
		t.Fatal("faulted runs diverge between identical configs")
	}
	if !reflect.DeepEqual(bufA.Events(), bufB.Events()) {
		t.Fatal("faulted run traces diverge between identical configs")
	}
}

// Every stall in a heavily-faulted run carries a cause, and the
// fault-derived causes actually appear.
func TestFaultedStallAttribution(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, time.Minute, 2)
	cfg := baseConfig(128 * 1024)
	cfg.Seed = 7
	cfg.JoinSpread = 2 * time.Second
	cfg.Faults = fault.Merge(
		// Seeder outage with the tracker also down: sourceless stalls
		// during the overlap attribute to the tracker (the binding
		// constraint on rediscovery), afterwards to the crashed seeder.
		fault.SeederOutage(10*time.Second, 20*time.Second),
		fault.TrackerOutage(10*time.Second, 8*time.Second),
		// A mid-download link flap on leecher 2.
		fault.LinkFlap(2, 35*time.Second, 6*time.Second),
	)
	buf := trace.NewBuffer()
	cfg.Tracer = trace.New(buf)
	if _, err := RunSwarm(cfg, segs); err != nil {
		t.Fatal(err)
	}
	tls := trace.BuildTimeline(buf.Events())
	if un := trace.Unattributed(tls); len(un) > 0 {
		t.Fatalf("%d unattributed stalls under faults: %+v", len(un), un)
	}
	causes := map[string]int{}
	stalls := 0
	for _, tl := range tls {
		for _, st := range tl.Stalls {
			causes[st.Cause]++
			stalls++
		}
	}
	if stalls == 0 {
		t.Fatal("a 20s seeder outage at 128 kB/s must stall someone")
	}
	if causes[trace.CausePeerCrash] == 0 && causes[trace.CauseTrackerDown] == 0 {
		t.Errorf("no peer_crash or tracker_down stalls despite a 20s seeder outage; causes: %v", causes)
	}
	if causes[trace.CauseLinkDown] == 0 {
		t.Logf("note: no link_down stalls at this seed (flap was masked); causes: %v", causes)
	}
}

// A peer whose own link flaps mid-download attributes its stalls to the
// link, and finishes once the link returns.
func TestLinkFlapAttributionAndRecovery(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, 30*time.Second, 1)
	cfg := baseConfig(96 * 1024)
	cfg.Leechers = 2
	cfg.JoinSpread = time.Second
	cfg.Faults = fault.LinkFlap(1, 8*time.Second, 10*time.Second)
	buf := trace.NewBuffer()
	cfg.Tracer = trace.New(buf)
	res, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Samples {
		if !s.Finished {
			t.Errorf("peer %d did not finish after the link flap", s.Peer)
		}
	}
	tls := trace.BuildTimeline(buf.Events())
	if un := trace.Unattributed(tls); len(un) > 0 {
		t.Fatalf("%d unattributed stalls: %+v", len(un), un)
	}
	linkDown := 0
	for _, tl := range tls {
		if tl.Peer != 1 {
			continue
		}
		for _, st := range tl.Stalls {
			if st.Cause == trace.CauseLinkDown {
				linkDown++
			}
		}
	}
	if linkDown == 0 {
		t.Error("a 10s link outage at 96 kB/s must produce a link_down stall on peer 1")
	}
	names := map[string]int{}
	for _, ev := range buf.Events() {
		names[ev.Name]++
	}
	if names[trace.EvLinkDown] != 1 || names[trace.EvLinkUp] != 1 {
		t.Errorf("link events = %d down / %d up, want 1 / 1", names[trace.EvLinkDown], names[trace.EvLinkUp])
	}
}

// Satellite: a leecher departing mid-transfer (churn) must cancel its
// flows — both directions — and the remaining swarm finishes.
func TestDepartWhileDownloading(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, time.Minute, 3)
	cfg := baseConfig(128 * 1024)
	cfg.Leechers = 5
	cfg.JoinSpread = 2 * time.Second
	cfg.Churn = ChurnModel{MeanOnline: 20 * time.Second, MinRemaining: 2}
	buf := trace.NewBuffer()
	cfg.Tracer = trace.New(buf)
	res, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Departed == 0 {
		t.Fatal("mean-20s churn over a 1-minute clip produced no departures at this seed; pick another seed")
	}
	if len(res.Samples)+res.Departed != cfg.Leechers {
		t.Fatalf("samples (%d) + departed (%d) != leechers (%d)", len(res.Samples), res.Departed, cfg.Leechers)
	}
	for _, s := range res.Samples {
		if !s.Finished {
			t.Errorf("survivor peer %d did not finish after departures", s.Peer)
		}
	}
	cancels := 0
	for _, ev := range buf.Events() {
		if ev.Name == trace.EvFlowCancel {
			cancels++
		}
	}
	if cancels == 0 {
		t.Error("departures in a busy swarm should cancel in-flight flows; no flow_cancel events")
	}
}

// An invalid plan is rejected before the run starts.
func TestInvalidPlanRejected(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, 30*time.Second, 1)
	cfg := baseConfig(256 * 1024)
	cfg.Faults = fault.Plan{Events: []fault.Event{
		{At: time.Second, Kind: fault.KindPeerCrash, Node: 1}, // never rejoins
	}}
	if _, err := RunSwarm(cfg, segs); err == nil {
		t.Fatal("RunSwarm accepted a plan with an unclosed crash window")
	}
	cfg.Faults = fault.SeederOutage(0, time.Second)
	cfg.Faults.Events[0].Node = 99
	cfg.Faults.Events[1].Node = 99
	if _, err := RunSwarm(cfg, segs); err == nil {
		t.Fatal("RunSwarm accepted a plan addressing a nonexistent node")
	}
}

// Backoff-enabled retries still converge: a swarm with aggressive churn
// and exponential retry backoff completes for the survivors.
func TestBackoffRetryCompletes(t *testing.T) {
	segs := segmentsFor(t, splicer.DurationSplicer{Target: 4 * time.Second}, 30*time.Second, 1)
	cfg := baseConfig(192 * 1024)
	cfg.JoinSpread = 2 * time.Second
	cfg.Faults = fault.Churn(cfg.Seed, []int{1, 3}, 40*time.Second, 12*time.Second, 3*time.Second)
	cfg.RetryBackoff = fault.Backoff{Base: 200 * time.Millisecond, Cap: 2 * time.Second, JitterFrac: 0.5}
	res, err := RunSwarm(cfg, segs)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Samples {
		if !s.Finished {
			t.Errorf("never-crashed peer %d did not finish under churn with backoff", s.Peer)
		}
	}
}
