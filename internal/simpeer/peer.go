package simpeer

import (
	"fmt"
	"sort"
	"time"

	"p2psplice/internal/core"
	"p2psplice/internal/fault"
	"p2psplice/internal/netem"
	"p2psplice/internal/player"
	"p2psplice/internal/reputation"
	"p2psplice/internal/trace"
)

// sortedKeys returns the map's keys in ascending order for deterministic
// iteration.
func sortedKeys(m map[int]*download) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// peerState is one node's swarm state (seeder or leecher).
type peerState struct {
	id       int
	rate     int64 // configured access rate (oracle policy input)
	node     netem.NodeID
	isSeeder bool
	isCDN    bool

	have      []bool
	haveCount int

	// Leecher-only fields.
	player   *player.Player
	inFlight map[int]*download // segment index -> active download
	uploads  int               // concurrent uploads this node serves
	est      *core.BandwidthEstimator
	estGuess int64
	joined   time.Duration
	departed bool

	// Crash state (fault plans only). A crashed peer keeps its segment
	// store across rejoin (process-restart model) but serves and fetches
	// nothing while down. lastCrashAt/rejoinedAt bound the most recent
	// outage so retroactively-observed player stalls inside the window
	// attribute to the crash.
	crashed     bool
	crashes     int
	lastCrashAt time.Duration
	rejoinedAt  time.Duration
	// Link-flap window bounds, kept for the same retroactive stall
	// attribution (netem owns the live down/up flag).
	linkDowns      int
	lastLinkDownAt time.Duration
	linkUpAt       time.Duration
	// Corruption window state (fault plans only). corruptPct > 0 while a
	// window is open on this peer; the bounds and discard counters give
	// retroactively-observed stalls inside the window their cause.
	corruptPct      float64
	corruptStartAt  time.Duration
	corruptEndAt    time.Duration
	corruptDiscards int
	lastDiscardAt   time.Duration
	// segAttempts counts download attempts per segment so every retry of
	// a discarded segment gets a fresh deterministic corruption draw
	// (a fixed per-segment draw would livelock at high percentages).
	segAttempts map[int]int
	// Adversary window state (fault plans only). advKind != AdvNone while
	// a window is open on this peer — misbehavior AS A SOURCE: corrupter
	// and polluter serves fail verification at the requester, stale-have
	// and slowloris serves hang as pending downloads until the serve
	// timeout. adversarial is sticky so collection can exclude the peer's
	// own playback from honest-swarm samples.
	advKind     fault.AdversaryKind
	advPct      float64 // polluter corruption probability, percent
	advTrickle  int64   // slowloris advertised trickle rate (trace metadata)
	advStartAt  time.Duration
	advEndAt    time.Duration
	adversarial bool
	// Burst-loss window observations. Observer-owned like openStall*:
	// written only by onLossState (attached only when tracing or
	// metering) and read only by stall attribution, never by scheduling.
	geBursts int
	geBadAt  time.Duration
	geGoodAt time.Duration
	// retryAttempt counts consecutive blocked fills for backoff; any
	// successful launch resets it.
	retryAttempt int

	// lastSrc is the source of this peer's most recent download. Peers keep
	// stable relationships (the unchoke pairs of a piece-level protocol stay
	// put for tens of seconds), which keeps the distribution chain — and
	// each peer's pipeline depth in it — stable from segment to segment.
	lastSrc *peerState
	// uploading counts, per segment index, how many copies of that segment
	// this node is currently sending. A node never sends the same segment
	// twice in parallel: the second requester chains off the first copy
	// (see pickSource), which is how the piece-level protocol behaves.
	uploading map[int]int
	// retryPending marks a scheduled source-retry so fill does not stack
	// duplicate timers while the peer waits for an eligible source.
	retryPending bool

	// openStallAt/openStallCause track the in-progress stall for the QoE
	// histograms. Observer-owned: written only from onPlayerTransition
	// (attached only when tracing or metering) and read by nothing in the
	// scheduling path, so maintaining them cannot perturb the run.
	openStallAt    time.Duration
	openStallCause string
}

// download is one in-flight segment transfer with its chosen source.
// flow is nil for a pending adversary serve (stale-have or slowloris):
// no bytes move, and the entry is reaped by the serve-timeout event;
// pending records which adversary kind opened it, for attribution.
type download struct {
	flow    *netem.Flow
	src     *peerState
	pending fault.AdversaryKind
}

// bandwidth returns the B fed into the pooling policy.
func (s *swarm) bandwidth(p *peerState) int64 {
	if s.cfg.OracleBandwidth {
		if p.rate > 0 {
			return p.rate
		}
		return s.cfg.BandwidthBytesPerSec
	}
	if b := p.est.Estimate(); b > 0 {
		return b
	}
	return p.estGuess
}

// wanted reports whether p still needs segment idx and is not fetching it.
func (p *peerState) wanted(idx int) bool {
	if p.have[idx] {
		return false
	}
	_, fetching := p.inFlight[idx]
	return !fetching
}

// nextWanted returns the index of the next segment to request, or -1.
func (s *swarm) nextWanted(p *peerState) int {
	first := -1
	for idx := 0; idx < len(s.segs); idx++ {
		if !p.wanted(idx) {
			continue
		}
		if first == -1 {
			first = idx
		}
		if s.cfg.Selection == SelectSequential {
			return idx
		}
		break
	}
	if first == -1 || s.cfg.Selection != SelectRarestFirst {
		return first
	}
	// Rarest-first within a lookahead window of wanted segments.
	window := s.cfg.RarestWindow
	if window <= 0 {
		window = 8
	}
	best, bestHolders := -1, int(^uint(0)>>1)
	seen := 0
	for idx := first; idx < len(s.segs) && seen < window; idx++ {
		if !p.wanted(idx) {
			continue
		}
		seen++
		holders := s.holderCount(idx)
		if holders > 0 && holders < bestHolders {
			best, bestHolders = idx, holders
		}
	}
	if best == -1 {
		return first
	}
	return best
}

// holderCount counts active peers holding segment idx.
func (s *swarm) holderCount(idx int) int {
	n := 0
	for _, q := range s.peers {
		if !q.departed && !q.crashed && q.have[idx] {
			n++
		}
	}
	return n
}

// crashedHolder reports whether a currently-crashed peer holds segment
// idx — the stall-attribution signal for "my source crashed".
func (s *swarm) crashedHolder(idx int) bool {
	for _, q := range s.peers {
		if q.crashed && q.have[idx] {
			return true
		}
	}
	return false
}

// uploadSlots resolves the per-peer upload cap: the configured value, the
// default of 4 when unset, or 0 (unlimited) when negative.
func (s *swarm) uploadSlots() int {
	switch {
	case s.cfg.MaxUploadsPerPeer > 0:
		return s.cfg.MaxUploadsPerPeer
	case s.cfg.MaxUploadsPerPeer < 0:
		return 0
	default:
		return 4
	}
}

// sourceProgress returns how much of segment idx the candidate q can serve:
// 1.0 for a full holder, the download progress for a relaying leecher, and
// -1 if q cannot serve the segment at all.
func (s *swarm) sourceProgress(q *peerState, idx int) float64 {
	// A stale-have liar (or slowloris) claims every segment while its
	// window is open — that is the attack: requesters believe the HAVE
	// and assign it downloads that will only die by serve timeout.
	if q.advKind == fault.AdvStaleHave || q.advKind == fault.AdvSlowloris {
		return 1
	}
	if q.have[idx] {
		return 1
	}
	if s.cfg.DisableRelay || q.isSeeder {
		return -1
	}
	d, ok := q.inFlight[idx]
	if !ok || d.flow == nil {
		return -1
	}
	size := d.flow.Size()
	if size <= 0 {
		return -1
	}
	progress := 1 - float64(d.flow.Remaining())/float64(size)
	threshold := s.cfg.RelayThreshold
	if threshold <= 0 {
		threshold = defaultRelayThreshold
	}
	if progress < threshold {
		return -1
	}
	return progress
}

// defaultRelayThreshold is a couple of 16 kB pieces into a typical segment.
const defaultRelayThreshold = 0.02

// sourceRetryDelay is how soon a peer that found no eligible source looks
// again. It stands in for the continuous per-piece re-evaluation of the real
// protocol (there is no protocol event for "a relay crossed its threshold").
const sourceRetryDelay = 250 * time.Millisecond

// eligible reports whether q can serve segment idx to p right now.
// allowQuarantined opens the sole-source escape hatch: the second
// selection pass considers quarantined sources rather than sacrifice
// liveness (a fully quarantined swarm must still drain off its one
// honest seeder — or, at worst, off the quarantined peers themselves).
func (s *swarm) eligible(p, q *peerState, idx int, allowQuarantined bool) bool {
	if q == p || q.departed || q.crashed || s.net.LinkIsDown(q.node) {
		return false
	}
	if !allowQuarantined && s.rep != nil && s.rep.Quarantined(q.id, s.eng.Now()) {
		return false
	}
	if s.sourceProgress(q, idx) < 0 {
		return false
	}
	if cap := s.uploadSlots(); cap > 0 && q.uploads >= cap {
		return false
	}
	// q already sending this segment to someone: a duplicate upload would
	// split the frontier rate. The requester chains off the in-flight copy
	// once it crosses the relay threshold.
	return q.uploading[idx] == 0
}

// pickSource chooses the uploader for segment idx: non-quarantined swarm
// sources first, then the CDN fallback, then — only when reputation is
// active and nothing else can serve — quarantined sources (the liveness
// escape hatch). With reputation disabled this is exactly the legacy
// selection.
func (s *swarm) pickSource(p *peerState, idx int) *peerState {
	if src := s.pickSourceFrom(p, idx, false); src != nil {
		return src
	}
	if s.cdn != nil && s.cdnEligible(p) {
		return s.cdn
	}
	if s.rep != nil {
		return s.pickSourceFrom(p, idx, true)
	}
	return nil
}

// pickSourceFrom runs one selection pass: the previous source if it is
// still eligible (stable unchoke relationships keep the distribution
// chain, and every peer's pipeline depth in it, steady across segments),
// otherwise the least-loaded eligible source, ties broken by higher relay
// progress and then by lowest peer ID (deterministic). The CDN, when
// configured, is a fallback only: swarm sources offload it (the paper's
// hybrid architecture serves "by peers as well as a CDN").
func (s *swarm) pickSourceFrom(p *peerState, idx int, allowQuarantined bool) *peerState {
	if p.lastSrc != nil && !p.lastSrc.isCDN && s.eligible(p, p.lastSrc, idx, allowQuarantined) {
		return p.lastSrc
	}
	var best *peerState
	var bestProgress float64
	for _, q := range s.peers {
		if !s.eligible(p, q, idx, allowQuarantined) {
			continue
		}
		progress := s.sourceProgress(q, idx)
		if best == nil || q.uploads < best.uploads ||
			(q.uploads == best.uploads && progress > bestProgress) {
			best, bestProgress = q, progress
		}
	}
	return best
}

// cdnEligible enforces the paper's hybrid rule: a client downloads at most
// one segment at a time from the CDN.
func (s *swarm) cdnEligible(p *peerState) bool {
	for _, d := range p.inFlight {
		if d.src.isCDN {
			return false
		}
	}
	return true
}

// fill tops up p's download pool according to its policy. It is called on
// join and after every event that could change the decision (completion,
// cancellation, departure); when a wanted segment has no eligible source it
// schedules a short retry.
func (s *swarm) fill(p *peerState) {
	if p.isSeeder || p.departed || p.crashed || s.net.LinkIsDown(p.node) {
		return
	}
	now := s.eng.Now()
	next := s.nextWanted(p)
	if next == -1 {
		return // everything downloaded or in flight
	}
	b := s.bandwidth(p)
	buffered := p.player.BufferedAhead(now)
	segBytes := s.segs[next].Bytes
	target := s.cfg.Policy.PoolSize(b, buffered, segBytes)
	s.sm.poolK.Observe(int64(target))
	inFlightBefore := len(p.inFlight)
	if inFlightBefore >= target {
		return
	}
	// The pool is the next `target` wanted segments; request every one with
	// an eligible source, skipping over segments that are momentarily
	// sourceless so a fixed pool still pipelines.
	blocked := false
	launched := 0
	for idx := next; idx < len(s.segs) && len(p.inFlight) < target; idx++ {
		if !p.wanted(idx) {
			continue
		}
		if src := s.pickSource(p, idx); src != nil {
			s.startDownload(p, src, idx)
			launched++
		} else {
			blocked = true
		}
	}
	if launched > 0 {
		p.retryAttempt = 0
	}
	// Windowed telemetry mirrors the pool_fill event exactly (same site,
	// same timestamp, same values) so the trace-derived time series is
	// bit-identical to this in-process one.
	s.ss.bufferedUS.Observe(now, buffered.Microseconds())
	s.ss.poolTarget.Observe(now, int64(target))
	s.ss.inflight.Observe(now, int64(len(p.inFlight)))
	if s.cfg.Tracer.Enabled() {
		flag := int64(0)
		if blocked {
			flag = 1
		}
		s.emit(p.id, next, trace.CatPool, trace.EvPoolFill,
			trace.Int64("bandwidth", b),
			trace.Int64("buffered_us", buffered.Microseconds()),
			trace.Int64("seg_bytes", segBytes),
			trace.Int64("target", int64(target)),
			trace.Int64("inflight", int64(inFlightBefore)),
			trace.Int64("launched", int64(launched)),
			trace.Int64("blocked", flag))
	}
	if blocked && !p.retryPending {
		p.retryPending = true
		// Legacy fixed retry unless backoff is opted in: capped exponential
		// with deterministic jitter (a pure hash of seed/peer/attempt, never
		// the engine RNG, so enabling it perturbs no other draw).
		delay := sourceRetryDelay
		attempt := 0
		if s.cfg.RetryBackoff.Enabled() {
			attempt = p.retryAttempt
			delay = s.cfg.RetryBackoff.Delay(s.cfg.Seed, p.id, attempt)
			p.retryAttempt++
		}
		if s.cfg.Tracer.Enabled() {
			s.emit(p.id, next, trace.CatPool, trace.EvSourceRetry,
				trace.Int64("delay_us", delay.Microseconds()),
				trace.Int64("attempt", int64(attempt)))
		}
		s.eng.Schedule(delay, func() {
			p.retryPending = false
			if !p.departed {
				s.fill(p)
			}
		})
	}
}

// startDownload launches one segment transfer.
func (s *swarm) startDownload(p, src *peerState, idx int) {
	if s.cfg.Trace {
		fmt.Printf("%8.2fs peer%d <- peer%d seg%d (srcUploads=%d inflight=%d T=%v)\n",
			s.eng.Now().Seconds(), p.id, src.id, idx, src.uploads, len(p.inFlight),
			p.player.BufferedAhead(s.eng.Now()).Round(100*time.Millisecond))
	}
	src.uploads++
	src.uploading[idx]++
	// A stale-have or slowloris source accepted the request but will never
	// deliver the segment inside the serve timeout: model the hang as a
	// pending download with no netem flow, reaped by a scheduled timeout.
	// (A slowloris trickles real bytes, but a trickle that cannot finish
	// before the timeout is indistinguishable from silence in the fluid
	// model; the trickle rate is trace metadata.)
	if src.advKind == fault.AdvStaleHave || src.advKind == fault.AdvSlowloris {
		d := &download{src: src, pending: src.advKind}
		p.inFlight[idx] = d
		p.lastSrc = src
		if s.cfg.Tracer.Enabled() {
			s.emit(p.id, idx, trace.CatPool, trace.EvSourcePick,
				trace.Int64("flow", -1),
				trace.Int64("src", int64(src.id)))
		}
		s.eng.Schedule(s.serveTimeout(), func() { s.onServeTimeout(p, src, idx, d) })
		return
	}
	opts := netem.TransferOptions{ReuseConnection: !s.cfg.FreshConnectionPerSegment}
	flow, err := s.net.StartTransfer(src.node, p.node, s.segs[idx].Bytes, opts,
		func(f *netem.Flow) { s.onDownloadComplete(p, src, idx, f) })
	if err != nil {
		// Unreachable: nodes and sizes are validated at setup.
		panic("simpeer: start transfer: " + err.Error())
	}
	p.inFlight[idx] = &download{flow: flow, src: src}
	p.lastSrc = src
	if s.cfg.Tracer.Enabled() {
		s.emit(p.id, idx, trace.CatPool, trace.EvSourcePick,
			trace.Int64("flow", int64(flow.ID())),
			trace.Int64("src", int64(src.id)))
	}
}

// defaultServeTimeout bounds how long a pending request may hang before
// the requester gives up on the source — behavior that exists with or
// without reputation (otherwise a stale-have liar would pin its victims
// forever).
const defaultServeTimeout = 4 * time.Second

// serveTimeout resolves the pending-request timeout.
func (s *swarm) serveTimeout() time.Duration {
	if s.cfg.Reputation != nil && s.cfg.Reputation.ServeTimeout > 0 {
		return s.cfg.Reputation.ServeTimeout
	}
	return defaultServeTimeout
}

// onServeTimeout reaps a pending download whose source never delivered:
// the segment returns to the pool, the source is charged (stale-have for
// a silent liar, slow-serve for a slowloris trickle), and the requester
// refills immediately.
func (s *swarm) onServeTimeout(p, src *peerState, idx int, d *download) {
	if p.inFlight[idx] != d {
		return // already reaped by crash/departure teardown
	}
	delete(p.inFlight, idx)
	src.uploads--
	src.uploading[idx]--
	if s.cfg.Tracer.Enabled() {
		s.emit(p.id, idx, trace.CatPool, trace.EvServeTimeout,
			trace.Int64("src", int64(src.id)),
			trace.Str("kind", d.pending.String()))
	}
	obs := reputation.ObsStaleHave
	if d.pending == fault.AdvSlowloris {
		obs = reputation.ObsSlowServe
	}
	s.observeRep(src, obs)
	if !p.departed && !p.crashed {
		s.fill(p)
	}
}

// onDownloadComplete handles a finished segment transfer.
func (s *swarm) onDownloadComplete(p, src *peerState, idx int, f *netem.Flow) {
	if s.cfg.Trace {
		fmt.Printf("%8.2fs peer%d DONE seg%d from peer%d in %.2fs (%.0f B/s)\n",
			s.eng.Now().Seconds(), p.id, idx, src.id, f.Elapsed().Seconds(),
			float64(f.Size())/f.Elapsed().Seconds())
	}
	src.uploads--
	src.uploading[idx]--
	// k counts the finishing flow too: it is this peer's concurrency while
	// the segment was in transit.
	k := int64(len(p.inFlight))
	delete(p.inFlight, idx)
	if p.departed {
		return
	}
	now := s.eng.Now()
	// Eq. 1 wants the peer's aggregate download bandwidth B, but one flow
	// of a k-way pool delivers only ~B/k: feeding per-flow throughput into
	// the estimator made it converge to B/k, inflating the pool size and
	// over-subscribing the access link. Scaling the observed bytes by the
	// in-flight count recovers the aggregate rate — the emulation twin of
	// the real stack's core.AggregateMeter.
	if k < 1 {
		k = 1
	}
	p.est.Observe(f.Size()*k, f.Elapsed())
	// Inside a corruption window the bytes arrive (the estimator above
	// sees real link throughput) but the segment can fail container
	// checksum verification, in which case it goes back to the pool and
	// is fetched again. Whether THIS attempt is corrupted is a pure hash
	// of (seed, peer, segment, attempt) — see fault.CorruptDraw — so the
	// outcome is identical across runs and -workers values and consumes
	// no engine randomness. An adversarial source fails verification the
	// same way: always for a corrupter, per-attempt via the equally pure
	// fault.PolluteDraw for a polluter. Either way the requester's
	// inference is the same — "this source served me garbage" — so the
	// source is charged a reputation verify-fail.
	advSrc := src.advKind == fault.AdvCorrupter || src.advKind == fault.AdvPolluter
	if (p.corruptPct > 0 || advSrc) && !p.have[idx] {
		attempt := p.segAttempts[idx]
		p.segAttempts[idx] = attempt + 1
		discard := false
		if p.corruptPct > 0 && fault.CorruptDraw(s.cfg.Seed, p.id, idx, attempt)*100 < p.corruptPct {
			discard = true
			p.corruptDiscards++
			p.lastDiscardAt = now
		}
		if !discard && advSrc {
			discard = src.advKind == fault.AdvCorrupter ||
				fault.PolluteDraw(s.cfg.Seed, src.id, p.id, idx, attempt)*100 < src.advPct
		}
		if discard {
			if s.cfg.Tracer.Enabled() {
				s.emit(p.id, idx, trace.CatPool, trace.EvVerifyFail,
					trace.Int64("attempt", int64(attempt)),
					trace.Int64("src", int64(src.id)))
			}
			s.observeRep(src, reputation.ObsVerifyFail)
			// Not a completion: no segment metrics, no have/player update.
			// Refill so the re-request launches immediately.
			s.fill(p)
			return
		}
	}
	s.observeRepSuccess(src, f)
	s.sm.segSeconds.ObserveDuration(f.Elapsed())
	s.sm.segBytes.Observe(f.Size())
	s.ss.segsDone.Inc(now)
	if s.cfg.Tracer.Enabled() {
		s.emit(p.id, idx, trace.CatPool, trace.EvSegComplete,
			trace.Int64("bytes", f.Size()),
			trace.Int64("elapsed_us", f.Elapsed().Microseconds()),
			trace.Int64("src", int64(src.id)))
	}
	if !p.have[idx] {
		p.have[idx] = true
		p.haveCount++
	}
	if err := p.player.OnSegmentComplete(idx, now); err != nil {
		panic("simpeer: segment complete: " + err.Error()) // unreachable
	}
	// New availability can unblock any peer; refill everyone (p included).
	s.fillAll()
	// Once every active leecher holds every segment, background traffic has
	// served its purpose: cancel it so the simulation can drain.
	if len(s.cross) > 0 && s.allDownloadsDone() {
		for _, f := range s.cross {
			f.Cancel()
		}
		s.cross = nil
	}
}

// allDownloadsDone reports whether every non-departed leecher holds every
// segment.
func (s *swarm) allDownloadsDone() bool {
	for _, q := range s.peers[1:] {
		if q.departed {
			continue
		}
		if q.haveCount != len(s.segs) {
			return false
		}
	}
	return true
}
