package simpeer

import (
	"p2psplice/internal/trace"
)

// simMetrics caches the emulation's histogram handles so the hot paths
// never take the registry lock. All handles are nil-safe zero values
// when no registry is attached, so recording sites need no conditionals
// — the metered and unmetered runs execute the same statements, which
// is what TestMetricsAreInert proves.
//
// Metric families (QoE distributions the paper's figures summarize):
//
//	sim_startup_seconds                      time from join to first frame
//	sim_stall_seconds{cause="..."}           per-stall duration by attributed cause
//	sim_segment_download_seconds{scheme=...} per-segment transfer latency
//	sim_segment_bytes{scheme="..."}          per-segment wire size
//	sim_pool_size_k                          Eq. 1 pool-size decisions
//	sim_rep_penalties_total                  reputation penalty observations
//	sim_quarantines_total                    quarantine windows opened
type simMetrics struct {
	startup      trace.Histogram
	segSeconds   trace.Histogram
	segBytes     trace.Histogram
	poolK        trace.Histogram
	repPenalties trace.Counter
	quarantines  trace.Counter
	// stall maps each attributable cause to its labeled histogram. The
	// cause set is closed (trace.Cause*), so every series is registered
	// up front: no lazy registration on the recording path.
	stall map[string]trace.Histogram
}

// newSimMetrics builds the handle set against reg. A nil reg yields
// all-no-op handles (the zero simMetrics).
func newSimMetrics(reg *trace.Registry, scheme string) simMetrics {
	if reg == nil {
		return simMetrics{}
	}
	schemeLabel := ""
	if scheme != "" {
		schemeLabel = `{scheme="` + scheme + `"}`
	}
	reg.SetHelp("sim_startup_seconds", "Time from swarm join to first rendered frame.")
	reg.SetHelp("sim_stall_seconds", "Playback stall durations by attributed cause.")
	reg.SetHelp("sim_segment_download_seconds", "Per-segment transfer latency.")
	reg.SetHelp("sim_segment_bytes", "Per-segment wire size.")
	reg.SetHelp("sim_pool_size_k", "Equation 1 pool-size decisions.")
	reg.SetHelp("sim_rep_penalties_total", "Reputation penalty observations recorded.")
	reg.SetHelp("sim_quarantines_total", "Quarantine windows opened on peers.")
	m := simMetrics{
		startup:      reg.SecondsHistogram("sim_startup_seconds"),
		segSeconds:   reg.SecondsHistogram("sim_segment_download_seconds" + schemeLabel),
		segBytes:     reg.Histogram("sim_segment_bytes" + schemeLabel),
		poolK:        reg.Histogram("sim_pool_size_k"),
		repPenalties: reg.Counter("sim_rep_penalties_total"),
		quarantines:  reg.Counter("sim_quarantines_total"),
		stall:        make(map[string]trace.Histogram, 8),
	}
	for _, cause := range trace.StallCauses() {
		m.stall[cause] = reg.SecondsHistogram(`sim_stall_seconds{cause="` + cause + `"}`)
	}
	return m
}

// stallFor returns the histogram for a cause (no-op when unmetered or
// the cause is unknown — the attribution tests keep the set closed).
func (m simMetrics) stallFor(cause string) trace.Histogram { return m.stall[cause] }
