package shaper

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{RateBytesPerSec: -1},
		{Burst: -1},
		{Latency: -time.Second},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v): want error", cfg)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config should be valid: %v", err)
	}
}

// fakeClock drives a bucket deterministically.
type fakeClock struct {
	mu      sync.Mutex
	t       time.Time
	slept   time.Duration
	maxIter int
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) sleep(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
	f.slept += d
	f.maxIter--
	if f.maxIter < 0 {
		panic("bucket livelock")
	}
}

func TestBucketRate(t *testing.T) {
	b := newBucket(1000, 500) // 1000 B/s, 500 B burst
	fc := &fakeClock{t: time.Unix(0, 0), maxIter: 1000}
	b.now, b.sleep = fc.now, fc.sleep

	// First 500 bytes ride the initial burst; the next 1000 need 1 second.
	b.take(500)
	if fc.slept != 0 {
		t.Errorf("burst should not sleep, slept %v", fc.slept)
	}
	b.take(1000)
	if fc.slept < 900*time.Millisecond || fc.slept > 1100*time.Millisecond {
		t.Errorf("1000 bytes at 1000 B/s slept %v, want ~1s", fc.slept)
	}
}

func TestBucketUnlimited(t *testing.T) {
	b := newBucket(0, 0)
	fc := &fakeClock{t: time.Unix(0, 0), maxIter: 10}
	b.now, b.sleep = fc.now, fc.sleep
	b.take(1 << 30)
	if fc.slept != 0 {
		t.Error("unlimited bucket slept")
	}
	var nilBucket *bucket
	nilBucket.take(100) // must not panic
}

func TestShapedPipeThroughput(t *testing.T) {
	// Real-time test with generous tolerances: 200 KiB at 1 MiB/s should
	// take at least ~100 ms (allowing the 64 KiB default burst).
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	shaped, err := NewConn(client, Config{RateBytesPerSec: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const total = 200 << 10
	go func() {
		_, _ = io.Copy(io.Discard, server)
	}()
	start := time.Now()
	if _, err := shaped.Write(bytes.Repeat([]byte{1}, total)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// (200 KiB - 64 KiB burst) / 1 MiB/s ~= 133 ms minimum.
	if elapsed < 100*time.Millisecond {
		t.Errorf("200 KiB at 1 MiB/s took %v, want >= ~130ms", elapsed)
	}
}

func TestListenerAndDial(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	shapedLn, err := NewListener(ln, Config{Latency: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer shapedLn.Close()

	done := make(chan error, 1)
	go func() {
		c, err := shapedLn.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(c, buf); err != nil {
			done <- err
			return
		}
		_, err = c.Write(buf)
		done <- err
	}()

	start := time.Now()
	c, err := Dial("tcp", ln.Addr().String(), Config{Latency: 10 * time.Millisecond}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if time.Since(start) < 10*time.Millisecond {
		t.Error("dial latency not applied")
	}
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Errorf("echo = %q", buf)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial("tcp", "127.0.0.1:1", Config{}, 200*time.Millisecond); err == nil {
		t.Error("want dial error")
	}
	if _, err := Dial("tcp", "x", Config{RateBytesPerSec: -1}, time.Second); err == nil {
		t.Error("want config error")
	}
	if _, err := NewConn(nil, Config{Latency: -1}); err == nil {
		t.Error("want config error")
	}
	if _, err := NewListener(nil, Config{Burst: -1}); err == nil {
		t.Error("want config error")
	}
}
