// Package shaper applies bandwidth and latency shaping to real net.Conn
// traffic — the loopback equivalent of the per-link RSpec properties the
// paper configures on GENI (Figure 1). Wrapping a peer's listener and dialer
// with a shaper emulates its access link on a real TCP deployment.
package shaper

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Config describes one access link.
type Config struct {
	// RateBytesPerSec limits throughput in each direction independently.
	// Zero means unlimited.
	RateBytesPerSec int64
	// Burst is the token-bucket depth. Zero defaults to 64 KiB.
	Burst int64
	// Latency is the extra one-way delay applied to connection
	// establishment (per-packet delay emulation is not attempted; for
	// streaming workloads the setup latency and the rate dominate).
	Latency time.Duration
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.RateBytesPerSec < 0 {
		return fmt.Errorf("shaper: negative rate %d", c.RateBytesPerSec)
	}
	if c.Burst < 0 {
		return fmt.Errorf("shaper: negative burst %d", c.Burst)
	}
	if c.Latency < 0 {
		return fmt.Errorf("shaper: negative latency %v", c.Latency)
	}
	return nil
}

// bucket is a monotonic-clock token bucket. It is safe for concurrent use.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens (bytes) per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
	sleep  func(time.Duration)
}

func newBucket(rate, burst int64) *bucket {
	if burst <= 0 {
		burst = 64 << 10
	}
	return &bucket{
		rate:   float64(rate),
		burst:  float64(burst),
		tokens: float64(burst),
		now:    time.Now,
		sleep:  time.Sleep,
	}
}

// take blocks until n bytes' worth of tokens are available and consumes them.
func (b *bucket) take(n int) {
	if b == nil || b.rate <= 0 {
		return
	}
	for n > 0 {
		chunk := float64(n)
		if chunk > b.burst {
			chunk = b.burst
		}
		b.mu.Lock()
		now := b.now()
		if !b.last.IsZero() {
			b.tokens += now.Sub(b.last).Seconds() * b.rate
			if b.tokens > b.burst {
				b.tokens = b.burst
			}
		}
		b.last = now
		var wait time.Duration
		if b.tokens >= chunk {
			b.tokens -= chunk
			n -= int(chunk)
		} else {
			wait = time.Duration((chunk - b.tokens) / b.rate * float64(time.Second))
		}
		b.mu.Unlock()
		if wait > 0 {
			b.sleep(wait)
		}
	}
}

// Conn is a shaped connection.
type Conn struct {
	net.Conn
	down *bucket // applied to Read
	up   *bucket // applied to Write
}

// NewConn wraps c with the link shape. The same Config is used for both
// directions (symmetric access links, as in the paper's experiments).
func NewConn(c net.Conn, cfg Config) (*Conn, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Conn{
		Conn: c,
		down: newBucket(cfg.RateBytesPerSec, cfg.Burst),
		up:   newBucket(cfg.RateBytesPerSec, cfg.Burst),
	}, nil
}

// Read reads from the wrapped conn at the shaped rate.
func (s *Conn) Read(p []byte) (int, error) {
	n, err := s.Conn.Read(p)
	if n > 0 {
		s.down.take(n)
	}
	return n, err
}

// Write writes to the wrapped conn at the shaped rate.
func (s *Conn) Write(p []byte) (int, error) {
	// Charge before sending so a burst cannot exceed the bucket.
	s.up.take(len(p))
	return s.Conn.Write(p)
}

// Listener shapes every accepted connection.
type Listener struct {
	net.Listener
	cfg Config
}

// NewListener wraps l so accepted conns are shaped with cfg.
func NewListener(l net.Listener, cfg Config) (*Listener, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Listener{Listener: l, cfg: cfg}, nil
}

// Accept waits for a connection and shapes it. The configured latency is
// charged once at accept, emulating the SYN/ACK crossing the access link.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if l.cfg.Latency > 0 {
		time.Sleep(l.cfg.Latency)
	}
	return NewConn(c, l.cfg)
}

// Dial connects with the configured setup latency and returns a shaped conn.
func Dial(network, addr string, cfg Config, timeout time.Duration) (net.Conn, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	if cfg.Latency > 0 {
		time.Sleep(cfg.Latency)
	}
	return NewConn(c, cfg)
}
