// Zero-allocation tests for the //lint:hotpath contract: allocfree
// proves the absence of allocating constructs statically, these prove
// it at runtime. Excluded under -race because race instrumentation
// inserts allocations the production build does not have.

//go:build !race

package wire

import (
	"bytes"
	"testing"
)

func pieceMsg() *Message {
	return &Message{
		Type:   MsgPiece,
		Index:  3,
		Offset: 16384,
		Data:   bytes.Repeat([]byte{0xAB}, DefaultBlockLen),
	}
}

// TestZeroAllocEncodeDecode pins Message.Encode and Message.Decode at
// zero heap allocations per frame.
func TestZeroAllocEncodeDecode(t *testing.T) {
	m := pieceMsg()
	n, err := m.EncodedLen()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, n)
	var dec Message
	allocs := testing.AllocsPerRun(200, func() {
		wrote, err := m.Encode(buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := dec.Decode(buf[4:wrote]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Encode+Decode allocated %.1f times per frame, want 0", allocs)
	}
}

// TestZeroAllocReaderWriter pins the streaming path: after the warm-up
// frame grows the reusable buffers, WriteMsg and ReadInto allocate
// nothing (AllocsPerRun's warm-up call absorbs the one-time growth).
func TestZeroAllocReaderWriter(t *testing.T) {
	m := pieceMsg()
	var stream bytes.Buffer
	wr := NewWriter(&stream)
	rd := NewReader(&stream)
	var dec Message
	allocs := testing.AllocsPerRun(200, func() {
		stream.Reset()
		if err := wr.WriteMsg(m); err != nil {
			t.Fatal(err)
		}
		if err := rd.ReadInto(&dec); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("WriteMsg+ReadInto allocated %.1f times per frame, want 0", allocs)
	}
	if !bytes.Equal(dec.Data, m.Data) {
		t.Error("round-trip corrupted piece data")
	}
}

// BenchmarkHotpathWireRoundTrip is the -benchmem gate for the wire hot
// path: `make bench-alloc` fails if it reports nonzero allocs/op.
func BenchmarkHotpathWireRoundTrip(b *testing.B) {
	m := pieceMsg()
	var stream bytes.Buffer
	wr := NewWriter(&stream)
	rd := NewReader(&stream)
	var dec Message
	// Warm-up frame grows the reusable buffers outside the measurement.
	if err := wr.WriteMsg(m); err != nil {
		b.Fatal(err)
	}
	if err := rd.ReadInto(&dec); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream.Reset()
		if err := wr.WriteMsg(m); err != nil {
			b.Fatal(err)
		}
		if err := rd.ReadInto(&dec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotpathWireEncode isolates the encode half.
func BenchmarkHotpathWireEncode(b *testing.B) {
	m := pieceMsg()
	n, err := m.EncodedLen()
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Encode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotpathWireDecode isolates the decode half.
func BenchmarkHotpathWireDecode(b *testing.B) {
	m := pieceMsg()
	n, err := m.EncodedLen()
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, n)
	if _, err := m.Encode(buf); err != nil {
		b.Fatal(err)
	}
	var dec Message
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dec.Decode(buf[4:]); err != nil {
			b.Fatal(err)
		}
	}
}
