// Package wire implements the BitTorrent-like peer messaging protocol the
// paper's application uses over TCP (Java sockets there, net.Conn here).
//
// Framing: a fixed handshake, then length-prefixed messages
//
//	uint32 length | uint8 type | payload
//
// Segments (the splicing unit) are transferred in 16 KiB blocks via
// Request/Piece, exactly like BitTorrent pieces, so a receiving peer can
// serve a segment's early blocks while still fetching its tail.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// ProtocolMagic identifies the protocol in the handshake.
const ProtocolMagic = "P2PSPLICE/1"

// Limits protecting decoders from hostile input.
const (
	// MaxBlockLen bounds a Piece payload (and a Request length): 128 KiB.
	MaxBlockLen = 128 << 10
	// MaxBitfieldLen bounds a Bitfield payload (supports 2^23 segments).
	MaxBitfieldLen = 1 << 20
	// DefaultBlockLen is the standard transfer block: 16 KiB.
	DefaultBlockLen = 16 << 10
)

// MessageType identifies a wire message.
type MessageType uint8

// Message types.
const (
	MsgChoke MessageType = iota
	MsgUnchoke
	MsgInterested
	MsgNotInterested
	MsgHave
	MsgBitfield
	MsgRequest
	MsgPiece
	MsgCancel
	MsgKeepAlive
)

// String returns the message type name.
func (t MessageType) String() string {
	names := [...]string{"choke", "unchoke", "interested", "not-interested",
		"have", "bitfield", "request", "piece", "cancel", "keep-alive"}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("MessageType(%d)", uint8(t))
}

// Message is one decoded wire message. Fields are populated according to
// Type: Have uses Index; Request/Cancel use Index/Offset/Length; Piece uses
// Index/Offset/Data; Bitfield uses Bitfield.
type Message struct {
	Type     MessageType
	Index    uint32
	Offset   uint32
	Length   uint32
	Bitfield []byte
	Data     []byte
}

// payloadLen returns the encoded payload size for m.
func (m *Message) payloadLen() (int, error) {
	switch m.Type {
	case MsgChoke, MsgUnchoke, MsgInterested, MsgNotInterested, MsgKeepAlive:
		return 0, nil
	case MsgHave:
		return 4, nil
	case MsgRequest, MsgCancel:
		return 12, nil
	case MsgPiece:
		if len(m.Data) == 0 || len(m.Data) > MaxBlockLen {
			return 0, fmt.Errorf("wire: piece data %d bytes outside (0, %d]", len(m.Data), MaxBlockLen)
		}
		return 8 + len(m.Data), nil
	case MsgBitfield:
		if len(m.Bitfield) == 0 || len(m.Bitfield) > MaxBitfieldLen {
			return 0, fmt.Errorf("wire: bitfield %d bytes outside (0, %d]", len(m.Bitfield), MaxBitfieldLen)
		}
		return len(m.Bitfield), nil
	default:
		return 0, fmt.Errorf("wire: unknown message type %d", m.Type)
	}
}

// Write encodes m to w.
func Write(w io.Writer, m *Message) error {
	plen, err := m.payloadLen()
	if err != nil {
		return err
	}
	buf := make([]byte, 5+plen)
	binary.BigEndian.PutUint32(buf[0:4], uint32(1+plen))
	buf[4] = byte(m.Type)
	p := buf[5:]
	switch m.Type {
	case MsgHave:
		binary.BigEndian.PutUint32(p, m.Index)
	case MsgRequest, MsgCancel:
		binary.BigEndian.PutUint32(p[0:4], m.Index)
		binary.BigEndian.PutUint32(p[4:8], m.Offset)
		binary.BigEndian.PutUint32(p[8:12], m.Length)
	case MsgPiece:
		binary.BigEndian.PutUint32(p[0:4], m.Index)
		binary.BigEndian.PutUint32(p[4:8], m.Offset)
		copy(p[8:], m.Data)
	case MsgBitfield:
		copy(p, m.Bitfield)
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("wire: write %s: %w", m.Type, err)
	}
	return nil
}

// Read decodes one message from r, enforcing the payload limits.
func Read(r io.Reader) (*Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("wire: read length: %w", err)
	}
	length := binary.BigEndian.Uint32(lenBuf[:])
	if length == 0 || length > 9+MaxBlockLen && length > 1+MaxBitfieldLen {
		return nil, fmt.Errorf("wire: message length %d out of range", length)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("wire: read body: %w", err)
	}
	m := &Message{Type: MessageType(body[0])}
	p := body[1:]
	switch m.Type {
	case MsgChoke, MsgUnchoke, MsgInterested, MsgNotInterested, MsgKeepAlive:
		if len(p) != 0 {
			return nil, fmt.Errorf("wire: %s with %d-byte payload", m.Type, len(p))
		}
	case MsgHave:
		if len(p) != 4 {
			return nil, fmt.Errorf("wire: have with %d-byte payload", len(p))
		}
		m.Index = binary.BigEndian.Uint32(p)
	case MsgRequest, MsgCancel:
		if len(p) != 12 {
			return nil, fmt.Errorf("wire: %s with %d-byte payload", m.Type, len(p))
		}
		m.Index = binary.BigEndian.Uint32(p[0:4])
		m.Offset = binary.BigEndian.Uint32(p[4:8])
		m.Length = binary.BigEndian.Uint32(p[8:12])
		if m.Length == 0 || m.Length > MaxBlockLen {
			return nil, fmt.Errorf("wire: %s length %d out of range", m.Type, m.Length)
		}
	case MsgPiece:
		if len(p) <= 8 || len(p) > 8+MaxBlockLen {
			return nil, fmt.Errorf("wire: piece with %d-byte payload", len(p))
		}
		m.Index = binary.BigEndian.Uint32(p[0:4])
		m.Offset = binary.BigEndian.Uint32(p[4:8])
		m.Data = p[8:]
	case MsgBitfield:
		if len(p) == 0 || len(p) > MaxBitfieldLen {
			return nil, fmt.Errorf("wire: bitfield with %d-byte payload", len(p))
		}
		m.Bitfield = p
	default:
		return nil, fmt.Errorf("wire: unknown message type %d", body[0])
	}
	return m, nil
}
