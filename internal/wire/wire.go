// Package wire implements the BitTorrent-like peer messaging protocol the
// paper's application uses over TCP (Java sockets there, net.Conn here).
//
// Framing: a fixed handshake, then length-prefixed messages
//
//	uint32 length | uint8 type | payload
//
// Segments (the splicing unit) are transferred in 16 KiB blocks via
// Request/Piece, exactly like BitTorrent pieces, so a receiving peer can
// serve a segment's early blocks while still fetching its tail.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Sentinel decode/encode errors. The hot-path Encode/Decode/EncodedLen
// methods return these unwrapped (building a formatted error per
// message would allocate); the convenience Read/Write wrappers add
// context with fmt.Errorf.
var (
	ErrPieceSize     = errors.New("wire: piece data size out of range")
	ErrBitfieldSize  = errors.New("wire: bitfield size out of range")
	ErrUnknownType   = errors.New("wire: unknown message type")
	ErrFrameLength   = errors.New("wire: message length out of range")
	ErrPayloadSize   = errors.New("wire: payload size does not match message type")
	ErrRequestLength = errors.New("wire: request length out of range")
	ErrShortBuffer   = errors.New("wire: buffer too small for encoded message")
)

// ProtocolMagic identifies the protocol in the handshake.
const ProtocolMagic = "P2PSPLICE/1"

// Limits protecting decoders from hostile input.
const (
	// MaxBlockLen bounds a Piece payload (and a Request length): 128 KiB.
	MaxBlockLen = 128 << 10
	// MaxBitfieldLen bounds a Bitfield payload (supports 2^23 segments).
	MaxBitfieldLen = 1 << 20
	// DefaultBlockLen is the standard transfer block: 16 KiB.
	DefaultBlockLen = 16 << 10
)

// MessageType identifies a wire message.
type MessageType uint8

// Message types.
const (
	MsgChoke MessageType = iota
	MsgUnchoke
	MsgInterested
	MsgNotInterested
	MsgHave
	MsgBitfield
	MsgRequest
	MsgPiece
	MsgCancel
	MsgKeepAlive
)

// String returns the message type name.
func (t MessageType) String() string {
	names := [...]string{"choke", "unchoke", "interested", "not-interested",
		"have", "bitfield", "request", "piece", "cancel", "keep-alive"}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("MessageType(%d)", uint8(t))
}

// Message is one decoded wire message. Fields are populated according to
// Type: Have uses Index; Request/Cancel use Index/Offset/Length; Piece uses
// Index/Offset/Data; Bitfield uses Bitfield.
type Message struct {
	Type     MessageType
	Index    uint32
	Offset   uint32
	Length   uint32
	Bitfield []byte
	Data     []byte
}

// payloadLen returns the encoded payload size for m.
//
//lint:hotpath called per message on the encode path
func (m *Message) payloadLen() (int, error) {
	switch m.Type {
	case MsgChoke, MsgUnchoke, MsgInterested, MsgNotInterested, MsgKeepAlive:
		return 0, nil
	case MsgHave:
		return 4, nil
	case MsgRequest, MsgCancel:
		return 12, nil
	case MsgPiece:
		if len(m.Data) == 0 || len(m.Data) > MaxBlockLen {
			return 0, ErrPieceSize
		}
		return 8 + len(m.Data), nil
	case MsgBitfield:
		if len(m.Bitfield) == 0 || len(m.Bitfield) > MaxBitfieldLen {
			return 0, ErrBitfieldSize
		}
		return len(m.Bitfield), nil
	default:
		return 0, ErrUnknownType
	}
}

// EncodedLen returns the full frame size (length prefix included) that
// Encode will produce for m, or a sentinel error for an invalid message.
//
//lint:hotpath called per message on the encode path
func (m *Message) EncodedLen() (int, error) {
	plen, err := m.payloadLen()
	if err != nil {
		return 0, err
	}
	return 5 + plen, nil
}

// Encode writes m's frame into buf, which must hold at least
// EncodedLen bytes, and returns the number of bytes written.
//
//lint:hotpath the per-message encode: the benchmarks assert 0 allocs/op
func (m *Message) Encode(buf []byte) (int, error) {
	plen, err := m.payloadLen()
	if err != nil {
		return 0, err
	}
	n := 5 + plen
	if len(buf) < n {
		return 0, ErrShortBuffer
	}
	binary.BigEndian.PutUint32(buf[0:4], uint32(1+plen))
	buf[4] = byte(m.Type)
	p := buf[5:n]
	switch m.Type {
	case MsgHave:
		binary.BigEndian.PutUint32(p, m.Index)
	case MsgRequest, MsgCancel:
		binary.BigEndian.PutUint32(p[0:4], m.Index)
		binary.BigEndian.PutUint32(p[4:8], m.Offset)
		binary.BigEndian.PutUint32(p[8:12], m.Length)
	case MsgPiece:
		binary.BigEndian.PutUint32(p[0:4], m.Index)
		binary.BigEndian.PutUint32(p[4:8], m.Offset)
		copy(p[8:], m.Data)
	case MsgBitfield:
		copy(p, m.Bitfield)
	}
	return n, nil
}

// Decode populates m from one frame body (the bytes after the 4-byte
// length prefix: type byte plus payload), enforcing the payload limits.
// m is fully overwritten, so a caller may reuse one Message across
// frames; Data and Bitfield alias body and are valid only as long as
// the caller keeps body intact.
//
//lint:hotpath the per-message decode: the benchmarks assert 0 allocs/op
func (m *Message) Decode(body []byte) error {
	if len(body) == 0 {
		return ErrFrameLength
	}
	m.Type = MessageType(body[0])
	m.Index, m.Offset, m.Length = 0, 0, 0
	m.Bitfield, m.Data = nil, nil
	p := body[1:]
	switch m.Type {
	case MsgChoke, MsgUnchoke, MsgInterested, MsgNotInterested, MsgKeepAlive:
		if len(p) != 0 {
			return ErrPayloadSize
		}
	case MsgHave:
		if len(p) != 4 {
			return ErrPayloadSize
		}
		m.Index = binary.BigEndian.Uint32(p)
	case MsgRequest, MsgCancel:
		if len(p) != 12 {
			return ErrPayloadSize
		}
		m.Index = binary.BigEndian.Uint32(p[0:4])
		m.Offset = binary.BigEndian.Uint32(p[4:8])
		m.Length = binary.BigEndian.Uint32(p[8:12])
		if m.Length == 0 || m.Length > MaxBlockLen {
			return ErrRequestLength
		}
	case MsgPiece:
		if len(p) <= 8 || len(p) > 8+MaxBlockLen {
			return ErrPayloadSize
		}
		m.Index = binary.BigEndian.Uint32(p[0:4])
		m.Offset = binary.BigEndian.Uint32(p[4:8])
		m.Data = p[8:]
	case MsgBitfield:
		if len(p) == 0 || len(p) > MaxBitfieldLen {
			return ErrPayloadSize
		}
		m.Bitfield = p
	default:
		return ErrUnknownType
	}
	return nil
}

// Reader decodes frames from a stream into caller-supplied Messages,
// reusing one internal buffer: after warm-up, ReadInto performs zero
// heap allocations per message. Not safe for concurrent use.
type Reader struct {
	r    io.Reader
	len4 [4]byte
	buf  []byte
}

// NewReader returns a Reader decoding from r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// ReadInto reads one message into m. m's Data and Bitfield alias the
// Reader's internal buffer and are valid only until the next ReadInto;
// callers that retain payload bytes must copy them first. I/O errors
// are returned unwrapped so io.EOF checks keep working.
//
//lint:hotpath the per-message read: the benchmarks assert 0 allocs/op
func (rd *Reader) ReadInto(m *Message) error {
	if _, err := io.ReadFull(rd.r, rd.len4[:]); err != nil {
		return err
	}
	length := binary.BigEndian.Uint32(rd.len4[:])
	if length == 0 || length > 9+MaxBlockLen && length > 1+MaxBitfieldLen {
		return ErrFrameLength
	}
	if uint32(cap(rd.buf)) < length {
		//lint:ignore allocfree amortized: the buffer grows to the stream's high-water frame size once, then is reused
		rd.buf = make([]byte, length)
	}
	body := rd.buf[:length]
	if _, err := io.ReadFull(rd.r, body); err != nil {
		return err
	}
	return m.Decode(body)
}

// Writer encodes messages to a stream through one reusable buffer:
// after warm-up, WriteMsg performs zero heap allocations per message.
// Not safe for concurrent use; callers serialize (the peer connection
// holds its write mutex around WriteMsg).
type Writer struct {
	w   io.Writer
	buf []byte
}

// NewWriter returns a Writer encoding to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// WriteMsg encodes m and writes the frame to the underlying stream.
// I/O errors are returned unwrapped.
//
//lint:hotpath the per-message write: the benchmarks assert 0 allocs/op
func (wr *Writer) WriteMsg(m *Message) error {
	n, err := m.EncodedLen()
	if err != nil {
		return err
	}
	if cap(wr.buf) < n {
		//lint:ignore allocfree amortized: the buffer grows to the connection's high-water frame size once, then is reused
		wr.buf = make([]byte, n)
	}
	buf := wr.buf[:n]
	if _, err := m.Encode(buf); err != nil {
		return err
	}
	if _, err := wr.w.Write(buf); err != nil {
		return err
	}
	return nil
}

// Write encodes m to w. It allocates per call; senders on a hot path
// hold a Writer instead.
func Write(w io.Writer, m *Message) error {
	wr := Writer{w: w}
	if err := wr.WriteMsg(m); err != nil {
		return fmt.Errorf("wire: write %s: %w", m.Type, err)
	}
	return nil
}

// Read decodes one message from r, enforcing the payload limits. The
// returned Message owns its payload bytes. It allocates per call;
// receivers on a hot path hold a Reader instead.
func Read(r io.Reader) (*Message, error) {
	rd := Reader{r: r}
	m := &Message{}
	if err := rd.ReadInto(m); err != nil {
		return nil, fmt.Errorf("wire: read: %w", err)
	}
	return m, nil
}
