package wire

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMessageRoundTrip(t *testing.T) {
	msgs := []*Message{
		{Type: MsgChoke},
		{Type: MsgUnchoke},
		{Type: MsgInterested},
		{Type: MsgNotInterested},
		{Type: MsgKeepAlive},
		{Type: MsgHave, Index: 42},
		{Type: MsgRequest, Index: 3, Offset: 16384, Length: 16384},
		{Type: MsgCancel, Index: 3, Offset: 16384, Length: 16384},
		{Type: MsgPiece, Index: 7, Offset: 32768, Data: bytes.Repeat([]byte{0xAB}, 16384)},
		{Type: MsgBitfield, Bitfield: []byte{0xF0, 0x01}},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := Write(&buf, m); err != nil {
			t.Fatalf("Write(%s): %v", m.Type, err)
		}
	}
	for _, want := range msgs {
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read(%s): %v", want.Type, err)
		}
		if got.Type != want.Type || got.Index != want.Index || got.Offset != want.Offset {
			t.Errorf("round-trip mismatch: got %+v want %+v", got, want)
		}
		if want.Type == MsgRequest || want.Type == MsgCancel {
			if got.Length != want.Length {
				t.Errorf("%s length %d, want %d", want.Type, got.Length, want.Length)
			}
		}
		if !bytes.Equal(got.Data, want.Data) || !bytes.Equal(got.Bitfield, want.Bitfield) {
			t.Errorf("%s payload mismatch", want.Type)
		}
	}
	if buf.Len() != 0 {
		t.Errorf("%d trailing bytes after decoding all messages", buf.Len())
	}
}

func TestWriteRejectsBadMessages(t *testing.T) {
	bad := []*Message{
		{Type: MessageType(99)},
		{Type: MsgPiece}, // empty data
		{Type: MsgPiece, Data: make([]byte, MaxBlockLen+1)}, // oversized
		{Type: MsgBitfield}, // empty bitfield
		{Type: MsgBitfield, Bitfield: make([]byte, MaxBitfieldLen+1)}, // oversized
	}
	for _, m := range bad {
		if err := Write(io.Discard, m); err == nil {
			t.Errorf("Write(%+v): want error", m)
		}
	}
}

func TestReadRejectsCorruptInput(t *testing.T) {
	cases := map[string][]byte{
		"empty":              {},
		"zero length":        {0, 0, 0, 0},
		"huge length":        {0xFF, 0xFF, 0xFF, 0xFF},
		"truncated body":     {0, 0, 0, 5, byte(MsgHave), 1},
		"unknown type":       {0, 0, 0, 1, 99},
		"have short payload": {0, 0, 0, 3, byte(MsgHave), 0, 0},
		"choke with payload": {0, 0, 0, 2, byte(MsgChoke), 1},
		"request bad length": {0, 0, 0, 13, byte(MsgRequest), 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0},
		"piece no data":      {0, 0, 0, 9, byte(MsgPiece), 0, 0, 0, 1, 0, 0, 0, 0},
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Read(bytes.NewReader(in)); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestHandshakeRoundTrip(t *testing.T) {
	id, err := NewPeerID()
	if err != nil {
		t.Fatal(err)
	}
	var ih InfoHash
	for i := range ih {
		ih[i] = byte(i)
	}
	var buf bytes.Buffer
	if err := WriteHandshake(&buf, Handshake{InfoHash: ih, PeerID: id}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHandshake(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.InfoHash != ih || got.PeerID != id {
		t.Error("handshake round-trip mismatch")
	}
}

func TestHandshakeRejectsWrongMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHandshake(&buf, Handshake{}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[3] ^= 0xFF
	if _, err := ReadHandshake(bytes.NewReader(b)); err == nil {
		t.Error("want error for corrupted magic")
	}
	if _, err := ReadHandshake(bytes.NewReader(nil)); err == nil {
		t.Error("want error for empty input")
	}
}

func TestInfoHashParse(t *testing.T) {
	var ih InfoHash
	ih[0], ih[31] = 0xAB, 0xCD
	got, err := ParseInfoHash(ih.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != ih {
		t.Error("ParseInfoHash round-trip mismatch")
	}
	for _, bad := range []string{"", "zz", "abcd"} {
		if _, err := ParseInfoHash(bad); err == nil {
			t.Errorf("ParseInfoHash(%q): want error", bad)
		}
	}
}

func TestBitfieldRoundTrip(t *testing.T) {
	have := []bool{true, false, true, true, false, false, false, true, true}
	bf := EncodeBitfield(have)
	got, err := DecodeBitfield(bf, len(have))
	if err != nil {
		t.Fatal(err)
	}
	for i := range have {
		if got[i] != have[i] {
			t.Errorf("bit %d: got %v want %v", i, got[i], have[i])
		}
	}
}

func TestBitfieldRejects(t *testing.T) {
	if _, err := DecodeBitfield([]byte{0xFF}, 4); err == nil {
		t.Error("spare bits set: want error")
	}
	if _, err := DecodeBitfield([]byte{0, 0}, 4); err == nil {
		t.Error("wrong length: want error")
	}
	if _, err := DecodeBitfield(nil, -1); err == nil {
		t.Error("negative count: want error")
	}
}

func TestBlockCount(t *testing.T) {
	tests := []struct {
		size  int64
		block int
		want  int
	}{
		{0, 16384, 0},
		{1, 16384, 1},
		{16384, 16384, 1},
		{16385, 16384, 2},
		{100, 0, 0},
		{-5, 16384, 0},
	}
	for _, tt := range tests {
		if got := BlockCount(tt.size, tt.block); got != tt.want {
			t.Errorf("BlockCount(%d, %d) = %d, want %d", tt.size, tt.block, got, tt.want)
		}
	}
}

func TestMessageTypeString(t *testing.T) {
	if MsgPiece.String() != "piece" || MsgKeepAlive.String() != "keep-alive" {
		t.Error("message type names wrong")
	}
	if MessageType(200).String() != "MessageType(200)" {
		t.Error("unknown type name wrong")
	}
}

// Property: any bitfield round-trips for any size.
func TestQuickBitfieldRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw % 4096)
		r := rand.New(rand.NewSource(seed))
		have := make([]bool, n)
		for i := range have {
			have[i] = r.Intn(2) == 1
		}
		got, err := DecodeBitfield(EncodeBitfield(have), n)
		if err != nil {
			return false
		}
		for i := range have {
			if got[i] != have[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Write/Read round-trips arbitrary piece payloads.
func TestQuickPieceRoundTrip(t *testing.T) {
	f := func(index, offset uint32, data []byte) bool {
		if len(data) == 0 || len(data) > MaxBlockLen {
			return true // Write rejects these by design
		}
		var buf bytes.Buffer
		m := &Message{Type: MsgPiece, Index: index, Offset: offset, Data: data}
		if err := Write(&buf, m); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return got.Index == index && got.Offset == offset && bytes.Equal(got.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
