package wire

import (
	"bytes"
	"testing"
)

// FuzzRead checks the message decoder never panics and that accepted
// messages round-trip byte-identically.
func FuzzRead(f *testing.F) {
	seed := func(m *Message) {
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(&Message{Type: MsgChoke})
	seed(&Message{Type: MsgHave, Index: 7})
	seed(&Message{Type: MsgRequest, Index: 1, Offset: 16384, Length: 16384})
	seed(&Message{Type: MsgPiece, Index: 1, Offset: 0, Data: []byte("data")})
	seed(&Message{Type: MsgBitfield, Bitfield: []byte{0xA5}})
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatalf("accepted message failed to re-encode: %v", err)
		}
		// The re-encoding must match the consumed prefix of the input.
		if !bytes.Equal(buf.Bytes(), data[:buf.Len()]) {
			t.Fatal("read/write not a bijection on accepted prefix")
		}
	})
}

// FuzzReadHandshake checks the handshake decoder never panics.
func FuzzReadHandshake(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteHandshake(&buf, Handshake{}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{11})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ReadHandshake(bytes.NewReader(data))
	})
}
