package wire

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
)

// Sizes of the fixed handshake fields.
const (
	InfoHashLen = 32
	PeerIDLen   = 20
)

// InfoHash identifies a swarm: the SHA-256 of the published manifest JSON.
type InfoHash [InfoHashLen]byte

// String returns the hex form.
func (h InfoHash) String() string { return hex.EncodeToString(h[:]) }

// ParseInfoHash decodes a hex info hash.
func ParseInfoHash(s string) (InfoHash, error) {
	var h InfoHash
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != InfoHashLen {
		return h, fmt.Errorf("wire: bad info hash %q", s)
	}
	copy(h[:], b)
	return h, nil
}

// PeerID identifies a peer instance.
type PeerID [PeerIDLen]byte

// String returns the hex form.
func (p PeerID) String() string { return hex.EncodeToString(p[:]) }

// NewPeerID generates a random peer ID.
func NewPeerID() (PeerID, error) {
	var id PeerID
	if _, err := rand.Read(id[:]); err != nil {
		return id, fmt.Errorf("wire: generate peer id: %w", err)
	}
	return id, nil
}

// Handshake is the connection preamble both sides exchange.
type Handshake struct {
	InfoHash InfoHash
	PeerID   PeerID
}

// handshakeLen is magic-length byte + magic + infohash + peerid.
var handshakeLen = 1 + len(ProtocolMagic) + InfoHashLen + PeerIDLen

// WriteHandshake sends h on w.
func WriteHandshake(w io.Writer, h Handshake) error {
	buf := make([]byte, handshakeLen)
	buf[0] = byte(len(ProtocolMagic))
	copy(buf[1:], ProtocolMagic)
	copy(buf[1+len(ProtocolMagic):], h.InfoHash[:])
	copy(buf[1+len(ProtocolMagic)+InfoHashLen:], h.PeerID[:])
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("wire: write handshake: %w", err)
	}
	return nil
}

// ReadHandshake reads and validates the peer's preamble.
func ReadHandshake(r io.Reader) (Handshake, error) {
	var h Handshake
	buf := make([]byte, handshakeLen)
	if _, err := io.ReadFull(r, buf); err != nil {
		return h, fmt.Errorf("wire: read handshake: %w", err)
	}
	if int(buf[0]) != len(ProtocolMagic) || !bytes.Equal(buf[1:1+len(ProtocolMagic)], []byte(ProtocolMagic)) {
		return h, fmt.Errorf("wire: not a %s peer", ProtocolMagic)
	}
	copy(h.InfoHash[:], buf[1+len(ProtocolMagic):])
	copy(h.PeerID[:], buf[1+len(ProtocolMagic)+InfoHashLen:])
	return h, nil
}

// BlockCount returns how many blocks of blockLen cover size bytes.
func BlockCount(size int64, blockLen int) int {
	if size <= 0 || blockLen <= 0 {
		return 0
	}
	return int((size + int64(blockLen) - 1) / int64(blockLen))
}

// EncodeBitfield packs have-flags into the wire bitfield (MSB-first, like
// BitTorrent).
func EncodeBitfield(have []bool) []byte {
	if len(have) == 0 {
		return []byte{0}
	}
	out := make([]byte, (len(have)+7)/8)
	for i, h := range have {
		if h {
			out[i/8] |= 0x80 >> (i % 8)
		}
	}
	return out
}

// DecodeBitfield unpacks a wire bitfield into n have-flags. Trailing spare
// bits must be zero.
func DecodeBitfield(bf []byte, n int) ([]bool, error) {
	if n < 0 || len(bf) != (max(n, 1)+7)/8 {
		return nil, fmt.Errorf("wire: bitfield of %d bytes for %d segments", len(bf), n)
	}
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = bf[i/8]&(0x80>>(i%8)) != 0
	}
	for i := n; i < len(bf)*8; i++ {
		if bf[i/8]&(0x80>>(i%8)) != 0 {
			return nil, fmt.Errorf("wire: bitfield has spare bit %d set", i)
		}
	}
	return out, nil
}
