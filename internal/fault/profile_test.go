package fault

import (
	"strings"
	"testing"
	"time"
)

func TestBandwidthProfileCompiles(t *testing.T) {
	samples := []RateSample{
		{At: 0, BytesPerSec: 256_000},
		{At: 10 * time.Second, BytesPerSec: 48_000},
		{At: 25 * time.Second, BytesPerSec: 256_000},
	}
	p, err := BandwidthProfile(3, samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 3 {
		t.Fatalf("got %d events, want 3", len(p.Events))
	}
	for i, ev := range p.Events {
		if ev.Kind != KindLinkRate || ev.Node != 3 {
			t.Fatalf("event %d = %+v, want link_rate on node 3", i, ev)
		}
		if ev.At != samples[i].At || ev.BytesPerSec != samples[i].BytesPerSec {
			t.Fatalf("event %d = %+v, want sample %+v", i, ev, samples[i])
		}
	}
	if err := p.Validate(5); err != nil {
		t.Fatalf("compiled profile fails Validate: %v", err)
	}
}

func TestBandwidthProfileRejectsMalformed(t *testing.T) {
	cases := map[string][]RateSample{
		"negative time":  {{At: -time.Second, BytesPerSec: 1000}},
		"duplicate time": {{At: 0, BytesPerSec: 1000}, {At: 0, BytesPerSec: 2000}},
		"unsorted times": {{At: time.Second, BytesPerSec: 1000}, {At: 0, BytesPerSec: 2000}},
		"zero rate":      {{At: 0, BytesPerSec: 0}},
		"negative rate":  {{At: 0, BytesPerSec: -7}},
	}
	for name, samples := range cases {
		if _, err := BandwidthProfile(0, samples); err == nil {
			t.Errorf("BandwidthProfile accepted %s", name)
		}
	}
}

func TestParseBandwidthTrace(t *testing.T) {
	in := `# synthetic dip trace
0 256000

10.5 48000
25 256000
`
	samples, err := ParseBandwidthTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []RateSample{
		{At: 0, BytesPerSec: 256_000},
		{At: 10*time.Second + 500*time.Millisecond, BytesPerSec: 48_000},
		{At: 25 * time.Second, BytesPerSec: 256_000},
	}
	if len(samples) != len(want) {
		t.Fatalf("got %d samples, want %d", len(samples), len(want))
	}
	for i := range want {
		if samples[i] != want[i] {
			t.Fatalf("sample %d = %+v, want %+v", i, samples[i], want[i])
		}
	}
	bad := []string{
		"0 1000 extra",
		"abc 1000",
		"0 xyz",
		"5 1000\n5 2000",
		"5 1000\n4 2000",
		"0 -5",
	}
	for _, in := range bad {
		if _, err := ParseBandwidthTrace(strings.NewReader(in)); err == nil {
			t.Errorf("ParseBandwidthTrace accepted %q", in)
		}
	}
}

func TestBurstAndCorruptionWindowsValidate(t *testing.T) {
	m := GEModel{PGood: 0.005, PBad: 0.32, P13: 0.1, P31: 0.6}
	p := Merge(
		BurstLoss(1, 0, 30*time.Second, m),
		Corruption(2, 5*time.Second, 10*time.Second, 15),
	)
	if err := p.Validate(3); err != nil {
		t.Fatalf("valid burst+corruption plan rejected: %v", err)
	}
	bad := []Plan{
		// Unclosed burst window.
		{Events: []Event{{Kind: KindBurstLoss, Node: 1, Loss: m}}},
		// End without a start.
		{Events: []Event{{Kind: KindBurstLossEnd, Node: 1}}},
		// Nested burst windows on one node.
		Merge(BurstLoss(1, 0, 20*time.Second, m), BurstLoss(1, 5*time.Second, 5*time.Second, m)),
		// Invalid GE parameters.
		BurstLoss(1, 0, time.Second, GEModel{PGood: 0.5, PBad: 1.5, P13: 0.1, P31: 0.1}),
		BurstLoss(1, 0, time.Second, GEModel{PGood: 0.01, PBad: 0.3, P13: 0, P31: 0.1}),
		// Unclosed corruption window.
		{Events: []Event{{Kind: KindCorrupt, Node: 2, Percent: 10}}},
		// End without a start.
		{Events: []Event{{Kind: KindCorruptEnd, Node: 2}}},
		// Percent outside (0, 100].
		Corruption(2, 0, time.Second, 0),
		Corruption(2, 0, time.Second, 101),
		// Node out of range.
		BurstLoss(9, 0, time.Second, m),
	}
	for i, p := range bad {
		if err := p.Validate(3); err == nil {
			t.Errorf("case %d: invalid plan accepted: %+v", i, p.Events)
		}
	}
}
