// Package fault is the deterministic fault-injection subsystem: a Plan
// is a seeded, reproducible schedule of typed events — peer crash and
// rejoin (churn), seeder outage windows, tracker unavailability windows,
// and per-node link flaps or rate degradation. The emulated stack
// compiles a Plan against the sim clock (internal/simpeer); the real
// stack fires the same Plan on wall-clock timers (Scheduler).
//
// Determinism contract (DESIGN.md §9): generators draw only from their
// own seeded rand.Rand, never a global or engine RNG, so a Plan is a
// pure function of its arguments. An empty Plan schedules nothing and
// must leave every consumer bit-identical to a run without the fault
// layer at all — the golden tests enforce this.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Kind is the type of an injected fault event.
type Kind int

const (
	// KindPeerCrash takes a node offline: its flows are cancelled, its
	// in-flight segments return to the swarm pool immediately.
	KindPeerCrash Kind = iota
	// KindPeerRejoin brings a crashed node back (process restart: it
	// keeps its on-disk segments).
	KindPeerRejoin
	// KindLinkDown administratively downs a node's links, freezing every
	// flow that touches it.
	KindLinkDown
	// KindLinkUp restores a downed link.
	KindLinkUp
	// KindLinkRate degrades (or restores) a node's link bandwidth to
	// BytesPerSec without downing it.
	KindLinkRate
	// KindTrackerDown makes the tracker unavailable: joins and rejoins
	// defer until recovery; connected peers keep trading.
	KindTrackerDown
	// KindTrackerUp restores the tracker and drains deferred joins.
	KindTrackerUp
	// KindBurstLoss installs a Gilbert–Elliott burst-loss model (the
	// Loss field) on a node's access link, shadowing its baseline
	// i.i.d. loss rate; KindBurstLossEnd removes it.
	KindBurstLoss
	// KindBurstLossEnd closes a burst-loss window.
	KindBurstLossEnd
	// KindCorrupt opens a payload-corruption window on a node: each
	// downloaded segment fails checksum verification with probability
	// Percent/100 per attempt and must be fetched again.
	KindCorrupt
	// KindCorruptEnd closes a corruption window.
	KindCorruptEnd
	// KindAdversary opens an adversarial-behavior window on a node: the
	// peer misbehaves AS A SOURCE according to the Adversary field
	// (persistent corrupter, intermittent polluter, stale-have liar, or
	// slowloris). Unlike KindCorrupt — which models a victim's flaky
	// path — the adversary window marks the serving peer as the byzantine
	// party, which is what per-peer reputation must detect.
	KindAdversary
	// KindAdversaryEnd closes an adversary window.
	KindAdversaryEnd
	// KindDuplicate opens a duplicated-delivery window on a node: every
	// PIECE it serves is sent twice. Receivers must be idempotent — no
	// double-counted bytes, no state corruption (the pumba netem
	// "duplication" impairment). Per-packet duplication is below the
	// fluid flow model's granularity, so the emulation traces the window
	// without behavioral effect; the real stack delivers real duplicates.
	KindDuplicate
	// KindDuplicateEnd closes a duplication window.
	KindDuplicateEnd
)

// String returns the canonical wire/trace name of the kind.
func (k Kind) String() string {
	switch k {
	case KindPeerCrash:
		return "peer_crash"
	case KindPeerRejoin:
		return "peer_rejoin"
	case KindLinkDown:
		return "link_down"
	case KindLinkUp:
		return "link_up"
	case KindLinkRate:
		return "link_rate"
	case KindTrackerDown:
		return "tracker_down"
	case KindTrackerUp:
		return "tracker_up"
	case KindBurstLoss:
		return "burst_loss_start"
	case KindBurstLossEnd:
		return "burst_loss_end"
	case KindCorrupt:
		return "corrupt_start"
	case KindCorruptEnd:
		return "corrupt_end"
	case KindAdversary:
		return "adversary_start"
	case KindAdversaryEnd:
		return "adversary_end"
	case KindDuplicate:
		return "duplicate_start"
	case KindDuplicateEnd:
		return "duplicate_end"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// AdversaryKind selects the misbehavior of a KindAdversary window.
type AdversaryKind int

const (
	// AdvNone is the zero value: no adversarial behavior.
	AdvNone AdversaryKind = iota
	// AdvCorrupter serves bytes that always fail manifest verification:
	// every segment downloaded FROM this peer during the window is
	// discarded by the requester.
	AdvCorrupter
	// AdvPolluter corrupts intermittently: each serve fails verification
	// with probability Percent/100, drawn per attempt from a pure hash
	// (PolluteDraw) so retries get fresh draws and the schedule stays
	// bit-identical across runs and -workers values.
	AdvPolluter
	// AdvStaleHave advertises every segment (stale or fabricated HAVE
	// claims) but never serves a byte: requesters hang until their serve
	// timeout fires.
	AdvStaleHave
	// AdvSlowloris accepts requests and trickles bytes at BytesPerSec —
	// slow enough that requesters hit their serve timeout with the
	// transfer still incomplete.
	AdvSlowloris
)

// String returns the canonical trace name of the adversary kind.
func (a AdversaryKind) String() string {
	switch a {
	case AdvNone:
		return "none"
	case AdvCorrupter:
		return "corrupter"
	case AdvPolluter:
		return "polluter"
	case AdvStaleHave:
		return "stale_have"
	case AdvSlowloris:
		return "slowloris"
	default:
		return fmt.Sprintf("adversary(%d)", int(a))
	}
}

// GEModel parameterizes a Gilbert–Elliott burst-loss window. It mirrors
// netem.GEParams without importing it (fault stays stdlib-only; the
// consumers compile the two together): PGood and PBad are the
// good/bad-state packet-loss rates in [0, 1), P13 and P31 the
// good->bad and bad->good transition hazards in events per second.
type GEModel struct {
	PGood float64
	PBad  float64
	P13   float64
	P31   float64
}

// Event is one scheduled fault. Node addresses the swarm's peers by
// index (0 = seeder, 1..N = leechers) and is ignored for tracker
// events. BytesPerSec is used by KindLinkRate and the slowloris
// adversary (trickle rate), Loss only by KindBurstLoss, Percent by
// KindCorrupt and the polluter adversary, and Adversary only by
// KindAdversary.
type Event struct {
	At          time.Duration
	Kind        Kind
	Node        int
	BytesPerSec int64
	Loss        GEModel
	Percent     float64
	Adversary   AdversaryKind
}

// Plan is a schedule of fault events. The zero value is the empty plan.
type Plan struct {
	Events []Event
}

// Empty reports whether the plan schedules nothing.
func (p Plan) Empty() bool { return len(p.Events) == 0 }

// Sorted returns a copy of the plan with events in ascending At order.
// The sort is stable so same-instant events keep their authored order
// (e.g. a rejoin authored before a crash at the same instant stays
// before it), which keeps compilation deterministic.
func (p Plan) Sorted() Plan {
	evs := append([]Event(nil), p.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return Plan{Events: evs}
}

// Validate checks structural sanity: non-negative times, node indices
// within [0, maxNode], and closed windows — every crash is followed by
// a rejoin for the same node, every link-down by a link-up, every
// tracker-down by a tracker-up. Closed windows are required because an
// unclosed outage plus a sole segment holder gone would turn the
// emulation's retry loop into a livelock that only the event budget
// stops (DESIGN.md §9).
func (p Plan) Validate(maxNode int) error {
	crashed := map[int]bool{}
	linkDown := map[int]bool{}
	burst := map[int]bool{}
	corrupt := map[int]bool{}
	adversary := map[int]bool{}
	duplicate := map[int]bool{}
	trackerDown := false
	for i, ev := range p.Sorted().Events {
		if ev.At < 0 {
			return fmt.Errorf("fault: event %d (%s) at negative time %v", i, ev.Kind, ev.At)
		}
		switch ev.Kind {
		case KindTrackerDown:
			if trackerDown {
				return fmt.Errorf("fault: tracker_down at %v while already down", ev.At)
			}
			trackerDown = true
			continue
		case KindTrackerUp:
			if !trackerDown {
				return fmt.Errorf("fault: tracker_up at %v without a prior tracker_down", ev.At)
			}
			trackerDown = false
			continue
		}
		if ev.Node < 0 || ev.Node > maxNode {
			return fmt.Errorf("fault: event %d (%s) node %d out of range [0,%d]", i, ev.Kind, ev.Node, maxNode)
		}
		switch ev.Kind {
		case KindPeerCrash:
			if crashed[ev.Node] {
				return fmt.Errorf("fault: peer_crash node %d at %v while already crashed", ev.Node, ev.At)
			}
			crashed[ev.Node] = true
		case KindPeerRejoin:
			if !crashed[ev.Node] {
				return fmt.Errorf("fault: peer_rejoin node %d at %v without a prior crash", ev.Node, ev.At)
			}
			crashed[ev.Node] = false
		case KindLinkDown:
			if linkDown[ev.Node] {
				return fmt.Errorf("fault: link_down node %d at %v while already down", ev.Node, ev.At)
			}
			linkDown[ev.Node] = true
		case KindLinkUp:
			if !linkDown[ev.Node] {
				return fmt.Errorf("fault: link_up node %d at %v without a prior link_down", ev.Node, ev.At)
			}
			linkDown[ev.Node] = false
		case KindLinkRate:
			if ev.BytesPerSec <= 0 {
				return fmt.Errorf("fault: link_rate node %d at %v with non-positive rate %d", ev.Node, ev.At, ev.BytesPerSec)
			}
		case KindBurstLoss:
			if burst[ev.Node] {
				return fmt.Errorf("fault: burst_loss node %d at %v while a burst window is already open", ev.Node, ev.At)
			}
			m := ev.Loss
			if m.PGood < 0 || m.PGood >= 1 || m.PBad < 0 || m.PBad >= 1 {
				return fmt.Errorf("fault: burst_loss node %d at %v with loss rates outside [0, 1): pg=%v pb=%v", ev.Node, ev.At, m.PGood, m.PBad)
			}
			if m.P13 <= 0 || m.P31 <= 0 {
				return fmt.Errorf("fault: burst_loss node %d at %v with non-positive transition rates p13=%v p31=%v", ev.Node, ev.At, m.P13, m.P31)
			}
			burst[ev.Node] = true
		case KindBurstLossEnd:
			if !burst[ev.Node] {
				return fmt.Errorf("fault: burst_loss_end node %d at %v without an open burst window", ev.Node, ev.At)
			}
			burst[ev.Node] = false
		case KindCorrupt:
			if corrupt[ev.Node] {
				return fmt.Errorf("fault: corrupt node %d at %v while a corruption window is already open", ev.Node, ev.At)
			}
			if !(ev.Percent > 0 && ev.Percent <= 100) {
				return fmt.Errorf("fault: corrupt node %d at %v with percent %v outside (0, 100]", ev.Node, ev.At, ev.Percent)
			}
			corrupt[ev.Node] = true
		case KindCorruptEnd:
			if !corrupt[ev.Node] {
				return fmt.Errorf("fault: corrupt_end node %d at %v without an open corruption window", ev.Node, ev.At)
			}
			corrupt[ev.Node] = false
		case KindAdversary:
			if adversary[ev.Node] {
				return fmt.Errorf("fault: adversary node %d at %v while an adversary window is already open", ev.Node, ev.At)
			}
			switch ev.Adversary {
			case AdvCorrupter, AdvStaleHave:
				// No parameters.
			case AdvPolluter:
				if !(ev.Percent > 0 && ev.Percent <= 100) {
					return fmt.Errorf("fault: polluter node %d at %v with percent %v outside (0, 100]", ev.Node, ev.At, ev.Percent)
				}
			case AdvSlowloris:
				if ev.BytesPerSec <= 0 {
					return fmt.Errorf("fault: slowloris node %d at %v with non-positive trickle rate %d", ev.Node, ev.At, ev.BytesPerSec)
				}
			default:
				return fmt.Errorf("fault: adversary node %d at %v with invalid kind %d", ev.Node, ev.At, int(ev.Adversary))
			}
			adversary[ev.Node] = true
		case KindAdversaryEnd:
			if !adversary[ev.Node] {
				return fmt.Errorf("fault: adversary_end node %d at %v without an open adversary window", ev.Node, ev.At)
			}
			adversary[ev.Node] = false
		case KindDuplicate:
			if duplicate[ev.Node] {
				return fmt.Errorf("fault: duplicate node %d at %v while a duplication window is already open", ev.Node, ev.At)
			}
			duplicate[ev.Node] = true
		case KindDuplicateEnd:
			if !duplicate[ev.Node] {
				return fmt.Errorf("fault: duplicate_end node %d at %v without an open duplication window", ev.Node, ev.At)
			}
			duplicate[ev.Node] = false
		default:
			return fmt.Errorf("fault: event %d has unknown kind %d", i, int(ev.Kind))
		}
	}
	for node, down := range crashed {
		if down {
			return fmt.Errorf("fault: node %d crashes but never rejoins (unclosed window)", node)
		}
	}
	for node, down := range linkDown {
		if down {
			return fmt.Errorf("fault: node %d link goes down but never comes up (unclosed window)", node)
		}
	}
	for node, open := range burst {
		if open {
			return fmt.Errorf("fault: node %d burst-loss window never closes", node)
		}
	}
	for node, open := range corrupt {
		if open {
			return fmt.Errorf("fault: node %d corruption window never closes", node)
		}
	}
	for node, open := range adversary {
		if open {
			return fmt.Errorf("fault: node %d adversary window never closes", node)
		}
	}
	for node, open := range duplicate {
		if open {
			return fmt.Errorf("fault: node %d duplication window never closes", node)
		}
	}
	if trackerDown {
		return fmt.Errorf("fault: tracker goes down but never comes up (unclosed window)")
	}
	return nil
}

// Merge concatenates plans into one. The result preserves authored
// order within each plan; consumers sort by At via Sorted.
func Merge(plans ...Plan) Plan {
	var out Plan
	for _, p := range plans {
		out.Events = append(out.Events, p.Events...)
	}
	return out
}

// minOffline floors churn offline sessions so a rejoin never lands on
// the same instant as its crash.
const minOffline = 500 * time.Millisecond

// Churn generates exponential on/off sessions for each node: online for
// Exp(meanOnline), crash, offline for Exp(meanOffline) (floored at
// 500ms), rejoin, repeat until horizon. Every crash is paired with a
// rejoin — sessions that would cross the horizon are closed just inside
// it, so the plan always validates. The schedule is a pure function of
// (seed, nodes, horizon, meanOnline, meanOffline).
func Churn(seed int64, nodes []int, horizon, meanOnline, meanOffline time.Duration) Plan {
	rng := rand.New(rand.NewSource(seed))
	var p Plan
	for _, node := range nodes {
		at := time.Duration(rng.ExpFloat64() * float64(meanOnline))
		for at < horizon {
			off := time.Duration(rng.ExpFloat64() * float64(meanOffline))
			if off < minOffline {
				off = minOffline
			}
			up := at + off
			if up >= horizon {
				up = horizon - time.Millisecond
				if up <= at {
					break // no room to close the window; drop the crash
				}
			}
			p.Events = append(p.Events,
				Event{At: at, Kind: KindPeerCrash, Node: node},
				Event{At: up, Kind: KindPeerRejoin, Node: node})
			at = up + time.Duration(rng.ExpFloat64()*float64(meanOnline))
		}
	}
	return p.Sorted()
}

// SeederOutage takes the seeder (node 0) down for [start, start+dur).
func SeederOutage(start, dur time.Duration) Plan {
	return Plan{Events: []Event{
		{At: start, Kind: KindPeerCrash, Node: 0},
		{At: start + dur, Kind: KindPeerRejoin, Node: 0},
	}}
}

// TrackerOutage makes the tracker unavailable for [start, start+dur).
func TrackerOutage(start, dur time.Duration) Plan {
	return Plan{Events: []Event{
		{At: start, Kind: KindTrackerDown},
		{At: start + dur, Kind: KindTrackerUp},
	}}
}

// LinkFlap downs a node's links for [start, start+dur).
func LinkFlap(node int, start, dur time.Duration) Plan {
	return Plan{Events: []Event{
		{At: start, Kind: KindLinkDown, Node: node},
		{At: start + dur, Kind: KindLinkUp, Node: node},
	}}
}

// RateDip degrades a node's link rate to dipTo for [start, start+dur),
// then restores it to the given rate.
func RateDip(node int, start, dur time.Duration, dipTo, restore int64) Plan {
	return Plan{Events: []Event{
		{At: start, Kind: KindLinkRate, Node: node, BytesPerSec: dipTo},
		{At: start + dur, Kind: KindLinkRate, Node: node, BytesPerSec: restore},
	}}
}

// BurstLoss opens a Gilbert–Elliott burst-loss window on a node for
// [start, start+dur). While open, the model's two-state chain shadows
// the node's baseline i.i.d. loss rate.
func BurstLoss(node int, start, dur time.Duration, m GEModel) Plan {
	return Plan{Events: []Event{
		{At: start, Kind: KindBurstLoss, Node: node, Loss: m},
		{At: start + dur, Kind: KindBurstLossEnd, Node: node},
	}}
}

// Corruption opens a payload-corruption window on a node for
// [start, start+dur): each segment it downloads fails verification
// with probability percent/100 per attempt and is fetched again.
func Corruption(node int, start, dur time.Duration, percent float64) Plan {
	return Plan{Events: []Event{
		{At: start, Kind: KindCorrupt, Node: node, Percent: percent},
		{At: start + dur, Kind: KindCorruptEnd, Node: node},
	}}
}

// Corrupter marks a node as a persistent corrupter for
// [start, start+dur): every segment served FROM it during the window
// fails verification at the requester.
func Corrupter(node int, start, dur time.Duration) Plan {
	return Plan{Events: []Event{
		{At: start, Kind: KindAdversary, Node: node, Adversary: AdvCorrupter},
		{At: start + dur, Kind: KindAdversaryEnd, Node: node},
	}}
}

// Polluter marks a node as an intermittent polluter for
// [start, start+dur): each serve fails verification with probability
// percent/100, drawn per attempt from PolluteDraw.
func Polluter(node int, start, dur time.Duration, percent float64) Plan {
	return Plan{Events: []Event{
		{At: start, Kind: KindAdversary, Node: node, Adversary: AdvPolluter, Percent: percent},
		{At: start + dur, Kind: KindAdversaryEnd, Node: node},
	}}
}

// StaleHaveLiar marks a node as a stale-have liar for
// [start, start+dur): it advertises every segment but never serves a
// byte, so requesters hang until their serve timeout.
func StaleHaveLiar(node int, start, dur time.Duration) Plan {
	return Plan{Events: []Event{
		{At: start, Kind: KindAdversary, Node: node, Adversary: AdvStaleHave},
		{At: start + dur, Kind: KindAdversaryEnd, Node: node},
	}}
}

// Slowloris marks a node as a slowloris for [start, start+dur): it
// accepts requests and trickles bytes at trickleBytesPerSec, slow
// enough that requesters hit their serve timeout mid-transfer.
func Slowloris(node int, start, dur time.Duration, trickleBytesPerSec int64) Plan {
	return Plan{Events: []Event{
		{At: start, Kind: KindAdversary, Node: node, Adversary: AdvSlowloris, BytesPerSec: trickleBytesPerSec},
		{At: start + dur, Kind: KindAdversaryEnd, Node: node},
	}}
}

// Duplication opens a duplicated-delivery window on a node for
// [start, start+dur): every PIECE it serves is sent twice.
func Duplication(node int, start, dur time.Duration) Plan {
	return Plan{Events: []Event{
		{At: start, Kind: KindDuplicate, Node: node},
		{At: start + dur, Kind: KindDuplicateEnd, Node: node},
	}}
}
