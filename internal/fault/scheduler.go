package fault

import (
	"sync"
	"time"
)

// Scheduler fires a Plan on wall-clock timers for the real TCP stack.
// Event times are relative to Start. The fire callback runs on timer
// goroutines and must be safe for concurrent use; same-instant events
// may fire in any order (wall-clock runs have no total order to
// preserve — the deterministic compilation lives in simpeer).
type Scheduler struct {
	mu      sync.Mutex // guards timers, stopped
	timers  []*time.Timer
	stopped bool
}

// Start schedules every event in the plan and returns a handle that
// cancels the outstanding timers on Stop.
func Start(p Plan, fire func(Event)) *Scheduler {
	s := &Scheduler{}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ev := range p.Sorted().Events {
		ev := ev
		s.timers = append(s.timers, time.AfterFunc(ev.At, func() {
			s.mu.Lock()
			dead := s.stopped
			s.mu.Unlock()
			if !dead {
				fire(ev)
			}
		}))
	}
	return s
}

// Stop cancels all pending events. Events already in flight may still
// complete; events not yet fired are dropped.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return
	}
	s.stopped = true
	for _, t := range s.timers {
		t.Stop()
	}
	s.timers = nil
}
