package fault

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Trace-driven bandwidth profiles: a recorded (or synthesized) rate
// trace compiles to a piecewise-constant KindLinkRate schedule, so the
// time-varying-bandwidth failure modes that pollute the B estimate
// Eq. 1 consumes can be replayed deterministically against any node.

// RateSample is one point of a bandwidth trace: from At onward the
// node's access links run at BytesPerSec.
type RateSample struct {
	At          time.Duration
	BytesPerSec int64
}

// BandwidthProfile compiles a bandwidth trace into KindLinkRate events
// for one node. Samples must be non-negative in time, strictly
// increasing, and carry positive rates; a malformed trace returns an
// error here rather than failing Plan.Validate later with a less
// specific message.
func BandwidthProfile(node int, samples []RateSample) (Plan, error) {
	var p Plan
	for i, s := range samples {
		if s.At < 0 {
			return Plan{}, fmt.Errorf("fault: bandwidth sample %d at negative time %v", i, s.At)
		}
		if i > 0 && s.At <= samples[i-1].At {
			return Plan{}, fmt.Errorf("fault: bandwidth sample times must be strictly increasing, got %v after %v",
				s.At, samples[i-1].At)
		}
		if s.BytesPerSec <= 0 {
			return Plan{}, fmt.Errorf("fault: bandwidth sample %d with non-positive rate %d", i, s.BytesPerSec)
		}
		p.Events = append(p.Events, Event{At: s.At, Kind: KindLinkRate, Node: node, BytesPerSec: s.BytesPerSec})
	}
	return p, nil
}

// ParseBandwidthTrace reads a textual bandwidth trace: one sample per
// line as "<seconds> <bytes_per_sec>", with blank lines and '#'
// comments ignored. Seconds may be fractional. The samples must
// satisfy the same ordering rules BandwidthProfile enforces.
func ParseBandwidthTrace(r io.Reader) ([]RateSample, error) {
	var samples []RateSample
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("fault: trace line %d: want \"<seconds> <bytes_per_sec>\", got %q", lineNo, line)
		}
		secs, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("fault: trace line %d: bad time %q: %v", lineNo, fields[0], err)
		}
		rate, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fault: trace line %d: bad rate %q: %v", lineNo, fields[1], err)
		}
		at := time.Duration(secs * float64(time.Second))
		if len(samples) > 0 && at <= samples[len(samples)-1].At {
			return nil, fmt.Errorf("fault: trace line %d: sample times must be strictly increasing", lineNo)
		}
		if at < 0 {
			return nil, fmt.Errorf("fault: trace line %d: negative time %v", lineNo, at)
		}
		if rate <= 0 {
			return nil, fmt.Errorf("fault: trace line %d: non-positive rate %d", lineNo, rate)
		}
		samples = append(samples, RateSample{At: at, BytesPerSec: rate})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fault: reading trace: %w", err)
	}
	return samples, nil
}
