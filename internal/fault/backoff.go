package fault

import "time"

// Backoff parameterizes capped exponential retry backoff with
// deterministic jitter. The zero value is disabled (Enabled reports
// false) so consumers can keep their legacy fixed retry delay — and
// their goldens — unless a plan opts in.
type Backoff struct {
	Base       time.Duration // first retry delay; 0 disables backoff
	Cap        time.Duration // upper bound on the unjittered delay
	JitterFrac float64       // jitter width as a fraction of the delay, e.g. 0.5 → ±25%
}

// Enabled reports whether the backoff is configured.
func (b Backoff) Enabled() bool { return b.Base > 0 }

// Delay returns the delay before retry number attempt (0-based):
// min(Base<<attempt, Cap), jittered deterministically into
// [d·(1−J/2), d·(1+J/2)] by a splitmix64 hash of (seed, node, attempt).
// The jitter never touches an engine RNG, so enabling backoff perturbs
// no other random draw in a deterministic run.
func (b Backoff) Delay(seed int64, node, attempt int) time.Duration {
	if !b.Enabled() {
		return 0
	}
	d := b.Base
	// Shift with overflow guard: past ~63 doublings (or once the cap is
	// hit) the delay saturates at Cap.
	for i := 0; i < attempt; i++ {
		if b.Cap > 0 && d >= b.Cap {
			break
		}
		if d > 1<<62/2 {
			d = 1 << 62
			break
		}
		d *= 2
	}
	if b.Cap > 0 && d > b.Cap {
		d = b.Cap
	}
	if b.JitterFrac > 0 {
		h := splitmix64(uint64(seed) ^ uint64(node)*0x9e3779b97f4a7c15 ^ uint64(attempt)*0xbf58476d1ce4e5b9)
		// u in [0,1) from the top 53 bits.
		u := float64(h>>11) / (1 << 53)
		frac := 1 + b.JitterFrac*(u-0.5)
		d = time.Duration(float64(d) * frac)
	}
	if d < time.Microsecond {
		d = time.Microsecond
	}
	return d
}

// CorruptDraw returns the uniform draw in [0, 1) deciding whether
// download attempt number attempt of segment seg on node fails
// verification inside a corruption window. The draw is a pure
// splitmix64 hash of (seed, node, seg, attempt) — never an engine RNG —
// so corruption perturbs no other random draw, is identical across
// -workers values, and each retry of the same segment gets a fresh
// draw (a fixed per-segment draw would livelock at high percentages).
// A segment is corrupted when CorruptDraw(...)*100 < Percent.
func CorruptDraw(seed int64, node, seg, attempt int) float64 {
	h := splitmix64(uint64(seed) ^
		uint64(node)*0x9e3779b97f4a7c15 ^
		uint64(seg)*0xbf58476d1ce4e5b9 ^
		uint64(attempt)*0x94d049bb133111eb)
	return float64(h>>11) / (1 << 53)
}

// PolluteDraw returns the uniform draw in [0, 1) deciding whether a
// polluter at srcNode corrupts attempt number attempt of segment seg
// requested by dstNode. Like CorruptDraw it is a pure splitmix64 hash —
// never an engine RNG — so pollution perturbs no other random draw, is
// identical across -workers values, and each retry gets a fresh draw
// (a fixed per-pair draw would livelock at high pollution rates when
// the polluter is the only remaining source). The extra srcNode key
// keeps draws independent across adversaries serving the same victim.
// A serve is polluted when PolluteDraw(...)*100 < Percent.
func PolluteDraw(seed int64, srcNode, dstNode, seg, attempt int) float64 {
	h := splitmix64(splitmix64(uint64(seed)^
		uint64(srcNode)*0x9e3779b97f4a7c15^
		uint64(seg)*0xbf58476d1ce4e5b9^
		uint64(attempt)*0x94d049bb133111eb) ^
		uint64(dstNode)*0x9e3779b97f4a7c15)
	return float64(h>>11) / (1 << 53)
}

// splitmix64 is the finalizer from Vigna's SplitMix64: a cheap,
// well-mixed pure hash — exactly what deterministic jitter needs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
