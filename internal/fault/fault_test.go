package fault

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestChurnDeterministic(t *testing.T) {
	nodes := []int{1, 3, 5}
	a := Churn(42, nodes, 2*time.Minute, 20*time.Second, 5*time.Second)
	b := Churn(42, nodes, 2*time.Minute, 20*time.Second, 5*time.Second)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different churn plans")
	}
	c := Churn(43, nodes, 2*time.Minute, 20*time.Second, 5*time.Second)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical churn plans")
	}
	if a.Empty() {
		t.Fatal("expected a 2-minute churn plan with 20s mean online to schedule events")
	}
}

func TestChurnWindowsClosedAndValid(t *testing.T) {
	horizon := 90 * time.Second
	p := Churn(7, []int{1, 2, 3, 4}, horizon, 10*time.Second, 3*time.Second)
	if err := p.Validate(4); err != nil {
		t.Fatalf("churn plan invalid: %v", err)
	}
	for _, ev := range p.Events {
		if ev.At < 0 || ev.At >= horizon {
			t.Fatalf("event %v at %v outside [0, %v)", ev.Kind, ev.At, horizon)
		}
	}
	// Crash/rejoin must strictly alternate per node.
	down := map[int]bool{}
	for _, ev := range p.Events {
		switch ev.Kind {
		case KindPeerCrash:
			if down[ev.Node] {
				t.Fatalf("node %d crashed twice without rejoin", ev.Node)
			}
			down[ev.Node] = true
		case KindPeerRejoin:
			if !down[ev.Node] {
				t.Fatalf("node %d rejoined without crash", ev.Node)
			}
			down[ev.Node] = false
		}
	}
}

func TestSortedStableAndNonMutating(t *testing.T) {
	p := Plan{Events: []Event{
		{At: 2 * time.Second, Kind: KindPeerRejoin, Node: 1},
		{At: time.Second, Kind: KindPeerCrash, Node: 1},
		{At: 2 * time.Second, Kind: KindLinkUp, Node: 2},
	}}
	s := p.Sorted()
	if p.Events[0].Kind != KindPeerRejoin {
		t.Fatal("Sorted mutated the receiver")
	}
	want := []Kind{KindPeerCrash, KindPeerRejoin, KindLinkUp}
	for i, ev := range s.Events {
		if ev.Kind != want[i] {
			t.Fatalf("event %d: got %v want %v (stable same-instant order lost)", i, ev.Kind, want[i])
		}
	}
}

func TestValidateRejectsBrokenPlans(t *testing.T) {
	cases := []struct {
		name string
		p    Plan
	}{
		{"unclosed crash", Plan{Events: []Event{{At: 0, Kind: KindPeerCrash, Node: 1}}}},
		{"rejoin without crash", Plan{Events: []Event{{At: 0, Kind: KindPeerRejoin, Node: 1}}}},
		{"unclosed link down", Plan{Events: []Event{{At: 0, Kind: KindLinkDown, Node: 1}}}},
		{"unclosed tracker down", Plan{Events: []Event{{At: 0, Kind: KindTrackerDown}}}},
		{"tracker up first", Plan{Events: []Event{{At: 0, Kind: KindTrackerUp}}}},
		{"node out of range", Merge(SeederOutage(0, time.Second), LinkFlap(9, 0, time.Second))},
		{"negative time", SeederOutage(-time.Second, 500*time.Millisecond)},
		{"zero link rate", Plan{Events: []Event{{At: 0, Kind: KindLinkRate, Node: 1}}}},
		{"unclosed adversary", Plan{Events: []Event{{At: 0, Kind: KindAdversary, Node: 1, Adversary: AdvCorrupter}}}},
		{"adversary end first", Plan{Events: []Event{{At: 0, Kind: KindAdversaryEnd, Node: 1}}}},
		{"double adversary", Merge(Corrupter(1, 0, 5*time.Second), StaleHaveLiar(1, time.Second, time.Second))},
		{"adversary none kind", Plan{Events: []Event{
			{At: 0, Kind: KindAdversary, Node: 1, Adversary: AdvNone},
			{At: time.Second, Kind: KindAdversaryEnd, Node: 1},
		}}},
		{"polluter zero percent", Polluter(1, 0, time.Second, 0)},
		{"polluter over 100", Polluter(1, 0, time.Second, 101)},
		{"slowloris zero trickle", Slowloris(1, 0, time.Second, 0)},
		{"unclosed duplicate", Plan{Events: []Event{{At: 0, Kind: KindDuplicate, Node: 1}}}},
		{"duplicate end first", Plan{Events: []Event{{At: 0, Kind: KindDuplicateEnd, Node: 1}}}},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(3); err == nil {
			t.Errorf("%s: Validate accepted a broken plan", tc.name)
		}
	}
	ok := Merge(
		SeederOutage(time.Second, 2*time.Second),
		TrackerOutage(500*time.Millisecond, time.Second),
		LinkFlap(2, 0, 3*time.Second),
		RateDip(1, time.Second, time.Second, 16<<10, 64<<10),
		Corrupter(1, 0, 4*time.Second),
		Polluter(2, time.Second, 2*time.Second, 60),
		StaleHaveLiar(3, 0, time.Second),
		Slowloris(3, 2*time.Second, time.Second, 1<<10),
		Duplication(2, 0, 5*time.Second),
	)
	if err := ok.Validate(3); err != nil {
		t.Fatalf("Validate rejected a well-formed plan: %v", err)
	}
}

func TestAdversaryConstructorsAndNames(t *testing.T) {
	p := Polluter(2, time.Second, 3*time.Second, 25)
	if len(p.Events) != 2 {
		t.Fatalf("Polluter produced %d events, want 2", len(p.Events))
	}
	open, close := p.Events[0], p.Events[1]
	if open.Kind != KindAdversary || open.Adversary != AdvPolluter || open.Percent != 25 || open.Node != 2 {
		t.Fatalf("bad polluter open event: %+v", open)
	}
	if close.Kind != KindAdversaryEnd || close.At != 4*time.Second {
		t.Fatalf("bad polluter close event: %+v", close)
	}
	names := map[string]string{
		KindAdversary.String():    "adversary_start",
		KindAdversaryEnd.String(): "adversary_end",
		KindDuplicate.String():    "duplicate_start",
		KindDuplicateEnd.String(): "duplicate_end",
		AdvCorrupter.String():     "corrupter",
		AdvPolluter.String():      "polluter",
		AdvStaleHave.String():     "stale_have",
		AdvSlowloris.String():     "slowloris",
	}
	for got, want := range names {
		if got != want {
			t.Errorf("String(): got %q want %q", got, want)
		}
	}
}

func TestPolluteDrawPureAndSensitive(t *testing.T) {
	if PolluteDraw(1, 2, 3, 4, 5) != PolluteDraw(1, 2, 3, 4, 5) {
		t.Fatal("PolluteDraw is not a pure function of its arguments")
	}
	base := PolluteDraw(1, 2, 3, 4, 5)
	variants := []float64{
		PolluteDraw(2, 2, 3, 4, 5), // seed
		PolluteDraw(1, 3, 3, 4, 5), // src
		PolluteDraw(1, 2, 4, 4, 5), // dst
		PolluteDraw(1, 2, 3, 5, 5), // seg
		PolluteDraw(1, 2, 3, 4, 6), // attempt
	}
	for i, v := range variants {
		if v == base {
			t.Errorf("variant %d: draw insensitive to its key component", i)
		}
		if v < 0 || v >= 1 {
			t.Errorf("variant %d: draw %v outside [0, 1)", i, v)
		}
	}
	// Draws should be roughly uniform: over 1000 attempts at 60%%
	// pollution, between 450 and 750 should fall under the threshold.
	hits := 0
	for a := 0; a < 1000; a++ {
		if PolluteDraw(7, 1, 2, 3, a)*100 < 60 {
			hits++
		}
	}
	if hits < 450 || hits > 750 {
		t.Fatalf("60%% pollution hit %d/1000 attempts — draw badly skewed", hits)
	}
}

func TestBackoffDeterministicCappedJittered(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: 2 * time.Second, JitterFrac: 0.5}
	if !b.Enabled() {
		t.Fatal("configured backoff reports disabled")
	}
	if (Backoff{}).Enabled() {
		t.Fatal("zero backoff reports enabled")
	}
	if d := (Backoff{}).Delay(1, 2, 3); d != 0 {
		t.Fatalf("disabled backoff returned %v", d)
	}
	for attempt := 0; attempt < 12; attempt++ {
		d1 := b.Delay(1000, 3, attempt)
		d2 := b.Delay(1000, 3, attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: nondeterministic delay %v vs %v", attempt, d1, d2)
		}
		// Unjittered envelope: min(Base<<attempt, Cap) ± 25%.
		base := b.Base << attempt
		if attempt > 5 || base > b.Cap {
			base = b.Cap
		}
		lo := time.Duration(float64(base) * 0.74)
		hi := time.Duration(float64(base) * 1.26)
		if d1 < lo || d1 > hi {
			t.Fatalf("attempt %d: delay %v outside jitter envelope [%v, %v]", attempt, d1, lo, hi)
		}
	}
	if b.Delay(1000, 3, 2) == b.Delay(1001, 3, 2) &&
		b.Delay(1000, 3, 3) == b.Delay(1001, 3, 3) &&
		b.Delay(1000, 4, 2) == b.Delay(1000, 5, 2) {
		t.Fatal("jitter appears insensitive to seed and node")
	}
	// Huge attempt counts must not overflow into negative delays.
	if d := b.Delay(1, 1, 400); d <= 0 || d > time.Duration(float64(b.Cap)*1.26) {
		t.Fatalf("attempt 400: delay %v escaped the cap", d)
	}
}

func TestSchedulerFiresAndStops(t *testing.T) {
	var mu sync.Mutex
	fired := map[Kind]int{}
	p := Plan{Events: []Event{
		{At: 0, Kind: KindTrackerDown},
		{At: 10 * time.Millisecond, Kind: KindTrackerUp},
		{At: 5 * time.Second, Kind: KindPeerCrash, Node: 1}, // must be cancelled by Stop
	}}
	s := Start(p, func(ev Event) {
		mu.Lock()
		fired[ev.Kind]++
		mu.Unlock()
	})
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		done := fired[KindTrackerDown] == 1 && fired[KindTrackerUp] == 1
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("scheduler did not fire near-term events in time")
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	s.Stop() // idempotent
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if fired[KindPeerCrash] != 0 {
		t.Fatal("Stop did not cancel the pending event")
	}
}
