package splicer

import (
	"testing"
	"time"

	"p2psplice/internal/media"
)

func testVideo(t *testing.T, dur time.Duration, seed int64) *media.Video {
	t.Helper()
	v, err := media.Synthesize(media.DefaultEncoderConfig(), dur, seed)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	return v
}

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{KindGOP, "gop"},
		{KindDuration, "duration"},
		{KindAdaptive, "adaptive"},
		{Kind(9), "Kind(9)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.k, got, tt.want)
		}
	}
}

func TestGOPSplicerPartition(t *testing.T) {
	v := testVideo(t, 2*time.Minute, 1)
	segs, err := GOPSplicer{}.Splice(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSegments(v, segs); err != nil {
		t.Fatal(err)
	}
	if len(segs) != len(v.GOPs) {
		t.Errorf("got %d segments, want %d (one per GOP)", len(segs), len(v.GOPs))
	}
}

func TestGOPSplicerZeroOverhead(t *testing.T) {
	v := testVideo(t, time.Minute, 2)
	segs, err := GOPSplicer{}.Splice(v)
	if err != nil {
		t.Fatal(err)
	}
	st := ComputeStats(segs)
	if st.OverheadBytes != 0 {
		t.Errorf("GOP splicing overhead = %d bytes, want 0", st.OverheadBytes)
	}
	if st.InsertedIFrames != 0 {
		t.Errorf("GOP splicing inserted %d I frames, want 0", st.InsertedIFrames)
	}
	if st.TotalBytes != v.TotalBytes() {
		t.Errorf("GOP splicing total %d, want %d", st.TotalBytes, v.TotalBytes())
	}
}

func TestGOPSplicerEmpty(t *testing.T) {
	if _, err := (GOPSplicer{}).Splice(&media.Video{}); err == nil {
		t.Error("want error for empty video")
	}
	if _, err := (GOPSplicer{}).Splice(nil); err == nil {
		t.Error("want error for nil video")
	}
}

func TestDurationSplicerPartition(t *testing.T) {
	v := testVideo(t, 2*time.Minute, 1)
	for _, target := range []time.Duration{2 * time.Second, 4 * time.Second, 8 * time.Second} {
		segs, err := DurationSplicer{Target: target}.Splice(v)
		if err != nil {
			t.Fatalf("%v: %v", target, err)
		}
		if err := ValidateSegments(v, segs); err != nil {
			t.Fatalf("%v: %v", target, err)
		}
		frameDur := time.Second / time.Duration(v.Config.FPS)
		for i, s := range segs {
			if d := s.Duration(); d > target+frameDur {
				t.Errorf("%v: segment %d duration %v exceeds target+frame", target, i, d)
			}
			// All but the last segment land within a frame of the target
			// (absolute-grid cuts can undershoot by up to one frame).
			if i < len(segs)-1 {
				if d := s.Duration(); d < target-frameDur {
					t.Errorf("%v: segment %d duration %v below target-frame", target, i, d)
				}
			}
		}
		// Variant alignment: every cut lands on the absolute k*target grid
		// (the first frame at or after each multiple of the target).
		for i, s := range segs[1:] {
			k := time.Duration(i + 1)
			if s.Start < k*target || s.Start >= k*target+frameDur+target {
				t.Errorf("%v: segment %d starts at %v, not on the absolute grid", target, i+1, s.Start)
			}
		}
	}
}

func TestDurationSplicerOverhead(t *testing.T) {
	v := testVideo(t, 2*time.Minute, 3)
	st2 := mustStats(t, DurationSplicer{Target: 2 * time.Second}, v)
	st4 := mustStats(t, DurationSplicer{Target: 4 * time.Second}, v)
	st8 := mustStats(t, DurationSplicer{Target: 8 * time.Second}, v)
	if st2.OverheadBytes <= 0 {
		t.Error("2s splicing should have positive overhead")
	}
	// Shorter segments insert more I frames: overhead must be monotone.
	if !(st2.OverheadBytes >= st4.OverheadBytes && st4.OverheadBytes >= st8.OverheadBytes) {
		t.Errorf("overhead not monotone: 2s=%d 4s=%d 8s=%d",
			st2.OverheadBytes, st4.OverheadBytes, st8.OverheadBytes)
	}
	// Source bytes are invariant across techniques.
	if st2.SourceBytes != v.TotalBytes() || st8.SourceBytes != v.TotalBytes() {
		t.Error("SourceBytes should equal the stream size")
	}
}

func mustStats(t *testing.T, sp Splicer, v *media.Video) Stats {
	t.Helper()
	segs, err := sp.Splice(v)
	if err != nil {
		t.Fatalf("%s: %v", sp.Name(), err)
	}
	return ComputeStats(segs)
}

func TestDurationSplicerSizeSpreadNarrowerThanGOP(t *testing.T) {
	// The paper's core claim about segment-size distributions: duration
	// splicing yields segments "neither too small nor too big" while GOP
	// splicing is heavy-tailed.
	v := testVideo(t, 2*time.Minute, 4)
	gop := mustStats(t, GOPSplicer{}, v)
	dur := mustStats(t, DurationSplicer{Target: 4 * time.Second}, v)
	gopSpread := float64(gop.MaxBytes) / float64(gop.MinBytes)
	durSpread := float64(dur.MaxBytes) / float64(dur.MinBytes)
	if durSpread >= gopSpread {
		t.Errorf("duration spread %.1f not narrower than GOP spread %.1f", durSpread, gopSpread)
	}
}

func TestDurationSplicerErrors(t *testing.T) {
	v := testVideo(t, 10*time.Second, 1)
	if _, err := (DurationSplicer{Target: 0}).Splice(v); err == nil {
		t.Error("zero target: want error")
	}
	if _, err := (DurationSplicer{Target: time.Second}).Splice(nil); err == nil {
		t.Error("nil video: want error")
	}
}

func TestDurationSplicerName(t *testing.T) {
	if got := (DurationSplicer{Target: 4 * time.Second}).Name(); got != "4s" {
		t.Errorf("Name() = %q, want 4s", got)
	}
	if got := (DurationSplicer{Target: 1500 * time.Millisecond}).Name(); got != "1.5s" {
		t.Errorf("Name() = %q, want 1.5s", got)
	}
}

func TestAdaptiveSplicerTarget(t *testing.T) {
	v := testVideo(t, time.Minute, 5)
	rate := float64(v.TotalBytes()) / v.Duration().Seconds()
	a := AdaptiveSplicer{Bandwidth: int64(rate * 2), BufferDepth: 4 * time.Second}
	target, err := a.TargetFor(v)
	if err != nil {
		t.Fatal(err)
	}
	// W <= B*T with B = 2*rate, T = 4s gives a target of ~8s of video.
	if target < 7*time.Second || target > 9*time.Second {
		t.Errorf("target = %v, want ~8s", target)
	}
	segs, err := a.Splice(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSegments(v, segs); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveSplicerClamps(t *testing.T) {
	v := testVideo(t, time.Minute, 5)
	low := AdaptiveSplicer{Bandwidth: 1, BufferDepth: time.Second}
	target, err := low.TargetFor(v)
	if err != nil {
		t.Fatal(err)
	}
	if target != time.Second {
		t.Errorf("low-bandwidth target = %v, want clamped to 1s", target)
	}
	high := AdaptiveSplicer{Bandwidth: 1 << 40, BufferDepth: time.Minute}
	target, err = high.TargetFor(v)
	if err != nil {
		t.Fatal(err)
	}
	if target != 16*time.Second {
		t.Errorf("high-bandwidth target = %v, want clamped to 16s", target)
	}
}

func TestAdaptiveSplicerErrors(t *testing.T) {
	v := testVideo(t, 10*time.Second, 1)
	cases := []AdaptiveSplicer{
		{Bandwidth: 0, BufferDepth: time.Second},
		{Bandwidth: 1000, BufferDepth: 0},
		{Bandwidth: 1000, BufferDepth: time.Second, MinTarget: 8 * time.Second, MaxTarget: 2 * time.Second},
	}
	for i, a := range cases {
		if _, err := a.Splice(v); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	if _, err := (AdaptiveSplicer{Bandwidth: 1000, BufferDepth: time.Second}).Splice(nil); err == nil {
		t.Error("nil video: want error")
	}
}

func TestStatsEmptyAndString(t *testing.T) {
	var st Stats
	if st.OverheadRatio() != 0 || st.MeanBytes() != 0 {
		t.Error("empty stats should report zeros")
	}
	v := testVideo(t, 10*time.Second, 1)
	segs, err := DurationSplicer{Target: 2 * time.Second}.Splice(v)
	if err != nil {
		t.Fatal(err)
	}
	st = ComputeStats(segs)
	if st.String() == "" {
		t.Error("String() should not be empty")
	}
	if st.MeanBytes() <= 0 {
		t.Error("MeanBytes should be positive")
	}
}

func TestValidateSegmentsRejectsBadInput(t *testing.T) {
	v := testVideo(t, 10*time.Second, 1)
	segs, err := GOPSplicer{}.Splice(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSegments(v, nil); err == nil {
		t.Error("nil segments: want error")
	}
	// Drop a segment: coverage breaks.
	if err := ValidateSegments(v, segs[:len(segs)-1]); err == nil {
		t.Error("truncated segments: want error")
	}
	// Reorder: index breaks.
	if len(segs) >= 2 {
		bad := make([]Segment, len(segs))
		copy(bad, segs)
		bad[0], bad[1] = bad[1], bad[0]
		if err := ValidateSegments(v, bad); err == nil {
			t.Error("reordered segments: want error")
		}
	}
}

func TestSegmentValidate(t *testing.T) {
	s := Segment{Index: 0}
	if err := s.Validate(); err == nil {
		t.Error("empty segment: want error")
	}
	s.Frames = []media.Frame{{Type: media.FrameP}}
	if err := s.Validate(); err == nil {
		t.Error("P-start segment: want error")
	}
	s.Frames = []media.Frame{{Type: media.FrameI, PTS: time.Second}}
	s.Start = 0
	if err := s.Validate(); err == nil {
		t.Error("mismatched start: want error")
	}
}

func TestOptimalDuration(t *testing.T) {
	v := testVideo(t, time.Minute, 7)
	rate := float64(v.TotalBytes()) / v.Duration().Seconds()

	// Plenty of bandwidth: the smallest candidate is feasible.
	d, err := OptimalDuration(v, int64(rate*4), 50*time.Millisecond, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if d != time.Second {
		t.Errorf("rich link picked %v, want 1s", d)
	}
	// Bandwidth barely above the rate: overhead forces a larger duration.
	d2, err := OptimalDuration(v, int64(rate*1.08), 50*time.Millisecond, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if d2 <= time.Second {
		t.Errorf("tight link picked %v, want > 1s", d2)
	}
	// Bandwidth below the rate: infeasible fallback, capped at 8s.
	d3, err := OptimalDuration(v, int64(rate*0.5), 50*time.Millisecond, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if d3 > 8*time.Second {
		t.Errorf("infeasible fallback picked %v, want <= 8s", d3)
	}
	// Monotonicity within the feasible regime: more bandwidth never
	// increases the duration. (At the feasibility edge the capped
	// infeasible fallback may sit below the first feasible duration.)
	prev := 17 * time.Second
	for _, mult := range []float64{1.1, 1.5, 2, 4, 8} {
		d, err := OptimalDuration(v, int64(rate*mult), 50*time.Millisecond, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if d > prev {
			t.Errorf("duration grew with bandwidth: %v at %.2fx after %v", d, mult, prev)
		}
		prev = d
	}
}

func TestOptimalDurationErrors(t *testing.T) {
	v := testVideo(t, 10*time.Second, 1)
	if _, err := OptimalDuration(nil, 1000, 0, 0.9); err == nil {
		t.Error("nil video: want error")
	}
	if _, err := OptimalDuration(v, 0, 0, 0.9); err == nil {
		t.Error("zero bandwidth: want error")
	}
	if _, err := OptimalDuration(v, 1000, -time.Second, 0.9); err == nil {
		t.Error("negative lag: want error")
	}
	// Out-of-range safety falls back to the default rather than erroring.
	if _, err := OptimalDuration(v, 1<<30, 0, 42); err != nil {
		t.Errorf("safety fallback: %v", err)
	}
}
