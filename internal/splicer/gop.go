package splicer

import (
	"fmt"

	"p2psplice/internal/media"
)

// GOPSplicer emits one segment per closed GOP. This is the paper's
// zero-overhead technique: no frames are re-encoded, but segment sizes
// inherit the (heavy-tailed) GOP duration distribution, so a stationary
// scene can yield a very large segment.
type GOPSplicer struct{}

var _ Splicer = GOPSplicer{}

// Name implements Splicer.
func (GOPSplicer) Name() string { return "gop" }

// Kind implements Splicer.
func (GOPSplicer) Kind() Kind { return KindGOP }

// Splice implements Splicer.
func (GOPSplicer) Splice(v *media.Video) ([]Segment, error) {
	if v == nil || len(v.GOPs) == 0 {
		return nil, fmt.Errorf("splicer: gop: empty video")
	}
	segs := make([]Segment, 0, len(v.GOPs))
	for i, g := range v.GOPs {
		frames := make([]media.Frame, len(g.Frames))
		copy(frames, g.Frames)
		segs = append(segs, Segment{
			Index:       i,
			Start:       g.Start(),
			Frames:      frames,
			SourceBytes: g.Bytes(),
		})
	}
	return segs, nil
}
