package splicer

import (
	"fmt"
	"time"

	"p2psplice/internal/media"
)

// DurationSplicer cuts the clip into frame-accurate segments of a fixed
// target display duration (the paper's 2 s / 4 s / 8 s variants, and the
// Netflix/Hulu style cited there).
//
// A cut that lands mid-GOP makes the new segment start on a P or B frame,
// which cannot be decoded independently; the splicer therefore re-encodes
// that frame as an I frame. The re-encoded frame is modelled at the size of
// the source GOP's own I frame — the picture content is the same, only the
// coding type changes — which is exactly the byte overhead the paper
// attributes to duration-based splicing.
type DurationSplicer struct {
	// Target is the segment display duration. Must be positive.
	Target time.Duration
}

var _ Splicer = DurationSplicer{}

// Name implements Splicer. It renders like "4s" or "1.5s".
func (d DurationSplicer) Name() string {
	secs := d.Target.Seconds()
	if secs == float64(int64(secs)) {
		return fmt.Sprintf("%ds", int64(secs))
	}
	return fmt.Sprintf("%gs", secs)
}

// Kind implements Splicer.
func (DurationSplicer) Kind() Kind { return KindDuration }

// Splice implements Splicer.
func (d DurationSplicer) Splice(v *media.Video) ([]Segment, error) {
	if d.Target <= 0 {
		return nil, fmt.Errorf("splicer: duration: non-positive target %v", d.Target)
	}
	if v == nil || len(v.GOPs) == 0 {
		return nil, fmt.Errorf("splicer: duration: empty video")
	}

	// Pre-compute, for every frame, the I-frame size of its source GOP so a
	// mid-GOP cut knows the cost of the re-encoded keyframe.
	gopISize := make([]int64, 0, v.FrameCount())
	for _, g := range v.GOPs {
		is := g.IFrameBytes()
		for range g.Frames {
			gopISize = append(gopISize, is)
		}
	}
	frames := v.Frames()

	// Cuts happen at the first frame whose PTS reaches k*Target for
	// k = 1, 2, ... — absolute-timeline boundaries, like a real HLS
	// segmenter. Cutting on the absolute grid (rather than accumulating
	// per-segment durations) makes different duration variants of the same
	// clip share boundaries wherever their grids coincide, which is what
	// lets a hybrid-CDN client switch between a 2s/4s/8s duration ladder.
	var segs []Segment
	cur := Segment{Index: 0, Start: 0}
	boundary := d.Target
	flush := func(nextStart time.Duration) {
		if len(cur.Frames) == 0 {
			return
		}
		segs = append(segs, cur)
		cur = Segment{Index: len(segs), Start: nextStart}
	}
	for fi, f := range frames {
		if f.PTS >= boundary {
			flush(f.PTS)
			for f.PTS >= boundary {
				boundary += d.Target
			}
		}
		if len(cur.Frames) == 0 && f.Type != media.FrameI {
			// Mid-GOP cut: re-encode the first frame as I.
			cur.InsertedIFrame = true
			cur.SourceBytes += f.Bytes
			f.Type = media.FrameI
			f.Bytes = gopISize[fi]
		} else {
			cur.SourceBytes += f.Bytes
		}
		cur.Frames = append(cur.Frames, f)
	}
	flush(0)
	return segs, nil
}
