// Package splicer implements the paper's video splicing techniques: GOP-based
// splicing (segments are closed GOPs, zero byte overhead, heavy-tailed sizes)
// and duration-based splicing (fixed-duration, frame-accurate segments that
// pay an inserted I frame at each mid-GOP cut). It also provides the adaptive
// splicer sketched in the paper's Section IV/VIII, which picks the segment
// duration from the hybrid-CDN bound W <= B*T.
package splicer

import (
	"fmt"
	"time"

	"p2psplice/internal/media"
)

// Kind identifies a splicing technique.
type Kind uint8

const (
	// KindGOP splices at closed-GOP boundaries.
	KindGOP Kind = iota
	// KindDuration splices at fixed display-duration boundaries.
	KindDuration
	// KindAdaptive is duration splicing with a size-derived target duration.
	KindAdaptive
)

// String returns a short human-readable name.
func (k Kind) String() string {
	switch k {
	case KindGOP:
		return "gop"
	case KindDuration:
		return "duration"
	case KindAdaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Segment is one spliced piece of the clip. Every segment starts with an I
// frame and is independently playable.
type Segment struct {
	// Index is the segment's position in playback order.
	Index int
	// Start is the presentation time of the segment's first frame.
	Start time.Duration
	// Frames holds the member frames in display order. When the splicer cut
	// mid-GOP, Frames[0] has been re-encoded as an I frame (its Type and
	// Bytes differ from the source frame; Index/PTS/Duration are preserved).
	Frames []media.Frame
	// InsertedIFrame records whether Frames[0] was re-encoded as an I frame
	// by the splicer (the duration splicer's byte overhead).
	InsertedIFrame bool
	// SourceBytes is the coded size of the segment's frames as they appear
	// in the source stream, before any I-frame insertion.
	SourceBytes int64
}

// Duration returns the display duration of the segment.
func (s Segment) Duration() time.Duration {
	var d time.Duration
	for _, f := range s.Frames {
		d += f.Duration
	}
	return d
}

// Bytes returns the transfer size of the segment (including any inserted
// I-frame overhead).
func (s Segment) Bytes() int64 {
	var n int64
	for _, f := range s.Frames {
		n += f.Bytes
	}
	return n
}

// Overhead returns the extra bytes this segment transfers relative to the
// source stream (zero unless an I frame was inserted).
func (s Segment) Overhead() int64 {
	return s.Bytes() - s.SourceBytes
}

// End returns the presentation time at which the segment's last frame ends.
func (s Segment) End() time.Duration {
	return s.Start + s.Duration()
}

// Validate checks that the segment is independently playable.
func (s Segment) Validate() error {
	if len(s.Frames) == 0 {
		return fmt.Errorf("splicer: segment %d is empty", s.Index)
	}
	if s.Frames[0].Type != media.FrameI {
		return fmt.Errorf("splicer: segment %d starts with %s frame", s.Index, s.Frames[0].Type)
	}
	if s.Frames[0].PTS != s.Start {
		return fmt.Errorf("splicer: segment %d Start %v != first frame PTS %v", s.Index, s.Start, s.Frames[0].PTS)
	}
	return nil
}

// Splicer cuts a video into segments.
type Splicer interface {
	// Name returns a short label for reports ("gop", "4s", ...).
	Name() string
	// Kind returns the technique family.
	Kind() Kind
	// Splice cuts the clip. The returned segments partition the clip's
	// frames in order.
	Splice(v *media.Video) ([]Segment, error)
}

// ValidateSegments checks that segs exactly partition v: contiguous frame
// indices, contiguous presentation times covering the whole clip, and each
// segment independently playable.
func ValidateSegments(v *media.Video, segs []Segment) error {
	if len(segs) == 0 {
		return fmt.Errorf("splicer: no segments")
	}
	var at time.Duration
	idx := 0
	for i, s := range segs {
		if s.Index != i {
			return fmt.Errorf("splicer: segment %d has Index %d", i, s.Index)
		}
		if err := s.Validate(); err != nil {
			return err
		}
		if s.Start != at {
			return fmt.Errorf("splicer: segment %d starts at %v, want %v", i, s.Start, at)
		}
		for _, f := range s.Frames {
			if f.Index != idx {
				return fmt.Errorf("splicer: segment %d: frame index %d, want %d", i, f.Index, idx)
			}
			idx++
			at += f.Duration
		}
	}
	if at != v.Duration() {
		return fmt.Errorf("splicer: segments cover %v, want %v", at, v.Duration())
	}
	if idx != v.FrameCount() {
		return fmt.Errorf("splicer: segments contain %d frames, want %d", idx, v.FrameCount())
	}
	return nil
}
