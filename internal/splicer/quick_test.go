package splicer

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"p2psplice/internal/media"
)

func randomVideo(r *rand.Rand) (*media.Video, error) {
	cfg := media.DefaultEncoderConfig()
	cfg.FPS = 12 + r.Intn(30)
	cfg.BytesPerSecond = int64(32*1024 + r.Intn(256*1024))
	cfg.MaxGOP = time.Duration(2+r.Intn(14)) * time.Second
	dur := time.Duration(3+r.Intn(60)) * time.Second
	return media.Synthesize(cfg, dur, r.Int63())
}

// Property: every splicer produces a valid partition of every clip.
func TestQuickSplicersPartition(t *testing.T) {
	f := func(seed int64, targetSecs uint8) bool {
		r := rand.New(rand.NewSource(seed))
		v, err := randomVideo(r)
		if err != nil {
			return false
		}
		target := time.Duration(int(targetSecs)%10+1) * time.Second
		splicers := []Splicer{
			GOPSplicer{},
			DurationSplicer{Target: target},
			AdaptiveSplicer{Bandwidth: int64(1 + r.Intn(1<<20)), BufferDepth: time.Duration(1+r.Intn(10)) * time.Second},
		}
		for _, sp := range splicers {
			segs, err := sp.Splice(v)
			if err != nil {
				t.Logf("%s: %v", sp.Name(), err)
				return false
			}
			if err := ValidateSegments(v, segs); err != nil {
				t.Logf("%s: %v", sp.Name(), err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: duration splicing never loses bytes — transfer size is at least
// the source size, and the excess equals the sum of per-segment overheads.
func TestQuickDurationOverheadAccounting(t *testing.T) {
	f := func(seed int64, targetSecs uint8) bool {
		r := rand.New(rand.NewSource(seed))
		v, err := randomVideo(r)
		if err != nil {
			return false
		}
		target := time.Duration(int(targetSecs)%10+1) * time.Second
		segs, err := DurationSplicer{Target: target}.Splice(v)
		if err != nil {
			return false
		}
		var total, overhead int64
		for _, s := range segs {
			if s.Overhead() < 0 && !s.InsertedIFrame {
				t.Logf("segment %d negative overhead without insertion", s.Index)
				return false
			}
			total += s.Bytes()
			overhead += s.Overhead()
		}
		return total == v.TotalBytes()+overhead
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: GOP splicing is always byte-identical to the source stream.
func TestQuickGOPIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v, err := randomVideo(r)
		if err != nil {
			return false
		}
		segs, err := GOPSplicer{}.Splice(v)
		if err != nil {
			return false
		}
		st := ComputeStats(segs)
		return st.OverheadBytes == 0 && st.TotalBytes == v.TotalBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: duration variants of the same clip share boundaries wherever
// their grids coincide — the invariant the hybrid-CDN duration ladder needs.
// Every 2t-variant boundary must also be a t-variant boundary.
func TestQuickDurationVariantAlignment(t *testing.T) {
	f := func(seed int64, baseSecs uint8) bool {
		r := rand.New(rand.NewSource(seed))
		v, err := randomVideo(r)
		if err != nil {
			return false
		}
		base := time.Duration(int(baseSecs)%4+1) * time.Second
		small, err := DurationSplicer{Target: base}.Splice(v)
		if err != nil {
			return false
		}
		big, err := DurationSplicer{Target: 2 * base}.Splice(v)
		if err != nil {
			return false
		}
		starts := make(map[time.Duration]bool, len(small))
		for _, s := range small {
			starts[s.Start] = true
		}
		for _, s := range big {
			if !starts[s.Start] {
				t.Logf("big-variant boundary %v not on small-variant grid", s.Start)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: OptimalDuration always returns one of its candidate durations
// and never errors on valid input.
func TestQuickOptimalDurationTotal(t *testing.T) {
	valid := map[time.Duration]bool{}
	for _, d := range []int{1, 2, 3, 4, 6, 8, 12, 16} {
		valid[time.Duration(d)*time.Second] = true
	}
	f := func(seed int64, bwRaw uint32, lagMs uint16) bool {
		r := rand.New(rand.NewSource(seed))
		v, err := randomVideo(r)
		if err != nil {
			return false
		}
		bw := int64(bwRaw%(4<<20)) + 1
		lag := time.Duration(lagMs%1000) * time.Millisecond
		d, err := OptimalDuration(v, bw, lag, 0.9)
		if err != nil {
			return false
		}
		return valid[d]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
