package splicer

import (
	"fmt"
	"time"

	"p2psplice/internal/media"
)

// AdaptiveSplicer implements the splicing extension the paper sketches in
// Sections IV and VIII: instead of a fixed duration, the segment duration is
// derived from the hybrid-CDN size bound W <= B*T, so that a client that
// downloads one segment at a time with bandwidth B and buffer depth T never
// stalls. Given the clip's coded rate R, the target duration is
//
//	target = (B * T) / R
//
// clamped to [MinTarget, MaxTarget]. The cut itself is duration splicing.
type AdaptiveSplicer struct {
	// Bandwidth is the expected available bandwidth B in bytes/second.
	Bandwidth int64
	// BufferDepth is the buffered-playback horizon T the client maintains.
	BufferDepth time.Duration
	// MinTarget and MaxTarget clamp the derived duration. Zero values
	// default to 1s and 16s respectively.
	MinTarget time.Duration
	MaxTarget time.Duration
}

var _ Splicer = AdaptiveSplicer{}

// Name implements Splicer.
func (AdaptiveSplicer) Name() string { return "adaptive" }

// Kind implements Splicer.
func (AdaptiveSplicer) Kind() Kind { return KindAdaptive }

// TargetFor returns the duration target the splicer would use for v.
func (a AdaptiveSplicer) TargetFor(v *media.Video) (time.Duration, error) {
	if a.Bandwidth <= 0 {
		return 0, fmt.Errorf("splicer: adaptive: non-positive bandwidth %d", a.Bandwidth)
	}
	if a.BufferDepth <= 0 {
		return 0, fmt.Errorf("splicer: adaptive: non-positive buffer depth %v", a.BufferDepth)
	}
	if v == nil || v.Duration() <= 0 || v.TotalBytes() <= 0 {
		return 0, fmt.Errorf("splicer: adaptive: empty video")
	}
	minT, maxT := a.MinTarget, a.MaxTarget
	if minT <= 0 {
		minT = time.Second
	}
	if maxT <= 0 {
		maxT = 16 * time.Second
	}
	if minT > maxT {
		return 0, fmt.Errorf("splicer: adaptive: MinTarget %v > MaxTarget %v", minT, maxT)
	}
	rate := float64(v.TotalBytes()) / v.Duration().Seconds() // bytes/s
	maxBytes := float64(a.Bandwidth) * a.BufferDepth.Seconds()
	target := time.Duration(maxBytes / rate * float64(time.Second))
	if target < minT {
		target = minT
	}
	if target > maxT {
		target = maxT
	}
	return target, nil
}

// Splice implements Splicer.
func (a AdaptiveSplicer) Splice(v *media.Video) ([]Segment, error) {
	target, err := a.TargetFor(v)
	if err != nil {
		return nil, err
	}
	return DurationSplicer{Target: target}.Splice(v)
}

// OptimalDuration is the segment-duration selection algorithm the paper
// leaves as future work ("We did not propose an algorithm to determine the
// optimal segment size"). It balances the two costs of duration splicing:
//
//   - byte overhead: one inserted I frame (~iBytes) per segment inflates the
//     stream by iBytes/(rate*d), which hurts small d;
//   - startup and stall depth grow linearly with d, which hurts large d.
//
// A duration d is *feasible* when the overhead-inflated demand, including
// the per-segment request lag, fits within safety*bandwidth:
//
//	demand(d) = rate * (1 + iBytes/(rate*d)) * (d+reqLag)/d  <=  safety*B
//
// OptimalDuration returns the smallest feasible candidate (startup dominates
// once streaming is sustainable). When no candidate is feasible (bandwidth
// at or below the clip rate) it returns the minimum-demand candidate of at
// most 8 seconds: beyond that, the marginal overhead saving is dwarfed by
// the startup and stall depth the longer segments cost.
func OptimalDuration(v *media.Video, bandwidth int64, reqLag time.Duration, safety float64) (time.Duration, error) {
	if v == nil || v.Duration() <= 0 || v.TotalBytes() <= 0 {
		return 0, fmt.Errorf("splicer: optimal duration: empty video")
	}
	if bandwidth <= 0 {
		return 0, fmt.Errorf("splicer: optimal duration: non-positive bandwidth %d", bandwidth)
	}
	if reqLag < 0 {
		return 0, fmt.Errorf("splicer: optimal duration: negative request lag %v", reqLag)
	}
	if safety <= 0 || safety > 1 {
		safety = 0.95
	}
	rate := float64(v.TotalBytes()) / v.Duration().Seconds()
	iBytes := float64(v.MeanIFrameBytes())
	budget := safety * float64(bandwidth)

	candidates := []time.Duration{
		time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second,
		6 * time.Second, 8 * time.Second, 12 * time.Second, 16 * time.Second,
	}
	demand := func(d time.Duration) float64 {
		ds := d.Seconds()
		perSegment := rate*ds + iBytes            // bytes per segment on the wire
		wall := ds * ds / (ds + reqLag.Seconds()) // seconds of wire time available per segment
		return perSegment / wall
	}
	best := candidates[0]
	bestDemand := demand(best)
	for _, d := range candidates {
		dem := demand(d)
		if dem <= budget {
			return d, nil // smallest feasible wins: startup dominates
		}
		if d <= 8*time.Second && dem < bestDemand {
			best, bestDemand = d, dem
		}
	}
	return best, nil
}
