package splicer

import (
	"fmt"
	"time"
)

// Stats summarizes a spliced clip: the byte-overhead and size-spread
// comparison in the paper's Section II.
type Stats struct {
	// Count is the number of segments.
	Count int
	// TotalBytes is the total transfer size of all segments.
	TotalBytes int64
	// SourceBytes is the coded size of the source stream.
	SourceBytes int64
	// OverheadBytes is TotalBytes - SourceBytes (inserted I frames).
	OverheadBytes int64
	// InsertedIFrames counts segments whose first frame was re-encoded.
	InsertedIFrames int
	// MinBytes and MaxBytes bound the segment transfer sizes.
	MinBytes, MaxBytes int64
	// MinDuration and MaxDuration bound the segment display durations.
	MinDuration, MaxDuration time.Duration
}

// OverheadRatio returns OverheadBytes / SourceBytes, the fractional cost of
// the splicing technique. It returns 0 for an empty stream.
func (s Stats) OverheadRatio() float64 {
	if s.SourceBytes == 0 {
		return 0
	}
	return float64(s.OverheadBytes) / float64(s.SourceBytes)
}

// MeanBytes returns the average segment transfer size.
func (s Stats) MeanBytes() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.TotalBytes / int64(s.Count)
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("segments=%d bytes=%d overhead=%.2f%% size=[%d..%d] dur=[%v..%v]",
		s.Count, s.TotalBytes, 100*s.OverheadRatio(), s.MinBytes, s.MaxBytes, s.MinDuration, s.MaxDuration)
}

// ComputeStats summarizes segs.
func ComputeStats(segs []Segment) Stats {
	var st Stats
	st.Count = len(segs)
	for i, s := range segs {
		b := s.Bytes()
		d := s.Duration()
		st.TotalBytes += b
		st.SourceBytes += s.SourceBytes
		if s.InsertedIFrame {
			st.InsertedIFrames++
		}
		if i == 0 || b < st.MinBytes {
			st.MinBytes = b
		}
		if b > st.MaxBytes {
			st.MaxBytes = b
		}
		if i == 0 || d < st.MinDuration {
			st.MinDuration = d
		}
		if d > st.MaxDuration {
			st.MaxDuration = d
		}
	}
	st.OverheadBytes = st.TotalBytes - st.SourceBytes
	return st
}
