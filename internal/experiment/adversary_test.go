package experiment

import (
	"reflect"
	"testing"
	"time"
)

// adversaryTestParams is a small grid: enough leechers for the polluter
// fractions to differ, quick enough for the ordinary test run.
func adversaryTestParams() Params {
	p := QuickParams()
	p.ClipDuration = 24 * time.Second
	p.Leechers = 5
	return p
}

// TestPolluterNodes pins the adversary placement: evenly interleaved
// across leecher IDs, at least one when the fraction is non-zero, never
// more than the leecher count.
func TestPolluterNodes(t *testing.T) {
	cases := []struct {
		leechers int
		pct      float64
		want     []int
	}{
		{19, 0, []int{}},
		{19, 10, []int{1}},
		{19, 25, []int{1, 5, 10, 15}},
		{19, 50, []int{1, 3, 5, 7, 9, 11, 13, 15, 17}},
		{5, 10, []int{1}}, // rounds down to zero, clamped up to one
		{4, 100, []int{1, 2, 3, 4}},
	}
	for _, c := range cases {
		got := polluterNodes(c.leechers, c.pct)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("polluterNodes(%d, %v%%) = %v, want %v", c.leechers, c.pct, got, c.want)
		}
		for _, n := range got {
			if n < 1 || n > c.leechers {
				t.Errorf("polluterNodes(%d, %v%%) placed adversary on node %d", c.leechers, c.pct, n)
			}
		}
	}
}

// TestFigAdversaryShape checks the figure's structure: every series is
// present with one value per adversary level, and values are finite.
func TestFigAdversaryShape(t *testing.T) {
	p := adversaryTestParams()
	res, err := p.FigAdversary(nil)
	if err != nil {
		t.Fatal(err)
	}
	levels := AdversaryLevels()
	wantSeries := []string{"gop rep-on", "gop rep-off", "4s rep-on", "4s rep-off"}
	if len(res.Values) != len(wantSeries) {
		t.Fatalf("figure has %d series, want %d", len(res.Values), len(wantSeries))
	}
	for _, name := range wantSeries {
		vals := res.Series(name)
		if len(vals) != len(levels) {
			t.Fatalf("series %q has %d values for %d levels", name, len(vals), len(levels))
		}
		for i, v := range vals {
			if v < 0 {
				t.Errorf("series %q level %s: negative badness %g", name, levels[i].Name, v)
			}
		}
	}
	if got := len(res.Figure.XValues); got != len(levels) {
		t.Errorf("x axis has %d labels, want %d", got, len(levels))
	}
	// At the honest level the reputation subsystem must be a free rider:
	// rep-on and rep-off see identical swarms, so their measurements are
	// bit-identical.
	for _, scheme := range []string{"gop", "4s"} {
		on, off := res.Series(scheme+" rep-on")[0], res.Series(scheme+" rep-off")[0]
		if on != off {
			t.Errorf("%s: honest-swarm badness differs with reputation on (%v) vs off (%v)",
				scheme, on, off)
		}
	}
}

// TestFigAdversaryDeterministicAcrossWorkers requires the adversary
// sweep to be bit-identical between the serial and the parallel runner:
// polluter draws are pure hashes of each cell's own seed, and the
// reputation tables live per-swarm, never in shared state.
func TestFigAdversaryDeterministicAcrossWorkers(t *testing.T) {
	serial := adversaryTestParams()
	serial.Workers = 1
	parallel := adversaryTestParams()
	parallel.Workers = 4

	a, err := serial.FigAdversary(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.FigAdversary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Values, b.Values) {
		t.Errorf("adversary figure differs between workers=1 and workers=4:\nserial:   %v\nparallel: %v",
			a.Values, b.Values)
	}
}
