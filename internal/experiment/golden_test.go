package experiment

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"p2psplice/internal/core"
	"p2psplice/internal/fault"
	"p2psplice/internal/simpeer"
	"p2psplice/internal/splicer"
)

// The seed-matrix golden test pins exact Point values for a grid of
// (seed × splicer × bandwidth) quick-scale runs. The equivalence tests
// prove parallel == serial; this file catches determinism drift both of
// them would miss (a change that shifts serial AND parallel output the
// same way), and localizes it to the exact seed/splicer/bandwidth cell.
//
// Regenerate after an intentional model change with:
//
//	go test ./internal/experiment -run TestSeedMatrixGolden -update

var updateGolden = flag.Bool("update", false, "rewrite the seed-matrix golden file")

const goldenPath = "testdata/seed_matrix.golden.json"

// goldenEntry is one pinned cell. Floats are stored as Go hexadecimal
// float literals ('x' format), which round-trip bit-exactly through text.
type goldenEntry struct {
	Seed        int64  `json:"seed"`
	Splicer     string `json:"splicer"`
	BandwidthKB int64  `json:"bandwidth_kb"`
	Stalls      string `json:"stalls"`
	StallSecs   string `json:"stall_seconds"`
	StartupSecs string `json:"startup_seconds"`
}

func hexFloat(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// goldenParams is the pinned scale: small enough to run the whole grid in
// seconds, large enough that the swarm actually stalls and recovers.
func goldenParams(seed int64) Params {
	p := QuickParams()
	p.ClipDuration = 24 * time.Second
	p.Leechers = 4
	p.BaseSeed = seed
	return p
}

func goldenGrid() (seeds []int64, splicers []splicer.Splicer, bandwidths []int64) {
	seeds = []int64{1, 42, 9001}
	splicers = []splicer.Splicer{
		splicer.GOPSplicer{},
		splicer.DurationSplicer{Target: 2 * time.Second},
		splicer.DurationSplicer{Target: 8 * time.Second},
	}
	bandwidths = []int64{128, 512}
	return
}

// computeSeedMatrix runs the full grid and returns the entries in grid
// order.
func computeSeedMatrix(t *testing.T) []goldenEntry {
	t.Helper()
	seeds, splicers, bandwidths := goldenGrid()
	var entries []goldenEntry
	for _, seed := range seeds {
		p := goldenParams(seed)
		for _, sp := range splicers {
			segs, err := p.Segments(sp)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, sp.Name(), err)
			}
			for _, bw := range bandwidths {
				label := fmt.Sprintf("golden/seed=%d/%s", seed, sp.Name())
				pt, err := p.runPoint(label, segs, bw, core.AdaptivePool{}, nil)
				if err != nil {
					t.Fatal(err)
				}
				entries = append(entries, goldenEntry{
					Seed:        seed,
					Splicer:     sp.Name(),
					BandwidthKB: bw,
					Stalls:      hexFloat(pt.Stalls),
					StallSecs:   hexFloat(pt.StallSeconds),
					StartupSecs: hexFloat(pt.StartupSecs),
				})
			}
		}
	}
	return entries
}

// TestSeedMatrixGolden compares the computed grid against the pinned file,
// cell by cell and bit by bit.
func TestSeedMatrixGolden(t *testing.T) {
	got := computeSeedMatrix(t)
	if *updateGolden {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d entries", goldenPath, len(got))
		return
	}
	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	var want []goldenEntry
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("computed %d entries, golden has %d (run with -update after changing the grid)", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Seed != g.Seed || w.Splicer != g.Splicer || w.BandwidthKB != g.BandwidthKB {
			t.Fatalf("entry %d: grid mismatch: golden (%d,%s,%d) vs computed (%d,%s,%d)",
				i, w.Seed, w.Splicer, w.BandwidthKB, g.Seed, g.Splicer, g.BandwidthKB)
		}
		ctx := fmt.Sprintf("seed=%d splicer=%s bw=%d", w.Seed, w.Splicer, w.BandwidthKB)
		assertHexFloatEqual(t, ctx+" stalls", w.Stalls, g.Stalls)
		assertHexFloatEqual(t, ctx+" stallSeconds", w.StallSecs, g.StallSecs)
		assertHexFloatEqual(t, ctx+" startupSeconds", w.StartupSecs, g.StartupSecs)
	}
}

// assertHexFloatEqual parses both hex-float literals and compares their
// bit patterns, reporting both representations on drift.
func assertHexFloatEqual(t *testing.T, context, want, got string) {
	t.Helper()
	wv, err := strconv.ParseFloat(want, 64)
	if err != nil {
		t.Fatalf("%s: bad golden value %q: %v", context, want, err)
	}
	gv, err := strconv.ParseFloat(got, 64)
	if err != nil {
		t.Fatalf("%s: bad computed value %q: %v", context, got, err)
	}
	if math.Float64bits(wv) != math.Float64bits(gv) {
		t.Errorf("%s: determinism drift: golden %s (%g) vs computed %s (%g)",
			context, want, wv, got, gv)
	}
}

// TestSeedMatrixGoldenTracedAgrees reruns a slice of the grid with trace
// artifacts enabled and checks it against the same golden file: tracing
// must not move a single bit of the pinned values (DESIGN.md §8).
func TestSeedMatrixGoldenTracedAgrees(t *testing.T) {
	if *updateGolden {
		t.Skip("golden file being regenerated")
	}
	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	var want []goldenEntry
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]goldenEntry, len(want))
	for _, w := range want {
		byKey[fmt.Sprintf("%d/%s/%d", w.Seed, w.Splicer, w.BandwidthKB)] = w
	}
	p := goldenParams(9001)
	p.TraceDir = t.TempDir()
	sp := splicer.GOPSplicer{}
	segs, err := p.Segments(sp)
	if err != nil {
		t.Fatal(err)
	}
	for _, bw := range []int64{128, 512} {
		pt, err := p.runPoint("golden-traced/gop", segs, bw, core.AdaptivePool{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		w, ok := byKey[fmt.Sprintf("9001/gop/%d", bw)]
		if !ok {
			t.Fatalf("golden file missing 9001/gop/%d", bw)
		}
		ctx := fmt.Sprintf("traced seed=9001 splicer=gop bw=%d", bw)
		assertHexFloatEqual(t, ctx+" stalls", w.Stalls, hexFloat(pt.Stalls))
		assertHexFloatEqual(t, ctx+" stallSeconds", w.StallSecs, hexFloat(pt.StallSeconds))
		assertHexFloatEqual(t, ctx+" startupSeconds", w.StartupSecs, hexFloat(pt.StartupSecs))
	}
}

// TestSeedMatrixGoldenEmptyFaultPlanAgrees reruns a slice of the grid
// with the fault layer explicitly wired in but empty — a zero fault.Plan
// and a zero RetryBackoff — and checks it against the same golden file.
// The fault subsystem's inertness contract is that unused, it moves not
// a single bit of any pinned value.
func TestSeedMatrixGoldenEmptyFaultPlanAgrees(t *testing.T) {
	if *updateGolden {
		t.Skip("golden file being regenerated")
	}
	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	var want []goldenEntry
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]goldenEntry, len(want))
	for _, w := range want {
		byKey[fmt.Sprintf("%d/%s/%d", w.Seed, w.Splicer, w.BandwidthKB)] = w
	}
	p := goldenParams(1)
	sp := splicer.DurationSplicer{Target: 8 * time.Second}
	segs, err := p.Segments(sp)
	if err != nil {
		t.Fatal(err)
	}
	mod := func(cfg *simpeer.SwarmConfig) {
		cfg.Faults = fault.Plan{}
		cfg.RetryBackoff = fault.Backoff{}
	}
	for _, bw := range []int64{128, 512} {
		pt, err := p.runPoint("golden-empty-faults/8s", segs, bw, core.AdaptivePool{}, mod)
		if err != nil {
			t.Fatal(err)
		}
		w, ok := byKey[fmt.Sprintf("1/8s/%d", bw)]
		if !ok {
			t.Fatalf("golden file missing 1/8s/%d", bw)
		}
		ctx := fmt.Sprintf("empty-faults seed=1 splicer=8s bw=%d", bw)
		assertHexFloatEqual(t, ctx+" stalls", w.Stalls, hexFloat(pt.Stalls))
		assertHexFloatEqual(t, ctx+" stallSeconds", w.StallSecs, hexFloat(pt.StallSeconds))
		assertHexFloatEqual(t, ctx+" startupSeconds", w.StartupSecs, hexFloat(pt.StartupSecs))
	}
}

// TestSeedMatrixGoldenParallelAgrees reruns a slice of the grid with a
// multi-worker pool and checks it against the same golden file, tying the
// golden pins to the parallel path too.
func TestSeedMatrixGoldenParallelAgrees(t *testing.T) {
	if *updateGolden {
		t.Skip("golden file being regenerated")
	}
	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	var want []goldenEntry
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]goldenEntry, len(want))
	for _, w := range want {
		byKey[fmt.Sprintf("%d/%s/%d", w.Seed, w.Splicer, w.BandwidthKB)] = w
	}
	p := goldenParams(42)
	p.Workers = 4
	sp := splicer.DurationSplicer{Target: 2 * time.Second}
	segs, err := p.Segments(sp)
	if err != nil {
		t.Fatal(err)
	}
	for _, bw := range []int64{128, 512} {
		pt, err := p.runPoint("golden-parallel/2s", segs, bw, core.AdaptivePool{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		w, ok := byKey[fmt.Sprintf("42/2s/%d", bw)]
		if !ok {
			t.Fatalf("golden file missing 42/2s/%d", bw)
		}
		ctx := fmt.Sprintf("parallel seed=42 splicer=2s bw=%d", bw)
		assertHexFloatEqual(t, ctx+" stalls", w.Stalls, hexFloat(pt.Stalls))
		assertHexFloatEqual(t, ctx+" stallSeconds", w.StallSecs, hexFloat(pt.StallSeconds))
		assertHexFloatEqual(t, ctx+" startupSeconds", w.StartupSecs, hexFloat(pt.StartupSecs))
	}
}
