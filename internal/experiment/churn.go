package experiment

import (
	"fmt"
	"time"

	"p2psplice/internal/core"
	"p2psplice/internal/fault"
	"p2psplice/internal/metrics"
	"p2psplice/internal/simpeer"
	"p2psplice/internal/splicer"
)

// ChurnLevel is one x-axis point of the churn figure: a mean online
// session length before a peer crashes (0 disables churn entirely).
type ChurnLevel struct {
	Name       string
	MeanOnline time.Duration
}

// ChurnLevels returns the default churn axis, stable swarm to heavy
// churn. The means are online-session lengths, so smaller is harsher.
func ChurnLevels() []ChurnLevel {
	return []ChurnLevel{
		{Name: "none", MeanOnline: 0},
		{Name: "low", MeanOnline: 90 * time.Second},
		{Name: "medium", MeanOnline: 45 * time.Second},
		{Name: "high", MeanOnline: 20 * time.Second},
	}
}

// churnBandwidthKB fixes the access bandwidth for the churn sweep: the
// axis under study is fault intensity, not bandwidth.
const churnBandwidthKB = 256

// churnMeanOffline is the mean crash-to-rejoin gap for churned peers.
const churnMeanOffline = 8 * time.Second

// churnMod returns the per-cell config hook for one churn level. It
// runs after the cell's seed is set, so the fault schedule derives from
// the cell's own seed — every run sees a different but bit-reproducible
// plan. Only odd-numbered leechers churn; the measured cohort (crashed
// peers are excluded from playback samples) observes the swarm-side
// damage — lost sources and re-requests — not its own dead air.
func (p Params) churnMod(lv ChurnLevel) func(*simpeer.SwarmConfig) {
	return func(cfg *simpeer.SwarmConfig) {
		cfg.RetryBackoff = fault.Backoff{
			Base:       200 * time.Millisecond,
			Cap:        2 * time.Second,
			JitterFrac: 0.5,
		}
		if lv.MeanOnline <= 0 {
			return
		}
		var churners []int
		for id := 1; id <= cfg.Leechers; id += 2 {
			churners = append(churners, id)
		}
		horizon := 2*p.ClipDuration + 30*time.Second
		cfg.Faults = fault.Churn(cfg.Seed, churners, horizon, lv.MeanOnline, churnMeanOffline)
	}
}

// FigChurn runs the churn experiment: GOP versus 4 s duration splicing,
// each under adaptive and fixed-4 pooling, as peer churn intensifies at
// a fixed 256 kB/s. The measure is combined badness — startup time plus
// total stall time in seconds — since churn damages both ends of a
// viewing session. Not one of the paper's figures; it extends the
// splicing-versus-pooling comparison to the faulted regime.
func (p Params) FigChurn(levels []ChurnLevel) (*FigureResult, error) {
	if len(levels) == 0 {
		levels = ChurnLevels()
	}
	series := []struct {
		name string
		sp   splicer.Splicer
		pol  core.Policy
	}{
		{"gop adaptive", splicer.GOPSplicer{}, core.AdaptivePool{}},
		{"gop fixed-4", splicer.GOPSplicer{}, core.FixedPool{K: 4}},
		{"4s adaptive", splicer.DurationSplicer{Target: 4 * time.Second}, core.AdaptivePool{}},
		{"4s fixed-4", splicer.DurationSplicer{Target: 4 * time.Second}, core.FixedPool{K: 4}},
	}
	names := make([]string, len(levels))
	for i, lv := range levels {
		names[i] = lv.Name
	}
	fig := metrics.Figure{
		Title:   "Churn: startup + stall seconds under increasing peer churn (256 kB/s)",
		XLabel:  "Churn level",
		XValues: names,
	}

	// Fan every (series × level × run) cell out on the worker pool, the
	// same decomposition runSweeps uses with churn level standing in for
	// the bandwidth axis.
	var cells []cell
	for _, s := range series {
		segs, err := p.Segments(s.sp)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.sp.Name(), err)
		}
		for _, lv := range levels {
			mod := p.churnMod(lv)
			for r := 0; r < p.Runs; r++ {
				cells = append(cells, cell{
					label:       "Churn/" + s.name + "/" + lv.Name,
					segs:        segs,
					bandwidthKB: churnBandwidthKB,
					policy:      s.pol,
					mod:         mod,
					run:         r,
				})
			}
		}
	}
	outs, err := p.runCells(cells)
	if err != nil {
		return nil, err
	}
	res := &FigureResult{Values: make(map[string][]float64)}
	k := 0
	for _, s := range series {
		nums := make([]float64, len(levels))
		strs := make([]string, len(levels))
		for j := range levels {
			pt := averageCells(churnBandwidthKB, outs[k:k+p.Runs])
			k += p.Runs
			nums[j] = pt.StartupSecs + pt.StallSeconds
			strs[j] = metrics.FormatSeconds(nums[j])
		}
		res.Values[s.name] = nums
		fig.AddSeries(s.name, strs)
	}
	res.Figure = fig
	return res, nil
}
