package experiment

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"p2psplice/internal/trace"
)

// TestTimeSeriesInert proves the windowed telemetry layer is a pure
// observer at the figure level: the same sweep, with and without a
// TimeSeries attached, produces float-bit-identical figure values —
// the time-dimension twin of TestMetricsAreInert.
func TestTimeSeriesInert(t *testing.T) {
	bws := []int64{128, 512}

	bare := tracedParams()
	plain, err := bare.Fig2Stalls(bws)
	if err != nil {
		t.Fatal(err)
	}

	timed := tracedParams()
	ts := trace.NewTimeSeries(trace.TimeSeriesConfig{Window: time.Second, MaxWindows: 512})
	timed.Series = ts
	got, err := timed.Fig2Stalls(bws)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "Fig2Stalls with Series", plain.Values, got.Values)

	// The sweep populated every emulation series.
	snap := ts.Snap()
	byName := map[string]trace.TSSeriesStat{}
	for _, s := range snap.Series {
		byName[s.Name] = s
	}
	for _, name := range []string{
		trace.TSBufferOccupancyUS,
		trace.TSPoolTargetK,
		trace.TSInflightFlows,
		trace.TSSegmentsCompleted,
	} {
		if s, ok := byName[name]; !ok || s.Total() == 0 {
			t.Errorf("series %s has no observations across the sweep (present=%v)", name, ok)
		}
	}
	// Stall series exist even if this sweep happens to stall rarely.
	if _, ok := byName[trace.TSStalledPeers]; !ok {
		t.Errorf("series %s not registered", trace.TSStalledPeers)
	}
	if _, ok := byName[trace.TSStallFractionPermille]; !ok {
		t.Errorf("series %s not registered", trace.TSStallFractionPermille)
	}
}

// TestTimeSeriesIdenticalAcrossWorkers proves the shared TimeSeries
// accumulates bit-identically whatever the worker count — the windows
// are exact integer aggregates, so parallel cell execution cannot
// perturb them. The CSV render is compared too: one read path feeds
// every export, so byte-level stability follows snapshot equality.
func TestTimeSeriesIdenticalAcrossWorkers(t *testing.T) {
	snaps := make([]trace.TSSnapshot, 0, 2)
	for _, workers := range []int{1, 2} {
		p := tracedParams()
		p.Workers = workers
		ts := trace.NewTimeSeries(trace.TimeSeriesConfig{Window: time.Second, MaxWindows: 512})
		p.Series = ts
		if _, err := p.Fig2Stalls([]int64{128}); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, ts.Snap())
	}
	if !reflect.DeepEqual(snaps[0], snaps[1]) {
		t.Fatal("time-series snapshot differs across worker counts")
	}
	var a, b bytes.Buffer
	if err := snaps[0].WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := snaps[1].WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("time-series CSV differs across worker counts")
	}
}
