package experiment

import (
	"fmt"
	"math"
	"runtime"
	"testing"
)

// These tests enforce the runner's headline guarantee: fanning the figure
// cells out on a worker pool changes nothing. For every figure, the
// parallel FigureResult must be float-bit-identical (math.Float64bits — the
// measurement packages ban float ==) to the Workers=1 output for the same
// seeds.

// figureGen names one figure generator at its reduced test axis.
type figureGen struct {
	name string
	bws  []int64
	run  func(Params, []int64) (*FigureResult, error)
}

func figureGens() []figureGen {
	return []figureGen{
		{"Fig2Stalls", []int64{128, 512, 1024}, func(p Params, bws []int64) (*FigureResult, error) { return p.Fig2Stalls(bws) }},
		{"Fig3StallDuration", []int64{128, 512}, func(p Params, bws []int64) (*FigureResult, error) { return p.Fig3StallDuration(bws) }},
		{"Fig4Startup", []int64{128, 1024}, func(p Params, bws []int64) (*FigureResult, error) { return p.Fig4Startup(bws) }},
		{"Fig5Pooling", []int64{128, 768}, func(p Params, bws []int64) (*FigureResult, error) { return p.Fig5Pooling(bws) }},
		{"Fig6AdaptiveSplicing", []int64{256, 768}, func(p Params, bws []int64) (*FigureResult, error) { return p.Fig6AdaptiveSplicing(bws) }},
	}
}

// assertBitIdentical fails unless a and b hold exactly the same series with
// exactly the same float bits.
func assertBitIdentical(t *testing.T, context string, serial, parallel map[string][]float64) {
	t.Helper()
	if len(serial) != len(parallel) {
		t.Fatalf("%s: %d series serial vs %d parallel", context, len(serial), len(parallel))
	}
	for name, sv := range serial {
		pv, ok := parallel[name]
		if !ok {
			t.Errorf("%s: series %q missing from parallel result", context, name)
			continue
		}
		if len(sv) != len(pv) {
			t.Errorf("%s/%s: %d values serial vs %d parallel", context, name, len(sv), len(pv))
			continue
		}
		for i := range sv {
			if math.Float64bits(sv[i]) != math.Float64bits(pv[i]) {
				t.Errorf("%s/%s[%d]: serial %v (0x%016x) vs parallel %v (0x%016x)",
					context, name, i, sv[i], math.Float64bits(sv[i]), pv[i], math.Float64bits(pv[i]))
			}
		}
	}
}

// TestParallelMatchesSerial runs every figure at QuickParams scale with
// Workers=1 and again at Workers ∈ {2, GOMAXPROCS}, and requires
// bit-identical values.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full-figure equivalence sweep")
	}
	workerCounts := []int{2, runtime.GOMAXPROCS(0)}
	for _, g := range figureGens() {
		g := g
		t.Run(g.name, func(t *testing.T) {
			serialP := QuickParams()
			serialP.Workers = 1
			serial, err := g.run(serialP, g.bws)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerCounts {
				par := QuickParams()
				par.Workers = w
				got, err := g.run(par, g.bws)
				if err != nil {
					t.Fatalf("Workers=%d: %v", w, err)
				}
				assertBitIdentical(t, fmt.Sprintf("%s Workers=%d", g.name, w), serial.Values, got.Values)
			}
		})
	}
}

// TestParallelMatchesSerialMultiRun repeats the check with Runs > 1 so
// per-point averaging (the only float accumulation the runner performs)
// is covered, and with a non-default seed so nothing leans on the cache
// state other tests populate.
func TestParallelMatchesSerialMultiRun(t *testing.T) {
	base := QuickParams()
	base.ClipDuration = base.ClipDuration / 2
	base.Leechers = 4
	base.Runs = 3
	base.BaseSeed = 7777

	serialP := base
	serialP.Workers = 1
	serial, err := serialP.Fig2Stalls([]int64{128, 512})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		par := base
		par.Workers = w
		got, err := par.Fig2Stalls([]int64{128, 512})
		if err != nil {
			t.Fatalf("Workers=%d: %v", w, err)
		}
		assertBitIdentical(t, fmt.Sprintf("Fig2Stalls Runs=3 Workers=%d", w), serial.Values, got.Values)
	}
}
