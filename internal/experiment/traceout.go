package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"p2psplice/internal/trace"
)

// This file writes per-cell trace artifacts when Params.TraceDir is set.
// Tracing is observational only: the cell's swarm runs with a buffering
// tracer whose listeners never perturb the simulation, so figure values are
// bit-identical with TraceDir set or empty (TestTraceDirInert enforces it).

// sanitizeLabel turns a cell label like "Figure 2/gop" into a filename stem
// like "figure-2-gop".
func sanitizeLabel(label string) string {
	var b strings.Builder
	lastDash := true // swallow leading separators
	for _, r := range strings.ToLower(label) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			lastDash = false
		default:
			if !lastDash {
				b.WriteByte('-')
				lastDash = true
			}
		}
	}
	return strings.TrimRight(b.String(), "-")
}

// cellArtifactStem names one cell's artifact family inside TraceDir.
func cellArtifactStem(c cell) string {
	return fmt.Sprintf("%s-bw%d-run%d", sanitizeLabel(c.label), c.bandwidthKB, c.run)
}

// writeCellTrace renders one traced cell's three artifacts: the raw JSONL
// event log, a Chrome trace-event file (load in chrome://tracing or
// Perfetto), and the per-peer stall timeline.
func writeCellTrace(dir string, c cell, events []trace.Event) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiment: trace dir: %w", err)
	}
	stem := filepath.Join(dir, cellArtifactStem(c))

	write := func(path string, render func(f *os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("experiment: trace artifact: %w", err)
		}
		if err := render(f); err != nil {
			f.Close()
			return fmt.Errorf("experiment: trace artifact %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("experiment: trace artifact %s: %w", path, err)
		}
		return nil
	}

	if err := write(stem+".jsonl", func(f *os.File) error {
		return trace.WriteJSONL(f, events)
	}); err != nil {
		return err
	}
	if err := write(stem+".trace.json", func(f *os.File) error {
		return trace.WriteChromeTrace(f, events)
	}); err != nil {
		return err
	}
	return write(stem+".timeline.json", func(f *os.File) error {
		return trace.WriteTimeline(f, trace.BuildTimeline(events))
	})
}
